// Social-network analysis scenario (the paper's motivating workload):
// compute components of a power-law graph, compare the three sampling
// strategies, and extract the giant component's share — the typical first
// step of clustering pipelines that use connectivity as a subroutine.

#include <chrono>
#include <cstdio>

#include "src/core/connectivity_index.h"
#include "src/graph/generators.h"

int main() {
  using namespace connectit;

  std::printf("Generating a power-law social network (RMAT)...\n");
  const Graph graph = GenerateRmat(1u << 17, 1u << 21, /*seed=*/2023);
  std::printf("  n = %u, m = %llu\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  // The default Spec is the paper-recommended variant; only the sampling
  // scheme varies across the comparison.
  Connectivity index;
  for (const auto& [name, config] :
       {std::pair<const char*, SamplingConfig>{"no sampling",
                                               SamplingConfig::None()},
        {"k-out sampling", SamplingConfig::KOut()},
        {"BFS sampling", SamplingConfig::Bfs()},
        {"LDD sampling", SamplingConfig::Ldd()}}) {
    Connectivity candidate(Connectivity::Spec().Sampling(config));
    const auto start = std::chrono::steady_clock::now();
    candidate.Build(graph);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("  %-16s : %.4f s\n", name, seconds);
    index = std::move(candidate);
  }

  std::printf("\ncomponents: %u\n", index.NumComponents());
  NodeId giant = 0;
  for (const NodeId size : index.ComponentSizes()) {
    if (size > giant) giant = size;
  }
  std::printf("giant component: %u vertices (%.1f%% of the graph)\n", giant,
              100.0 * giant / graph.num_nodes());
  return 0;
}
