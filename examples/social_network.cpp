// Social-network analysis scenario (the paper's motivating workload):
// compute components of a power-law graph, compare the three sampling
// strategies, and extract the giant component's share — the typical first
// step of clustering pipelines that use connectivity as a subroutine.

#include <cstdio>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "src/graph/generators.h"

int main() {
  using namespace connectit;

  std::printf("Generating a power-law social network (RMAT)...\n");
  const Graph graph = GenerateRmat(1u << 17, 1u << 21, /*seed=*/2023);
  std::printf("  n = %u, m = %llu\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  // Pick the paper-recommended variant from the registry by name.
  const Variant* algorithm =
      FindVariant("Union-Rem-CAS;FindNaive;SplitAtomicOne");
  if (algorithm == nullptr) return 1;

  std::vector<NodeId> labels;
  for (const auto& [name, config] :
       {std::pair<const char*, SamplingConfig>{"no sampling",
                                               SamplingConfig::None()},
        {"k-out sampling", SamplingConfig::KOut()},
        {"BFS sampling", SamplingConfig::Bfs()},
        {"LDD sampling", SamplingConfig::Ldd()}}) {
    const auto start = std::chrono::steady_clock::now();
    labels = algorithm->run(graph, config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::printf("  %-16s : %.4f s\n", name, seconds);
  }

  const ComponentStats stats = ComputeComponentStats(labels);
  std::printf("\ncomponents: %u\n", stats.num_components);
  std::printf("giant component: %u vertices (%.1f%% of the graph)\n",
              stats.largest_component,
              100.0 * stats.largest_component / graph.num_nodes());
  return 0;
}
