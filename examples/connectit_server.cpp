// connectit_server — the network front end: serves one
// connectit::Connectivity index over the binary wire protocol
// (src/serve/protocol.h) on a Unix-domain socket and/or TCP.
//
// Usage:
//   connectit_server --unix=/tmp/connectit.sock [--nodes=N]
//   connectit_server --tcp-port=7077 [--tcp-host=127.0.0.1] [--nodes=N]
//
// Flags:
//   --unix=PATH         Unix-domain socket to listen on (replaces an
//                       existing socket file at PATH)
//   --tcp-port=N        TCP port to listen on (with --tcp-host, default
//                       127.0.0.1); --unix and --tcp-port may be combined
//   --nodes=N           cold-start streaming over N isolated vertices
//                       (default 1<<20); clients grow the graph with
//                       InsertBatch / EraseBatch
//   --workers=N         epoll worker threads, each owning its accepted
//                       connections (default 2)
//   --queue-capacity=N  bounded mutation-queue depth; a full queue answers
//                       kBackpressure instead of buffering (default 128)
//   --publish-every=K   snapshot-publication cadence: publish after every
//                       K-th insert batch (default 1 = every batch)
//   --adaptive-cadence  derive the cadence from measured publication cost
//                       instead of a fixed K (see Spec::AdaptiveCadence)
//   --stats             print the transport counters
//                       (stats::ReadTransport) on shutdown
//
// The server runs until SIGTERM or SIGINT, then drains gracefully:
// listeners close, every queued mutation is applied, every pending
// response is flushed, then the process exits 0 (see Server::Stop).

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/connectivity_index.h"
#include "src/serve/server.h"
#include "src/stats/counters.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const uint8_t byte = 1;
  [[maybe_unused]] ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

[[noreturn]] void Usage() {
  std::fprintf(
      stderr,
      "usage: connectit_server (--unix=PATH | --tcp-port=N [--tcp-host=H])\n"
      "                        [--nodes=N] [--workers=N] [--queue-capacity=N]\n"
      "                        [--publish-every=K] [--adaptive-cadence]\n"
      "                        [--stats]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace connectit;

  serve::ServerConfig config;
  NodeId nodes = 1u << 20;
  uint32_t publish_every = 1;
  bool adaptive_cadence = false;
  bool print_stats = false;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--unix", &value)) {
      config.unix_path = value;
    } else if (ParseFlag(argv[i], "--tcp-host", &value)) {
      config.tcp_host = value;
    } else if (ParseFlag(argv[i], "--tcp-port", &value)) {
      config.tcp_port = static_cast<uint16_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "--nodes", &value)) {
      nodes = static_cast<NodeId>(std::stoull(value));
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      config.workers = std::stoul(value);
    } else if (ParseFlag(argv[i], "--queue-capacity", &value)) {
      config.queue_capacity = std::stoul(value);
    } else if (ParseFlag(argv[i], "--publish-every", &value)) {
      publish_every = static_cast<uint32_t>(std::stoul(value));
    } else if (std::strcmp(argv[i], "--adaptive-cadence") == 0) {
      adaptive_cadence = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      print_stats = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
    }
  }
  if (config.unix_path.empty() && config.tcp_port == 0) Usage();

  // The signal handler only writes one byte; the main thread blocks on
  // the pipe so shutdown runs in normal (non-handler) context.
  if (pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = OnSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  signal(SIGPIPE, SIG_IGN);

  Connectivity::Spec spec;
  spec.PublishEvery(publish_every);
  if (adaptive_cadence) spec.AdaptiveCadence();
  Connectivity index(spec);
  index.Stream(nodes);

  serve::Server server(&index, config);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "connectit_server: %s\n", error.c_str());
    return 1;
  }
  std::printf("connectit_server: serving %u nodes", nodes);
  if (!config.unix_path.empty()) {
    std::printf(" on unix:%s", config.unix_path.c_str());
  }
  if (config.tcp_port != 0) {
    std::printf(" on tcp:%s:%u", config.tcp_host.c_str(), config.tcp_port);
  }
  std::printf(" (%zu workers, queue %zu, cadence %s)\n", config.workers,
              config.queue_capacity,
              adaptive_cadence ? "adaptive"
                               : std::to_string(publish_every).c_str());
  std::fflush(stdout);

  uint8_t byte;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("connectit_server: draining...\n");
  std::fflush(stdout);
  server.Stop();

  if (print_stats) {
    const stats::TransportSnapshot t = stats::ReadTransport();
    const stats::ServingSnapshot s = stats::ReadServing();
    std::printf("transport counters:\n");
    std::printf("  connections accepted    : %llu\n",
                (unsigned long long)t.connections_accepted);
    std::printf("  connections dropped     : %llu\n",
                (unsigned long long)t.connections_dropped);
    std::printf("  frames in / out         : %llu / %llu\n",
                (unsigned long long)t.frames_in,
                (unsigned long long)t.frames_out);
    std::printf("  bytes in / out          : %llu / %llu\n",
                (unsigned long long)t.bytes_in,
                (unsigned long long)t.bytes_out);
    std::printf("  backpressure rejections : %llu\n",
                (unsigned long long)t.backpressure_rejections);
    std::printf("  protocol errors         : %llu\n",
                (unsigned long long)t.protocol_errors);
    std::printf("  queue depth high-water  : %llu\n",
                (unsigned long long)t.queue_depth_hwm);
    std::printf("serving counters:\n");
    std::printf("  snapshot publications   : %llu\n",
                (unsigned long long)s.snapshot_publications);
    std::printf("  publication skips       : %llu\n",
                (unsigned long long)s.publication_skips);
    std::printf("  publication cadence k   : %llu\n",
                (unsigned long long)s.publication_cadence_k);
  }
  std::printf("connectit_server: clean shutdown\n");
  return 0;
}
