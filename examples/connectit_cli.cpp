// Command-line connectivity tool: the "downstream user" entry point.
//
// Usage:
//   connectit_cli [--repr=<csr|compressed|coo>] <edge-list-file> [variant]
//                 [sampling]
//   connectit_cli [--repr=...] --generate <rmat|grid|ba|er> <n> [variant]
//                 [sampling]
//   connectit_cli --list
//
// variant:  any registry name (default Union-Rem-CAS;FindNaive;SplitAtomicOne)
// sampling: none | kout | bfs | ldd   (default kout)
// --repr=compressed (alias --compressed): byte-code the graph and run
//               connectivity directly on the compressed representation.
// --repr=coo:   keep the input as a COO edge list. Edge-centric variants
//               with sampling=none run natively on it — the printed
//               "csr materializations" line stays 0, proving no CSR was
//               built; adjacency-dependent runs materialize (and cache)
//               one CSR inside the handle.
// The variant space is identical for every representation; the registry
// dispatches on the GraphHandle.
//
// Prints component statistics and, for road-style workflows, writes the
// densely renumbered component id per vertex to stdout with --labels.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/components.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/compressed.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/graph/io.h"

namespace {

using namespace connectit;

SamplingConfig ParseSampling(const std::string& name) {
  if (name == "none") return SamplingConfig::None();
  if (name == "bfs") return SamplingConfig::Bfs();
  if (name == "ldd") return SamplingConfig::Ldd();
  return SamplingConfig::KOut();
}

int Usage() {
  std::fprintf(stderr,
               "usage: connectit_cli [--repr=<csr|compressed|coo>] "
               "<edge-list-file> [variant] [sampling]\n"
               "       connectit_cli [--repr=...] --generate "
               "<rmat|grid|ba|er> <n> [variant] [sampling]\n"
               "       connectit_cli --list\n"
               "(--compressed is an alias for --repr=compressed)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the representation flag wherever it appears.
  GraphRepresentation repr = GraphRepresentation::kCsr;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compressed") == 0 ||
        std::strcmp(argv[i], "--repr=compressed") == 0) {
      repr = GraphRepresentation::kCompressed;
    } else if (std::strcmp(argv[i], "--repr=coo") == 0) {
      repr = GraphRepresentation::kCoo;
    } else if (std::strcmp(argv[i], "--repr=csr") == 0) {
      repr = GraphRepresentation::kCsr;
    } else if (std::strncmp(argv[i], "--repr=", 7) == 0) {
      std::fprintf(stderr, "error: unknown representation %s\n", argv[i] + 7);
      return Usage();
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (argc < 2) return Usage();

  if (std::strcmp(argv[1], "--list") == 0) {
    for (const Variant& v : AllVariants()) {
      std::printf("%-50s %s%s\n", v.name.c_str(),
                  v.root_based ? "[forest] " : "",
                  v.supports_streaming ? "[streaming]" : "");
    }
    return 0;
  }

  // COO mode keeps the edge list as the graph; the other modes build CSR
  // up front (and optionally byte-code it).
  Graph graph;
  EdgeList edges;
  int arg = 2;
  if (std::strcmp(argv[1], "--generate") == 0) {
    if (argc < 4) return Usage();
    const std::string kind = argv[2];
    const NodeId n = static_cast<NodeId>(std::atoll(argv[3]));
    if (kind == "rmat") {
      graph = GenerateRmat(n, 8ull * n, /*seed=*/1);
    } else if (kind == "grid") {
      const NodeId side = static_cast<NodeId>(std::max(1.0, std::sqrt(n)));
      graph = GenerateGrid(side, side);
    } else if (kind == "ba") {
      graph = GenerateBarabasiAlbert(n, 8, /*seed=*/1);
    } else if (kind == "er") {
      graph = GenerateErdosRenyi(n, 8ull * n, /*seed=*/1);
    } else {
      return Usage();
    }
    if (repr == GraphRepresentation::kCoo) {
      edges = ExtractEdges(graph);
      graph = Graph();  // the edges are the graph; drop the CSR
    }
    arg = 4;
  } else {
    if (!ReadEdgeListFile(argv[1], &edges)) {
      std::fprintf(stderr, "error: cannot read %s\n", argv[1]);
      return 1;
    }
    // COO is the file's native format: in --repr=coo mode the edges are the
    // graph and no CSR conversion happens here.
    if (repr != GraphRepresentation::kCoo) {
      graph = BuildGraph(edges);
      edges = EdgeList();  // don't hold the raw list alongside the CSR
    }
  }

  const std::string variant_name =
      (argc > arg) ? argv[arg] : "Union-Rem-CAS;FindNaive;SplitAtomicOne";
  const std::string sampling_name = (argc > arg + 1) ? argv[arg + 1] : "kout";
  const Variant* variant = FindVariant(variant_name);
  if (variant == nullptr) {
    std::fprintf(stderr, "error: unknown variant %s (try --list)\n",
                 variant_name.c_str());
    return 1;
  }

  GraphHandle handle;
  switch (repr) {
    case GraphRepresentation::kCsr: handle = GraphHandle(graph); break;
    case GraphRepresentation::kCompressed:
      handle = GraphHandle::Compress(graph);
      break;
    case GraphRepresentation::kCoo: handle = GraphHandle(edges); break;
  }
  std::printf("graph: n=%u, m=%llu, representation=%s\n", handle.num_nodes(),
              static_cast<unsigned long long>(handle.num_edges()),
              handle.representation_name());
  if (repr == GraphRepresentation::kCompressed) {
    std::printf("byte-coded size: %zu bytes (raw CSR edges: %zu)\n",
                handle.compressed()->byte_size(),
                static_cast<size_t>(graph.num_arcs()) * sizeof(NodeId));
  }
  const uint64_t builds_before = CooCsrMaterializations();
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<NodeId> labels =
      variant->run(handle, ParseSampling(sampling_name));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const NodeId num_components = CountComponents(labels);
  std::printf("algorithm: %s (+%s)\n", variant_name.c_str(),
              sampling_name.c_str());
  std::printf("time: %.4f s (%.2e edges/s)\n", seconds,
              static_cast<double>(handle.num_edges()) / seconds);
  if (repr == GraphRepresentation::kCoo) {
    // 0 = the run stayed COO-native end to end.
    std::printf("csr materializations: %llu\n",
                static_cast<unsigned long long>(CooCsrMaterializations() -
                                                builds_before));
  }
  std::printf("components: %u\n", num_components);
  const auto histogram = ComponentSizeHistogram(labels);
  std::printf("largest component: %u vertices\n",
              histogram.empty() ? 0 : histogram.back().first);
  std::printf("size histogram (size x count), up to 10 entries:\n");
  size_t shown = 0;
  for (auto it = histogram.rbegin(); it != histogram.rend() && shown < 10;
       ++it, ++shown) {
    std::printf("  %10u x %u\n", it->first, it->second);
  }
  return 0;
}
