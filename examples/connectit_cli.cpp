// Command-line connectivity tool: the "downstream user" entry point.
//
// Usage:
//   connectit_cli [--compressed] <edge-list-file> [variant] [sampling]
//   connectit_cli [--compressed] --generate <rmat|grid|ba|er> <n> [variant]
//                 [sampling]
//   connectit_cli --list
//
// variant:  any registry name (default Union-Rem-CAS;FindNaive;SplitAtomicOne)
// sampling: none | kout | bfs | ldd   (default kout)
// --compressed: byte-code the graph and run connectivity directly on the
//               compressed representation (same variant space; the registry
//               dispatches on the GraphHandle).
//
// Prints component statistics and, for road-style workflows, writes the
// densely renumbered component id per vertex to stdout with --labels.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/components.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/compressed.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/graph/io.h"

namespace {

using namespace connectit;

SamplingConfig ParseSampling(const std::string& name) {
  if (name == "none") return SamplingConfig::None();
  if (name == "bfs") return SamplingConfig::Bfs();
  if (name == "ldd") return SamplingConfig::Ldd();
  return SamplingConfig::KOut();
}

int Usage() {
  std::fprintf(stderr,
               "usage: connectit_cli [--compressed] <edge-list-file> "
               "[variant] [sampling]\n"
               "       connectit_cli [--compressed] --generate "
               "<rmat|grid|ba|er> <n> [variant] [sampling]\n"
               "       connectit_cli --list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the representation flag wherever it appears.
  bool compressed = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compressed") == 0) {
      compressed = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (argc < 2) return Usage();

  if (std::strcmp(argv[1], "--list") == 0) {
    for (const Variant& v : AllVariants()) {
      std::printf("%-50s %s%s\n", v.name.c_str(),
                  v.root_based ? "[forest] " : "",
                  v.supports_streaming ? "[streaming]" : "");
    }
    return 0;
  }

  Graph graph;
  int arg = 2;
  if (std::strcmp(argv[1], "--generate") == 0) {
    if (argc < 4) return Usage();
    const std::string kind = argv[2];
    const NodeId n = static_cast<NodeId>(std::atoll(argv[3]));
    if (kind == "rmat") {
      graph = GenerateRmat(n, 8ull * n, /*seed=*/1);
    } else if (kind == "grid") {
      const NodeId side = static_cast<NodeId>(std::max(1.0, std::sqrt(n)));
      graph = GenerateGrid(side, side);
    } else if (kind == "ba") {
      graph = GenerateBarabasiAlbert(n, 8, /*seed=*/1);
    } else if (kind == "er") {
      graph = GenerateErdosRenyi(n, 8ull * n, /*seed=*/1);
    } else {
      return Usage();
    }
    arg = 4;
  } else {
    EdgeList edges;
    if (!ReadEdgeListFile(argv[1], &edges)) {
      std::fprintf(stderr, "error: cannot read %s\n", argv[1]);
      return 1;
    }
    graph = BuildGraph(edges);
  }

  const std::string variant_name =
      (argc > arg) ? argv[arg] : "Union-Rem-CAS;FindNaive;SplitAtomicOne";
  const std::string sampling_name = (argc > arg + 1) ? argv[arg + 1] : "kout";
  const Variant* variant = FindVariant(variant_name);
  if (variant == nullptr) {
    std::fprintf(stderr, "error: unknown variant %s (try --list)\n",
                 variant_name.c_str());
    return 1;
  }

  const GraphHandle handle =
      compressed ? GraphHandle::Compress(graph) : GraphHandle(graph);
  std::printf("graph: n=%u, m=%llu, representation=%s\n", handle.num_nodes(),
              static_cast<unsigned long long>(handle.num_edges()),
              handle.representation_name());
  if (compressed) {
    std::printf("byte-coded size: %zu bytes (raw CSR edges: %zu)\n",
                handle.compressed()->byte_size(),
                static_cast<size_t>(graph.num_arcs()) * sizeof(NodeId));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<NodeId> labels =
      variant->run(handle, ParseSampling(sampling_name));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const NodeId num_components = CountComponents(labels);
  std::printf("algorithm: %s (+%s)\n", variant_name.c_str(),
              sampling_name.c_str());
  std::printf("time: %.4f s (%.2e edges/s)\n", seconds,
              static_cast<double>(graph.num_edges()) / seconds);
  std::printf("components: %u\n", num_components);
  const auto histogram = ComponentSizeHistogram(labels);
  std::printf("largest component: %u vertices\n",
              histogram.empty() ? 0 : histogram.back().first);
  std::printf("size histogram (size x count), up to 10 entries:\n");
  size_t shown = 0;
  for (auto it = histogram.rbegin(); it != histogram.rend() && shown < 10;
       ++it, ++shown) {
    std::printf("  %10u x %u\n", it->first, it->second);
  }
  return 0;
}
