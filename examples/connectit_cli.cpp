// Command-line connectivity tool: the "downstream user" entry point,
// built on the connectit::Connectivity serving façade (the variant name is
// parsed into a typed descriptor; unknown names die with a nearest-match
// suggestion).
//
// Usage:
//   connectit_cli [--repr=<csr|compressed|coo|sharded|mapped>] [--shards=<P>]
//                 [--stream=<B>x<S>] [--erase=<E>]
//                 <edge-list-file|graph.cgc|graph.bin> [variant] [sampling]
//   connectit_cli [--repr=...] [--stream=<B>x<S>] --generate
//                 <rmat|grid|ba|er> <n> [variant] [sampling]
//   connectit_cli --list
//
// variant:  any registry name (default: DefaultVariant(), the paper's
//           recommended Union-Rem-CAS;FindNaive;SplitAtomicOne)
// sampling: none | kout | bfs | ldd   (default kout)
// --repr=compressed (alias --compressed): byte-code the graph and run
//               connectivity directly on the compressed representation.
// --repr=coo:   keep the input as a COO edge list. Edge-centric variants
//               with sampling=none run natively on it — the printed
//               "csr materializations" line stays 0, proving no CSR was
//               built; adjacency-dependent runs materialize (and cache)
//               one CSR inside the handle.
// --repr=sharded [--shards=P]: partition the CSR into P vertex-contiguous
//               shards (default: hardware concurrency) and run on the
//               shards. Every variant × sampling combination is native on
//               this representation — the printed "flat csr
//               materializations" line stays 0 for every run.
// --repr=mapped: serve the graph zero-copy from an mmap'd versioned
//               container (src/graph/container.h). A .cgc/.bin input file
//               is mapped directly — the cold path: no edge list is parsed
//               and no CSR is built in memory. Text or generated inputs
//               are written to an unlinked temp container first
//               (GraphHandle::MapTempOrDie). Every variant × sampling
//               combination runs off the mapping — the printed "mapped csr
//               materializations" line stays 0 for every run.
// --stream=<B>x<S>: static-to-streaming handoff mode. The last B*S edges
//               are held out; the variant's static pass runs over the rest
//               (on the chosen representation), its labeling seeds the
//               variant's streaming structure, and the held-out edges are
//               streamed through it in B batches of S. The final labeling
//               is checked against a full static run over all edges.
// --erase=<E> (with --stream): after the insert batches, delete the first
//               E distinct edges of the input in one Erase batch — the
//               fully dynamic path (spanning forest + replacement search,
//               see src/core/dynamic_forest.h). Prints the erase counters
//               and verifies the final labeling against a full static run
//               over the surviving edges.
// --numa=<off|auto|k>: memory-placement mode (src/parallel/numa.h).
//               off forces a single-node topology; auto re-detects
//               (sysfs, or CONNECTIT_NUMA_NODES for an emulated
//               partition); a number k emulates k nodes. The thread pool
//               rebinds its workers to the chosen topology, sharded
//               partitions place shard s on node s % k, and a flat
//               union-find variant with a registered NumaReplicated twin
//               is upgraded to it, so the printed locality counters
//               (local hint hops / cross-node root hops / hint
//               compressions) reflect the replicated parent arrays. Works
//               in static and --stream modes.
// The variant space is identical for every representation; the registry
// dispatches on the GraphHandle.
//
// Prints component statistics and, for road-style workflows, writes the
// densely renumbered component id per vertex to stdout with --labels.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/algo/verify.h"
#include "src/core/components.h"
#include "src/core/connectivity_index.h"
#include "src/graph/builder.h"
#include "src/graph/compressed.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/graph/io.h"
#include "src/graph/sharded.h"
#include "src/parallel/numa.h"
#include "src/parallel/thread_pool.h"
#include "src/stats/counters.h"

namespace {

using namespace connectit;

SamplingConfig ParseSampling(const std::string& name) {
  if (name == "none") return SamplingConfig::None();
  if (name == "bfs") return SamplingConfig::Bfs();
  if (name == "ldd") return SamplingConfig::Ldd();
  return SamplingConfig::KOut();
}

// .cgc/.bin inputs are the versioned binary container; with --repr=mapped
// they are mmap'd directly instead of being parsed into an edge list.
bool IsContainerPath(const char* path) {
  const size_t len = std::strlen(path);
  return (len >= 4 && (std::strcmp(path + len - 4, ".cgc") == 0 ||
                       std::strcmp(path + len - 4, ".bin") == 0));
}

int Usage() {
  std::fprintf(stderr,
               "usage: connectit_cli "
               "[--repr=<csr|compressed|coo|sharded|mapped>] "
               "[--shards=<P>] [--stream=<batches>x<batch-size>] "
               "[--erase=<E>] [--numa=<off|auto|k>] "
               "<edge-list-file|graph.cgc> [variant] [sampling]\n"
               "       connectit_cli [--repr=...] [--stream=...] --generate "
               "<rmat|grid|ba|er> <n> [variant] [sampling]\n"
               "       connectit_cli --list\n"
               "(--compressed is an alias for --repr=compressed; --shards "
               "defaults to hardware concurrency; --erase requires "
               "--stream; --numa=k emulates k nodes; --repr=mapped maps a "
               ".cgc/.bin container file directly, or serves other inputs "
               "from an unlinked temp container)\n");
  return 2;
}

// --numa reporting: the active topology and how the pool's workers are
// spread across its nodes.
void PrintTopology() {
  const NumaTopology& topo = NumaTopology::Get();
  std::vector<size_t> workers_per_node(topo.num_nodes(), 0);
  const size_t workers = NumWorkers();
  for (size_t w = 0; w < workers; ++w) {
    ++workers_per_node[ThreadPool::Get().NodeOf(w)];
  }
  std::string spread;
  for (size_t node = 0; node < workers_per_node.size(); ++node) {
    if (!spread.empty()) spread += " ";
    spread += "node" + std::to_string(node) + ":" +
              std::to_string(workers_per_node[node]);
  }
  std::printf("numa: %zu node(s), backend=%s, workers [%s]\n",
              topo.num_nodes(), topo.backend(), spread.c_str());
}

void PrintShardPlacement(const ShardedGraph& sharded) {
  std::string placement;
  const size_t shown = std::min<size_t>(sharded.num_shards(), 16);
  for (size_t s = 0; s < shown; ++s) {
    if (!placement.empty()) placement += " ";
    placement += std::to_string(s) + "->" +
                 std::to_string(sharded.NodeOfShard(s));
  }
  if (shown < sharded.num_shards()) placement += " ...";
  std::printf("shard placement (shard->node, s %% %zu): %s\n",
              sharded.placement_nodes(), placement.c_str());
}

void PrintLocality(const stats::LocalitySnapshot& before) {
  const stats::LocalitySnapshot after = stats::ReadLocality();
  std::printf(
      "locality: %llu local hint hops, %llu cross-node root hops, "
      "%llu hint compressions\n",
      static_cast<unsigned long long>(after.local_find_depth -
                                      before.local_find_depth),
      static_cast<unsigned long long>(after.cross_node_find_depth -
                                      before.cross_node_find_depth),
      static_cast<unsigned long long>(after.cross_node_compressions -
                                      before.cross_node_compressions));
}

// With --numa active on a multi-node topology, a flat union-find variant
// whose NumaReplicated twin is registered is upgraded to the twin, so the
// run actually exercises the replicated parent arrays.
std::string MaybeReplicatedTwin(const std::string& variant_name) {
  const Variant* variant = FindVariant(variant_name);
  if (variant == nullptr) return variant_name;  // Spec::Algorithm will die
  if (variant->family != AlgorithmFamily::kUnionFind ||
      variant->descriptor.placement != PlacementOption::kFlat) {
    return variant_name;
  }
  VariantDescriptor twin = variant->descriptor;
  twin.placement = PlacementOption::kNumaReplicated;
  const Variant* replicated = FindVariant(twin);
  if (replicated == nullptr) return variant_name;  // e.g. the JTB variants
  std::printf("numa: upgraded %s -> %s\n", variant_name.c_str(),
              replicated->name.c_str());
  return replicated->name;
}

double Seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// --stream mode: static pass over all but the held-out tail (Build), seed
// the variant's streaming structure with its labeling (Stream), stream the
// tail in batches (Insert), optionally delete edges (--erase, the fully
// dynamic path), and verify against a full static run over whatever edges
// survive.
int RunStreamMode(GraphRepresentation repr, size_t num_shards,
                  const EdgeList& all, const Connectivity::Spec& spec,
                  const std::string& sampling_name, size_t num_batches,
                  size_t batch_size, size_t num_erase, bool report_numa) {
  const stats::ServingSnapshot serving_before = stats::ReadServing();
  const stats::LocalitySnapshot locality_before = stats::ReadLocality();
  Connectivity index(spec);
  if (!index.variant().supports_streaming) {
    std::fprintf(stderr, "error: %s does not support streaming (try --list)\n",
                 index.variant().name.c_str());
    return 1;
  }
  const size_t held = std::min(num_batches * batch_size, all.size());
  EdgeList base;
  base.num_nodes = all.num_nodes;
  base.edges.assign(all.edges.begin(), all.edges.end() - held);

  // Both handles wrap the chosen representation; the CSR storage backs the
  // csr/compressed arms and must outlive them.
  Graph base_csr;
  Graph full_csr;
  GraphHandle base_handle;
  GraphHandle full_handle;
  switch (repr) {
    case GraphRepresentation::kCsr:
      base_csr = BuildGraph(base);
      full_csr = BuildGraph(all);
      base_handle = GraphHandle(base_csr);
      full_handle = GraphHandle(full_csr);
      break;
    case GraphRepresentation::kCompressed:
      base_csr = BuildGraph(base);
      full_csr = BuildGraph(all);
      base_handle = GraphHandle::Compress(base_csr);
      full_handle = GraphHandle::Compress(full_csr);
      break;
    case GraphRepresentation::kCoo:
      base_handle = GraphHandle(base);
      full_handle = GraphHandle(all);
      break;
    case GraphRepresentation::kSharded:
      base_handle = GraphHandle::Shard(BuildGraph(base), num_shards);
      full_handle = GraphHandle::Shard(BuildGraph(all), num_shards);
      break;
    case GraphRepresentation::kMapped:
      // Both seeds are served zero-copy from unlinked temp containers; the
      // streamed tail then flows through the variant's streaming structure.
      base_handle = GraphHandle::MapTempOrDie(BuildGraph(base));
      full_handle = GraphHandle::MapTempOrDie(BuildGraph(all));
      break;
  }

  std::printf("graph: n=%u, m=%zu (%zu bulk + %zu streamed), "
              "representation=%s\n",
              all.num_nodes, all.size(), base.size(), held,
              base_handle.representation_name());
  if (report_numa && repr == GraphRepresentation::kSharded) {
    PrintShardPlacement(*full_handle.sharded());
  }
  std::printf("algorithm: %s (+%s), handoff %zux%zu\n",
              index.variant().name.c_str(), sampling_name.c_str(),
              num_batches, batch_size);

  const uint64_t builds_before =
      (repr == GraphRepresentation::kSharded) ? ShardedCsrMaterializations()
      : (repr == GraphRepresentation::kMapped)
          ? MappedCsrMaterializations()
          : CooCsrMaterializations();
  auto t0 = std::chrono::steady_clock::now();
  index.Build(base_handle);  // static pass...
  index.Stream();            // ...whose labeling seeds the streaming form
  const double static_seconds = Seconds(t0);
  std::printf("static pass: %.4f s (%.2e edges/s)\n", static_seconds,
              static_cast<double>(base.size()) / static_seconds);

  double stream_seconds = 0;
  size_t batches_run = 0;
  const size_t tail_start = all.size() - held;
  for (size_t b = 0; b < num_batches && tail_start + b * batch_size < all.size();
       ++b) {
    const size_t start = tail_start + b * batch_size;
    const size_t end = std::min(start + batch_size, all.size());
    const std::vector<Edge> batch(all.edges.begin() + start,
                                  all.edges.begin() + end);
    t0 = std::chrono::steady_clock::now();
    index.Insert(batch);
    stream_seconds += Seconds(t0);
    ++batches_run;
  }
  std::printf("streamed %zu batches: %.4f s (%.2e updates/s)\n", batches_run,
              stream_seconds,
              static_cast<double>(held) / std::max(stream_seconds, 1e-12));

  // --erase: delete the first num_erase distinct edges of the input in one
  // batch. The pick is deterministic so runs are reproducible; the erased
  // set is remembered for the verification below.
  std::set<std::pair<NodeId, NodeId>> erased_keys;
  if (num_erase > 0) {
    std::vector<Edge> erase_batch;
    for (const Edge& e : all.edges) {
      if (erase_batch.size() >= num_erase) break;
      if (e.u == e.v) continue;
      const std::pair<NodeId, NodeId> key = std::minmax(e.u, e.v);
      if (erased_keys.insert(key).second) erase_batch.push_back(e);
    }
    const stats::ServingSnapshot s0 = stats::ReadServing();
    t0 = std::chrono::steady_clock::now();
    index.Erase(erase_batch);
    const double erase_seconds = Seconds(t0);
    const stats::ServingSnapshot s1 = stats::ReadServing();
    std::printf(
        "erased %zu edges in %.4f s (%.2e deletions/s): "
        "%llu removed, %llu misses, %llu forest-edge hits, "
        "%llu replacement searches, %llu components split\n",
        erase_batch.size(), erase_seconds,
        static_cast<double>(erase_batch.size()) /
            std::max(erase_seconds, 1e-12),
        static_cast<unsigned long long>(s1.edges_erased - s0.edges_erased),
        static_cast<unsigned long long>(s1.erase_misses - s0.erase_misses),
        static_cast<unsigned long long>(s1.forest_edge_hits -
                                        s0.forest_edge_hits),
        static_cast<unsigned long long>(s1.replacement_searches -
                                        s0.replacement_searches),
        static_cast<unsigned long long>(s1.components_split -
                                        s0.components_split));
  }
  if (repr == GraphRepresentation::kCoo) {
    // Edge-centric variants with sampling=none stay COO-native end to end.
    std::printf("csr materializations: %llu\n",
                static_cast<unsigned long long>(CooCsrMaterializations() -
                                                builds_before));
  } else if (repr == GraphRepresentation::kSharded) {
    // Every seed is sharded-native: this must print 0.
    std::printf("flat csr materializations: %llu\n",
                static_cast<unsigned long long>(ShardedCsrMaterializations() -
                                                builds_before));
  } else if (repr == GraphRepresentation::kMapped) {
    // Every seed runs off the mapping: this must print 0.
    std::printf("mapped csr materializations: %llu\n",
                static_cast<unsigned long long>(MappedCsrMaterializations() -
                                                builds_before));
  }

  // Serving-layer counters (src/parallel/epoch.h): under the default
  // snapshot mode every Build/Stream/Insert publishes once, each
  // publication opens a grace period, and replaced labelings drain through
  // deferred reclamation — the backlog is whatever a pinned reader still
  // holds (0 here: the CLI holds no snapshots across batches).
  {
    const stats::ServingSnapshot s = stats::ReadServing();
    std::printf(
        "serving (%s): %llu snapshot publications, %llu epoch advances, "
        "%llu retired / %llu reclaimed (backlog %llu), "
        "%llu lazy label refreshes\n",
        ToString(spec.serving()),
        static_cast<unsigned long long>(s.snapshot_publications -
                                        serving_before.snapshot_publications),
        static_cast<unsigned long long>(s.epoch_advances -
                                        serving_before.epoch_advances),
        static_cast<unsigned long long>(s.snapshots_retired -
                                        serving_before.snapshots_retired),
        static_cast<unsigned long long>(s.snapshots_reclaimed -
                                        serving_before.snapshots_reclaimed),
        static_cast<unsigned long long>(
            (s.snapshots_retired - serving_before.snapshots_retired) -
            (s.snapshots_reclaimed - serving_before.snapshots_reclaimed)),
        static_cast<unsigned long long>(s.label_refreshes -
                                        serving_before.label_refreshes));
  }
  if (report_numa) PrintLocality(locality_before);

  // The handoff invariant: seeded streaming over the tail must land on the
  // same partition as a static pass over the whole edge set — minus the
  // erased edges, when --erase ran (every duplicate of an erased edge is
  // the same adjacency, so all copies are dropped).
  const std::vector<NodeId> streamed = CanonicalizeLabels(index.Labels());
  Connectivity full_index(spec);
  std::vector<NodeId> full;
  if (erased_keys.empty()) {
    full = CanonicalizeLabels(full_index.Build(full_handle).Labels());
  } else {
    EdgeList survivors;
    survivors.num_nodes = all.num_nodes;
    for (const Edge& e : all.edges) {
      const std::pair<NodeId, NodeId> key = std::minmax(e.u, e.v);
      if (e.u != e.v && erased_keys.count(key) > 0) continue;
      survivors.edges.push_back(e);
    }
    full = CanonicalizeLabels(
        full_index.Build(GraphHandle(survivors)).Labels());
  }
  const bool identical = (streamed == full);
  std::printf("labeling identical to full static run%s: %s\n",
              erased_keys.empty() ? "" : " over surviving edges",
              identical ? "yes" : "NO");
  std::printf("components: %u\n", CountComponents(streamed));
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the representation, sharding, and streaming flags wherever they
  // appear.
  GraphRepresentation repr = GraphRepresentation::kCsr;
  size_t num_shards = 0;  // 0 = ShardedGraph's default (hardware concurrency)
  size_t stream_batches = 0;
  size_t stream_batch_size = 0;
  size_t num_erase = 0;
  std::string numa_mode;  // empty = flag absent, keep ambient topology
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compressed") == 0 ||
        std::strcmp(argv[i], "--repr=compressed") == 0) {
      repr = GraphRepresentation::kCompressed;
    } else if (std::strcmp(argv[i], "--repr=coo") == 0) {
      repr = GraphRepresentation::kCoo;
    } else if (std::strcmp(argv[i], "--repr=sharded") == 0) {
      repr = GraphRepresentation::kSharded;
    } else if (std::strcmp(argv[i], "--repr=mapped") == 0) {
      repr = GraphRepresentation::kMapped;
    } else if (std::strcmp(argv[i], "--repr=csr") == 0) {
      repr = GraphRepresentation::kCsr;
    } else if (std::strncmp(argv[i], "--repr=", 7) == 0) {
      std::fprintf(stderr, "error: unknown representation %s\n", argv[i] + 7);
      return Usage();
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      char* end = nullptr;
      const long value = std::strtol(argv[i] + 9, &end, 10);
      if (end == argv[i] + 9 || *end != '\0' || value <= 0) {
        std::fprintf(stderr, "error: --shards expects a positive count, got %s\n",
                     argv[i] + 9);
        return Usage();
      }
      num_shards = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--erase=", 8) == 0) {
      char* end = nullptr;
      const long value = std::strtol(argv[i] + 8, &end, 10);
      if (end == argv[i] + 8 || *end != '\0' || value <= 0) {
        std::fprintf(stderr,
                     "error: --erase expects a positive edge count, got %s\n",
                     argv[i] + 8);
        return Usage();
      }
      num_erase = static_cast<size_t>(value);
    } else if (std::strncmp(argv[i], "--numa=", 7) == 0) {
      numa_mode = argv[i] + 7;
      if (numa_mode != "off" && numa_mode != "auto") {
        char* end = nullptr;
        const long value = std::strtol(numa_mode.c_str(), &end, 10);
        if (*numa_mode.c_str() == '\0' || *end != '\0' || value <= 0) {
          std::fprintf(stderr,
                       "error: --numa expects off, auto, or a node count, "
                       "got %s\n",
                       numa_mode.c_str());
          return Usage();
        }
      }
    } else if (std::strncmp(argv[i], "--stream=", 9) == 0) {
      if (std::sscanf(argv[i] + 9, "%zux%zu", &stream_batches,
                      &stream_batch_size) != 2 ||
          stream_batches == 0 || stream_batch_size == 0) {
        std::fprintf(stderr,
                     "error: --stream expects <batches>x<batch-size>, "
                     "got %s\n",
                     argv[i] + 9);
        return Usage();
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (argc < 2) return Usage();

  // Apply the placement mode before anything captures the topology: the
  // thread pool rebinds its workers, and every later ShardedGraph
  // partition picks up the new node count.
  if (!numa_mode.empty()) {
    if (numa_mode == "off") {
      NumaTopology::OverrideNodes(1);
    } else if (numa_mode == "auto") {
      NumaTopology::OverrideNodes(0);  // re-detect (sysfs or env)
    } else {
      NumaTopology::OverrideNodes(
          static_cast<size_t>(std::strtol(numa_mode.c_str(), nullptr, 10)));
    }
    ThreadPool::Get().Rebind();
  }
  const bool report_numa = !numa_mode.empty();

  if (std::strcmp(argv[1], "--list") == 0) {
    for (const Variant& v : AllVariants()) {
      std::printf("%-50s %s%s\n", v.name.c_str(),
                  v.root_based ? "[forest] " : "",
                  v.supports_streaming ? "[streaming]" : "");
    }
    return 0;
  }

  // COO mode keeps the edge list as the graph; the other modes build CSR
  // up front (and optionally byte-code it). In mapped mode a .cgc/.bin
  // input skips both: the container file is mmap'd as-is.
  Graph graph;
  EdgeList edges;
  GraphHandle file_mapped;  // non-empty iff a container file was mapped
  int arg = 2;
  if (std::strcmp(argv[1], "--generate") == 0) {
    if (argc < 4) return Usage();
    const std::string kind = argv[2];
    const NodeId n = static_cast<NodeId>(std::atoll(argv[3]));
    if (kind == "rmat") {
      graph = GenerateRmat(n, 8ull * n, /*seed=*/1);
    } else if (kind == "grid") {
      const NodeId side = static_cast<NodeId>(std::max(1.0, std::sqrt(n)));
      graph = GenerateGrid(side, side);
    } else if (kind == "ba") {
      graph = GenerateBarabasiAlbert(n, 8, /*seed=*/1);
    } else if (kind == "er") {
      graph = GenerateErdosRenyi(n, 8ull * n, /*seed=*/1);
    } else {
      return Usage();
    }
    if (repr == GraphRepresentation::kCoo || stream_batches > 0) {
      edges = ExtractEdges(graph);
      graph = Graph();  // the edges are the graph; drop the CSR
    }
    arg = 4;
  } else {
    std::string read_error;
    if (IsContainerPath(argv[1])) {
      if (repr == GraphRepresentation::kMapped && stream_batches == 0) {
        // The cold path: mmap the container and serve it as-is — no text
        // parse, no in-memory CSR build.
        file_mapped = GraphHandle::Map(argv[1], &read_error);
        if (file_mapped.mapped() == nullptr) {
          std::fprintf(stderr, "error: %s\n", read_error.c_str());
          return 1;
        }
      } else if (!ReadGraphBinary(argv[1], &graph, &read_error)) {
        std::fprintf(stderr, "error: %s\n", read_error.c_str());
        return 1;
      } else if (repr == GraphRepresentation::kCoo || stream_batches > 0) {
        edges = ExtractEdges(graph);
        graph = Graph();  // the edges are the graph; drop the CSR
      }
    } else if (!ReadEdgeListFile(argv[1], &edges, &read_error)) {
      // The loader reports the failing byte offset; surface it verbatim.
      std::fprintf(stderr, "error: %s\n", read_error.c_str());
      return 1;
    } else if (repr != GraphRepresentation::kCoo && stream_batches == 0) {
      // COO is the file's native format: in --repr=coo mode the edges are
      // the graph, and --stream mode splits the raw list itself; no CSR
      // conversion happens here in either case.
      graph = BuildGraph(edges);
      edges = EdgeList();  // don't hold the raw list alongside the CSR
    }
  }

  if (report_numa) PrintTopology();
  std::string variant_name = (argc > arg) ? argv[arg] : DefaultVariant().name;
  if (report_numa && NumaTopology::Get().num_nodes() > 1) {
    variant_name = MaybeReplicatedTwin(variant_name);
  }
  const std::string sampling_name = (argc > arg + 1) ? argv[arg + 1] : "kout";
  // Spec::Algorithm parses the name into a typed descriptor; an unknown
  // name aborts with the closest registered name (try --list).
  const Connectivity::Spec spec = Connectivity::Spec()
                                      .Algorithm(variant_name)
                                      .Sampling(ParseSampling(sampling_name));

  if (num_erase > 0 && stream_batches == 0) {
    std::fprintf(stderr, "error: --erase requires --stream\n");
    return Usage();
  }
  if (stream_batches > 0) {
    return RunStreamMode(repr, num_shards, edges, spec, sampling_name,
                         stream_batches, stream_batch_size, num_erase,
                         report_numa);
  }

  GraphHandle handle;
  switch (repr) {
    case GraphRepresentation::kCsr: handle = GraphHandle(graph); break;
    case GraphRepresentation::kCompressed:
      handle = GraphHandle::Compress(graph);
      break;
    case GraphRepresentation::kCoo: handle = GraphHandle(edges); break;
    case GraphRepresentation::kSharded:
      handle = GraphHandle::Shard(graph, num_shards);
      graph = Graph();  // the shards own a copy; drop the flat CSR
      break;
    case GraphRepresentation::kMapped:
      if (file_mapped.mapped() != nullptr) {
        handle = file_mapped;  // the container file itself, mmap'd
      } else {
        // Text/generated input: round-trip through an unlinked temp
        // container so the run still serves zero-copy from a mapping.
        handle = GraphHandle::MapTempOrDie(graph);
        graph = Graph();  // the mapping owns the bytes; drop the CSR
      }
      break;
  }
  std::printf("graph: n=%u, m=%llu, representation=%s\n", handle.num_nodes(),
              static_cast<unsigned long long>(handle.num_edges()),
              handle.representation_name());
  if (repr == GraphRepresentation::kCompressed) {
    std::printf("byte-coded size: %zu bytes (raw CSR edges: %zu)\n",
                handle.compressed()->byte_size(),
                static_cast<size_t>(graph.num_arcs()) * sizeof(NodeId));
  }
  if (repr == GraphRepresentation::kSharded) {
    std::printf("shards: %zu (%u vertices each)\n",
                handle.sharded()->num_shards(),
                handle.sharded()->shard_width());
    if (report_numa) PrintShardPlacement(*handle.sharded());
  }
  const uint64_t builds_before =
      (repr == GraphRepresentation::kSharded) ? ShardedCsrMaterializations()
      : (repr == GraphRepresentation::kMapped)
          ? MappedCsrMaterializations()
          : CooCsrMaterializations();
  const stats::LocalitySnapshot locality_before = stats::ReadLocality();
  Connectivity index(spec);
  const auto t0 = std::chrono::steady_clock::now();
  index.Build(handle);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::vector<NodeId> labels = index.Labels();

  const NodeId num_components = index.NumComponents();
  std::printf("algorithm: %s (+%s)\n", variant_name.c_str(),
              sampling_name.c_str());
  std::printf("time: %.4f s (%.2e edges/s)\n", seconds,
              static_cast<double>(handle.num_edges()) / seconds);
  if (repr == GraphRepresentation::kCoo) {
    // 0 = the run stayed COO-native end to end.
    std::printf("csr materializations: %llu\n",
                static_cast<unsigned long long>(CooCsrMaterializations() -
                                                builds_before));
  } else if (repr == GraphRepresentation::kSharded) {
    // Always 0: every variant × sampling combination is sharded-native.
    std::printf("flat csr materializations: %llu\n",
                static_cast<unsigned long long>(ShardedCsrMaterializations() -
                                                builds_before));
  } else if (repr == GraphRepresentation::kMapped) {
    // Always 0: every variant × sampling combination runs off the mapping.
    std::printf("mapped csr materializations: %llu\n",
                static_cast<unsigned long long>(MappedCsrMaterializations() -
                                                builds_before));
  }
  if (report_numa) PrintLocality(locality_before);
  std::printf("components: %u\n", num_components);
  const auto histogram = ComponentSizeHistogram(labels);
  std::printf("largest component: %u vertices\n",
              histogram.empty() ? 0 : histogram.back().first);
  std::printf("size histogram (size x count), up to 10 entries:\n");
  size_t shown = 0;
  for (auto it = histogram.rbegin(); it != histogram.rend() && shown < 10;
       ++it, ++shown) {
    std::printf("  %10u x %u\n", it->first, it->second);
  }
  return 0;
}
