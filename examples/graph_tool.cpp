// Graph utility tool: generate, convert, inspect, and compress graphs —
// the dataset-preparation companion to connectit_cli.
//
// Usage:
//   graph_tool generate <rmat|grid|ba|er|mixture> <n> <out.el|out.bin>
//   graph_tool convert <in.el> <out.bin>          (text -> binary CSR)
//   graph_tool stats <in.el|in.bin>
//   graph_tool compress <in.el|in.bin>            (report byte-code sizes and
//                                                  check CSR vs compressed,
//                                                  CSR vs COO, and CSR vs
//                                                  sharded connectivity
//                                                  parity)

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/algo/verify.h"
#include "src/core/connectivity_index.h"
#include "src/graph/builder.h"
#include "src/graph/compressed.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/graph/io.h"

namespace {

using namespace connectit;

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool LoadGraph(const std::string& path, Graph* graph) {
  if (EndsWith(path, ".bin")) return ReadGraphBinary(path, graph);
  EdgeList edges;
  if (!ReadEdgeListFile(path, &edges)) return false;
  *graph = BuildGraph(edges);
  return true;
}

bool SaveGraph(const std::string& path, const Graph& graph) {
  if (EndsWith(path, ".bin")) return WriteGraphBinary(path, graph);
  return WriteEdgeListFile(path, ExtractEdges(graph));
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: graph_tool generate <rmat|grid|ba|er|mixture> <n> <out>\n"
      "       graph_tool convert <in.el> <out.bin>\n"
      "       graph_tool stats <in>\n"
      "       graph_tool compress <in>\n"
      "(.bin = binary CSR, anything else = text edge list)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  if (command == "generate") {
    if (argc < 5) return Usage();
    const std::string kind = argv[2];
    const NodeId n = static_cast<NodeId>(std::atoll(argv[3]));
    Graph graph;
    if (kind == "rmat") {
      graph = GenerateRmat(n, 8ull * n, 1);
    } else if (kind == "grid") {
      const NodeId side = static_cast<NodeId>(std::max(1.0, std::sqrt(n)));
      graph = GenerateGrid(side, side);
    } else if (kind == "ba") {
      graph = GenerateBarabasiAlbert(n, 8, 1);
    } else if (kind == "er") {
      graph = GenerateErdosRenyi(n, 8ull * n, 1);
    } else if (kind == "mixture") {
      graph = GenerateComponentMixture(n, 16, 1, 8);
    } else {
      return Usage();
    }
    if (!SaveGraph(argv[4], graph)) {
      std::fprintf(stderr, "error: cannot write %s\n", argv[4]);
      return 1;
    }
    std::printf("wrote %s: n=%u, m=%llu\n", argv[4], graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()));
    return 0;
  }

  if (command == "convert") {
    if (argc < 4) return Usage();
    Graph graph;
    if (!LoadGraph(argv[2], &graph)) {
      std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
      return 1;
    }
    if (!SaveGraph(argv[3], graph)) {
      std::fprintf(stderr, "error: cannot write %s\n", argv[3]);
      return 1;
    }
    std::printf("converted %s -> %s\n", argv[2], argv[3]);
    return 0;
  }

  Graph graph;
  if (!LoadGraph(argv[2], &graph)) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
    return 1;
  }

  if (command == "stats") {
    const ComponentStats stats =
        ComputeComponentStats(SequentialComponents(graph));
    const DegreeStats degrees = ComputeDegreeStats(graph);
    std::printf("n: %u\nm: %llu\n", graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()));
    std::printf("avg degree: %.2f\nmax degree: %llu\n", degrees.avg_degree,
                static_cast<unsigned long long>(degrees.max_degree));
    std::printf("components: %u\nlargest component: %u\n",
                stats.num_components, stats.largest_component);
    std::printf("effective diameter: %u\n", EstimateEffectiveDiameter(graph));
    return 0;
  }

  if (command == "compress") {
    const GraphHandle coded = GraphHandle::Compress(graph);
    const size_t raw = graph.num_arcs() * sizeof(NodeId);
    std::printf("raw CSR edges : %zu bytes\n", raw);
    std::printf("byte-coded    : %zu bytes (%.2fx)\n",
                coded.compressed()->byte_size(),
                static_cast<double>(raw) /
                    static_cast<double>(coded.compressed()->byte_size()));
    // Sanity: the serving façade must produce the same partition on every
    // representation of this graph (CSR view, byte-coded, COO edge list,
    // sharded CSR) — the default Spec's variant, converted per
    // Representation.
    Connectivity csr_index;
    const std::vector<NodeId> csr_labels = csr_index.Build(graph).Labels();
    bool all_ok = true;
    for (const GraphRepresentation repr :
         {GraphRepresentation::kCompressed, GraphRepresentation::kCoo,
          GraphRepresentation::kSharded}) {
      Connectivity index(Connectivity::Spec().Representation(repr));
      const bool parity =
          SamePartition(csr_labels, index.Build(graph).Labels());
      std::printf("csr/%s connectivity parity: %s\n", ToString(repr),
                  parity ? "ok" : "MISMATCH");
      all_ok = all_ok && parity;
    }
    return all_ok ? 0 : 1;
  }
  return Usage();
}
