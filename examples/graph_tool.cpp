// Graph utility tool: generate, convert, inspect, and compress graphs —
// the dataset-preparation companion to connectit_cli.
//
// Usage:
//   graph_tool generate <rmat|grid|ba|er|mixture> <n> <out.el|out.bin>
//   graph_tool convert <in.el> <out.bin>          (text -> binary CSR)
//   graph_tool stats <in.el|in.bin>
//   graph_tool compress <in.el|in.bin>            (report byte-code sizes and
//                                                  check CSR vs compressed,
//                                                  CSR vs COO, and CSR vs
//                                                  sharded connectivity
//                                                  parity)

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/compressed.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/graph/io.h"

namespace {

using namespace connectit;

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool LoadGraph(const std::string& path, Graph* graph) {
  if (EndsWith(path, ".bin")) return ReadGraphBinary(path, graph);
  EdgeList edges;
  if (!ReadEdgeListFile(path, &edges)) return false;
  *graph = BuildGraph(edges);
  return true;
}

bool SaveGraph(const std::string& path, const Graph& graph) {
  if (EndsWith(path, ".bin")) return WriteGraphBinary(path, graph);
  return WriteEdgeListFile(path, ExtractEdges(graph));
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: graph_tool generate <rmat|grid|ba|er|mixture> <n> <out>\n"
      "       graph_tool convert <in.el> <out.bin>\n"
      "       graph_tool stats <in>\n"
      "       graph_tool compress <in>\n"
      "(.bin = binary CSR, anything else = text edge list)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  if (command == "generate") {
    if (argc < 5) return Usage();
    const std::string kind = argv[2];
    const NodeId n = static_cast<NodeId>(std::atoll(argv[3]));
    Graph graph;
    if (kind == "rmat") {
      graph = GenerateRmat(n, 8ull * n, 1);
    } else if (kind == "grid") {
      const NodeId side = static_cast<NodeId>(std::max(1.0, std::sqrt(n)));
      graph = GenerateGrid(side, side);
    } else if (kind == "ba") {
      graph = GenerateBarabasiAlbert(n, 8, 1);
    } else if (kind == "er") {
      graph = GenerateErdosRenyi(n, 8ull * n, 1);
    } else if (kind == "mixture") {
      graph = GenerateComponentMixture(n, 16, 1, 8);
    } else {
      return Usage();
    }
    if (!SaveGraph(argv[4], graph)) {
      std::fprintf(stderr, "error: cannot write %s\n", argv[4]);
      return 1;
    }
    std::printf("wrote %s: n=%u, m=%llu\n", argv[4], graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()));
    return 0;
  }

  if (command == "convert") {
    if (argc < 4) return Usage();
    Graph graph;
    if (!LoadGraph(argv[2], &graph)) {
      std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
      return 1;
    }
    if (!SaveGraph(argv[3], graph)) {
      std::fprintf(stderr, "error: cannot write %s\n", argv[3]);
      return 1;
    }
    std::printf("converted %s -> %s\n", argv[2], argv[3]);
    return 0;
  }

  Graph graph;
  if (!LoadGraph(argv[2], &graph)) {
    std::fprintf(stderr, "error: cannot read %s\n", argv[2]);
    return 1;
  }

  if (command == "stats") {
    const ComponentStats stats =
        ComputeComponentStats(SequentialComponents(graph));
    const DegreeStats degrees = ComputeDegreeStats(graph);
    std::printf("n: %u\nm: %llu\n", graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()));
    std::printf("avg degree: %.2f\nmax degree: %llu\n", degrees.avg_degree,
                static_cast<unsigned long long>(degrees.max_degree));
    std::printf("components: %u\nlargest component: %u\n",
                stats.num_components, stats.largest_component);
    std::printf("effective diameter: %u\n", EstimateEffectiveDiameter(graph));
    return 0;
  }

  if (command == "compress") {
    const GraphHandle coded = GraphHandle::Compress(graph);
    const size_t raw = graph.num_arcs() * sizeof(NodeId);
    std::printf("raw CSR edges : %zu bytes\n", raw);
    std::printf("byte-coded    : %zu bytes (%.2fx)\n",
                coded.compressed()->byte_size(),
                static_cast<double>(raw) /
                    static_cast<double>(coded.compressed()->byte_size()));
    // Sanity: the registry must produce the same partition on every
    // representation of this graph (CSR view, byte-coded, COO edge list).
    const Variant* v = FindVariant("Union-Rem-CAS;FindNaive;SplitAtomicOne");
    if (v == nullptr) {
      std::fprintf(stderr, "error: default variant missing from registry\n");
      return 1;
    }
    const std::vector<NodeId> csr_labels = v->run(GraphHandle(graph), {});
    const bool compressed_parity =
        SamePartition(csr_labels, v->run(coded, {}));
    std::printf("csr/compressed connectivity parity: %s\n",
                compressed_parity ? "ok" : "MISMATCH");
    const GraphHandle coo = GraphHandle::Adopt(ExtractEdges(graph));
    const bool coo_parity = SamePartition(csr_labels, v->run(coo, {}));
    std::printf("csr/coo connectivity parity: %s\n",
                coo_parity ? "ok" : "MISMATCH");
    const GraphHandle sharded = GraphHandle::Shard(graph);
    const bool sharded_parity = SamePartition(csr_labels, v->run(sharded, {}));
    std::printf("csr/sharded connectivity parity: %s\n",
                sharded_parity ? "ok" : "MISMATCH");
    return (compressed_parity && coo_parity && sharded_parity) ? 0 : 1;
  }
  return Usage();
}
