// Graph utility tool: generate, convert, inspect, and compress graphs —
// the dataset-preparation companion to connectit_cli.
//
// Usage:
//   graph_tool generate <rmat|grid|ba|er|mixture> <n> <out.el|out.bin|out.cgc>
//   graph_tool convert <in> <out> [--shards=P] [--out-of-core]
//                                 [--with-compressed]
//       text/binary -> text, binary container, or back. A .bin/.cgc output
//       is the versioned mmap container (src/graph/container.h):
//         --shards=P         record a P-shard partition table (P=0: worker
//                            count); the container is written shard-at-a-time
//         --out-of-core      build each shard directly from the edge list
//                            (ShardedGraph::BuildShard) so the full CSR is
//                            never materialized; byte-identical output to the
//                            in-memory path with the same --shards
//         --with-compressed  embed byte-coded chunks alongside the CSR
//   graph_tool stats <in.el|in.bin|in.cgc>
//   graph_tool compress <in>            (report byte-code sizes and check
//                                        CSR vs compressed/COO/sharded/mapped
//                                        connectivity parity)

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/algo/verify.h"
#include "src/core/connectivity_index.h"
#include "src/graph/builder.h"
#include "src/graph/compressed.h"
#include "src/graph/container.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/graph/io.h"
#include "src/graph/sharded.h"
#include "src/parallel/thread_pool.h"

namespace {

using namespace connectit;

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// .bin and .cgc are both the container format (ReadGraphBinary also accepts
// the legacy v0 flat dump under .bin); anything else is a text edge list.
bool IsBinaryPath(const std::string& path) {
  return EndsWith(path, ".bin") || EndsWith(path, ".cgc");
}

bool LoadGraph(const std::string& path, Graph* graph, std::string* error) {
  if (IsBinaryPath(path)) return ReadGraphBinary(path, graph, error);
  EdgeList edges;
  if (!ReadEdgeListFile(path, &edges, error)) return false;
  *graph = BuildGraph(edges);
  return true;
}

bool SaveGraph(const std::string& path, const Graph& graph,
               std::string* error) {
  if (IsBinaryPath(path)) return WriteGraphBinary(path, graph, error);
  return WriteEdgeListFile(path, ExtractEdges(graph), error);
}

void PrintError(const std::string& error) {
  std::fprintf(stderr, "error: %s\n", error.c_str());
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: graph_tool generate <rmat|grid|ba|er|mixture> <n> <out>\n"
      "       graph_tool convert <in> <out> [--shards=P] [--out-of-core]\n"
      "                                     [--with-compressed]\n"
      "       graph_tool stats <in>\n"
      "       graph_tool compress <in>\n"
      "(.bin/.cgc = versioned binary container, anything else = text edge "
      "list)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  std::string error;

  if (command == "generate") {
    if (argc < 5) return Usage();
    const std::string kind = argv[2];
    const NodeId n = static_cast<NodeId>(std::atoll(argv[3]));
    Graph graph;
    if (kind == "rmat") {
      graph = GenerateRmat(n, 8ull * n, 1);
    } else if (kind == "grid") {
      const NodeId side = static_cast<NodeId>(std::max(1.0, std::sqrt(n)));
      graph = GenerateGrid(side, side);
    } else if (kind == "ba") {
      graph = GenerateBarabasiAlbert(n, 8, 1);
    } else if (kind == "er") {
      graph = GenerateErdosRenyi(n, 8ull * n, 1);
    } else if (kind == "mixture") {
      graph = GenerateComponentMixture(n, 16, 1, 8);
    } else {
      return Usage();
    }
    if (!SaveGraph(argv[4], graph, &error)) {
      PrintError(error);
      return 1;
    }
    std::printf("wrote %s: n=%u, m=%llu\n", argv[4], graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()));
    return 0;
  }

  if (command == "convert") {
    if (argc < 4) return Usage();
    const std::string in_path = argv[2];
    const std::string out_path = argv[3];
    size_t shards = 0;
    bool shards_requested = false;
    bool out_of_core = false;
    bool with_compressed = false;
    for (int i = 4; i < argc; ++i) {
      const std::string flag = argv[i];
      if (flag.rfind("--shards=", 0) == 0) {
        shards = static_cast<size_t>(std::atoll(flag.c_str() + 9));
        shards_requested = true;
      } else if (flag == "--out-of-core") {
        out_of_core = true;
      } else if (flag == "--with-compressed") {
        with_compressed = true;
      } else {
        std::fprintf(stderr, "error: unknown convert flag %s\n", flag.c_str());
        return Usage();
      }
    }
    if ((shards_requested || out_of_core || with_compressed) &&
        !IsBinaryPath(out_path)) {
      std::fprintf(stderr,
                   "error: --shards/--out-of-core/--with-compressed require "
                   "a .bin or .cgc output\n");
      return 2;
    }
    if (out_of_core && with_compressed) {
      // Byte-coding needs the whole CSR in memory, which is exactly what
      // the out-of-core path exists to avoid.
      std::fprintf(stderr,
                   "error: --out-of-core and --with-compressed are mutually "
                   "exclusive\n");
      return 2;
    }

    if (out_of_core) {
      // Shard-at-a-time build: the edge list is the only whole-graph state;
      // each shard's CSR is built, written, and dropped before the next.
      if (IsBinaryPath(in_path)) {
        std::fprintf(stderr,
                     "error: --out-of-core converts text edge lists (the "
                     "binary input is already a container)\n");
        return 2;
      }
      EdgeList edges;
      if (!ReadEdgeListFile(in_path, &edges, &error)) {
        PrintError(error);
        return 1;
      }
      const size_t num_shards =
          shards > 0 ? shards : std::max<size_t>(1, NumWorkers());
      const NodeId n = edges.num_nodes;
      const NodeId chunk = static_cast<NodeId>(std::max<size_t>(
          1, (static_cast<size_t>(n) + num_shards - 1) / num_shards));
      ContainerWriter writer;
      if (!writer.Open(out_path, n, &error)) {
        PrintError(error);
        return 1;
      }
      for (size_t s = 0; s < num_shards; ++s) {
        const NodeId first = static_cast<NodeId>(
            std::min<size_t>(s * static_cast<size_t>(chunk), n));
        const NodeId last = static_cast<NodeId>(
            std::min<size_t>((s + 1) * static_cast<size_t>(chunk), n));
        const ShardedGraph::Shard shard =
            ShardedGraph::BuildShard(edges, first, last - first);
        if (!writer.AppendShard(shard, &error)) {
          PrintError(error);
          return 1;
        }
      }
      if (!writer.Finish(&error)) {
        PrintError(error);
        return 1;
      }
      std::printf("converted %s -> %s (out-of-core, %zu shards)\n",
                  in_path.c_str(), out_path.c_str(), num_shards);
      return 0;
    }

    Graph graph;
    if (!LoadGraph(in_path, &graph, &error)) {
      PrintError(error);
      return 1;
    }
    bool ok;
    if (shards_requested) {
      ok = WriteContainer(out_path, ShardedGraph::Partition(graph, shards),
                          &error);
    } else if (with_compressed) {
      ContainerWriteOptions options;
      options.with_compressed = true;
      ok = WriteContainer(out_path, graph, &error, options);
    } else {
      ok = SaveGraph(out_path, graph, &error);
    }
    if (!ok) {
      PrintError(error);
      return 1;
    }
    std::printf("converted %s -> %s\n", in_path.c_str(), out_path.c_str());
    return 0;
  }

  Graph graph;
  if (!LoadGraph(argv[2], &graph, &error)) {
    PrintError(error);
    return 1;
  }

  if (command == "stats") {
    const ComponentStats stats =
        ComputeComponentStats(SequentialComponents(graph));
    const DegreeStats degrees = ComputeDegreeStats(graph);
    std::printf("n: %u\nm: %llu\n", graph.num_nodes(),
                static_cast<unsigned long long>(graph.num_edges()));
    std::printf("avg degree: %.2f\nmax degree: %llu\n", degrees.avg_degree,
                static_cast<unsigned long long>(degrees.max_degree));
    std::printf("components: %u\nlargest component: %u\n",
                stats.num_components, stats.largest_component);
    std::printf("effective diameter: %u\n", EstimateEffectiveDiameter(graph));
    // Container-only metadata: surface the optional sections so a quick
    // stats run shows what a .cgc actually carries.
    if (IsBinaryPath(argv[2])) {
      MappedGraph mapped;
      if (MappedGraph::Map(argv[2], &mapped, &error)) {
        std::printf("container: %zu bytes on disk\n", mapped.file_bytes());
        if (mapped.has_shard_table()) {
          std::printf("shard table: %zu shards\n",
                      mapped.shard_boundaries().size() - 1);
        }
        if (mapped.has_compressed_chunks()) {
          std::printf("compressed chunks: embedded\n");
        }
      }
    }
    return 0;
  }

  if (command == "compress") {
    const GraphHandle coded = GraphHandle::Compress(graph);
    const size_t raw = graph.num_arcs() * sizeof(NodeId);
    std::printf("raw CSR edges : %zu bytes\n", raw);
    std::printf("byte-coded    : %zu bytes (%.2fx)\n",
                coded.compressed()->byte_size(),
                static_cast<double>(raw) /
                    static_cast<double>(coded.compressed()->byte_size()));
    // Sanity: the serving façade must produce the same partition on every
    // representation of this graph (CSR view, byte-coded, COO edge list,
    // sharded CSR, mapped container) — the default Spec's variant, converted
    // per Representation.
    Connectivity csr_index;
    const std::vector<NodeId> csr_labels = csr_index.Build(graph).Labels();
    bool all_ok = true;
    for (const GraphRepresentation repr :
         {GraphRepresentation::kCompressed, GraphRepresentation::kCoo,
          GraphRepresentation::kSharded, GraphRepresentation::kMapped}) {
      Connectivity index(Connectivity::Spec().Representation(repr));
      const bool parity =
          SamePartition(csr_labels, index.Build(graph).Labels());
      std::printf("csr/%s connectivity parity: %s\n", ToString(repr),
                  parity ? "ok" : "MISMATCH");
      all_ok = all_ok && parity;
    }
    return all_ok ? 0 : 1;
  }
  return Usage();
}
