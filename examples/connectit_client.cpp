// connectit_client — CLI for a running connectit_server, built on the
// blocking mode of src/serve/client.h.
//
// Usage:
//   connectit_client --unix=PATH <command ...>
//   connectit_client --tcp-port=N [--tcp-host=H] <command ...>
//
// Commands:
//   component <v>              the component representative of v
//   same <u> <v>               whether u and v are connected
//   num                        component count + snapshot version
//   sizes [max]                component sizes (top `max` entries, def 32)
//   insert <edges> [queries]   apply an InsertBatch; edge lists are
//                              comma-separated u-v pairs: 1-2,3-4
//   erase <edges> [queries]    apply an EraseBatch (same syntax)
//   stats                      the server's transport + serving counters
//   selftest                   drive every request type with random
//                              batches, mirroring the edge set locally,
//                              then verify the server's answers against a
//                              static recompute over the surviving edges
//                              (exit 0 iff every check passes)
//
// Selftest flags: --nodes=N (default 2048; must not exceed the server's),
// --rounds=N (default 30), --seed=S, --timeout-ms=T.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/connectivity_index.h"
#include "src/graph/coo.h"
#include "src/graph/graph_handle.h"
#include "src/parallel/random.h"
#include "src/serve/client.h"

namespace {

using namespace connectit;

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: connectit_client (--unix=PATH | --tcp-port=N "
               "[--tcp-host=H]) [--timeout-ms=T]\n"
               "       component <v> | same <u> <v> | num | sizes [max] |\n"
               "       insert <edges> [queries] | erase <edges> [queries] |\n"
               "       stats | selftest [--nodes=N] [--rounds=N] [--seed=S]\n");
  std::exit(2);
}

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "connectit_client: %s\n", message.c_str());
  std::exit(1);
}

// "1-2,3-4" -> {{1,2},{3,4}}
std::vector<Edge> ParseEdges(const std::string& text) {
  std::vector<Edge> edges;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t dash = text.find('-', pos);
    if (dash == std::string::npos) Die("bad edge list: " + text);
    size_t comma = text.find(',', dash);
    if (comma == std::string::npos) comma = text.size();
    edges.push_back(
        {static_cast<NodeId>(std::stoull(text.substr(pos, dash - pos))),
         static_cast<NodeId>(std::stoull(text.substr(dash + 1,
                                                     comma - dash - 1)))});
    pos = comma + 1;
  }
  return edges;
}

void PrintMutateResult(const serve::MutateResponse& response) {
  std::printf("status: %s\n", serve::ToString(response.status));
  for (size_t i = 0; i < response.answers.size(); ++i) {
    std::printf("query %zu: %s\n", i,
                response.answers[i] != 0 ? "connected" : "separate");
  }
}

// Random insert/erase rounds against the server with a local mirror of
// the live edge set; final answers are checked against a fresh static
// Connectivity built over exactly the surviving edges. Assumes the server
// index holds no edges beyond what this selftest inserts (run it against
// a freshly started server).
int SelfTest(serve::Client& client, NodeId nodes, int rounds, uint64_t seed) {
  std::string error;
  Rng rng(seed);

  // The reference must span the server's full vertex set or the component
  // counts would disagree by the singleton difference.
  serve::StatsProbe setup;
  if (!client.Stats(&setup, &error)) Die(error);
  const NodeId server_nodes = static_cast<NodeId>(setup.num_nodes);
  if (nodes > server_nodes) nodes = server_nodes;
  uint64_t tick = 0;
  std::vector<Edge> live;       // mirror of the server's edge set
  size_t mutations_refused = 0;

  for (int round = 0; round < rounds; ++round) {
    serve::MutateRequest request;
    const bool erase_round = round % 5 == 4 && !live.empty();
    if (erase_round) {
      // Erase a random slice of tracked edges (duplicates are fine: the
      // server counts misses, the mirror just drops what it has).
      const size_t count = 1 + rng.GetBounded(++tick, 8);
      for (size_t i = 0; i < count && !live.empty(); ++i) {
        const size_t pick = rng.GetBounded(++tick, live.size());
        request.edges.push_back(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
    } else {
      const size_t count = 4 + rng.GetBounded(++tick, 28);
      for (size_t i = 0; i < count; ++i) {
        request.edges.push_back(
            {static_cast<NodeId>(rng.GetBounded(++tick, nodes)),
             static_cast<NodeId>(rng.GetBounded(++tick, nodes))});
      }
    }
    for (size_t i = 0; i < 4; ++i) {
      request.queries.push_back(
          {static_cast<NodeId>(rng.GetBounded(++tick, nodes)),
           static_cast<NodeId>(rng.GetBounded(++tick, nodes))});
    }
    serve::MutateResponse response;
    const serve::Opcode opcode = erase_round ? serve::Opcode::kEraseBatch
                                             : serve::Opcode::kInsertBatch;
    if (!client.Mutate(opcode, request, &response, &error)) Die(error);
    if (response.status == serve::Status::kBackpressure) {
      // Refused: nothing was applied; put erased picks back in the mirror.
      ++mutations_refused;
      if (erase_round) {
        live.insert(live.end(), request.edges.begin(), request.edges.end());
      }
      continue;
    }
    if (response.status != serve::Status::kOk) {
      Die(std::string("mutation refused: ") +
          serve::ToString(response.status));
    }
    if (!erase_round) {
      live.insert(live.end(), request.edges.begin(), request.edges.end());
    }
  }

  // The reference: a static pass over exactly the surviving edges.
  EdgeList survivors;
  survivors.num_nodes = server_nodes;
  survivors.edges = live;
  Connectivity reference;
  reference.Build(GraphHandle(survivors));

  // NumComponents must agree exactly.
  serve::Status status;
  NodeId server_count = 0;
  uint64_t version = 0;
  if (!client.NumComponents(&status, &server_count, &version, &error)) {
    Die(error);
  }
  if (status != serve::Status::kOk || server_count != reference.NumComponents()) {
    std::fprintf(stderr,
                 "selftest FAIL: NumComponents server=%u reference=%u\n",
                 server_count, reference.NumComponents());
    return 1;
  }

  // SameComponent over random pairs plus every surviving edge's endpoints.
  std::vector<Edge> checks = live;
  for (size_t i = 0; i < 512; ++i) {
    checks.push_back({static_cast<NodeId>(rng.GetBounded(++tick, nodes)),
                      static_cast<NodeId>(rng.GetBounded(++tick, nodes))});
  }
  for (const Edge& check : checks) {
    bool connected = false;
    if (!client.SameComponent(check.u, check.v, &status, &connected,
                              &error)) {
      Die(error);
    }
    if (status != serve::Status::kOk ||
        connected != reference.SameComponent(check.u, check.v)) {
      std::fprintf(stderr, "selftest FAIL: SameComponent(%u, %u)\n", check.u,
                   check.v);
      return 1;
    }
  }

  // Component: two probes per surviving edge agree iff connected; and the
  // label is a valid node id.
  for (size_t i = 0; i < std::min<size_t>(live.size(), 128); ++i) {
    NodeId lu = 0, lv = 0;
    if (!client.Component(live[i].u, &status, &lu, &error)) Die(error);
    if (!client.Component(live[i].v, &status, &lv, &error)) Die(error);
    if (lu != lv || lu >= nodes) {
      std::fprintf(stderr, "selftest FAIL: Component labels of edge %u-%u\n",
                   live[i].u, live[i].v);
      return 1;
    }
  }

  // ComponentSizes: entries sum to the node count when uncapped.
  NodeId count = 0;
  std::vector<serve::ComponentSizesEntry> entries;
  if (!client.ComponentSizes(server_nodes, &status, &count, &entries,
                             &error)) {
    Die(error);
  }
  uint64_t covered = 0;
  for (const serve::ComponentSizesEntry& entry : entries) {
    covered += entry.size;
  }
  if (status != serve::Status::kOk || count != server_count) {
    std::fprintf(stderr, "selftest FAIL: ComponentSizes count=%u\n", count);
    return 1;
  }
  // The server caps entries; only an uncapped reply must cover all nodes.
  if (entries.size() == count && covered < server_nodes) {
    std::fprintf(stderr, "selftest FAIL: sizes cover %llu of %u nodes\n",
                 (unsigned long long)covered, server_nodes);
    return 1;
  }

  // Bad requests answer kBadRequest without dropping the connection.
  NodeId label = 0;
  if (!client.Component(server_nodes + 17, &status, &label, &error)) {
    Die(error);
  }
  if (status != serve::Status::kBadRequest) {
    std::fprintf(stderr, "selftest FAIL: out-of-range Component -> %s\n",
                 serve::ToString(status));
    return 1;
  }

  serve::StatsProbe probe;
  if (!client.Stats(&probe, &error)) Die(error);
  if (probe.protocol_errors != 0) {
    std::fprintf(stderr, "selftest FAIL: server counted %llu protocol errors\n",
                 (unsigned long long)probe.protocol_errors);
    return 1;
  }
  std::printf(
      "selftest ok: %zu surviving edges, %u components, %llu frames served, "
      "%zu mutations backpressured\n",
      live.size(), server_count, (unsigned long long)probe.frames_out,
      mutations_refused);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ClientConfig config;
  NodeId selftest_nodes = 2048;
  int selftest_rounds = 30;
  uint64_t selftest_seed = 1;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--unix", &value)) {
      config.unix_path = value;
    } else if (ParseFlag(argv[i], "--tcp-host", &value)) {
      config.tcp_host = value;
    } else if (ParseFlag(argv[i], "--tcp-port", &value)) {
      config.tcp_port = static_cast<uint16_t>(std::stoul(value));
    } else if (ParseFlag(argv[i], "--timeout-ms", &value)) {
      config.request_timeout_ms = std::stoi(value);
    } else if (ParseFlag(argv[i], "--nodes", &value)) {
      selftest_nodes = static_cast<NodeId>(std::stoull(value));
    } else if (ParseFlag(argv[i], "--rounds", &value)) {
      selftest_rounds = std::stoi(value);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      selftest_seed = std::stoull(value);
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage();
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if ((config.unix_path.empty() && config.tcp_port == 0) || args.empty()) {
    Usage();
  }

  serve::Client client(config);
  std::string error;
  if (!client.Connect(&error)) Die(error);

  const std::string& command = args[0];
  serve::Status status;
  if (command == "component" && args.size() == 2) {
    NodeId label = 0;
    if (!client.Component(static_cast<NodeId>(std::stoull(args[1])), &status,
                          &label, &error)) {
      Die(error);
    }
    if (status != serve::Status::kOk) Die(serve::ToString(status));
    std::printf("component: %u\n", label);
  } else if (command == "same" && args.size() == 3) {
    bool connected = false;
    if (!client.SameComponent(static_cast<NodeId>(std::stoull(args[1])),
                              static_cast<NodeId>(std::stoull(args[2])),
                              &status, &connected, &error)) {
      Die(error);
    }
    if (status != serve::Status::kOk) Die(serve::ToString(status));
    std::printf("%s\n", connected ? "connected" : "separate");
  } else if (command == "num" && args.size() == 1) {
    NodeId count = 0;
    uint64_t version = 0;
    if (!client.NumComponents(&status, &count, &version, &error)) Die(error);
    if (status != serve::Status::kOk) Die(serve::ToString(status));
    std::printf("components: %u (snapshot version %llu)\n", count,
                (unsigned long long)version);
  } else if (command == "sizes" && args.size() <= 2) {
    const uint32_t max_entries =
        args.size() == 2 ? static_cast<uint32_t>(std::stoul(args[1])) : 32;
    NodeId count = 0;
    std::vector<serve::ComponentSizesEntry> entries;
    if (!client.ComponentSizes(max_entries, &status, &count, &entries,
                               &error)) {
      Die(error);
    }
    if (status != serve::Status::kOk) Die(serve::ToString(status));
    std::printf("components: %u (showing %zu)\n", count, entries.size());
    for (const serve::ComponentSizesEntry& entry : entries) {
      std::printf("  rep %u: %u nodes\n", entry.representative, entry.size);
    }
  } else if ((command == "insert" || command == "erase") &&
             (args.size() == 2 || args.size() == 3)) {
    serve::MutateRequest request;
    request.edges = ParseEdges(args[1]);
    if (args.size() == 3) request.queries = ParseEdges(args[2]);
    serve::MutateResponse response;
    if (!client.Mutate(command == "insert" ? serve::Opcode::kInsertBatch
                                           : serve::Opcode::kEraseBatch,
                       request, &response, &error)) {
      Die(error);
    }
    PrintMutateResult(response);
    if (response.status != serve::Status::kOk) return 1;
  } else if (command == "stats" && args.size() == 1) {
    serve::StatsProbe probe;
    if (!client.Stats(&probe, &error)) Die(error);
    std::printf("nodes %llu  components %llu  snapshot version %llu\n",
                (unsigned long long)probe.num_nodes,
                (unsigned long long)probe.num_components,
                (unsigned long long)probe.snapshot_version);
    std::printf("connections %llu (+%llu dropped)  frames %llu in / %llu "
                "out  bytes %llu in / %llu out\n",
                (unsigned long long)probe.connections_accepted,
                (unsigned long long)probe.connections_dropped,
                (unsigned long long)probe.frames_in,
                (unsigned long long)probe.frames_out,
                (unsigned long long)probe.bytes_in,
                (unsigned long long)probe.bytes_out);
    std::printf("backpressure %llu  protocol errors %llu  queue hwm %llu\n",
                (unsigned long long)probe.backpressure_rejections,
                (unsigned long long)probe.protocol_errors,
                (unsigned long long)probe.queue_depth_hwm);
    std::printf("publications %llu  skips %llu  cadence k %llu\n",
                (unsigned long long)probe.snapshot_publications,
                (unsigned long long)probe.publication_skips,
                (unsigned long long)probe.publication_cadence_k);
  } else if (command == "selftest" && args.size() == 1) {
    return SelfTest(client, selftest_nodes, selftest_rounds, selftest_seed);
  } else {
    Usage();
  }
  return 0;
}
