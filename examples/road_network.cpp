// Road-network scenario: high-diameter graphs invert the paper's
// recommendations (BFS sampling degrades; k-out stays cheap). This example
// follows the paper's §4.2 guidance, demonstrates spanning-forest
// extraction for the road graph, and round-trips the graph through the
// binary on-disk format.

#include <chrono>
#include <cstdio>
#include <string>

#include "src/core/connectivity_index.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"

int main() {
  using namespace connectit;

  // A 512 x 512 grid: ~262k intersections, diameter > 1000.
  const Graph road = GenerateGrid(512, 512);
  std::printf("road network: n=%u, m=%llu\n", road.num_nodes(),
              static_cast<unsigned long long>(road.num_edges()));

  auto time_build = [&](const char* name, const SamplingConfig& config) {
    Connectivity index(Connectivity::Spec().Sampling(config));
    const auto t0 = std::chrono::steady_clock::now();
    index.Build(road);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("  %-16s : %.4f s\n", name, s);
    return s;
  };
  std::printf("sampling strategies on a high-diameter graph:\n");
  const double t_none = time_build("no sampling", SamplingConfig::None());
  const double t_kout = time_build("k-out sampling", SamplingConfig::KOut());
  const double t_bfs = time_build("BFS sampling", SamplingConfig::Bfs());
  std::printf(
      "  (paper guidance: on high-diameter graphs prefer k-out; BFS\n"
      "   sampling pays ~diameter rounds: here %.1fx vs %.1fx the\n"
      "   unsampled time)\n",
      t_kout / t_none, t_bfs / t_none);

  // Spanning forest = the road network's skeleton (e.g., for minimal
  // road-closure analysis). The default variant is root-based, so the
  // façade serves Algorithm 2 too.
  Connectivity index;
  index.Build(road);
  const SpanningForestResult forest = index.SpanningForest();
  std::printf("spanning forest edges: %zu (n - #components = %u)\n",
              forest.edges.size(), road.num_nodes() - index.NumComponents());

  // Persist and reload the network.
  const std::string path = "/tmp/connectit_road.bin";
  if (WriteGraphBinary(path, road)) {
    Graph reloaded;
    if (ReadGraphBinary(path, &reloaded)) {
      std::printf("binary round-trip ok: n=%u, m=%llu (%s)\n",
                  reloaded.num_nodes(),
                  static_cast<unsigned long long>(reloaded.num_edges()),
                  path.c_str());
    }
    std::remove(path.c_str());
  }
  return 0;
}
