// Quickstart: build a graph, compute connected components and a spanning
// forest, answer connectivity queries.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/core/connectit.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/graph_handle.h"

int main() {
  using namespace connectit;

  // A small undirected graph: two triangles joined by a bridge, plus an
  // isolated pair.
  //   0-1-2-0   2-3   3-4-5-3   6-7
  const Graph graph = BuildGraph(
      8, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}, {6, 7}});

  // The paper's recommended default: Union-Rem-CAS with one atomic path
  // split per step, composed with k-out sampling.
  using Algorithm = UnionFindFinish<UniteOption::kRemCas, FindOption::kNaive,
                                    SpliceOption::kSplitOne>;
  const std::vector<NodeId> labels =
      RunConnectivity<Algorithm>(graph, SamplingConfig::KOut());

  std::printf("vertex : component\n");
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    std::printf("  %u    : %u\n", v, labels[v]);
  }

  // Connectivity queries are label comparisons.
  std::printf("\nconnected(0, 5) = %s\n",
              labels[0] == labels[5] ? "true" : "false");
  std::printf("connected(0, 7) = %s\n",
              labels[0] == labels[7] ? "true" : "false");

  // Spanning forest via the same algorithm (root-based, so supported).
  const SpanningForestResult forest = RunSpanningForest<Algorithm>(graph);
  std::printf("\nspanning forest (%zu edges):\n", forest.edges.size());
  for (const Edge& e : forest.edges) std::printf("  {%u, %u}\n", e.u, e.v);

  // The same algorithm through the runtime registry, which is
  // representation-generic: a GraphHandle runs any registered variant on
  // plain CSR, the byte-compressed format, or COO input.
  const Variant* variant =
      FindVariant("Union-Rem-CAS;FindNaive;SplitAtomicOne");
  const std::vector<NodeId> coded_labels =
      variant->run(GraphHandle::Compress(graph), SamplingConfig::KOut());
  std::printf("\nsame labels on the byte-compressed representation: %s\n",
              coded_labels == labels ? "true" : "false");
  return 0;
}
