// Quickstart: build a graph, compute connected components and a spanning
// forest through the connectit::Connectivity serving façade, answer
// connectivity queries.
//
//   cmake --build build && ./build/quickstart

#include <cstdio>

#include "src/core/connectivity_index.h"
#include "src/graph/builder.h"

int main() {
  using namespace connectit;

  // A small undirected graph: two triangles joined by a bridge, plus an
  // isolated pair.
  //   0-1-2-0   2-3   3-4-5-3   6-7
  const Graph graph = BuildGraph(
      8, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}, {6, 7}});

  // The default Spec is the paper's recommended all-around variant
  // (Union-Rem-CAS with one atomic path split per step); compose it with
  // k-out sampling and run the static pass.
  Connectivity index(Connectivity::Spec().Sampling(SamplingConfig::KOut()));
  index.Build(graph);

  std::printf("vertex : component\n");
  for (NodeId v = 0; v < index.num_nodes(); ++v) {
    std::printf("  %u    : %u\n", v, index.Component(v));
  }

  // Connectivity queries are thread-safe reads.
  std::printf("\nconnected(0, 5) = %s\n",
              index.SameComponent(0, 5) ? "true" : "false");
  std::printf("connected(0, 7) = %s\n",
              index.SameComponent(0, 7) ? "true" : "false");
  std::printf("components      = %u\n", index.NumComponents());

  // Spanning forest via the same variant (root-based, so supported).
  const SpanningForestResult forest = index.SpanningForest();
  std::printf("\nspanning forest (%zu edges):\n", forest.edges.size());
  for (const Edge& e : forest.edges) std::printf("  {%u, %u}\n", e.u, e.v);

  // The façade is representation-generic: ask the Spec for the
  // byte-compressed representation and the same variant runs on byte
  // codes. Typed descriptors replace stringly-typed lookups; the string
  // form still parses for CLI-style configs.
  Connectivity coded(Connectivity::Spec()
                         .Algorithm(VariantDescriptor::UnionFind(
                             UniteOption::kRemCas, FindOption::kNaive,
                             SpliceOption::kSplitOne))
                         .Sampling(SamplingConfig::KOut())
                         .Representation(GraphRepresentation::kCompressed));
  coded.Build(graph);
  std::printf("\nsame labels on the byte-compressed representation: %s\n",
              coded.Labels() == index.Labels() ? "true" : "false");
  return 0;
}
