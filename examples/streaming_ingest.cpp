// Streaming ingestion scenario (paper §1: insertion-heavy workloads like
// Twitter's follow stream), in the bulk-load-then-stream shape real
// deployments use: yesterday's graph is loaded with one fast static pass,
// today's edges then arrive in batches with connectivity queries mixed in.
// The whole lifecycle is one Connectivity object: Build (bulk) -> Stream
// (seeded handoff) -> Insert (batches + queries), with thread-safe reads
// live throughout.

#include <chrono>
#include <cstdio>

#include "src/core/connectivity_index.h"
#include "src/graph/generators.h"
#include "src/parallel/random.h"

int main() {
  using namespace connectit;

  const NodeId n = 1u << 18;

  // Simulated follow stream: RMAT edges. The first 75% is "yesterday's
  // graph" (bulk-loaded), the rest arrives in batches with 10% connectivity
  // queries mixed into every batch.
  const EdgeList stream = GenerateRmatEdges(n, 8ull * n, /*seed=*/99);
  const size_t bulk = stream.size() * 3 / 4;
  EdgeList base;
  base.num_nodes = n;
  base.edges.assign(stream.edges.begin(), stream.edges.begin() + bulk);

  // Spec::Auto on a COO handle keeps everything edge-native: the default
  // (streamable) variant, no sampling, no representation change — the
  // static pass never builds a CSR.
  const GraphHandle base_handle(base);
  Connectivity index(Connectivity::Spec::Auto(base_handle, /*streaming=*/true));
  auto t0 = std::chrono::steady_clock::now();
  index.Build(base_handle);  // static pass over yesterday's graph
  index.Stream();            // adopt its labeling for incremental batches
  const double bulk_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("bulk-loaded %zu edges in %.3f s (%.2e edges/s, static pass)\n",
              base.size(), bulk_seconds, base.size() / bulk_seconds);

  const size_t batch_size = 100000;
  Rng rng(1);
  std::printf("ingesting remaining %zu edges in batches of %zu...\n",
              stream.size() - bulk, batch_size);
  size_t total_queries = 0;
  size_t connected_answers = 0;
  double total_seconds = 0;
  for (size_t start = bulk; start < stream.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, stream.size());
    const std::vector<Edge> updates(stream.edges.begin() + start,
                                    stream.edges.begin() + end);
    std::vector<Edge> queries(updates.size() / 10);
    for (size_t q = 0; q < queries.size(); ++q) {
      queries[q] = {static_cast<NodeId>(rng.GetBounded(start + 2 * q, n)),
                    static_cast<NodeId>(rng.GetBounded(start + 2 * q + 1, n))};
    }
    t0 = std::chrono::steady_clock::now();
    const std::vector<uint8_t> answers = index.Insert(updates, queries);
    total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    total_queries += answers.size();
    for (uint8_t a : answers) connected_answers += a;
  }
  std::printf("ingest throughput : %.2e updates/s\n",
              static_cast<double>(stream.size() - bulk) / total_seconds);
  std::printf("queries answered  : %zu (%.1f%% connected)\n", total_queries,
              100.0 * connected_answers / total_queries);
  std::printf("components so far : %u\n", index.NumComponents());

  // For reference: the cold alternative streams the bulk edges through
  // batches instead of the static pass (Stream(n) = no seed).
  Connectivity cold;
  cold.Stream(n);
  t0 = std::chrono::steady_clock::now();
  for (size_t start = 0; start < bulk; start += batch_size) {
    const size_t end = std::min(start + batch_size, bulk);
    cold.Insert(std::vector<Edge>(stream.edges.begin() + start,
                                  stream.edges.begin() + end));
  }
  const double cold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("cold bulk ingest  : %.3f s (warm static pass: %.3f s)\n",
              cold_seconds, bulk_seconds);
  return 0;
}
