// Streaming ingestion scenario (paper §1: insertion-heavy workloads like
// Twitter's follow stream), in the bulk-load-then-stream shape real
// deployments use: yesterday's graph is loaded with one fast static pass,
// whose labeling seeds the streaming structure (StreamingSeed::FromStatic);
// today's edges then arrive in batches with connectivity queries mixed in.

#include <chrono>
#include <cstdio>

#include "src/core/registry.h"
#include "src/graph/generators.h"
#include "src/parallel/random.h"

int main() {
  using namespace connectit;

  const NodeId n = 1u << 18;
  const Variant* algorithm =
      FindVariant("Union-Rem-CAS;FindNaive;SplitAtomicOne");
  if (algorithm == nullptr) return 1;

  // Simulated follow stream: RMAT edges. The first 75% is "yesterday's
  // graph" (bulk-loaded), the rest arrives in batches with 10% connectivity
  // queries mixed into every batch.
  const EdgeList stream = GenerateRmatEdges(n, 8ull * n, /*seed=*/99);
  const size_t bulk = stream.size() * 3 / 4;
  EdgeList base;
  base.num_nodes = n;
  base.edges.assign(stream.edges.begin(), stream.edges.begin() + bulk);

  // Warm start: the variant's own static pass over the base graph (COO
  // handle — edge-centric, so no CSR is ever built) seeds the streaming
  // structure with its labeling.
  auto t0 = std::chrono::steady_clock::now();
  auto stream_cc = algorithm->make_streaming(
      StreamingSeed::FromStatic(GraphHandle(base)));
  const double bulk_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("bulk-loaded %zu edges in %.3f s (%.2e edges/s, static pass)\n",
              base.size(), bulk_seconds, base.size() / bulk_seconds);

  const size_t batch_size = 100000;
  Rng rng(1);
  std::printf("ingesting remaining %zu edges in batches of %zu...\n",
              stream.size() - bulk, batch_size);
  size_t total_queries = 0;
  size_t connected_answers = 0;
  double total_seconds = 0;
  for (size_t start = bulk; start < stream.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, stream.size());
    const std::vector<Edge> updates(stream.edges.begin() + start,
                                    stream.edges.begin() + end);
    std::vector<Edge> queries(updates.size() / 10);
    for (size_t q = 0; q < queries.size(); ++q) {
      queries[q] = {static_cast<NodeId>(rng.GetBounded(start + 2 * q, n)),
                    static_cast<NodeId>(rng.GetBounded(start + 2 * q + 1, n))};
    }
    t0 = std::chrono::steady_clock::now();
    const std::vector<uint8_t> answers =
        stream_cc->ProcessBatch(updates, queries);
    total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    total_queries += answers.size();
    for (uint8_t a : answers) connected_answers += a;
  }
  std::printf("ingest throughput : %.2e updates/s\n",
              static_cast<double>(stream.size() - bulk) / total_seconds);
  std::printf("queries answered  : %zu (%.1f%% connected)\n", total_queries,
              100.0 * connected_answers / total_queries);

  const auto labels = stream_cc->Labels();
  size_t roots = 0;
  for (NodeId v = 0; v < n; ++v) roots += (labels[v] == v);
  std::printf("components so far : %zu\n", roots);

  // For reference: the cold alternative streams the bulk edges through
  // batches instead of the static pass.
  auto cold = algorithm->make_streaming(StreamingSeed::Cold(n));
  t0 = std::chrono::steady_clock::now();
  for (size_t start = 0; start < bulk; start += batch_size) {
    const size_t end = std::min(start + batch_size, bulk);
    cold->ProcessBatch(std::vector<Edge>(stream.edges.begin() + start,
                                         stream.edges.begin() + end),
                       {});
  }
  const double cold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("cold bulk ingest  : %.3f s (warm static pass: %.3f s)\n",
              cold_seconds, bulk_seconds);
  return 0;
}
