// Unit tests for the synthetic graph generators.

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/graph/generators.h"

namespace connectit {
namespace {

TEST(Generators, PathIsConnectedWithRightShape) {
  const Graph g = GeneratePath(100);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 99u);
  const ComponentStats stats =
      ComputeComponentStats(SequentialComponents(g));
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(50), 2u);
}

TEST(Generators, CycleAndStarAndComplete) {
  const Graph cycle = GenerateCycle(50);
  EXPECT_EQ(cycle.num_edges(), 50u);
  for (NodeId v = 0; v < 50; ++v) EXPECT_EQ(cycle.degree(v), 2u);

  const Graph star = GenerateStar(33);
  EXPECT_EQ(star.num_edges(), 32u);
  EXPECT_EQ(star.degree(0), 32u);

  const Graph complete = GenerateComplete(12);
  EXPECT_EQ(complete.num_edges(), 12u * 11 / 2);
  EXPECT_EQ(ComputeComponentStats(SequentialComponents(complete))
                .num_components,
            1u);
}

TEST(Generators, GridShapeAndDiameter) {
  const Graph g = GenerateGrid(10, 7);
  EXPECT_EQ(g.num_nodes(), 70u);
  EXPECT_EQ(g.num_edges(), 9u * 7 + 10u * 6);
  EXPECT_EQ(ComputeComponentStats(SequentialComponents(g)).num_components,
            1u);
  // Corner vertices have degree 2.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(69), 2u);
}

TEST(Generators, RmatDeterministicPerSeed) {
  const EdgeList a = GenerateRmatEdges(1024, 5000, 17);
  const EdgeList b = GenerateRmatEdges(1024, 5000, 17);
  const EdgeList c = GenerateRmatEdges(1024, 5000, 18);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
  EXPECT_EQ(a.size(), 5000u);
  for (const Edge& e : a.edges) {
    ASSERT_LT(e.u, 1024u);
    ASSERT_LT(e.v, 1024u);
  }
}

TEST(Generators, RmatIsSkewed) {
  // With (0.5, 0.1, 0.1) the degree distribution must be clearly skewed:
  // max degree several times the average (unlike Erdos-Renyi below).
  const Graph g = GenerateRmat(4096, 81920, 23);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_GT(static_cast<double>(stats.max_degree), 5 * stats.avg_degree);
}

TEST(Generators, ErdosRenyiIsNotSkewed) {
  const Graph g = GenerateErdosRenyi(4096, 40960, 23);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_LT(static_cast<double>(stats.max_degree), 5 * stats.avg_degree);
}

TEST(Generators, BarabasiAlbertConnectedAndSkewed) {
  const Graph g = GenerateBarabasiAlbert(2000, 3, 31);
  EXPECT_EQ(ComputeComponentStats(SequentialComponents(g)).num_components,
            1u);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_GT(static_cast<double>(stats.max_degree), 5 * stats.avg_degree);
}

TEST(Generators, ComponentMixtureHasManyComponents) {
  const Graph g = GenerateComponentMixture(4000, 8, 41);
  const ComponentStats stats =
      ComputeComponentStats(SequentialComponents(g));
  // Several planted blobs plus a tail of isolated vertices.
  EXPECT_GT(stats.num_components, 8u);
  // The largest blob holds about half the vertices.
  EXPECT_GT(stats.largest_component, 1500u);
  EXPECT_LT(stats.largest_component, 2500u);
}

TEST(Generators, DegenerateSizes) {
  EXPECT_EQ(GeneratePath(0).num_nodes(), 0u);
  EXPECT_EQ(GeneratePath(1).num_edges(), 0u);
  EXPECT_EQ(GenerateRmat(1, 10, 1).num_arcs(), 0u);
  EXPECT_EQ(GenerateGrid(1, 1).num_edges(), 0u);
  EXPECT_EQ(GenerateComplete(1).num_edges(), 0u);
}

}  // namespace
}  // namespace connectit
