// Representation parity: every registered variant, under every sampling
// scheme, must produce the identical canonical labeling on the plain CSR,
// byte-compressed, and COO edge-list representations of the same graph.
// This is the acceptance gate for the type-erased GraphHandle seam: neither
// compressed nor COO inputs are a special case anywhere in the variant
// space. The COO column additionally asserts the native-execution contract:
// unsampled edge-centric variants never materialize a CSR
// (CooCsrMaterializations stays flat), while sampled runs build it exactly
// once per handle and cache it.

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/compressed.h"
#include "src/graph/graph_handle.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

struct RepresentationTriple {
  std::string name;
  Graph graph;
  CompressedGraph compressed;
  EdgeList coo;
};

// Each basket graph encoded once, shared by the whole sweep.
const std::vector<RepresentationTriple>& Basket() {
  static const std::vector<RepresentationTriple>* basket = [] {
    auto* out = new std::vector<RepresentationTriple>();
    for (auto& [name, graph] : testing::CorrectnessBasket()) {
      CompressedGraph compressed = CompressedGraph::Encode(graph);
      EdgeList coo = ExtractEdges(graph);
      out->push_back(
          {name, std::move(graph), std::move(compressed), std::move(coo)});
    }
    return out;
  }();
  return *basket;
}

struct SweepCase {
  std::string variant;
  SamplingOption sampling;
};

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (const Variant& v : AllVariants()) {
    for (const SamplingOption s :
         {SamplingOption::kNone, SamplingOption::kKOut, SamplingOption::kBfs,
          SamplingOption::kLdd}) {
      cases.push_back({v.name, s});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name =
      info.param.variant + "_" + std::string(ToString(info.param.sampling));
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class RepresentationParity : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RepresentationParity, AllRepresentationLabelingsMatch) {
  const SweepCase& param = GetParam();
  const Variant* variant = FindVariant(param.variant);
  ASSERT_NE(variant, nullptr);
  SamplingConfig config;
  config.option = param.sampling;
  for (const RepresentationTriple& rep : Basket()) {
    const GraphHandle plain(rep.graph);
    const GraphHandle coded(rep.compressed);
    const GraphHandle coo(rep.coo);
    ASSERT_EQ(coded.representation(), GraphRepresentation::kCompressed);
    ASSERT_EQ(coo.representation(), GraphRepresentation::kCoo);
    const std::vector<NodeId> csr_labels =
        CanonicalizeLabels(variant->run(plain, config));
    const std::vector<NodeId> compressed_labels =
        CanonicalizeLabels(variant->run(coded, config));
    EXPECT_EQ(csr_labels, compressed_labels)
        << "variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << rep.name;
    const std::vector<NodeId> coo_labels =
        CanonicalizeLabels(variant->run(coo, config));
    EXPECT_EQ(csr_labels, coo_labels)
        << "variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << rep.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllSampling, RepresentationParity,
                         ::testing::ValuesIn(AllCases()), CaseName);

// Unsampled edge-centric variants (union-find, Liu-Tarjan, Stergiou) must
// execute natively on COO handles: no CSR materialization anywhere in the
// sweep.
TEST(CooNative, EdgeCentricVariantsNeverMaterializeCsr) {
  const uint64_t before = CooCsrMaterializations();
  for (const Variant& v : AllVariants()) {
    if (v.family != AlgorithmFamily::kUnionFind &&
        v.family != AlgorithmFamily::kLiuTarjan &&
        v.family != AlgorithmFamily::kStergiou) {
      continue;
    }
    for (const RepresentationTriple& rep : Basket()) {
      const GraphHandle coo(rep.coo);
      const std::vector<NodeId> labels = v.run(coo, SamplingConfig::None());
      EXPECT_EQ(CanonicalizeLabels(labels),
                CanonicalizeLabels(v.run(GraphHandle(rep.graph), {})))
          << "variant=" << v.name << " graph=" << rep.name;
      if (v.root_based) {
        const SpanningForestResult forest =
            v.run_forest(coo, SamplingConfig::None());
        EXPECT_TRUE(CheckSpanningForest(rep.graph, forest.edges))
            << "variant=" << v.name << " graph=" << rep.name;
      }
    }
  }
  EXPECT_EQ(CooCsrMaterializations(), before)
      << "an unsampled edge-centric variant built a CSR from a COO handle";
}

// Sampling needs adjacency: a sampled run on a COO handle materializes the
// CSR exactly once, and every later run on the same handle (or a copy)
// reuses the cached build.
TEST(CooNative, SampledRunsMaterializeOnceAndCache) {
  const RepresentationTriple& rep = Basket().front();
  const Variant* v = FindVariant("Union-Async;FindSplit");
  ASSERT_NE(v, nullptr);
  const GraphHandle coo(rep.coo);
  const GraphHandle copy = coo;  // shares the materialization cache
  const uint64_t before = CooCsrMaterializations();
  v->run(coo, SamplingConfig::KOut());
  EXPECT_EQ(CooCsrMaterializations(), before + 1);
  v->run(coo, SamplingConfig::Bfs());
  v->run(copy, SamplingConfig::Ldd());
  EXPECT_EQ(CooCsrMaterializations(), before + 1)
      << "the handle's CSR cache was rebuilt";
  // An independent handle over the same edges has its own cache.
  const GraphHandle fresh(rep.coo);
  v->run(fresh, SamplingConfig::KOut());
  EXPECT_EQ(CooCsrMaterializations(), before + 2);
}

// Spanning forest through a compressed or COO handle is a valid forest of
// the underlying graph.
TEST(RepresentationParity, ForestOnNonCsrHandles) {
  for (const Variant* v : RootBasedVariants()) {
    if (v->family != AlgorithmFamily::kUnionFind &&
        v->family != AlgorithmFamily::kShiloachVishkin) {
      continue;
    }
    for (const RepresentationTriple& rep : Basket()) {
      const SpanningForestResult result =
          v->run_forest(GraphHandle(rep.compressed), {});
      EXPECT_TRUE(CheckSpanningForest(rep.graph, result.edges))
          << "variant=" << v->name << " graph=" << rep.name;
      const SpanningForestResult coo_result =
          v->run_forest(GraphHandle(rep.coo), {});
      EXPECT_TRUE(CheckSpanningForest(rep.graph, coo_result.edges))
          << "variant=" << v->name << " graph=" << rep.name;
    }
    break;  // one union-find representative keeps the test fast
  }
  const Variant* sv = FindVariant("Shiloach-Vishkin");
  ASSERT_NE(sv, nullptr);
  for (const RepresentationTriple& rep : Basket()) {
    const SpanningForestResult result =
        sv->run_forest(GraphHandle(rep.compressed), SamplingConfig::KOut());
    EXPECT_TRUE(CheckSpanningForest(rep.graph, result.edges))
        << "graph=" << rep.name;
    // Sampled forest on COO goes through the cached CSR materialization.
    const SpanningForestResult coo_result =
        sv->run_forest(GraphHandle(rep.coo), SamplingConfig::KOut());
    EXPECT_TRUE(CheckSpanningForest(rep.graph, coo_result.edges))
        << "graph=" << rep.name;
  }
}

// Root-based Liu-Tarjan forest natively on COO.
TEST(CooNative, LiuTarjanForestOnCoo) {
  const Variant* lt = FindVariant("Liu-Tarjan;PRF");
  ASSERT_NE(lt, nullptr);
  ASSERT_TRUE(lt->root_based);
  const uint64_t before = CooCsrMaterializations();
  for (const RepresentationTriple& rep : Basket()) {
    const SpanningForestResult result =
        lt->run_forest(GraphHandle(rep.coo), SamplingConfig::None());
    EXPECT_TRUE(CheckSpanningForest(rep.graph, result.edges))
        << "graph=" << rep.name;
  }
  EXPECT_EQ(CooCsrMaterializations(), before);
}

// ---- GraphHandle semantics ----

TEST(GraphHandle, DefaultHandleIsEmptyGraph) {
  const GraphHandle handle;
  EXPECT_EQ(handle.num_nodes(), 0u);
  EXPECT_EQ(handle.num_arcs(), 0u);
  EXPECT_EQ(handle.representation(), GraphRepresentation::kCsr);
  const Variant* v = FindVariant("Union-Async;FindSplit");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->run(handle, {}).empty());
}

TEST(GraphHandle, ViewsDoNotOwn) {
  const Graph graph = GeneratePath(8);
  const GraphHandle handle(graph);
  EXPECT_EQ(handle.csr(), &graph);
  EXPECT_EQ(handle.compressed(), nullptr);
  EXPECT_EQ(handle.coo(), nullptr);
  EXPECT_EQ(handle.num_nodes(), 8u);
}

TEST(GraphHandle, OwningHandlesSurviveCopies) {
  GraphHandle handle;
  {
    GraphHandle original = GraphHandle::Adopt(GenerateCycle(16));
    handle = original;
  }
  EXPECT_EQ(handle.num_nodes(), 16u);
  EXPECT_EQ(handle.num_edges(), 16u);
  const Variant* v = FindVariant("Shiloach-Vishkin");
  const auto labels = CanonicalizeLabels(v->run(handle, {}));
  for (const NodeId label : labels) EXPECT_EQ(label, 0u);
}

TEST(GraphHandle, FromEdgesStaysCoo) {
  EdgeList edges;
  edges.num_nodes = 5;
  edges.edges = {{0, 1}, {1, 2}, {3, 4}};
  const GraphHandle handle = GraphHandle::FromEdges(edges);
  EXPECT_EQ(handle.representation(), GraphRepresentation::kCoo);
  EXPECT_STREQ(handle.representation_name(), "coo");
  EXPECT_EQ(handle.num_nodes(), 5u);
  EXPECT_EQ(handle.num_edges(), 3u);
  EXPECT_EQ(handle.num_arcs(), 6u);
  const Variant* v = FindVariant("Union-Rem-CAS;FindNaive;SplitAtomicOne");
  const auto labels = CanonicalizeLabels(v->run(handle, {}));
  const std::vector<NodeId> want = {0, 0, 0, 3, 3};
  EXPECT_EQ(labels, want);
}

TEST(GraphHandle, OwningCooSurvivesCopiesAndSharesCache) {
  GraphHandle handle;
  {
    EdgeList edges;
    edges.num_nodes = 4;
    edges.edges = {{0, 1}, {2, 3}};
    GraphHandle original = GraphHandle::Adopt(std::move(edges));
    handle = original;
  }
  EXPECT_EQ(handle.representation(), GraphRepresentation::kCoo);
  EXPECT_EQ(handle.num_nodes(), 4u);
  const uint64_t before = CooCsrMaterializations();
  const Graph& csr = handle.MaterializedCsr();
  EXPECT_EQ(csr.num_nodes(), 4u);
  EXPECT_EQ(csr.num_edges(), 2u);
  EXPECT_EQ(&handle.MaterializedCsr(), &csr);  // cached, not rebuilt
  EXPECT_EQ(CooCsrMaterializations(), before + 1);
}

TEST(GraphHandle, CompressOwnsEncoding) {
  const Graph graph = GenerateGrid(6, 6);
  GraphHandle handle;
  {
    const GraphHandle coded = GraphHandle::Compress(graph);
    handle = coded;
  }
  ASSERT_EQ(handle.representation(), GraphRepresentation::kCompressed);
  EXPECT_EQ(handle.num_arcs(), graph.num_arcs());
  EXPECT_STREQ(handle.representation_name(), "compressed");
}

TEST(GraphHandle, RepresentationNameIsExhaustive) {
  EXPECT_STREQ(ToString(GraphRepresentation::kCsr), "csr");
  EXPECT_STREQ(ToString(GraphRepresentation::kCompressed), "compressed");
  EXPECT_STREQ(ToString(GraphRepresentation::kCoo), "coo");
}

}  // namespace
}  // namespace connectit
