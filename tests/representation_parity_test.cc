// Representation parity: every registered variant, under every sampling
// scheme, must produce the identical canonical labeling on the plain CSR,
// byte-compressed, COO edge-list, sharded-CSR, and mmap-container
// representations of the same graph. This is the acceptance gate for the
// type-erased GraphHandle seam: no non-CSR input is a special case anywhere
// in the variant space. The COO column additionally asserts the
// native-execution contract: unsampled edge-centric variants never
// materialize a CSR (CooCsrMaterializations stays flat), while sampled runs
// build it exactly once per handle and cache it. The sharded and mapped
// columns assert the stronger form: *no* run — any variant, any sampling —
// ever flattens the shards or copies the mapping
// (Sharded/MappedCsrMaterializations stay flat across the whole sweep).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/compressed.h"
#include "src/graph/container.h"
#include "src/graph/graph_handle.h"
#include "src/graph/sharded.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

// A fixed non-trivial shard count so the sweep exercises real shard
// boundaries even on single-core runners (where the default P would be 1).
constexpr size_t kSweepShards = 4;

struct RepresentationSet {
  std::string name;
  Graph graph;
  CompressedGraph compressed;
  EdgeList coo;
  ShardedGraph sharded;
  MappedGraph mapped;  // move-only: the set owns the unlinked temp mapping
};

// Each basket graph encoded once, shared by the whole sweep. The mapped
// member is the graph written to a temp .cgc and mmap'd back; the file is
// unlinked immediately, so the mapping is the only remaining reference.
const std::vector<RepresentationSet>& Basket() {
  static const std::vector<RepresentationSet>* basket = [] {
    auto* out = new std::vector<RepresentationSet>();
    for (auto& [name, graph] : testing::CorrectnessBasket()) {
      CompressedGraph compressed = CompressedGraph::Encode(graph);
      EdgeList coo = ExtractEdges(graph);
      ShardedGraph sharded = ShardedGraph::Partition(graph, kSweepShards);
      const std::string path =
          ::testing::TempDir() + "/parity_" + name + ".cgc";
      std::string error;
      MappedGraph mapped;
      if (!WriteContainer(path, graph, &error) ||
          !MappedGraph::Map(path, &mapped, &error)) {
        ADD_FAILURE() << "container setup for " << name << ": " << error;
      }
      std::remove(path.c_str());
      RepresentationSet set;
      set.name = name;
      set.graph = std::move(graph);
      set.compressed = std::move(compressed);
      set.coo = std::move(coo);
      set.sharded = std::move(sharded);
      set.mapped = std::move(mapped);
      out->push_back(std::move(set));
    }
    return out;
  }();
  return *basket;
}

struct SweepCase {
  std::string variant;
  SamplingOption sampling;
};

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (const Variant& v : AllVariants()) {
    for (const SamplingOption s :
         {SamplingOption::kNone, SamplingOption::kKOut, SamplingOption::kBfs,
          SamplingOption::kLdd}) {
      cases.push_back({v.name, s});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name =
      info.param.variant + "_" + std::string(ToString(info.param.sampling));
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class RepresentationParity : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RepresentationParity, AllRepresentationLabelingsMatch) {
  const SweepCase& param = GetParam();
  const Variant* variant = FindVariant(param.variant);
  ASSERT_NE(variant, nullptr);
  SamplingConfig config;
  config.option = param.sampling;
  for (const RepresentationSet& rep : Basket()) {
    const GraphHandle plain(rep.graph);
    const GraphHandle coded(rep.compressed);
    const GraphHandle coo(rep.coo);
    const GraphHandle sharded(rep.sharded);
    const GraphHandle mapped(rep.mapped);
    ASSERT_EQ(coded.representation(), GraphRepresentation::kCompressed);
    ASSERT_EQ(coo.representation(), GraphRepresentation::kCoo);
    ASSERT_EQ(sharded.representation(), GraphRepresentation::kSharded);
    ASSERT_EQ(mapped.representation(), GraphRepresentation::kMapped);
    const std::vector<NodeId> csr_labels =
        CanonicalizeLabels(variant->run(plain, config));
    const std::vector<NodeId> compressed_labels =
        CanonicalizeLabels(variant->run(coded, config));
    EXPECT_EQ(csr_labels, compressed_labels)
        << "variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << rep.name;
    const std::vector<NodeId> coo_labels =
        CanonicalizeLabels(variant->run(coo, config));
    EXPECT_EQ(csr_labels, coo_labels)
        << "variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << rep.name;
    // The sharded run must match AND stay native: no variant × sampling
    // combination is allowed to flatten the shards into one CSR.
    const uint64_t flattens_before = ShardedCsrMaterializations();
    const std::vector<NodeId> sharded_labels =
        CanonicalizeLabels(variant->run(sharded, config));
    EXPECT_EQ(csr_labels, sharded_labels)
        << "variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << rep.name;
    EXPECT_EQ(ShardedCsrMaterializations(), flattens_before)
        << "a sharded run flattened to CSR: variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << rep.name;
    // Same contract for the mmap container: every run serves zero-copy off
    // the mapping, never through a materialized CSR copy.
    const uint64_t copies_before = MappedCsrMaterializations();
    const std::vector<NodeId> mapped_labels =
        CanonicalizeLabels(variant->run(mapped, config));
    EXPECT_EQ(csr_labels, mapped_labels)
        << "variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << rep.name;
    EXPECT_EQ(MappedCsrMaterializations(), copies_before)
        << "a mapped run copied to CSR: variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << rep.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllSampling, RepresentationParity,
                         ::testing::ValuesIn(AllCases()), CaseName);

// Unsampled edge-centric variants (union-find, Liu-Tarjan, Stergiou) must
// execute natively on COO handles: no CSR materialization anywhere in the
// sweep.
TEST(CooNative, EdgeCentricVariantsNeverMaterializeCsr) {
  const uint64_t before = CooCsrMaterializations();
  for (const Variant& v : AllVariants()) {
    if (v.family != AlgorithmFamily::kUnionFind &&
        v.family != AlgorithmFamily::kLiuTarjan &&
        v.family != AlgorithmFamily::kStergiou) {
      continue;
    }
    for (const RepresentationSet& rep : Basket()) {
      const GraphHandle coo(rep.coo);
      const std::vector<NodeId> labels = v.run(coo, SamplingConfig::None());
      EXPECT_EQ(CanonicalizeLabels(labels),
                CanonicalizeLabels(v.run(GraphHandle(rep.graph), {})))
          << "variant=" << v.name << " graph=" << rep.name;
      if (v.root_based) {
        const SpanningForestResult forest =
            v.run_forest(coo, SamplingConfig::None());
        EXPECT_TRUE(CheckSpanningForest(rep.graph, forest.edges))
            << "variant=" << v.name << " graph=" << rep.name;
      }
    }
  }
  EXPECT_EQ(CooCsrMaterializations(), before)
      << "an unsampled edge-centric variant built a CSR from a COO handle";
}

// Sampling needs adjacency: a sampled run on a COO handle materializes the
// CSR exactly once, and every later run on the same handle (or a copy)
// reuses the cached build.
TEST(CooNative, SampledRunsMaterializeOnceAndCache) {
  const RepresentationSet& rep = Basket().front();
  const Variant* v = FindVariant("Union-Async;FindSplit");
  ASSERT_NE(v, nullptr);
  const GraphHandle coo(rep.coo);
  const GraphHandle copy = coo;  // shares the materialization cache
  const uint64_t before = CooCsrMaterializations();
  v->run(coo, SamplingConfig::KOut());
  EXPECT_EQ(CooCsrMaterializations(), before + 1);
  v->run(coo, SamplingConfig::Bfs());
  v->run(copy, SamplingConfig::Ldd());
  EXPECT_EQ(CooCsrMaterializations(), before + 1)
      << "the handle's CSR cache was rebuilt";
  // An independent handle over the same edges has its own cache.
  const GraphHandle fresh(rep.coo);
  v->run(fresh, SamplingConfig::KOut());
  EXPECT_EQ(CooCsrMaterializations(), before + 2);
}

// Spanning forest through a compressed or COO handle is a valid forest of
// the underlying graph.
TEST(RepresentationParity, ForestOnNonCsrHandles) {
  for (const Variant* v : RootBasedVariants()) {
    if (v->family != AlgorithmFamily::kUnionFind &&
        v->family != AlgorithmFamily::kShiloachVishkin) {
      continue;
    }
    for (const RepresentationSet& rep : Basket()) {
      const SpanningForestResult result =
          v->run_forest(GraphHandle(rep.compressed), {});
      EXPECT_TRUE(CheckSpanningForest(rep.graph, result.edges))
          << "variant=" << v->name << " graph=" << rep.name;
      const SpanningForestResult coo_result =
          v->run_forest(GraphHandle(rep.coo), {});
      EXPECT_TRUE(CheckSpanningForest(rep.graph, coo_result.edges))
          << "variant=" << v->name << " graph=" << rep.name;
      const SpanningForestResult sharded_result =
          v->run_forest(GraphHandle(rep.sharded), {});
      EXPECT_TRUE(CheckSpanningForest(rep.graph, sharded_result.edges))
          << "variant=" << v->name << " graph=" << rep.name;
      const SpanningForestResult mapped_result =
          v->run_forest(GraphHandle(rep.mapped), {});
      EXPECT_TRUE(CheckSpanningForest(rep.graph, mapped_result.edges))
          << "variant=" << v->name << " graph=" << rep.name;
    }
    break;  // one union-find representative keeps the test fast
  }
  const Variant* sv = FindVariant("Shiloach-Vishkin");
  ASSERT_NE(sv, nullptr);
  for (const RepresentationSet& rep : Basket()) {
    const SpanningForestResult result =
        sv->run_forest(GraphHandle(rep.compressed), SamplingConfig::KOut());
    EXPECT_TRUE(CheckSpanningForest(rep.graph, result.edges))
        << "graph=" << rep.name;
    // Sampled forest on COO goes through the cached CSR materialization.
    const SpanningForestResult coo_result =
        sv->run_forest(GraphHandle(rep.coo), SamplingConfig::KOut());
    EXPECT_TRUE(CheckSpanningForest(rep.graph, coo_result.edges))
        << "graph=" << rep.name;
    // Sampled forest on sharded runs on the shards directly.
    const SpanningForestResult sharded_result =
        sv->run_forest(GraphHandle(rep.sharded), SamplingConfig::KOut());
    EXPECT_TRUE(CheckSpanningForest(rep.graph, sharded_result.edges))
        << "graph=" << rep.name;
  }
}

// Root-based Liu-Tarjan forest natively on COO.
TEST(CooNative, LiuTarjanForestOnCoo) {
  const Variant* lt = FindVariant("Liu-Tarjan;PRF");
  ASSERT_NE(lt, nullptr);
  ASSERT_TRUE(lt->root_based);
  const uint64_t before = CooCsrMaterializations();
  for (const RepresentationSet& rep : Basket()) {
    const SpanningForestResult result =
        lt->run_forest(GraphHandle(rep.coo), SamplingConfig::None());
    EXPECT_TRUE(CheckSpanningForest(rep.graph, result.edges))
        << "graph=" << rep.name;
  }
  EXPECT_EQ(CooCsrMaterializations(), before);
}

// ---- GraphHandle semantics ----

TEST(GraphHandle, DefaultHandleIsEmptyGraph) {
  const GraphHandle handle;
  EXPECT_EQ(handle.num_nodes(), 0u);
  EXPECT_EQ(handle.num_arcs(), 0u);
  EXPECT_EQ(handle.representation(), GraphRepresentation::kCsr);
  const Variant* v = FindVariant("Union-Async;FindSplit");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->run(handle, {}).empty());
}

TEST(GraphHandle, ViewsDoNotOwn) {
  const Graph graph = GeneratePath(8);
  const GraphHandle handle(graph);
  EXPECT_EQ(handle.csr(), &graph);
  EXPECT_EQ(handle.compressed(), nullptr);
  EXPECT_EQ(handle.coo(), nullptr);
  EXPECT_EQ(handle.num_nodes(), 8u);
}

TEST(GraphHandle, OwningHandlesSurviveCopies) {
  GraphHandle handle;
  {
    GraphHandle original = GraphHandle::Adopt(GenerateCycle(16));
    handle = original;
  }
  EXPECT_EQ(handle.num_nodes(), 16u);
  EXPECT_EQ(handle.num_edges(), 16u);
  const Variant* v = FindVariant("Shiloach-Vishkin");
  const auto labels = CanonicalizeLabels(v->run(handle, {}));
  for (const NodeId label : labels) EXPECT_EQ(label, 0u);
}

TEST(GraphHandle, FromEdgesStaysCoo) {
  EdgeList edges;
  edges.num_nodes = 5;
  edges.edges = {{0, 1}, {1, 2}, {3, 4}};
  const GraphHandle handle = GraphHandle::FromEdges(edges);
  EXPECT_EQ(handle.representation(), GraphRepresentation::kCoo);
  EXPECT_STREQ(handle.representation_name(), "coo");
  EXPECT_EQ(handle.num_nodes(), 5u);
  EXPECT_EQ(handle.num_edges(), 3u);
  EXPECT_EQ(handle.num_arcs(), 6u);
  const Variant* v = &DefaultVariant();
  const auto labels = CanonicalizeLabels(v->run(handle, {}));
  const std::vector<NodeId> want = {0, 0, 0, 3, 3};
  EXPECT_EQ(labels, want);
}

TEST(GraphHandle, OwningCooSurvivesCopiesAndSharesCache) {
  GraphHandle handle;
  {
    EdgeList edges;
    edges.num_nodes = 4;
    edges.edges = {{0, 1}, {2, 3}};
    GraphHandle original = GraphHandle::Adopt(std::move(edges));
    handle = original;
  }
  EXPECT_EQ(handle.representation(), GraphRepresentation::kCoo);
  EXPECT_EQ(handle.num_nodes(), 4u);
  const uint64_t before = CooCsrMaterializations();
  const Graph& csr = handle.MaterializedCsr();
  EXPECT_EQ(csr.num_nodes(), 4u);
  EXPECT_EQ(csr.num_edges(), 2u);
  EXPECT_EQ(&handle.MaterializedCsr(), &csr);  // cached, not rebuilt
  EXPECT_EQ(CooCsrMaterializations(), before + 1);
}

TEST(GraphHandle, CompressOwnsEncoding) {
  const Graph graph = GenerateGrid(6, 6);
  GraphHandle handle;
  {
    const GraphHandle coded = GraphHandle::Compress(graph);
    handle = coded;
  }
  ASSERT_EQ(handle.representation(), GraphRepresentation::kCompressed);
  EXPECT_EQ(handle.num_arcs(), graph.num_arcs());
  EXPECT_STREQ(handle.representation_name(), "compressed");
}

TEST(GraphHandle, RepresentationNameIsExhaustive) {
  EXPECT_STREQ(ToString(GraphRepresentation::kCsr), "csr");
  EXPECT_STREQ(ToString(GraphRepresentation::kCompressed), "compressed");
  EXPECT_STREQ(ToString(GraphRepresentation::kCoo), "coo");
  EXPECT_STREQ(ToString(GraphRepresentation::kSharded), "sharded");
  EXPECT_STREQ(ToString(GraphRepresentation::kMapped), "mapped");
}

// ---- sharded CSR: structure, boundaries, and the native contract ----

// Structural equality against the flat CSR: every accessor of the adjacency
// surface must agree, for any shard count.
void ExpectShardedMatchesFlat(const Graph& graph, size_t num_shards) {
  const ShardedGraph sharded = ShardedGraph::Partition(graph, num_shards);
  ASSERT_EQ(sharded.num_shards(), num_shards);
  EXPECT_EQ(sharded.num_nodes(), graph.num_nodes());
  EXPECT_EQ(sharded.num_arcs(), graph.num_arcs());
  EXPECT_EQ(sharded.num_edges(), graph.num_edges());
  // Shards must tile [0, n) in order with no overlap.
  NodeId covered = 0;
  EdgeId arcs = 0;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.shard(s).first, covered) << "shard " << s;
    covered += sharded.shard(s).count();
    arcs += sharded.shard(s).arcs();
  }
  EXPECT_EQ(covered, graph.num_nodes());
  EXPECT_EQ(arcs, graph.num_arcs());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    ASSERT_LT(sharded.ShardOf(v), sharded.num_shards()) << "v=" << v;
    ASSERT_EQ(sharded.degree(v), graph.degree(v)) << "v=" << v;
    const auto want = graph.neighbors(v);
    const auto got = sharded.neighbors(v);
    ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()))
        << "v=" << v;
    for (EdgeId i = 0; i < graph.degree(v); ++i) {
      ASSERT_EQ(sharded.NeighborAt(v, i), graph.NeighborAt(v, i))
          << "v=" << v << " i=" << i;
    }
  }
  // MapArcs must visit exactly the flat CSR's arc multiset.
  std::vector<std::vector<NodeId>> arcs_by_source(graph.num_nodes());
  std::mutex mu;
  sharded.MapArcs([&](NodeId u, NodeId v) {
    std::lock_guard<std::mutex> lock(mu);
    arcs_by_source[u].push_back(v);
  });
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    std::sort(arcs_by_source[u].begin(), arcs_by_source[u].end());
    std::vector<NodeId> want(graph.neighbors(u).begin(),
                             graph.neighbors(u).end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(arcs_by_source[u], want) << "u=" << u;
  }
  // Flatten is the exact inverse of Partition.
  const Graph flat = sharded.Flatten();
  EXPECT_EQ(flat.offsets(), graph.offsets());
  EXPECT_EQ(flat.neighbor_array(), graph.neighbor_array());
}

TEST(ShardedGraph, MatchesFlatCsrAcrossShardCounts) {
  const Graph grid = GenerateGrid(9, 7);   // n=63
  const Graph rmat = GenerateRmat(256, 1024, /*seed=*/17);
  for (const Graph* graph : {&grid, &rmat}) {
    const NodeId n = graph->num_nodes();
    // P=1 (one shard is the flat CSR), small counts with ragged boundaries,
    // P=n (one vertex per shard), and P>n (trailing empty shards).
    for (const size_t shards :
         {size_t{1}, size_t{2}, size_t{3}, size_t{7}, static_cast<size_t>(n),
          static_cast<size_t>(n) + 5}) {
      SCOPED_TRACE(::testing::Message() << "n=" << n << " P=" << shards);
      ExpectShardedMatchesFlat(*graph, shards);
    }
  }
}

TEST(ShardedGraph, EmptyAndDegenerateGraphs) {
  // Empty graph, any shard count: all shards empty, nothing to visit.
  const Graph empty = BuildGraph(0, {});
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    const ShardedGraph sharded = ShardedGraph::Partition(empty, shards);
    EXPECT_EQ(sharded.num_shards(), shards);
    EXPECT_EQ(sharded.num_nodes(), 0u);
    EXPECT_EQ(sharded.num_arcs(), 0u);
    bool visited = false;
    sharded.MapArcs([&](NodeId, NodeId) { visited = true; });
    EXPECT_FALSE(visited);
  }
  // P = 0 selects the worker-count default; still a valid partition.
  const Graph path = GeneratePath(10);
  const ShardedGraph defaulted = ShardedGraph::Partition(path, 0);
  EXPECT_GE(defaulted.num_shards(), 1u);
  EXPECT_EQ(defaulted.num_nodes(), 10u);
  EXPECT_EQ(defaulted.Flatten().offsets(), path.offsets());
}

TEST(ShardedGraph, IsolatedVerticesAtShardBoundaries) {
  // n=12, P=4 => chunk 3, boundaries at 3, 6, 9. Vertices 2,3 (straddling
  // the first boundary), 6 (opening a shard), and 11 (closing the last) are
  // isolated; edges connect the rest across shard lines.
  const Graph graph = BuildGraph(
      12, {{0, 1}, {1, 4}, {4, 5}, {5, 7}, {7, 8}, {8, 9}, {9, 10}, {0, 10}});
  ExpectShardedMatchesFlat(graph, 4);
  const ShardedGraph sharded = ShardedGraph::Partition(graph, 4);
  for (const NodeId isolated : {2u, 3u, 6u, 11u}) {
    EXPECT_EQ(sharded.degree(isolated), 0u) << "v=" << isolated;
  }
  // Boundary vertices land in the right shard.
  EXPECT_EQ(sharded.ShardOf(2), 0u);
  EXPECT_EQ(sharded.ShardOf(3), 1u);
  EXPECT_EQ(sharded.ShardOf(6), 2u);
  EXPECT_EQ(sharded.ShardOf(11), 3u);
  // Connectivity through a sharded handle treats the isolated vertices as
  // their own components, exactly like the flat CSR.
  const Variant* v = &DefaultVariant();
  EXPECT_EQ(CanonicalizeLabels(v->run(GraphHandle(sharded), {})),
            CanonicalizeLabels(v->run(GraphHandle(graph), {})));
}

// The sharded-native contract, stated as its own test (the parity sweep
// pins it per case): one representative per family, under every sampling
// scheme, runs on the shards with zero flat-CSR materializations.
TEST(ShardedNative, AllFamiliesAllSamplingNeverFlatten) {
  const uint64_t before = ShardedCsrMaterializations();
  for (const char* name :
       {"Union-Rem-CAS;FindNaive;SplitAtomicOne", "Union-Async;FindSplit",
        "Liu-Tarjan;PRF", "Stergiou", "Shiloach-Vishkin",
        "Label-Propagation"}) {
    const Variant* v = FindVariant(name);
    ASSERT_NE(v, nullptr) << name;
    for (const SamplingOption s :
         {SamplingOption::kNone, SamplingOption::kKOut, SamplingOption::kBfs,
          SamplingOption::kLdd}) {
      SamplingConfig config;
      config.option = s;
      for (const RepresentationSet& rep : Basket()) {
        const GraphHandle sharded(rep.sharded);
        EXPECT_EQ(CanonicalizeLabels(v->run(sharded, config)),
                  CanonicalizeLabels(v->run(GraphHandle(rep.graph), config)))
            << "variant=" << name << " sampling=" << ToString(s)
            << " graph=" << rep.name;
      }
    }
  }
  EXPECT_EQ(ShardedCsrMaterializations(), before)
      << "a sharded registry run flattened the shards into a CSR";
}

// The flat-CSR escape hatch: only an explicit MaterializedCsr() call
// flattens, it flattens once, and copies of the handle share the build.
TEST(ShardedNative, ExplicitMaterializationFlattensOnceAndCaches) {
  const Graph graph = GenerateGrid(8, 8);
  const GraphHandle handle = GraphHandle::Shard(graph, 4);
  const GraphHandle copy = handle;  // shares the flatten cache
  const uint64_t before = ShardedCsrMaterializations();
  const Graph& flat = handle.MaterializedCsr();
  EXPECT_EQ(ShardedCsrMaterializations(), before + 1);
  EXPECT_EQ(flat.offsets(), graph.offsets());
  EXPECT_EQ(flat.neighbor_array(), graph.neighbor_array());
  EXPECT_EQ(&copy.MaterializedCsr(), &flat) << "the flatten was rebuilt";
  EXPECT_EQ(ShardedCsrMaterializations(), before + 1);
  // An independent handle over the same graph has its own cache.
  const GraphHandle fresh = GraphHandle::Shard(graph, 4);
  fresh.MaterializedCsr();
  EXPECT_EQ(ShardedCsrMaterializations(), before + 2);
}

TEST(GraphHandle, ShardOwnsPartition) {
  GraphHandle handle;
  {
    const Graph graph = GenerateCycle(20);
    GraphHandle original = GraphHandle::Shard(graph, 5);
    handle = original;
    // `graph` dies here; the handle's shards own a copy of the adjacency.
  }
  ASSERT_EQ(handle.representation(), GraphRepresentation::kSharded);
  EXPECT_STREQ(handle.representation_name(), "sharded");
  EXPECT_EQ(handle.num_nodes(), 20u);
  EXPECT_EQ(handle.num_edges(), 20u);
  EXPECT_EQ(handle.sharded()->num_shards(), 5u);
  const Variant* v = FindVariant("Union-Async;FindSplit");
  ASSERT_NE(v, nullptr);
  const auto labels = CanonicalizeLabels(v->run(handle, {}));
  for (const NodeId label : labels) EXPECT_EQ(label, 0u);
}

TEST(GraphHandle, ShardedViewDoesNotOwn) {
  const Graph graph = GeneratePath(8);
  const ShardedGraph sharded = ShardedGraph::Partition(graph, 2);
  const GraphHandle handle(sharded);
  EXPECT_EQ(handle.sharded(), &sharded);
  EXPECT_EQ(handle.csr(), nullptr);
  EXPECT_EQ(handle.coo(), nullptr);
  EXPECT_EQ(handle.num_nodes(), 8u);
}

// The bench plumbing contract: bench::MakeBenchHandle honors
// CONNECTIT_BENCH_REPR (and CONNECTIT_BENCH_SHARDS), and whatever handle it
// builds must reproduce the CSR labeling. CI runs this suite with
// CONNECTIT_BENCH_REPR=sharded so the sharded bench path is exercised on
// every push; unset, it checks the default CSR path.
TEST(BenchReprContract, BenchHandleMatchesCsr) {
  const Variant* v = &DefaultVariant();
  for (const RepresentationSet& rep : Basket()) {
    const GraphHandle handle = bench::MakeBenchHandle(rep.graph);
    EXPECT_EQ(handle.representation(), bench::BenchRepr());
    for (const SamplingOption s :
         {SamplingOption::kNone, SamplingOption::kKOut}) {
      SamplingConfig config;
      config.option = s;
      EXPECT_EQ(CanonicalizeLabels(v->run(handle, config)),
                CanonicalizeLabels(v->run(GraphHandle(rep.graph), config)))
          << "repr=" << ToString(bench::BenchRepr())
          << " sampling=" << ToString(s) << " graph=" << rep.name;
    }
  }
}

}  // namespace
}  // namespace connectit
