// CSR vs byte-compressed parity: every registered variant, under every
// sampling scheme, must produce the identical canonical labeling on the
// plain and compressed representations of the same graph. This is the
// acceptance gate for the type-erased GraphHandle seam: compressed inputs
// are not a special case anywhere in the variant space.

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "src/graph/compressed.h"
#include "src/graph/graph_handle.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

struct RepresentationPair {
  std::string name;
  Graph graph;
  CompressedGraph compressed;
};

// Each basket graph encoded once, shared by the whole sweep.
const std::vector<RepresentationPair>& Basket() {
  static const std::vector<RepresentationPair>* basket = [] {
    auto* out = new std::vector<RepresentationPair>();
    for (auto& [name, graph] : testing::CorrectnessBasket()) {
      CompressedGraph compressed = CompressedGraph::Encode(graph);
      out->push_back({name, std::move(graph), std::move(compressed)});
    }
    return out;
  }();
  return *basket;
}

struct SweepCase {
  std::string variant;
  SamplingOption sampling;
};

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (const Variant& v : AllVariants()) {
    for (const SamplingOption s :
         {SamplingOption::kNone, SamplingOption::kKOut, SamplingOption::kBfs,
          SamplingOption::kLdd}) {
      cases.push_back({v.name, s});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name =
      info.param.variant + "_" + std::string(ToString(info.param.sampling));
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class RepresentationParity : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RepresentationParity, CsrAndCompressedLabelingsMatch) {
  const SweepCase& param = GetParam();
  const Variant* variant = FindVariant(param.variant);
  ASSERT_NE(variant, nullptr);
  SamplingConfig config;
  config.option = param.sampling;
  for (const RepresentationPair& rep : Basket()) {
    const GraphHandle plain(rep.graph);
    const GraphHandle coded(rep.compressed);
    ASSERT_EQ(coded.representation(), GraphRepresentation::kCompressed);
    const std::vector<NodeId> csr_labels =
        CanonicalizeLabels(variant->run(plain, config));
    const std::vector<NodeId> compressed_labels =
        CanonicalizeLabels(variant->run(coded, config));
    EXPECT_EQ(csr_labels, compressed_labels)
        << "variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << rep.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllSampling, RepresentationParity,
                         ::testing::ValuesIn(AllCases()), CaseName);

// Spanning forest through a compressed handle is a valid forest of the
// underlying graph.
TEST(RepresentationParity, ForestOnCompressedHandle) {
  for (const Variant* v : RootBasedVariants()) {
    if (v->family != AlgorithmFamily::kUnionFind &&
        v->family != AlgorithmFamily::kShiloachVishkin) {
      continue;
    }
    for (const RepresentationPair& rep : Basket()) {
      const SpanningForestResult result =
          v->run_forest(GraphHandle(rep.compressed), {});
      EXPECT_TRUE(CheckSpanningForest(rep.graph, result.edges))
          << "variant=" << v->name << " graph=" << rep.name;
    }
    break;  // one union-find representative keeps the test fast
  }
  const Variant* sv = FindVariant("Shiloach-Vishkin");
  ASSERT_NE(sv, nullptr);
  for (const RepresentationPair& rep : Basket()) {
    const SpanningForestResult result =
        sv->run_forest(GraphHandle(rep.compressed), SamplingConfig::KOut());
    EXPECT_TRUE(CheckSpanningForest(rep.graph, result.edges))
        << "graph=" << rep.name;
  }
}

// ---- GraphHandle semantics ----

TEST(GraphHandle, DefaultHandleIsEmptyGraph) {
  const GraphHandle handle;
  EXPECT_EQ(handle.num_nodes(), 0u);
  EXPECT_EQ(handle.num_arcs(), 0u);
  EXPECT_EQ(handle.representation(), GraphRepresentation::kCsr);
  const Variant* v = FindVariant("Union-Async;FindSplit");
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->run(handle, {}).empty());
}

TEST(GraphHandle, ViewsDoNotOwn) {
  const Graph graph = GeneratePath(8);
  const GraphHandle handle(graph);
  EXPECT_EQ(handle.csr(), &graph);
  EXPECT_EQ(handle.compressed(), nullptr);
  EXPECT_EQ(handle.num_nodes(), 8u);
}

TEST(GraphHandle, OwningHandlesSurviveCopies) {
  GraphHandle handle;
  {
    GraphHandle original = GraphHandle::Adopt(GenerateCycle(16));
    handle = original;
  }
  EXPECT_EQ(handle.num_nodes(), 16u);
  EXPECT_EQ(handle.num_edges(), 16u);
  const Variant* v = FindVariant("Shiloach-Vishkin");
  const auto labels = CanonicalizeLabels(v->run(handle, {}));
  for (const NodeId label : labels) EXPECT_EQ(label, 0u);
}

TEST(GraphHandle, FromEdgesMaterializesCsr) {
  EdgeList edges;
  edges.num_nodes = 5;
  edges.edges = {{0, 1}, {1, 2}, {3, 4}};
  const GraphHandle handle = GraphHandle::FromEdges(edges);
  EXPECT_EQ(handle.representation(), GraphRepresentation::kCsr);
  EXPECT_EQ(handle.num_nodes(), 5u);
  EXPECT_EQ(handle.num_edges(), 3u);
  const Variant* v = FindVariant("Union-Rem-CAS;FindNaive;SplitAtomicOne");
  const auto labels = CanonicalizeLabels(v->run(handle, {}));
  const std::vector<NodeId> want = {0, 0, 0, 3, 3};
  EXPECT_EQ(labels, want);
}

TEST(GraphHandle, CompressOwnsEncoding) {
  const Graph graph = GenerateGrid(6, 6);
  GraphHandle handle;
  {
    const GraphHandle coded = GraphHandle::Compress(graph);
    handle = coded;
  }
  ASSERT_EQ(handle.representation(), GraphRepresentation::kCompressed);
  EXPECT_EQ(handle.num_arcs(), graph.num_arcs());
  EXPECT_STREQ(handle.representation_name(), "compressed");
}

}  // namespace
}  // namespace connectit
