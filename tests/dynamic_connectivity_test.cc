// Randomized differential testing for fully dynamic connectivity
// (Connectivity::Erase + Insert), plus the Erase edge-case suite.
//
// The harness generates seeded random interleavings of Insert / Erase /
// query batches against one Connectivity index and checks every answer —
// the full labeling after each batch, and each batched Erase query —
// against a sequential static recomputation over the tracked edge set
// (SequentialComponents, the repo's ground-truth oracle). The sweep
// covers every streaming variant × the csr/coo/sharded representations.
//
// Seeds: two fixed TESTs make CI deterministic; the TimeVaryingSeed TEST
// draws a fresh seed each run (override with CONNECTIT_DIFF_SEED=<n>) and
// prints it, so a CI failure names the exact seed to reproduce with.

#include <cstdio>
#include <cstdlib>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/connectivity_index.h"
#include "src/core/registry.h"
#include "src/graph/graph_handle.h"
#include "src/stats/counters.h"

namespace connectit {
namespace {

using EdgeSet = std::set<std::pair<NodeId, NodeId>>;

std::pair<NodeId, NodeId> Canon(const Edge& e) {
  return {std::min(e.u, e.v), std::max(e.u, e.v)};
}

EdgeList ToEdgeList(NodeId n, const EdgeSet& present) {
  EdgeList out;
  out.num_nodes = n;
  out.edges.reserve(present.size());
  for (const auto& [u, v] : present) out.edges.push_back({u, v});
  return out;
}

// A uniformly random currently-present edge (the erase generator's main
// diet); kInvalidNode pair when empty.
Edge SamplePresent(const EdgeSet& present, std::mt19937_64& rng) {
  if (present.empty()) return {kInvalidNode, kInvalidNode};
  auto it = present.begin();
  std::advance(it, rng() % present.size());
  return {it->first, it->second};
}

struct HarnessConfig {
  NodeId n = 160;
  size_t base_edges = 220;   // static bulk load before streaming
  size_t min_ops = 1000;     // inserts + erases + queries, per run
  size_t inserts_per_batch = 12;
  size_t erases_per_batch = 8;
  size_t queries_per_batch = 16;
};

// One full differential run: Build(base) -> Stream -> alternating
// Insert/Erase batches with inline Erase queries, oracle-checked after
// every batch. Returns the number of operations exercised.
size_t RunDifferential(const Variant& variant, GraphRepresentation repr,
                       uint64_t seed, const HarnessConfig& cfg) {
  std::mt19937_64 rng(seed);
  const NodeId n = cfg.n;
  auto random_vertex = [&] { return static_cast<NodeId>(rng() % n); };

  EdgeSet present;
  EdgeList base;
  base.num_nodes = n;
  for (size_t i = 0; i < cfg.base_edges; ++i) {
    const Edge e = {random_vertex(), random_vertex()};
    base.edges.push_back(e);
    if (e.u != e.v) present.insert(Canon(e));
  }

  Connectivity index(Connectivity::Spec()
                         .Algorithm(variant.descriptor)
                         .Representation(repr)
                         .Shards(3));
  index.Build(GraphHandle(base)).Stream();

  size_t ops = 0;
  size_t batch_no = 0;
  while (ops < cfg.min_ops) {
    ++batch_no;
    // Insert batch: mostly fresh random pairs, salted with duplicates of
    // present edges and the occasional self-loop.
    std::vector<Edge> inserts;
    for (size_t i = 0; i < cfg.inserts_per_batch; ++i) {
      Edge e = {random_vertex(), random_vertex()};
      if (rng() % 8 == 0) e = SamplePresent(present, rng);
      if (rng() % 16 == 0) e.v = e.u;  // self-loop: must be a no-op
      if (e.u == kInvalidNode) continue;
      inserts.push_back(e);
      if (e.u != e.v) present.insert(Canon(e));
    }
    index.Insert(inserts);
    ops += inserts.size();

    // Erase batch: mostly present edges, salted with absent pairs (misses)
    // and self-loops; queries ride along and are checked exactly against
    // the post-batch oracle.
    std::vector<Edge> erases;
    for (size_t i = 0; i < cfg.erases_per_batch; ++i) {
      Edge e = SamplePresent(present, rng);
      if (rng() % 6 == 0) e = {random_vertex(), random_vertex()};
      if (e.u == kInvalidNode) continue;
      erases.push_back(e);
      if (e.u != e.v) present.erase(Canon(e));
    }
    std::vector<Edge> queries;
    for (size_t i = 0; i < cfg.queries_per_batch; ++i) {
      queries.push_back({random_vertex(), random_vertex()});
    }
    const std::vector<uint8_t> answers = index.Erase(erases, queries);
    ops += erases.size() + queries.size();

    // Oracle: full static recomputation over the tracked edge set.
    const std::vector<NodeId> expected =
        SequentialComponents(ToEdgeList(n, present));
    const std::vector<NodeId> got = CanonicalizeLabels(index.Labels());
    EXPECT_EQ(got, expected)
        << variant.name << " on " << ToString(repr) << ", seed " << seed
        << ", batch " << batch_no << ": labeling diverged from the oracle";
    for (size_t q = 0; q < queries.size(); ++q) {
      const bool oracle = expected[queries[q].u] == expected[queries[q].v];
      EXPECT_EQ(answers[q] != 0, oracle)
          << variant.name << " on " << ToString(repr) << ", seed " << seed
          << ", batch " << batch_no << ": Erase query " << q << " ("
          << queries[q].u << "," << queries[q].v
          << ") disagrees with the oracle";
    }
    if (::testing::Test::HasFailure()) break;
  }
  return ops;
}

// Every streaming variant × every adjacency-bearing representation, one
// seeded run each with >= 1000 mixed operations (the acceptance bar).
void SweepAllVariants(uint64_t seed) {
  const HarnessConfig cfg;
  for (const Variant* v : StreamingVariants()) {
    for (const GraphRepresentation repr :
         {GraphRepresentation::kCsr, GraphRepresentation::kCoo,
          GraphRepresentation::kSharded}) {
      const size_t ops = RunDifferential(*v, repr, seed, cfg);
      EXPECT_GE(ops, cfg.min_ops);
      if (::testing::Test::HasFailure()) return;  // first divergence is enough
    }
  }
}

TEST(DynamicConnectivityDifferential, FixedSeedA) { SweepAllVariants(12345); }

TEST(DynamicConnectivityDifferential, FixedSeedB) { SweepAllVariants(987654321); }

// Fresh randomness every run (CI logs the seed on failure via the assert
// messages and the line printed here). CONNECTIT_DIFF_SEED pins it for
// reproduction. The random-seed run is deeper but narrower than the fixed
// sweeps: default variant, all representations, 4x the operation count.
TEST(DynamicConnectivityDifferential, TimeVaryingSeed) {
  uint64_t seed;
  if (const char* env = std::getenv("CONNECTIT_DIFF_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  } else {
    seed = std::random_device{}();
  }
  std::printf("[ SEED ] CONNECTIT_DIFF_SEED=%llu (rerun with this env var "
              "to reproduce)\n",
              static_cast<unsigned long long>(seed));
  ::testing::Test::RecordProperty("connectit_diff_seed",
                                  std::to_string(seed));
  HarnessConfig cfg;
  cfg.min_ops = 4000;
  for (const GraphRepresentation repr :
       {GraphRepresentation::kCsr, GraphRepresentation::kCoo,
        GraphRepresentation::kSharded}) {
    RunDifferential(DefaultVariant(), repr, seed, cfg);
    if (::testing::Test::HasFailure()) return;
  }
}

// ---- Erase edge-case suite ----

class EraseEdgeCaseTest : public ::testing::Test {
 protected:
  // A path 0-1-2 plus an isolated vertex 3, cold-streamed.
  Connectivity MakePath() {
    Connectivity index;
    index.Stream(4);
    index.Insert({{0, 1}, {1, 2}});
    return index;
  }
};

TEST_F(EraseEdgeCaseTest, NonExistentEdgeIsANoOp) {
  Connectivity index = MakePath();
  const stats::ServingSnapshot before = stats::ReadServing();
  index.Erase({{0, 2}, {1, 3}});  // neither edge exists
  const stats::ServingSnapshot after = stats::ReadServing();
  EXPECT_EQ(after.erase_batches - before.erase_batches, 1u);
  EXPECT_EQ(after.erase_misses - before.erase_misses, 2u);
  EXPECT_EQ(after.edges_erased - before.edges_erased, 0u);
  EXPECT_TRUE(index.SameComponent(0, 2));
  EXPECT_EQ(index.NumComponents(), 2u);  // {0,1,2} and {3}
}

TEST_F(EraseEdgeCaseTest, DuplicateEdgesWithinOneBatch) {
  Connectivity index = MakePath();
  const stats::ServingSnapshot before = stats::ReadServing();
  // The first occurrence deletes; the duplicate (in both orientations)
  // must count as a miss, not underflow the structure.
  index.Erase({{0, 1}, {0, 1}, {1, 0}});
  const stats::ServingSnapshot after = stats::ReadServing();
  EXPECT_EQ(after.edges_erased - before.edges_erased, 1u);
  EXPECT_EQ(after.erase_misses - before.erase_misses, 2u);
  EXPECT_FALSE(index.SameComponent(0, 1));
  EXPECT_EQ(index.NumComponents(), 3u);  // {0}, {1,2}, {3}
}

TEST_F(EraseEdgeCaseTest, EraseThenReinsertAcrossBatches) {
  Connectivity index = MakePath();
  index.Erase({{1, 2}});
  EXPECT_FALSE(index.SameComponent(0, 2));
  index.Insert({{1, 2}});
  EXPECT_TRUE(index.SameComponent(0, 2));
  index.Erase({{1, 2}});
  EXPECT_FALSE(index.SameComponent(0, 2));
  EXPECT_EQ(index.NumComponents(), 3u);
}

TEST_F(EraseEdgeCaseTest, SelfLoopsAreNoOps) {
  Connectivity index = MakePath();
  index.Insert({{2, 2}});
  EXPECT_EQ(index.NumComponents(), 2u);
  const stats::ServingSnapshot before = stats::ReadServing();
  index.Erase({{2, 2}});
  const stats::ServingSnapshot after = stats::ReadServing();
  EXPECT_EQ(after.edges_erased - before.edges_erased, 0u);
  EXPECT_EQ(after.erase_misses - before.erase_misses, 1u);
  EXPECT_EQ(index.NumComponents(), 2u);
  EXPECT_TRUE(index.SameComponent(0, 2));
}

TEST_F(EraseEdgeCaseTest, DeletingTheLastEdgeSplitsTheComponent) {
  Connectivity index;
  index.Stream(4);
  index.Insert({{0, 1}, {2, 3}});
  ASSERT_EQ(index.NumComponents(), 2u);
  const stats::ServingSnapshot before = stats::ReadServing();
  index.Erase({{2, 3}});
  const stats::ServingSnapshot after = stats::ReadServing();
  EXPECT_EQ(index.NumComponents(), 3u);  // {0,1}, {2}, {3}
  EXPECT_FALSE(index.SameComponent(2, 3));
  EXPECT_TRUE(index.SameComponent(0, 1));
  EXPECT_EQ(after.forest_edge_hits - before.forest_edge_hits, 1u);
  EXPECT_EQ(after.components_split - before.components_split, 1u);
}

TEST_F(EraseEdgeCaseTest, EmptyEraseBatch) {
  Connectivity index = MakePath();
  const uint64_t version_before = index.Acquire().version();
  const std::vector<uint8_t> answers = index.Erase({}, {{0, 2}, {0, 3}});
  EXPECT_EQ(answers, (std::vector<uint8_t>{1, 0}));
  EXPECT_EQ(index.NumComponents(), 2u);
  // An empty batch still participates in the serving lifecycle: it
  // publishes, like an empty Insert.
  EXPECT_GT(index.Acquire().version(), version_before);
}

// The acceptance criterion in its purest form: deleting a forest edge
// whose component has a surviving replacement must not change a single
// query answer — the labeling is bit-for-bit identical.
TEST(EraseReplacement, SurvivingReplacementKeepsAnswers) {
  Connectivity index;
  index.Stream(5);
  // Triangle 0-1-2 plus pendant 3; vertex 4 isolated. Whichever two
  // triangle edges the forest kept, deleting either leaves a replacement.
  index.Insert({{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const std::vector<NodeId> before = index.Labels();
  const stats::ServingSnapshot s0 = stats::ReadServing();
  index.Erase({{0, 1}});
  const stats::ServingSnapshot s1 = stats::ReadServing();
  EXPECT_EQ(index.Labels(), before);
  EXPECT_EQ(s1.components_split - s0.components_split, 0u);
  // Restore the cycle and delete a different edge: as long as the
  // triangle is a cycle, any single deletion has a surviving replacement
  // (whether the victim was a forest edge or not) and keeps all answers.
  index.Insert({{0, 1}});
  EXPECT_EQ(index.Labels(), before);
  const stats::ServingSnapshot s2 = stats::ReadServing();
  index.Erase({{1, 2}});
  const stats::ServingSnapshot s3 = stats::ReadServing();
  EXPECT_EQ(index.Labels(), before);
  EXPECT_EQ(s3.components_split - s2.components_split, 0u);
  EXPECT_TRUE(index.SameComponent(0, 3));
  // Now only the tree {0-1, 0-2, 2-3} remains: deleting 0-2 must split
  // {0,1} from {2,3}.
  index.Erase({{0, 2}});
  EXPECT_FALSE(index.SameComponent(0, 2));
  EXPECT_TRUE(index.SameComponent(0, 1));
  EXPECT_TRUE(index.SameComponent(2, 3));
}

// Erase also works after a warm Build -> Stream handoff (the forest arms
// from the built graph via run_forest, then replays the insert journal).
TEST(EraseWarmStart, ArmsFromBuiltGraphAndJournal) {
  EdgeList base;
  base.num_nodes = 6;
  base.edges = {{0, 1}, {1, 2}, {3, 4}};
  Connectivity index;
  index.Build(GraphHandle(base)).Stream();
  index.Insert({{4, 5}});         // journaled until the first Erase
  index.Erase({{1, 2}});          // arms: run_forest(base) + journal replay
  EXPECT_FALSE(index.SameComponent(0, 2));
  EXPECT_TRUE(index.SameComponent(3, 5));  // journal edge survived arming
  index.Erase({{4, 5}});
  EXPECT_FALSE(index.SameComponent(3, 5));
  const std::vector<NodeId> expected = SequentialComponents(
      ToEdgeList(6, EdgeSet{{0, 1}, {3, 4}}));
  EXPECT_EQ(CanonicalizeLabels(index.Labels()), expected);
}

}  // namespace
}  // namespace connectit
