// Tests for component post-processing utilities and COO-direct
// connectivity.

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/components.h"
#include "src/core/connectit.h"
#include "src/graph/generators.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

std::vector<NodeId> LabelsOf(const Graph& g) {
  return SequentialComponents(g);
}

TEST(Components, CountMatchesOracleOnBasket) {
  for (const auto& [name, g] : testing::CorrectnessBasket()) {
    const auto labels = LabelsOf(g);
    EXPECT_EQ(CountComponents(labels),
              ComputeComponentStats(labels).num_components)
        << name;
  }
}

TEST(Components, SizesSumToN) {
  const Graph g = GenerateComponentMixture(1000, 5, 3);
  const auto labels = LabelsOf(g);
  const auto sizes = ComponentSizes(labels);
  NodeId total = 0;
  for (NodeId s : sizes) total += s;
  EXPECT_EQ(total, g.num_nodes());
  // Every label's size is positive; every non-label's is zero.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (labels[v] == v) {
      EXPECT_GT(sizes[v], 0u);
    }
  }
}

TEST(Components, DenseIdsAreDenseAndConsistent) {
  const Graph g = GenerateComponentMixture(500, 4, 9);
  const auto labels = LabelsOf(g);
  const auto dense = DenseComponentIds(labels);
  const NodeId k = CountComponents(labels);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_LT(dense[v], k);
    for (NodeId u = 0; u < v; ++u) {
      EXPECT_EQ(labels[u] == labels[v], dense[u] == dense[v]);
    }
    if (v > 50) break;  // pairwise check on a prefix is enough
  }
}

TEST(Components, ExtractComponentInducesSubgraph) {
  //   triangle {0,1,2} + path {3,4} + isolated {5}
  const Graph g = BuildGraph(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  const auto labels = LabelsOf(g);
  const InducedComponent tri = ExtractComponent(g, labels, labels[0]);
  EXPECT_EQ(tri.graph.num_nodes(), 3u);
  EXPECT_EQ(tri.graph.num_edges(), 3u);
  EXPECT_EQ(tri.vertex_map, (std::vector<NodeId>{0, 1, 2}));
  const InducedComponent pair = ExtractComponent(g, labels, labels[3]);
  EXPECT_EQ(pair.graph.num_nodes(), 2u);
  EXPECT_EQ(pair.graph.num_edges(), 1u);
  const InducedComponent lone = ExtractComponent(g, labels, labels[5]);
  EXPECT_EQ(lone.graph.num_nodes(), 1u);
  EXPECT_EQ(lone.graph.num_edges(), 0u);
}

TEST(Components, HistogramShapes) {
  const Graph g = BuildGraph(7, {{0, 1}, {2, 3}, {4, 5}});
  // Components: {0,1}, {2,3}, {4,5}, {6} -> sizes 2,2,2,1.
  const auto histogram = ComponentSizeHistogram(LabelsOf(g));
  ASSERT_EQ(histogram.size(), 2u);
  EXPECT_EQ(histogram[0], (std::pair<NodeId, NodeId>{1, 1}));
  EXPECT_EQ(histogram[1], (std::pair<NodeId, NodeId>{2, 3}));
}

TEST(CooConnectivity, UnionFindFormMatchesGroundTruth) {
  const EdgeList edges = GenerateErdosRenyiEdges(2048, 6000, 3);
  const auto truth = SequentialComponents(edges);
  const auto a = ConnectivityOnEdges<UniteOption::kRemCas, FindOption::kNaive,
                                     SpliceOption::kSplitOne>(edges);
  EXPECT_TRUE(SamePartition(a, truth));
  const auto b =
      ConnectivityOnEdges<UniteOption::kAsync, FindOption::kCompress>(edges);
  EXPECT_TRUE(SamePartition(b, truth));
  const auto c =
      ConnectivityOnEdges<UniteOption::kJtb, FindOption::kTwoTrySplit>(edges);
  EXPECT_TRUE(SamePartition(c, truth));
}

TEST(CooConnectivity, LiuTarjanFormMatchesGroundTruth) {
  const EdgeList edges = GenerateRmatEdges(1024, 4096, 7);
  const auto truth = SequentialComponents(edges);
  const auto a =
      ConnectivityOnEdgesLt<LtConnect::kConnect, LtUpdate::kUpdate,
                            LtShortcut::kShortcut, LtAlter::kAlter>(edges);
  EXPECT_TRUE(SamePartition(a, truth));
  const auto b = ConnectivityOnEdgesLt<LtConnect::kParentConnect,
                                       LtUpdate::kRootUp,
                                       LtShortcut::kFullShortcut,
                                       LtAlter::kNoAlter>(edges);
  EXPECT_TRUE(SamePartition(b, truth));
}

TEST(CooConnectivity, EmptyAndSelfLoopEdgeLists) {
  EdgeList empty;
  empty.num_nodes = 5;
  const auto labels =
      ConnectivityOnEdges<UniteOption::kAsync, FindOption::kNaive>(empty);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(labels[v], v);

  EdgeList loops;
  loops.num_nodes = 3;
  loops.edges = {{1, 1}, {2, 2}};
  const auto l2 =
      ConnectivityOnEdges<UniteOption::kAsync, FindOption::kNaive>(loops);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(l2[v], v);
}

}  // namespace
}  // namespace connectit
