// Streaming (batch-incremental) correctness sweep (paper §3.5, Theorem 7):
// after any prefix of insertion batches, the maintained labeling must equal
// static connectivity over the inserted edges, and in-batch queries must be
// consistent with the batch.

#include <algorithm>
#include <cctype>
#include <string>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "src/graph/generators.h"
#include "src/parallel/random.h"

namespace connectit {
namespace {

std::vector<std::string> StreamingNames() {
  std::vector<std::string> names;
  for (const Variant* v : StreamingVariants()) names.push_back(v->name);
  return names;
}

class StreamingSweep : public ::testing::TestWithParam<std::string> {};

std::string CaseName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

TEST_P(StreamingSweep, BatchesMatchStaticConnectivity) {
  const Variant* variant = FindVariant(GetParam());
  ASSERT_NE(variant, nullptr);
  const NodeId n = 800;
  const EdgeList stream = GenerateRmatEdges(n, 4000, 55);
  auto alg = variant->make_streaming(StreamingSeed::Cold(n));
  ASSERT_NE(alg, nullptr);

  EdgeList applied;
  applied.num_nodes = n;
  const size_t batch_size = 500;
  for (size_t start = 0; start < stream.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, stream.size());
    const std::vector<Edge> batch(stream.edges.begin() + start,
                                  stream.edges.begin() + end);
    alg->ProcessBatch(batch, {});
    applied.edges.insert(applied.edges.end(), batch.begin(), batch.end());
    // After each batch the labeling equals static ground truth.
    EXPECT_TRUE(
        SamePartition(alg->Labels(), SequentialComponents(applied)))
        << "after batch ending at " << end;
  }
}

TEST_P(StreamingSweep, QueriesReflectCompletedBatches) {
  const Variant* variant = FindVariant(GetParam());
  ASSERT_NE(variant, nullptr);
  const NodeId n = 200;
  auto alg = variant->make_streaming(StreamingSeed::Cold(n));

  // Build a path in two batches, probing connectivity between batches.
  std::vector<Edge> first_half;
  std::vector<Edge> second_half;
  for (NodeId v = 0; v + 1 < n; ++v) {
    (v < n / 2 ? first_half : second_half).push_back({v, v + 1});
  }
  auto r0 = alg->ProcessBatch({}, {{0, n - 1}, {0, 0}});
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0], 0);  // nothing inserted yet
  EXPECT_EQ(r0[1], 1);  // self-query

  alg->ProcessBatch(first_half, {});
  auto r1 = alg->ProcessBatch({}, {{0, n / 2}, {0, n - 1}});
  EXPECT_EQ(r1[0], 1);
  EXPECT_EQ(r1[1], 0);

  alg->ProcessBatch(second_half, {});
  auto r2 = alg->ProcessBatch({}, {{0, n - 1}});
  EXPECT_EQ(r2[0], 1);
}

TEST_P(StreamingSweep, MixedUpdateQueryBatchesAreSane) {
  const Variant* variant = FindVariant(GetParam());
  ASSERT_NE(variant, nullptr);
  const NodeId n = 500;
  auto alg = variant->make_streaming(StreamingSeed::Cold(n));
  Rng rng(5);
  EdgeList applied;
  applied.num_nodes = n;
  for (int round = 0; round < 5; ++round) {
    std::vector<Edge> updates;
    std::vector<Edge> queries;
    for (int i = 0; i < 200; ++i) {
      const uint64_t base = static_cast<uint64_t>(round) * 1000 + i;
      updates.push_back(
          {static_cast<NodeId>(rng.GetBounded(4 * base, n)),
           static_cast<NodeId>(rng.GetBounded(4 * base + 1, n))});
      queries.push_back(
          {static_cast<NodeId>(rng.GetBounded(4 * base + 2, n)),
           static_cast<NodeId>(rng.GetBounded(4 * base + 3, n))});
    }
    const std::vector<NodeId> before = alg->Labels();
    const std::vector<uint8_t> results = alg->ProcessBatch(updates, queries);
    applied.edges.insert(applied.edges.end(), updates.begin(), updates.end());
    const std::vector<NodeId> after_truth = SequentialComponents(applied);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      const Edge& e = queries[q];
      const bool connected_before = (before[e.u] == before[e.v]);
      const bool connected_after = (after_truth[e.u] == after_truth[e.v]);
      // Linearizable within the batch: a query may observe any prefix of
      // the batch's updates, so its answer is bracketed by the pre-batch
      // and post-batch connectivity.
      if (connected_before) {
        EXPECT_EQ(results[q], 1) << "query " << q;
      }
      if (!connected_after) {
        EXPECT_EQ(results[q], 0) << "query " << q;
      }
    }
    // Post-batch labeling is exact.
    EXPECT_TRUE(SamePartition(alg->Labels(), after_truth));
  }
}

INSTANTIATE_TEST_SUITE_P(AllStreaming, StreamingSweep,
                         ::testing::ValuesIn(StreamingNames()), CaseName);

TEST(Streaming, EmptyBatchesAreNoOps) {
  const Variant* v = &DefaultVariant();
  auto alg = v->make_streaming(StreamingSeed::Cold(10));
  EXPECT_TRUE(alg->ProcessBatch({}, {}).empty());
  const auto labels = alg->Labels();
  for (NodeId i = 0; i < 10; ++i) EXPECT_EQ(labels[i], i);
}

// Edge cases per streaming type — Type (i) fully concurrent union-find,
// Type (ii) round-synchronous (SV / RootUp Liu-Tarjan), Type (iii)
// phase-concurrent Rem with SpliceAtomic.
const char* const kOnePerType[] = {
    "Union-Async;FindNaive",                 // Type (i)
    "Shiloach-Vishkin",                      // Type (ii)
    "Liu-Tarjan;PRF",                        // Type (ii), edge-centric
    "Union-Rem-CAS;FindNaive;SpliceAtomic",  // Type (iii)
};

TEST(StreamingEdgeCases, QueryOnlyBatchesLeaveStateUntouched) {
  const NodeId n = 100;
  for (const char* name : kOnePerType) {
    const Variant* v = FindVariant(name);
    ASSERT_NE(v, nullptr) << name;
    auto alg = v->make_streaming(StreamingSeed::Cold(n));
    std::vector<Edge> path;
    for (NodeId u = 0; u + 1 < n / 2; ++u) path.push_back({u, u + 1});
    alg->ProcessBatch(path, {});
    const std::vector<NodeId> before = alg->Labels();
    // Several query-only (empty-update) batches: answers are consistent and
    // the labeling never moves.
    for (int round = 0; round < 3; ++round) {
      const auto r = alg->ProcessBatch(
          {}, {{0, n / 2 - 1}, {0, n - 1}, {n - 1, n - 1}});
      ASSERT_EQ(r.size(), 3u) << name;
      EXPECT_EQ(r[0], 1) << name;  // on the path
      EXPECT_EQ(r[1], 0) << name;  // isolated tail vertex
      EXPECT_EQ(r[2], 1) << name;  // self-query
      EXPECT_EQ(alg->Labels(), before) << name;
    }
  }
}

TEST(StreamingEdgeCases, EmptyQueryBatchesReturnNoResults) {
  const NodeId n = 64;
  for (const char* name : kOnePerType) {
    const Variant* v = FindVariant(name);
    ASSERT_NE(v, nullptr) << name;
    auto alg = v->make_streaming(StreamingSeed::Cold(n));
    EXPECT_TRUE(alg->ProcessBatch({{1, 2}, {2, 3}}, {}).empty()) << name;
    EXPECT_TRUE(alg->ProcessBatch({}, {}).empty()) << name;
    const auto labels = alg->Labels();
    EXPECT_EQ(labels[1], labels[3]) << name;
    EXPECT_NE(labels[0], labels[1]) << name;
  }
}

TEST(StreamingEdgeCases, RepeatedSelfLoopUpdatesAreNoOps) {
  const NodeId n = 50;
  for (const char* name : kOnePerType) {
    const Variant* v = FindVariant(name);
    ASSERT_NE(v, nullptr) << name;
    auto alg = v->make_streaming(StreamingSeed::Cold(n));
    // A batch of nothing but repeated self-loops, twice over.
    std::vector<Edge> loops(200);
    for (size_t i = 0; i < loops.size(); ++i) {
      const NodeId u = static_cast<NodeId>(i % n);
      loops[i] = {u, u};
    }
    for (int round = 0; round < 2; ++round) {
      const auto r = alg->ProcessBatch(loops, {{7, 7}, {7, 8}});
      ASSERT_EQ(r.size(), 2u) << name;
      EXPECT_EQ(r[0], 1) << name;
      EXPECT_EQ(r[1], 0) << name;
    }
    const auto labels = alg->Labels();
    for (NodeId u = 0; u < n; ++u) EXPECT_EQ(labels[u], u) << name;
    // Self-loops mixed into a real batch don't disturb the real updates.
    loops.push_back({10, 20});
    alg->ProcessBatch(loops, {});
    EXPECT_EQ(alg->Labels()[20], 10u) << name;
  }
}

TEST(Streaming, SingleGiantBatchEqualsStatic) {
  const NodeId n = 2000;
  const EdgeList edges = GenerateErdosRenyiEdges(n, 6000, 3);
  const std::vector<NodeId> truth = SequentialComponents(edges);
  for (const char* name :
       {"Union-Async;FindSplit", "Union-Hooks;FindHalve",
        "Union-Rem-CAS;FindNaive;SpliceAtomic", "Shiloach-Vishkin",
        "Liu-Tarjan;PRF"}) {
    const Variant* v = FindVariant(name);
    ASSERT_NE(v, nullptr) << name;
    auto alg = v->make_streaming(StreamingSeed::Cold(n));
    alg->ProcessBatch(edges.edges, {});
    EXPECT_TRUE(SamePartition(alg->Labels(), truth)) << name;
  }
}

}  // namespace
}  // namespace connectit
