// Tests for the sampling phase: Definition 3.1 properties, value
// monotonicity, per-scheme behavior, quality metrics, and IdentifyFrequent.

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/connectit.h"
#include "src/core/frequent.h"
#include "src/core/sampling.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

// Definition 3.1(1): labels form a rooted depth-<=1 forest; our schemes
// additionally guarantee labels[v] <= v (cluster-min normalization).
void CheckSampleInvariants(const std::string& context, const Graph& graph,
                           const std::vector<NodeId>& labels) {
  ASSERT_EQ(labels.size(), graph.num_nodes()) << context;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    ASSERT_LT(labels[v], graph.num_nodes()) << context;
    EXPECT_EQ(labels[labels[v]], labels[v]) << context << " v=" << v;
    EXPECT_LE(labels[v], v) << context << " v=" << v;
  }
}

// Definition 3.1(2): the sampled labeling is a valid partial labeling —
// vertices sharing a label must be connected in G.
void CheckPartialLabeling(const std::string& context, const Graph& graph,
                          const std::vector<NodeId>& labels) {
  const std::vector<NodeId> truth = SequentialComponents(graph);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    EXPECT_EQ(truth[labels[v]], truth[v])
        << context << ": sampling merged disconnected vertices, v=" << v;
  }
}

class SamplingSchemes
    : public ::testing::TestWithParam<SamplingOption> {};

TEST_P(SamplingSchemes, SatisfiesDefinition31OnBasket) {
  SamplingConfig config;
  config.option = GetParam();
  for (const auto& [name, graph] : testing::CorrectnessBasket()) {
    std::vector<NodeId> labels = IdentityLabels(graph.num_nodes());
    RunSampling(graph, config, labels);
    const std::string context =
        std::string(ToString(GetParam())) + "/" + name;
    CheckSampleInvariants(context, graph, labels);
    CheckPartialLabeling(context, graph, labels);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SamplingSchemes,
                         ::testing::Values(SamplingOption::kKOut,
                                           SamplingOption::kBfs,
                                           SamplingOption::kLdd),
                         [](const auto& info) {
                           return std::string(ToString(info.param));
                         });

TEST(KOutSampling, AllVariantsProduceValidPartialLabelings) {
  const Graph g = GenerateRmat(2048, 8192, 3);
  for (const KOutVariant variant :
       {KOutVariant::kAfforest, KOutVariant::kPure, KOutVariant::kHybrid,
        KOutVariant::kMaxDegree}) {
    for (uint32_t k : {1u, 2u, 4u}) {
      KOutOptions options;
      options.variant = variant;
      options.k = k;
      std::vector<NodeId> labels = IdentityLabels(g.num_nodes());
      KOutSample(g, options, labels);
      const std::string context = std::string(ToString(variant)) +
                                  "/k=" + std::to_string(k);
      CheckSampleInvariants(context, g, labels);
      CheckPartialLabeling(context, g, labels);
    }
  }
}

TEST(KOutSampling, LargerKImprovesCoverage) {
  const Graph g = GenerateErdosRenyi(4096, 16384, 7);
  double prev_coverage = 0.0;
  for (uint32_t k : {1u, 4u}) {
    KOutOptions options;
    options.variant = KOutVariant::kPure;
    options.k = k;
    std::vector<NodeId> labels = IdentityLabels(g.num_nodes());
    KOutSample(g, options, labels);
    const SamplingQuality q = MeasureSamplingQuality(g, labels);
    EXPECT_GE(q.coverage + 1e-9, prev_coverage) << "k=" << k;
    prev_coverage = q.coverage;
  }
  EXPECT_GT(prev_coverage, 0.5);
}

TEST(BfsSampling, CoversTheMassiveComponent) {
  const Graph g = GenerateRmat(4096, 32768, 9);
  BfsSampleOptions options;
  std::vector<NodeId> labels = IdentityLabels(g.num_nodes());
  BfsSample(g, options, labels);
  const SamplingQuality q = MeasureSamplingQuality(g, labels);
  const ComponentStats truth =
      ComputeComponentStats(SequentialComponents(g));
  // BFS finds one entire component: coverage equals the largest component.
  EXPECT_NEAR(q.coverage,
              static_cast<double>(truth.largest_component) /
                  static_cast<double>(g.num_nodes()),
              1e-9);
}

TEST(BfsSampling, FailsGracefullyWhenNoMassiveComponent) {
  // A graph of isolated vertices: every BFS covers ~nothing; labels must
  // remain the identity.
  const Graph g = BuildGraph(100, {{0, 1}});
  BfsSampleOptions options;
  options.coverage_threshold = 0.5;
  options.max_tries = 3;
  std::vector<NodeId> labels = IdentityLabels(g.num_nodes());
  BfsSample(g, options, labels);
  size_t non_identity = 0;
  for (NodeId v = 0; v < 100; ++v) non_identity += (labels[v] != v);
  EXPECT_LE(non_identity, 1u);  // at most the 0-1 pair collapsed
}

TEST(LddSampling, BetaControlsClusterCount) {
  const Graph g = GenerateGrid(40, 40);
  LddSampleOptions lo;
  lo.beta = 0.05;
  LddSampleOptions hi;
  hi.beta = 0.9;
  std::vector<NodeId> labels_lo = IdentityLabels(g.num_nodes());
  std::vector<NodeId> labels_hi = IdentityLabels(g.num_nodes());
  LddSample(g, lo, labels_lo);
  LddSample(g, hi, labels_hi);
  const SamplingQuality qlo = MeasureSamplingQuality(g, labels_lo);
  const SamplingQuality qhi = MeasureSamplingQuality(g, labels_hi);
  EXPECT_LT(qlo.num_clusters, qhi.num_clusters);
  EXPECT_LE(qlo.intercomponent_fraction, qhi.intercomponent_fraction + 0.05);
}

TEST(MeasureSamplingQuality, IdentityAndFullLabelings) {
  const Graph g = GeneratePath(10);
  const std::vector<NodeId> identity = IdentityLabels(10);
  const SamplingQuality qi = MeasureSamplingQuality(g, identity);
  EXPECT_DOUBLE_EQ(qi.coverage, 0.1);
  EXPECT_DOUBLE_EQ(qi.intercomponent_fraction, 1.0);
  EXPECT_EQ(qi.num_clusters, 10u);
  const std::vector<NodeId> full(10, 0);
  const SamplingQuality qf = MeasureSamplingQuality(g, full);
  EXPECT_DOUBLE_EQ(qf.coverage, 1.0);
  EXPECT_DOUBLE_EQ(qf.intercomponent_fraction, 0.0);
}

TEST(IdentifyFrequent, ExactFindsMajorityLabel) {
  const std::vector<NodeId> labels = {3, 3, 3, 3, 7, 7, 1};
  const FrequentResult r = IdentifyFrequentExact(labels);
  EXPECT_EQ(r.label, 3u);
  EXPECT_EQ(r.count, 4u);
  EXPECT_EQ(r.inspected, labels.size());
}

TEST(IdentifyFrequent, ExactTieBreaksBySmallestLabel) {
  const FrequentResult r = IdentifyFrequentExact({9, 9, 2, 2});
  EXPECT_EQ(r.label, 2u);
}

TEST(IdentifyFrequent, SampledAgreesOnDominantLabel) {
  std::vector<NodeId> labels(100000, 5);
  for (size_t i = 0; i < 1000; ++i) labels[i * 97 % labels.size()] = 9;
  const FrequentResult exact = IdentifyFrequentExact(labels);
  const FrequentResult sampled = IdentifyFrequentSampled(labels);
  EXPECT_EQ(exact.label, sampled.label);
  EXPECT_EQ(sampled.inspected, 1024u);
}

TEST(IdentifyFrequent, SmallInputsUseExactPath) {
  const std::vector<NodeId> labels = {1, 1, 0};
  const FrequentResult r = IdentifyFrequentSampled(labels, 1024);
  EXPECT_EQ(r.label, 1u);
  EXPECT_EQ(r.inspected, 3u);
}

TEST(IdentifyFrequent, EmptyLabels) {
  EXPECT_EQ(IdentifyFrequentExact({}).label, kInvalidNode);
  EXPECT_EQ(IdentifyFrequentSampled({}).label, kInvalidNode);
}

TEST(SkipMask, MarksFrequentVertices) {
  const std::vector<NodeId> labels = {0, 0, 2, 2, 0};
  const std::vector<uint8_t> skip = MakeSkipMask(labels, 0);
  EXPECT_EQ(skip, (std::vector<uint8_t>{1, 1, 0, 0, 1}));
  EXPECT_TRUE(MakeSkipMask(labels, kInvalidNode).empty());
}

TEST(ApplyArcRule, EachEdgeAppliedExactlyOnce) {
  // For every (skip-u, skip-v) combination, exactly one orientation of a
  // non-internal edge is applied.
  for (int su = 0; su <= 1; ++su) {
    for (int sv = 0; sv <= 1; ++sv) {
      std::vector<uint8_t> skip = {static_cast<uint8_t>(su),
                                   static_cast<uint8_t>(sv)};
      const int applied =
          (ApplyArc(0, 1, skip) ? 1 : 0) + (ApplyArc(1, 0, skip) ? 1 : 0);
      if (su && sv) {
        EXPECT_EQ(applied, 0) << su << sv;
      } else {
        EXPECT_EQ(applied, 1) << su << sv;
      }
    }
  }
}

}  // namespace
}  // namespace connectit
