// The TSan target for the network serving subsystem: a live Server on a
// Unix socket with pipelined reader clients racing wire mutations and a
// graceful Stop. The read path's contract — one epoch pin per ready-frame
// batch, no locking, single-owner connection state — is exactly the kind
// of claim a data-race detector can falsify, so CI runs this binary under
// ThreadSanitizer (and the whole test suite under ASan). The assertions
// here pin the observable half: every pipelined request is answered
// exactly once, answers are coherent with what was provably inserted,
// refusals are only the documented statuses, zero protocol errors, and a
// Stop with responses in flight still delivers every answer owed.

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/connectivity_index.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/stats/counters.h"

namespace connectit::serve {
namespace {

std::string SocketPath(const char* name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(::getpid()) + ".sock";
}

TEST(ServerConcurrency, PipelinedReadersRaceWireMutations) {
  stats::ResetTransport();
  const NodeId n = 1u << 10;
  const EdgeList base = GenerateRmatEdges(n, 2ull * n, /*seed=*/5);
  Connectivity index;
  index.Build(GraphHandle(base)).Stream();

  ServerConfig config;
  config.unix_path = SocketPath("concurrency");
  config.workers = 2;
  config.queue_capacity = 64;
  Server server(&index, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kReaders = 3;
  constexpr int kRequestsPerReader = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      ClientConfig cc;
      cc.unix_path = config.unix_path;
      Client client(cc);
      std::string err;
      if (!client.Connect(&err)) {
        ADD_FAILURE() << "reader connect: " << err;
        failures.fetch_add(1);
        return;
      }
      // Pipeline a window of mixed reads, then drain it; every request
      // must come back kOk with a coherent answer.
      std::unordered_map<uint64_t, Edge> same_queries;
      int answered = 0;
      int sent = 0;
      while (answered < kRequestsPerReader) {
        while (sent < kRequestsPerReader &&
               sent - answered < 32) {
          const Edge& e = base.edges[(r * 7919 + sent) % base.edges.size()];
          switch (sent % 4) {
            case 0:
              same_queries[client.SendSameComponent(e.u, e.v)] = e;
              break;
            case 1:
              client.SendComponent(e.u);
              break;
            case 2:
              client.SendNumComponents();
              break;
            default:
              client.SendComponentSizes(8);
              break;
          }
          ++sent;
        }
        if (!client.Flush(&err)) {
          ADD_FAILURE() << "reader flush: " << err;
          failures.fetch_add(1);
          return;
        }
        Client::Response resp;
        if (!client.Poll(&resp, /*timeout_ms=*/10000, &err)) {
          ADD_FAILURE() << "reader poll: " << err;
          failures.fetch_add(1);
          return;
        }
        ++answered;
        if (resp.status != Status::kOk) {
          ADD_FAILURE() << "read refused: " << ToString(resp.status);
          failures.fetch_add(1);
          return;
        }
        const auto it = same_queries.find(resp.request_id);
        if (it != same_queries.end()) {
          // A base edge is connected in every published labeling, no
          // matter which snapshot the worker pinned.
          Status status;
          bool connected = false;
          if (!DecodeSameComponentResponse(resp.payload.data(),
                                           resp.payload.size(), &status,
                                           &connected, &err) ||
              !connected) {
            ADD_FAILURE() << "base edge (" << it->second.u << ","
                          << it->second.v << ") answered disconnected";
            failures.fetch_add(1);
            return;
          }
        }
      }
    });
  }

  // One mutator pushes insert/erase batches through the wire while the
  // readers run; backpressure is an acceptable (counted) refusal.
  std::thread mutator([&] {
    ClientConfig cc;
    cc.unix_path = config.unix_path;
    Client client(cc);
    std::string err;
    if (!client.Connect(&err)) {
      ADD_FAILURE() << "mutator connect: " << err;
      failures.fetch_add(1);
      return;
    }
    for (int i = 0; i < 40; ++i) {
      MutateRequest req;
      const NodeId a = static_cast<NodeId>((i * 13) % n);
      const NodeId b = static_cast<NodeId>((i * 29 + 7) % n);
      req.edges = {{a, b}};
      req.queries = {{a, b}};
      MutateResponse resp;
      const Opcode op = i % 5 == 4 ? Opcode::kEraseBatch : Opcode::kInsertBatch;
      if (!client.Mutate(op, req, &resp, &err)) {
        ADD_FAILURE() << "mutate: " << err;
        failures.fetch_add(1);
        return;
      }
      if (resp.status != Status::kOk &&
          resp.status != Status::kBackpressure) {
        ADD_FAILURE() << "mutate refused: " << ToString(resp.status);
        failures.fetch_add(1);
        return;
      }
      if (resp.status == Status::kOk && op == Opcode::kInsertBatch &&
          resp.answers != std::vector<uint8_t>{1}) {
        ADD_FAILURE() << "inserted edge answered disconnected";
        failures.fetch_add(1);
        return;
      }
    }
  });

  for (std::thread& t : readers) t.join();
  mutator.join();
  server.Stop();

  EXPECT_EQ(failures.load(), 0);
  const stats::TransportSnapshot transport = stats::ReadTransport();
  EXPECT_EQ(transport.protocol_errors, 0u);
  EXPECT_EQ(transport.connections_dropped, 0u)
      << "an orderly client EOF must not count as a drop";
  EXPECT_EQ(transport.connections_accepted,
            static_cast<uint64_t>(kReaders + 1));
  // Every request frame produced exactly one response frame.
  EXPECT_EQ(transport.frames_in, transport.frames_out);
  EXPECT_GE(transport.frames_in,
            static_cast<uint64_t>(kReaders * kRequestsPerReader + 40));
}

// Stop with a full pipeline in flight: the drain still delivers every
// response the client was owed before the connection closes.
TEST(ServerConcurrency, GracefulStopDeliversPendingResponses) {
  stats::ResetTransport();
  Connectivity index;
  index.Stream(/*num_nodes=*/256);
  index.Insert({{1, 2}, {2, 3}});

  ServerConfig config;
  config.unix_path = SocketPath("graceful");
  config.workers = 1;
  Server server(&index, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ClientConfig cc;
  cc.unix_path = config.unix_path;
  Client client(cc);
  ASSERT_TRUE(client.Connect(&error)) << error;
  constexpr int kPipelined = 100;
  for (int i = 0; i < kPipelined; ++i) {
    client.SendSameComponent(1, 3);
  }
  ASSERT_TRUE(client.Flush(&error)) << error;

  // Wait for the first answer — the worker has the pipeline in hand — then
  // race Stop against the remaining 99: everything owed must come back.
  Client::Response resp;
  std::string err;
  ASSERT_TRUE(client.Poll(&resp, 10000, &err)) << err;
  ASSERT_EQ(resp.status, Status::kOk);
  int answered = 1;
  std::thread stopper([&] { server.Stop(); });
  while (answered < kPipelined && client.Poll(&resp, 5000, &err)) {
    ASSERT_EQ(resp.status, Status::kOk);
    ++answered;
  }
  stopper.join();
  EXPECT_EQ(answered, kPipelined)
      << "graceful drain lost responses (" << err << ")";
  EXPECT_EQ(stats::ReadTransport().protocol_errors, 0u);
}

// A full mutation queue refuses with kBackpressure — explicitly, counted,
// and without wedging the server or corrupting later requests.
TEST(ServerConcurrency, BackpressureRefusalIsExplicitAndRecoverable) {
  stats::ResetTransport();
  Connectivity index;
  index.Stream(/*num_nodes=*/1u << 14);

  ServerConfig config;
  config.unix_path = SocketPath("backpressure");
  config.workers = 1;
  config.queue_capacity = 1;
  Server server(&index, config);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  ClientConfig cc;
  cc.unix_path = config.unix_path;
  Client client(cc);
  ASSERT_TRUE(client.Connect(&error)) << error;

  // Burst mutations far faster than the writer drains a capacity-1 queue.
  MutateRequest req;
  for (NodeId v = 0; v + 1 < 2048; v += 2) {
    req.edges.push_back({v, v + 1});
  }
  constexpr int kBurst = 32;
  for (int i = 0; i < kBurst; ++i) {
    client.SendMutate(Opcode::kInsertBatch, req);
  }
  ASSERT_TRUE(client.Flush(&error)) << error;
  int ok = 0, refused = 0;
  for (int i = 0; i < kBurst; ++i) {
    Client::Response resp;
    ASSERT_TRUE(client.Poll(&resp, 10000, &error)) << error;
    if (resp.status == Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, Status::kBackpressure);
      ++refused;
    }
  }
  EXPECT_GT(ok, 0) << "nothing was ever applied";
  EXPECT_GT(refused, 0) << "a capacity-1 queue absorbed a 32-batch burst";
  EXPECT_EQ(static_cast<uint64_t>(refused),
            stats::ReadTransport().backpressure_rejections);
  // The connection is still healthy: a read after the burst answers.
  Status status;
  NodeId count = 0;
  uint64_t version = 0;
  ASSERT_TRUE(client.NumComponents(&status, &count, &version, &error))
      << error;
  EXPECT_EQ(status, Status::kOk);
  server.Stop();
  EXPECT_EQ(stats::ReadTransport().protocol_errors, 0u);
}

}  // namespace
}  // namespace connectit::serve
