// Container round-trip properties (ISSUE 9): every graph in the
// correctness basket — empty, single-vertex, isolated vertices, self-loop
// inputs, ragged degrees, random graphs — written to a .cgc and mapped back
// must be bit-for-bit identical to the in-memory CSR, whether the container
// was written from a flat Graph, a ShardedGraph partition, or streamed
// shard-at-a-time through ContainerWriter (the out-of-core converter path).
// Connectivity labels computed on the mapping must equal the CSR labels
// with the mapped-materialization counter pinned at zero, and the legacy v0
// flat dump (tests/testdata/v0_graph.bin, committed) must stay loadable
// through ReadGraphBinary.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/compressed.h"
#include "src/graph/container.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/graph/io.h"
#include "src/graph/sharded.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// tests/testdata/, resolved relative to this source file so the fixture is
// found regardless of the ctest working directory.
std::string TestDataPath(const std::string& name) {
  std::string dir = __FILE__;
  dir.resize(dir.rfind('/'));
  return dir + "/testdata/" + name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void ExpectMappedMatchesGraph(const MappedGraph& mapped, const Graph& graph,
                              const std::string& context) {
  ASSERT_TRUE(mapped.mapped()) << context;
  EXPECT_EQ(mapped.num_nodes(), graph.num_nodes()) << context;
  EXPECT_EQ(mapped.num_arcs(), graph.num_arcs()) << context;
  EXPECT_EQ(mapped.num_edges(), graph.num_edges()) << context;
  // Bit-for-bit: the mapped spans must equal the in-memory arrays exactly.
  const auto want_offsets = graph.offsets();
  const auto got_offsets = mapped.offsets();
  ASSERT_EQ(got_offsets.size(), want_offsets.size()) << context;
  EXPECT_TRUE(std::equal(want_offsets.begin(), want_offsets.end(),
                         got_offsets.begin()))
      << context;
  const auto want_neighbors = graph.neighbor_array();
  const auto got_neighbors = mapped.neighbor_array();
  ASSERT_EQ(got_neighbors.size(), want_neighbors.size()) << context;
  EXPECT_TRUE(std::equal(want_neighbors.begin(), want_neighbors.end(),
                         got_neighbors.begin()))
      << context;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    ASSERT_EQ(mapped.degree(v), graph.degree(v)) << context << " v=" << v;
    const auto want = graph.neighbors(v);
    const auto got = mapped.neighbors(v);
    ASSERT_TRUE(std::equal(want.begin(), want.end(), got.begin(), got.end()))
        << context << " v=" << v;
  }
}

// ---- round trip: flat writer, every basket graph ----

TEST(ContainerRoundTrip, BasketGraphsBitForBit) {
  for (const auto& [name, graph] : testing::CorrectnessBasket()) {
    const std::string path = TempPath("roundtrip_" + name + ".cgc");
    std::string error;
    ASSERT_TRUE(WriteContainer(path, graph, &error)) << name << ": " << error;
    MappedGraph mapped;
    ASSERT_TRUE(MappedGraph::Map(path, &mapped, &error))
        << name << ": " << error;
    ExpectMappedMatchesGraph(mapped, graph, name);
    // ToGraph is the O(m) escape hatch; it must reproduce the arrays too.
    const Graph copied = mapped.ToGraph();
    EXPECT_EQ(copied.offsets(), graph.offsets()) << name;
    EXPECT_EQ(copied.neighbor_array(), graph.neighbor_array()) << name;
    std::remove(path.c_str());
  }
}

TEST(ContainerRoundTrip, RaggedDegreesHandBuilt) {
  // One hub, a few leaves, an isolated vertex, and duplicate + self-loop
  // input edges (BuildGraph drops both — the container stores the result).
  const Graph graph = BuildGraph(
      7, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {1, 2}, {1, 2}, {3, 3}});
  const std::string path = TempPath("ragged.cgc");
  std::string error;
  ASSERT_TRUE(WriteContainer(path, graph, &error)) << error;
  MappedGraph mapped;
  ASSERT_TRUE(MappedGraph::Map(path, &mapped, &error)) << error;
  ExpectMappedMatchesGraph(mapped, graph, "ragged");
  EXPECT_EQ(mapped.degree(6), 0u);  // the isolated vertex
  std::remove(path.c_str());
}

TEST(ContainerRoundTrip, EmptyGraphShape) {
  const std::string path = TempPath("empty.cgc");
  std::string error;
  ASSERT_TRUE(WriteContainer(path, BuildGraph(0, {}), &error)) << error;
  MappedGraph mapped;
  ASSERT_TRUE(MappedGraph::Map(path, &mapped, &error)) << error;
  EXPECT_EQ(mapped.num_nodes(), 0u);
  EXPECT_EQ(mapped.num_arcs(), 0u);
  ASSERT_EQ(mapped.offsets().size(), 1u);  // the single sentinel offset
  EXPECT_EQ(mapped.offsets()[0], 0u);
  EXPECT_TRUE(mapped.neighbor_array().empty());
  std::remove(path.c_str());
}

// ---- round trip: sharded + streaming writers agree with the flat writer
// on the CSR payload, and with each other byte-for-byte ----

TEST(ContainerRoundTrip, ShardedWriterMatchesFlatAdjacency) {
  const EdgeList edges = GenerateErdosRenyiEdges(300, 900, /*seed=*/31);
  const Graph graph = BuildGraph(edges);
  constexpr size_t kShards = 4;

  const std::string flat_path = TempPath("src_flat.cgc");
  const std::string sharded_path = TempPath("src_sharded.cgc");
  const std::string streamed_path = TempPath("src_streamed.cgc");
  std::string error;
  ASSERT_TRUE(WriteContainer(flat_path, graph, &error)) << error;
  const ShardedGraph partition = ShardedGraph::Partition(graph, kShards);
  ASSERT_TRUE(WriteContainer(sharded_path, partition, &error)) << error;

  // The out-of-core path: BuildShard straight from the edge list, streamed
  // through ContainerWriter — byte-identical to the Partition-based file.
  {
    const NodeId n = edges.num_nodes;
    const NodeId chunk = static_cast<NodeId>(
        std::max<size_t>(1, (static_cast<size_t>(n) + kShards - 1) / kShards));
    ContainerWriter writer;
    ASSERT_TRUE(writer.Open(streamed_path, n, &error)) << error;
    for (size_t s = 0; s < kShards; ++s) {
      const NodeId first = static_cast<NodeId>(
          std::min<size_t>(s * static_cast<size_t>(chunk), n));
      const NodeId last = static_cast<NodeId>(
          std::min<size_t>((s + 1) * static_cast<size_t>(chunk), n));
      ASSERT_TRUE(writer.AppendShard(
          ShardedGraph::BuildShard(edges, first, last - first), &error))
          << "shard " << s << ": " << error;
    }
    ASSERT_TRUE(writer.Finish(&error)) << error;
  }
  EXPECT_EQ(ReadFileBytes(sharded_path), ReadFileBytes(streamed_path))
      << "Partition-based and BuildShard-based containers diverged";

  // All three serve the identical adjacency.
  for (const std::string& path : {flat_path, sharded_path, streamed_path}) {
    MappedGraph mapped;
    ASSERT_TRUE(MappedGraph::Map(path, &mapped, &error)) << path << error;
    ExpectMappedMatchesGraph(mapped, graph, path);
  }

  // The sharded files carry the partition table; the flat one does not.
  MappedGraph with_table;
  ASSERT_TRUE(MappedGraph::Map(sharded_path, &with_table, &error)) << error;
  ASSERT_TRUE(with_table.has_shard_table());
  const auto bounds = with_table.shard_boundaries();
  ASSERT_EQ(bounds.size(), kShards + 1);
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_EQ(bounds[kShards], graph.num_nodes());
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(bounds[s], partition.shard(s).first) << "shard " << s;
  }
  MappedGraph without_table;
  ASSERT_TRUE(MappedGraph::Map(flat_path, &without_table, &error)) << error;
  EXPECT_FALSE(without_table.has_shard_table());

  std::remove(flat_path.c_str());
  std::remove(sharded_path.c_str());
  std::remove(streamed_path.c_str());
}

TEST(ContainerRoundTrip, BuildShardEqualsPartitionSlice) {
  const EdgeList edges = GenerateRmatEdges(257, 1200, /*seed=*/19);
  const Graph graph = BuildGraph(edges);
  for (const size_t shards : {size_t{1}, size_t{3}, size_t{5}}) {
    const ShardedGraph partition = ShardedGraph::Partition(graph, shards);
    for (size_t s = 0; s < partition.num_shards(); ++s) {
      const ShardedGraph::Shard& want = partition.shard(s);
      const ShardedGraph::Shard got =
          ShardedGraph::BuildShard(edges, want.first, want.count());
      EXPECT_EQ(got.first, want.first) << "P=" << shards << " s=" << s;
      EXPECT_EQ(got.offsets, want.offsets) << "P=" << shards << " s=" << s;
      EXPECT_EQ(got.neighbors, want.neighbors) << "P=" << shards << " s=" << s;
    }
  }
}

// ---- optional compressed-chunks section ----

TEST(ContainerRoundTrip, CompressedChunksRoundTrip) {
  const Graph graph = GenerateRmat(512, 2048, /*seed=*/23);
  const std::string path = TempPath("with_compressed.cgc");
  std::string error;
  ContainerWriteOptions options;
  options.with_compressed = true;
  ASSERT_TRUE(WriteContainer(path, graph, &error, options)) << error;
  MappedGraph mapped;
  ASSERT_TRUE(MappedGraph::Map(path, &mapped, &error)) << error;
  ExpectMappedMatchesGraph(mapped, graph, "with_compressed");
  ASSERT_TRUE(mapped.has_compressed_chunks());
  CompressedGraph decoded;
  ASSERT_TRUE(mapped.DecodeCompressedChunks(&decoded, &error)) << error;
  EXPECT_EQ(decoded.num_nodes(), graph.num_nodes());
  EXPECT_EQ(decoded.num_arcs(), graph.num_arcs());
  // The embedded encoding serves the same connectivity as the CSR.
  const Variant* v = &DefaultVariant();
  EXPECT_EQ(CanonicalizeLabels(v->run(GraphHandle(decoded), {})),
            CanonicalizeLabels(v->run(GraphHandle(graph), {})));
  std::remove(path.c_str());
}

// ---- labels bit-for-bit across sources, zero-copy pinned ----

TEST(ContainerLabels, MappedLabelsMatchCsrAcrossSources) {
  for (const auto& [name, graph] : testing::SmallBasket()) {
    const EdgeList edges = ExtractEdges(graph);
    const std::string flat_path = TempPath("labels_flat_" + name + ".cgc");
    const std::string sharded_path =
        TempPath("labels_sharded_" + name + ".cgc");
    std::string error;
    ASSERT_TRUE(WriteContainer(flat_path, graph, &error)) << error;
    ASSERT_TRUE(WriteContainer(sharded_path,
                               ShardedGraph::Partition(graph, 3), &error))
        << error;

    const Variant* v = &DefaultVariant();
    const std::vector<NodeId> want =
        CanonicalizeLabels(v->run(GraphHandle(graph), SamplingConfig::None()));
    // The COO source must land on the same labels once mapped through the
    // temp-container path (the same bytes as the flat writer).
    const GraphHandle coo_mapped =
        GraphHandle::MapTempOrDie(BuildGraph(edges));
    for (const std::string& path : {flat_path, sharded_path}) {
      const uint64_t pinned = MappedCsrMaterializations();
      const GraphHandle handle = GraphHandle::MapOrDie(path);
      ASSERT_EQ(handle.representation(), GraphRepresentation::kMapped);
      EXPECT_EQ(CanonicalizeLabels(v->run(handle, SamplingConfig::None())),
                want)
          << name << " " << path;
      EXPECT_EQ(CanonicalizeLabels(v->run(handle, SamplingConfig::KOut())),
                want)
          << name << " " << path;
      EXPECT_EQ(MappedCsrMaterializations(), pinned)
          << "a mapped run materialized a CSR: " << name << " " << path;
    }
    EXPECT_EQ(CanonicalizeLabels(v->run(coo_mapped, SamplingConfig::None())),
              want)
        << name;
    std::remove(flat_path.c_str());
    std::remove(sharded_path.c_str());
  }
}

// Every registered variant runs off the mapping without materializing: the
// full-registry form of the zero-copy pin (sampling covered above; kNone
// here keeps the sweep fast).
TEST(ContainerLabels, EveryVariantServesZeroCopy) {
  const Graph graph = GenerateComponentMixture(800, 6, /*seed=*/29);
  const GraphHandle mapped = GraphHandle::MapTempOrDie(graph);
  const Variant* reference = &DefaultVariant();
  const std::vector<NodeId> want = CanonicalizeLabels(
      reference->run(GraphHandle(graph), SamplingConfig::None()));
  const uint64_t pinned = MappedCsrMaterializations();
  for (const Variant& v : AllVariants()) {
    EXPECT_EQ(CanonicalizeLabels(v.run(mapped, SamplingConfig::None())), want)
        << "variant=" << v.name;
  }
  EXPECT_EQ(MappedCsrMaterializations(), pinned)
      << "a variant materialized a CSR from the mapping";
}

TEST(ContainerLabels, MaterializedCsrCountedOnceAndCached) {
  const Graph graph = GenerateGrid(20, 20);
  const GraphHandle handle = GraphHandle::MapTempOrDie(graph);
  const GraphHandle copy = handle;  // shares the materialization cache
  const uint64_t before = MappedCsrMaterializations();
  const Graph& first = handle.MaterializedCsr();
  EXPECT_EQ(first.offsets(), graph.offsets());
  EXPECT_EQ(first.neighbor_array(), graph.neighbor_array());
  EXPECT_EQ(MappedCsrMaterializations(), before + 1);
  EXPECT_EQ(&copy.MaterializedCsr(), &first);  // cached, not rebuilt
  EXPECT_EQ(MappedCsrMaterializations(), before + 1);
}

// ---- io.h migration: binary files are containers now, the legacy v0 dump
// stays loadable, and error strings name the failing offset ----

TEST(IoMigration, WriteGraphBinaryEmitsContainerMagic) {
  const std::string path = TempPath("migrated.bin");
  std::string error;
  ASSERT_TRUE(WriteGraphBinary(path, GeneratePath(16), &error)) << error;
  std::ifstream in(path, std::ios::binary);
  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  EXPECT_EQ(magic, kContainerMagic);
  Graph back;
  ASSERT_TRUE(ReadGraphBinary(path, &back, &error)) << error;
  EXPECT_EQ(back.offsets(), GeneratePath(16).offsets());
  std::remove(path.c_str());
}

TEST(IoMigration, LegacyV0FixtureStaysLoadable) {
  // Committed fixture written by the pre-container WriteGraphBinary: the
  // path graph 0-1-2-3. Forward compatibility for old snapshots is part of
  // the container contract.
  const Graph want = BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  Graph got;
  std::string error;
  ASSERT_TRUE(ReadGraphBinary(TestDataPath("v0_graph.bin"), &got, &error))
      << error;
  EXPECT_EQ(got.offsets(), want.offsets());
  EXPECT_EQ(got.neighbor_array(), want.neighbor_array());
}

TEST(IoMigration, LegacyRejectedByMappedLoaderWithReconvertHint) {
  // The mmap loader refuses the legacy dump, pointing at the converter; the
  // transparent ReadGraphBinary path is how old files stay readable.
  MappedGraph mapped;
  std::string error;
  EXPECT_FALSE(MappedGraph::Map(TestDataPath("v0_graph.bin"), &mapped, &error));
  EXPECT_NE(error.find("legacy"), std::string::npos) << error;
  EXPECT_NE(error.find("graph_tool convert"), std::string::npos) << error;
}

TEST(IoErrors, ReadEdgeListFileReportsOpenFailure) {
  EdgeList out;
  std::string error;
  const std::string path = TempPath("does_not_exist.el");
  EXPECT_FALSE(ReadEdgeListFile(path, &out, &error));
  EXPECT_NE(error.find(path), std::string::npos) << error;
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(IoErrors, TruncatedLegacyReportsFieldAndOffset) {
  // A legacy file cut off inside the offsets array: the error must name the
  // field and the absolute offset where the read fell short.
  const std::vector<char> bytes = ReadFileBytes(TestDataPath("v0_graph.bin"));
  ASSERT_GT(bytes.size(), 40u);
  const std::string path = TempPath("truncated_legacy.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), 40);  // magic + n + arcs + two offsets
  }
  Graph got;
  std::string error;
  EXPECT_FALSE(ReadGraphBinary(path, &got, &error));
  EXPECT_NE(error.find("legacy offsets array"), std::string::npos) << error;
  EXPECT_NE(error.find("offset"), std::string::npos) << error;
  std::remove(path.c_str());
}

// ---- GraphHandle mapped arm plumbing ----

TEST(MappedHandle, MapFailureReturnsEmptyHandleWithError) {
  std::string error;
  const GraphHandle handle =
      GraphHandle::Map(TempPath("missing.cgc"), &error);
  EXPECT_EQ(handle.mapped(), nullptr);
  EXPECT_EQ(handle.num_nodes(), 0u);
  EXPECT_FALSE(error.empty());
}

TEST(MappedHandle, ChecksumSkipStillValidatesShape) {
  const Graph graph = GenerateCycle(50);
  const std::string path = TempPath("no_verify.cgc");
  std::string error;
  ASSERT_TRUE(WriteContainer(path, graph, &error)) << error;
  ContainerMapOptions options;
  options.verify_checksums = false;
  MappedGraph mapped;
  ASSERT_TRUE(MappedGraph::Map(path, &mapped, &error, options)) << error;
  ExpectMappedMatchesGraph(mapped, graph, "no_verify");
  std::remove(path.c_str());
}

// The incremental checksum must agree with the one-shot parallel pass for
// any chunking, including chunks that straddle block boundaries.
TEST(Checksum, AccumulatorMatchesOneShot) {
  std::vector<uint8_t> data(3 * kChecksumBlockBytes / 2 + 17);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>((i * 131) ^ (i >> 7));
  }
  const uint64_t want = ContainerChecksum(data.data(), data.size());
  for (const size_t chunk : {size_t{1} << 10, size_t{1} << 20,
                             kChecksumBlockBytes, kChecksumBlockBytes + 3}) {
    ChecksumAccumulator acc;
    for (size_t at = 0; at < data.size(); at += chunk) {
      acc.Append(data.data() + at, std::min(chunk, data.size() - at));
    }
    EXPECT_EQ(acc.Finish(), want) << "chunk=" << chunk;
    EXPECT_EQ(acc.bytes(), data.size());
  }
  // Empty input is a defined value shared by both forms.
  EXPECT_EQ(ChecksumAccumulator().Finish(), ContainerChecksum(nullptr, 0));
}

}  // namespace
}  // namespace connectit
