// Unit tests for the parallel runtime: thread pool, loops, primitives,
// atomics, and deterministic RNG.

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/parallel/atomics.h"
#include "src/parallel/primitives.h"
#include "src/parallel/random.h"
#include "src/parallel/thread_pool.h"

namespace connectit {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  std::atomic<int> count{0};
  ParallelFor(5, 5, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  ParallelFor(7, 8, [&](size_t i) {
    EXPECT_EQ(i, 7u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  std::atomic<size_t> total{0};
  ParallelFor(0, 64, [&](size_t) {
    ParallelFor(0, 64, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64u * 64u);
}

TEST(ParallelFor, RespectsExplicitGrain) {
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, [&](size_t i) { hits[i].fetch_add(1); }, /*grain=*/7);
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ParallelForBlocked, CoversRangeWithDisjointBlocks) {
  constexpr size_t kN = 54321;
  std::vector<std::atomic<int>> hits(kN);
  ParallelForBlocked(0, kN, [&](size_t lo, size_t hi) {
    ASSERT_LT(lo, hi);
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ResizeWorks) {
  const size_t original = NumWorkers();
  SetNumWorkers(2);
  EXPECT_EQ(NumWorkers(), 2u);
  std::atomic<int> count{0};
  ParallelFor(0, 1000, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1000);
  SetNumWorkers(original);
  EXPECT_EQ(NumWorkers(), original);
}

TEST(ParallelReduce, SumAndMax) {
  constexpr size_t kN = 100000;
  const uint64_t sum =
      ParallelSum<uint64_t>(0, kN, [](size_t i) { return i; });
  EXPECT_EQ(sum, static_cast<uint64_t>(kN) * (kN - 1) / 2);
  const uint64_t mx = ParallelReduce<uint64_t>(
      0, kN, 0, [](size_t i) { return i * 7 % 1000; },
      [](uint64_t a, uint64_t b) { return std::max(a, b); });
  EXPECT_EQ(mx, 999u);  // gcd(7, 1000) == 1, so every residue is hit
}

TEST(ParallelCount, CountsPredicate) {
  EXPECT_EQ(ParallelCount(0, 1000, [](size_t i) { return i % 3 == 0; }),
            334u);
  EXPECT_EQ(ParallelCount(0, 0, [](size_t) { return true; }), 0u);
}

TEST(ScanExclusive, MatchesSerialPrefixSum) {
  for (size_t n : {0u, 1u, 5u, 4096u, 100001u}) {
    std::vector<uint64_t> data(n);
    for (size_t i = 0; i < n; ++i) data[i] = (i * 2654435761u) % 10;
    std::vector<uint64_t> expected(n);
    uint64_t acc = 0;
    for (size_t i = 0; i < n; ++i) {
      expected[i] = acc;
      acc += data[i];
    }
    const uint64_t total = ScanExclusive(data.data(), n);
    EXPECT_EQ(total, acc);
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST(ParallelPack, StableAndComplete) {
  constexpr size_t kN = 100000;
  const std::vector<size_t> out =
      ParallelFilterIndices(kN, [](size_t i) { return i % 7 == 2; });
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  for (size_t v : out) EXPECT_EQ(v % 7, 2u);
  EXPECT_EQ(out.size(), (kN - 3) / 7 + 1);
}

TEST(ParallelSort, SortsLargeArrays) {
  constexpr size_t kN = 200000;
  Rng rng(99);
  std::vector<uint64_t> data(kN);
  for (size_t i = 0; i < kN; ++i) data[i] = rng.Get(i) % 1000;
  std::vector<uint64_t> expected = data;
  std::sort(expected.begin(), expected.end());
  ParallelSort(data);
  EXPECT_EQ(data, expected);
}

TEST(ParallelSort, CustomComparator) {
  std::vector<int> data = {5, 3, 9, 1, 7};
  ParallelSort(data, std::greater<int>());
  EXPECT_EQ(data, (std::vector<int>{9, 7, 5, 3, 1}));
}

TEST(Atomics, WriteMinLowersMonotonically) {
  uint32_t x = 100;
  EXPECT_TRUE(WriteMin(&x, 50u));
  EXPECT_EQ(x, 50u);
  EXPECT_FALSE(WriteMin(&x, 75u));
  EXPECT_EQ(x, 50u);
  EXPECT_FALSE(WriteMin(&x, 50u));
}

TEST(Atomics, ConcurrentWriteMinKeepsGlobalMinimum) {
  constexpr size_t kN = 100000;
  uint64_t target = UINT64_MAX;
  ParallelFor(0, kN, [&](size_t i) { WriteMin(&target, Hash64(i) | 1); });
  uint64_t expected = UINT64_MAX;
  for (size_t i = 0; i < kN; ++i) expected = std::min(expected, Hash64(i) | 1);
  EXPECT_EQ(target, expected);
}

TEST(Atomics, WriteMaxRaises) {
  uint32_t x = 10;
  EXPECT_TRUE(WriteMax(&x, 20u));
  EXPECT_FALSE(WriteMax(&x, 15u));
  EXPECT_EQ(x, 20u);
}

TEST(Atomics, CompareAndSwapSemantics) {
  uint32_t x = 7;
  EXPECT_FALSE(CompareAndSwap(&x, 8u, 9u));
  EXPECT_EQ(x, 7u);
  EXPECT_TRUE(CompareAndSwap(&x, 7u, 9u));
  EXPECT_EQ(x, 9u);
}

TEST(Atomics, FetchAddAccumulates) {
  uint64_t x = 0;
  ParallelFor(0, 10000, [&](size_t) { FetchAdd<uint64_t>(&x, 3); });
  EXPECT_EQ(x, 30000u);
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(42);
  Rng b(42);
  Rng c(43);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Get(i), b.Get(i));
  }
  size_t diff = 0;
  for (uint64_t i = 0; i < 100; ++i) diff += (a.Get(i) != c.Get(i));
  EXPECT_GT(diff, 90u);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(1);
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.GetBounded(i, 17), 17u);
  }
  // All residues hit for a small bound.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(rng.GetBounded(i, 5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    const double d = rng.GetDouble(i);
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.Split(1);
  size_t same = 0;
  for (uint64_t i = 0; i < 1000; ++i) same += (a.Get(i) == b.Get(i));
  EXPECT_LT(same, 5u);
}

}  // namespace
}  // namespace connectit
