// Spanning forest sweep (paper §3.4, Theorems 5-6): every root-based
// variant, under every sampling scheme, must emit a valid spanning forest
// whose labels match ground-truth connectivity.

#include <string>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

struct SweepCase {
  std::string variant;
  SamplingOption sampling;
};

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (const Variant* v : RootBasedVariants()) {
    for (const SamplingOption s :
         {SamplingOption::kNone, SamplingOption::kKOut, SamplingOption::kBfs,
          SamplingOption::kLdd}) {
      cases.push_back({v->name, s});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name =
      info.param.variant + "_" + std::string(ToString(info.param.sampling));
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class ForestSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ForestSweep, ProducesValidSpanningForest) {
  const SweepCase& param = GetParam();
  const Variant* variant = FindVariant(param.variant);
  ASSERT_NE(variant, nullptr);
  ASSERT_TRUE(static_cast<bool>(variant->run_forest));
  SamplingConfig config;
  config.option = param.sampling;
  for (const auto& [name, graph] : testing::SmallBasket()) {
    const SpanningForestResult result = variant->run_forest(graph, config);
    EXPECT_TRUE(CheckSpanningForest(graph, result.edges))
        << "variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << name;
    EXPECT_TRUE(SamePartition(result.labels, SequentialComponents(graph)))
        << "labels diverged: variant=" << param.variant << " graph=" << name;
  }
}

INSTANTIATE_TEST_SUITE_P(RootBasedVariants, ForestSweep,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(SpanningForest, EmptyAndTrivialGraphs) {
  const Variant* v = FindVariant("Union-Async;FindCompress");
  ASSERT_NE(v, nullptr);
  const Graph empty = BuildGraph(0, {});
  EXPECT_TRUE(v->run_forest(empty, {}).edges.empty());
  const Graph isolated = BuildGraph(5, {});
  EXPECT_TRUE(v->run_forest(isolated, {}).edges.empty());
  const Graph one_edge = BuildGraph(2, {{0, 1}});
  const auto result = v->run_forest(one_edge, {});
  ASSERT_EQ(result.edges.size(), 1u);
}

TEST(SpanningForest, ForestSizeMatchesComponentCount) {
  const Variant* v = &DefaultVariant();
  const Graph g = GenerateComponentMixture(1500, 6, 77);
  const ComponentStats stats =
      ComputeComponentStats(SequentialComponents(g));
  const auto result = v->run_forest(g, {});
  EXPECT_EQ(result.edges.size(),
            static_cast<size_t>(g.num_nodes()) - stats.num_components);
}

}  // namespace
}  // namespace connectit
