// Tests for the traversal substrate: direction-optimizing BFS, low-diameter
// decomposition, and the verification oracles themselves.

#include <set>

#include <gtest/gtest.h>

#include "src/algo/bfs.h"
#include "src/algo/ldd.h"
#include "src/algo/verify.h"
#include "src/graph/generators.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

TEST(Bfs, ReachesExactlyTheComponent) {
  const Graph g = GenerateComponentMixture(1000, 4, 3);
  const std::vector<NodeId> truth = SequentialComponents(g);
  const BfsResult bfs = Bfs(g, 0);
  NodeId reached = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool in_component = (truth[v] == truth[0]);
    EXPECT_EQ(bfs.parents[v] != kInvalidNode, in_component) << "v=" << v;
    reached += (bfs.parents[v] != kInvalidNode);
  }
  EXPECT_EQ(bfs.num_reached, reached);
}

TEST(Bfs, ParentsFormValidTree) {
  const Graph g = GenerateRmat(512, 4096, 7);
  const NodeId src = 3;
  const BfsResult bfs = Bfs(g, src);
  EXPECT_EQ(bfs.parents[src], src);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == src || bfs.parents[v] == kInvalidNode) continue;
    // Parent must be an actual neighbor.
    const auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(),
                                   bfs.parents[v]))
        << v;
    // Walking parents reaches src without cycles.
    NodeId cur = v;
    size_t steps = 0;
    while (cur != src) {
      cur = bfs.parents[cur];
      ASSERT_LT(++steps, g.num_nodes());
    }
  }
}

TEST(Bfs, RoundsEqualEccentricityOnPath) {
  const Graph g = GeneratePath(100);
  EXPECT_EQ(Bfs(g, 0).num_rounds, 99u);
  EXPECT_EQ(Bfs(g, 50).num_rounds, 50u);
}

TEST(Bfs, DenseGraphUsesFewRounds) {
  const Graph g = GenerateComplete(64);
  const BfsResult bfs = Bfs(g, 0);
  EXPECT_EQ(bfs.num_rounds, 1u);
  EXPECT_EQ(bfs.num_reached, 64u);
}

TEST(Bfs, DirectionOptimizationMatchesPlainBfs) {
  // Force pull-heavy and push-heavy configurations; reachability must agree.
  const Graph g = GenerateRmat(1024, 8192, 11);
  BfsOptions push_only;
  push_only.alpha = 1e18;  // never switch to pull
  BfsOptions pull_eager;
  pull_eager.alpha = 1.0;  // switch almost immediately
  const BfsResult a = Bfs(g, 5, push_only);
  const BfsResult b = Bfs(g, 5, pull_eager);
  EXPECT_EQ(a.num_reached, b.num_reached);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(a.parents[v] == kInvalidNode, b.parents[v] == kInvalidNode);
  }
}

TEST(Ldd, CoversAllVerticesWithValidClusters) {
  for (const auto& [name, g] : testing::CorrectnessBasket()) {
    if (g.num_nodes() == 0) continue;
    const LddResult ldd = LowDiameterDecomposition(g);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_NE(ldd.clusters[v], kInvalidNode) << name;
      // Cluster ids are centers: cluster[center] == center.
      EXPECT_EQ(ldd.clusters[ldd.clusters[v]], ldd.clusters[v]) << name;
    }
  }
}

TEST(Ldd, ClustersAreConnectedViaParents) {
  const Graph g = GenerateGrid(20, 20);
  const LddResult ldd = LowDiameterDecomposition(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Walking the intra-cluster BFS tree reaches the center.
    NodeId cur = v;
    size_t steps = 0;
    while (ldd.parents[cur] != cur) {
      // Parent stays in the same cluster and is a graph neighbor.
      const NodeId p = ldd.parents[cur];
      EXPECT_EQ(ldd.clusters[p], ldd.clusters[cur]);
      const auto nbrs = g.neighbors(cur);
      EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), p));
      cur = p;
      ASSERT_LT(++steps, g.num_nodes());
    }
    EXPECT_EQ(cur, ldd.clusters[v]);
  }
}

TEST(Ldd, LargerBetaCutsMoreAndClustersMore) {
  const Graph g = GenerateGrid(50, 50);
  LddOptions lo;
  lo.beta = 0.05;
  LddOptions hi;
  hi.beta = 0.8;
  const LddResult a = LowDiameterDecomposition(g, lo);
  const LddResult b = LowDiameterDecomposition(g, hi);
  EXPECT_LT(a.num_clusters, b.num_clusters);
}

TEST(Ldd, DeterministicPerSeed) {
  const Graph g = GenerateRmat(512, 2048, 13);
  LddOptions opt;
  opt.seed = 99;
  const LddResult a = LowDiameterDecomposition(g, opt);
  const LddResult b = LowDiameterDecomposition(g, opt);
  EXPECT_EQ(a.clusters, b.clusters);
}

TEST(Verify, CanonicalizeIsIdempotentAndStable) {
  const std::vector<NodeId> labels = {7, 7, 3, 3, 7};
  const std::vector<NodeId> canon = CanonicalizeLabels(labels);
  EXPECT_EQ(canon, (std::vector<NodeId>{0, 0, 2, 2, 0}));
  EXPECT_EQ(CanonicalizeLabels(canon), canon);
}

TEST(Verify, SamePartitionDetectsDifferences) {
  EXPECT_TRUE(SamePartition({5, 5, 9}, {0, 0, 2}));
  EXPECT_FALSE(SamePartition({5, 5, 9}, {0, 1, 2}));
  EXPECT_FALSE(SamePartition({0, 0}, {0, 0, 0}));
  // Same partition, different label values.
  EXPECT_TRUE(SamePartition({1, 1, 0, 0}, {9, 9, 4, 4}));
  // Label collision across components must be caught.
  EXPECT_FALSE(SamePartition({0, 0, 0, 0}, {0, 0, 4, 4}));
}

TEST(Verify, SpanningForestChecker) {
  const Graph g = BuildGraph(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  // Valid forest: 3 edges for 2 components over 5 vertices.
  EXPECT_TRUE(CheckSpanningForest(g, {{0, 1}, {1, 2}, {3, 4}}));
  // Cycle.
  EXPECT_FALSE(CheckSpanningForest(g, {{0, 1}, {1, 2}, {2, 0}}));
  // Too few edges (does not span).
  EXPECT_FALSE(CheckSpanningForest(g, {{0, 1}, {3, 4}}));
  // Non-graph edge.
  EXPECT_FALSE(CheckSpanningForest(g, {{0, 3}, {1, 2}, {3, 4}}));
}

TEST(Verify, EffectiveDiameterOnKnownShapes) {
  EXPECT_EQ(EstimateEffectiveDiameter(GenerateComplete(32)), 1u);
  const NodeId d = EstimateEffectiveDiameter(GeneratePath(64));
  EXPECT_GE(d, 32u);  // eccentricity of some vertex on a 64-path
  EXPECT_LE(d, 63u);
}

}  // namespace
}  // namespace connectit
