// Golden regression tests: with fixed seeds, generators and deterministic
// pipelines must keep producing byte-identical structures across refactors.
// These pin semantics the property tests cannot (e.g., "the RMAT stream a
// bench replays is the same one as last release").

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/components.h"
#include "src/core/registry.h"
#include "src/graph/generators.h"
#include "src/parallel/random.h"

namespace connectit {
namespace {

uint64_t EdgeChecksum(const EdgeList& edges) {
  uint64_t h = 0;
  for (const Edge& e : edges.edges) {
    h = Hash64(h ^ (static_cast<uint64_t>(e.u) << 32 | e.v));
  }
  return h;
}

uint64_t LabelChecksum(const std::vector<NodeId>& labels) {
  uint64_t h = 0;
  for (NodeId l : labels) h = Hash64(h ^ l);
  return h;
}

TEST(Regression, Splitmix64KnownValues) {
  // splitmix64 of 0, 1, 2 with our finalizer (reference values computed
  // once from this implementation and frozen).
  EXPECT_EQ(Hash64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(Hash64(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(Hash64(2), 0x975835de1c9756ceULL);
}

TEST(Regression, GeneratorsAreStable) {
  // Frozen structural fingerprints for the bench suite's seeds (small
  // versions). If any of these move, every recorded benchmark number
  // silently refers to a different input.
  const EdgeList rmat = GenerateRmatEdges(1024, 4096, 42);
  const EdgeList er = GenerateErdosRenyiEdges(1024, 4096, 43);
  const EdgeList ba = GenerateBarabasiAlbertEdges(512, 4, 44);
  // Self-consistency across calls.
  EXPECT_EQ(EdgeChecksum(rmat), EdgeChecksum(GenerateRmatEdges(1024, 4096, 42)));
  EXPECT_EQ(EdgeChecksum(er),
            EdgeChecksum(GenerateErdosRenyiEdges(1024, 4096, 43)));
  EXPECT_EQ(EdgeChecksum(ba),
            EdgeChecksum(GenerateBarabasiAlbertEdges(512, 4, 44)));
  // And pinned structural facts.
  const Graph g_rmat = GenerateRmat(1024, 4096, 42);
  const Graph g_er = GenerateErdosRenyi(1024, 4096, 43);
  const ComponentStats s_rmat =
      ComputeComponentStats(SequentialComponents(g_rmat));
  const ComponentStats s_er =
      ComputeComponentStats(SequentialComponents(g_er));
  // RMAT at this density leaves isolated vertices; ER m=4n is connected-ish.
  EXPECT_GT(s_rmat.num_components, 1u);
  EXPECT_GT(s_rmat.largest_component, 700u);
  EXPECT_GT(s_er.largest_component, 1000u);
}

TEST(Regression, CanonicalLabelsAreStableAcrossVariants) {
  // All ID-linking variants emit the exact same label array (component
  // minima) — freeze its checksum against the sequential oracle's.
  const Graph g = GenerateComponentMixture(2000, 8, 13);
  const uint64_t want = LabelChecksum(SequentialComponents(g));
  for (const char* name :
       {"Union-Rem-CAS;FindNaive;SplitAtomicOne", "Union-Async;FindHalve",
        "Shiloach-Vishkin", "Liu-Tarjan;PUF", "Label-Propagation"}) {
    const Variant* v = FindVariant(name);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(LabelChecksum(v->run(g, {})), want) << name;
    EXPECT_EQ(LabelChecksum(v->run(g, SamplingConfig::KOut())), want) << name;
  }
}

TEST(Regression, PermutationStable) {
  const std::vector<NodeId> p = RandomPermutation(16, 7);
  // Frozen: permutation of seed 7 (guards the Fisher-Yates ordering and the
  // bounded-draw reduction).
  EXPECT_EQ(RandomPermutation(16, 7), p);
  NodeId sum = 0;
  for (NodeId v : p) sum += v;
  EXPECT_EQ(sum, 120u);
}

TEST(Regression, DenseIdsStableForMixture) {
  const Graph g = GenerateComponentMixture(1000, 5, 21);
  const auto labels = SequentialComponents(g);
  const auto dense = DenseComponentIds(labels);
  // Dense ids are 0..k-1 and vertex 0's component is id 0 (labels are
  // minima, so component of vertex 0 has the smallest label).
  EXPECT_EQ(dense[0], 0u);
  const NodeId k = CountComponents(labels);
  NodeId max_id = 0;
  for (NodeId d : dense) max_id = std::max(max_id, d);
  EXPECT_EQ(max_id, k - 1);
}

}  // namespace
}  // namespace connectit
