// Tests for the instrumentation counters (paper §4.1.1 analysis substrate).

#include <gtest/gtest.h>

#include "src/core/registry.h"
#include "src/unionfind/find.h"
#include "src/graph/generators.h"
#include "src/stats/counters.h"

namespace connectit {
namespace {

TEST(Counters, DisabledByDefaultAndRecordNothing) {
  stats::SetEnabled(false);
  stats::Reset();
  stats::RecordPath(10);
  stats::RecordParentReads(5);
  stats::RecordRound();
  const stats::Snapshot s = stats::Read();
  EXPECT_EQ(s.total_path_length, 0u);
  EXPECT_EQ(s.parent_reads, 0u);
  EXPECT_EQ(s.rounds, 0u);
}

TEST(Counters, RecordWhenEnabled) {
  stats::ScopedEnable scope;
  stats::RecordPath(10);
  stats::RecordPath(3);
  stats::RecordParentReads(5);
  stats::RecordParentWrites(2);
  stats::RecordRound();
  const stats::Snapshot s = stats::Read();
  EXPECT_EQ(s.total_path_length, 13u);
  EXPECT_EQ(s.max_path_length, 10u);
  EXPECT_EQ(s.parent_reads, 5u);
  EXPECT_EQ(s.parent_writes, 2u);
  EXPECT_EQ(s.rounds, 1u);
}

TEST(Counters, ScopedEnableRestoresState) {
  stats::SetEnabled(false);
  {
    stats::ScopedEnable scope;
    EXPECT_TRUE(stats::Enabled());
  }
  EXPECT_FALSE(stats::Enabled());
}

TEST(Counters, UnionFindRunsPopulateTplAndMpl) {
  const Graph g = GenerateRmat(2048, 16384, 3);
  const Variant* v = FindVariant("Union-Async;FindNaive");
  ASSERT_NE(v, nullptr);
  stats::ScopedEnable scope;
  v->run(g, {});
  const stats::Snapshot s = stats::Read();
  EXPECT_GT(s.total_path_length, 0u);
  EXPECT_GT(s.max_path_length, 0u);
  EXPECT_GE(s.total_path_length, s.max_path_length);
}

TEST(Counters, CompressionReducesTotalPathLength) {
  // Repeated finds on a deep chain: FindCompress flattens the chain so
  // subsequent finds are O(1); FindNaive pays the full depth every time
  // (the mechanism behind the paper's TPL analysis, Fig. 7).
  constexpr NodeId kDepth = 4096;
  auto make_chain = [] {
    std::vector<NodeId> p(kDepth);
    for (NodeId v = 0; v < kDepth; ++v) p[v] = (v == 0) ? 0 : v - 1;
    return p;
  };
  uint64_t tpl_naive = 0;
  uint64_t tpl_compress = 0;
  {
    std::vector<NodeId> p = make_chain();
    stats::ScopedEnable scope;
    for (int i = 0; i < 8; ++i) FindNaive(kDepth - 1, p.data());
    tpl_naive = stats::Read().total_path_length;
  }
  {
    std::vector<NodeId> p = make_chain();
    stats::ScopedEnable scope;
    for (int i = 0; i < 8; ++i) FindCompress(kDepth - 1, p.data());
    tpl_compress = stats::Read().total_path_length;
  }
  EXPECT_LT(tpl_compress, tpl_naive / 2);
}

TEST(Counters, RoundBasedAlgorithmsCountRounds) {
  const Graph g = GeneratePath(256);
  const Variant* lt = FindVariant("Liu-Tarjan;PRF");
  ASSERT_NE(lt, nullptr);
  stats::ScopedEnable scope;
  lt->run(g, {});
  EXPECT_GT(stats::Read().rounds, 1u);
}

}  // namespace
}  // namespace connectit
