// Unit tests for the graph substrate: builder, CSR invariants, edge
// extraction, relabeling.

#include <algorithm>
#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "src/graph/builder.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

TEST(Builder, SymmetrizesAndSorts) {
  const Graph g = BuildGraph(4, {{2, 1}, {0, 3}, {1, 3}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  // Every neighbor list is sorted and symmetric.
  for (NodeId u = 0; u < 4; ++u) {
    const auto nbrs = g.neighbors(u);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (NodeId v : nbrs) {
      const auto back = g.neighbors(v);
      EXPECT_TRUE(std::binary_search(back.begin(), back.end(), u));
    }
  }
}

TEST(Builder, RemovesSelfLoopsAndDuplicates) {
  const Graph g =
      BuildGraph(3, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);  // {0,1} and {1,2}
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(Builder, KeepsSelfLoopsWhenAsked) {
  BuildOptions options;
  options.remove_self_loops = false;
  options.remove_duplicates = false;
  const Graph g = BuildGraph(2, {{0, 0}, {0, 1}, {0, 1}}, options);
  // (0,0) symmetrized twice + two copies of {0,1} both ways.
  EXPECT_EQ(g.num_arcs(), 6u);
}

TEST(Builder, EmptyGraph) {
  const Graph g = BuildGraph(0, {});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(Builder, IsolatedVerticesKeepZeroDegree) {
  const Graph g = BuildGraph(10, {{0, 9}});
  for (NodeId v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 0u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(9), 1u);
}

TEST(Csr, OffsetsAreConsistent) {
  for (const auto& [name, g] : testing::CorrectnessBasket()) {
    const auto& offsets = g.offsets();
    if (g.num_nodes() == 0) continue;
    ASSERT_EQ(offsets.size(), g.num_nodes() + 1u) << name;
    EXPECT_EQ(offsets.front(), 0u) << name;
    EXPECT_EQ(offsets.back(), g.num_arcs()) << name;
    EXPECT_TRUE(std::is_sorted(offsets.begin(), offsets.end())) << name;
  }
}

TEST(Csr, MapArcsVisitsEveryArcOnce) {
  const Graph g = GenerateRmat(256, 1024, 1);
  std::atomic<EdgeId> count{0};
  g.MapArcs([&](NodeId u, NodeId v) {
    ASSERT_LT(u, g.num_nodes());
    ASSERT_LT(v, g.num_nodes());
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), g.num_arcs());
}

TEST(Csr, MapArcsIfFiltersSources) {
  const Graph g = GenerateComplete(10);
  std::atomic<EdgeId> count{0};
  g.MapArcsIf([](NodeId u) { return u < 5; },
              [&](NodeId u, NodeId) {
                ASSERT_LT(u, 5u);
                count.fetch_add(1, std::memory_order_relaxed);
              });
  EXPECT_EQ(count.load(), 5u * 9u);
}

TEST(Csr, DegreeStats) {
  const Graph g = GenerateStar(101);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.max_degree, 100u);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 200.0 / 101.0);
}

TEST(ExtractEdges, RoundTripsThroughBuilder) {
  for (const auto& [name, g] : testing::CorrectnessBasket()) {
    const EdgeList edges = ExtractEdges(g);
    EXPECT_EQ(edges.size(), g.num_edges()) << name;
    for (const Edge& e : edges.edges) EXPECT_LT(e.u, e.v) << name;
    const Graph rebuilt = BuildGraph(edges);
    EXPECT_EQ(rebuilt.num_arcs(), g.num_arcs()) << name;
    EXPECT_EQ(rebuilt.neighbor_array(), g.neighbor_array()) << name;
    EXPECT_EQ(rebuilt.offsets(), g.offsets()) << name;
  }
}

TEST(RandomPermutation, IsAPermutation) {
  const std::vector<NodeId> perm = RandomPermutation(1000, 5);
  std::set<NodeId> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 999u);
  // Deterministic per seed, different across seeds.
  EXPECT_EQ(RandomPermutation(1000, 5), perm);
  EXPECT_NE(RandomPermutation(1000, 6), perm);
}

TEST(RelabelGraph, PreservesStructure) {
  const Graph g = GenerateRmat(128, 512, 2);
  const std::vector<NodeId> perm = RandomPermutation(g.num_nodes(), 3);
  const Graph relabeled = RelabelGraph(g, perm);
  EXPECT_EQ(relabeled.num_nodes(), g.num_nodes());
  EXPECT_EQ(relabeled.num_edges(), g.num_edges());
  // Edge {u, v} exists iff {perm[u], perm[v]} exists in the relabeled graph.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      const auto nbrs = relabeled.neighbors(perm[u]);
      EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), perm[v]));
    }
  }
}

}  // namespace
}  // namespace connectit
