// Shared basket of test graphs. Every correctness sweep in the suite runs
// against these: degenerate shapes, structured graphs in both diameter
// regimes, random graphs with skewed and uniform degrees, and
// multi-component mixtures.

#ifndef CONNECTIT_TESTS_TEST_GRAPHS_H_
#define CONNECTIT_TESTS_TEST_GRAPHS_H_

#include <string>
#include <utility>
#include <vector>

#include "src/graph/builder.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"

namespace connectit::testing {

struct NamedGraph {
  std::string name;
  Graph graph;
};

inline std::vector<NamedGraph> CorrectnessBasket() {
  std::vector<NamedGraph> basket;
  basket.push_back({"empty", BuildGraph(0, {})});
  basket.push_back({"singleton", BuildGraph(1, {})});
  basket.push_back({"two_isolated", BuildGraph(2, {})});
  basket.push_back({"one_edge", BuildGraph(2, {{0, 1}})});
  basket.push_back({"self_loops", BuildGraph(3, {{0, 0}, {1, 2}, {2, 2}})});
  basket.push_back({"path_64", GeneratePath(64)});
  basket.push_back({"cycle_65", GenerateCycle(65)});
  basket.push_back({"star_100", GenerateStar(100)});
  basket.push_back({"complete_24", GenerateComplete(24)});
  basket.push_back({"grid_16x16", GenerateGrid(16, 16)});
  basket.push_back({"grid_64x4", GenerateGrid(64, 4)});
  basket.push_back({"rmat_1k", GenerateRmat(1024, 4096, /*seed=*/3)});
  basket.push_back({"er_1k", GenerateErdosRenyi(1000, 3000, /*seed=*/5)});
  basket.push_back({"er_sparse", GenerateErdosRenyi(2048, 1024, /*seed=*/9)});
  basket.push_back({"ba_1k", GenerateBarabasiAlbert(1000, 3, /*seed=*/7)});
  basket.push_back({"mixture", GenerateComponentMixture(2000, 8, /*seed=*/13)});
  return basket;
}

// A smaller basket for expensive sweeps (e.g. spanning forest x sampling).
inline std::vector<NamedGraph> SmallBasket() {
  std::vector<NamedGraph> basket;
  basket.push_back({"path_32", GeneratePath(32)});
  basket.push_back({"grid_12x12", GenerateGrid(12, 12)});
  basket.push_back({"rmat_512", GenerateRmat(512, 2048, /*seed=*/3)});
  basket.push_back({"mixture", GenerateComponentMixture(600, 5, /*seed=*/21)});
  return basket;
}

}  // namespace connectit::testing

#endif  // CONNECTIT_TESTS_TEST_GRAPHS_H_
