// End-to-end ConnectIt on byte-compressed graphs (the paper's large-graph
// path: its Hyperlink results run directly on Ligra+-coded graphs). The
// framework is graph-generic; these tests sweep finish algorithms and
// sampling schemes over CompressedGraph inputs.

#include <gtest/gtest.h>

#include "src/algo/bfs.h"
#include "src/algo/ldd.h"
#include "src/algo/verify.h"
#include "src/core/connectit.h"
#include "src/graph/compressed.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

TEST(CompressedAccess, NeighborAtMatchesPlainCsr) {
  for (const auto& [name, g] : testing::CorrectnessBasket()) {
    const CompressedGraph cg = CompressedGraph::Encode(g);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto nbrs = g.neighbors(u);
      // Check first/last and a middle position (covers block boundaries for
      // the star graph).
      for (const EdgeId i :
           {EdgeId{0}, nbrs.size() / 2, nbrs.size() - 1}) {
        if (i >= nbrs.size()) continue;
        ASSERT_EQ(cg.NeighborAt(u, i), nbrs[i])
            << name << " u=" << u << " i=" << i;
      }
    }
  }
}

TEST(CompressedAccess, MapNeighborsWhileStopsEarly) {
  const Graph g = GenerateStar(500);
  const CompressedGraph cg = CompressedGraph::Encode(g);
  size_t visited = 0;
  cg.MapNeighborsWhile(0, [&](NodeId) {
    ++visited;
    return visited < 10;
  });
  EXPECT_EQ(visited, 10u);
}

TEST(CompressedAccess, MapArcsIfSkipsSources) {
  const Graph g = GenerateComplete(12);
  const CompressedGraph cg = CompressedGraph::Encode(g);
  std::atomic<EdgeId> count{0};
  cg.MapArcsIf([](NodeId u) { return u % 2 == 0; },
               [&](NodeId u, NodeId) {
                 ASSERT_EQ(u % 2, 0u);
                 count.fetch_add(1, std::memory_order_relaxed);
               });
  EXPECT_EQ(count.load(), 6u * 11u);
}

TEST(CompressedTraversal, BfsMatchesPlainGraph) {
  const Graph g = GenerateRmat(2048, 8192, 21);
  const CompressedGraph cg = CompressedGraph::Encode(g);
  const BfsResult plain = Bfs(g, 7);
  const BfsResult packed = Bfs(cg, 7);
  EXPECT_EQ(plain.num_reached, packed.num_reached);
  EXPECT_EQ(plain.num_rounds, packed.num_rounds);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(plain.parents[v] == kInvalidNode,
              packed.parents[v] == kInvalidNode);
  }
}

TEST(CompressedTraversal, LddMatchesPlainGraph) {
  const Graph g = GenerateGrid(30, 30);
  const CompressedGraph cg = CompressedGraph::Encode(g);
  LddOptions options;
  options.seed = 5;
  const LddResult plain = LowDiameterDecomposition(g, options);
  const LddResult packed = LowDiameterDecomposition(cg, options);
  // Identical seeds and deterministic wake order: identical clusterings on
  // a single worker; across workers, cluster structure may differ but both
  // must cover all vertices.
  EXPECT_EQ(plain.num_clusters > 0, packed.num_clusters > 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NE(packed.clusters[v], kInvalidNode);
  }
}

struct CompressedCase {
  std::string finish;
  SamplingOption sampling;
};

class CompressedSweep : public ::testing::TestWithParam<CompressedCase> {};

template <typename Finish>
void RunCompressedCase(SamplingOption sampling) {
  SamplingConfig config;
  config.option = sampling;
  for (const auto& [name, g] : testing::SmallBasket()) {
    const CompressedGraph cg = CompressedGraph::Encode(g);
    const std::vector<NodeId> labels = RunConnectivity<Finish>(cg, config);
    EXPECT_TRUE(SamePartition(labels, SequentialComponents(g)))
        << "graph=" << name;
  }
}

TEST_P(CompressedSweep, MatchesGroundTruth) {
  const CompressedCase& param = GetParam();
  if (param.finish == "rem-cas") {
    RunCompressedCase<UnionFindFinish<UniteOption::kRemCas, FindOption::kNaive,
                                      SpliceOption::kSplitOne>>(
        param.sampling);
  } else if (param.finish == "async") {
    RunCompressedCase<UnionFindFinish<UniteOption::kAsync,
                                      FindOption::kCompress>>(param.sampling);
  } else if (param.finish == "sv") {
    RunCompressedCase<ShiloachVishkinFinish>(param.sampling);
  } else if (param.finish == "lt-prf") {
    RunCompressedCase<LiuTarjanFinish<LtConnect::kParentConnect,
                                      LtUpdate::kRootUp,
                                      LtShortcut::kFullShortcut,
                                      LtAlter::kNoAlter>>(param.sampling);
  } else if (param.finish == "labelprop") {
    RunCompressedCase<LabelPropFinish>(param.sampling);
  } else {
    FAIL() << "unknown finish " << param.finish;
  }
}

std::vector<CompressedCase> CompressedCases() {
  std::vector<CompressedCase> cases;
  for (const char* finish :
       {"rem-cas", "async", "sv", "lt-prf", "labelprop"}) {
    for (const SamplingOption s :
         {SamplingOption::kNone, SamplingOption::kKOut, SamplingOption::kBfs,
          SamplingOption::kLdd}) {
      cases.push_back({finish, s});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    FinishXSampling, CompressedSweep, ::testing::ValuesIn(CompressedCases()),
    [](const ::testing::TestParamInfo<CompressedCase>& info) {
      std::string name = info.param.finish + "_" +
                         std::string(ToString(info.param.sampling));
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(CompressedForest, SpanningForestOnCompressedGraph) {
  for (const auto& [name, g] : testing::SmallBasket()) {
    const CompressedGraph cg = CompressedGraph::Encode(g);
    using Finish = UnionFindFinish<UniteOption::kRemCas, FindOption::kNaive,
                                   SpliceOption::kSplitOne>;
    const SpanningForestResult result =
        RunSpanningForest<Finish>(cg, SamplingConfig::KOut());
    EXPECT_TRUE(CheckSpanningForest(g, result.edges)) << name;
  }
}

}  // namespace
}  // namespace connectit
