// NUMA topology + node-bound scheduling (src/parallel/numa.h): the
// emulated backend that CI leans on, worker-group binding, shard
// placement, and the node-affine loop's completeness guarantee.

#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/builder.h"
#include "src/graph/generators.h"
#include "src/graph/sharded.h"
#include "src/parallel/numa.h"
#include "src/parallel/thread_pool.h"

namespace connectit {
namespace {

// Every test forces its own topology; restore ambient detection (env /
// sysfs) and the default pool afterwards so test order never matters.
class NumaTopologyTest : public ::testing::Test {
 protected:
  void TearDown() override {
    NumaTopology::OverrideNodes(0);
    SetNumWorkers(0);
    ThreadPool::Get().Rebind();
  }

  static void UseTopology(size_t nodes, size_t workers) {
    NumaTopology::OverrideNodes(nodes);
    SetNumWorkers(workers);
    ThreadPool::Get().Rebind();
  }
};

TEST_F(NumaTopologyTest, EmulatedOverridePartitionsCpus) {
  NumaTopology::OverrideNodes(3);
  const NumaTopology& topo = NumaTopology::Get();
  EXPECT_EQ(topo.num_nodes(), 3u);
  EXPECT_TRUE(topo.emulated());
  EXPECT_STREQ(topo.backend(), "emulated");

  // The node cpu lists partition the hardware cpus: disjoint, and every
  // cpu maps back to its node via NodeOfCpu.
  std::set<unsigned> seen;
  size_t total = 0;
  for (size_t node = 0; node < topo.num_nodes(); ++node) {
    for (unsigned cpu : topo.CpusOfNode(node)) {
      EXPECT_TRUE(seen.insert(cpu).second) << "cpu " << cpu << " twice";
      EXPECT_EQ(topo.NodeOfCpu(cpu), node);
      ++total;
    }
  }
  EXPECT_GE(total, 1u);  // at least the cpus that exist are assigned
}

TEST_F(NumaTopologyTest, SingleNodeOverrideIsTheFlatBackend) {
  NumaTopology::OverrideNodes(1);
  const NumaTopology& topo = NumaTopology::Get();
  EXPECT_EQ(topo.num_nodes(), 1u);
  EXPECT_STREQ(topo.backend(), "single");
}

TEST_F(NumaTopologyTest, RedetectYieldsAValidTopology) {
  NumaTopology::OverrideNodes(0);
  // Whatever the ambient environment is (CONNECTIT_NUMA_NODES in the CI
  // matrix job, sysfs on a real multi-socket box, single otherwise), the
  // result is internally consistent.
  const NumaTopology& topo = NumaTopology::Get();
  EXPECT_GE(topo.num_nodes(), 1u);
  for (size_t node = 0; node < topo.num_nodes(); ++node) {
    for (unsigned cpu : topo.CpusOfNode(node)) {
      EXPECT_EQ(topo.NodeOfCpu(cpu), node);
    }
  }
}

TEST_F(NumaTopologyTest, BindPublishesLogicalNodeEvenWithoutAffinity) {
  NumaTopology::OverrideNodes(2);
  const NumaTopology& topo = NumaTopology::Get();
  EXPECT_EQ(NumaTopology::CurrentNode(), 0u);
  // The affinity syscall may fail in a sandbox (or the emulated node may
  // own no cpus on a tiny machine); the logical assignment must hold
  // regardless — the replicated DSU keys off CurrentNode alone.
  topo.BindCurrentThread(1);
  EXPECT_EQ(NumaTopology::CurrentNode(), 1u);
  topo.BindCurrentThread(0);
  EXPECT_EQ(NumaTopology::CurrentNode(), 0u);
}

TEST_F(NumaTopologyTest, WorkersFormContiguousNodeGroups) {
  UseTopology(/*nodes=*/4, /*workers=*/8);
  ThreadPool& pool = ThreadPool::Get();
  EXPECT_EQ(pool.num_workers(), 8u);
  EXPECT_EQ(pool.num_bound_nodes(), 4u);
  // worker * nodes / workers: contiguous groups of equal size, covering
  // every node, monotone in the worker id.
  std::vector<size_t> per_node(4, 0);
  size_t prev = 0;
  for (size_t w = 0; w < 8; ++w) {
    const size_t node = pool.NodeOf(w);
    ASSERT_LT(node, 4u);
    EXPECT_GE(node, prev);
    prev = node;
    ++per_node[node];
  }
  for (size_t node = 0; node < 4; ++node) EXPECT_EQ(per_node[node], 2u);
}

TEST_F(NumaTopologyTest, BoundWorkersReportTheirNode) {
  UseTopology(/*nodes=*/2, /*workers=*/4);
  ThreadPool& pool = ThreadPool::Get();
  // Each spawned worker published its node at thread start; worker 0 is
  // the caller and reports the caller's node (0).
  std::vector<size_t> observed(4, ~size_t{0});
  pool.RunOnWorkers(4, [&](size_t worker) {
    observed[worker] = NumaTopology::CurrentNode();
  });
  for (size_t w = 0; w < 4; ++w) {
    EXPECT_EQ(observed[w], pool.NodeOf(w)) << "worker " << w;
  }
}

TEST_F(NumaTopologyTest, AllocateOnNodeRunsInit) {
  NumaTopology::OverrideNodes(2);
  auto data = AllocateOnNode<int>(100, 1, [](size_t i) {
    return static_cast<int>(i * 3);
  });
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(data[i], static_cast<int>(i * 3));
  // Allocation must not leave the calling thread rebound.
  EXPECT_EQ(NumaTopology::CurrentNode(), 0u);
}

TEST_F(NumaTopologyTest, NodeAffineLoopRunsEveryItemOnce) {
  UseTopology(/*nodes=*/3, /*workers=*/6);
  for (const size_t count : {size_t{0}, size_t{1}, size_t{2}, size_t{101}}) {
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0);
    ParallelForNodeAffine(count, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "item " << i << " of " << count;
    }
  }
}

TEST_F(NumaTopologyTest, NodeAffineLoopWorksFromInsideAWorker) {
  UseTopology(/*nodes=*/2, /*workers=*/4);
  // Nested use (a sweep inside RunOnWorkers) must still run every item:
  // the inline fn(0) call drains all queues.
  std::vector<std::atomic<int>> hits(37);
  for (auto& h : hits) h.store(0);
  ThreadPool::Get().RunOnWorkers(1, [&](size_t) {
    ParallelForNodeAffine(37, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (size_t i = 0; i < 37; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST_F(NumaTopologyTest, ShardedPartitionRecordsPlacement) {
  UseTopology(/*nodes=*/3, /*workers=*/6);
  const Graph graph = GenerateGrid(20, 20);
  const ShardedGraph sharded = ShardedGraph::Partition(graph, 7);
  EXPECT_EQ(sharded.placement_nodes(), 3u);
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.NodeOfShard(s), s % 3);
  }
  // The node-affine fill and sweep change scheduling, never content.
  EXPECT_EQ(sharded.num_nodes(), graph.num_nodes());
  EXPECT_EQ(sharded.num_arcs(), graph.num_arcs());
  std::atomic<uint64_t> arcs{0};
  sharded.MapArcs([&](NodeId, NodeId) {
    arcs.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(arcs.load(), graph.num_arcs());
  EXPECT_EQ(sharded.Flatten().neighbor_array(), graph.neighbor_array());
}

TEST_F(NumaTopologyTest, SingleNodePartitionHasNoPlacement) {
  UseTopology(/*nodes=*/1, /*workers=*/4);
  const ShardedGraph sharded =
      ShardedGraph::Partition(GeneratePath(50), 4);
  EXPECT_EQ(sharded.placement_nodes(), 1u);
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(sharded.NodeOfShard(s), 0u);
  }
}

}  // namespace
}  // namespace connectit
