// NUMA-replicated union-find (src/unionfind/numa_dsu.h).
//
// The core contract: for every supported (unite, find, splice) rule, on
// every representation, under every emulated node count, the replicated
// variant's final labeling is *bit-for-bit* identical to the flat Dsu's —
// replicas are read-only ancestor-hint caches, all link writes go through
// the embedded flat Dsu, and min-based linking makes the compressed
// labeling canonical (label = component minimum). Plus the locality
// counter pins and a concurrent stress that the TSan job runs.

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/parallel/numa.h"
#include "src/parallel/thread_pool.h"
#include "src/stats/counters.h"
#include "src/unionfind/dsu.h"
#include "src/unionfind/numa_dsu.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

class NumaDsuTest : public ::testing::Test {
 protected:
  void TearDown() override {
    NumaTopology::OverrideNodes(0);
    SetNumWorkers(0);
    ThreadPool::Get().Rebind();
  }

  // Emulate `nodes` with enough workers that every node owns at least one
  // worker group (the pool oversubscribes a small machine; node identity
  // is logical, so the multi-replica paths run regardless of cpu count).
  static void UseTopology(size_t nodes, size_t workers) {
    NumaTopology::OverrideNodes(nodes);
    SetNumWorkers(workers);
    ThreadPool::Get().Rebind();
  }
};

// Every registered NumaReplicated variant, against its flat twin, across
// csr and sharded handles, under k in {1, 2, 4}: identical labels.
TEST_F(NumaDsuTest, ReplicatedMatchesFlatBitForBit) {
  for (const size_t k : {size_t{1}, size_t{2}, size_t{4}}) {
    UseTopology(k, /*workers=*/4);
    for (const Variant& v : AllVariants()) {
      if (v.family != AlgorithmFamily::kUnionFind ||
          v.descriptor.placement != PlacementOption::kNumaReplicated) {
        continue;
      }
      VariantDescriptor flat_desc = v.descriptor;
      flat_desc.placement = PlacementOption::kFlat;
      const Variant* flat = FindVariant(flat_desc);
      ASSERT_NE(flat, nullptr) << v.name;
      for (const auto& [name, graph] : testing::SmallBasket()) {
        const GraphHandle csr(graph);
        const GraphHandle sharded = GraphHandle::Shard(graph, 3);
        const SamplingConfig none = SamplingConfig::None();
        const std::vector<NodeId> want = flat->run(csr, none);
        EXPECT_EQ(v.run(csr, none), want)
            << v.name << " csr k=" << k << " " << name;
        EXPECT_EQ(v.run(sharded, none), want)
            << v.name << " sharded k=" << k << " " << name;
      }
    }
  }
}

// Sampling composes with the placement axis: the finish phase runs on the
// replicated structure and still lands on the flat labeling.
TEST_F(NumaDsuTest, ReplicatedMatchesFlatUnderSampling) {
  UseTopology(/*nodes=*/2, /*workers=*/4);
  const Variant& replicated =
      GetVariantOrDie("Union-Rem-CAS;FindNaive;SplitAtomicOne;NumaReplicated");
  const Variant& flat =
      GetVariantOrDie("Union-Rem-CAS;FindNaive;SplitAtomicOne");
  for (const auto& [name, graph] : testing::SmallBasket()) {
    const GraphHandle handle(graph);
    const SamplingConfig kout = SamplingConfig::KOut();
    EXPECT_EQ(replicated.run(handle, kout), flat.run(handle, kout)) << name;
  }
}

// k == 1: no replicas are allocated, every call forwards to the flat Dsu,
// and no locality counter moves.
TEST_F(NumaDsuTest, SingleNodeFallbackIsFreeOfCounterTraffic) {
  UseTopology(/*nodes=*/1, /*workers=*/4);
  const stats::LocalitySnapshot before = stats::ReadLocality();

  std::vector<NodeId> parents(256);
  for (NodeId v = 0; v < 256; ++v) parents[v] = v;
  NumaDsu<UniteOption::kAsync, FindOption::kNaive> dsu(parents.data(), 256);
  EXPECT_EQ(dsu.num_replicas(), 1u);
  for (NodeId v = 0; v + 1 < 256; ++v) dsu.Unite(v, v + 1);
  for (NodeId v = 0; v < 256; ++v) EXPECT_EQ(dsu.Find(v), 0u);

  const stats::LocalitySnapshot after = stats::ReadLocality();
  EXPECT_EQ(after.local_find_depth, before.local_find_depth);
  EXPECT_EQ(after.cross_node_find_depth, before.cross_node_find_depth);
  EXPECT_EQ(after.cross_node_compressions, before.cross_node_compressions);
}

// A non-home thread walking a deep authoritative chain: the walk is
// counted as cross-node reads, the discovered root is compressed into the
// local replica, and the next resolution of the same vertex is (nearly)
// local. Thread node identity is forced via BindCurrentThread, so the pin
// is deterministic.
TEST_F(NumaDsuTest, CrossNodeWalksCountAndCompress) {
  UseTopology(/*nodes=*/2, /*workers=*/4);
  constexpr NodeId kN = 64;
  // A maximal-depth min-based forest: v's parent is v - 1.
  std::vector<NodeId> parents(kN);
  parents[0] = 0;
  for (NodeId v = 1; v < kN; ++v) parents[v] = v - 1;
  NumaDsu<UniteOption::kAsync, FindOption::kNaive> dsu(parents.data(), kN);
  ASSERT_EQ(dsu.num_replicas(), 2u);

  const NumaTopology& topo = NumaTopology::Get();
  topo.BindCurrentThread(1);  // act as a node-1 thread
  const stats::LocalitySnapshot t0 = stats::ReadLocality();
  EXPECT_EQ(dsu.Find(kN - 1), 0u);
  const stats::LocalitySnapshot t1 = stats::ReadLocality();
  // The cold walk traversed the whole chain remotely and installed the
  // root into the local replica.
  EXPECT_EQ(t1.cross_node_find_depth - t0.cross_node_find_depth,
            static_cast<uint64_t>(kN));
  EXPECT_GE(t1.cross_node_compressions - t0.cross_node_compressions, 1u);

  // The warm walk rides the hint: one local hop, one remote root check.
  EXPECT_EQ(dsu.Find(kN - 1), 0u);
  const stats::LocalitySnapshot t2 = stats::ReadLocality();
  EXPECT_EQ(t2.local_find_depth - t1.local_find_depth, 1u);
  EXPECT_EQ(t2.cross_node_find_depth - t1.cross_node_find_depth, 1u);

  // Owner-bit fast path: both endpoints' hint chains end at the same
  // cached root, so SameSet completes with zero remote reads.
  EXPECT_EQ(dsu.Find(kN - 2), 0u);  // install the second hint
  const stats::LocalitySnapshot t3 = stats::ReadLocality();
  EXPECT_TRUE(dsu.SameSet(kN - 1, kN - 2));
  const stats::LocalitySnapshot t4 = stats::ReadLocality();
  EXPECT_EQ(t4.cross_node_find_depth, t3.cross_node_find_depth);
  EXPECT_GE(t4.local_find_depth, t3.local_find_depth);
  topo.BindCurrentThread(0);

  // Counters are cumulative and monotone.
  EXPECT_GE(t4.local_find_depth, t0.local_find_depth);
  EXPECT_GE(t4.cross_node_find_depth, t0.cross_node_find_depth);
  EXPECT_GE(t4.cross_node_compressions, t0.cross_node_compressions);
}

// Unite through the replicated structure from a non-home node produces the
// same forest as flat unites, and the home node (node 0) never touches a
// replica.
TEST_F(NumaDsuTest, NonHomeUnitesMatchFlat) {
  UseTopology(/*nodes=*/2, /*workers=*/4);
  const Graph graph = GenerateErdosRenyi(512, 2048, /*seed=*/11);

  std::vector<NodeId> flat_parents(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) flat_parents[v] = v;
  Dsu<UniteOption::kRemCas, FindOption::kSplit, SpliceOption::kSplitOne>
      flat(flat_parents.data(), graph.num_nodes());
  graph.MapArcs([&](NodeId u, NodeId v) {
    if (u < v) flat.Unite(u, v);
  });
  FullyCompressParents(flat_parents.data(), graph.num_nodes());

  std::vector<NodeId> repl_parents(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) repl_parents[v] = v;
  NumaDsu<UniteOption::kRemCas, FindOption::kSplit, SpliceOption::kSplitOne>
      repl(repl_parents.data(), graph.num_nodes());
  const NumaTopology& topo = NumaTopology::Get();
  topo.BindCurrentThread(1);
  const stats::LocalitySnapshot before = stats::ReadLocality();
  graph.MapNeighbors(0, [](NodeId) {});  // no-op; keep the bind exercised
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    graph.MapNeighbors(u, [&](NodeId v) {
      if (u < v) repl.Unite(u, v);
    });
  }
  const stats::LocalitySnapshot after = stats::ReadLocality();
  topo.BindCurrentThread(0);
  FullyCompressParents(repl_parents.data(), graph.num_nodes());

  EXPECT_EQ(repl_parents, flat_parents);
  // A non-home ingest definitely paid remote reads.
  EXPECT_GT(after.cross_node_find_depth, before.cross_node_find_depth);
}

// Concurrent unites from workers spread across 4 emulated nodes (this is
// the binary the TSan job runs with CONNECTIT_NUMA_NODES set): the final
// labeling still equals the flat sequential ground truth exactly.
TEST_F(NumaDsuTest, ConcurrentReplicatedUnitesAreRaceFreeAndExact) {
  UseTopology(/*nodes=*/4, /*workers=*/8);
  const Graph graph = GenerateRmat(2048, 8192, /*seed=*/17);
  const std::vector<Edge> edges = ExtractEdges(graph).edges;

  std::vector<NodeId> parents(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) parents[v] = v;
  NumaDsu<UniteOption::kRemCas, FindOption::kNaive, SpliceOption::kSplitOne>
      dsu(parents.data(), graph.num_nodes());
  ASSERT_EQ(dsu.num_replicas(), 4u);

  ParallelFor(0, edges.size(), [&](size_t i) {
    dsu.Unite(edges[i].u, edges[i].v);
  }, /*grain=*/64);
  FullyCompressParents(parents.data(), graph.num_nodes());

  std::vector<NodeId> flat_parents(graph.num_nodes());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) flat_parents[v] = v;
  Dsu<UniteOption::kRemCas, FindOption::kNaive, SpliceOption::kSplitOne>
      flat(flat_parents.data(), graph.num_nodes());
  for (const Edge& e : edges) flat.Unite(e.u, e.v);
  FullyCompressParents(flat_parents.data(), graph.num_nodes());

  EXPECT_EQ(parents, flat_parents);
  EXPECT_TRUE(SamePartition(parents, SequentialComponents(graph)));
}

// Concurrent mixed Find/SameSet/Unite traffic — read paths race the link
// writes and the hint installs race each other. TSan coverage for the
// read-side; correctness is the exact flat labeling at the end.
TEST_F(NumaDsuTest, ConcurrentReadsRaceWritesSafely) {
  UseTopology(/*nodes=*/2, /*workers=*/4);
  constexpr NodeId kN = 1024;
  std::vector<NodeId> parents(kN);
  for (NodeId v = 0; v < kN; ++v) parents[v] = v;
  NumaDsu<UniteOption::kAsync, FindOption::kSplit> dsu(parents.data(), kN);

  std::atomic<uint64_t> connected{0};
  ThreadPool::Get().RunOnWorkers(4, [&](size_t worker) {
    if (worker % 2 == 0) {
      // Writers: build a path in interleaved halves.
      for (NodeId v = static_cast<NodeId>(worker) / 2; v + 1 < kN; v += 2) {
        dsu.Unite(v, v + 1);
      }
    } else {
      // Readers: monotone queries — once connected, always connected.
      for (NodeId v = 0; v + 1 < kN; ++v) {
        connected.fetch_add(dsu.SameSet(v, v + 1) ? 1 : 0,
                            std::memory_order_relaxed);
        dsu.Find(v);
      }
    }
  });
  FullyCompressParents(parents.data(), kN);
  for (NodeId v = 0; v < kN; ++v) EXPECT_EQ(parents[v], 0u);
}

}  // namespace
}  // namespace connectit
