// Property-based invariants of the paper's correctness framework:
// monotonicity of root-based algorithms (Definition 3.2), min-based label
// decrease, determinism under re-execution and thread-count changes, and
// composition-independence (every sampling x finish pair yields the same
// partition).

#include <cctype>
#include <string>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "src/parallel/thread_pool.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

// Min-based property: final labels never exceed the vertex id for
// ID-linking families (everything except JTB, whose roots are
// priority-chosen).
TEST(Properties, LabelsAreComponentMinimaForIdLinkingFamilies) {
  for (const Variant& v : AllVariants()) {
    if (v.name.rfind("Union-JTB", 0) == 0) continue;
    for (const auto& [name, graph] : testing::SmallBasket()) {
      const std::vector<NodeId> labels = v.run(graph, {});
      const std::vector<NodeId> truth = SequentialComponents(graph);
      // ID-linking min-based algorithms converge to the canonical labeling
      // (component minimum), not just any partition.
      EXPECT_EQ(labels, truth) << v.name << " on " << name;
    }
  }
}

TEST(Properties, DeterministicAcrossReruns) {
  // Partition-determinism: repeated runs give the same partition (labels of
  // ID-linking families are even bitwise equal — covered above).
  const Graph graph = GenerateRmat(4096, 16384, 5);
  for (const char* name :
       {"Union-Rem-CAS;FindNaive;SplitAtomicOne", "Union-JTB;FindTwoTrySplit",
        "Liu-Tarjan;CUSA", "Stergiou"}) {
    const Variant* v = FindVariant(name);
    ASSERT_NE(v, nullptr);
    const auto a = v->run(graph, SamplingConfig::KOut());
    const auto b = v->run(graph, SamplingConfig::KOut());
    EXPECT_TRUE(SamePartition(a, b)) << name;
  }
}

TEST(Properties, PartitionInvariantUnderRepresentation) {
  // Composition-independence extends to the graph representation: the same
  // variant through a compressed GraphHandle yields the same partition
  // (exhaustive sweep in representation_parity_test; this is the
  // property-level statement for the paper rows).
  const Graph graph = GenerateRmat(4096, 16384, 5);
  const GraphHandle coded = GraphHandle::Compress(graph);
  const std::vector<NodeId> truth = SequentialComponents(graph);
  for (const AlgorithmRow& row : PaperAlgorithmRows()) {
    const Variant* v = row.variants.front();
    EXPECT_TRUE(SamePartition(v->run(coded, SamplingConfig::KOut()), truth))
        << row.name << " (" << v->name << ")";
  }
}

TEST(Properties, PartitionInvariantUnderThreadCount) {
  const size_t original = NumWorkers();
  const Graph graph = GenerateErdosRenyi(4096, 16384, 9);
  const std::vector<NodeId> truth = SequentialComponents(graph);
  for (const size_t workers : {1u, 2u, 4u}) {
    SetNumWorkers(workers);
    for (const char* name :
         {"Union-Rem-CAS;FindNaive;SpliceAtomic", "Union-Hooks;FindHalve",
          "Shiloach-Vishkin", "Liu-Tarjan;PRFA"}) {
      const Variant* v = FindVariant(name);
      ASSERT_NE(v, nullptr);
      EXPECT_TRUE(SamePartition(v->run(graph, {}), truth))
          << name << " workers=" << workers;
    }
  }
  SetNumWorkers(original);
}

// Monotonicity (Definition 3.2): for root-based algorithms, the partition
// only coarsens as edges are applied. We check the streaming form: labels
// after batch i+1 refine-upward (every same-set pair stays same-set).
TEST(Properties, StreamingPartitionsOnlyCoarsen) {
  const NodeId n = 400;
  const EdgeList stream = GenerateErdosRenyiEdges(n, 1200, 77);
  for (const char* name :
       {"Union-Async;FindSplit", "Shiloach-Vishkin", "Liu-Tarjan;PRF"}) {
    const Variant* v = FindVariant(name);
    ASSERT_NE(v, nullptr);
    auto alg = v->make_streaming(StreamingSeed::Cold(n));
    std::vector<NodeId> prev = alg->Labels();
    const size_t batch = 150;
    for (size_t start = 0; start < stream.size(); start += batch) {
      const size_t end = std::min(start + batch, stream.size());
      alg->ProcessBatch(std::vector<Edge>(stream.edges.begin() + start,
                                          stream.edges.begin() + end),
                        {});
      const std::vector<NodeId> cur = alg->Labels();
      for (NodeId a = 0; a < n; ++a) {
        // Same root before => same root after (monotone coarsening).
        if (prev[a] != a) {
          EXPECT_EQ(cur[prev[a]], cur[a])
              << name << ": split a previously merged pair";
        }
      }
      prev = cur;
    }
  }
}

// The composition property behind the framework: the partition is an
// invariant of the graph, independent of which (sampling, finish) pair
// computed it.
TEST(Properties, AllCompositionsAgreePairwise) {
  const Graph graph = GenerateComponentMixture(1000, 6, 3);
  std::vector<NodeId> reference;
  for (const char* name :
       {"Union-Rem-CAS;FindNaive;HalveAtomicOne", "Union-Early;FindCompress",
        "Liu-Tarjan;EUF", "Label-Propagation", "Stergiou"}) {
    const Variant* v = FindVariant(name);
    ASSERT_NE(v, nullptr);
    for (const SamplingOption s :
         {SamplingOption::kNone, SamplingOption::kKOut,
          SamplingOption::kBfs, SamplingOption::kLdd}) {
      SamplingConfig config;
      config.option = s;
      const auto labels = v->run(graph, config);
      if (reference.empty()) {
        reference = labels;
      } else {
        EXPECT_TRUE(SamePartition(labels, reference))
            << name << "/" << ToString(s);
      }
    }
  }
}

// Failure injection: adversarial sampling parameters must degrade to
// correct (if slower) executions, never to wrong answers.
TEST(Properties, DegenerateSamplingParametersStayCorrect) {
  const Graph graph = GenerateRmat(1024, 4096, 11);
  const std::vector<NodeId> truth = SequentialComponents(graph);
  const Variant* v = &DefaultVariant();

  {
    SamplingConfig c = SamplingConfig::KOut();
    c.kout.k = 0;  // clamped to 1 internally
    EXPECT_TRUE(SamePartition(v->run(graph, c), truth));
  }
  {
    SamplingConfig c = SamplingConfig::KOut();
    c.kout.k = 64;  // more samples than most degrees
    EXPECT_TRUE(SamePartition(v->run(graph, c), truth));
  }
  {
    SamplingConfig c = SamplingConfig::Bfs();
    c.bfs.coverage_threshold = 1.1;  // unattainable: sampling finds nothing
    c.bfs.max_tries = 2;
    EXPECT_TRUE(SamePartition(v->run(graph, c), truth));
  }
  {
    SamplingConfig c = SamplingConfig::Bfs();
    c.bfs.max_tries = 0;  // sampling disabled outright
    EXPECT_TRUE(SamePartition(v->run(graph, c), truth));
  }
  {
    SamplingConfig c = SamplingConfig::Ldd();
    c.ldd.beta = 0.999;  // nearly every vertex its own cluster
    EXPECT_TRUE(SamePartition(v->run(graph, c), truth));
  }
  {
    SamplingConfig c = SamplingConfig::Ldd();
    c.ldd.beta = 0.001;  // one cluster swallows the component
    EXPECT_TRUE(SamePartition(v->run(graph, c), truth));
  }
}

}  // namespace
}  // namespace connectit
