// Focused tests for the Liu-Tarjan framework, Stergiou, and the slot
// recorder — behaviors the big sweeps exercise but do not pin down.

#include <atomic>
#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/sampling.h"
#include "src/core/slot_recorder.h"
#include "src/graph/generators.h"
#include "src/liutarjan/liu_tarjan.h"
#include "src/liutarjan/stergiou.h"
#include "src/unionfind/dsu.h"
#include "src/parallel/thread_pool.h"

namespace connectit {
namespace {

std::vector<NodeId> Identity(NodeId n) {
  std::vector<NodeId> labels(n);
  for (NodeId v = 0; v < n; ++v) labels[v] = v;
  return labels;
}

TEST(LiuTarjan, VariantCodesMatchAppendixD) {
  EXPECT_EQ(LtVariantCode(LtConnect::kConnect, LtUpdate::kUpdate,
                          LtShortcut::kShortcut, LtAlter::kAlter),
            "CUSA");
  EXPECT_EQ(LtVariantCode(LtConnect::kConnect, LtUpdate::kRootUp,
                          LtShortcut::kFullShortcut, LtAlter::kAlter),
            "CRFA");
  EXPECT_EQ(LtVariantCode(LtConnect::kParentConnect, LtUpdate::kUpdate,
                          LtShortcut::kShortcut, LtAlter::kNoAlter),
            "PUS");
  EXPECT_EQ(LtVariantCode(LtConnect::kParentConnect, LtUpdate::kRootUp,
                          LtShortcut::kFullShortcut, LtAlter::kNoAlter),
            "PRF");
  EXPECT_EQ(LtVariantCode(LtConnect::kExtendedConnect, LtUpdate::kUpdate,
                          LtShortcut::kFullShortcut, LtAlter::kNoAlter),
            "EUF");
}

TEST(LiuTarjan, ConvergesOnEdgeLists) {
  const EdgeList el = GenerateErdosRenyiEdges(512, 1500, 3);
  const auto truth = SequentialComponents(el);
  std::vector<Edge> edges = el.edges;
  std::vector<NodeId> parents = Identity(512);
  LiuTarjan<LtConnect::kParentConnect, LtUpdate::kUpdate,
            LtShortcut::kShortcut, LtAlter::kNoAlter>
      lt;
  const NodeId rounds = lt.Run(edges, parents);
  EXPECT_GE(rounds, 1u);
  FullyCompressParents(parents.data(), 512);
  EXPECT_TRUE(SamePartition(parents, truth));
}

TEST(LiuTarjan, SingleRoundOnPreSolvedInput) {
  // If parents already hold the answer and edges are all self-consistent,
  // the first round makes no changes and the algorithm stops immediately.
  std::vector<Edge> edges = {{0, 1}, {1, 2}};
  std::vector<NodeId> parents = {0, 0, 0};
  LiuTarjan<LtConnect::kParentConnect, LtUpdate::kUpdate,
            LtShortcut::kShortcut, LtAlter::kNoAlter>
      lt;
  EXPECT_EQ(lt.Run(edges, parents), 1u);
}

TEST(LiuTarjan, AlterCompactsTheEdgeArray) {
  // After convergence with Alter, all edges have been rewritten to labels
  // and self-loops dropped — the array must shrink to empty.
  const EdgeList el = GenerateErdosRenyiEdges(256, 800, 5);
  std::vector<Edge> edges = el.edges;
  std::vector<NodeId> parents = Identity(256);
  LiuTarjan<LtConnect::kConnect, LtUpdate::kUpdate, LtShortcut::kShortcut,
            LtAlter::kAlter>
      lt;
  lt.Run(edges, parents);
  EXPECT_TRUE(edges.empty());
}

TEST(LiuTarjan, RootUpOnlyUpdatesRoundStartRoots) {
  // Drive one round manually: a deep chain plus an edge whose candidate
  // targets a non-root; RootUp must refuse the update.
  // parents: 1 -> 0, 2 -> 1 (non-root), edge (2, 0) offers prev-parents.
  std::vector<NodeId> parents = {0, 0, 1};
  std::vector<Edge> edges = {{2, 2}};  // self loop: no connect-phase change
  LiuTarjan<LtConnect::kParentConnect, LtUpdate::kRootUp,
            LtShortcut::kFullShortcut, LtAlter::kNoAlter>
      lt;
  lt.Run(edges, parents);
  // Only the shortcut phase may have acted: 2's parent jumps to 0.
  EXPECT_EQ(parents[0], 0u);
  EXPECT_EQ(parents[1], 0u);
  EXPECT_EQ(parents[2], 0u);
}

TEST(LiuTarjan, MonotoneParentsNeverIncrease) {
  const EdgeList el = GenerateRmatEdges(512, 2048, 9);
  std::vector<Edge> edges = el.edges;
  std::vector<NodeId> parents = Identity(512);
  // Interleave manual snapshots by running two instances round-by-round is
  // intrusive; instead verify the final state satisfies the invariant that
  // P[v] <= v (labels only decrease from the identity).
  LiuTarjan<LtConnect::kExtendedConnect, LtUpdate::kUpdate,
            LtShortcut::kFullShortcut, LtAlter::kAlter>
      lt;
  lt.Run(edges, parents);
  for (NodeId v = 0; v < 512; ++v) EXPECT_LE(parents[v], v);
}

TEST(Stergiou, MatchesGroundTruthAndTerminates) {
  const EdgeList el = GenerateErdosRenyiEdges(1024, 3000, 11);
  const auto truth = SequentialComponents(el);
  std::vector<Edge> edges = el.edges;
  std::vector<NodeId> parents = Identity(1024);
  Stergiou st;
  const NodeId rounds = st.Run(edges, parents);
  EXPECT_GE(rounds, 2u);
  FullyCompressParents(parents.data(), 1024);
  EXPECT_TRUE(SamePartition(parents, truth));
}

TEST(SlotRecorder, LastConsistentWriterWins) {
  const NodeId n = 4;
  std::vector<NodeId> parents = {0, 1, 2, 3};
  std::vector<Edge> slots(n, kEmptySlot);
  SlotRecorder recorder(&slots, parents.data(), n);
  // Hook 3 -> 2, record; then a better hook 3 -> 1 overwrites and records.
  parents[3] = 2;
  recorder.Record(3, 2, {3, 2});
  EXPECT_EQ(slots[3], (Edge{3, 2}));
  parents[3] = 1;
  recorder.Record(3, 1, {3, 1});
  EXPECT_EQ(slots[3], (Edge{3, 1}));
  // A stale record (parent no longer matches) must NOT overwrite.
  recorder.Record(3, 2, {3, 2});
  EXPECT_EQ(slots[3], (Edge{3, 1}));
}

TEST(SlotRecorder, ConcurrentRecordsStayConsistent) {
  const NodeId n = 2;
  std::vector<NodeId> parents = {0, 1};
  std::vector<Edge> slots(n, kEmptySlot);
  SlotRecorder recorder(&slots, parents.data(), n);
  // Many threads race WriteMin-style updates on vertex 1 and record; the
  // final slot must match the final parent.
  ParallelFor(0, 1000, [&](size_t i) {
    const NodeId value = static_cast<NodeId>(i % 2);
    if (WriteMin(&parents[1], value)) {
      recorder.Record(1, value, {1, static_cast<NodeId>(i)});
    }
  });
  EXPECT_EQ(parents[1], 0u);
  EXPECT_EQ(slots[1].u, 1u);  // some recorded edge, consistent head
}

}  // namespace
}  // namespace connectit
