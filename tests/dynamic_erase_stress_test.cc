// Concurrency stress for the batch-deletion path: snapshot readers race
// against a writer alternating Erase / Insert batches. Runs under TSan in
// CI (next to serving_snapshot_test) to certify the Erase mutator path —
// forest maintenance, replacement search, streaming reseed, publication —
// against the wait-free read path.
//
// Atomicity invariant under test: the graph is a set of disjoint pair
// edges (2i, 2i+1) that the writer deletes and reinserts as whole
// batches, so a published labeling either connects EVERY pair or NO pair.
// A snapshot that mixes the two states caught a half-applied batch.
// Publication parity: each applied batch publishes exactly one snapshot.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/connectivity_index.h"
#include "src/graph/types.h"
#include "src/stats/counters.h"

namespace connectit {
namespace {

TEST(DynamicEraseStress, ReadersNeverSeeHalfAppliedDeletions) {
  constexpr NodeId kPairs = 512;
  constexpr NodeId kNodes = 2 * kPairs;
  constexpr int kReaders = 4;
  constexpr int kRounds = 60;  // each round = one Erase batch + one Insert

  std::vector<Edge> pair_edges;
  pair_edges.reserve(kPairs);
  for (NodeId i = 0; i < kPairs; ++i) {
    pair_edges.push_back({static_cast<NodeId>(2 * i),
                          static_cast<NodeId>(2 * i + 1)});
  }

  Connectivity index;  // default spec: snapshot serving
  index.Stream(kNodes);
  index.Insert(pair_edges);

  const stats::ServingSnapshot before = stats::ReadServing();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots_checked{0};
  std::atomic<uint64_t> mixed_states{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!stop.load(std::memory_order_acquire)) {
        const Snapshot snap = index.Acquire();
        ASSERT_TRUE(snap.valid());
        // Sample pairs across the range; within one snapshot the answer
        // must be uniform — all connected or all split.
        const bool first = snap.SameComponent(0, 1);
        bool mixed = false;
        for (NodeId i = 1; i < kPairs; i += 7 + r) {
          if (snap.SameComponent(2 * i, 2 * i + 1) != first) {
            mixed = true;
            break;
          }
        }
        if (mixed) mixed_states.fetch_add(1, std::memory_order_relaxed);
        // Component count must match one of the two legal states too.
        const NodeId c = snap.NumComponents();
        if (c != kPairs && c != kNodes) {
          mixed_states.fetch_add(1, std::memory_order_relaxed);
        }
        snapshots_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int round = 0; round < kRounds; ++round) {
    index.Erase(pair_edges);   // all pairs split, atomically
    index.Insert(pair_edges);  // all pairs reconnected, atomically
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mixed_states.load(), 0u)
      << "a reader observed a half-applied Erase or Insert batch";
  EXPECT_GT(snapshots_checked.load(), 0u);

  const stats::ServingSnapshot after = stats::ReadServing();
  // Publication parity: one publication per applied batch (kRounds Erase +
  // kRounds Insert), on top of the setup publications already counted in
  // `before`.
  EXPECT_EQ(after.snapshot_publications - before.snapshot_publications,
            static_cast<uint64_t>(2 * kRounds));
  EXPECT_EQ(after.erase_batches - before.erase_batches,
            static_cast<uint64_t>(kRounds));
  EXPECT_EQ(after.edges_erased - before.edges_erased,
            static_cast<uint64_t>(kRounds) * kPairs);
  // Every deleted edge is a forest edge (the forest IS the pair edges) and
  // none has a replacement, so every round splits every pair.
  EXPECT_EQ(after.forest_edge_hits - before.forest_edge_hits,
            static_cast<uint64_t>(kRounds) * kPairs);
  EXPECT_EQ(after.components_split - before.components_split,
            static_cast<uint64_t>(kRounds) * kPairs);

  // The final state (after the last Insert) has every pair connected.
  EXPECT_EQ(index.NumComponents(), kPairs);
}

// Erase batches racing wait-free readers on a graph with replacements:
// a ring stays connected when single edges are deleted and reinserted, so
// readers must never observe ANY labeling change (surviving-replacement
// invariance, concurrently).
TEST(DynamicEraseStress, SurvivingReplacementsAreInvisibleToReaders) {
  constexpr NodeId kNodes = 256;
  constexpr int kRounds = 40;

  std::vector<Edge> ring;
  ring.reserve(kNodes);
  for (NodeId i = 0; i < kNodes; ++i) {
    ring.push_back({i, static_cast<NodeId>((i + 1) % kNodes)});
  }
  // Chords double the connectivity so deleting any ring edge always has a
  // surviving replacement.
  std::vector<Edge> chords;
  for (NodeId i = 0; i < kNodes; i += 2) {
    chords.push_back({i, static_cast<NodeId>((i + 2) % kNodes)});
  }

  Connectivity index;
  index.Stream(kNodes);
  index.Insert(ring);
  index.Insert(chords);
  ASSERT_EQ(index.NumComponents(), 1u);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> divergent{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const Snapshot snap = index.Acquire();
      if (snap.NumComponents() != 1) {
        divergent.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int round = 0; round < kRounds; ++round) {
    // Delete a sliding window of odd-index ring edges (their endpoints
    // stay connected through the chords), then restore them.
    std::vector<Edge> window;
    for (NodeId i = 1 + (round % 2); i < kNodes; i += 8) {
      window.push_back(ring[i]);
    }
    index.Erase(window);
    index.Insert(window);
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(divergent.load(), 0u)
      << "a deletion with a surviving replacement changed a query answer";
  EXPECT_EQ(index.NumComponents(), 1u);
}

}  // namespace
}  // namespace connectit
