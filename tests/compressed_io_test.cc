// Tests for the byte-compressed CSR format and graph I/O.

#include <atomic>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/graph/compressed.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/parallel/random.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

TEST(Compressed, RoundTripsEveryBasketGraph) {
  for (const auto& [name, g] : testing::CorrectnessBasket()) {
    const CompressedGraph cg = CompressedGraph::Encode(g);
    EXPECT_EQ(cg.num_nodes(), g.num_nodes()) << name;
    EXPECT_EQ(cg.num_arcs(), g.num_arcs()) << name;
    const Graph decoded = cg.Decode();
    EXPECT_EQ(decoded.offsets(), g.offsets()) << name;
    EXPECT_EQ(decoded.neighbor_array(), g.neighbor_array()) << name;
  }
}

TEST(Compressed, MapArcsMatchesUncompressed) {
  const Graph g = GenerateRmat(2048, 16384, 5);
  const CompressedGraph cg = CompressedGraph::Encode(g);
  std::atomic<uint64_t> plain{0};
  std::atomic<uint64_t> packed{0};
  g.MapArcs([&](NodeId u, NodeId v) {
    plain.fetch_add(Hash64(u * 1000003ull + v), std::memory_order_relaxed);
  });
  cg.MapArcs([&](NodeId u, NodeId v) {
    packed.fetch_add(Hash64(u * 1000003ull + v), std::memory_order_relaxed);
  });
  EXPECT_EQ(plain.load(), packed.load());
}

TEST(Compressed, CompressesLocalNeighborhoods) {
  // A grid has near-diagonal neighbors: byte codes should beat the 4-byte
  // raw representation comfortably.
  const Graph g = GenerateGrid(128, 128);
  const CompressedGraph cg = CompressedGraph::Encode(g);
  const size_t raw_bytes = g.num_arcs() * sizeof(NodeId);
  EXPECT_LT(cg.byte_size(), raw_bytes / 2);
}

TEST(Compressed, HandlesHighDegreeBlocks) {
  const Graph g = GenerateStar(1000);  // hub degree 999 spans many blocks
  const CompressedGraph cg = CompressedGraph::Encode(g);
  EXPECT_EQ(cg.degree(0), 999u);
  size_t count = 0;
  NodeId expect = 1;
  cg.MapNeighbors(0, [&](NodeId v) {
    EXPECT_EQ(v, expect++);
    ++count;
  });
  EXPECT_EQ(count, 999u);
}

TEST(Io, ParsesSnapStyleText) {
  const std::string text =
      "# a comment\n"
      "% another\n"
      "0 1\n"
      "1 2\n"
      "\n"
      "4 2\n";
  const EdgeList list = ParseEdgeListText(text);
  EXPECT_EQ(list.num_nodes, 5u);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list.edges[2], (Edge{4, 2}));
}

TEST(Io, CompactIdsRemapDensely) {
  const EdgeList list = ParseEdgeListText("100 200\n200 300\n", true);
  EXPECT_EQ(list.num_nodes, 3u);
  EXPECT_EQ(list.edges[0], (Edge{0, 1}));
  EXPECT_EQ(list.edges[1], (Edge{1, 2}));
}

TEST(Io, TextFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/connectit_edges.txt";
  EdgeList list;
  list.num_nodes = 6;
  list.edges = {{0, 1}, {2, 5}, {3, 4}};
  ASSERT_TRUE(WriteEdgeListFile(path, list));
  EdgeList loaded;
  ASSERT_TRUE(ReadEdgeListFile(path, &loaded));
  EXPECT_EQ(loaded.num_nodes, 6u);
  EXPECT_EQ(loaded.edges, list.edges);
  std::remove(path.c_str());
}

TEST(Io, BinaryRoundTrip) {
  const std::string path = ::testing::TempDir() + "/connectit_graph.bin";
  const Graph g = GenerateRmat(512, 4096, 9);
  ASSERT_TRUE(WriteGraphBinary(path, g));
  Graph loaded;
  ASSERT_TRUE(ReadGraphBinary(path, &loaded));
  EXPECT_EQ(loaded.offsets(), g.offsets());
  EXPECT_EQ(loaded.neighbor_array(), g.neighbor_array());
  std::remove(path.c_str());
}

TEST(Io, RejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/connectit_bad.bin";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("not a graph", f);
  fclose(f);
  Graph loaded;
  EXPECT_FALSE(ReadGraphBinary(path, &loaded));
  std::remove(path.c_str());
}

TEST(Io, MissingFileFails) {
  EdgeList list;
  EXPECT_FALSE(ReadEdgeListFile("/nonexistent/path/file.txt", &list));
  Graph g;
  EXPECT_FALSE(ReadGraphBinary("/nonexistent/path/file.bin", &g));
}

}  // namespace
}  // namespace connectit
