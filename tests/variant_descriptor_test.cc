// Typed variant identity: VariantDescriptor::Parse / ToString must be
// exact inverses over the registered name space, every Variant must carry
// a descriptor that round-trips to its name, descriptor lookup must be
// exact (not string matching), and the fatal lookup path must suggest the
// nearest registered name.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/core/registry.h"
#include "src/core/variant_descriptor.h"

namespace connectit {
namespace {

TEST(VariantDescriptor, RoundTripsEveryRegisteredName) {
  for (const Variant& v : AllVariants()) {
    EXPECT_TRUE(v.descriptor.IsValid()) << v.name;
    EXPECT_EQ(v.descriptor.ToString(), v.name);
    const auto parsed = VariantDescriptor::Parse(v.name);
    ASSERT_TRUE(parsed.has_value()) << v.name;
    EXPECT_EQ(*parsed, v.descriptor) << v.name;
    EXPECT_EQ(parsed->ToString(), v.name);
    // Descriptor lookup is exact and lands on the same registry entry.
    EXPECT_EQ(FindVariant(*parsed), &v) << v.name;
  }
}

TEST(VariantDescriptor, DescriptorsAreUniqueAcrossRegistry) {
  const std::vector<Variant>& variants = AllVariants();
  std::set<std::string> names;
  for (const Variant& v : variants) names.insert(v.name);
  EXPECT_EQ(names.size(), variants.size());
  for (size_t i = 0; i < variants.size(); ++i) {
    for (size_t j = i + 1; j < variants.size(); ++j) {
      EXPECT_FALSE(variants[i].descriptor == variants[j].descriptor)
          << variants[i].name << " vs " << variants[j].name;
    }
  }
}

TEST(VariantDescriptor, FamilyAxisAgreesWithRegistryFamily) {
  for (const Variant& v : AllVariants()) {
    EXPECT_EQ(v.descriptor.family, v.family) << v.name;
  }
}

TEST(VariantDescriptor, ParseAcceptsTypedFactoryForms) {
  EXPECT_EQ(*VariantDescriptor::Parse("Union-Rem-CAS;FindNaive;SplitAtomicOne"),
            VariantDescriptor::UnionFind(UniteOption::kRemCas,
                                         FindOption::kNaive,
                                         SpliceOption::kSplitOne));
  EXPECT_EQ(*VariantDescriptor::Parse("Union-JTB;FindTwoTrySplit"),
            VariantDescriptor::UnionFind(UniteOption::kJtb,
                                         FindOption::kTwoTrySplit));
  EXPECT_EQ(*VariantDescriptor::Parse("Liu-Tarjan;PRF"),
            VariantDescriptor::LiuTarjan(LtConnect::kParentConnect,
                                         LtUpdate::kRootUp,
                                         LtShortcut::kFullShortcut,
                                         LtAlter::kNoAlter));
  EXPECT_EQ(*VariantDescriptor::Parse("Liu-Tarjan;CUSA"),
            VariantDescriptor::LiuTarjan(LtConnect::kConnect,
                                         LtUpdate::kUpdate,
                                         LtShortcut::kShortcut,
                                         LtAlter::kAlter));
  EXPECT_EQ(*VariantDescriptor::Parse("Shiloach-Vishkin"),
            VariantDescriptor::ShiloachVishkin());
  EXPECT_EQ(*VariantDescriptor::Parse("Stergiou"),
            VariantDescriptor::Stergiou());
  EXPECT_EQ(*VariantDescriptor::Parse("Label-Propagation"),
            VariantDescriptor::LabelPropagation());
}

TEST(VariantDescriptor, ParseRejectsMalformedNames) {
  for (const char* bad : {
           "",
           "Union-Rem-CAS",                           // no find axis
           "Union-Rem-CAS;FindNaive",                 // Rem needs a splice
           "Union-Rem-CAS;FindNaive;",                // empty splice token
           "Union-Rem-CAS;FindNaive;SplitAtomicOn",   // typo
           "Union-Rem-CAS;FindCompress;SpliceAtomic", // invalid (App. B.2.3)
           "Union-Async;FindNaive;SplitAtomicOne",    // splice on non-Rem
           "Union-Async;FindTwoTrySplit",             // JTB-only find
           "Union-JTB;FindSplit",                     // JTB find restriction
           ";FindNaive",
           "union-rem-cas;findnaive;splitatomicone",  // case-sensitive
           "Liu-Tarjan",
           "Liu-Tarjan;",
           "Liu-Tarjan;XYZ",
           "Liu-Tarjan;CUS",    // Connect requires Alter
           "Liu-Tarjan;ERS",    // ExtendedConnect requires Update
           "Liu-Tarjan;ERSA",
           "Liu-Tarjan;PRFAA",
           "Liu-Tarjan;prf",
           "Shiloach-Vishkin;",
           "Label-Propagation;PRF",
           "NoSuchAlgorithm",
       }) {
    EXPECT_FALSE(VariantDescriptor::Parse(bad).has_value()) << "\"" << bad
                                                            << "\"";
  }
}

TEST(VariantDescriptor, EqualityIgnoresInactiveAxes) {
  VariantDescriptor sv = VariantDescriptor::ShiloachVishkin();
  sv.unite = UniteOption::kJtb;  // noise on an axis the family does not use
  sv.connect = LtConnect::kExtendedConnect;
  EXPECT_EQ(sv, VariantDescriptor::ShiloachVishkin());
  EXPECT_EQ(FindVariant(sv), FindVariant("Shiloach-Vishkin"));
}

TEST(Registry, FindByDescriptorRejectsUnregisteredCombinations) {
  // FindCompress + SpliceAtomic is never instantiated (paper App. B.2.3).
  const VariantDescriptor invalid = VariantDescriptor::UnionFind(
      UniteOption::kRemCas, FindOption::kCompress, SpliceOption::kSplice);
  EXPECT_FALSE(invalid.IsValid());
  EXPECT_EQ(FindVariant(invalid), nullptr);
}

TEST(Registry, DefaultVariantIsThePapersRecommendedPick) {
  const Variant& v = DefaultVariant();
  EXPECT_EQ(v.name, "Union-Rem-CAS;FindNaive;SplitAtomicOne");
  EXPECT_EQ(&v, FindVariant(VariantDescriptor::UnionFind(
                    UniteOption::kRemCas, FindOption::kNaive,
                    SpliceOption::kSplitOne)));
  EXPECT_TRUE(v.root_based);
  EXPECT_TRUE(v.supports_streaming);
}

TEST(Registry, GetVariantOrDieReturnsExactMatches) {
  for (const char* name :
       {"Stergiou", "Liu-Tarjan;PRF", "Union-Rem-CAS;FindNaive;SplitAtomicOne"}) {
    EXPECT_EQ(&GetVariantOrDie(name), FindVariant(name));
  }
}

TEST(RegistryDeathTest, GetVariantOrDieSuggestsNearestName) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      GetVariantOrDie("Union-Rem-CAS;FindNaive;SplitAtomicOn"),
      "unknown variant \"Union-Rem-CAS;FindNaive;SplitAtomicOn\"; did you "
      "mean \"Union-Rem-CAS;FindNaive;SplitAtomicOne\"");
  EXPECT_DEATH(GetVariantOrDie("Liu-Tarjan;QRF"), "Liu-Tarjan;");
}

}  // namespace
}  // namespace connectit
