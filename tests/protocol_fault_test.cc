// Fault injection for the wire protocol (the network twin of
// container_corruption_test.cc): flip or truncate every byte of valid
// frames and require the decode layer to fail cleanly — false return, a
// field-specific diagnostic, a protocol_errors tick — and never crash,
// hang, or misparse. The systematic sweeps XOR every header and payload
// byte; the named cases pin the precise diagnostic for each class of
// damage (bad magic, unsupported version, stale checksum, unknown opcode,
// oversized length, malformed bodies) so error messages stay actionable.
// CI runs this binary under AddressSanitizer, so "never reads out of
// bounds" is enforced, not assumed.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/protocol.h"
#include "src/stats/counters.h"

namespace connectit::serve {
namespace {

using Bytes = std::vector<uint8_t>;

// Expect `decode_call` (an expression returning bool) to be refused with a
// non-empty diagnostic containing `needle`, ticking protocol_errors once.
// The call site must have a `std::string error` in scope that decode_call
// writes into.
#define EXPECT_REJECTED(decode_call, needle)                              \
  do {                                                                    \
    const uint64_t before = stats::ReadTransport().protocol_errors;       \
    error.clear();                                                        \
    EXPECT_FALSE(decode_call) << "accepted corrupt bytes";                \
    EXPECT_FALSE(error.empty());                                          \
    EXPECT_NE(error.find(needle), std::string::npos)                      \
        << "diagnostic \"" << error << "\" does not mention \"" << needle \
        << "\"";                                                          \
    EXPECT_EQ(stats::ReadTransport().protocol_errors, before + 1)         \
        << "rejection did not tick protocol_errors exactly once";         \
  } while (0)

FrameHeader HeaderOf(const Bytes& frame) {
  FrameHeader header;
  std::memcpy(&header, frame.data(), kFrameHeaderBytes);
  return header;
}

// Recomputes header_checksum (and, if the payload was patched,
// payload_checksum) after a deliberate field patch, so the test reaches
// the targeted validation step instead of tripping the checksum gate.
void Restamp(Bytes* frame, bool restamp_payload = false) {
  FrameHeader header = HeaderOf(*frame);
  if (restamp_payload) {
    header.payload_checksum = WireChecksum(
        frame->data() + kFrameHeaderBytes, frame->size() - kFrameHeaderBytes);
  }
  std::memcpy(frame->data(), &header, kFrameHeaderBytes);
  header.header_checksum =
      WireChecksum(frame->data(), kFrameHeaderBytes - sizeof(uint32_t));
  std::memcpy(frame->data(), &header, kFrameHeaderBytes);
}

// One valid frame of every request opcode, including a mutation with both
// edges and queries so the sweep covers a multi-field body.
std::vector<Bytes> SampleRequestFrames() {
  std::vector<Bytes> frames;
  {
    Bytes f;
    AppendComponentRequest(11, 42, &f);
    frames.push_back(f);
  }
  {
    Bytes f;
    AppendSameComponentRequest(12, 7, 9, &f);
    frames.push_back(f);
  }
  {
    Bytes f;
    AppendNumComponentsRequest(13, &f);
    frames.push_back(f);
  }
  {
    Bytes f;
    AppendComponentSizesRequest(14, 128, &f);
    frames.push_back(f);
  }
  {
    Bytes f;
    MutateRequest req;
    req.edges = {{1, 2}, {3, 4}, {5, 6}};
    req.queries = {{1, 4}};
    AppendMutateRequest(Opcode::kInsertBatch, 15, req, &f);
    frames.push_back(f);
  }
  {
    Bytes f;
    MutateRequest req;
    req.edges = {{2, 3}};
    AppendMutateRequest(Opcode::kEraseBatch, 16, req, &f);
    frames.push_back(f);
  }
  {
    Bytes f;
    AppendStatsRequest(17, &f);
    frames.push_back(f);
  }
  return frames;
}

class ProtocolFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { stats::ResetTransport(); }
};

// ---- round trips: the uncorrupted baseline every fault case perturbs ----

TEST_F(ProtocolFaultTest, EveryRequestOpcodeRoundTrips) {
  for (const Bytes& frame : SampleRequestFrames()) {
    FrameHeader header;
    std::string error;
    ASSERT_TRUE(DecodeFrameHeader(frame.data(), frame.size(), &header, &error))
        << error;
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + header.payload_length);
    const uint8_t* payload = frame.data() + kFrameHeaderBytes;
    ASSERT_TRUE(ValidatePayload(header, payload, &error)) << error;
    ASSERT_TRUE(KnownOpcode(header.opcode));
    EXPECT_EQ(header.opcode & kResponseBit, 0);

    switch (static_cast<Opcode>(header.opcode)) {
      case Opcode::kComponent: {
        NodeId v = 0;
        ASSERT_TRUE(DecodeComponentRequest(payload, header.payload_length, &v,
                                           &error));
        EXPECT_EQ(v, 42u);
        EXPECT_EQ(header.request_id, 11u);
        break;
      }
      case Opcode::kSameComponent: {
        NodeId u = 0, v = 0;
        ASSERT_TRUE(DecodeSameComponentRequest(payload, header.payload_length,
                                               &u, &v, &error));
        EXPECT_EQ(u, 7u);
        EXPECT_EQ(v, 9u);
        break;
      }
      case Opcode::kNumComponents:
        ASSERT_TRUE(
            DecodeNumComponentsRequest(payload, header.payload_length, &error));
        break;
      case Opcode::kComponentSizes: {
        uint32_t max_entries = 0;
        ASSERT_TRUE(DecodeComponentSizesRequest(payload, header.payload_length,
                                                &max_entries, &error));
        EXPECT_EQ(max_entries, 128u);
        break;
      }
      case Opcode::kInsertBatch: {
        MutateRequest req;
        ASSERT_TRUE(DecodeMutateRequest(Opcode::kInsertBatch, payload,
                                        header.payload_length, &req, &error));
        ASSERT_EQ(req.edges.size(), 3u);
        ASSERT_EQ(req.queries.size(), 1u);
        EXPECT_EQ(req.edges[2].u, 5u);
        EXPECT_EQ(req.queries[0].v, 4u);
        break;
      }
      case Opcode::kEraseBatch: {
        MutateRequest req;
        ASSERT_TRUE(DecodeMutateRequest(Opcode::kEraseBatch, payload,
                                        header.payload_length, &req, &error));
        ASSERT_EQ(req.edges.size(), 1u);
        EXPECT_TRUE(req.queries.empty());
        break;
      }
      case Opcode::kStats:
        ASSERT_TRUE(DecodeStatsRequest(payload, header.payload_length, &error));
        break;
    }
  }
  EXPECT_EQ(stats::ReadTransport().protocol_errors, 0u);
}

TEST_F(ProtocolFaultTest, EveryResponseOpcodeRoundTrips) {
  std::string error;
  auto reparse = [&](const Bytes& frame, Opcode want_opcode,
                     uint64_t want_id) -> std::pair<const uint8_t*, size_t> {
    FrameHeader header;
    EXPECT_TRUE(DecodeFrameHeader(frame.data(), frame.size(), &header, &error))
        << error;
    EXPECT_EQ(header.opcode, static_cast<uint8_t>(want_opcode) | kResponseBit);
    EXPECT_EQ(header.request_id, want_id);
    const uint8_t* payload = frame.data() + kFrameHeaderBytes;
    EXPECT_TRUE(ValidatePayload(header, payload, &error)) << error;
    return {payload, header.payload_length};
  };

  {
    Bytes f;
    AppendComponentResponse(21, Status::kOk, 99, &f);
    auto [p, n] = reparse(f, Opcode::kComponent, 21);
    Status status;
    NodeId label = 0;
    ASSERT_TRUE(DecodeComponentResponse(p, n, &status, &label, &error));
    EXPECT_EQ(status, Status::kOk);
    EXPECT_EQ(label, 99u);
  }
  {
    Bytes f;
    AppendSameComponentResponse(22, Status::kOk, true, &f);
    auto [p, n] = reparse(f, Opcode::kSameComponent, 22);
    Status status;
    bool connected = false;
    ASSERT_TRUE(DecodeSameComponentResponse(p, n, &status, &connected, &error));
    EXPECT_EQ(status, Status::kOk);
    EXPECT_TRUE(connected);
  }
  {
    Bytes f;
    AppendNumComponentsResponse(23, Status::kOk, 17, 5, &f);
    auto [p, n] = reparse(f, Opcode::kNumComponents, 23);
    Status status;
    NodeId count = 0;
    uint64_t version = 0;
    ASSERT_TRUE(
        DecodeNumComponentsResponse(p, n, &status, &count, &version, &error));
    EXPECT_EQ(count, 17u);
    EXPECT_EQ(version, 5u);
  }
  {
    Bytes f;
    AppendComponentSizesResponse(24, Status::kOk, 2, {{0, 3}, {3, 5}}, &f);
    auto [p, n] = reparse(f, Opcode::kComponentSizes, 24);
    Status status;
    NodeId count = 0;
    std::vector<ComponentSizesEntry> entries;
    ASSERT_TRUE(
        DecodeComponentSizesResponse(p, n, &status, &count, &entries, &error));
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[1].representative, 3u);
    EXPECT_EQ(entries[1].size, 5u);
  }
  {
    Bytes f;
    MutateResponse resp;
    resp.answers = {1, 0, 1};
    AppendMutateResponse(Opcode::kInsertBatch, 25, resp, &f);
    auto [p, n] = reparse(f, Opcode::kInsertBatch, 25);
    MutateResponse got;
    ASSERT_TRUE(DecodeMutateResponse(p, n, &got, &error));
    EXPECT_EQ(got.answers, (std::vector<uint8_t>{1, 0, 1}));
  }
  {
    Bytes f;
    StatsProbe probe;
    probe.frames_in = 100;
    probe.snapshot_version = 7;
    AppendStatsResponse(26, probe, &f);
    auto [p, n] = reparse(f, Opcode::kStats, 26);
    StatsProbe got;
    ASSERT_TRUE(DecodeStatsResponse(p, n, &got, &error));
    EXPECT_EQ(got.frames_in, 100u);
    EXPECT_EQ(got.snapshot_version, 7u);
  }
  // Non-kOk statuses encode as a lone status byte for every opcode.
  for (const Status status : {Status::kBackpressure, Status::kBadRequest,
                              Status::kNotStreaming, Status::kShuttingDown}) {
    Bytes f;
    AppendStatusResponse(Opcode::kInsertBatch, 27, status, &f);
    auto [p, n] = reparse(f, Opcode::kInsertBatch, 27);
    ASSERT_EQ(n, 1u);
    MutateResponse got;
    ASSERT_TRUE(DecodeMutateResponse(p, n, &got, &error));
    EXPECT_EQ(got.status, status);
    EXPECT_TRUE(got.answers.empty());
  }
  EXPECT_EQ(stats::ReadTransport().protocol_errors, 0u);
}

// ---- systematic sweeps ----

TEST_F(ProtocolFaultTest, EveryHeaderByteFlipIsRejected) {
  for (const Bytes& valid : SampleRequestFrames()) {
    for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
      Bytes frame = valid;
      frame[i] ^= 0xFF;
      FrameHeader header;
      std::string error;
      const uint64_t before = stats::ReadTransport().protocol_errors;
      EXPECT_FALSE(DecodeFrameHeader(frame.data(), frame.size(), &header,
                                     &error))
          << "header byte " << i << " flip accepted";
      EXPECT_FALSE(error.empty()) << "header byte " << i;
      EXPECT_EQ(stats::ReadTransport().protocol_errors, before + 1);
    }
  }
}

TEST_F(ProtocolFaultTest, EveryPayloadByteFlipIsRejected) {
  for (const Bytes& valid : SampleRequestFrames()) {
    if (valid.size() == kFrameHeaderBytes) continue;  // no payload to flip
    FrameHeader header;
    std::string error;
    ASSERT_TRUE(DecodeFrameHeader(valid.data(), valid.size(), &header,
                                  &error));
    for (size_t i = kFrameHeaderBytes; i < valid.size(); ++i) {
      Bytes frame = valid;
      frame[i] ^= 0xFF;
      EXPECT_REJECTED(ValidatePayload(header, frame.data() + kFrameHeaderBytes,
                                      &error),
                      "payload checksum mismatch");
    }
  }
}

TEST_F(ProtocolFaultTest, TruncatedHeaderAtEveryLength) {
  Bytes frame;
  AppendComponentRequest(31, 5, &frame);
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    FrameHeader header;
    std::string error;
    EXPECT_REJECTED(DecodeFrameHeader(frame.data(), len, &header, &error),
                    "truncated");
  }
}

// ---- named header faults (checksums restamped to reach the target) ----

TEST_F(ProtocolFaultTest, BadMagic) {
  Bytes frame;
  AppendStatsRequest(41, &frame);
  FrameHeader header = HeaderOf(frame);
  header.magic = 0x2143'4743;  // ".cgc"-ish: wrong-port bytes
  std::memcpy(frame.data(), &header, kFrameHeaderBytes);
  Restamp(&frame);
  std::string error;
  EXPECT_REJECTED(
      DecodeFrameHeader(frame.data(), frame.size(), &header, &error),
      "magic mismatch");
}

TEST_F(ProtocolFaultTest, UnsupportedVersion) {
  Bytes frame;
  AppendStatsRequest(42, &frame);
  FrameHeader header = HeaderOf(frame);
  header.version = kWireVersion + 1;
  std::memcpy(frame.data(), &header, kFrameHeaderBytes);
  Restamp(&frame);
  std::string error;
  EXPECT_REJECTED(
      DecodeFrameHeader(frame.data(), frame.size(), &header, &error),
      "unsupported wire version");
}

// A corrupt opcode whose checksum was NOT restamped must be reported as
// corruption, not as "unknown opcode" the peer never sent.
TEST_F(ProtocolFaultTest, StaleChecksumReportsCorruptionNotUnknownOpcode) {
  Bytes frame;
  AppendStatsRequest(43, &frame);
  frame[5] = 0x7F;  // opcode byte, checksum left stale
  FrameHeader header;
  std::string error;
  EXPECT_REJECTED(
      DecodeFrameHeader(frame.data(), frame.size(), &header, &error),
      "header checksum mismatch");
}

TEST_F(ProtocolFaultTest, UnknownOpcode) {
  for (const uint8_t bad : {uint8_t{0}, uint8_t{8}, uint8_t{0x7F}}) {
    Bytes frame;
    AppendStatsRequest(44, &frame);
    FrameHeader header = HeaderOf(frame);
    header.opcode = bad;
    std::memcpy(frame.data(), &header, kFrameHeaderBytes);
    Restamp(&frame);
    std::string error;
    EXPECT_REJECTED(
        DecodeFrameHeader(frame.data(), frame.size(), &header, &error),
        "unknown opcode");
  }
}

TEST_F(ProtocolFaultTest, NonzeroReservedFieldsRejected) {
  for (const bool second : {false, true}) {
    Bytes frame;
    AppendStatsRequest(45, &frame);
    FrameHeader header = HeaderOf(frame);
    if (second) {
      header.reserved2 = 1;
    } else {
      header.reserved = 1;
    }
    std::memcpy(frame.data(), &header, kFrameHeaderBytes);
    Restamp(&frame);
    std::string error;
    EXPECT_REJECTED(
        DecodeFrameHeader(frame.data(), frame.size(), &header, &error),
        "reserved field nonzero");
  }
}

TEST_F(ProtocolFaultTest, OversizedPayloadLengthRejected) {
  Bytes frame;
  AppendStatsRequest(46, &frame);
  FrameHeader header = HeaderOf(frame);
  header.payload_length = kMaxPayloadBytes + 1;
  std::memcpy(frame.data(), &header, kFrameHeaderBytes);
  Restamp(&frame);
  std::string error;
  // The hostile length is rejected from the header alone — before any
  // buffer of that size could be reserved or awaited.
  EXPECT_REJECTED(
      DecodeFrameHeader(frame.data(), frame.size(), &header, &error),
      "exceeds limit");
}

TEST_F(ProtocolFaultTest, ResponseBitDoesNotConfuseOpcodeValidation) {
  EXPECT_TRUE(KnownOpcode(static_cast<uint8_t>(Opcode::kComponent) |
                          kResponseBit));
  EXPECT_TRUE(KnownOpcode(static_cast<uint8_t>(Opcode::kStats) |
                          kResponseBit));
  EXPECT_FALSE(KnownOpcode(kResponseBit));        // response bit + opcode 0
  EXPECT_FALSE(KnownOpcode(kResponseBit | 0x08));
}

// ---- request-body faults ----

TEST_F(ProtocolFaultTest, RequestBodyLengthViolations) {
  const uint8_t junk[16] = {0};
  std::string error;
  {
    NodeId v;
    EXPECT_REJECTED(DecodeComponentRequest(junk, 3, &v, &error),
                    "Component request");
    EXPECT_REJECTED(DecodeComponentRequest(junk, 5, &v, &error),
                    "expected 4");
  }
  {
    NodeId u, v;
    EXPECT_REJECTED(DecodeSameComponentRequest(junk, 7, &u, &v, &error),
                    "SameComponent request");
  }
  {
    EXPECT_REJECTED(DecodeNumComponentsRequest(junk, 1, &error),
                    "expected 0");
  }
  {
    uint32_t max_entries;
    EXPECT_REJECTED(
        DecodeComponentSizesRequest(junk, 8, &max_entries, &error),
        "ComponentSizes request");
  }
  {
    EXPECT_REJECTED(DecodeStatsRequest(junk, 2, &error), "Stats request");
  }
}

TEST_F(ProtocolFaultTest, MutateRequestCountHeaderTruncated) {
  const uint8_t junk[8] = {0};
  MutateRequest req;
  std::string error;
  for (const size_t len : {size_t{0}, size_t{1}, size_t{7}}) {
    EXPECT_REJECTED(
        DecodeMutateRequest(Opcode::kInsertBatch, junk, len, &req, &error),
        "truncated count header");
  }
}

TEST_F(ProtocolFaultTest, MutateRequestCountsMismatchPayload) {
  // Encode a valid 2-edge, 1-query body, then lie in the count fields.
  MutateRequest valid;
  valid.edges = {{1, 2}, {3, 4}};
  valid.queries = {{1, 3}};
  Bytes frame;
  AppendMutateRequest(Opcode::kEraseBatch, 51, valid, &frame);
  Bytes body(frame.begin() + kFrameHeaderBytes, frame.end());
  ASSERT_EQ(body.size(), 8u + 8 * 3);

  MutateRequest req;
  std::string error;
  {
    Bytes lied = body;
    const uint32_t edges = 3;  // claims one more edge than the bytes hold
    std::memcpy(lied.data(), &edges, 4);
    EXPECT_REJECTED(DecodeMutateRequest(Opcode::kEraseBatch, lied.data(),
                                        lied.size(), &req, &error),
                    "does not match counts");
  }
  {
    // Hostile counts near UINT32_MAX must not overflow the expected-length
    // arithmetic into a small (matching) value.
    Bytes lied = body;
    const uint32_t edges = 0xFFFF'FFFF;
    const uint32_t queries = 0xFFFF'FFFF;
    std::memcpy(lied.data(), &edges, 4);
    std::memcpy(lied.data() + 4, &queries, 4);
    EXPECT_REJECTED(DecodeMutateRequest(Opcode::kInsertBatch, lied.data(),
                                        lied.size(), &req, &error),
                    "does not match counts");
  }
  {
    // One byte shaved off the tail: counts no longer match the length.
    EXPECT_REJECTED(DecodeMutateRequest(Opcode::kEraseBatch, body.data(),
                                        body.size() - 1, &req, &error),
                    "does not match counts");
  }
}

// ---- response-body faults (the client's half of the contract) ----

TEST_F(ProtocolFaultTest, ResponseMissingStatusByte) {
  std::string error;
  Status status;
  NodeId label;
  EXPECT_REJECTED(
      DecodeComponentResponse(nullptr, 0, &status, &label, &error),
      "no status byte");
}

TEST_F(ProtocolFaultTest, ResponseUnknownStatusByte) {
  const uint8_t body[1] = {
      static_cast<uint8_t>(Status::kShuttingDown) + 1};
  std::string error;
  MutateResponse resp;
  EXPECT_REJECTED(DecodeMutateResponse(body, 1, &resp, &error),
                  "unknown status");
}

TEST_F(ProtocolFaultTest, ResponseBodyLengthViolations) {
  uint8_t body[32] = {0};  // status byte kOk, zeroed fields
  std::string error;
  Status status;
  {
    NodeId label;
    EXPECT_REJECTED(DecodeComponentResponse(body, 4, &status, &label, &error),
                    "expected 5");
  }
  {
    bool connected;
    EXPECT_REJECTED(
        DecodeSameComponentResponse(body, 3, &status, &connected, &error),
        "expected 2");
  }
  {
    NodeId count;
    uint64_t version;
    EXPECT_REJECTED(DecodeNumComponentsResponse(body, 12, &status, &count,
                                                &version, &error),
                    "expected 13");
  }
  {
    NodeId count;
    std::vector<ComponentSizesEntry> entries;
    EXPECT_REJECTED(DecodeComponentSizesResponse(body, 8, &status, &count,
                                                 &entries, &error),
                    "truncated header");
    // Entry count claims 2 entries but only one is present.
    uint8_t sized[9 + 8] = {0};
    const uint32_t num_entries = 2;
    std::memcpy(sized + 5, &num_entries, 4);
    EXPECT_REJECTED(
        DecodeComponentSizesResponse(sized, sizeof(sized), &status, &count,
                                     &entries, &error),
        "does not match entry count");
  }
  {
    MutateResponse resp;
    EXPECT_REJECTED(DecodeMutateResponse(body, 4, &resp, &error),
                    "truncated answer header");
    uint8_t answers[5 + 2] = {0};
    const uint32_t num_answers = 3;  // claims 3, holds 2
    std::memcpy(answers + 1, &num_answers, 4);
    EXPECT_REJECTED(
        DecodeMutateResponse(answers, sizeof(answers), &resp, &error),
        "does not match answer count");
  }
  {
    StatsProbe probe;
    EXPECT_REJECTED(DecodeStatsResponse(body, 32, &probe, &error),
                    "shorter than");
  }
}

// Appending fields to StatsProbe must not break old clients: a longer
// payload than the decoder knows is accepted, extras ignored.
TEST_F(ProtocolFaultTest, StatsResponseForwardCompatible) {
  StatsProbe probe;
  probe.frames_out = 55;
  probe.num_nodes = 1024;
  Bytes frame;
  AppendStatsResponse(61, probe, &frame);
  Bytes body(frame.begin() + kFrameHeaderBytes, frame.end());
  body.resize(body.size() + 16, 0xAB);  // two unknown future fields
  StatsProbe got;
  std::string error;
  ASSERT_TRUE(DecodeStatsResponse(body.data(), body.size(), &got, &error))
      << error;
  EXPECT_EQ(got.frames_out, 55u);
  EXPECT_EQ(got.num_nodes, 1024u);
  EXPECT_EQ(stats::ReadTransport().protocol_errors, 0u);
}

// ---- deterministic fuzz: random bytes through every decoder ----
//
// No assertion beyond "returns" — ASan turns any out-of-bounds read into a
// failure. xorshift instead of <random> keeps the byte stream identical
// across platforms and runs.

TEST_F(ProtocolFaultTest, RandomBytesNeverCrashAnyDecoder) {
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::string error;
  for (int round = 0; round < 2000; ++round) {
    Bytes bytes(next() % 96);
    for (uint8_t& b : bytes) b = static_cast<uint8_t>(next());

    FrameHeader header;
    DecodeFrameHeader(bytes.data(), bytes.size(), &header, &error);

    NodeId u, v;
    uint32_t max_entries;
    uint64_t version;
    Status status;
    bool connected;
    std::vector<ComponentSizesEntry> entries;
    MutateRequest mreq;
    MutateResponse mresp;
    StatsProbe probe;
    DecodeComponentRequest(bytes.data(), bytes.size(), &v, &error);
    DecodeSameComponentRequest(bytes.data(), bytes.size(), &u, &v, &error);
    DecodeNumComponentsRequest(bytes.data(), bytes.size(), &error);
    DecodeComponentSizesRequest(bytes.data(), bytes.size(), &max_entries,
                                &error);
    DecodeMutateRequest(Opcode::kInsertBatch, bytes.data(), bytes.size(),
                        &mreq, &error);
    DecodeStatsRequest(bytes.data(), bytes.size(), &error);
    DecodeComponentResponse(bytes.data(), bytes.size(), &status, &v, &error);
    DecodeSameComponentResponse(bytes.data(), bytes.size(), &status,
                                &connected, &error);
    DecodeNumComponentsResponse(bytes.data(), bytes.size(), &status, &v,
                                &version, &error);
    DecodeComponentSizesResponse(bytes.data(), bytes.size(), &status, &v,
                                 &entries, &error);
    DecodeMutateResponse(bytes.data(), bytes.size(), &mresp, &error);
    DecodeStatsResponse(bytes.data(), bytes.size(), &probe, &error);
  }
  SUCCEED();
}

}  // namespace
}  // namespace connectit::serve
