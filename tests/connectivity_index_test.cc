// Serving-façade parity: for every registered variant × sampling scheme ×
// graph representation, connectit::Connectivity must produce exactly the
// results of the direct registry calls it wraps — Build vs Variant::run,
// Stream/Insert vs make_streaming(StreamingSeed)/ProcessBatch — and its
// query methods must serve the same partition. Plus Spec semantics
// (builder, Auto, representation conversion), lifecycle guards, and
// concurrent reads during ingest.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/connectivity_index.h"
#include "src/core/components.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/compressed.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/graph/sharded.h"

namespace connectit {
namespace {

constexpr size_t kShards = 3;  // non-trivial boundaries on any runner

// One multi-component graph encoded once in all four representations.
struct Reps {
  Graph csr;
  CompressedGraph compressed;
  EdgeList coo;
  ShardedGraph sharded;
};

const Reps& TestReps() {
  static const Reps* reps = [] {
    auto* out = new Reps();
    out->csr = GenerateComponentMixture(800, 6, /*seed=*/29);
    out->compressed = CompressedGraph::Encode(out->csr);
    out->coo = ExtractEdges(out->csr);
    out->sharded = ShardedGraph::Partition(out->csr, kShards);
    return out;
  }();
  return *reps;
}

const std::vector<GraphRepresentation>& AllReprs() {
  static const std::vector<GraphRepresentation> reprs = {
      GraphRepresentation::kCsr, GraphRepresentation::kCompressed,
      GraphRepresentation::kCoo, GraphRepresentation::kSharded};
  return reprs;
}

GraphHandle HandleFor(GraphRepresentation repr) {
  const Reps& reps = TestReps();
  switch (repr) {
    case GraphRepresentation::kCsr: return GraphHandle(reps.csr);
    case GraphRepresentation::kCompressed:
      return GraphHandle(reps.compressed);
    case GraphRepresentation::kCoo: return GraphHandle(reps.coo);
    case GraphRepresentation::kSharded: return GraphHandle(reps.sharded);
  }
  return GraphHandle();
}

const std::vector<SamplingOption> kSamplings = {
    SamplingOption::kNone, SamplingOption::kKOut, SamplingOption::kBfs,
    SamplingOption::kLdd};

// The acceptance sweep: Build on every variant × sampling × representation
// equals the direct registry run, and the query surface serves that
// labeling.
TEST(ConnectivityParity, BuildMatchesDirectRegistryRunEverywhere) {
  for (const Variant& v : AllVariants()) {
    for (const SamplingOption s : kSamplings) {
      SamplingConfig config;
      config.option = s;
      for (const GraphRepresentation repr : AllReprs()) {
        const GraphHandle handle = HandleFor(repr);
        Connectivity index(
            Connectivity::Spec().Algorithm(v.descriptor).Sampling(config));
        index.Build(handle);
        const std::vector<NodeId> direct =
            CanonicalizeLabels(v.run(handle, config));
        const std::vector<NodeId> facade = CanonicalizeLabels(index.Labels());
        ASSERT_EQ(facade, direct)
            << "variant=" << v.name << " sampling=" << ToString(s)
            << " repr=" << ToString(repr);
        // Query surface: served answers are the served labeling.
        EXPECT_EQ(index.NumComponents(), CountComponents(index.Labels()));
        EXPECT_EQ(index.Component(0), index.Labels()[0]);
        EXPECT_EQ(index.SameComponent(0, 1), facade[0] == facade[1]);
        EXPECT_EQ(index.num_nodes(), handle.num_nodes());
        EXPECT_EQ(index.representation(), repr);
      }
    }
  }
}

// The streaming half of the acceptance sweep: Build + Stream + Insert over
// batches equals make_streaming(FromStatic) + ProcessBatch over the same
// batches, equals a full static run over all edges — on every streaming
// variant × sampling × representation.
TEST(ConnectivityParity, StreamMatchesDirectSeededStreamingEverywhere) {
  const Reps& reps = TestReps();
  const EdgeList& all = reps.coo;
  const size_t held = all.size() / 5;
  EdgeList base;
  base.num_nodes = all.num_nodes;
  base.edges.assign(all.edges.begin(), all.edges.end() - held);
  const Graph base_csr = BuildGraph(base);
  const CompressedGraph base_compressed = CompressedGraph::Encode(base_csr);
  const ShardedGraph base_sharded = ShardedGraph::Partition(base_csr, kShards);
  auto base_handle = [&](GraphRepresentation repr) {
    switch (repr) {
      case GraphRepresentation::kCsr: return GraphHandle(base_csr);
      case GraphRepresentation::kCompressed:
        return GraphHandle(base_compressed);
      case GraphRepresentation::kCoo: return GraphHandle(base);
      case GraphRepresentation::kSharded: return GraphHandle(base_sharded);
    }
    return GraphHandle();
  };
  // Two tail batches.
  const size_t tail_start = all.size() - held;
  const std::vector<Edge> batch1(all.edges.begin() + tail_start,
                                 all.edges.begin() + tail_start + held / 2);
  const std::vector<Edge> batch2(all.edges.begin() + tail_start + held / 2,
                                 all.edges.end());
  const std::vector<Edge> queries = {{0, 1}, {2, 700}, {10, 11}};

  for (const Variant* v : StreamingVariants()) {
    for (const SamplingOption s :
         {SamplingOption::kNone, SamplingOption::kKOut}) {
      SamplingConfig config;
      config.option = s;
      for (const GraphRepresentation repr : AllReprs()) {
        const GraphHandle handle = base_handle(repr);
        // Direct registry lifecycle.
        auto direct =
            v->make_streaming(StreamingSeed::FromStatic(handle, config));
        direct->ProcessBatch(batch1, {});
        direct->ProcessBatch(batch2, {});
        const std::vector<uint8_t> direct_answers =
            direct->ProcessBatch({}, queries);
        // Façade lifecycle.
        Connectivity index(
            Connectivity::Spec().Algorithm(v->descriptor).Sampling(config));
        index.Build(handle).Stream();
        index.Insert(batch1);
        index.Insert(batch2);
        const std::vector<uint8_t> facade_answers = index.Insert({}, queries);
        EXPECT_EQ(facade_answers, direct_answers)
            << "variant=" << v->name << " sampling=" << ToString(s)
            << " repr=" << ToString(repr);
        const std::vector<NodeId> facade_labels =
            CanonicalizeLabels(index.Labels());
        ASSERT_EQ(facade_labels, CanonicalizeLabels(direct->Labels()))
            << "variant=" << v->name << " sampling=" << ToString(s)
            << " repr=" << ToString(repr);
        // And both equal the full static run over base + tail.
        ASSERT_EQ(facade_labels,
                  CanonicalizeLabels(v->run(HandleFor(repr), config)))
            << "variant=" << v->name << " sampling=" << ToString(s)
            << " repr=" << ToString(repr);
      }
    }
  }
}

TEST(ConnectivityParity, ColdStreamMatchesDirectColdStructure) {
  const Reps& reps = TestReps();
  for (const Variant* v : StreamingVariants()) {
    auto direct = v->make_streaming(StreamingSeed::Cold(reps.coo.num_nodes));
    direct->ProcessBatch(reps.coo.edges, {});
    Connectivity index(Connectivity::Spec().Algorithm(v->descriptor));
    index.Stream(reps.coo.num_nodes);
    EXPECT_FALSE(index.streaming() == false);
    index.Insert(reps.coo.edges);
    ASSERT_EQ(CanonicalizeLabels(index.Labels()),
              CanonicalizeLabels(direct->Labels()))
        << "variant=" << v->name;
  }
}

// Spec::Representation converts Build's input: every source representation
// to every target, same partition, correct reported representation.
TEST(ConnectivitySpec, RepresentationConversionMatrix) {
  const Reps& reps = TestReps();
  const std::vector<NodeId> want =
      CanonicalizeLabels(SequentialComponents(reps.csr));
  for (const GraphRepresentation source : AllReprs()) {
    for (const GraphRepresentation target : AllReprs()) {
      Connectivity index(Connectivity::Spec()
                             .Representation(target)
                             .Shards(kShards + 1));
      index.Build(HandleFor(source));
      EXPECT_EQ(index.representation(), target)
          << "source=" << ToString(source) << " target=" << ToString(target);
      EXPECT_EQ(CanonicalizeLabels(index.Labels()), want)
          << "source=" << ToString(source) << " target=" << ToString(target);
    }
  }
}

TEST(ConnectivitySpec, DefaultSpecUsesDefaultVariant) {
  Connectivity index;
  EXPECT_EQ(&index.variant(), &DefaultVariant());
  EXPECT_EQ(index.spec().algorithm(), DefaultVariant().descriptor);
  EXPECT_FALSE(index.spec().representation().has_value());
}

TEST(ConnectivitySpec, AlgorithmStringFormParses) {
  Connectivity index(Connectivity::Spec().Algorithm("Liu-Tarjan;PRF"));
  EXPECT_EQ(index.variant().name, "Liu-Tarjan;PRF");
}

TEST(ConnectivitySpec, AutoKeepsCooInputsNative) {
  const Reps& reps = TestReps();
  const GraphHandle coo(reps.coo);
  const Connectivity::Spec spec = Connectivity::Spec::Auto(coo);
  EXPECT_EQ(spec.sampling().option, SamplingOption::kNone);
  EXPECT_FALSE(spec.representation().has_value());
  // The whole build stays edge-native: zero CSR materializations.
  Connectivity index(spec);
  const uint64_t before = CooCsrMaterializations();
  index.Build(coo);
  EXPECT_EQ(CooCsrMaterializations(), before);
  EXPECT_EQ(CanonicalizeLabels(index.Labels()),
            CanonicalizeLabels(SequentialComponents(reps.csr)));
}

TEST(ConnectivitySpec, AutoPicksSamplingByDensityAndStreamableVariants) {
  // Dense-ish CSR: sampling on. Sparse grid (avg degree < 4): off.
  const Graph dense = GenerateRmat(2048, 16384, /*seed=*/5);
  const Graph sparse = GenerateGrid(32, 32);
  EXPECT_EQ(Connectivity::Spec::Auto(dense).sampling().option,
            SamplingOption::kKOut);
  EXPECT_EQ(Connectivity::Spec::Auto(sparse).sampling().option,
            SamplingOption::kNone);
  // Streaming requests always get a streaming-capable variant.
  const Connectivity::Spec spec =
      Connectivity::Spec::Auto(dense, /*streaming=*/true);
  Connectivity index(spec);
  EXPECT_TRUE(index.variant().supports_streaming);
  index.Build(dense).Stream();
  index.Insert({{0, 1}});
  EXPECT_TRUE(index.SameComponent(0, 1));
}

TEST(Connectivity, MoveTransfersBuiltState) {
  const Reps& reps = TestReps();
  Connectivity a;
  a.Build(reps.csr);
  const std::vector<NodeId> labels = a.Labels();
  Connectivity b = std::move(a);
  EXPECT_EQ(b.Labels(), labels);
  EXPECT_EQ(b.num_nodes(), reps.csr.num_nodes());
  Connectivity c;
  c = std::move(b);
  EXPECT_EQ(c.Labels(), labels);
  // Moved-from indexes are un-built but keep a usable spec.
  EXPECT_EQ(a.num_nodes(), 0u);
  a.Build(reps.csr);
  EXPECT_EQ(a.Labels(), labels);
}

// Readers run concurrently with ingest batches and always observe a
// consistent snapshot (labels from some prefix of the batch sequence — in
// particular never a torn labeling that splits an original base edge).
TEST(Connectivity, ConcurrentReadsDuringIngest) {
  const NodeId n = 1u << 12;
  const EdgeList stream = GenerateRmatEdges(n, 4ull * n, /*seed=*/17);
  const size_t bulk = stream.size() / 2;
  EdgeList base;
  base.num_nodes = n;
  base.edges.assign(stream.edges.begin(), stream.edges.begin() + bulk);

  Connectivity index;
  index.Build(GraphHandle(base)).Stream();
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Base edges stay connected under every snapshot.
      const Edge& e = base.edges[reads.load(std::memory_order_relaxed) %
                                base.edges.size()];
      if (index.SameComponent(e.u, e.v)) {
        reads.fetch_add(1, std::memory_order_relaxed);
      } else {
        ADD_FAILURE() << "base edge disconnected in a served snapshot";
        break;
      }
      index.NumComponents();
    }
  });
  for (size_t start = bulk; start < stream.size(); start += 1024) {
    const size_t end = std::min(start + 1024, stream.size());
    index.Insert(std::vector<Edge>(stream.edges.begin() + start,
                                   stream.edges.begin() + end));
  }
  // Bounded wait for the reader to get scheduled at least once — on a
  // single-core runner the ingest loop can finish before the reader ever
  // runs, which is a scheduling artifact, not a serving bug.
  for (int spin = 0; spin < 200000 && reads.load() == 0; ++spin) {
    std::this_thread::yield();
  }
  stop.store(true);
  reader.join();
  EXPECT_GT(reads.load(), 0u);
  // Final state equals the full static run.
  Connectivity full;
  full.Build(GraphHandle(stream));
  EXPECT_EQ(CanonicalizeLabels(index.Labels()),
            CanonicalizeLabels(full.Labels()));
}

TEST(ConnectivityDeathTest, LifecycleGuardsDie) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(Connectivity().Stream(), "requires Build");
  EXPECT_DEATH(Connectivity().Insert({{0, 1}}), "requires Stream");
  EXPECT_DEATH(Connectivity(Connectivity::Spec().Algorithm("Stergiou"))
                   .Build(TestReps().csr)
                   .Stream(),
               "no streaming form");
  EXPECT_DEATH(Connectivity(Connectivity::Spec().Algorithm("no-such-name")),
               "did you mean");
}

}  // namespace
}  // namespace connectit
