// Direct tests of the union-find building blocks: find/splice semantics,
// unite behavior, forest invariants, and concurrent stress.

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/graph/generators.h"
#include "src/parallel/random.h"
#include "src/parallel/thread_pool.h"
#include "src/unionfind/dsu.h"
#include "src/unionfind/find.h"
#include "src/unionfind/options.h"
#include "src/unionfind/splice.h"

namespace connectit {
namespace {

std::vector<NodeId> Chain(NodeId n) {
  // Parent chain n-1 -> n-2 -> ... -> 0 (root).
  std::vector<NodeId> p(n);
  for (NodeId v = 0; v < n; ++v) p[v] = (v == 0) ? 0 : v - 1;
  return p;
}

TEST(Find, AllVariantsReturnTheRoot) {
  for (const FindOption f :
       {FindOption::kNaive, FindOption::kSplit, FindOption::kHalve,
        FindOption::kCompress, FindOption::kTwoTrySplit}) {
    std::vector<NodeId> p = Chain(64);
    EXPECT_EQ(FindDispatch(f, 63, p.data()), 0u) << ToString(f);
    EXPECT_EQ(FindDispatch(f, 0, p.data()), 0u) << ToString(f);
    // The forest stays a valid rooted forest afterward.
    for (NodeId v = 0; v < 64; ++v) EXPECT_LE(p[v], v) << ToString(f);
  }
}

TEST(Find, CompressFlattensPath) {
  std::vector<NodeId> p = Chain(64);
  FindCompress(63, p.data());
  // Everything on the traversed path now points (near-)directly at root.
  EXPECT_EQ(p[63], 0u);
  EXPECT_EQ(p[62], 0u);
}

TEST(Find, SplitShortensPath) {
  std::vector<NodeId> p = Chain(64);
  FindAtomicSplit(63, p.data());
  // Path split: each visited vertex points at its former grandparent.
  EXPECT_EQ(p[63], 61u);
  EXPECT_EQ(p[62], 60u);
}

TEST(Find, HalveShortensPath) {
  std::vector<NodeId> p = Chain(64);
  FindAtomicHalve(63, p.data());
  EXPECT_EQ(p[63], 61u);
  EXPECT_EQ(p[61], 59u);
  EXPECT_EQ(p[62], 61u);  // skipped vertices untouched
}

TEST(Splice, SplitAtomicOneStepsAndSplits) {
  std::vector<NodeId> p = Chain(8);
  const NodeId next = SplitAtomicOne(7, /*other=*/0, p.data());
  EXPECT_EQ(next, 6u);   // returns previous parent
  EXPECT_EQ(p[7], 5u);   // spliced to grandparent
}

TEST(Splice, HalveAtomicOneReturnsGrandparent) {
  std::vector<NodeId> p = Chain(8);
  const NodeId next = HalveAtomicOne(7, 0, p.data());
  EXPECT_EQ(next, 5u);
  EXPECT_EQ(p[7], 5u);
}

TEST(Splice, SpliceAtomicRedirectsUnderOtherTree) {
  // u's parent (6) is larger than other's parent (1): splice points u at 1.
  std::vector<NodeId> p = {0, 0, 1, 2, 3, 4, 5, 6};
  const NodeId prev = SpliceAtomic(7, /*other=*/2, p.data());
  EXPECT_EQ(prev, 6u);
  EXPECT_EQ(p[7], 1u);
}

template <typename DsuT>
void ExerciseBasicUnite() {
  std::vector<NodeId> p(10);
  std::iota(p.begin(), p.end(), NodeId{0});
  DsuT dsu(p.data(), 10);
  EXPECT_NE(dsu.Unite(3, 7), kInvalidNode);
  EXPECT_TRUE(dsu.SameSet(3, 7));
  EXPECT_FALSE(dsu.SameSet(3, 4));
  // Re-uniting connected endpoints is a no-op.
  EXPECT_EQ(dsu.Unite(3, 7), kInvalidNode);
  EXPECT_NE(dsu.Unite(7, 4), kInvalidNode);
  EXPECT_TRUE(dsu.SameSet(4, 3));
  // Self-union never links.
  EXPECT_EQ(dsu.Unite(5, 5), kInvalidNode);
}

TEST(Dsu, BasicUniteSemanticsAcrossUniteOptions) {
  ExerciseBasicUnite<Dsu<UniteOption::kAsync, FindOption::kCompress>>();
  ExerciseBasicUnite<Dsu<UniteOption::kHooks, FindOption::kSplit>>();
  ExerciseBasicUnite<Dsu<UniteOption::kEarly, FindOption::kNaive>>();
  ExerciseBasicUnite<Dsu<UniteOption::kJtb, FindOption::kTwoTrySplit>>();
  ExerciseBasicUnite<Dsu<UniteOption::kRemCas, FindOption::kNaive,
                         SpliceOption::kSplitOne>>();
  ExerciseBasicUnite<Dsu<UniteOption::kRemLock, FindOption::kHalve,
                         SpliceOption::kHalveOne>>();
}

TEST(Dsu, HookedRootIsUniquePerUnite) {
  // Each successful unite returns a vertex that was a root and gets hooked
  // exactly once across the whole execution.
  std::vector<NodeId> p(100);
  std::iota(p.begin(), p.end(), NodeId{0});
  Dsu<UniteOption::kAsync, FindOption::kHalve> dsu(p.data(), 100);
  std::vector<int> hooked(100, 0);
  Rng rng(4);
  for (uint64_t i = 0; i < 500; ++i) {
    const NodeId u = static_cast<NodeId>(rng.GetBounded(2 * i, 100));
    const NodeId v = static_cast<NodeId>(rng.GetBounded(2 * i + 1, 100));
    const NodeId h = dsu.Unite(u, v);
    if (h != kInvalidNode) hooked[h]++;
  }
  for (NodeId v = 0; v < 100; ++v) EXPECT_LE(hooked[v], 1) << v;
}

template <typename DsuT>
void ConcurrentStress(const char* name) {
  const NodeId n = 4096;
  const EdgeList edges = GenerateErdosRenyiEdges(n, 3 * n, 77);
  std::vector<NodeId> p(n);
  std::iota(p.begin(), p.end(), NodeId{0});
  DsuT dsu(p.data(), n);
  ParallelFor(0, edges.size(), [&](size_t i) {
    dsu.Unite(edges.edges[i].u, edges.edges[i].v);
  });
  FullyCompressParents(p.data(), n);
  // Compare against sequential ground truth.
  const std::vector<NodeId> truth = SequentialComponents(edges);
  ASSERT_EQ(truth.size(), p.size());
  // Partition equivalence via canonicalization of roots.
  std::vector<NodeId> canon_mine(n), canon_truth(n);
  {
    std::vector<NodeId> min_of(n, kInvalidNode);
    for (NodeId v = 0; v < n; ++v) min_of[p[v]] = std::min(min_of[p[v]], v);
    for (NodeId v = 0; v < n; ++v) canon_mine[v] = min_of[p[v]];
  }
  EXPECT_EQ(canon_mine, truth) << name;
}

TEST(Dsu, ConcurrentUnionsMatchGroundTruth) {
  ConcurrentStress<Dsu<UniteOption::kAsync, FindOption::kNaive>>("async");
  ConcurrentStress<Dsu<UniteOption::kHooks, FindOption::kCompress>>("hooks");
  ConcurrentStress<Dsu<UniteOption::kEarly, FindOption::kSplit>>("early");
  ConcurrentStress<Dsu<UniteOption::kJtb, FindOption::kTwoTrySplit>>("jtb");
  ConcurrentStress<
      Dsu<UniteOption::kRemCas, FindOption::kNaive, SpliceOption::kSplitOne>>(
      "rem-cas-split");
  ConcurrentStress<
      Dsu<UniteOption::kRemCas, FindOption::kNaive, SpliceOption::kSplice>>(
      "rem-cas-splice");
  ConcurrentStress<Dsu<UniteOption::kRemLock, FindOption::kNaive,
                       SpliceOption::kHalveOne>>("rem-lock-halve");
}

TEST(Dsu, ForestStaysAcyclicAndValueMonotone) {
  // For ID-linking variants, parents never exceed the vertex id.
  const NodeId n = 1024;
  const EdgeList edges = GenerateRmatEdges(n, 4096, 31);
  std::vector<NodeId> p(n);
  std::iota(p.begin(), p.end(), NodeId{0});
  Dsu<UniteOption::kRemCas, FindOption::kSplit, SpliceOption::kSplitOne> dsu(
      p.data(), n);
  ParallelFor(0, edges.size(), [&](size_t i) {
    Edge e = edges.edges[i];
    e.u %= n;
    e.v %= n;
    dsu.Unite(e.u, e.v);
  });
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_LE(p[v], v) << v;
    // No 2-cycles (acyclicity spot check).
    if (p[v] != v) {
      EXPECT_NE(p[p[v]], v);
    }
  }
}

TEST(Dsu, PhaseConcurrentRemSpliceFindsAfterBarrier) {
  // Rem + SpliceAtomic is only phase-concurrent: unions, barrier, finds.
  const NodeId n = 512;
  const EdgeList edges = GenerateErdosRenyiEdges(n, 2 * n, 3);
  std::vector<NodeId> p(n);
  std::iota(p.begin(), p.end(), NodeId{0});
  Dsu<UniteOption::kRemCas, FindOption::kHalve, SpliceOption::kSplice> dsu(
      p.data(), n);
  ParallelFor(0, edges.size(), [&](size_t i) {
    dsu.Unite(edges.edges[i].u, edges.edges[i].v);
  });
  const std::vector<NodeId> truth = SequentialComponents(edges);
  std::vector<uint8_t> ok(n, 0);
  ParallelFor(0, n, [&](size_t v) {
    const NodeId r = dsu.Find(static_cast<NodeId>(v));
    ok[v] = (r == dsu.Find(truth[v]));
  });
  for (NodeId v = 0; v < n; ++v) EXPECT_TRUE(ok[v]) << v;
}

TEST(Options, InvalidCombinationsRejected) {
  EXPECT_FALSE(IsValidCombination(UniteOption::kRemCas, FindOption::kCompress,
                                  SpliceOption::kSplice));
  EXPECT_TRUE(IsValidCombination(UniteOption::kRemCas, FindOption::kCompress,
                                 SpliceOption::kSplitOne));
  EXPECT_FALSE(IsValidCombination(UniteOption::kAsync, FindOption::kNaive,
                                  SpliceOption::kSplitOne));
  EXPECT_FALSE(IsValidCombination(UniteOption::kRemLock, FindOption::kNaive,
                                  SpliceOption::kNone));
  EXPECT_FALSE(IsValidCombination(UniteOption::kJtb, FindOption::kSplit,
                                  SpliceOption::kNone));
  EXPECT_TRUE(IsValidCombination(UniteOption::kJtb, FindOption::kTwoTrySplit,
                                 SpliceOption::kNone));
  EXPECT_FALSE(IsValidCombination(UniteOption::kAsync,
                                  FindOption::kTwoTrySplit,
                                  SpliceOption::kNone));
}

TEST(FullyCompress, FlattensArbitraryForest) {
  std::vector<NodeId> p = Chain(100);
  FullyCompressParents(p.data(), 100);
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(p[v], 0u);
}

}  // namespace
}  // namespace connectit
