// The wait-free serving layer: epoch-published Connectivity::Snapshot.
//
// Pins the four properties the design note in connectivity_index.h claims:
// (1) an Acquire'd Snapshot is immutable — its answers are frozen at the
// publication it pinned, no matter how many batches land afterwards;
// (2) the published snapshot after every batch equals Labels() — across
// streaming variants × representations and against the shared-lock
// baseline; (3) retired blocks drain through the epoch domain — a pinned
// reader defers exactly its own block, and everything is reclaimed once
// handles drop (ASan/TSan-clean by construction); (4) the shared-lock
// baseline's lazy refresh runs exactly once per batch even under racing
// readers. Plus the many-readers-one-writer stress the TSan CI job runs.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/components.h"
#include "src/core/connectivity_index.h"
#include "src/core/registry.h"
#include "src/graph/builder.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/parallel/epoch.h"
#include "src/stats/counters.h"

namespace connectit {
namespace {

// A snapshot's invariants hold internally: fully compressed labels, sizes
// indexed by representative summing to n, component count matching.
void CheckSnapshotConsistent(const Snapshot& snap) {
  const std::vector<NodeId>& labels = snap.Labels();
  ASSERT_EQ(labels.size(), snap.num_nodes());
  NodeId total = 0;
  for (NodeId v = 0; v < snap.num_nodes(); ++v) {
    ASSERT_EQ(labels[labels[v]], labels[v]) << "not fully compressed at " << v;
    total += snap.ComponentSizes()[v];
  }
  ASSERT_EQ(total, snap.num_nodes());
  ASSERT_EQ(snap.NumComponents(), CountComponents(labels));
}

TEST(ServingSnapshot, AcquiredSnapshotIsImmutableUnderConcurrentInsert) {
  const NodeId n = 1u << 11;
  const EdgeList stream = GenerateRmatEdges(n, 4ull * n, /*seed=*/3);
  EdgeList base;
  base.num_nodes = n;
  base.edges.assign(stream.edges.begin(),
                    stream.edges.begin() + stream.size() / 2);

  Connectivity index;
  index.Build(GraphHandle(base)).Stream();
  const Snapshot pinned = index.Acquire();
  const std::vector<NodeId> frozen = pinned.Labels();
  const NodeId frozen_components = pinned.NumComponents();
  const uint64_t frozen_version = pinned.version();

  // Land the rest of the stream while a thread hammers the pinned snapshot.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_EQ(pinned.NumComponents(), frozen_components);
      ASSERT_EQ(pinned.Component(0), frozen[0]);
    }
  });
  for (size_t start = stream.size() / 2; start < stream.size();
       start += 512) {
    const size_t end = std::min(start + 512, stream.size());
    index.Insert(std::vector<Edge>(stream.edges.begin() + start,
                                   stream.edges.begin() + end));
  }
  stop.store(true);
  reader.join();

  // Every answer is still the publication Acquire pinned.
  EXPECT_EQ(pinned.Labels(), frozen);
  EXPECT_EQ(pinned.NumComponents(), frozen_components);
  EXPECT_EQ(pinned.version(), frozen_version);
  CheckSnapshotConsistent(pinned);

  // A fresh Acquire sees the post-batch world, strictly newer.
  const Snapshot fresh = index.Acquire();
  EXPECT_GT(fresh.version(), frozen_version);
  EXPECT_LE(fresh.NumComponents(), frozen_components);
  CheckSnapshotConsistent(fresh);
}

// After every batch, the published snapshot equals Labels() — across every
// streaming variant × representation — and the kSnapshot read surface
// matches the kSharedLock baseline fed the same batches.
TEST(ServingSnapshot, PublicationParityAfterEveryBatchAcrossVariants) {
  const Graph csr = GenerateComponentMixture(600, 5, /*seed=*/41);
  const EdgeList all = ExtractEdges(csr);
  const size_t held = all.size() / 4;
  EdgeList base;
  base.num_nodes = all.num_nodes;
  base.edges.assign(all.edges.begin(), all.edges.end() - held);
  const Graph base_csr = BuildGraph(base);

  const std::vector<Edge> tail(all.edges.end() - held, all.edges.end());
  const size_t kBatch = held / 3 + 1;

  for (const Variant* v : StreamingVariants()) {
    for (const GraphRepresentation repr :
         {GraphRepresentation::kCsr, GraphRepresentation::kCoo}) {
      Connectivity snap_index(Connectivity::Spec()
                                  .Algorithm(v->descriptor)
                                  .Representation(repr));
      Connectivity lock_index(Connectivity::Spec()
                                  .Algorithm(v->descriptor)
                                  .Representation(repr)
                                  .Serving(ServingMode::kSharedLock));
      snap_index.Build(base_csr).Stream();
      lock_index.Build(base_csr).Stream();
      uint64_t last_version = snap_index.Acquire().version();
      for (size_t start = 0; start < tail.size(); start += kBatch) {
        const size_t end = std::min(start + kBatch, tail.size());
        const std::vector<Edge> batch(tail.begin() + start,
                                      tail.begin() + end);
        snap_index.Insert(batch);
        lock_index.Insert(batch);
        const Snapshot snap = snap_index.Acquire();
        EXPECT_GT(snap.version(), last_version) << "variant=" << v->name;
        last_version = snap.version();
        CheckSnapshotConsistent(snap);
        // Snapshot == Labels() == the shared-lock baseline.
        ASSERT_EQ(snap.Labels(), snap_index.Labels())
            << "variant=" << v->name << " repr=" << ToString(repr);
        ASSERT_EQ(CanonicalizeLabels(snap.Labels()),
                  CanonicalizeLabels(lock_index.Labels()))
            << "variant=" << v->name << " repr=" << ToString(repr);
        ASSERT_EQ(snap.NumComponents(), lock_index.NumComponents());
      }
      // Final parity with the full static run.
      ASSERT_EQ(CanonicalizeLabels(snap_index.Labels()),
                CanonicalizeLabels(v->run(GraphHandle(csr), SamplingConfig())))
          << "variant=" << v->name << " repr=" << ToString(repr);
    }
  }
}

// A pinned reader defers reclamation of exactly its own block; once every
// handle drops and the index dies, the epoch domain drains back to where
// it started — no leaked snapshot blocks (ASan-clean is the real check;
// the counters make the drain observable in a plain build too).
TEST(ServingSnapshot, EpochReclamationDrainsWithPinnedReader) {
  const stats::ServingSnapshot before = stats::ReadServing();
  const size_t backlog_before = epoch::Domain::Global().backlog();
  {
    Connectivity index;
    index.Stream(/*num_nodes=*/512);
    Snapshot pinned = index.Acquire();  // pins publication #2 (post-Stream)
    const uint64_t pinned_version = pinned.version();
    for (int i = 0; i < 8; ++i) {
      index.Insert({{static_cast<NodeId>(i), static_cast<NodeId>(i + 1)}});
    }
    // Eight publications retired seven predecessors; the pinned block is
    // among them and must survive, the rest may reclaim eagerly.
    EXPECT_EQ(pinned.version(), pinned_version);
    EXPECT_EQ(pinned.num_nodes(), 512u);
    EXPECT_GE(epoch::Domain::Global().backlog(), 1u)
        << "the pinned block must sit in the deferred backlog";
    // Copies share the block (one refcount), droppable in any order.
    Snapshot copy = pinned;
    pinned = Snapshot();
    EXPECT_EQ(copy.version(), pinned_version);
    copy = Snapshot();  // last handle: release triggers TryReclaim
  }
  // Index destruction retired the head; with no pinned readers left the
  // domain drains completely.
  EXPECT_EQ(epoch::Domain::Global().backlog(), backlog_before);
  const stats::ServingSnapshot after = stats::ReadServing();
  EXPECT_EQ(after.snapshots_retired - before.snapshots_retired,
            after.snapshots_reclaimed - before.snapshots_reclaimed);
  // 1 ctor + 1 Stream + 8 Inserts = 10 publications from this test.
  EXPECT_EQ(after.snapshot_publications - before.snapshot_publications, 10u);
}

TEST(ServingSnapshot, SnapshotOutlivesItsIndex) {
  Snapshot survivor;
  {
    Connectivity index;
    index.Stream(/*num_nodes=*/64);
    index.Insert({{1, 2}, {2, 3}});
    survivor = index.Acquire();
  }
  // The index (and its published head) are gone; the handle keeps the
  // block alive.
  EXPECT_EQ(survivor.num_nodes(), 64u);
  EXPECT_TRUE(survivor.SameComponent(1, 3));
  EXPECT_FALSE(survivor.SameComponent(0, 1));
  CheckSnapshotConsistent(survivor);
}

// The shared-lock baseline's lazy refresh: racing readers after one batch
// trigger exactly one Θ(n) refresh (the stale flag is re-checked under the
// exclusive lock).
TEST(ServingSnapshot, SharedLockRefreshRunsOncePerBatch) {
  Connectivity index(
      Connectivity::Spec().Serving(ServingMode::kSharedLock));
  index.Stream(/*num_nodes=*/4096);
  index.Insert({{0, 1}});
  const uint64_t before = stats::ReadServing().label_refreshes;
  constexpr int kReaders = 8;
  std::atomic<int> ready{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kReaders) {
      }  // line up at the gate so the race is real
      EXPECT_TRUE(index.SameComponent(0, 1));
      EXPECT_EQ(index.NumComponents(), 4095u);
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(stats::ReadServing().label_refreshes - before, 1u)
      << "racing readers must not duplicate the refresh";
  // The next batch re-arms the stale flag: exactly one more.
  index.Insert({{1, 2}});
  index.Component(0);
  index.Component(1);
  EXPECT_EQ(stats::ReadServing().label_refreshes - before, 2u);
}

// Acquire under the baseline mode materializes a one-off consistent view.
TEST(ServingSnapshot, SharedLockAcquireMaterializesConsistentView) {
  Connectivity index(
      Connectivity::Spec().Serving(ServingMode::kSharedLock));
  index.Stream(/*num_nodes=*/128);
  index.Insert({{5, 6}, {6, 7}});
  const Snapshot snap = index.Acquire();
  EXPECT_EQ(snap.version(), 0u) << "on-demand snapshots carry no publication";
  EXPECT_TRUE(snap.SameComponent(5, 7));
  CheckSnapshotConsistent(snap);
  index.Insert({{7, 8}});
  EXPECT_FALSE(snap.SameComponent(7, 8)) << "frozen at Acquire time";
  EXPECT_TRUE(index.SameComponent(7, 8));
}

// The TSan target: many wait-free readers, one ingesting writer, snapshots
// acquired and dropped mid-stream. Readers assert per-snapshot consistency
// (base edges stay connected, answers within one snapshot cohere).
TEST(ServingSnapshot, ManyReadersOneWriterStress) {
  const NodeId n = 1u << 12;
  const EdgeList stream = GenerateRmatEdges(n, 4ull * n, /*seed=*/23);
  const size_t bulk = stream.size() / 2;
  EdgeList base;
  base.num_nodes = n;
  base.edges.assign(stream.edges.begin(), stream.edges.begin() + bulk);

  Connectivity index;
  index.Build(GraphHandle(base)).Stream();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t i = 0;
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const Edge& e = base.edges[(r * 7919 + i++) % base.edges.size()];
        // Point reads: wait-free, always against a complete labeling.
        if (!index.SameComponent(e.u, e.v)) {
          ADD_FAILURE() << "base edge disconnected in a served labeling";
          break;
        }
        // Pinned multi-query consistency + monotonic publications.
        const Snapshot snap = index.Acquire();
        if (snap.version() < last_version) {
          ADD_FAILURE() << "publication went backwards";
          break;
        }
        last_version = snap.version();
        const NodeId u_label = snap.Component(e.u);
        if (snap.Component(e.v) != u_label ||
            snap.Labels()[u_label] != u_label) {
          ADD_FAILURE() << "snapshot answers incoherent";
          break;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (size_t start = bulk; start < stream.size(); start += 1024) {
    const size_t end = std::min(start + 1024, stream.size());
    index.Insert(std::vector<Edge>(stream.edges.begin() + start,
                                   stream.edges.begin() + end));
  }
  // Give every reader a chance to finish at least one full check before
  // stopping, so the assertion below is not schedule-dependent on a small
  // machine (bounded: ~200k yields).
  for (int spin = 0; spin < 200000 && reads.load() < kReaders; ++spin) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);

  // Final parity with the full static run.
  Connectivity full;
  full.Build(GraphHandle(stream));
  EXPECT_EQ(CanonicalizeLabels(index.Labels()),
            CanonicalizeLabels(full.Labels()));
}

// ---- publication cadence (Spec::PublishEvery / Spec::AdaptiveCadence) ----

// Shared skeleton for the cadence tests: stream batches into an index with
// the given spec and require every acquired snapshot to sit exactly on a
// batch boundary — matching one of the reference prefix labelings, never a
// half-applied batch — with versions monotone and an unchanged version
// implying unchanged labels.
void StreamAndCheckBoundaries(Connectivity& index, const char* what) {
  const NodeId n = 512;
  const EdgeList stream = GenerateRmatEdges(n, 3ull * n, /*seed=*/7);
  const size_t kBatch = 128;

  // Reference labelings at every batch boundary, computed up front so the
  // cadence loop below runs tight (publication skips are timing-based:
  // a batch landing > kCadenceQuietGapUs after the previous one always
  // publishes).
  Connectivity ref;
  ref.Stream(n);
  std::vector<std::vector<NodeId>> boundary;
  boundary.push_back(CanonicalizeLabels(ref.Labels()));
  for (size_t start = 0; start < stream.size(); start += kBatch) {
    const size_t end = std::min(start + kBatch, stream.size());
    ref.Insert(std::vector<Edge>(stream.edges.begin() + start,
                                 stream.edges.begin() + end));
    boundary.push_back(CanonicalizeLabels(ref.Labels()));
  }

  index.Stream(n);
  uint64_t last_version = index.Acquire().version();
  std::vector<NodeId> last_canon = CanonicalizeLabels(index.Acquire().Labels());
  size_t batch_index = 0;
  for (size_t start = 0; start < stream.size(); start += kBatch) {
    const size_t end = std::min(start + kBatch, stream.size());
    index.Insert(std::vector<Edge>(stream.edges.begin() + start,
                                   stream.edges.begin() + end));
    ++batch_index;
    const Snapshot snap = index.Acquire();
    ASSERT_GE(snap.version(), last_version) << what;
    const std::vector<NodeId> canon = CanonicalizeLabels(snap.Labels());
    if (snap.version() == last_version) {
      ASSERT_EQ(canon, last_canon)
          << what << ": unpublished batch leaked into a stale snapshot";
    } else {
      // A fresh publication must be exactly some batch prefix <= current.
      bool on_boundary = false;
      for (size_t j = 0; j <= batch_index && !on_boundary; ++j) {
        on_boundary = (canon == boundary[j]);
      }
      ASSERT_TRUE(on_boundary)
          << what << ": snapshot after batch " << batch_index
          << " matches no batch boundary (half-applied batch exposed)";
    }
    last_version = snap.version();
    last_canon = canon;
  }

  // Flush publishes whatever was held back: the served view catches up to
  // the live labeling (the final boundary) unconditionally.
  index.Flush();
  EXPECT_EQ(CanonicalizeLabels(index.Acquire().Labels()), boundary.back())
      << what << ": Flush did not publish the held-back batches";
  EXPECT_EQ(index.Acquire().Labels(), index.Labels()) << what;
  // Idempotent: nothing held back, nothing published.
  const uint64_t pubs = stats::ReadServing().snapshot_publications;
  index.Flush();
  EXPECT_EQ(stats::ReadServing().snapshot_publications, pubs)
      << what << ": Flush with nothing held back must not publish";
}

TEST(ServingSnapshot, FixedCadenceNeverExposesHalfAppliedBatches) {
  const uint64_t skips_before = stats::ReadServing().publication_skips;
  Connectivity index(Connectivity::Spec().PublishEvery(4));
  StreamAndCheckBoundaries(index, "PublishEvery(4)");
  // 12 batches at k=4 on a tight loop: some batches must have been held
  // back (each skip ticks the counter; the quiet-gap override would need
  // 50ms stalls between the tiny batches above to defeat every skip).
  EXPECT_GT(stats::ReadServing().publication_skips, skips_before)
      << "k=4 never skipped a publication";
}

TEST(ServingSnapshot, AdaptiveCadenceKeepsSnapshotsOnBatchBoundaries) {
  Connectivity index(Connectivity::Spec().AdaptiveCadence());
  StreamAndCheckBoundaries(index, "AdaptiveCadence");
  const uint64_t k = stats::ReadServing().publication_cadence_k;
  EXPECT_GE(k, 1u);
  EXPECT_LE(k, Connectivity::kMaxAdaptiveCadence);
}

// Erase cuts through the cadence: a deletion (and the batches held back
// before it) is visible in the very next Acquire — a stale "still
// connected" answer after an erase is not acceptable staleness.
TEST(ServingSnapshot, CadenceErasePublishesImmediately) {
  Connectivity index(Connectivity::Spec().PublishEvery(8));
  index.Stream(/*num_nodes=*/64);
  index.Insert({{1, 2}, {2, 3}});  // batch 1 of 8: may be held back
  index.Insert({{4, 5}});          // batch 2 of 8: may be held back
  index.Erase({{1, 2}});
  const Snapshot snap = index.Acquire();
  EXPECT_EQ(snap.Labels(), index.Labels());
  EXPECT_FALSE(snap.SameComponent(1, 2)) << "erase not visible";
  EXPECT_TRUE(snap.SameComponent(2, 3))
      << "held-back insert lost across the erase";
  EXPECT_TRUE(snap.SameComponent(4, 5))
      << "held-back insert lost across the erase";
}

// The default spec keeps today's behavior bit-for-bit: k=1, every batch
// publishes, no skips — pinned so cadence stays strictly opt-in.
TEST(ServingSnapshot, DefaultSpecPublishesEveryBatch) {
  EXPECT_EQ(Connectivity::Spec().publish_every(), 1u);
  EXPECT_FALSE(Connectivity::Spec().adaptive_cadence());
  const uint64_t skips_before = stats::ReadServing().publication_skips;
  Connectivity index;
  index.Stream(/*num_nodes=*/128);
  uint64_t version = index.Acquire().version();
  for (int i = 0; i < 6; ++i) {
    index.Insert({{static_cast<NodeId>(i), static_cast<NodeId>(i + 1)}});
    const uint64_t now = index.Acquire().version();
    EXPECT_GT(now, version) << "default spec must publish every batch";
    version = now;
  }
  EXPECT_EQ(stats::ReadServing().publication_skips, skips_before);
}

}  // namespace
}  // namespace connectit
