// Baseline algorithm tests: every comparison target used by the benches
// must itself be correct.

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/baselines/afforest.h"
#include "src/baselines/bfscc.h"
#include "src/baselines/edge_primitives.h"
#include "src/baselines/gapbs_sv.h"
#include "src/baselines/seq_cc.h"
#include "src/baselines/stinger_cc.h"
#include "src/baselines/workefficient_cc.h"
#include "src/graph/generators.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

TEST(Baselines, AllStaticBaselinesMatchGroundTruth) {
  for (const auto& [name, g] : testing::CorrectnessBasket()) {
    const std::vector<NodeId> truth = SequentialComponents(g);
    EXPECT_TRUE(SamePartition(SequentialUnionFindCC(g), truth))
        << "seq-uf/" << name;
    EXPECT_TRUE(SamePartition(BfsCC(g), truth)) << "bfscc/" << name;
    EXPECT_TRUE(SamePartition(WorkEfficientCC(g), truth))
        << "workefficient/" << name;
    EXPECT_TRUE(SamePartition(AfforestCC(g), truth)) << "afforest/" << name;
    EXPECT_TRUE(SamePartition(GapbsShiloachVishkin(g), truth))
        << "gapbs-sv/" << name;
  }
}

TEST(Baselines, SequentialUnionFindLabelsAreComponentMinima) {
  const Graph g = GenerateComponentMixture(500, 4, 9);
  const std::vector<NodeId> labels = SequentialUnionFindCC(g);
  EXPECT_EQ(labels, CanonicalizeLabels(labels));
}

TEST(Baselines, AfforestNeighborRoundsParameter) {
  const Graph g = GenerateRmat(1024, 8192, 3);
  const std::vector<NodeId> truth = SequentialComponents(g);
  for (uint32_t rounds : {0u, 1u, 2u, 5u}) {
    EXPECT_TRUE(SamePartition(AfforestCC(g, rounds), truth))
        << "rounds=" << rounds;
  }
}

TEST(StingerGraph, InsertAndIterate) {
  StingerGraph g(10);
  for (NodeId v = 1; v < 10; ++v) g.InsertArc(0, v);
  EXPECT_EQ(g.num_arcs(), 9u);
  size_t count = 0;
  g.MapNeighbors(0, [&](NodeId) { ++count; });
  EXPECT_EQ(count, 9u);
  // Spill across multiple blocks.
  StingerGraph big(2);
  for (int i = 0; i < 100; ++i) big.InsertArc(0, 1);
  count = 0;
  big.MapNeighbors(0, [&](NodeId v) {
    EXPECT_EQ(v, 1u);
    ++count;
  });
  EXPECT_EQ(count, 100u);
}

TEST(StingerStreamingCC, TracksComponentsUnderInsertions) {
  const NodeId n = 300;
  StingerStreamingCC cc(n);
  const EdgeList edges = GenerateErdosRenyiEdges(n, 900, 13);
  EdgeList applied;
  applied.num_nodes = n;
  const size_t batch = 100;
  for (size_t start = 0; start < edges.size(); start += batch) {
    const size_t end = std::min(start + batch, edges.size());
    const std::vector<Edge> b(edges.edges.begin() + start,
                              edges.edges.begin() + end);
    const double t = cc.InsertBatch(b);
    EXPECT_GE(t, 0.0);
    applied.edges.insert(applied.edges.end(), b.begin(), b.end());
    EXPECT_TRUE(SamePartition(cc.labels(), SequentialComponents(applied)));
  }
}

TEST(EdgePrimitives, MapEdgesTouchesEveryArc) {
  const Graph g = GenerateRmat(512, 2048, 5);
  const uint64_t result = MapEdges(g);
  // acc adds 1 + (v & 1) per arc: between num_arcs and 2 * num_arcs.
  EXPECT_GE(result, g.num_arcs());
  EXPECT_LE(result, 2 * g.num_arcs());
}

TEST(EdgePrimitives, GatherEdgesIsDeterministic) {
  const Graph g = GenerateRmat(512, 2048, 5);
  EXPECT_EQ(GatherEdges(g), GatherEdges(g));
  EXPECT_GT(GatherEdges(g), 0u);
}

}  // namespace
}  // namespace connectit
