// Seeded-streaming parity: the static-to-streaming handoff invariant
// (ISSUE 3 / ROADMAP "streaming over compressed inputs"). A static pass
// over G0 whose labeling seeds the variant's streaming structure, followed
// by streamed insertion batches, must land on the same partition as a
// static run over G0 plus the batches — for every supports_streaming
// variant, on every graph representation. COO seeds of edge-centric
// variants must stay COO-native: zero CSR materializations. Sharded and
// mapped (mmap-container) seeds are native for *every* variant: zero
// flat-CSR flattens / zero mapped-CSR copies.

#include <cctype>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "src/core/streaming.h"
#include "src/graph/builder.h"
#include "src/graph/generators.h"

namespace connectit {
namespace {

constexpr NodeId kNodes = 256;
constexpr size_t kBaseEdges = 600;
constexpr size_t kBatchSize = 80;
constexpr size_t kNumBatches = 3;

// The full stream: a sparse base graph G0 plus kNumBatches held-out batches
// drawn from a differently-shaped generator so the batches genuinely merge
// components.
EdgeList FullStream() {
  EdgeList all = GenerateErdosRenyiEdges(kNodes, kBaseEdges, /*seed=*/11);
  const EdgeList extra =
      GenerateRmatEdges(kNodes, kBatchSize * kNumBatches, /*seed=*/12);
  all.edges.insert(all.edges.end(), extra.edges.begin(), extra.edges.end());
  return all;
}

EdgeList BasePrefix(const EdgeList& all) {
  EdgeList base;
  base.num_nodes = all.num_nodes;
  base.edges.assign(all.edges.begin(),
                    all.edges.end() - kBatchSize * kNumBatches);
  return base;
}

struct HandoffCase {
  std::string variant;
  GraphRepresentation repr;
};

std::vector<HandoffCase> AllHandoffCases() {
  std::vector<HandoffCase> cases;
  for (const Variant* v : StreamingVariants()) {
    for (const GraphRepresentation repr :
         {GraphRepresentation::kCsr, GraphRepresentation::kCompressed,
          GraphRepresentation::kCoo, GraphRepresentation::kSharded,
          GraphRepresentation::kMapped}) {
      cases.push_back({v->name, repr});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<HandoffCase>& info) {
  std::string name = info.param.variant + "_" + ToString(info.param.repr);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class SeededHandoff : public ::testing::TestWithParam<HandoffCase> {};

TEST_P(SeededHandoff, StaticPassPlusBatchesEqualsFullStatic) {
  const Variant* variant = FindVariant(GetParam().variant);
  ASSERT_NE(variant, nullptr);
  const EdgeList all = FullStream();
  const EdgeList base = BasePrefix(all);

  // The seed handle wraps the base graph in this case's representation; the
  // CSR storage must outlive the handle views.
  Graph base_csr;
  GraphHandle handle;
  switch (GetParam().repr) {
    case GraphRepresentation::kCsr:
      base_csr = BuildGraph(base);
      handle = GraphHandle(base_csr);
      break;
    case GraphRepresentation::kCompressed:
      base_csr = BuildGraph(base);
      handle = GraphHandle::Compress(base_csr);
      break;
    case GraphRepresentation::kCoo:
      handle = GraphHandle(base);
      break;
    case GraphRepresentation::kSharded:
      // A fixed P > 1 exercises shard boundaries even on 1-core runners.
      handle = GraphHandle::Shard(BuildGraph(base), /*num_shards=*/4);
      break;
    case GraphRepresentation::kMapped:
      // Round-trip the base through an unlinked temp .cgc: the seed's
      // static pass runs straight off the mapping.
      handle = GraphHandle::MapTempOrDie(BuildGraph(base));
      break;
  }

  const uint64_t builds_before = CooCsrMaterializations();
  const uint64_t flattens_before = ShardedCsrMaterializations();
  const uint64_t copies_before = MappedCsrMaterializations();
  auto alg =
      variant->make_streaming(StreamingSeed::FromStatic(handle));
  ASSERT_NE(alg, nullptr);
  if (GetParam().repr == GraphRepresentation::kCoo &&
      variant->family != AlgorithmFamily::kShiloachVishkin) {
    // Edge-centric families (union-find, Liu-Tarjan) seed COO-natively.
    EXPECT_EQ(CooCsrMaterializations(), builds_before)
        << "COO seed materialized a CSR";
  }
  if (GetParam().repr == GraphRepresentation::kSharded) {
    // Every family seeds sharded-natively: the static pass traverses the
    // shards, never a flattened CSR.
    EXPECT_EQ(ShardedCsrMaterializations(), flattens_before)
        << "sharded seed flattened to a CSR";
  }
  if (GetParam().repr == GraphRepresentation::kMapped) {
    // Every family seeds off the mapping: zero-copy end to end.
    EXPECT_EQ(MappedCsrMaterializations(), copies_before)
        << "mapped seed copied to a CSR";
  }

  // The seed alone must already match static connectivity on the base.
  EXPECT_TRUE(SamePartition(alg->Labels(), SequentialComponents(base)));

  EdgeList applied = base;
  for (size_t b = 0; b < kNumBatches; ++b) {
    const size_t start = base.size() + b * kBatchSize;
    const std::vector<Edge> batch(all.edges.begin() + start,
                                  all.edges.begin() + start + kBatchSize);
    alg->ProcessBatch(batch, {});
    applied.edges.insert(applied.edges.end(), batch.begin(), batch.end());
    EXPECT_TRUE(SamePartition(alg->Labels(), SequentialComponents(applied)))
        << "after batch " << b;
  }
  // Canonical labeling identical to a full static run over G0 ∪ batches
  // (the CLI --stream mode's acceptance invariant).
  EXPECT_EQ(CanonicalizeLabels(alg->Labels()),
            CanonicalizeLabels(variant->run(
                GraphHandle(all), SamplingConfig::None())));
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllReprs, SeededHandoff,
                         ::testing::ValuesIn(AllHandoffCases()), CaseName);

// Sampled seeds go through the same factory: the static pass may use any
// sampling scheme (on COO it transparently materializes the cached CSR).
TEST(SeededHandoffExtras, SampledSeedMatches) {
  const EdgeList all = FullStream();
  const EdgeList base = BasePrefix(all);
  const Graph base_csr = BuildGraph(base);
  for (const char* name :
       {"Union-Rem-CAS;FindNaive;SplitAtomicOne", "Shiloach-Vishkin"}) {
    const Variant* v = FindVariant(name);
    ASSERT_NE(v, nullptr) << name;
    auto alg = v->make_streaming(
        StreamingSeed::FromStatic(GraphHandle(base_csr),
                                  SamplingConfig::KOut()));
    EXPECT_TRUE(SamePartition(alg->Labels(), SequentialComponents(base)))
        << name;
    alg->ProcessBatch(
        std::vector<Edge>(all.edges.end() - kBatchSize * kNumBatches,
                          all.edges.end()),
        {});
    EXPECT_TRUE(SamePartition(alg->Labels(), SequentialComponents(all)))
        << name;
  }
}

// A warm structure answers queries from the seeded state before any update
// batch arrives.
TEST(SeededHandoffExtras, SeededQueriesReflectBaseGraph) {
  EdgeList base;
  base.num_nodes = 10;
  base.edges = {{0, 1}, {1, 2}, {5, 6}};
  const Variant* v = FindVariant("Union-Async;FindHalve");
  ASSERT_NE(v, nullptr);
  auto alg = v->make_streaming(StreamingSeed::FromStatic(GraphHandle(base)));
  const auto r = alg->ProcessBatch({}, {{0, 2}, {5, 6}, {0, 5}});
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 1);
  EXPECT_EQ(r[2], 0);
}

// Cold seeds are the identity-seeded special case.
TEST(SeededHandoffExtras, ColdSeedStartsFromIdentity) {
  const Variant* v = &DefaultVariant();
  auto alg = v->make_streaming(StreamingSeed::Cold(8));
  const auto labels = alg->Labels();
  for (NodeId u = 0; u < 8; ++u) EXPECT_EQ(labels[u], u);
}

// AdoptSeedLabels contract: arbitrary rooted forests are normalized to the
// min-rooted depth-<=1 form; malformed arrays are rejected.
TEST(SeededHandoffExtras, AdoptSeedLabelsNormalizesAndValidates) {
  // A depth-3 chain rooted at the *largest* id: 0 -> 1 -> 2 -> 3, plus an
  // isolated vertex. Normalization must re-root {0,1,2,3} at 0.
  const std::vector<NodeId> normalized =
      AdoptSeedLabels({1, 2, 3, 3, 4});
  EXPECT_EQ(normalized, (std::vector<NodeId>{0, 0, 0, 0, 4}));

  EXPECT_THROW(AdoptSeedLabels({0, 5, 1}), std::invalid_argument);  // range
  EXPECT_THROW(AdoptSeedLabels({1, 0}), std::invalid_argument);     // cycle
  EXPECT_THROW(AdoptSeedLabels({0, 2, 3, 1}), std::invalid_argument);
  EXPECT_TRUE(AdoptSeedLabels({}).empty());

  // Rem's unite requires parent[v] <= v; a seeded structure built from a
  // max-rooted forest must still process updates correctly.
  UnionFindStreaming<UniteOption::kRemCas, FindOption::kNaive,
                     SpliceOption::kSplitOne>
      rem(std::vector<NodeId>{3, 3, 3, 3, 4, 5});
  const auto r = rem.ProcessBatch({{4, 5}}, {{0, 3}, {4, 5}, {0, 4}});
  EXPECT_EQ(r[0], 1);
  EXPECT_EQ(r[1], 1);
  EXPECT_EQ(r[2], 0);
}

}  // namespace
}  // namespace connectit
