// Fault injection for the container loader (ISSUE 9): flip or truncate
// every header field and section of a valid .cgc and require that
// MappedGraph::Map fails cleanly — false return, non-empty diagnostic,
// *out left unmapped — and never crashes or exposes a partial graph. The
// systematic sweep XORs every byte of the header + section table; the named
// cases pin the precise diagnostic for each class of damage (bad magic,
// unsupported version, unknown flags, out-of-range or misaligned sections,
// checksum mismatches, truncations, malformed shard tables) so error
// messages stay actionable. The OrDie path is death-tested.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/builder.h"
#include "src/graph/container.h"
#include "src/graph/generators.h"
#include "src/graph/graph_handle.h"
#include "src/graph/io.h"
#include "src/graph/sharded.h"

namespace connectit {
namespace {

using Bytes = std::vector<uint8_t>;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Bytes ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
  return Bytes(raw.begin(), raw.end());
}

void WriteAll(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// A valid container with all the trimmings: shard table from a 3-way
// partition (offsets + neighbors + shard-table sections).
const Bytes& ValidContainer() {
  static const Bytes* bytes = [] {
    const Graph graph = GenerateRmat(200, 800, /*seed=*/41);
    const std::string path = TempPath("corruption_fixture.cgc");
    std::string error;
    if (!WriteContainer(path, ShardedGraph::Partition(graph, 3), &error)) {
      std::fprintf(stderr, "fixture write failed: %s\n", error.c_str());
      std::abort();
    }
    auto* all = new Bytes(ReadAll(path));
    std::remove(path.c_str());
    return all;
  }();
  return *bytes;
}

ContainerHeader HeaderOf(const Bytes& bytes) {
  ContainerHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  return header;
}

ContainerSection SectionAt(const Bytes& bytes, uint32_t i) {
  ContainerSection section;
  std::memcpy(&section, bytes.data() + sizeof(ContainerHeader) +
                            i * sizeof(ContainerSection),
              sizeof(section));
  return section;
}

void PutSection(Bytes* bytes, uint32_t i, const ContainerSection& section) {
  std::memcpy(bytes->data() + sizeof(ContainerHeader) +
                  i * sizeof(ContainerSection),
              &section, sizeof(section));
}

// Section entry of the given kind, or index -1 if absent.
int FindSection(const Bytes& bytes, SectionKind kind) {
  const ContainerHeader header = HeaderOf(bytes);
  for (uint32_t i = 0; i < header.section_count; ++i) {
    if (SectionAt(bytes, i).kind == static_cast<uint32_t>(kind)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// Recomputes table_checksum (offset 48) and header_checksum (offset 56)
// after a deliberate header/table patch, so the test reaches the targeted
// validation step instead of tripping the checksum gate first.
void Restamp(Bytes* bytes) {
  const ContainerHeader header = HeaderOf(*bytes);
  const uint32_t count =
      std::min(header.section_count, kContainerMaxSections);
  const uint64_t table_checksum = ContainerChecksum(
      bytes->data() + sizeof(ContainerHeader),
      uint64_t{count} * sizeof(ContainerSection));
  std::memcpy(bytes->data() + 48, &table_checksum, sizeof(table_checksum));
  const uint64_t header_checksum = ContainerChecksum(bytes->data(), 56);
  std::memcpy(bytes->data() + 56, &header_checksum, sizeof(header_checksum));
}

struct MapAttempt {
  bool ok = false;
  std::string error;
};

// Writes the (corrupted) bytes to a fresh file and tries both loaders. The
// contract under test: clean failure — no crash, a diagnostic, no partial
// graph — through MappedGraph::Map AND the ReadGraphBinary facade.
MapAttempt TryMap(const Bytes& bytes,
                  const ContainerMapOptions& options = {}) {
  const std::string path = TempPath("corrupt_attempt.cgc");
  WriteAll(path, bytes);
  MapAttempt attempt;
  MappedGraph mapped;
  attempt.ok = MappedGraph::Map(path, &mapped, &attempt.error, options);
  if (!attempt.ok) {
    EXPECT_FALSE(mapped.mapped()) << "loader failed but left a mapping";
    EXPECT_FALSE(attempt.error.empty()) << "loader failed without diagnostic";
    if (options.verify_checksums) {
      Graph out;
      std::string facade_error;
      EXPECT_FALSE(ReadGraphBinary(path, &out, &facade_error));
      EXPECT_FALSE(facade_error.empty());
    }
  }
  std::remove(path.c_str());
  return attempt;
}

void ExpectRejected(const Bytes& bytes, const std::string& want_substring,
                    const ContainerMapOptions& options = {}) {
  const MapAttempt attempt = TryMap(bytes, options);
  EXPECT_FALSE(attempt.ok) << "corrupt container was accepted";
  if (!want_substring.empty()) {
    EXPECT_NE(attempt.error.find(want_substring), std::string::npos)
        << "diagnostic was: " << attempt.error;
  }
}

// ---- systematic sweep: every byte of the header + section table ----

TEST(ContainerCorruption, EveryHeaderAndTableByteFlipIsRejected) {
  const Bytes& valid = ValidContainer();
  const ContainerHeader header = HeaderOf(valid);
  const size_t guarded = sizeof(ContainerHeader) +
                         header.section_count * sizeof(ContainerSection);
  ASSERT_GE(valid.size(), guarded);
  for (size_t at = 0; at < guarded; ++at) {
    Bytes corrupt = valid;
    corrupt[at] ^= 0xA5;
    const MapAttempt attempt = TryMap(corrupt);
    EXPECT_FALSE(attempt.ok) << "flip at byte " << at << " was accepted";
  }
  // Control: the untouched fixture maps fine.
  EXPECT_TRUE(TryMap(valid).ok);
}

// ---- named header faults, each reaching its precise diagnostic ----

TEST(ContainerCorruption, BadMagic) {
  Bytes corrupt = ValidContainer();
  corrupt[0] ^= 0xFF;
  ExpectRejected(corrupt, "bad magic");
}

TEST(ContainerCorruption, LegacyMagicGetsReconvertHint) {
  Bytes corrupt = ValidContainer();
  std::memcpy(corrupt.data(), &kLegacyBinaryMagic, sizeof(kLegacyBinaryMagic));
  ExpectRejected(corrupt, "graph_tool convert");
}

TEST(ContainerCorruption, UnsupportedVersion) {
  Bytes corrupt = ValidContainer();
  const uint32_t version = kContainerVersion + 41;
  std::memcpy(corrupt.data() + 8, &version, sizeof(version));
  ExpectRejected(corrupt, "unsupported container version");
}

TEST(ContainerCorruption, UnknownFlagBits) {
  Bytes corrupt = ValidContainer();
  const uint32_t flags = 0x80000001u;
  std::memcpy(corrupt.data() + 12, &flags, sizeof(flags));
  ExpectRejected(corrupt, "unknown flag bits");
}

TEST(ContainerCorruption, WrongIdWidths) {
  Bytes corrupt = ValidContainer();
  corrupt[36] = 8;  // node_id_bytes: written for 64-bit vertex ids
  Restamp(&corrupt);
  ExpectRejected(corrupt, "id widths");
}

TEST(ContainerCorruption, HeaderChecksumCatchesSilentFieldDamage) {
  // A flipped bit in num_nodes with no restamp: the checksum, not a
  // downstream bounds check, must report it.
  Bytes corrupt = ValidContainer();
  corrupt[16] ^= 0x01;
  ExpectRejected(corrupt, "header checksum mismatch");
}

TEST(ContainerCorruption, SectionCountZeroAndOverCapacity) {
  for (const uint32_t count : {0u, kContainerMaxSections + 1}) {
    Bytes corrupt = ValidContainer();
    std::memcpy(corrupt.data() + 32, &count, sizeof(count));
    Restamp(&corrupt);
    ExpectRejected(corrupt, "section count");
  }
}

TEST(ContainerCorruption, TableChecksumCatchesSilentTableDamage) {
  Bytes corrupt = ValidContainer();
  corrupt[sizeof(ContainerHeader) + 8] ^= 0x10;  // section[0].offset bits
  // Header restamped, table deliberately not: the table gate must fire.
  const uint64_t header_checksum = ContainerChecksum(corrupt.data(), 56);
  std::memcpy(corrupt.data() + 56, &header_checksum, sizeof(header_checksum));
  ExpectRejected(corrupt, "section table checksum mismatch");
}

// ---- section-table faults ----

TEST(ContainerCorruption, UnknownSectionKind) {
  Bytes corrupt = ValidContainer();
  ContainerSection section = SectionAt(corrupt, 0);
  section.kind = 77;
  PutSection(&corrupt, 0, section);
  Restamp(&corrupt);
  ExpectRejected(corrupt, "unknown section kind");
}

TEST(ContainerCorruption, DuplicateSection) {
  Bytes corrupt = ValidContainer();
  ContainerSection second = SectionAt(corrupt, 1);
  PutSection(&corrupt, 0, second);
  Restamp(&corrupt);
  ExpectRejected(corrupt, "duplicate");
}

TEST(ContainerCorruption, MisalignedSectionOffset) {
  Bytes corrupt = ValidContainer();
  ContainerSection section = SectionAt(corrupt, 0);
  section.offset += 8;
  PutSection(&corrupt, 0, section);
  Restamp(&corrupt);
  ExpectRejected(corrupt, "aligned");
}

TEST(ContainerCorruption, SectionOffsetPastEndOfFile) {
  Bytes corrupt = ValidContainer();
  ContainerSection section = SectionAt(corrupt, 0);
  section.offset = (corrupt.size() + kContainerAlignment) &
                   ~(kContainerAlignment - 1);
  PutSection(&corrupt, 0, section);
  Restamp(&corrupt);
  ExpectRejected(corrupt, "out of range");
}

TEST(ContainerCorruption, SectionLengthOverrunsFile) {
  Bytes corrupt = ValidContainer();
  ContainerSection section = SectionAt(corrupt, 0);
  section.length = corrupt.size();  // offset + length > file
  PutSection(&corrupt, 0, section);
  Restamp(&corrupt);
  ExpectRejected(corrupt, "out of range");
}

TEST(ContainerCorruption, OffsetsSectionWrongSizeForVertexCount) {
  Bytes corrupt = ValidContainer();
  const int i = FindSection(corrupt, SectionKind::kOffsets);
  ASSERT_GE(i, 0);
  ContainerSection section = SectionAt(corrupt, i);
  section.length -= sizeof(EdgeId);
  PutSection(&corrupt, i, section);
  Restamp(&corrupt);
  ExpectRejected(corrupt, "offsets section is");
}

// ---- payload faults: the per-section checksums ----

TEST(ContainerCorruption, FlippedByteInOffsetsPayload) {
  Bytes corrupt = ValidContainer();
  const int i = FindSection(corrupt, SectionKind::kOffsets);
  ASSERT_GE(i, 0);
  const ContainerSection section = SectionAt(corrupt, i);
  corrupt[section.offset + section.length / 2] ^= 0x40;
  ExpectRejected(corrupt, "offsets section checksum mismatch");
}

TEST(ContainerCorruption, FlippedByteInNeighborsPayload) {
  Bytes corrupt = ValidContainer();
  const int i = FindSection(corrupt, SectionKind::kNeighbors);
  ASSERT_GE(i, 0);
  const ContainerSection section = SectionAt(corrupt, i);
  ASSERT_GT(section.length, 0u);
  corrupt[section.offset] ^= 0x01;
  ExpectRejected(corrupt, "neighbors section checksum mismatch");
}

TEST(ContainerCorruption, OutOfRangeNeighborIdBehindValidChecksum) {
  // Damage written *before* checksumming (a buggy writer): patch a neighbor
  // id out of range and restamp the section checksum — only the deep
  // validation pass can catch this one.
  Bytes corrupt = ValidContainer();
  const ContainerHeader header = HeaderOf(corrupt);
  const int i = FindSection(corrupt, SectionKind::kNeighbors);
  ASSERT_GE(i, 0);
  ContainerSection section = SectionAt(corrupt, i);
  ASSERT_GE(section.length, sizeof(NodeId));
  const NodeId bogus = static_cast<NodeId>(header.num_nodes + 5);
  std::memcpy(corrupt.data() + section.offset, &bogus, sizeof(bogus));
  section.checksum =
      ContainerChecksum(corrupt.data() + section.offset, section.length);
  PutSection(&corrupt, i, section);
  Restamp(&corrupt);
  ExpectRejected(corrupt, "neighbor id out of range");
}

TEST(ContainerCorruption, ShapeChecksStillRunWithChecksumsSkipped) {
  // verify_checksums=false skips the O(file) scrub but must still refuse an
  // offsets array that disagrees with the header's arc count.
  Bytes corrupt = ValidContainer();
  const ContainerHeader header = HeaderOf(corrupt);
  const int i = FindSection(corrupt, SectionKind::kOffsets);
  ASSERT_GE(i, 0);
  const ContainerSection section = SectionAt(corrupt, i);
  const uint64_t bogus_last = header.num_arcs + 7;
  std::memcpy(corrupt.data() + section.offset + section.length -
                  sizeof(uint64_t),
              &bogus_last, sizeof(bogus_last));
  ContainerMapOptions no_verify;
  no_verify.verify_checksums = false;
  ExpectRejected(corrupt, "does not match the header arc count", no_verify);
}

// ---- shard-table malformations (reached with checksums skipped, so the
// structural checks themselves are what rejects) ----

TEST(ContainerCorruption, ShardTableMalformations) {
  const Bytes& valid = ValidContainer();
  const int i = FindSection(valid, SectionKind::kShardTable);
  ASSERT_GE(i, 0);
  const ContainerSection section = SectionAt(valid, i);
  ContainerMapOptions no_verify;
  no_verify.verify_checksums = false;

  {  // boundaries must start at 0
    Bytes corrupt = valid;
    const uint64_t one = 1;
    std::memcpy(corrupt.data() + section.offset, &one, sizeof(one));
    ExpectRejected(corrupt, "shard boundaries must start at 0", no_verify);
  }
  {  // boundaries must be monotone
    Bytes corrupt = valid;
    ASSERT_GE(section.length, 3 * sizeof(uint64_t));
    const uint64_t huge = ~uint64_t{0} / 2;
    std::memcpy(corrupt.data() + section.offset + sizeof(uint64_t), &huge,
                sizeof(huge));
    ExpectRejected(corrupt, "monotone", no_verify);
  }
  {  // length must be a positive multiple of 8
    Bytes corrupt = valid;
    ContainerSection damaged = section;
    damaged.length -= 4;
    PutSection(&corrupt, i, damaged);
    Restamp(&corrupt);
    ExpectRejected(corrupt, "multiple of 8", no_verify);
  }
}

// ---- truncations ----

TEST(ContainerCorruption, TruncationsAtEveryLayer) {
  const Bytes& valid = ValidContainer();
  const ContainerHeader header = HeaderOf(valid);
  const size_t table_end = sizeof(ContainerHeader) +
                           header.section_count * sizeof(ContainerSection);

  // Zero-length file: mmap of nothing must be refused up front.
  ExpectRejected(Bytes{}, "empty file");
  // Shorter than the header.
  ExpectRejected(Bytes(valid.begin(), valid.begin() + 32), "bytes");
  // Mid-section-table.
  ExpectRejected(Bytes(valid.begin(), valid.begin() + table_end - 16),
                 "too short for its section table");
  // Mid-payload: sections now point past the end.
  ExpectRejected(
      Bytes(valid.begin(), valid.begin() + table_end + kContainerAlignment),
      "out of range");
  // One byte short of complete.
  ExpectRejected(Bytes(valid.begin(), valid.end() - 1), "out of range");
}

TEST(ContainerCorruption, MissingFileReportsOpenError) {
  MappedGraph mapped;
  std::string error;
  EXPECT_FALSE(
      MappedGraph::Map(TempPath("no_such_container.cgc"), &mapped, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

// ---- the OrDie path ----

using ContainerCorruptionDeathTest = ::testing::Test;

TEST(ContainerCorruptionDeathTest, MapOrDieAbortsWithDiagnostic) {
  Bytes corrupt = ValidContainer();
  corrupt[0] ^= 0xFF;  // bad magic
  const std::string path = TempPath("mapordie_corrupt.cgc");
  WriteAll(path, corrupt);
  EXPECT_DEATH(GraphHandle::MapOrDie(path), "bad magic");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace connectit
