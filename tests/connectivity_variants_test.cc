// The central correctness sweep: every registered algorithm variant, under
// every sampling scheme, on every basket graph, must produce the same
// vertex partition as the sequential ground truth (paper Theorems 1-4).

#include <cctype>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/algo/verify.h"
#include "src/core/registry.h"
#include "tests/test_graphs.h"

namespace connectit {
namespace {

struct SweepCase {
  std::string variant;
  SamplingOption sampling;
};

std::vector<SweepCase> AllCases() {
  std::vector<SweepCase> cases;
  for (const Variant& v : AllVariants()) {
    for (const SamplingOption s :
         {SamplingOption::kNone, SamplingOption::kKOut, SamplingOption::kBfs,
          SamplingOption::kLdd}) {
      cases.push_back({v.name, s});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name =
      info.param.variant + "_" + std::string(ToString(info.param.sampling));
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

class VariantSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(VariantSweep, MatchesGroundTruthOnBasket) {
  const SweepCase& param = GetParam();
  const Variant* variant = FindVariant(param.variant);
  ASSERT_NE(variant, nullptr);
  SamplingConfig config;
  config.option = param.sampling;
  for (const auto& [name, graph] : testing::CorrectnessBasket()) {
    const std::vector<NodeId> labels = variant->run(graph, config);
    ASSERT_EQ(labels.size(), graph.num_nodes()) << name;
    const std::vector<NodeId> truth = SequentialComponents(graph);
    EXPECT_TRUE(SamePartition(labels, truth))
        << "variant=" << param.variant
        << " sampling=" << ToString(param.sampling) << " graph=" << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariantsAllSampling, VariantSweep,
                         ::testing::ValuesIn(AllCases()), CaseName);

// The registry itself.
TEST(Registry, HasExpectedVariantCounts) {
  size_t uf = 0;
  size_t lt = 0;
  for (const Variant& v : AllVariants()) {
    if (v.family == AlgorithmFamily::kUnionFind) ++uf;
    if (v.family == AlgorithmFamily::kLiuTarjan) ++lt;
  }
  // 12 non-Rem x find + 2 JTB + 2*11 Rem = 36 flat union-find variants;
  // the 4 sampling modes they compose with give the paper's 144
  // combinations. The memory-placement axis adds a NumaReplicated twin for
  // every flat variant except the two JTB ones (random-priority linking is
  // incompatible with the value-ordered replica hints): 36 + 34 = 70.
  EXPECT_EQ(uf, 70u);
  size_t uf_replicated = 0;
  for (const Variant& v : AllVariants()) {
    uf_replicated += v.family == AlgorithmFamily::kUnionFind &&
                     v.descriptor.placement == PlacementOption::kNumaReplicated;
  }
  EXPECT_EQ(uf_replicated, 34u);
  EXPECT_EQ(lt, 16u);  // Appendix D list
  EXPECT_GE(AllVariants().size(), 89u);
}

TEST(Registry, NamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (const Variant& v : AllVariants()) {
    EXPECT_TRUE(names.insert(v.name).second) << "duplicate " << v.name;
    EXPECT_EQ(FindVariant(v.name), &v);
  }
  EXPECT_EQ(FindVariant("no-such-variant"), nullptr);
}

TEST(Registry, RootBasedVariantsProvideForestAndStreaming) {
  for (const Variant& v : AllVariants()) {
    if (v.root_based) {
      EXPECT_TRUE(static_cast<bool>(v.run_forest)) << v.name;
    } else {
      EXPECT_FALSE(static_cast<bool>(v.run_forest)) << v.name;
      EXPECT_FALSE(static_cast<bool>(v.make_streaming)) << v.name;
    }
    if (v.supports_streaming) {
      EXPECT_TRUE(static_cast<bool>(v.make_streaming)) << v.name;
    }
  }
  // All union-find variants stream; only RootUp Liu-Tarjan variants do.
  for (const Variant* v : VariantsOfFamily(AlgorithmFamily::kUnionFind)) {
    EXPECT_TRUE(v->supports_streaming) << v->name;
  }
  size_t lt_streaming = 0;
  for (const Variant* v : VariantsOfFamily(AlgorithmFamily::kLiuTarjan)) {
    lt_streaming += v->supports_streaming;
  }
  EXPECT_EQ(lt_streaming, 6u);  // CRSA PRSA PRS CRFA PRFA PRF
}

TEST(Registry, PaperRowsCoverEveryRowName) {
  const auto rows = PaperAlgorithmRows();
  ASSERT_EQ(rows.size(), 10u);
  for (const AlgorithmRow& row : rows) {
    EXPECT_FALSE(row.variants.empty()) << row.name;
    for (const Variant* v : row.variants) {
      if (row.name == "Liu-Tarjan") {
        EXPECT_EQ(v->family, AlgorithmFamily::kLiuTarjan);
      } else {
        EXPECT_EQ(v->name.rfind(row.name, 0), 0u)
            << v->name << " in row " << row.name;
      }
    }
  }
}

}  // namespace
}  // namespace connectit
