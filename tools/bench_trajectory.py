#!/usr/bin/env python3
"""Append-only per-PR performance trajectory over BENCH_*.json artifacts.

The bench harnesses (bench_serving, bench_large_graph, ...) emit point-in-
time BENCH_*.json files; this tool folds them into one JSONL trajectory so
the numbers can be compared across PRs instead of overwritten by each one.

Usage:
  bench_trajectory.py append --label LABEL [--trajectory FILE] BENCH...
  bench_trajectory.py show   [--trajectory FILE]
  bench_trajectory.py check  [--trajectory FILE]

append  Flattens every scalar metric of each BENCH_*.json into one record
        {label, source, metrics} and appends it as a JSONL line. The file
        is append-only: a (label, source) pair that is already present is
        refused (exit 1), so a PR cannot silently rewrite history — pick a
        new label (e.g. the PR number or git describe) instead.
show    Prints the trajectory, one line per (record, metric), with the
        delta against the previous record of the same source — the
        across-PR view the trajectory exists for.
check   Validates the file: parseable JSONL, required keys, metrics are
        scalars, (label, source) pairs unique. Exit 1 on the first
        violation; CI runs this against the committed trajectory.

List entries inside a bench file are named by their identifying fields
(mix, mode, transport, name, variant, graph, ...) when present, by index
otherwise, so "mixes[read_mostly/snapshot/inproc].p99_us" stays stable as
entries reorder.
"""

import argparse
import json
import os
import sys

DEFAULT_TRAJECTORY = "BENCH_trajectory.jsonl"
# Fields that identify a list entry, tried in this order.
IDENTITY_KEYS = ("mix", "mode", "transport", "name", "variant", "graph",
                 "bench")


def fail(msg):
    print(f"bench_trajectory: {msg}", file=sys.stderr)
    sys.exit(1)


def entry_name(entry, index):
    """A stable name for one list entry: its identity fields, else index."""
    if isinstance(entry, dict):
        parts = [str(entry[k]) for k in IDENTITY_KEYS if k in entry]
        if parts:
            return "/".join(parts)
    return str(index)


def flatten(doc, prefix=""):
    """All scalar leaves of `doc` as {dotted.path: value}."""
    metrics = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            metrics.update(flatten(value, path))
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            path = f"{prefix}[{entry_name(value, i)}]"
            metrics.update(flatten(value, path))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        metrics[prefix] = doc
    # Strings/bools/nulls are identity, not metrics: already folded into
    # the path by entry_name, or irrelevant to a numeric trajectory.
    return metrics


def load_trajectory(path):
    records = []
    if not os.path.exists(path):
        return records
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append((lineno, json.loads(line)))
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: invalid JSON: {e}")
    return records


def cmd_append(args):
    records = load_trajectory(args.trajectory)
    seen = {(r.get("label"), r.get("source")) for _, r in records}
    new_lines = []
    for bench_path in args.bench:
        try:
            with open(bench_path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{bench_path}: unreadable or invalid JSON: {e}")
        source = os.path.basename(bench_path)
        if (args.label, source) in seen:
            fail(f"{args.trajectory} already has label {args.label!r} for "
                 f"{source!r}; the trajectory is append-only — use a new "
                 f"label")
        metrics = flatten(doc)
        if not metrics:
            fail(f"{bench_path}: no scalar metrics found")
        record = {"label": args.label, "source": source, "metrics": metrics}
        new_lines.append(json.dumps(record, sort_keys=True))
        seen.add((args.label, source))
    with open(args.trajectory, "a") as f:
        for line in new_lines:
            f.write(line + "\n")
    print(f"{args.trajectory}: appended {len(new_lines)} record(s) "
          f"with label {args.label!r}")


def cmd_show(args):
    records = load_trajectory(args.trajectory)
    if not records:
        print(f"{args.trajectory}: empty trajectory")
        return
    previous = {}  # source -> metrics of the latest earlier record
    for _, record in records:
        label = record.get("label", "?")
        source = record.get("source", "?")
        metrics = record.get("metrics", {})
        prev = previous.get(source, {})
        print(f"== {label} :: {source} ({len(metrics)} metrics)")
        for key in sorted(metrics):
            value = metrics[key]
            if key in prev and prev[key] != 0:
                pct = 100.0 * (value - prev[key]) / abs(prev[key])
                print(f"  {key:60s} {value:>14.4g}  ({pct:+.1f}%)")
            else:
                print(f"  {key:60s} {value:>14.4g}")
        previous[source] = metrics


def cmd_check(args):
    records = load_trajectory(args.trajectory)
    seen = set()
    for lineno, record in records:
        where = f"{args.trajectory}:{lineno}"
        for key in ("label", "source", "metrics"):
            if key not in record:
                fail(f"{where}: missing key {key!r}")
        if not isinstance(record["metrics"], dict) or not record["metrics"]:
            fail(f"{where}: metrics must be a non-empty object")
        for name, value in record["metrics"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                fail(f"{where}: metric {name!r} is not numeric")
        pair = (record["label"], record["source"])
        if pair in seen:
            fail(f"{where}: duplicate (label, source) {pair!r}")
        seen.add(pair)
    print(f"{args.trajectory}: ok ({len(records)} records)")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="append bench files as records")
    p_append.add_argument("--label", required=True,
                          help="trajectory label (PR number, git describe)")
    p_append.add_argument("--trajectory", default=DEFAULT_TRAJECTORY)
    p_append.add_argument("bench", nargs="+", metavar="BENCH_FILE")
    p_append.set_defaults(func=cmd_append)

    p_show = sub.add_parser("show", help="print the trajectory with deltas")
    p_show.add_argument("--trajectory", default=DEFAULT_TRAJECTORY)
    p_show.set_defaults(func=cmd_show)

    p_check = sub.add_parser("check", help="validate the trajectory file")
    p_check.add_argument("--trajectory", default=DEFAULT_TRAJECTORY)
    p_check.set_defaults(func=cmd_check)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
