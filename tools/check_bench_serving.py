#!/usr/bin/env python3
"""Schema check for BENCH_serving.json (emitted by bench/bench_serving.cc).

Usage: check_bench_serving.py [--require-socket] FILE [FILE...]

Validates every file: required keys, both serving modes for every mix, all
five canonical mixes present, numeric sanity (non-negative, percentiles
monotone p50 <= p99 <= p999 <= max). Every entry carries its transport:
"inproc" (threads calling the Connectivity facade directly, client_processes
= 0) or "socket" (forked client processes speaking the wire protocol to a
live connectit_server over a Unix socket, client_processes > 0). With
--require-socket, every mix must additionally have a socket entry — the CI
gate that the multi-process harness keeps producing end-to-end numbers.
Exits non-zero with a message on the first violation, so CI catches a
harness regression that silently stops emitting a mode, a transport, or a
field.
"""

import json
import sys

REQUIRED_TOP = {"bench", "nodes", "readers", "mixes"}
REQUIRED_ENTRY = {
    "mix", "mode", "transport", "client_processes", "offered_ops_per_sec",
    "achieved_ops_per_sec", "ops", "batches", "edges_ingested",
    "edges_erased", "p50_us", "p99_us", "p999_us", "max_us",
}
EXPECTED_MIXES = {"read_mostly", "write_heavy", "bursty", "zipfian",
                  "delete_heavy"}
EXPECTED_MODES = {"snapshot", "shared-lock"}
EXPECTED_TRANSPORTS = {"inproc", "socket"}


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def check(path, require_socket):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable or invalid JSON: {e}")

    missing = REQUIRED_TOP - doc.keys()
    if missing:
        fail(path, f"missing top-level keys: {sorted(missing)}")
    if doc["bench"] != "serving":
        fail(path, f'bench is {doc["bench"]!r}, expected "serving"')
    if not isinstance(doc["nodes"], int) or doc["nodes"] <= 0:
        fail(path, "nodes must be a positive integer")
    if not isinstance(doc["readers"], int) or doc["readers"] <= 0:
        fail(path, "readers must be a positive integer")
    if not isinstance(doc["mixes"], list) or not doc["mixes"]:
        fail(path, "mixes must be a non-empty list")

    seen = set()          # (mix, mode) over inproc entries
    socket_mixes = set()  # mixes with a socket entry
    for i, entry in enumerate(doc["mixes"]):
        where = f"mixes[{i}]"
        missing = REQUIRED_ENTRY - entry.keys()
        if missing:
            fail(path, f"{where}: missing keys {sorted(missing)}")
        if entry["mode"] not in EXPECTED_MODES:
            fail(path, f'{where}: unknown mode {entry["mode"]!r}')
        if entry["transport"] not in EXPECTED_TRANSPORTS:
            fail(path, f'{where}: unknown transport {entry["transport"]!r}')
        for key in REQUIRED_ENTRY - {"mix", "mode", "transport"}:
            value = entry[key]
            if not isinstance(value, (int, float)) or value < 0:
                fail(path, f"{where}: {key} must be a non-negative number")
        if entry["ops"] == 0:
            fail(path, f"{where}: no operations recorded")
        if not (entry["p50_us"] <= entry["p99_us"] <= entry["p999_us"]
                <= entry["max_us"]):
            fail(path, f"{where}: percentiles not monotone")
        if entry["mix"] == "delete_heavy" and entry["edges_erased"] == 0:
            fail(path, f"{where}: delete_heavy mix recorded no erases")
        if entry["transport"] == "socket":
            # Socket entries measure the live server, which serves reads
            # from snapshots; client_processes is the forked client count.
            if entry["mode"] != "snapshot":
                fail(path, f'{where}: socket transport must run mode '
                           f'"snapshot", got {entry["mode"]!r}')
            if entry["client_processes"] == 0:
                fail(path, f"{where}: socket entry with no client processes")
            socket_mixes.add(entry["mix"])
        else:
            if entry["client_processes"] != 0:
                fail(path, f"{where}: inproc entry claims client processes")
            seen.add((entry["mix"], entry["mode"]))

    mixes_seen = {mix for mix, _ in seen}
    if not EXPECTED_MIXES <= mixes_seen:
        fail(path, f"missing mixes: {sorted(EXPECTED_MIXES - mixes_seen)}")
    for mix in mixes_seen:
        modes = {mode for m, mode in seen if m == mix}
        if modes != EXPECTED_MODES:
            fail(path, f"mix {mix!r} missing modes: "
                       f"{sorted(EXPECTED_MODES - modes)}")
    if require_socket and not EXPECTED_MIXES <= socket_mixes:
        fail(path, f"missing socket-transport entries for mixes: "
                   f"{sorted(EXPECTED_MIXES - socket_mixes)}")
    print(f"{path}: ok ({len(doc['mixes'])} entries, "
          f"{len(socket_mixes)} mixes over socket)")


def main():
    args = sys.argv[1:]
    require_socket = "--require-socket" in args
    paths = [a for a in args if a != "--require-socket"]
    if not paths:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in paths:
        check(path, require_socket)


if __name__ == "__main__":
    main()
