// Shiloach-Vishkin connectivity (paper §B.2.4, Algorithm 15).
//
// Synchronous rounds: every edge between two tree roots hooks the larger
// root onto the smaller via WriteMin (our variant; classic implementations
// use a plain racy write), then all trees are compressed to depth one by
// pointer jumping. Root-based and monotone, so it supports spanning forest
// (RunForest) and streaming (Type (ii)).

#ifndef CONNECTIT_SV_SHILOACH_VISHKIN_H_
#define CONNECTIT_SV_SHILOACH_VISHKIN_H_

#include <atomic>
#include <vector>

#include "src/core/slot_recorder.h"
#include "src/graph/csr.h"
#include "src/graph/types.h"
#include "src/parallel/atomics.h"
#include "src/parallel/thread_pool.h"
#include "src/stats/counters.h"

namespace connectit {

class ShiloachVishkin {
 public:
  // Generic round loop: `map_edges(apply)` must invoke apply(u, v) for every
  // edge to consider this round. Returns the number of rounds.
  template <typename MapEdges, typename Recorder>
  static NodeId RunRounds(MapEdges&& map_edges, std::vector<NodeId>& parents,
                          Recorder& recorder) {
    const size_t n = parents.size();
    NodeId rounds = 0;
    while (true) {
      ++rounds;
      stats::RecordRound();
      std::atomic<bool> changed{false};
      map_edges([&](NodeId u, NodeId v) {
        const NodeId pu = AtomicLoadRelaxed(&parents[u]);
        const NodeId pv = AtomicLoadRelaxed(&parents[v]);
        stats::RecordParentReads(2);
        if (pu == pv) return;
        // Hook the larger root under the smaller label.
        const NodeId hi = std::max(pu, pv);
        const NodeId lo = std::min(pu, pv);
        if (AtomicLoadRelaxed(&parents[hi]) == hi) {
          if (WriteMin(&parents[hi], lo)) {
            stats::RecordParentWrites(1);
            recorder.Record(hi, lo, {u, v});
            changed.store(true, std::memory_order_relaxed);
          }
        }
      });
      // Full pointer-jump compression.
      ParallelFor(0, n, [&](size_t vi) {
        NodeId v = static_cast<NodeId>(vi);
        NodeId root = AtomicLoadRelaxed(&parents[v]);
        uint64_t hops = 1;
        while (true) {
          const NodeId p = AtomicLoadRelaxed(&parents[root]);
          ++hops;
          if (p == root) break;
          root = p;
        }
        stats::RecordParentReads(hops);
        WriteMin(&parents[v], root);
      });
      if (!changed.load(std::memory_order_relaxed)) break;
    }
    return rounds;
  }

  // Static finish over a CSR graph; `skip` (optional) suppresses arcs whose
  // source had the frequent label after sampling.
  template <typename GraphT>
  static NodeId Run(const GraphT& graph, std::vector<NodeId>& parents,
                    const std::vector<uint8_t>* skip = nullptr) {
    NullRecorder recorder;
    return RunGraph(graph, parents, skip, recorder);
  }

  template <typename GraphT, typename Recorder>
  static NodeId RunGraph(const GraphT& graph, std::vector<NodeId>& parents,
                         const std::vector<uint8_t>* skip,
                         Recorder& recorder) {
    return RunRounds(
        [&](auto&& apply) {
          if (skip == nullptr) {
            graph.MapArcs(apply);
          } else {
            graph.MapArcsIf([&](NodeId u) { return !(*skip)[u]; }, apply);
          }
        },
        parents, recorder);
  }

  // Batch form used by the streaming framework.
  static NodeId RunOnEdges(const std::vector<Edge>& edges,
                           std::vector<NodeId>& parents) {
    NullRecorder recorder;
    return RunRounds(
        [&](auto&& apply) {
          ParallelFor(0, edges.size(), [&](size_t i) {
            apply(edges[i].u, edges[i].v);
          });
        },
        parents, recorder);
  }
};

}  // namespace connectit

#endif  // CONNECTIT_SV_SHILOACH_VISHKIN_H_
