// The Liu-Tarjan concurrent-labeling framework (paper §3.3.2, Appendix D).
//
// An algorithm in the framework repeatedly processes an edge array in
// synchronous rounds. Each round runs a connect phase (one of Connect /
// ParentConnect / ExtendedConnect, optionally restricted to updating
// round-start roots: RootUp), a shortcut phase (one pointer jump, or
// repeated jumps: FullShortcut), and optionally an alter phase that rewrites
// each edge to the current labels of its endpoints. Parent updates are
// min-updates: a parent only ever decreases.
//
// The 16 named variants of the paper's Appendix D are spanned by
// LiuTarjan<connect, update, shortcut, alter>. Note Connect-based variants
// require Alter for correctness (Liu & Tarjan), which the variant list
// respects. RootUp variants are root-based and additionally support
// spanning forest via RunForest.

#ifndef CONNECTIT_LIUTARJAN_LIU_TARJAN_H_
#define CONNECTIT_LIUTARJAN_LIU_TARJAN_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/core/slot_recorder.h"
#include "src/graph/types.h"
#include "src/parallel/atomics.h"
#include "src/parallel/primitives.h"
#include "src/parallel/thread_pool.h"
#include "src/stats/counters.h"

namespace connectit {

enum class LtConnect { kConnect, kParentConnect, kExtendedConnect };
enum class LtUpdate { kUpdate, kRootUp };
enum class LtShortcut { kShortcut, kFullShortcut };
enum class LtAlter { kNoAlter, kAlter };

// Short code in the paper's naming scheme, e.g. "CRFA" = Connect + RootUp +
// FullShortcut + Alter, "PUS" = ParentConnect + Update + Shortcut.
inline std::string LtVariantCode(LtConnect c, LtUpdate u, LtShortcut s,
                                 LtAlter a) {
  std::string code;
  code += (c == LtConnect::kConnect)         ? 'C'
          : (c == LtConnect::kParentConnect) ? 'P'
                                             : 'E';
  code += (u == LtUpdate::kUpdate) ? 'U' : 'R';
  code += (s == LtShortcut::kShortcut) ? 'S' : 'F';
  if (a == LtAlter::kAlter) code += 'A';
  return code;
}

template <LtConnect kConnect, LtUpdate kUpdate, LtShortcut kShortcut,
          LtAlter kAlter>
class LiuTarjan {
 public:
  static constexpr bool kRootBased = (kUpdate == LtUpdate::kRootUp);

  // Runs rounds on `edges` until the parent array stops changing. `edges`
  // is consumed (Alter variants rewrite and compact it). Returns the number
  // of rounds executed.
  NodeId Run(std::vector<Edge>& edges, std::vector<NodeId>& parents) {
    NullRecorder recorder;
    std::vector<Edge> originals;  // unused
    return RunImpl<false>(edges, originals, parents, recorder);
  }

  // As Run, but records the underlying graph edge (originals[i], aligned
  // with edges[i]) responsible for each root hook into the recorder
  // (spanning forest; root-based variants only).
  template <typename Recorder>
  NodeId RunForest(std::vector<Edge> edges, std::vector<Edge> originals,
                   std::vector<NodeId>& parents, Recorder& recorder) {
    static_assert(kRootBased,
                  "spanning forest requires a RootUp (root-based) variant");
    return RunImpl<true>(edges, originals, parents, recorder);
  }

 private:
  template <bool kTrackOriginals, typename Recorder>
  NodeId RunImpl(std::vector<Edge>& edges, std::vector<Edge>& originals,
                 std::vector<NodeId>& parents, Recorder& recorder) {
    const size_t n = parents.size();
    std::vector<NodeId> previous(n);
    NodeId rounds = 0;
    while (true) {
      ++rounds;
      stats::RecordRound();
      ParallelFor(0, n, [&](size_t v) { previous[v] = parents[v]; });
      std::atomic<bool> changed{false};
      // Connect phase.
      ParallelFor(0, edges.size(), [&](size_t i) {
        const Edge e = edges[i];
        if (e.u == e.v) return;
        const Edge orig = kTrackOriginals ? originals[i] : e;
        if (ApplyConnect(e, orig, previous.data(), parents.data(),
                         recorder)) {
          changed.store(true, std::memory_order_relaxed);
        }
      });
      // Shortcut phase.
      if (RunShortcut(parents)) changed.store(true, std::memory_order_relaxed);
      // Alter phase: rewrite edges to current labels and drop self-loops.
      if constexpr (kAlter == LtAlter::kAlter) {
        ParallelFor(0, edges.size(), [&](size_t i) {
          Edge& e = edges[i];
          e = {parents[e.u], parents[e.v]};
        });
        auto keep = [&](size_t i) { return edges[i].u != edges[i].v; };
        if constexpr (kTrackOriginals) {
          originals = ParallelPack<Edge>(edges.size(), keep,
                                         [&](size_t i) { return originals[i]; });
        }
        edges = ParallelPack<Edge>(edges.size(), keep,
                                   [&](size_t i) { return edges[i]; });
      }
      if (!changed.load(std::memory_order_relaxed)) break;
    }
    return rounds;
  }

  // Offers candidate `cand` to vertex `x`; respects the RootUp guard.
  template <typename Recorder>
  static bool Offer(NodeId x, NodeId cand, Edge orig, const NodeId* previous,
                    NodeId* parents, Recorder& recorder) {
    if constexpr (kUpdate == LtUpdate::kRootUp) {
      if (previous[x] != x) return false;
    }
    if (cand >= AtomicLoadRelaxed(&parents[x])) return false;
    if (!WriteMin(&parents[x], cand)) return false;
    stats::RecordParentWrites(1);
    recorder.Record(x, cand, orig);
    return true;
  }

  template <typename Recorder>
  static bool ApplyConnect(Edge e, Edge orig, const NodeId* previous,
                           NodeId* parents, Recorder& recorder) {
    bool changed = false;
    stats::RecordParentReads(2);
    if constexpr (kConnect == LtConnect::kConnect) {
      // Candidates are the endpoints themselves. Correct only together
      // with Alter, which moves endpoints to their labels between rounds.
      changed |= Offer(e.u, e.v, orig, previous, parents, recorder);
      changed |= Offer(e.v, e.u, orig, previous, parents, recorder);
    } else if constexpr (kConnect == LtConnect::kParentConnect) {
      // Candidates are the endpoint parents, offered to the parents: this
      // is what lets non-Alter variants reach tree roots.
      const NodeId pu = previous[e.u];
      const NodeId pv = previous[e.v];
      changed |= Offer(pu, pv, orig, previous, parents, recorder);
      changed |= Offer(pv, pu, orig, previous, parents, recorder);
    } else {  // ExtendedConnect: parents offered to endpoints AND parents.
      const NodeId pu = previous[e.u];
      const NodeId pv = previous[e.v];
      changed |= Offer(e.u, pv, orig, previous, parents, recorder);
      changed |= Offer(pu, pv, orig, previous, parents, recorder);
      changed |= Offer(e.v, pu, orig, previous, parents, recorder);
      changed |= Offer(pv, pu, orig, previous, parents, recorder);
    }
    return changed;
  }

  static bool RunShortcut(std::vector<NodeId>& parents) {
    bool any = false;
    while (true) {
      std::atomic<bool> changed{false};
      ParallelFor(0, parents.size(), [&](size_t v) {
        const NodeId p = AtomicLoadRelaxed(&parents[v]);
        const NodeId gp = AtomicLoadRelaxed(&parents[p]);
        stats::RecordParentReads(2);
        if (gp < p) {
          // Pointer jump; min-update keeps this monotone under races.
          if (WriteMin(&parents[v], gp)) {
            changed.store(true, std::memory_order_relaxed);
            stats::RecordParentWrites(1);
          }
        }
      });
      any |= changed.load(std::memory_order_relaxed);
      if constexpr (kShortcut == LtShortcut::kShortcut) break;
      if (!changed.load(std::memory_order_relaxed)) break;
    }
    return any;
  }
};

}  // namespace connectit

#endif  // CONNECTIT_LIUTARJAN_LIU_TARJAN_H_
