// Folklore label propagation (paper §B.2.6): frontier-driven min-label
// spreading, the algorithm implemented by Pregel/Giraph-style systems.

#ifndef CONNECTIT_LIUTARJAN_LABEL_PROP_H_
#define CONNECTIT_LIUTARJAN_LABEL_PROP_H_

#include <vector>

#include "src/graph/csr.h"
#include "src/graph/types.h"
#include "src/parallel/atomics.h"
#include "src/parallel/primitives.h"
#include "src/parallel/thread_pool.h"
#include "src/stats/counters.h"

namespace connectit {

class LabelPropagation {
 public:
  // Runs label propagation on `graph` starting from `parents` (any valid
  // partial labeling with parents[v] <= v). `active` seeds the initial
  // frontier; pass all vertices when unsampled, or the vertices outside the
  // frequent component when composed with sampling (vertices whose label
  // later drops re-enter the frontier automatically). Returns rounds.
  template <typename GraphT>
  NodeId Run(const GraphT& graph, std::vector<NodeId>& parents,
             std::vector<uint8_t> active) {
    const NodeId n = graph.num_nodes();
    NodeId rounds = 0;
    std::vector<uint8_t> next(n, 0);
    bool any = true;
    while (any) {
      ++rounds;
      stats::RecordRound();
      std::atomic<bool> changed{false};
      ParallelFor(
          0, n,
          [&](size_t ui) {
            const NodeId u = static_cast<NodeId>(ui);
            if (!active[u]) return;
            // Edge application updates both endpoints (Definition B.1):
            // push u's label to smaller-labeled neighbors and pull the
            // smallest neighbor label back into u. The pull direction is
            // what lets the frequent component's label spread even though
            // its vertices are never sources.
            const NodeId label = AtomicLoadRelaxed(&parents[u]);
            stats::RecordParentReads(1);
            NodeId best = label;
            graph.MapNeighbors(u, [&](NodeId v) {
              const NodeId lv = AtomicLoadRelaxed(&parents[v]);
              stats::RecordParentReads(1);
              if (label < lv) {
                if (WriteMin(&parents[v], label)) {
                  stats::RecordParentWrites(1);
                  AtomicStore<uint8_t>(&next[v], 1);
                  changed.store(true, std::memory_order_relaxed);
                }
              } else if (lv < best) {
                best = lv;
              }
            });
            if (best < label && WriteMin(&parents[u], best)) {
              stats::RecordParentWrites(1);
              AtomicStore<uint8_t>(&next[u], 1);
              changed.store(true, std::memory_order_relaxed);
            }
          },
          /*grain=*/64);
      any = changed.load(std::memory_order_relaxed);
      std::swap(active, next);
      ParallelFor(0, n, [&](size_t v) { next[v] = 0; });
    }
    return rounds;
  }
};

}  // namespace connectit

#endif  // CONNECTIT_LIUTARJAN_LABEL_PROP_H_
