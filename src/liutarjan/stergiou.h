// Stergiou et al.'s BSP connectivity algorithm (paper §B.2.5).
//
// Equivalent to the Liu-Tarjan PUS variant except that it reads parent
// candidates from a snapshot of the previous round's parents (two parent
// arrays), exactly as in the original distributed formulation.

#ifndef CONNECTIT_LIUTARJAN_STERGIOU_H_
#define CONNECTIT_LIUTARJAN_STERGIOU_H_

#include <atomic>
#include <vector>

#include "src/graph/types.h"
#include "src/parallel/atomics.h"
#include "src/parallel/thread_pool.h"
#include "src/stats/counters.h"

namespace connectit {

class Stergiou {
 public:
  // Runs rounds over `edges` until the parent array stops changing.
  NodeId Run(std::vector<Edge>& edges, std::vector<NodeId>& parents) {
    const size_t n = parents.size();
    std::vector<NodeId> prev(n);
    NodeId rounds = 0;
    while (true) {
      ++rounds;
      stats::RecordRound();
      ParallelFor(0, n, [&](size_t v) { prev[v] = parents[v]; });
      std::atomic<bool> changed{false};
      ParallelFor(0, edges.size(), [&](size_t i) {
        const Edge e = edges[i];
        if (e.u == e.v) return;
        const NodeId pu = prev[e.u];
        const NodeId pv = prev[e.v];
        stats::RecordParentReads(2);
        bool c = false;
        if (pv < AtomicLoadRelaxed(&parents[e.u])) {
          c |= WriteMin(&parents[e.u], pv);
        }
        if (pu < AtomicLoadRelaxed(&parents[e.v])) {
          c |= WriteMin(&parents[e.v], pu);
        }
        if (c) {
          stats::RecordParentWrites(1);
          changed.store(true, std::memory_order_relaxed);
        }
      });
      // Shortcut on the current parents.
      ParallelFor(0, n, [&](size_t v) {
        const NodeId p = AtomicLoadRelaxed(&parents[v]);
        const NodeId gp = AtomicLoadRelaxed(&parents[p]);
        if (gp < p) {
          if (WriteMin(&parents[v], gp)) {
            changed.store(true, std::memory_order_relaxed);
          }
        }
      });
      if (!changed.load(std::memory_order_relaxed)) break;
    }
    return rounds;
  }
};

}  // namespace connectit

#endif  // CONNECTIT_LIUTARJAN_STERGIOU_H_
