#include "src/baselines/stinger_cc.h"

#include <algorithm>
#include <chrono>

#include "src/parallel/thread_pool.h"

namespace connectit {

StingerGraph::StingerGraph(NodeId num_nodes)
    : num_nodes_(num_nodes),
      heads_(num_nodes, nullptr),
      locks_(std::make_unique<std::atomic<uint8_t>[]>(num_nodes)) {
  for (NodeId v = 0; v < num_nodes; ++v) {
    locks_[v].store(0, std::memory_order_relaxed);
  }
}

StingerGraph::~StingerGraph() {
  for (Block* b : heads_) {
    while (b != nullptr) {
      Block* next = b->next;
      delete b;
      b = next;
    }
  }
}

EdgeId StingerGraph::num_arcs() const { return arcs_.load(); }

void StingerGraph::InsertArc(NodeId u, NodeId v) {
  while (locks_[u].exchange(1, std::memory_order_acquire) != 0) {
  }
  // Walk the chain to the last block; append, allocating when full (the
  // STINGER insertion path, minus deletion-hole reuse).
  Block* b = heads_[u];
  if (b == nullptr) {
    b = new Block();
    heads_[u] = b;
  } else {
    while (b->next != nullptr) b = b->next;
    if (b->count == kBlockSize) {
      b->next = new Block();
      b = b->next;
    }
  }
  b->entries[b->count++] = v;
  arcs_.fetch_add(1, std::memory_order_relaxed);
  locks_[u].store(0, std::memory_order_release);
}

bool StingerGraph::RemoveArc(NodeId u, NodeId v) {
  while (locks_[u].exchange(1, std::memory_order_acquire) != 0) {
  }
  Block* hole_block = nullptr;
  uint32_t hole_idx = 0;
  for (Block* b = heads_[u]; b != nullptr && hole_block == nullptr;
       b = b->next) {
    for (uint32_t i = 0; i < b->count; ++i) {
      if (b->entries[i] == v) {
        hole_block = b;
        hole_idx = i;
        break;
      }
    }
  }
  if (hole_block == nullptr) {
    locks_[u].store(0, std::memory_order_release);
    return false;
  }
  // Fill the hole with the chain's last entry (possibly itself). Emptied
  // blocks stay in the chain for reuse, as in STINGER.
  Block* tail = heads_[u];
  while (tail->next != nullptr && tail->next->count > 0) tail = tail->next;
  hole_block->entries[hole_idx] = tail->entries[tail->count - 1];
  --tail->count;
  arcs_.fetch_sub(1, std::memory_order_relaxed);
  locks_[u].store(0, std::memory_order_release);
  return true;
}

StingerStreamingCC::StingerStreamingCC(NodeId num_nodes)
    : graph_(num_nodes), labels_(num_nodes) {
  for (NodeId v = 0; v < num_nodes; ++v) labels_[v] = v;
}

double StingerStreamingCC::InsertBatch(const std::vector<Edge>& batch) {
  // Adjacency maintenance (not counted, per the paper's protocol).
  ParallelFor(0, batch.size(), [&](size_t i) {
    graph_.InsertArc(batch[i].u, batch[i].v);
    graph_.InsertArc(batch[i].v, batch[i].u);
  });
  const auto start = std::chrono::steady_clock::now();
  // Label maintenance: one relabeling sweep per component merge.
  for (const Edge& e : batch) {
    const NodeId lu = labels_[e.u];
    const NodeId lv = labels_[e.v];
    if (lu == lv) continue;
    const NodeId winner = std::min(lu, lv);
    const NodeId loser = std::max(lu, lv);
    ParallelFor(0, labels_.size(), [&](size_t v) {
      if (labels_[v] == loser) labels_[v] = winner;
    });
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

double StingerStreamingCC::EraseBatch(const std::vector<Edge>& batch) {
  // Adjacency maintenance (not counted, matching InsertBatch).
  ParallelFor(0, batch.size(), [&](size_t i) {
    graph_.RemoveArc(batch[i].u, batch[i].v);
    graph_.RemoveArc(batch[i].v, batch[i].u);
  });
  const auto start = std::chrono::steady_clock::now();
  // Label maintenance: a deletion between differently-labeled vertices is
  // free; one inside a component BFSes the endpoint's side to test for a
  // split, and a split relabels both sides by one parallel sweep.
  std::vector<uint8_t> side(labels_.size(), 0);
  std::vector<NodeId> stack;
  std::vector<NodeId> reached;
  for (const Edge& e : batch) {
    if (e.u == e.v || labels_[e.u] != labels_[e.v]) continue;
    const NodeId old_label = labels_[e.u];
    stack.assign(1, e.u);
    reached.assign(1, e.u);
    side[e.u] = 1;
    bool connected = false;
    while (!stack.empty() && !connected) {
      const NodeId x = stack.back();
      stack.pop_back();
      graph_.MapNeighbors(x, [&](NodeId y) {
        if (y == e.v) connected = true;
        if (side[y] == 0 && labels_[y] == old_label) {
          side[y] = 1;
          reached.push_back(y);
          stack.push_back(y);
        }
      });
    }
    if (!connected) {
      // Split: each part takes its minimum vertex id as the new label
      // (preserving the labels-are-minima invariant of the merge path).
      NodeId min_u_side = reached[0];
      for (const NodeId r : reached) min_u_side = std::min(min_u_side, r);
      NodeId min_v_side = kInvalidNode;
      for (NodeId v = 0; v < static_cast<NodeId>(labels_.size()); ++v) {
        if (labels_[v] == old_label && side[v] == 0) {
          min_v_side = v;
          break;
        }
      }
      ParallelFor(0, labels_.size(), [&](size_t v) {
        if (labels_[v] == old_label) {
          labels_[v] = side[v] != 0 ? min_u_side : min_v_side;
        }
      });
    }
    for (const NodeId r : reached) side[r] = 0;
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace connectit
