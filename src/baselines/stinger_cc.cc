#include "src/baselines/stinger_cc.h"

#include <chrono>

#include "src/parallel/thread_pool.h"

namespace connectit {

StingerGraph::StingerGraph(NodeId num_nodes)
    : num_nodes_(num_nodes),
      heads_(num_nodes, nullptr),
      locks_(std::make_unique<std::atomic<uint8_t>[]>(num_nodes)) {
  for (NodeId v = 0; v < num_nodes; ++v) {
    locks_[v].store(0, std::memory_order_relaxed);
  }
}

StingerGraph::~StingerGraph() {
  for (Block* b : heads_) {
    while (b != nullptr) {
      Block* next = b->next;
      delete b;
      b = next;
    }
  }
}

EdgeId StingerGraph::num_arcs() const { return arcs_.load(); }

void StingerGraph::InsertArc(NodeId u, NodeId v) {
  while (locks_[u].exchange(1, std::memory_order_acquire) != 0) {
  }
  // Walk the chain to the last block; append, allocating when full (the
  // STINGER insertion path, minus deletion-hole reuse).
  Block* b = heads_[u];
  if (b == nullptr) {
    b = new Block();
    heads_[u] = b;
  } else {
    while (b->next != nullptr) b = b->next;
    if (b->count == kBlockSize) {
      b->next = new Block();
      b = b->next;
    }
  }
  b->entries[b->count++] = v;
  arcs_.fetch_add(1, std::memory_order_relaxed);
  locks_[u].store(0, std::memory_order_release);
}

StingerStreamingCC::StingerStreamingCC(NodeId num_nodes)
    : graph_(num_nodes), labels_(num_nodes) {
  for (NodeId v = 0; v < num_nodes; ++v) labels_[v] = v;
}

double StingerStreamingCC::InsertBatch(const std::vector<Edge>& batch) {
  // Adjacency maintenance (not counted, per the paper's protocol).
  ParallelFor(0, batch.size(), [&](size_t i) {
    graph_.InsertArc(batch[i].u, batch[i].v);
    graph_.InsertArc(batch[i].v, batch[i].u);
  });
  const auto start = std::chrono::steady_clock::now();
  // Label maintenance: one relabeling sweep per component merge.
  for (const Edge& e : batch) {
    const NodeId lu = labels_[e.u];
    const NodeId lv = labels_[e.v];
    if (lu == lv) continue;
    const NodeId winner = std::min(lu, lv);
    const NodeId loser = std::max(lu, lv);
    ParallelFor(0, labels_.size(), [&](size_t v) {
      if (labels_[v] == loser) labels_[v] = winner;
    });
  }
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

}  // namespace connectit
