// GAPBS-style Shiloach-Vishkin (paper §4.3): the classic component-array
// formulation with plain racy hook writes, as shipped in the GAP Benchmark
// Suite. Kept as a faithful comparison target; ConnectIt's own SV variant
// (src/sv/) uses WriteMin hooks instead.

#ifndef CONNECTIT_BASELINES_GAPBS_SV_H_
#define CONNECTIT_BASELINES_GAPBS_SV_H_

#include <vector>

#include "src/graph/csr.h"

namespace connectit {

std::vector<NodeId> GapbsShiloachVishkin(const Graph& graph);

}  // namespace connectit

#endif  // CONNECTIT_BASELINES_GAPBS_SV_H_
