// WorkEfficientCC (Shun, Dhulipala, Blelloch; paper §4.3): the provably
// work-efficient parallel connectivity algorithm based on recursively
// applying low-diameter decomposition and graph contraction.

#ifndef CONNECTIT_BASELINES_WORKEFFICIENT_CC_H_
#define CONNECTIT_BASELINES_WORKEFFICIENT_CC_H_

#include <vector>

#include "src/graph/csr.h"

namespace connectit {

std::vector<NodeId> WorkEfficientCC(const Graph& graph, double beta = 0.2,
                                    uint64_t seed = 11);

}  // namespace connectit

#endif  // CONNECTIT_BASELINES_WORKEFFICIENT_CC_H_
