#include "src/baselines/bfscc.h"

#include "src/algo/bfs.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

std::vector<NodeId> BfsCC(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> labels(n, kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (labels[v] != kInvalidNode) continue;
    if (graph.degree(v) == 0) {  // isolated vertex: skip the BFS machinery
      labels[v] = v;
      continue;
    }
    const BfsResult bfs = Bfs(graph, v);
    ParallelFor(0, n, [&](size_t u) {
      if (bfs.parents[u] != kInvalidNode) labels[u] = v;
    });
  }
  return labels;
}

}  // namespace connectit
