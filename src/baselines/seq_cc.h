// Sequential union-find connectivity: the simplest correct baseline and the
// single-thread reference point for speedup numbers.

#ifndef CONNECTIT_BASELINES_SEQ_CC_H_
#define CONNECTIT_BASELINES_SEQ_CC_H_

#include <vector>

#include "src/graph/csr.h"

namespace connectit {

// Canonical labels via sequential union-find with path halving and union by
// ID (label = min vertex of component).
std::vector<NodeId> SequentialUnionFindCC(const Graph& graph);

}  // namespace connectit

#endif  // CONNECTIT_BASELINES_SEQ_CC_H_
