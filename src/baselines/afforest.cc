#include "src/baselines/afforest.h"

#include "src/core/connectit.h"
#include "src/core/frequent.h"
#include "src/parallel/thread_pool.h"
#include "src/unionfind/dsu.h"

namespace connectit {

std::vector<NodeId> AfforestCC(const Graph& graph, uint32_t neighbor_rounds) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> labels = IdentityLabels(n);
  Dsu<UniteOption::kAsync, FindOption::kHalve> dsu(labels.data(), n);
  // Sampling phase: link the first `neighbor_rounds` neighbors of every
  // vertex (deterministic first-k rule of the original Afforest).
  for (uint32_t r = 0; r < neighbor_rounds; ++r) {
    ParallelFor(
        0, n,
        [&](size_t ui) {
          const NodeId u = static_cast<NodeId>(ui);
          if (graph.degree(u) > r) dsu.Unite(u, graph.neighbors(u)[r]);
        },
        /*grain=*/128);
  }
  FullyCompressParents(labels.data(), n);
  const NodeId frequent = IdentifyFrequentSampled(labels).label;
  const std::vector<uint8_t> skip = MakeSkipMask(labels, frequent);
  // Finish phase: for every vertex outside the frequent component, link its
  // remaining edges.
  ParallelFor(
      0, n,
      [&](size_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        if (skip[u]) return;
        const auto nbrs = graph.neighbors(u);
        for (EdgeId j = neighbor_rounds; j < nbrs.size(); ++j) {
          dsu.Unite(u, nbrs[j]);
        }
      },
      /*grain=*/64);
  FullyCompressParents(labels.data(), n);
  return labels;
}

}  // namespace connectit
