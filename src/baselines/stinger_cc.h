// A STINGER-like streaming connected-components baseline (paper §4.4.3).
//
// STINGER stores a dynamic graph as per-vertex chains of fixed-size edge
// blocks with fine-grained locking, and maintains component labels under
// insertions with the algorithm of McColl et al.: when an inserted edge
// joins two components, the smaller label wins and every vertex carrying
// the losing label is relabeled by a parallel sweep over the vertex array.
// The per-merge O(n) sweep — the price STINGER pays for supporting
// deletions — is what ConnectIt's Table 5 comparison measures.
//
// This is a clean-room reimplementation of the published algorithm (we do
// not have the original system); see DESIGN.md §4.

#ifndef CONNECTIT_BASELINES_STINGER_CC_H_
#define CONNECTIT_BASELINES_STINGER_CC_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/graph/types.h"

namespace connectit {

// Dynamic blocked adjacency structure in the STINGER style.
class StingerGraph {
 public:
  static constexpr size_t kBlockSize = 14;  // edges per block, as in STINGER

  explicit StingerGraph(NodeId num_nodes);
  ~StingerGraph();

  StingerGraph(const StingerGraph&) = delete;
  StingerGraph& operator=(const StingerGraph&) = delete;

  // Inserts the directed arc u -> v (walks u's block chain under u's lock).
  void InsertArc(NodeId u, NodeId v);

  // Removes one copy of the directed arc u -> v (swap-remove with the
  // chain's last entry, the STINGER deletion-hole discipline). Returns
  // false if the arc is not present.
  bool RemoveArc(NodeId u, NodeId v);

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_arcs() const;

  // Invokes fn(v) for each neighbor of u (not thread-safe vs. inserts to u).
  template <typename F>
  void MapNeighbors(NodeId u, F&& fn) const;

 private:
  struct Block {
    NodeId entries[kBlockSize];
    uint32_t count = 0;
    Block* next = nullptr;
  };

  NodeId num_nodes_ = 0;
  std::vector<Block*> heads_;
  std::unique_ptr<std::atomic<uint8_t>[]> locks_;
  std::atomic<EdgeId> arcs_{0};
};

// Streaming CC over a StingerGraph.
class StingerStreamingCC {
 public:
  explicit StingerStreamingCC(NodeId num_nodes);

  // Inserts a batch of undirected edges, maintaining labels. Returns the
  // time spent updating the labeling only (seconds), excluding adjacency
  // maintenance, matching the paper's measurement protocol.
  double InsertBatch(const std::vector<Edge>& batch);

  // Deletes a batch of undirected edges, maintaining labels in the McColl
  // style: each deletion inside a component triggers a BFS over the
  // component to test whether it split, and a split pays one parallel
  // O(n) relabeling sweep — the deletion-side mirror of the per-merge
  // sweep above. Returns the label-maintenance time only (seconds).
  double EraseBatch(const std::vector<Edge>& batch);

  const std::vector<NodeId>& labels() const { return labels_; }
  StingerGraph& graph() { return graph_; }

 private:
  StingerGraph graph_;
  std::vector<NodeId> labels_;
};

// ---- template definition ----

template <typename F>
void StingerGraph::MapNeighbors(NodeId u, F&& fn) const {
  for (const Block* b = heads_[u]; b != nullptr; b = b->next) {
    for (uint32_t i = 0; i < b->count; ++i) fn(b->entries[i]);
  }
}

}  // namespace connectit

#endif  // CONNECTIT_BASELINES_STINGER_CC_H_
