// GAPBS-style Afforest (Sutton, Ben-Nun, Barak; paper §4.3): link the first
// k edges of every vertex, skip the most frequent component found, and
// finish the remaining vertices with all of their edges.

#ifndef CONNECTIT_BASELINES_AFFOREST_H_
#define CONNECTIT_BASELINES_AFFOREST_H_

#include <vector>

#include "src/graph/csr.h"

namespace connectit {

std::vector<NodeId> AfforestCC(const Graph& graph, uint32_t neighbor_rounds = 2);

}  // namespace connectit

#endif  // CONNECTIT_BASELINES_AFFOREST_H_
