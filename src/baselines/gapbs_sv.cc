#include "src/baselines/gapbs_sv.h"

#include <atomic>

#include "src/parallel/atomics.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

std::vector<NodeId> GapbsShiloachVishkin(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> comp(n);
  ParallelFor(0, n, [&](size_t v) { comp[v] = static_cast<NodeId>(v); });
  bool change = true;
  while (change) {
    change = false;
    std::atomic<bool> changed{false};
    graph.MapArcs([&](NodeId u, NodeId v) {
      const NodeId cu = AtomicLoadRelaxed(&comp[u]);
      const NodeId cv = AtomicLoadRelaxed(&comp[v]);
      // Hook: if u's component is smaller and v's component id is a
      // "top-level" entry, adopt it (plain write, benign race — the round
      // loop re-runs until stable, as in GAPBS).
      if (cu < cv && cv == AtomicLoadRelaxed(&comp[cv])) {
        AtomicStore(&comp[cv], cu);
        changed.store(true, std::memory_order_relaxed);
      }
    });
    // Pointer jumping.
    ParallelFor(0, n, [&](size_t vi) {
      const NodeId v = static_cast<NodeId>(vi);
      NodeId c = AtomicLoadRelaxed(&comp[v]);
      while (c != AtomicLoadRelaxed(&comp[c])) c = AtomicLoadRelaxed(&comp[c]);
      AtomicStore(&comp[v], c);
    });
    change = changed.load();
  }
  return comp;
}

}  // namespace connectit
