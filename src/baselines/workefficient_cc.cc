#include "src/baselines/workefficient_cc.h"

#include <atomic>

#include "src/algo/ldd.h"
#include "src/algo/verify.h"
#include "src/graph/builder.h"
#include "src/parallel/primitives.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

namespace {

std::vector<NodeId> Recurse(const Graph& graph, double beta, uint64_t seed,
                            int depth) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> labels(n);
  if (graph.num_arcs() == 0) {
    ParallelFor(0, n, [&](size_t v) { labels[v] = static_cast<NodeId>(v); });
    return labels;
  }
  if (depth > 48) {
    // Safety valve: adversarial shapes where the LDD stops making progress.
    return SequentialComponents(graph);
  }
  LddOptions options;
  options.beta = beta;
  options.permute = true;
  options.seed = seed;
  const LddResult ldd = LowDiameterDecomposition(graph, options);

  // Renumber cluster centers densely.
  std::vector<NodeId> centers = ParallelPack<NodeId>(
      n, [&](size_t v) { return ldd.clusters[v] == v; },
      [](size_t v) { return static_cast<NodeId>(v); });
  const NodeId k = static_cast<NodeId>(centers.size());
  std::vector<NodeId> index(n, kInvalidNode);
  ParallelFor(0, k, [&](size_t i) {
    index[centers[i]] = static_cast<NodeId>(i);
  });

  // Contracted edge list: one entry per inter-cluster arc with u < v after
  // renumbering (BuildGraph dedupes parallel edges).
  std::vector<EdgeId> counts(static_cast<size_t>(n) + 1, 0);
  ParallelFor(0, n, [&](size_t ui) {
    const NodeId u = static_cast<NodeId>(ui);
    const NodeId cu = index[ldd.clusters[u]];
    EdgeId c = 0;
    for (NodeId v : graph.neighbors(u)) {
      const NodeId cv = index[ldd.clusters[v]];
      c += (cu < cv) ? 1 : 0;
    }
    counts[ui] = c;
  });
  const EdgeId total = ScanExclusive(counts.data(), n);
  EdgeList contracted;
  contracted.num_nodes = k;
  contracted.edges.resize(total);
  ParallelFor(0, n, [&](size_t ui) {
    const NodeId u = static_cast<NodeId>(ui);
    const NodeId cu = index[ldd.clusters[u]];
    EdgeId pos = counts[ui];
    for (NodeId v : graph.neighbors(u)) {
      const NodeId cv = index[ldd.clusters[v]];
      if (cu < cv) contracted.edges[pos++] = {cu, cv};
    }
  });
  const Graph contracted_graph = BuildGraph(contracted);
  const std::vector<NodeId> sub =
      Recurse(contracted_graph, beta, seed * 0x9e37 + 1, depth + 1);
  // Map back: v's component = the original id of the center representing
  // the contracted component of v's cluster.
  ParallelFor(0, n, [&](size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    labels[v] = centers[sub[index[ldd.clusters[v]]]];
  });
  return labels;
}

}  // namespace

std::vector<NodeId> WorkEfficientCC(const Graph& graph, double beta,
                                    uint64_t seed) {
  return Recurse(graph, beta, seed, 0);
}

}  // namespace connectit
