#include "src/baselines/seq_cc.h"

#include <numeric>

namespace connectit {

std::vector<NodeId> SequentialUnionFindCC(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> parent(n);
  std::iota(parent.begin(), parent.end(), NodeId{0});
  auto find = [&](NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.neighbors(u)) {
      if (v <= u) continue;
      NodeId ru = find(u);
      NodeId rv = find(v);
      if (ru == rv) continue;
      // Union by ID keeps the minimum as the root.
      if (ru < rv) {
        parent[rv] = ru;
      } else {
        parent[ru] = rv;
      }
    }
  }
  std::vector<NodeId> labels(n);
  for (NodeId v = 0; v < n; ++v) labels[v] = find(v);
  return labels;
}

}  // namespace connectit
