#include "src/baselines/edge_primitives.h"

#include <vector>

#include "src/parallel/primitives.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

uint64_t MapEdges(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<uint64_t> out(n);
  ParallelFor(
      0, n,
      [&](size_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        uint64_t acc = 0;
        for (NodeId v : graph.neighbors(u)) {
          acc += 1 + (v & 1);  // touch the value so the scan is not elided
        }
        out[u] = acc;
      },
      /*grain=*/128);
  return ParallelSum<uint64_t>(0, n, [&](size_t v) { return out[v]; });
}

uint64_t GatherEdges(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<uint32_t> data(n);
  ParallelFor(0, n, [&](size_t v) { data[v] = static_cast<uint32_t>(v * 2654435761u); });
  std::vector<uint64_t> out(n);
  ParallelFor(
      0, n,
      [&](size_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        uint64_t acc = 0;
        for (NodeId v : graph.neighbors(u)) acc += data[v];
        out[u] = acc;
      },
      /*grain=*/128);
  return ParallelSum<uint64_t>(0, n, [&](size_t v) { return out[v]; });
}

}  // namespace connectit
