// BFSCC (Ligra's BFS-based connectivity, paper §4.3): computes each
// component by running a parallel direction-optimizing BFS from the first
// uncovered vertex. Fast on low-diameter graphs with few components; degrades
// with diameter and component count.

#ifndef CONNECTIT_BASELINES_BFSCC_H_
#define CONNECTIT_BASELINES_BFSCC_H_

#include <vector>

#include "src/graph/csr.h"

namespace connectit {

std::vector<NodeId> BfsCC(const Graph& graph);

}  // namespace connectit

#endif  // CONNECTIT_BASELINES_BFSCC_H_
