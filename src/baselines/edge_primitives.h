// MapEdges / GatherEdges (paper Appendix C.4.1): basic graph primitives used
// as empirical lower bounds on connectivity performance. MapEdges reads
// every edge sequentially (the cost of scanning the graph); GatherEdges
// additionally performs one indirect read per edge into a vertex-indexed
// array (the access pattern every min-based connectivity algorithm incurs).

#ifndef CONNECTIT_BASELINES_EDGE_PRIMITIVES_H_
#define CONNECTIT_BASELINES_EDGE_PRIMITIVES_H_

#include <cstdint>

#include "src/graph/csr.h"

namespace connectit {

// Sums 1 per arc into per-vertex accumulators; returns total (== num_arcs).
// The return value exists to keep the traversal observable.
uint64_t MapEdges(const Graph& graph);

// For every arc (u, v), reads data[v] from a vertex-indexed array and
// accumulates it; returns the checksum.
uint64_t GatherEdges(const Graph& graph);

}  // namespace connectit

#endif  // CONNECTIT_BASELINES_EDGE_PRIMITIVES_H_
