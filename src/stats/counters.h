// Software instrumentation counters (paper §4.1.1 and Appendix C.1).
//
// The paper annotates union-find executions with the Max Path Length (MPL),
// Total Path Length (TPL), LLC misses, and memory-controller traffic. The
// first two are algorithmic and reproduced exactly; the hardware counters
// are replaced by a deterministic software proxy counting parent-array reads
// and writes, which are precisely the accesses the hardware counters
// observed (see DESIGN.md §4).
//
// Counters are process-global and disabled by default; enabling them adds
// 10-20% overhead, matching the paper's remark about its instrumentation.

#ifndef CONNECTIT_STATS_COUNTERS_H_
#define CONNECTIT_STATS_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace connectit::stats {

struct Snapshot {
  uint64_t total_path_length = 0;
  uint64_t max_path_length = 0;
  uint64_t parent_reads = 0;
  uint64_t parent_writes = 0;
  uint64_t rounds = 0;
};

namespace internal {
inline std::atomic<bool> g_enabled{false};
inline std::atomic<uint64_t> g_tpl{0};
inline std::atomic<uint64_t> g_mpl{0};
inline std::atomic<uint64_t> g_reads{0};
inline std::atomic<uint64_t> g_writes{0};
inline std::atomic<uint64_t> g_rounds{0};
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

inline void Reset() {
  internal::g_tpl.store(0, std::memory_order_relaxed);
  internal::g_mpl.store(0, std::memory_order_relaxed);
  internal::g_reads.store(0, std::memory_order_relaxed);
  internal::g_writes.store(0, std::memory_order_relaxed);
  internal::g_rounds.store(0, std::memory_order_relaxed);
}

// Records one traversed path of `len` parent hops.
inline void RecordPath(uint64_t len) {
  if (!Enabled()) return;
  internal::g_tpl.fetch_add(len, std::memory_order_relaxed);
  uint64_t cur = internal::g_mpl.load(std::memory_order_relaxed);
  while (len > cur &&
         !internal::g_mpl.compare_exchange_weak(cur, len,
                                                std::memory_order_relaxed)) {
  }
}

inline void RecordParentReads(uint64_t n) {
  if (Enabled()) internal::g_reads.fetch_add(n, std::memory_order_relaxed);
}

inline void RecordParentWrites(uint64_t n) {
  if (Enabled()) internal::g_writes.fetch_add(n, std::memory_order_relaxed);
}

inline void RecordRound() {
  if (Enabled()) internal::g_rounds.fetch_add(1, std::memory_order_relaxed);
}

inline Snapshot Read() {
  Snapshot s;
  s.total_path_length = internal::g_tpl.load(std::memory_order_relaxed);
  s.max_path_length = internal::g_mpl.load(std::memory_order_relaxed);
  s.parent_reads = internal::g_reads.load(std::memory_order_relaxed);
  s.parent_writes = internal::g_writes.load(std::memory_order_relaxed);
  s.rounds = internal::g_rounds.load(std::memory_order_relaxed);
  return s;
}

// RAII: enables counters on construction and restores the previous state.
class ScopedEnable {
 public:
  ScopedEnable() : previous_(Enabled()) {
    Reset();
    SetEnabled(true);
  }
  ~ScopedEnable() { SetEnabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

}  // namespace connectit::stats

#endif  // CONNECTIT_STATS_COUNTERS_H_
