// Software instrumentation counters (paper §4.1.1 and Appendix C.1).
//
// The paper annotates union-find executions with the Max Path Length (MPL),
// Total Path Length (TPL), LLC misses, and memory-controller traffic. The
// first two are algorithmic and reproduced exactly; the hardware counters
// are replaced by a deterministic software proxy counting parent-array reads
// and writes, which are precisely the accesses the hardware counters
// observed (see DESIGN.md §4).
//
// Counters are process-global and disabled by default; enabling them adds
// 10-20% overhead, matching the paper's remark about its instrumentation.

#ifndef CONNECTIT_STATS_COUNTERS_H_
#define CONNECTIT_STATS_COUNTERS_H_

#include <atomic>
#include <cstdint>

namespace connectit::stats {

struct Snapshot {
  uint64_t total_path_length = 0;
  uint64_t max_path_length = 0;
  uint64_t parent_reads = 0;
  uint64_t parent_writes = 0;
  uint64_t rounds = 0;
};

namespace internal {
inline std::atomic<bool> g_enabled{false};
inline std::atomic<uint64_t> g_tpl{0};
inline std::atomic<uint64_t> g_mpl{0};
inline std::atomic<uint64_t> g_reads{0};
inline std::atomic<uint64_t> g_writes{0};
inline std::atomic<uint64_t> g_rounds{0};
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

inline void Reset() {
  internal::g_tpl.store(0, std::memory_order_relaxed);
  internal::g_mpl.store(0, std::memory_order_relaxed);
  internal::g_reads.store(0, std::memory_order_relaxed);
  internal::g_writes.store(0, std::memory_order_relaxed);
  internal::g_rounds.store(0, std::memory_order_relaxed);
}

// Records one traversed path of `len` parent hops.
inline void RecordPath(uint64_t len) {
  if (!Enabled()) return;
  internal::g_tpl.fetch_add(len, std::memory_order_relaxed);
  uint64_t cur = internal::g_mpl.load(std::memory_order_relaxed);
  while (len > cur &&
         !internal::g_mpl.compare_exchange_weak(cur, len,
                                                std::memory_order_relaxed)) {
  }
}

inline void RecordParentReads(uint64_t n) {
  if (Enabled()) internal::g_reads.fetch_add(n, std::memory_order_relaxed);
}

inline void RecordParentWrites(uint64_t n) {
  if (Enabled()) internal::g_writes.fetch_add(n, std::memory_order_relaxed);
}

inline void RecordRound() {
  if (Enabled()) internal::g_rounds.fetch_add(1, std::memory_order_relaxed);
}

inline Snapshot Read() {
  Snapshot s;
  s.total_path_length = internal::g_tpl.load(std::memory_order_relaxed);
  s.max_path_length = internal::g_mpl.load(std::memory_order_relaxed);
  s.parent_reads = internal::g_reads.load(std::memory_order_relaxed);
  s.parent_writes = internal::g_writes.load(std::memory_order_relaxed);
  s.rounds = internal::g_rounds.load(std::memory_order_relaxed);
  return s;
}

// ---- serving-layer counters (snapshot publication / epoch reclamation,
// see src/parallel/epoch.h and the Connectivity façade) ----
//
// Unlike the algorithmic counters above these are always on: they tick
// once per *publication* or *reclamation pass* (mutator-path events,
// thousands per second at most), never per query, so there is no
// measurable overhead to gate.

struct ServingSnapshot {
  uint64_t snapshot_publications = 0;  // atomic pointer swaps of a labeling
  uint64_t epoch_advances = 0;         // grace periods opened
  uint64_t snapshots_retired = 0;      // blocks handed to deferred reclaim
  uint64_t snapshots_reclaimed = 0;    // blocks actually freed
  uint64_t label_refreshes = 0;        // shared-lock-mode lazy Θ(n) refreshes
  // ---- publication cadence (Connectivity Spec::PublishEvery/
  // AdaptivePublication): batches the cadence held back, the cumulative
  // Θ(n) publication cost that justifies holding them back, and the k the
  // adaptive policy last chose (a gauge, not a sum) ----
  uint64_t publication_skips = 0;      // Insert batches not published
  uint64_t publication_cost_us = 0;    // total µs spent materializing+swapping
  uint64_t publication_cadence_k = 1;  // last cadence used (gauge)
  // ---- batch-deletion path (Connectivity::Erase / DynamicForest) ----
  uint64_t erase_batches = 0;          // Erase calls applied
  uint64_t edges_erased = 0;           // edges actually removed
  uint64_t erase_misses = 0;           // absent-edge / self-loop no-ops
  uint64_t forest_edge_hits = 0;       // deleted edges that were forest edges
  uint64_t replacement_searches = 0;   // affected components searched
  uint64_t components_split = 0;       // splits (no surviving replacement)
  // Retired-but-not-freed blocks still pinned by an epoch or a held
  // Snapshot (the deferred-reclamation backlog).
  uint64_t reclaim_backlog() const {
    return snapshots_retired - snapshots_reclaimed;
  }
};

namespace internal {
inline std::atomic<uint64_t> g_snapshot_publications{0};
inline std::atomic<uint64_t> g_epoch_advances{0};
inline std::atomic<uint64_t> g_snapshots_retired{0};
inline std::atomic<uint64_t> g_snapshots_reclaimed{0};
inline std::atomic<uint64_t> g_label_refreshes{0};
inline std::atomic<uint64_t> g_publication_skips{0};
inline std::atomic<uint64_t> g_publication_cost_us{0};
inline std::atomic<uint64_t> g_publication_cadence_k{1};
inline std::atomic<uint64_t> g_erase_batches{0};
inline std::atomic<uint64_t> g_edges_erased{0};
inline std::atomic<uint64_t> g_erase_misses{0};
inline std::atomic<uint64_t> g_forest_edge_hits{0};
inline std::atomic<uint64_t> g_replacement_searches{0};
inline std::atomic<uint64_t> g_components_split{0};
}  // namespace internal

inline void RecordSnapshotPublication() {
  internal::g_snapshot_publications.fetch_add(1, std::memory_order_relaxed);
}
inline void RecordEpochAdvance() {
  internal::g_epoch_advances.fetch_add(1, std::memory_order_relaxed);
}
inline void RecordSnapshotRetired() {
  internal::g_snapshots_retired.fetch_add(1, std::memory_order_relaxed);
}
inline void RecordSnapshotReclaimed() {
  internal::g_snapshots_reclaimed.fetch_add(1, std::memory_order_relaxed);
}
inline void RecordLabelRefresh() {
  internal::g_label_refreshes.fetch_add(1, std::memory_order_relaxed);
}
// One Insert batch the cadence policy chose not to publish.
inline void RecordPublicationSkip() {
  internal::g_publication_skips.fetch_add(1, std::memory_order_relaxed);
}
// One publication's measured Θ(n) cost and the cadence in force when it ran.
inline void RecordPublicationCost(uint64_t micros, uint64_t cadence_k) {
  internal::g_publication_cost_us.fetch_add(micros,
                                            std::memory_order_relaxed);
  internal::g_publication_cadence_k.store(cadence_k,
                                          std::memory_order_relaxed);
}
// One call per applied Erase batch, with that batch's deletion tallies
// (see DynamicForest::EraseStats for the field semantics).
inline void RecordEraseBatch(uint64_t erased, uint64_t misses,
                             uint64_t forest_hits,
                             uint64_t replacement_searches,
                             uint64_t components_split) {
  internal::g_erase_batches.fetch_add(1, std::memory_order_relaxed);
  internal::g_edges_erased.fetch_add(erased, std::memory_order_relaxed);
  internal::g_erase_misses.fetch_add(misses, std::memory_order_relaxed);
  internal::g_forest_edge_hits.fetch_add(forest_hits,
                                         std::memory_order_relaxed);
  internal::g_replacement_searches.fetch_add(replacement_searches,
                                             std::memory_order_relaxed);
  internal::g_components_split.fetch_add(components_split,
                                         std::memory_order_relaxed);
}

inline ServingSnapshot ReadServing() {
  ServingSnapshot s;
  s.snapshot_publications =
      internal::g_snapshot_publications.load(std::memory_order_relaxed);
  s.epoch_advances =
      internal::g_epoch_advances.load(std::memory_order_relaxed);
  s.snapshots_retired =
      internal::g_snapshots_retired.load(std::memory_order_relaxed);
  s.snapshots_reclaimed =
      internal::g_snapshots_reclaimed.load(std::memory_order_relaxed);
  s.label_refreshes =
      internal::g_label_refreshes.load(std::memory_order_relaxed);
  s.publication_skips =
      internal::g_publication_skips.load(std::memory_order_relaxed);
  s.publication_cost_us =
      internal::g_publication_cost_us.load(std::memory_order_relaxed);
  s.publication_cadence_k =
      internal::g_publication_cadence_k.load(std::memory_order_relaxed);
  s.erase_batches = internal::g_erase_batches.load(std::memory_order_relaxed);
  s.edges_erased = internal::g_edges_erased.load(std::memory_order_relaxed);
  s.erase_misses = internal::g_erase_misses.load(std::memory_order_relaxed);
  s.forest_edge_hits =
      internal::g_forest_edge_hits.load(std::memory_order_relaxed);
  s.replacement_searches =
      internal::g_replacement_searches.load(std::memory_order_relaxed);
  s.components_split =
      internal::g_components_split.load(std::memory_order_relaxed);
  return s;
}

// For tests that assert deltas from a clean slate. Does not touch the
// algorithmic counters above (Reset does that).
inline void ResetServing() {
  internal::g_snapshot_publications.store(0, std::memory_order_relaxed);
  internal::g_epoch_advances.store(0, std::memory_order_relaxed);
  internal::g_snapshots_retired.store(0, std::memory_order_relaxed);
  internal::g_snapshots_reclaimed.store(0, std::memory_order_relaxed);
  internal::g_label_refreshes.store(0, std::memory_order_relaxed);
  internal::g_publication_skips.store(0, std::memory_order_relaxed);
  internal::g_publication_cost_us.store(0, std::memory_order_relaxed);
  internal::g_publication_cadence_k.store(1, std::memory_order_relaxed);
  internal::g_erase_batches.store(0, std::memory_order_relaxed);
  internal::g_edges_erased.store(0, std::memory_order_relaxed);
  internal::g_erase_misses.store(0, std::memory_order_relaxed);
  internal::g_forest_edge_hits.store(0, std::memory_order_relaxed);
  internal::g_replacement_searches.store(0, std::memory_order_relaxed);
  internal::g_components_split.store(0, std::memory_order_relaxed);
}

// ---- NUMA locality counters (src/unionfind/numa_dsu.h) ----
//
// Ticked only by the replicated-placement DSU, once per operation with the
// operation's hop tallies, so like the serving counters they are always on.
// On a single-node topology (k == 1) the replicated DSU falls back to the
// flat Dsu and none of these move.

struct LocalitySnapshot {
  // Parent hops resolved inside the calling node's replica (hint chains on
  // non-home nodes; home-node work walks the authoritative array directly
  // and is not counted here).
  uint64_t local_find_depth = 0;
  // Parent hops that had to read the authoritative (home-node) array from a
  // non-home node — each one is a remote DRAM hit on a real machine.
  uint64_t cross_node_find_depth = 0;
  // Roots installed into a local replica by adaptive compression (owner-bit
  // entries); monotone over the process lifetime.
  uint64_t cross_node_compressions = 0;
};

namespace internal {
inline std::atomic<uint64_t> g_local_find_depth{0};
inline std::atomic<uint64_t> g_cross_node_find_depth{0};
inline std::atomic<uint64_t> g_cross_node_compressions{0};
}  // namespace internal

// One call per replicated-DSU operation with its accumulated hop counts.
inline void RecordLocality(uint64_t local_depth, uint64_t cross_depth,
                           uint64_t compressions) {
  if (local_depth != 0) {
    internal::g_local_find_depth.fetch_add(local_depth,
                                           std::memory_order_relaxed);
  }
  if (cross_depth != 0) {
    internal::g_cross_node_find_depth.fetch_add(cross_depth,
                                                std::memory_order_relaxed);
  }
  if (compressions != 0) {
    internal::g_cross_node_compressions.fetch_add(compressions,
                                                  std::memory_order_relaxed);
  }
}

inline LocalitySnapshot ReadLocality() {
  LocalitySnapshot s;
  s.local_find_depth =
      internal::g_local_find_depth.load(std::memory_order_relaxed);
  s.cross_node_find_depth =
      internal::g_cross_node_find_depth.load(std::memory_order_relaxed);
  s.cross_node_compressions =
      internal::g_cross_node_compressions.load(std::memory_order_relaxed);
  return s;
}

inline void ResetLocality() {
  internal::g_local_find_depth.store(0, std::memory_order_relaxed);
  internal::g_cross_node_find_depth.store(0, std::memory_order_relaxed);
  internal::g_cross_node_compressions.store(0, std::memory_order_relaxed);
}

// ---- transport counters (src/serve/: wire protocol + connectit_server) ----
//
// Ticked by the serving subsystem's network layer: connection lifecycle and
// backpressure events on the server, frame/byte totals on both ends, and
// protocol_errors by the decode layer itself (protocol.cc ticks on every
// rejected header/payload, so a fuzzer hitting the parser is counted even
// without a server around it). Always on, like the serving counters:
// per-connection events and per-frame ticks are negligible next to a
// socket round trip. Printed by connectit_server --stats and returned to
// clients by the wire protocol's Stats probe.

struct TransportSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_dropped = 0;   // closed by error/protocol violation
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t backpressure_rejections = 0;  // mutations refused, queue full
  uint64_t protocol_errors = 0;          // frames rejected by the decoder
  uint64_t queue_depth_hwm = 0;          // mutation-queue high-water mark
};

namespace internal {
inline std::atomic<uint64_t> g_connections_accepted{0};
inline std::atomic<uint64_t> g_connections_dropped{0};
inline std::atomic<uint64_t> g_frames_in{0};
inline std::atomic<uint64_t> g_frames_out{0};
inline std::atomic<uint64_t> g_bytes_in{0};
inline std::atomic<uint64_t> g_bytes_out{0};
inline std::atomic<uint64_t> g_backpressure_rejections{0};
inline std::atomic<uint64_t> g_protocol_errors{0};
inline std::atomic<uint64_t> g_queue_depth_hwm{0};
}  // namespace internal

inline void RecordConnectionAccepted() {
  internal::g_connections_accepted.fetch_add(1, std::memory_order_relaxed);
}
inline void RecordConnectionDropped() {
  internal::g_connections_dropped.fetch_add(1, std::memory_order_relaxed);
}
inline void RecordFramesIn(uint64_t frames, uint64_t bytes) {
  internal::g_frames_in.fetch_add(frames, std::memory_order_relaxed);
  internal::g_bytes_in.fetch_add(bytes, std::memory_order_relaxed);
}
inline void RecordFramesOut(uint64_t frames, uint64_t bytes) {
  internal::g_frames_out.fetch_add(frames, std::memory_order_relaxed);
  internal::g_bytes_out.fetch_add(bytes, std::memory_order_relaxed);
}
inline void RecordBackpressureRejection() {
  internal::g_backpressure_rejections.fetch_add(1, std::memory_order_relaxed);
}
inline void RecordProtocolError() {
  internal::g_protocol_errors.fetch_add(1, std::memory_order_relaxed);
}
// Monotone max: the mutation queue's depth observed after an enqueue.
inline void RecordQueueDepth(uint64_t depth) {
  uint64_t cur = internal::g_queue_depth_hwm.load(std::memory_order_relaxed);
  while (depth > cur && !internal::g_queue_depth_hwm.compare_exchange_weak(
                            cur, depth, std::memory_order_relaxed)) {
  }
}

inline TransportSnapshot ReadTransport() {
  TransportSnapshot s;
  s.connections_accepted =
      internal::g_connections_accepted.load(std::memory_order_relaxed);
  s.connections_dropped =
      internal::g_connections_dropped.load(std::memory_order_relaxed);
  s.frames_in = internal::g_frames_in.load(std::memory_order_relaxed);
  s.frames_out = internal::g_frames_out.load(std::memory_order_relaxed);
  s.bytes_in = internal::g_bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = internal::g_bytes_out.load(std::memory_order_relaxed);
  s.backpressure_rejections =
      internal::g_backpressure_rejections.load(std::memory_order_relaxed);
  s.protocol_errors =
      internal::g_protocol_errors.load(std::memory_order_relaxed);
  s.queue_depth_hwm =
      internal::g_queue_depth_hwm.load(std::memory_order_relaxed);
  return s;
}

inline void ResetTransport() {
  internal::g_connections_accepted.store(0, std::memory_order_relaxed);
  internal::g_connections_dropped.store(0, std::memory_order_relaxed);
  internal::g_frames_in.store(0, std::memory_order_relaxed);
  internal::g_frames_out.store(0, std::memory_order_relaxed);
  internal::g_bytes_in.store(0, std::memory_order_relaxed);
  internal::g_bytes_out.store(0, std::memory_order_relaxed);
  internal::g_backpressure_rejections.store(0, std::memory_order_relaxed);
  internal::g_protocol_errors.store(0, std::memory_order_relaxed);
  internal::g_queue_depth_hwm.store(0, std::memory_order_relaxed);
}

// RAII: enables counters on construction and restores the previous state.
class ScopedEnable {
 public:
  ScopedEnable() : previous_(Enabled()) {
    Reset();
    SetEnabled(true);
  }
  ~ScopedEnable() { SetEnabled(previous_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

}  // namespace connectit::stats

#endif  // CONNECTIT_STATS_COUNTERS_H_
