// Versioned, checksummed binary wire protocol for the connectivity service.
//
// This is the framing layer the network serving subsystem (connectit_server,
// the client library, and bench_serving's multi-process mode) speaks over a
// TCP or Unix-domain stream. Design follows the .cgc container parser
// (src/graph/container.h): fixed little-endian layout, every frame
// self-validating via two checksums (header and payload), and the decoder
// rejecting malformed bytes with a *field-specific* error string instead of
// crashing, hanging, or misparsing — tests/protocol_fault_test.cc pins that
// contract by flipping and truncating every byte the way
// container_corruption_test.cc does for the on-disk format. Every rejection
// ticks stats::ReadTransport().protocol_errors, right in the decode layer,
// so a server counts hostile bytes without extra plumbing.
//
// Frame layout (all integers little-endian):
//
//   [0,  32)  FrameHeader
//   [32, 32 + payload_length)  opcode-specific payload
//
//   FrameHeader:
//     uint32 magic             kWireMagic ("CnW1")
//     uint8  version           kWireVersion
//     uint8  opcode            request Opcode; responses set kResponseBit
//     uint16 reserved          must be zero
//     uint64 request_id        echoed verbatim in the response frame
//     uint32 payload_length    <= kMaxPayloadBytes
//     uint32 payload_checksum  WireChecksum over the payload bytes
//     uint32 reserved2         must be zero
//     uint32 header_checksum   WireChecksum over the preceding 28 bytes
//
// Request/response payloads are defined per opcode below; every *response*
// payload begins with a one-byte Status so transport-level refusals
// (backpressure, bad request) need no opcode-specific body. Pipelining: a
// client may send any number of request frames before reading; the server
// answers each frame exactly once. Responses to the frames of one
// connection preserve request order for the read opcodes handled by the
// owning worker; mutation responses (applied by the writer thread) may
// interleave after later reads — request_id is the correlation key.
//
// The decode layer distinguishes "incomplete" (need more bytes — not an
// error, keep the connection) from "malformed" (field-specific error, tick
// protocol_errors, drop the connection: after a bad header the stream
// cannot be resynchronized).

#ifndef CONNECTIT_SERVE_PROTOCOL_H_
#define CONNECTIT_SERVE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/types.h"
#include "src/stats/counters.h"

namespace connectit::serve {

// "CnW1" read as a little-endian uint32 — distinct from both file magics so
// a client pointed at the wrong port gets "frame magic mismatch", not a
// misparse.
inline constexpr uint32_t kWireMagic = 0x31576e43;
inline constexpr uint8_t kWireVersion = 1;
// Caps one frame's payload (and so one InsertBatch). Large enough for a
// ~256k-edge batch, small enough that a hostile length field cannot make
// the server reserve unbounded memory.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 22;
inline constexpr size_t kFrameHeaderBytes = 32;

enum class Opcode : uint8_t {
  kComponent = 1,       // req: uint32 v            resp: uint32 label
  kSameComponent = 2,   // req: uint32 u, uint32 v  resp: uint8 connected
  kNumComponents = 3,   // req: empty               resp: uint32 count,
                        //                                uint64 version
  kComponentSizes = 4,  // req: uint32 max_entries  resp: uint32 count,
                        //   uint32 entries, entries x (uint32 rep, uint32 sz)
  kInsertBatch = 5,     // req: uint32 E, uint32 Q, E+Q x (uint32 u, uint32 v)
                        // resp: uint32 Q, Q x uint8 connected
  kEraseBatch = 6,      // same shape as kInsertBatch
  kStats = 7,           // req: empty  resp: StatsProbe (fixed uint64 fields)
};
inline constexpr uint8_t kResponseBit = 0x80;

// First payload byte of every response frame.
enum class Status : uint8_t {
  kOk = 0,
  kBackpressure = 1,   // mutation queue full: retry later, nothing applied
  kBadRequest = 2,     // opcode-specific payload failed validation
  kNotStreaming = 3,   // mutation before the server index entered streaming
  kShuttingDown = 4,   // server draining: connection closes after this frame
};

const char* ToString(Status status);

#pragma pack(push, 1)
struct FrameHeader {
  uint32_t magic = kWireMagic;
  uint8_t version = kWireVersion;
  uint8_t opcode = 0;
  uint16_t reserved = 0;
  uint64_t request_id = 0;
  uint32_t payload_length = 0;
  uint32_t payload_checksum = 0;
  uint32_t reserved2 = 0;
  uint32_t header_checksum = 0;  // over the 28 bytes preceding this field
};
#pragma pack(pop)
static_assert(sizeof(FrameHeader) == kFrameHeaderBytes,
              "wire header must stay 32 bytes");

// FNV-1a (32-bit) over `len` bytes; the frame checksum primitive.
uint32_t WireChecksum(const void* data, size_t len);

// ---- typed request/response bodies ----

struct MutateRequest {
  std::vector<Edge> edges;
  std::vector<Edge> queries;
};

struct MutateResponse {
  Status status = Status::kOk;
  std::vector<uint8_t> answers;  // one byte per query, kOk only
};

struct ComponentSizesEntry {
  NodeId representative = 0;
  NodeId size = 0;
};

// The kStats probe's fixed-layout body: the server's transport counters
// plus the serving-layer fields a client dashboard wants next to them.
// Extending it appends fields; the decoder accepts any payload at least as
// long as the fields it knows (forward compatibility within one version).
struct StatsProbe {
  Status status = Status::kOk;
  uint64_t connections_accepted = 0;
  uint64_t connections_dropped = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t backpressure_rejections = 0;
  uint64_t protocol_errors = 0;
  uint64_t queue_depth_hwm = 0;
  uint64_t snapshot_publications = 0;
  uint64_t publication_skips = 0;
  uint64_t publication_cadence_k = 0;
  uint64_t num_nodes = 0;
  uint64_t num_components = 0;
  uint64_t snapshot_version = 0;
};

// ---- encoding ----
//
// Encoders append one complete frame (header + payload) to *out, which is
// how the server reuses one per-connection output buffer with no
// per-request allocation. The request_id is caller-chosen and echoed back.

void AppendFrame(Opcode opcode, bool response, uint64_t request_id,
                 const uint8_t* payload, size_t payload_length,
                 std::vector<uint8_t>* out);

void AppendComponentRequest(uint64_t id, NodeId v, std::vector<uint8_t>* out);
void AppendSameComponentRequest(uint64_t id, NodeId u, NodeId v,
                                std::vector<uint8_t>* out);
void AppendNumComponentsRequest(uint64_t id, std::vector<uint8_t>* out);
void AppendComponentSizesRequest(uint64_t id, uint32_t max_entries,
                                 std::vector<uint8_t>* out);
void AppendMutateRequest(Opcode opcode, uint64_t id, const MutateRequest& req,
                         std::vector<uint8_t>* out);
void AppendStatsRequest(uint64_t id, std::vector<uint8_t>* out);

// Response encoders; a non-kOk status encodes as the status byte alone.
void AppendComponentResponse(uint64_t id, Status status, NodeId label,
                             std::vector<uint8_t>* out);
void AppendSameComponentResponse(uint64_t id, Status status, bool connected,
                                 std::vector<uint8_t>* out);
void AppendNumComponentsResponse(uint64_t id, Status status, NodeId count,
                                 uint64_t version, std::vector<uint8_t>* out);
void AppendComponentSizesResponse(uint64_t id, Status status, NodeId count,
                                  const std::vector<ComponentSizesEntry>& e,
                                  std::vector<uint8_t>* out);
void AppendMutateResponse(Opcode opcode, uint64_t id,
                          const MutateResponse& resp,
                          std::vector<uint8_t>* out);
void AppendStatsResponse(uint64_t id, const StatsProbe& probe,
                         std::vector<uint8_t>* out);
// Transport-level refusal for any opcode (status byte only payload).
void AppendStatusResponse(Opcode opcode, uint64_t id, Status status,
                          std::vector<uint8_t>* out);

// ---- decoding ----

// Validates the 32 header bytes at `data` (len >= kFrameHeaderBytes).
// Returns false with a field-specific diagnostic in *error — magic,
// version, reserved fields, opcode, payload length, header checksum — and
// ticks protocol_errors. Does not look at the payload.
bool DecodeFrameHeader(const uint8_t* data, size_t len, FrameHeader* out,
                       std::string* error);

// Verifies header.payload_checksum over the payload bytes.
bool ValidatePayload(const FrameHeader& header, const uint8_t* payload,
                     std::string* error);

// True if `opcode` (with kResponseBit stripped) names a known operation.
bool KnownOpcode(uint8_t opcode);
// True for the opcodes a server answers from a snapshot (no mutation).
bool IsReadOpcode(Opcode opcode);

// Opcode-specific request-body decoders. Each returns false with a
// field-specific error (and a protocol_errors tick) on any length or value
// violation; payload bytes are only read inside [payload, payload + len).
bool DecodeComponentRequest(const uint8_t* payload, size_t len, NodeId* v,
                            std::string* error);
bool DecodeSameComponentRequest(const uint8_t* payload, size_t len, NodeId* u,
                                NodeId* v, std::string* error);
bool DecodeNumComponentsRequest(const uint8_t* payload, size_t len,
                                std::string* error);
bool DecodeComponentSizesRequest(const uint8_t* payload, size_t len,
                                 uint32_t* max_entries, std::string* error);
bool DecodeMutateRequest(Opcode opcode, const uint8_t* payload, size_t len,
                         MutateRequest* out, std::string* error);
bool DecodeStatsRequest(const uint8_t* payload, size_t len,
                        std::string* error);

// Response-body decoders (client side). The leading status byte is always
// decoded; opcode-specific fields only when status == kOk.
bool DecodeComponentResponse(const uint8_t* payload, size_t len,
                             Status* status, NodeId* label,
                             std::string* error);
bool DecodeSameComponentResponse(const uint8_t* payload, size_t len,
                                 Status* status, bool* connected,
                                 std::string* error);
bool DecodeNumComponentsResponse(const uint8_t* payload, size_t len,
                                 Status* status, NodeId* count,
                                 uint64_t* version, std::string* error);
bool DecodeComponentSizesResponse(const uint8_t* payload, size_t len,
                                  Status* status, NodeId* count,
                                  std::vector<ComponentSizesEntry>* entries,
                                  std::string* error);
bool DecodeMutateResponse(const uint8_t* payload, size_t len,
                          MutateResponse* out, std::string* error);
bool DecodeStatsResponse(const uint8_t* payload, size_t len, StatsProbe* out,
                         std::string* error);

}  // namespace connectit::serve

#endif  // CONNECTIT_SERVE_PROTOCOL_H_
