#include "src/serve/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace connectit::serve {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Client::Client(ClientConfig config) : config_(std::move(config)) {}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  out_.clear();
  in_.clear();
  in_consumed_ = 0;
}

bool Client::ConnectOnce(std::string* error) {
  int fd = -1;
  sockaddr_un uaddr{};
  sockaddr_in taddr{};
  const sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
  if (!config_.unix_path.empty()) {
    fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    uaddr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(uaddr.sun_path)) {
      if (fd >= 0) close(fd);
      *error = "unix socket path too long: " + config_.unix_path;
      return false;
    }
    std::strncpy(uaddr.sun_path, config_.unix_path.c_str(),
                 sizeof(uaddr.sun_path) - 1);
    addr = reinterpret_cast<const sockaddr*>(&uaddr);
    addr_len = sizeof(uaddr);
  } else {
    fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    taddr.sin_family = AF_INET;
    taddr.sin_port = htons(config_.tcp_port);
    if (inet_pton(AF_INET, config_.tcp_host.c_str(), &taddr.sin_addr) != 1) {
      if (fd >= 0) close(fd);
      *error = "bad tcp host: " + config_.tcp_host;
      return false;
    }
    addr = reinterpret_cast<const sockaddr*>(&taddr);
    addr_len = sizeof(taddr);
  }
  if (fd < 0) {
    *error = Errno("socket");
    return false;
  }
  // Nonblocking connect so connect_timeout_ms can be enforced.
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (connect(fd, addr, addr_len) != 0 && errno != EINPROGRESS) {
    *error = Errno("connect");
    close(fd);
    return false;
  }
  pollfd pfd{fd, POLLOUT, 0};
  const int pr = poll(&pfd, 1, config_.connect_timeout_ms);
  if (pr <= 0) {
    *error = pr == 0 ? "connect timed out" : Errno("poll(connect)");
    close(fd);
    return false;
  }
  int so_error = 0;
  socklen_t so_len = sizeof(so_error);
  getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
  if (so_error != 0) {
    *error = std::string("connect: ") + std::strerror(so_error);
    close(fd);
    return false;
  }
  // Back to blocking: the client's socket writes are synchronous.
  fcntl(fd, F_SETFL, flags);
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return true;
}

bool Client::Connect(std::string* error) {
  Close();
  std::string last;
  for (int attempt = 0; attempt <= config_.max_connect_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.retry_backoff_ms));
    }
    if (ConnectOnce(&last)) return true;
  }
  if (error != nullptr) {
    *error = "connect failed after " +
             std::to_string(config_.max_connect_retries + 1) +
             " attempts: " + last;
  }
  return false;
}

// ---- pipelined mode ----

uint64_t Client::SendComponent(NodeId v) {
  const uint64_t id = next_id_++;
  AppendComponentRequest(id, v, &out_);
  return id;
}

uint64_t Client::SendSameComponent(NodeId u, NodeId v) {
  const uint64_t id = next_id_++;
  AppendSameComponentRequest(id, u, v, &out_);
  return id;
}

uint64_t Client::SendNumComponents() {
  const uint64_t id = next_id_++;
  AppendNumComponentsRequest(id, &out_);
  return id;
}

uint64_t Client::SendComponentSizes(uint32_t max_entries) {
  const uint64_t id = next_id_++;
  AppendComponentSizesRequest(id, max_entries, &out_);
  return id;
}

uint64_t Client::SendMutate(Opcode opcode, const MutateRequest& request) {
  const uint64_t id = next_id_++;
  AppendMutateRequest(opcode, id, request, &out_);
  return id;
}

uint64_t Client::SendStats() {
  const uint64_t id = next_id_++;
  AppendStatsRequest(id, &out_);
  return id;
}

bool Client::Flush(std::string* error) {
  size_t written = 0;
  while (written < out_.size()) {
    const ssize_t w = write(fd_, out_.data() + written, out_.size() - written);
    if (w > 0) {
      written += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (error != nullptr) *error = Errno("write");
    return false;
  }
  out_.clear();
  return true;
}

bool Client::Poll(Response* out, int timeout_ms, std::string* error) {
  const int64_t deadline = NowMs() + timeout_ms;
  while (true) {
    // Try to parse a complete frame from the buffer first.
    const size_t available = in_.size() - in_consumed_;
    if (available >= kFrameHeaderBytes) {
      const uint8_t* base = in_.data() + in_consumed_;
      FrameHeader header;
      std::string decode_error;
      if (!DecodeFrameHeader(base, available, &header, &decode_error)) {
        if (error != nullptr) *error = decode_error;
        return false;
      }
      const size_t frame_len = kFrameHeaderBytes + header.payload_length;
      if (available >= frame_len) {
        const uint8_t* payload = base + kFrameHeaderBytes;
        if (!ValidatePayload(header, payload, &decode_error)) {
          if (error != nullptr) *error = decode_error;
          return false;
        }
        if ((header.opcode & kResponseBit) == 0) {
          if (error != nullptr) *error = "server sent a request frame";
          return false;
        }
        if (header.payload_length == 0) {
          if (error != nullptr) *error = "response frame missing status byte";
          return false;
        }
        out->request_id = header.request_id;
        out->opcode =
            static_cast<Opcode>(header.opcode & ~kResponseBit);
        out->status = static_cast<Status>(payload[0]);
        out->payload.assign(payload, payload + header.payload_length);
        in_consumed_ += frame_len;
        if (in_consumed_ == in_.size()) {
          in_.clear();
          in_consumed_ = 0;
        } else if (in_consumed_ > (1u << 20)) {
          in_.erase(in_.begin(),
                    in_.begin() + static_cast<ptrdiff_t>(in_consumed_));
          in_consumed_ = 0;
        }
        return true;
      }
    }
    // Need more bytes. timeout_ms == 0 still makes one nonblocking
    // attempt (poll with zero timeout), so Poll(out, 0, ...) drains
    // whatever already arrived without ever sleeping.
    const int64_t remaining = deadline - NowMs();
    pollfd pfd{fd_, POLLIN, 0};
    const int pr =
        poll(&pfd, 1, remaining > 0 ? static_cast<int>(remaining) : 0);
    if (pr < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = Errno("poll");
      return false;
    }
    if (pr == 0) {
      if (error != nullptr) *error = "request timed out";
      return false;
    }
    uint8_t buf[64 * 1024];
    const ssize_t r = read(fd_, buf, sizeof(buf));
    if (r > 0) {
      in_.insert(in_.end(), buf, buf + r);
      continue;
    }
    if (r == 0) {
      if (error != nullptr) *error = "connection closed by server";
      return false;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (error != nullptr) *error = Errno("read");
    return false;
  }
}

// ---- blocking mode ----

bool Client::AwaitResponse(uint64_t id, Response* out, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  if (!Flush(error)) return false;
  const int64_t deadline = NowMs() + config_.request_timeout_ms;
  while (true) {
    const int64_t remaining = deadline - NowMs();
    if (remaining <= 0) {
      if (error != nullptr) *error = "request timed out";
      return false;
    }
    if (!Poll(out, static_cast<int>(remaining), error)) return false;
    if (out->request_id == id) return true;
    // A stale response from an earlier abandoned request: skip it.
  }
}

bool Client::Component(NodeId v, Status* status, NodeId* label,
                       std::string* error) {
  Response resp;
  if (!AwaitResponse(SendComponent(v), &resp, error)) return false;
  return DecodeComponentResponse(resp.payload.data(), resp.payload.size(),
                                 status, label, error);
}

bool Client::SameComponent(NodeId u, NodeId v, Status* status, bool* connected,
                           std::string* error) {
  Response resp;
  if (!AwaitResponse(SendSameComponent(u, v), &resp, error)) return false;
  return DecodeSameComponentResponse(resp.payload.data(), resp.payload.size(),
                                     status, connected, error);
}

bool Client::NumComponents(Status* status, NodeId* count, uint64_t* version,
                           std::string* error) {
  Response resp;
  if (!AwaitResponse(SendNumComponents(), &resp, error)) return false;
  return DecodeNumComponentsResponse(resp.payload.data(), resp.payload.size(),
                                     status, count, version, error);
}

bool Client::ComponentSizes(uint32_t max_entries, Status* status,
                            NodeId* count,
                            std::vector<ComponentSizesEntry>* entries,
                            std::string* error) {
  Response resp;
  if (!AwaitResponse(SendComponentSizes(max_entries), &resp, error)) {
    return false;
  }
  return DecodeComponentSizesResponse(resp.payload.data(),
                                      resp.payload.size(), status, count,
                                      entries, error);
}

bool Client::Mutate(Opcode opcode, const MutateRequest& request,
                    MutateResponse* response, std::string* error) {
  Response resp;
  if (!AwaitResponse(SendMutate(opcode, request), &resp, error)) return false;
  return DecodeMutateResponse(resp.payload.data(), resp.payload.size(),
                              response, error);
}

bool Client::Stats(StatsProbe* probe, std::string* error) {
  Response resp;
  if (!AwaitResponse(SendStats(), &resp, error)) return false;
  return DecodeStatsResponse(resp.payload.data(), resp.payload.size(), probe,
                             error);
}

}  // namespace connectit::serve
