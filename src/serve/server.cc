#include "src/serve/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

namespace connectit::serve {

namespace {

// Largest ComponentSizes reply: bounded so a hostile max_entries cannot
// make the server assemble an arbitrarily large frame.
constexpr uint32_t kMaxSizesEntries = 1u << 18;

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Server::Server(Connectivity* index, ServerConfig config)
    : index_(index), config_(std::move(config)) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    for (int fd : listen_fds_) close(fd);
    listen_fds_.clear();
    if (stop_event_fd_ >= 0) close(stop_event_fd_);
    stop_event_fd_ = -1;
    workers_.clear();
    return false;
  };
  if (started_) return fail("server already started");
  if (config_.unix_path.empty() && config_.tcp_port == 0) {
    return fail("no listener configured (need unix_path or tcp_port)");
  }

  if (!config_.unix_path.empty()) {
    const int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return fail(Errno("socket(AF_UNIX)"));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      close(fd);
      return fail("unix socket path too long: " + config_.unix_path);
    }
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    unlink(config_.unix_path.c_str());
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close(fd);
      return fail(Errno(("bind(" + config_.unix_path + ")").c_str()));
    }
    if (listen(fd, config_.listen_backlog) != 0 || !SetNonBlocking(fd)) {
      close(fd);
      return fail(Errno("listen(unix)"));
    }
    listen_fds_.push_back(fd);
  }

  if (config_.tcp_port != 0) {
    const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return fail(Errno("socket(AF_INET)"));
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.tcp_port);
    if (inet_pton(AF_INET, config_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      close(fd);
      return fail("bad tcp host: " + config_.tcp_host);
    }
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close(fd);
      return fail(Errno("bind(tcp)"));
    }
    if (listen(fd, config_.listen_backlog) != 0 || !SetNonBlocking(fd)) {
      close(fd);
      return fail(Errno("listen(tcp)"));
    }
    listen_fds_.push_back(fd);
  }

  stop_event_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (stop_event_fd_ < 0) return fail(Errno("eventfd(stop)"));

  workers_.clear();
  for (size_t i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    worker->completion_event_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (worker->epoll_fd < 0 || worker->completion_event_fd < 0) {
      return fail(Errno("epoll_create1/eventfd"));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = stop_event_fd_;
    epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, stop_event_fd_, &ev);
    ev.data.fd = worker->completion_event_fd;
    epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->completion_event_fd,
              &ev);
    for (int lfd : listen_fds_) {
      // EPOLLEXCLUSIVE: one worker wakes per pending accept, no dedicated
      // acceptor thread, no thundering herd.
      ev.events = EPOLLIN | EPOLLEXCLUSIVE;
      ev.data.fd = lfd;
      epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, lfd, &ev);
    }
    workers_.push_back(std::move(worker));
  }

  draining_ = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_stopping_ = false;
    queue_.clear();
  }
  started_ = true;
  writer_thread_ = std::thread([this] { WriterLoop(); });
  for (size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
  return true;
}

void Server::Stop() {
  if (!started_.exchange(false)) return;
  draining_ = true;
  // 1. Stop accepting: closed fds drop out of every epoll automatically.
  for (int fd : listen_fds_) close(fd);
  // 2. Drain the mutation queue: the writer applies every batch already
  //    accepted (workers refuse new ones with kShuttingDown), then exits.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_stopping_ = true;
  }
  queue_cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();
  // 3. Wake workers: the stop eventfd is signalled but never read, so the
  //    level-triggered event reaches every worker's epoll.
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(stop_event_fd_, &one, sizeof(one));
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& worker : workers_) {
    if (worker->completion_event_fd >= 0) close(worker->completion_event_fd);
    if (worker->epoll_fd >= 0) close(worker->epoll_fd);
  }
  workers_.clear();
  listen_fds_.clear();
  if (stop_event_fd_ >= 0) close(stop_event_fd_);
  stop_event_fd_ = -1;
  if (!config_.unix_path.empty()) unlink(config_.unix_path.c_str());
}

// ---- worker side ----

void Server::WorkerLoop(size_t index) {
  Worker& worker = *workers_[index];
  // Stable copy: Stop closes these fds but never reuses the numbers inside
  // this worker (no new fds appear once the listeners are gone).
  const std::vector<int> listeners = listen_fds_;
  std::vector<epoll_event> events(64);
  bool stop = false;
  while (!stop) {
    const int n = epoll_wait(worker.epoll_fd, events.data(),
                             static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // One epoch pin serves every read frame that arrived in this wakeup,
    // across all ready connections (acquired lazily on the first read).
    Snapshot snap;
    bool snap_acquired = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == stop_event_fd_) {
        stop = true;
        continue;
      }
      if (fd == worker.completion_event_fd) {
        uint64_t drained;
        while (read(worker.completion_event_fd, &drained, sizeof(drained)) >
               0) {
        }
        DeliverCompletions(worker);
        continue;
      }
      if (std::find(listeners.begin(), listeners.end(), fd) !=
          listeners.end()) {
        AcceptReady(worker, fd);
        continue;
      }
      const auto it = worker.conn_by_fd.find(fd);
      if (it == worker.conn_by_fd.end()) continue;
      Connection& conn = worker.conns.at(it->second);
      // EPOLLHUP rides along with EPOLLIN on an orderly peer close: drain
      // first so the EOF takes the clean path. Only a readless HUP or an
      // error is an immediate drop.
      if ((events[i].events & EPOLLERR) != 0 ||
          ((events[i].events & EPOLLHUP) != 0 &&
           (events[i].events & EPOLLIN) == 0)) {
        CloseConnection(worker, conn, /*dropped=*/true);
        continue;
      }
      DrainResult result = DrainResult::kKeep;
      if ((events[i].events & EPOLLIN) != 0) {
        result = DrainConnection(index, worker, conn, snap, snap_acquired);
      }
      if (result == DrainResult::kKeep &&
          (events[i].events & EPOLLOUT) != 0 &&
          !FlushConnection(worker, conn)) {
        result = DrainResult::kCloseError;
      }
      if (result == DrainResult::kKeep && conn.close_after_flush &&
          conn.out.empty()) {
        result = DrainResult::kCloseClean;
      }
      if (result != DrainResult::kKeep) {
        CloseConnection(worker, conn,
                        /*dropped=*/result == DrainResult::kCloseError);
      }
    }
  }
  // Graceful drain: hand out any responses the writer finished, then give
  // each connection a bounded window to take its pending bytes.
  DeliverCompletions(worker);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  std::vector<uint64_t> ids;
  ids.reserve(worker.conns.size());
  for (const auto& [id, conn] : worker.conns) ids.push_back(id);
  for (uint64_t id : ids) {
    auto it = worker.conns.find(id);
    if (it == worker.conns.end()) continue;
    Connection& conn = it->second;
    while (conn.out_written < conn.out.size() &&
           std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{conn.fd, POLLOUT, 0};
      if (poll(&pfd, 1, 100) <= 0) continue;
      const ssize_t w = write(conn.fd, conn.out.data() + conn.out_written,
                              conn.out.size() - conn.out_written);
      if (w > 0) {
        conn.out_written += static_cast<size_t>(w);
      } else if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        break;
      }
    }
    CloseConnection(worker, conn, /*dropped=*/false);
  }
}

void Server::AcceptReady(Worker& worker, int listen_fd) {
  while (true) {
    const int fd =
        accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN (another worker took it) or closed
    if (draining_) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    worker.conn_by_fd[fd] = conn.id;
    worker.conns[conn.id] = std::move(conn);
    stats::RecordConnectionAccepted();
  }
}

Server::DrainResult Server::DrainConnection(size_t worker_index,
                                            Worker& worker, Connection& conn,
                                            Snapshot& snap,
                                            bool& snap_acquired) {
  bool eof = false;
  while (true) {
    uint8_t buf[64 * 1024];
    const ssize_t r = read(conn.fd, buf, sizeof(buf));
    if (r > 0) {
      conn.in.insert(conn.in.end(), buf, buf + r);
      continue;
    }
    if (r == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return DrainResult::kCloseError;
  }
  // Parse every complete frame in the buffer.
  while (conn.in.size() - conn.in_consumed >= kFrameHeaderBytes) {
    const uint8_t* base = conn.in.data() + conn.in_consumed;
    const size_t available = conn.in.size() - conn.in_consumed;
    FrameHeader header;
    std::string error;
    if (!DecodeFrameHeader(base, available, &header, &error)) {
      // A bad header desynchronizes the stream: drop the connection (the
      // decode already ticked protocol_errors with the field diagnostic).
      return DrainResult::kCloseError;
    }
    const size_t frame_len = kFrameHeaderBytes + header.payload_length;
    if (available < frame_len) break;  // incomplete: wait for more bytes
    const uint8_t* payload = base + kFrameHeaderBytes;
    if (!ValidatePayload(header, payload, &error)) {
      return DrainResult::kCloseError;
    }
    stats::RecordFramesIn(1, frame_len);
    conn.in_consumed += frame_len;
    if (!DispatchFrame(worker_index, worker, conn, header, payload, snap,
                      snap_acquired)) {
      return DrainResult::kCloseError;
    }
  }
  // Compact once the parsed prefix dominates the buffer.
  if (conn.in_consumed == conn.in.size()) {
    conn.in.clear();
    conn.in_consumed = 0;
  } else if (conn.in_consumed > (1u << 20)) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<ptrdiff_t>(conn.in_consumed));
    conn.in_consumed = 0;
  }
  if (!FlushConnection(worker, conn)) return DrainResult::kCloseError;
  if (!eof) return DrainResult::kKeep;
  // Orderly EOF. Trailing partial bytes mean the client died mid-frame;
  // a response still in flight keeps the connection up until written.
  if (conn.in_consumed != conn.in.size()) return DrainResult::kCloseError;
  if (conn.out_written < conn.out.size()) {
    conn.close_after_flush = true;
    return DrainResult::kKeep;
  }
  return DrainResult::kCloseClean;
}

bool Server::DispatchFrame(size_t worker_index, Worker& worker,
                           Connection& conn, const FrameHeader& header,
                           const uint8_t* payload, Snapshot& snap,
                           bool& snap_acquired) {
  if ((header.opcode & kResponseBit) != 0) {
    // A client must not send response frames; unrecoverable confusion.
    stats::RecordProtocolError();
    return false;
  }
  const Opcode opcode = static_cast<Opcode>(header.opcode);
  const uint64_t id = header.request_id;
  const size_t len = header.payload_length;
  std::string error;

  const size_t out_before = conn.out.size();
  if (IsReadOpcode(opcode)) {
    if (!snap_acquired) {
      snap = index_->Acquire();
      snap_acquired = true;
    }
    const NodeId n = snap.num_nodes();
    switch (opcode) {
      case Opcode::kComponent: {
        NodeId v = 0;
        if (!DecodeComponentRequest(payload, len, &v, &error) || v >= n) {
          AppendStatusResponse(opcode, id, Status::kBadRequest, &conn.out);
        } else {
          AppendComponentResponse(id, Status::kOk, snap.Component(v),
                                  &conn.out);
        }
        break;
      }
      case Opcode::kSameComponent: {
        NodeId u = 0, v = 0;
        if (!DecodeSameComponentRequest(payload, len, &u, &v, &error) ||
            u >= n || v >= n) {
          AppendStatusResponse(opcode, id, Status::kBadRequest, &conn.out);
        } else {
          AppendSameComponentResponse(id, Status::kOk,
                                      snap.SameComponent(u, v), &conn.out);
        }
        break;
      }
      case Opcode::kNumComponents: {
        if (!DecodeNumComponentsRequest(payload, len, &error)) {
          AppendStatusResponse(opcode, id, Status::kBadRequest, &conn.out);
        } else {
          AppendNumComponentsResponse(id, Status::kOk, snap.NumComponents(),
                                      snap.version(), &conn.out);
        }
        break;
      }
      case Opcode::kComponentSizes: {
        uint32_t max_entries = 0;
        if (!DecodeComponentSizesRequest(payload, len, &max_entries,
                                         &error)) {
          AppendStatusResponse(opcode, id, Status::kBadRequest, &conn.out);
          break;
        }
        max_entries = std::min(max_entries, kMaxSizesEntries);
        worker.sizes_scratch.clear();
        if (snap.valid()) {
          const std::vector<NodeId>& sizes = snap.ComponentSizes();
          for (NodeId v = 0; v < n && worker.sizes_scratch.size() <
                                          max_entries; ++v) {
            if (sizes[v] != 0) worker.sizes_scratch.push_back({v, sizes[v]});
          }
        }
        AppendComponentSizesResponse(id, Status::kOk, snap.NumComponents(),
                                     worker.sizes_scratch, &conn.out);
        break;
      }
      case Opcode::kStats: {
        if (!DecodeStatsRequest(payload, len, &error)) {
          AppendStatusResponse(opcode, id, Status::kBadRequest, &conn.out);
        } else {
          HandleStatsProbe(conn, id, snap);
        }
        break;
      }
      default:
        AppendStatusResponse(opcode, id, Status::kBadRequest, &conn.out);
        break;
    }
  } else {
    // Mutation: decode here (worker-side validation), apply on the writer.
    Mutation mutation;
    mutation.worker_index = worker_index;
    mutation.conn_id = conn.id;
    mutation.opcode = opcode;
    mutation.request_id = id;
    if (!DecodeMutateRequest(opcode, payload, len, &mutation.request,
                             &error)) {
      AppendStatusResponse(opcode, id, Status::kBadRequest, &conn.out);
    } else {
      if (!snap_acquired) {
        snap = index_->Acquire();
        snap_acquired = true;
      }
      const NodeId n = snap.num_nodes();
      bool in_range = true;
      for (const Edge& e : mutation.request.edges) {
        if (e.u >= n || e.v >= n) in_range = false;
      }
      for (const Edge& q : mutation.request.queries) {
        if (q.u >= n || q.v >= n) in_range = false;
      }
      Status refusal = Status::kOk;
      if (!in_range) {
        AppendStatusResponse(opcode, id, Status::kBadRequest, &conn.out);
      } else if (!EnqueueMutation(std::move(mutation), &refusal)) {
        AppendStatusResponse(opcode, id, refusal, &conn.out);
      }
      // On success the writer thread owns the response.
    }
  }
  if (conn.out.size() > out_before) {
    stats::RecordFramesOut(1, conn.out.size() - out_before);
  }
  return true;
}

void Server::HandleStatsProbe(Connection& conn, uint64_t request_id,
                              const Snapshot& snap) {
  const stats::TransportSnapshot t = stats::ReadTransport();
  const stats::ServingSnapshot s = stats::ReadServing();
  StatsProbe probe;
  probe.connections_accepted = t.connections_accepted;
  probe.connections_dropped = t.connections_dropped;
  probe.frames_in = t.frames_in;
  probe.frames_out = t.frames_out;
  probe.bytes_in = t.bytes_in;
  probe.bytes_out = t.bytes_out;
  probe.backpressure_rejections = t.backpressure_rejections;
  probe.protocol_errors = t.protocol_errors;
  probe.queue_depth_hwm = t.queue_depth_hwm;
  probe.snapshot_publications = s.snapshot_publications;
  probe.publication_skips = s.publication_skips;
  probe.publication_cadence_k = s.publication_cadence_k;
  probe.num_nodes = snap.num_nodes();
  probe.num_components = snap.NumComponents();
  probe.snapshot_version = snap.version();
  AppendStatsResponse(request_id, probe, &conn.out);
}

bool Server::FlushConnection(Worker& worker, Connection& conn) {
  while (conn.out_written < conn.out.size()) {
    const ssize_t w = write(conn.fd, conn.out.data() + conn.out_written,
                            conn.out.size() - conn.out_written);
    if (w > 0) {
      conn.out_written += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.epollout_armed) {
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = conn.fd;
        epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
        conn.epollout_armed = true;
      }
      return true;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  conn.out.clear();
  conn.out_written = 0;
  if (conn.epollout_armed) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn.fd;
    epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
    conn.epollout_armed = false;
  }
  return true;
}

void Server::CloseConnection(Worker& worker, Connection& conn, bool dropped) {
  if (conn.fd >= 0) {
    close(conn.fd);
    worker.conn_by_fd.erase(conn.fd);
  }
  if (dropped) stats::RecordConnectionDropped();
  worker.conns.erase(conn.id);  // invalidates conn
}

void Server::DeliverCompletions(Worker& worker) {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(worker.completion_mu);
    batch.swap(worker.completions);
  }
  for (Completion& completion : batch) {
    const auto it = worker.conns.find(completion.conn_id);
    if (it == worker.conns.end()) continue;  // client left before the reply
    Connection& conn = it->second;
    conn.out.insert(conn.out.end(), completion.frame.begin(),
                    completion.frame.end());
    stats::RecordFramesOut(1, completion.frame.size());
    if (!FlushConnection(worker, conn)) {
      CloseConnection(worker, conn, /*dropped=*/true);
    } else if (conn.close_after_flush && conn.out.empty()) {
      CloseConnection(worker, conn, /*dropped=*/false);
    }
  }
}

// ---- writer side ----

bool Server::EnqueueMutation(Mutation mutation, Status* refusal) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_stopping_) {
      *refusal = Status::kShuttingDown;
      return false;
    }
    if (queue_.size() >= config_.queue_capacity) {
      *refusal = Status::kBackpressure;
      stats::RecordBackpressureRejection();
      return false;
    }
    queue_.push_back(std::move(mutation));
    stats::RecordQueueDepth(queue_.size());
  }
  queue_cv_.notify_one();
  return true;
}

void Server::WriterLoop() {
  while (true) {
    Mutation mutation;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || queue_stopping_; });
      if (queue_.empty()) return;  // stopping and drained
      mutation = std::move(queue_.front());
      queue_.pop_front();
    }
    MutateResponse response;
    if (!index_->streaming()) {
      response.status = Status::kNotStreaming;
    } else if (mutation.opcode == Opcode::kInsertBatch) {
      response.answers =
          index_->Insert(mutation.request.edges, mutation.request.queries);
    } else {
      response.answers =
          index_->Erase(mutation.request.edges, mutation.request.queries);
    }
    Completion completion;
    completion.conn_id = mutation.conn_id;
    AppendMutateResponse(mutation.opcode, mutation.request_id, response,
                         &completion.frame);
    Worker& worker = *workers_[mutation.worker_index];
    {
      std::lock_guard<std::mutex> lock(worker.completion_mu);
      worker.completions.push_back(std::move(completion));
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        write(worker.completion_event_fd, &one, sizeof(one));
  }
}

}  // namespace connectit::serve
