#include "src/serve/protocol.h"

#include <cstdio>
#include <cstring>

namespace connectit::serve {

namespace {

// Little-endian scalar append/read. The build already refuses big-endian
// hosts (container.cc), so memcpy of the native representation is the
// little-endian encoding.
template <typename T>
void AppendScalar(T value, std::vector<uint8_t>* out) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

template <typename T>
T ReadScalar(const uint8_t* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

// All decode failures funnel through here: format the field-specific
// message, tick the transport counter, refuse.
bool Reject(std::string* error, const char* fmt, unsigned long long a = 0,
            unsigned long long b = 0) {
  if (error != nullptr) {
    char buf[192];
    std::snprintf(buf, sizeof(buf), fmt, a, b);
    *error = buf;
  }
  stats::RecordProtocolError();
  return false;
}

const char* OpName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kComponent: return "Component";
    case Opcode::kSameComponent: return "SameComponent";
    case Opcode::kNumComponents: return "NumComponents";
    case Opcode::kComponentSizes: return "ComponentSizes";
    case Opcode::kInsertBatch: return "InsertBatch";
    case Opcode::kEraseBatch: return "EraseBatch";
    case Opcode::kStats: return "Stats";
  }
  return "?";
}

}  // namespace

const char* ToString(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBackpressure: return "backpressure";
    case Status::kBadRequest: return "bad-request";
    case Status::kNotStreaming: return "not-streaming";
    case Status::kShuttingDown: return "shutting-down";
  }
  return "?";
}

uint32_t WireChecksum(const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 16777619u;
  }
  return h;
}

bool KnownOpcode(uint8_t opcode) {
  const uint8_t op = opcode & ~kResponseBit;
  return op >= static_cast<uint8_t>(Opcode::kComponent) &&
         op <= static_cast<uint8_t>(Opcode::kStats);
}

bool IsReadOpcode(Opcode opcode) {
  return opcode != Opcode::kInsertBatch && opcode != Opcode::kEraseBatch;
}

// ---- framing ----

void AppendFrame(Opcode opcode, bool response, uint64_t request_id,
                 const uint8_t* payload, size_t payload_length,
                 std::vector<uint8_t>* out) {
  FrameHeader header;
  header.opcode = static_cast<uint8_t>(opcode) |
                  (response ? kResponseBit : uint8_t{0});
  header.request_id = request_id;
  header.payload_length = static_cast<uint32_t>(payload_length);
  header.payload_checksum = WireChecksum(payload, payload_length);
  header.header_checksum =
      WireChecksum(&header, kFrameHeaderBytes - sizeof(uint32_t));
  const size_t at = out->size();
  out->resize(at + kFrameHeaderBytes + payload_length);
  std::memcpy(out->data() + at, &header, kFrameHeaderBytes);
  if (payload_length != 0) {
    std::memcpy(out->data() + at + kFrameHeaderBytes, payload, payload_length);
  }
}

bool DecodeFrameHeader(const uint8_t* data, size_t len, FrameHeader* out,
                       std::string* error) {
  if (len < kFrameHeaderBytes) {
    return Reject(error, "frame header truncated: %llu of 32 bytes", len);
  }
  FrameHeader header;
  std::memcpy(&header, data, kFrameHeaderBytes);
  if (header.magic != kWireMagic) {
    return Reject(error, "frame magic mismatch: got 0x%llx", header.magic);
  }
  if (header.version != kWireVersion) {
    return Reject(error, "unsupported wire version %llu (expected %llu)",
                  header.version, kWireVersion);
  }
  // Checksum before the remaining fields: a corrupt opcode/length with a
  // stale checksum should be reported as corruption, not as an unknown
  // opcode the peer never sent.
  const uint32_t expect =
      WireChecksum(data, kFrameHeaderBytes - sizeof(uint32_t));
  if (header.header_checksum != expect) {
    return Reject(error, "frame header checksum mismatch: got 0x%llx, "
                  "computed 0x%llx", header.header_checksum, expect);
  }
  if (header.reserved != 0 || header.reserved2 != 0) {
    return Reject(error, "frame reserved field nonzero (0x%llx, 0x%llx)",
                  header.reserved, header.reserved2);
  }
  if (!KnownOpcode(header.opcode)) {
    return Reject(error, "unknown opcode 0x%llx", header.opcode);
  }
  if (header.payload_length > kMaxPayloadBytes) {
    return Reject(error, "payload length %llu exceeds limit %llu",
                  header.payload_length, kMaxPayloadBytes);
  }
  *out = header;
  return true;
}

bool ValidatePayload(const FrameHeader& header, const uint8_t* payload,
                     std::string* error) {
  const uint32_t got = WireChecksum(payload, header.payload_length);
  if (got != header.payload_checksum) {
    return Reject(error, "payload checksum mismatch: got 0x%llx, computed "
                  "0x%llx", header.payload_checksum, got);
  }
  return true;
}

// ---- request encoders ----

void AppendComponentRequest(uint64_t id, NodeId v, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  AppendScalar<uint32_t>(v, &body);
  AppendFrame(Opcode::kComponent, false, id, body.data(), body.size(), out);
}

void AppendSameComponentRequest(uint64_t id, NodeId u, NodeId v,
                                std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  AppendScalar<uint32_t>(u, &body);
  AppendScalar<uint32_t>(v, &body);
  AppendFrame(Opcode::kSameComponent, false, id, body.data(), body.size(),
              out);
}

void AppendNumComponentsRequest(uint64_t id, std::vector<uint8_t>* out) {
  AppendFrame(Opcode::kNumComponents, false, id, nullptr, 0, out);
}

void AppendComponentSizesRequest(uint64_t id, uint32_t max_entries,
                                 std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  AppendScalar<uint32_t>(max_entries, &body);
  AppendFrame(Opcode::kComponentSizes, false, id, body.data(), body.size(),
              out);
}

void AppendMutateRequest(Opcode opcode, uint64_t id, const MutateRequest& req,
                         std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  body.reserve(8 + 8 * (req.edges.size() + req.queries.size()));
  AppendScalar<uint32_t>(static_cast<uint32_t>(req.edges.size()), &body);
  AppendScalar<uint32_t>(static_cast<uint32_t>(req.queries.size()), &body);
  for (const Edge& e : req.edges) {
    AppendScalar<uint32_t>(e.u, &body);
    AppendScalar<uint32_t>(e.v, &body);
  }
  for (const Edge& q : req.queries) {
    AppendScalar<uint32_t>(q.u, &body);
    AppendScalar<uint32_t>(q.v, &body);
  }
  AppendFrame(opcode, false, id, body.data(), body.size(), out);
}

void AppendStatsRequest(uint64_t id, std::vector<uint8_t>* out) {
  AppendFrame(Opcode::kStats, false, id, nullptr, 0, out);
}

// ---- response encoders ----

void AppendStatusResponse(Opcode opcode, uint64_t id, Status status,
                          std::vector<uint8_t>* out) {
  const uint8_t body = static_cast<uint8_t>(status);
  AppendFrame(opcode, true, id, &body, 1, out);
}

void AppendComponentResponse(uint64_t id, Status status, NodeId label,
                             std::vector<uint8_t>* out) {
  if (status != Status::kOk) {
    return AppendStatusResponse(Opcode::kComponent, id, status, out);
  }
  uint8_t body[5];
  body[0] = static_cast<uint8_t>(Status::kOk);
  std::memcpy(body + 1, &label, 4);
  AppendFrame(Opcode::kComponent, true, id, body, sizeof(body), out);
}

void AppendSameComponentResponse(uint64_t id, Status status, bool connected,
                                 std::vector<uint8_t>* out) {
  if (status != Status::kOk) {
    return AppendStatusResponse(Opcode::kSameComponent, id, status, out);
  }
  const uint8_t body[2] = {static_cast<uint8_t>(Status::kOk),
                           static_cast<uint8_t>(connected ? 1 : 0)};
  AppendFrame(Opcode::kSameComponent, true, id, body, sizeof(body), out);
}

void AppendNumComponentsResponse(uint64_t id, Status status, NodeId count,
                                 uint64_t version,
                                 std::vector<uint8_t>* out) {
  if (status != Status::kOk) {
    return AppendStatusResponse(Opcode::kNumComponents, id, status, out);
  }
  uint8_t body[13];
  body[0] = static_cast<uint8_t>(Status::kOk);
  std::memcpy(body + 1, &count, 4);
  std::memcpy(body + 5, &version, 8);
  AppendFrame(Opcode::kNumComponents, true, id, body, sizeof(body), out);
}

void AppendComponentSizesResponse(uint64_t id, Status status, NodeId count,
                                  const std::vector<ComponentSizesEntry>& e,
                                  std::vector<uint8_t>* out) {
  if (status != Status::kOk) {
    return AppendStatusResponse(Opcode::kComponentSizes, id, status, out);
  }
  std::vector<uint8_t> body;
  body.reserve(9 + 8 * e.size());
  AppendScalar<uint8_t>(static_cast<uint8_t>(Status::kOk), &body);
  AppendScalar<uint32_t>(count, &body);
  AppendScalar<uint32_t>(static_cast<uint32_t>(e.size()), &body);
  for (const ComponentSizesEntry& entry : e) {
    AppendScalar<uint32_t>(entry.representative, &body);
    AppendScalar<uint32_t>(entry.size, &body);
  }
  AppendFrame(Opcode::kComponentSizes, true, id, body.data(), body.size(),
              out);
}

void AppendMutateResponse(Opcode opcode, uint64_t id,
                          const MutateResponse& resp,
                          std::vector<uint8_t>* out) {
  if (resp.status != Status::kOk) {
    return AppendStatusResponse(opcode, id, resp.status, out);
  }
  std::vector<uint8_t> body;
  body.reserve(5 + resp.answers.size());
  AppendScalar<uint8_t>(static_cast<uint8_t>(Status::kOk), &body);
  AppendScalar<uint32_t>(static_cast<uint32_t>(resp.answers.size()), &body);
  body.insert(body.end(), resp.answers.begin(), resp.answers.end());
  AppendFrame(opcode, true, id, body.data(), body.size(), out);
}

void AppendStatsResponse(uint64_t id, const StatsProbe& probe,
                         std::vector<uint8_t>* out) {
  if (probe.status != Status::kOk) {
    return AppendStatusResponse(Opcode::kStats, id, probe.status, out);
  }
  std::vector<uint8_t> body;
  AppendScalar<uint8_t>(static_cast<uint8_t>(Status::kOk), &body);
  const uint64_t fields[] = {
      probe.connections_accepted, probe.connections_dropped, probe.frames_in,
      probe.frames_out,           probe.bytes_in,            probe.bytes_out,
      probe.backpressure_rejections, probe.protocol_errors,
      probe.queue_depth_hwm,      probe.snapshot_publications,
      probe.publication_skips,    probe.publication_cadence_k,
      probe.num_nodes,            probe.num_components,
      probe.snapshot_version,
  };
  for (uint64_t f : fields) AppendScalar<uint64_t>(f, &body);
  AppendFrame(Opcode::kStats, true, id, body.data(), body.size(), out);
}

// ---- request decoders ----

bool DecodeComponentRequest(const uint8_t* payload, size_t len, NodeId* v,
                            std::string* error) {
  if (len != 4) {
    return Reject(error, "Component request: payload length %llu, "
                  "expected 4", len);
  }
  *v = ReadScalar<uint32_t>(payload);
  return true;
}

bool DecodeSameComponentRequest(const uint8_t* payload, size_t len, NodeId* u,
                                NodeId* v, std::string* error) {
  if (len != 8) {
    return Reject(error, "SameComponent request: payload length %llu, "
                  "expected 8", len);
  }
  *u = ReadScalar<uint32_t>(payload);
  *v = ReadScalar<uint32_t>(payload + 4);
  return true;
}

bool DecodeNumComponentsRequest(const uint8_t* payload, size_t len,
                                std::string* error) {
  (void)payload;
  if (len != 0) {
    return Reject(error, "NumComponents request: payload length %llu, "
                  "expected 0", len);
  }
  return true;
}

bool DecodeComponentSizesRequest(const uint8_t* payload, size_t len,
                                 uint32_t* max_entries, std::string* error) {
  if (len != 4) {
    return Reject(error, "ComponentSizes request: payload length %llu, "
                  "expected 4", len);
  }
  *max_entries = ReadScalar<uint32_t>(payload);
  return true;
}

bool DecodeMutateRequest(Opcode opcode, const uint8_t* payload, size_t len,
                         MutateRequest* out, std::string* error) {
  const char* name = OpName(opcode);
  if (len < 8) {
    return Reject(error,
                  (std::string(name) +
                   " request: truncated count header (%llu of 8 bytes)")
                      .c_str(),
                  len);
  }
  const uint32_t num_edges = ReadScalar<uint32_t>(payload);
  const uint32_t num_queries = ReadScalar<uint32_t>(payload + 4);
  const uint64_t expect = 8 + 8ull * num_edges + 8ull * num_queries;
  if (len != expect) {
    return Reject(error,
                  (std::string(name) +
                   " request: payload length %llu does not match counts "
                   "(expected %llu)")
                      .c_str(),
                  len, expect);
  }
  out->edges.resize(num_edges);
  out->queries.resize(num_queries);
  const uint8_t* cursor = payload + 8;
  for (uint32_t i = 0; i < num_edges; ++i, cursor += 8) {
    out->edges[i] = {ReadScalar<uint32_t>(cursor),
                     ReadScalar<uint32_t>(cursor + 4)};
  }
  for (uint32_t i = 0; i < num_queries; ++i, cursor += 8) {
    out->queries[i] = {ReadScalar<uint32_t>(cursor),
                       ReadScalar<uint32_t>(cursor + 4)};
  }
  return true;
}

bool DecodeStatsRequest(const uint8_t* payload, size_t len,
                        std::string* error) {
  (void)payload;
  if (len != 0) {
    return Reject(error, "Stats request: payload length %llu, expected 0",
                  len);
  }
  return true;
}

// ---- response decoders ----

namespace {

// Every response body leads with a status byte; short-circuits non-kOk.
bool DecodeStatusByte(const char* name, const uint8_t* payload, size_t len,
                      Status* status, std::string* error) {
  if (len < 1) {
    return Reject(error, (std::string(name) +
                          " response: empty payload (no status byte)")
                             .c_str());
  }
  const uint8_t raw = payload[0];
  if (raw > static_cast<uint8_t>(Status::kShuttingDown)) {
    return Reject(error,
                  (std::string(name) + " response: unknown status %llu")
                      .c_str(),
                  raw);
  }
  *status = static_cast<Status>(raw);
  return true;
}

}  // namespace

bool DecodeComponentResponse(const uint8_t* payload, size_t len,
                             Status* status, NodeId* label,
                             std::string* error) {
  if (!DecodeStatusByte("Component", payload, len, status, error)) {
    return false;
  }
  if (*status != Status::kOk) return true;
  if (len != 5) {
    return Reject(error, "Component response: payload length %llu, "
                  "expected 5", len);
  }
  *label = ReadScalar<uint32_t>(payload + 1);
  return true;
}

bool DecodeSameComponentResponse(const uint8_t* payload, size_t len,
                                 Status* status, bool* connected,
                                 std::string* error) {
  if (!DecodeStatusByte("SameComponent", payload, len, status, error)) {
    return false;
  }
  if (*status != Status::kOk) return true;
  if (len != 2) {
    return Reject(error, "SameComponent response: payload length %llu, "
                  "expected 2", len);
  }
  *connected = payload[1] != 0;
  return true;
}

bool DecodeNumComponentsResponse(const uint8_t* payload, size_t len,
                                 Status* status, NodeId* count,
                                 uint64_t* version, std::string* error) {
  if (!DecodeStatusByte("NumComponents", payload, len, status, error)) {
    return false;
  }
  if (*status != Status::kOk) return true;
  if (len != 13) {
    return Reject(error, "NumComponents response: payload length %llu, "
                  "expected 13", len);
  }
  *count = ReadScalar<uint32_t>(payload + 1);
  *version = ReadScalar<uint64_t>(payload + 5);
  return true;
}

bool DecodeComponentSizesResponse(const uint8_t* payload, size_t len,
                                  Status* status, NodeId* count,
                                  std::vector<ComponentSizesEntry>* entries,
                                  std::string* error) {
  if (!DecodeStatusByte("ComponentSizes", payload, len, status, error)) {
    return false;
  }
  if (*status != Status::kOk) return true;
  if (len < 9) {
    return Reject(error, "ComponentSizes response: truncated header "
                  "(%llu of 9 bytes)", len);
  }
  *count = ReadScalar<uint32_t>(payload + 1);
  const uint32_t num_entries = ReadScalar<uint32_t>(payload + 5);
  if (len != 9 + 8ull * num_entries) {
    return Reject(error, "ComponentSizes response: payload length %llu does "
                  "not match entry count (expected %llu)", len,
                  9 + 8ull * num_entries);
  }
  entries->resize(num_entries);
  const uint8_t* cursor = payload + 9;
  for (uint32_t i = 0; i < num_entries; ++i, cursor += 8) {
    (*entries)[i] = {ReadScalar<uint32_t>(cursor),
                     ReadScalar<uint32_t>(cursor + 4)};
  }
  return true;
}

bool DecodeMutateResponse(const uint8_t* payload, size_t len,
                          MutateResponse* out, std::string* error) {
  if (!DecodeStatusByte("Mutate", payload, len, &out->status, error)) {
    return false;
  }
  if (out->status != Status::kOk) return true;
  if (len < 5) {
    return Reject(error, "Mutate response: truncated answer header "
                  "(%llu of 5 bytes)", len);
  }
  const uint32_t answers = ReadScalar<uint32_t>(payload + 1);
  if (len != 5 + static_cast<uint64_t>(answers)) {
    return Reject(error, "Mutate response: payload length %llu does not "
                  "match answer count (expected %llu)", len,
                  5 + static_cast<uint64_t>(answers));
  }
  out->answers.assign(payload + 5, payload + 5 + answers);
  return true;
}

bool DecodeStatsResponse(const uint8_t* payload, size_t len, StatsProbe* out,
                         std::string* error) {
  if (!DecodeStatusByte("Stats", payload, len, &out->status, error)) {
    return false;
  }
  if (out->status != Status::kOk) return true;
  constexpr size_t kFields = 15;
  if (len < 1 + 8 * kFields) {
    return Reject(error, "Stats response: payload length %llu shorter than "
                  "the %llu known fields", len, kFields);
  }
  uint64_t fields[kFields];
  for (size_t i = 0; i < kFields; ++i) {
    fields[i] = ReadScalar<uint64_t>(payload + 1 + 8 * i);
  }
  out->connections_accepted = fields[0];
  out->connections_dropped = fields[1];
  out->frames_in = fields[2];
  out->frames_out = fields[3];
  out->bytes_in = fields[4];
  out->bytes_out = fields[5];
  out->backpressure_rejections = fields[6];
  out->protocol_errors = fields[7];
  out->queue_depth_hwm = fields[8];
  out->snapshot_publications = fields[9];
  out->publication_skips = fields[10];
  out->publication_cadence_k = fields[11];
  out->num_nodes = fields[12];
  out->num_components = fields[13];
  out->snapshot_version = fields[14];
  return true;
}

}  // namespace connectit::serve
