// connectit::serve::Client — the protocol client used by connectit_client
// (the CLI) and bench_serving's forked client processes.
//
// Two usage modes over one connection:
//
//   Blocking: Component(), SameComponent(), NumComponents(),
//   ComponentSizes(), Mutate(), Stats() each send one frame and wait for
//   its response (request_timeout_ms bounds the wait). One outstanding
//   request at a time — the simple mode for CLIs and tests.
//
//   Pipelined: Send*() queues a frame locally and returns its request_id;
//   Flush() writes the queued bytes; Poll() returns the next response
//   frame whenever one is complete. Any number of requests may be in
//   flight; responses are matched by request_id (mutation responses may
//   interleave after later reads — see protocol.h). This is the mode the
//   open-loop bench clients use so a slow response never stalls the
//   arrival schedule.
//
// Connect() retries a refused/timed-out connection a bounded number of
// times (max_connect_retries, retry_backoff_ms between attempts) so bench
// clients can start while the server is still binding. Request-level
// transport errors are never retried by the library: the caller sees the
// error and decides (a mutation may or may not have been applied).

#ifndef CONNECTIT_SERVE_CLIENT_H_
#define CONNECTIT_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/protocol.h"

namespace connectit::serve {

struct ClientConfig {
  // Unix-domain socket path; takes precedence when non-empty.
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;
  int connect_timeout_ms = 2000;
  int request_timeout_ms = 10000;
  // Bounded retry for Connect() only (refused / timed out attempts).
  int max_connect_retries = 20;
  int retry_backoff_ms = 100;
};

class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Establishes the connection with bounded retry. False with a
  // diagnostic once the retry budget is exhausted.
  bool Connect(std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // ---- blocking mode ----
  // Each returns false on a transport or protocol error (*error set); a
  // server-side refusal is NOT an error — it lands in *status.
  bool Component(NodeId v, Status* status, NodeId* label, std::string* error);
  bool SameComponent(NodeId u, NodeId v, Status* status, bool* connected,
                     std::string* error);
  bool NumComponents(Status* status, NodeId* count, uint64_t* version,
                     std::string* error);
  bool ComponentSizes(uint32_t max_entries, Status* status, NodeId* count,
                      std::vector<ComponentSizesEntry>* entries,
                      std::string* error);
  // opcode is kInsertBatch or kEraseBatch.
  bool Mutate(Opcode opcode, const MutateRequest& request,
              MutateResponse* response, std::string* error);
  bool Stats(StatsProbe* probe, std::string* error);

  // ---- pipelined mode ----
  // Send*() queues the frame and returns its request_id (unique per
  // connection). Nothing touches the socket until Flush().
  uint64_t SendComponent(NodeId v);
  uint64_t SendSameComponent(NodeId u, NodeId v);
  uint64_t SendNumComponents();
  uint64_t SendComponentSizes(uint32_t max_entries);
  uint64_t SendMutate(Opcode opcode, const MutateRequest& request);
  uint64_t SendStats();

  // Writes every queued byte (blocks until written or error).
  bool Flush(std::string* error);

  // One complete response frame, opcode-agnostic; decode the payload with
  // the Decode*Response helper matching `opcode`.
  struct Response {
    uint64_t request_id = 0;
    Opcode opcode = Opcode::kComponent;
    Status status = Status::kOk;
    std::vector<uint8_t> payload;  // full payload, status byte included
  };

  // Waits up to timeout_ms for the next response frame (any request_id).
  // Returns false with *error on timeout, EOF, or a malformed frame.
  bool Poll(Response* out, int timeout_ms, std::string* error);

 private:
  bool ConnectOnce(std::string* error);
  // Blocking-mode helper: flush, then Poll until `id` answers.
  bool AwaitResponse(uint64_t id, Response* out, std::string* error);

  ClientConfig config_;
  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::vector<uint8_t> out_;
  std::vector<uint8_t> in_;
  size_t in_consumed_ = 0;
};

}  // namespace connectit::serve

#endif  // CONNECTIT_SERVE_CLIENT_H_
