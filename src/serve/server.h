// connectit::serve::Server — the network front end over one Connectivity.
//
// Thread model (see ARCHITECTURE.md "Transport layer"):
//
//   listeners ──► N worker threads ──► 1 writer thread
//                 (epoll, own conns)    (bounded MPSC queue)
//
// Each worker owns an epoll instance and the connections accepted into it
// (the listening sockets are registered EPOLLEXCLUSIVE in every worker's
// epoll, so accepts spread without a dedicated acceptor thread and no
// thundering herd). A connection never migrates: all reads, writes, and
// buffer state for it are touched by exactly one worker, so the per-
// connection state needs no locks.
//
// Read requests (Component, SameComponent, NumComponents, ComponentSizes,
// Stats) are answered by the owning worker straight from an epoch-pinned
// Snapshot: one Connectivity::Acquire() per batch of ready frames per
// event-loop wakeup — not per request — then plain array indexing into the
// pinned labeling. The read path performs no locking and no per-request
// allocation (responses are encoded into the connection's reusable output
// buffer), so reads stay wait-free end to end and never block on writers.
//
// Mutations (InsertBatch, EraseBatch) are funneled to the single writer
// thread through a bounded MPSC queue: batches serialize there exactly like
// direct Connectivity::Insert/Erase callers. When the queue is full the
// worker replies Status::kBackpressure immediately (nothing is applied,
// stats::ReadTransport().backpressure_rejections ticks) — explicit
// backpressure instead of unbounded buffering. The writer applies the
// batch, encodes the response, and hands it back to the owning worker
// through that worker's completion queue (eventfd wakeup); the worker
// writes it out, preserving single-owner connection state.
//
// Shutdown (Stop(), typically driven by SIGTERM via a self-pipe in the
// binary): listeners close first, the writer drains every queued mutation
// (new ones are refused with Status::kShuttingDown), then workers flush
// pending responses on every connection before closing it — a client that
// stops sending sees every answer it was owed.

#ifndef CONNECTIT_SERVE_SERVER_H_
#define CONNECTIT_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/connectivity_index.h"
#include "src/serve/protocol.h"

namespace connectit::serve {

struct ServerConfig {
  // Unix-domain socket path ("" = no UDS listener). An existing socket
  // file at the path is replaced.
  std::string unix_path;
  // TCP listener ("0" port value = no TCP listener). Port 0 with tcp=true
  // is not supported — pick a port.
  std::string tcp_host = "127.0.0.1";
  uint16_t tcp_port = 0;
  // Worker (epoll) threads; each owns its accepted connections.
  size_t workers = 2;
  // Bounded mutation-queue capacity; a full queue backpressures.
  size_t queue_capacity = 128;
  // accept() backlog.
  int listen_backlog = 128;
};

class Server {
 public:
  // The index must outlive the server. The server never Builds or
  // Streams it — arrange the lifecycle before Start (mutations against a
  // non-streaming index are refused with Status::kNotStreaming).
  Server(Connectivity* index, ServerConfig config);
  ~Server();  // calls Stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the configured listeners and starts worker + writer threads.
  // False with a diagnostic in *error if a listener cannot bind.
  bool Start(std::string* error);

  // Graceful shutdown; idempotent. See the header comment for ordering.
  void Stop();

  bool running() const { return started_; }

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::vector<uint8_t> in;      // unparsed request bytes
    size_t in_consumed = 0;       // parsed prefix of `in`
    std::vector<uint8_t> out;     // encoded, unwritten response bytes
    size_t out_written = 0;
    bool epollout_armed = false;
    bool close_after_flush = false;
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::vector<uint8_t> frame;   // encoded response
  };

  struct Worker {
    int epoll_fd = -1;
    int completion_event_fd = -1;
    std::thread thread;
    std::unordered_map<uint64_t, Connection> conns;
    std::unordered_map<int, uint64_t> conn_by_fd;
    std::mutex completion_mu;
    std::vector<Completion> completions;
    // Reused by the ComponentSizes handler (no per-request allocation
    // after warmup).
    std::vector<ComponentSizesEntry> sizes_scratch;
  };

  struct Mutation {
    size_t worker_index = 0;
    uint64_t conn_id = 0;
    Opcode opcode = Opcode::kInsertBatch;
    uint64_t request_id = 0;
    MutateRequest request;
  };

  void WorkerLoop(size_t index);
  void WriterLoop();

  // kKeep: connection stays; kCloseClean: orderly client EOF (not a
  // drop); kCloseError: protocol violation or transport error (counted
  // in connections_dropped).
  enum class DrainResult { kKeep, kCloseClean, kCloseError };

  void AcceptReady(Worker& worker, int listen_fd);
  // Reads, parses, and dispatches everything ready on `conn`.
  DrainResult DrainConnection(size_t worker_index, Worker& worker,
                              Connection& conn, Snapshot& snap,
                              bool& snap_acquired);
  // Dispatches one validated frame. Returns false to drop the connection.
  bool DispatchFrame(size_t worker_index, Worker& worker, Connection& conn,
                     const FrameHeader& header, const uint8_t* payload,
                     Snapshot& snap, bool& snap_acquired);
  void HandleStatsProbe(Connection& conn, uint64_t request_id,
                        const Snapshot& snap);
  // Flushes conn.out; arms/disarms EPOLLOUT as needed. Returns false if
  // the connection died mid-write.
  bool FlushConnection(Worker& worker, Connection& conn);
  void CloseConnection(Worker& worker, Connection& conn, bool dropped);
  void DeliverCompletions(Worker& worker);

  // False (and a kBackpressure/kShuttingDown tick) when refused.
  bool EnqueueMutation(Mutation mutation, Status* refusal);

  Connectivity* index_;
  ServerConfig config_;

  std::vector<int> listen_fds_;
  int stop_event_fd_ = -1;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread writer_thread_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Mutation> queue_;
  bool queue_stopping_ = false;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> next_conn_id_{1};
};

}  // namespace connectit::serve

#endif  // CONNECTIT_SERVE_SERVER_H_
