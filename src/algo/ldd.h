// Low-diameter decomposition of Miller, Peng, and Xu (paper §3.2).
//
// Vertices wake up at exponentially distributed start times (simulated by a
// permutation + exponential offsets, as in Shun et al.) and run simultaneous
// BFS; each vertex joins the cluster of the first search that reaches it.
// With parameter beta, clusters have O(log n / beta) strong diameter and
// O(beta * m) inter-cluster edges in expectation.
//
// Generic over the graph representation (see bfs.h for the concept).

#ifndef CONNECTIT_ALGO_LDD_H_
#define CONNECTIT_ALGO_LDD_H_

#include <atomic>
#include <cmath>
#include <vector>

#include "src/graph/builder.h"
#include "src/graph/csr.h"
#include "src/parallel/atomics.h"
#include "src/parallel/primitives.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

struct LddOptions {
  double beta = 0.2;
  // If true, vertices are randomly permuted before assigning start times;
  // otherwise the natural vertex order is used (paper Fig. 19-21 compares
  // both).
  bool permute = true;
  uint64_t seed = 42;
};

struct LddResult {
  // cluster[v] = id (a vertex) of the cluster containing v. Every cluster
  // id c has cluster[c] == c.
  std::vector<NodeId> clusters;
  // BFS-tree parent within the cluster; parent[c] == c for centers. Used by
  // spanning-forest sampling.
  std::vector<NodeId> parents;
  NodeId num_clusters = 0;
  NodeId num_rounds = 0;
};

template <typename GraphT>
LddResult LowDiameterDecomposition(const GraphT& graph,
                                   const LddOptions& options = {}) {
  const NodeId n = graph.num_nodes();
  LddResult result;
  result.clusters.assign(n, kInvalidNode);
  result.parents.assign(n, kInvalidNode);
  if (n == 0) return result;

  // Vertex wake-up order. With permute=false the natural order is used,
  // matching the "no_permute" configuration of the paper's Figures 19-21.
  std::vector<NodeId> order;
  if (options.permute) {
    order = RandomPermutation(n, options.seed);
    // order[v] gives the new position of v; we need position -> vertex.
    std::vector<NodeId> by_pos(n);
    for (NodeId v = 0; v < n; ++v) by_pos[order[v]] = v;
    order = std::move(by_pos);
  } else {
    order.resize(n);
    for (NodeId v = 0; v < n; ++v) order[v] = v;
  }

  std::vector<NodeId> frontier;
  NodeId woken = 0;  // prefix of `order` already started
  NodeId covered = 0;
  NodeId round = 0;
  std::atomic<NodeId> covered_delta{0};

  while (covered < n) {
    // Vertices waking this round: prefix grows like e^(beta * round).
    const double target = std::exp(options.beta * static_cast<double>(round));
    NodeId wake_to = (target >= static_cast<double>(n))
                         ? n
                         : static_cast<NodeId>(target);
    if (wake_to <= woken && frontier.empty()) wake_to = woken + 1;
    if (wake_to > n) wake_to = n;
    for (NodeId p = woken; p < wake_to; ++p) {
      const NodeId v = order[p];
      if (result.clusters[v] == kInvalidNode) {
        result.clusters[v] = v;
        result.parents[v] = v;
        frontier.push_back(v);
        ++covered;
        ++result.num_clusters;
      }
    }
    woken = wake_to;

    // One synchronous BFS step for all live clusters.
    std::vector<std::vector<NodeId>> local(frontier.size());
    covered_delta.store(0, std::memory_order_relaxed);
    ParallelFor(
        0, frontier.size(),
        [&](size_t i) {
          const NodeId u = frontier[i];
          const NodeId cu = result.clusters[u];
          graph.MapNeighbors(u, [&](NodeId v) {
            if (AtomicLoadRelaxed(&result.clusters[v]) == kInvalidNode &&
                CompareAndSwap(&result.clusters[v], kInvalidNode, cu)) {
              result.parents[v] = u;
              local[i].push_back(v);
              covered_delta.fetch_add(1, std::memory_order_relaxed);
            }
          });
        },
        /*grain=*/16);
    covered += covered_delta.load();

    std::vector<size_t> counts(frontier.size());
    for (size_t i = 0; i < frontier.size(); ++i) counts[i] = local[i].size();
    const size_t total = ScanExclusive(counts.data(), counts.size());
    std::vector<NodeId> next(total);
    ParallelFor(
        0, frontier.size(),
        [&](size_t i) {
          std::copy(local[i].begin(), local[i].end(),
                    next.begin() + counts[i]);
        },
        /*grain=*/64);
    frontier = std::move(next);
    ++round;
  }
  result.num_rounds = round;
  return result;
}

}  // namespace connectit

#endif  // CONNECTIT_ALGO_LDD_H_
