// Direction-optimizing parallel breadth-first search (Beamer et al.),
// the substrate for BFS sampling, BFSCC, and spanning-forest BFS trees.
//
// Generic over the graph representation: any GraphT providing num_nodes(),
// num_arcs(), degree(v), MapNeighbors(u, fn), and MapNeighborsWhile(u, fn)
// works — both Graph (plain CSR) and CompressedGraph qualify.

#ifndef CONNECTIT_ALGO_BFS_H_
#define CONNECTIT_ALGO_BFS_H_

#include <atomic>
#include <vector>

#include "src/graph/csr.h"
#include "src/parallel/atomics.h"
#include "src/parallel/primitives.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

struct BfsResult {
  // parent[v] = predecessor of v in the BFS tree; parent[src] = src;
  // kInvalidNode for unreached vertices.
  std::vector<NodeId> parents;
  // Number of vertices reached (including the source).
  NodeId num_reached = 0;
  // Number of BFS rounds that discovered vertices (the eccentricity of src
  // within its component).
  NodeId num_rounds = 0;
};

struct BfsOptions {
  // Frontier-density threshold for switching to the pull (bottom-up)
  // direction: switch when frontier edges exceed remaining_edges / alpha.
  double alpha = 15.0;
  // Switch back to push when frontier shrinks below n / beta vertices.
  double beta = 18.0;
};

namespace internal_bfs {

// Sparse (push) step: expand the frontier vertex list, claiming unvisited
// neighbors with CAS. Returns the next frontier.
template <typename GraphT>
std::vector<NodeId> PushStep(const GraphT& graph,
                             const std::vector<NodeId>& frontier,
                             std::vector<NodeId>& parents) {
  std::vector<std::vector<NodeId>> local(frontier.size());
  ParallelFor(
      0, frontier.size(),
      [&](size_t i) {
        const NodeId u = frontier[i];
        graph.MapNeighbors(u, [&](NodeId v) {
          if (AtomicLoadRelaxed(&parents[v]) == kInvalidNode &&
              CompareAndSwap(&parents[v], kInvalidNode, u)) {
            local[i].push_back(v);
          }
        });
      },
      /*grain=*/16);
  std::vector<size_t> counts(frontier.size());
  for (size_t i = 0; i < frontier.size(); ++i) counts[i] = local[i].size();
  const size_t total = ScanExclusive(counts.data(), counts.size());
  std::vector<NodeId> next(total);
  ParallelFor(
      0, frontier.size(),
      [&](size_t i) {
        std::copy(local[i].begin(), local[i].end(), next.begin() + counts[i]);
      },
      /*grain=*/64);
  return next;
}

// Dense (pull) step: every unvisited vertex scans its neighbors for a
// visited one. Returns the number of newly reached vertices.
template <typename GraphT>
NodeId PullStep(const GraphT& graph, const std::vector<uint8_t>& in_frontier,
                std::vector<uint8_t>& next_frontier,
                std::vector<NodeId>& parents) {
  const NodeId n = graph.num_nodes();
  std::atomic<NodeId> added{0};
  ParallelFor(
      0, n,
      [&](size_t vi) {
        const NodeId v = static_cast<NodeId>(vi);
        next_frontier[v] = 0;
        if (parents[v] != kInvalidNode) return;
        graph.MapNeighborsWhile(v, [&](NodeId u) {
          if (in_frontier[u]) {
            parents[v] = u;
            next_frontier[v] = 1;
            added.fetch_add(1, std::memory_order_relaxed);
            return false;  // stop scanning this vertex
          }
          return true;
        });
      },
      /*grain=*/128);
  return added.load();
}

template <typename GraphT>
EdgeId FrontierEdges(const GraphT& graph,
                     const std::vector<NodeId>& frontier) {
  return ParallelSum<EdgeId>(0, frontier.size(), [&](size_t i) {
    return graph.degree(frontier[i]);
  });
}

}  // namespace internal_bfs

// Runs BFS from `source`. Deterministic tree for the pull direction;
// push-direction parents are CAS-winners (any valid BFS tree).
template <typename GraphT>
BfsResult Bfs(const GraphT& graph, NodeId source,
              const BfsOptions& options = {}) {
  const NodeId n = graph.num_nodes();
  BfsResult result;
  result.parents.assign(n, kInvalidNode);
  if (n == 0) return result;
  result.parents[source] = source;
  result.num_reached = 1;

  std::vector<NodeId> frontier = {source};
  std::vector<uint8_t> dense_frontier;
  std::vector<uint8_t> dense_next;
  bool dense = false;
  EdgeId remaining_edges = graph.num_arcs();

  while (true) {
    if (!dense) {
      if (frontier.empty()) break;
      const EdgeId frontier_edges =
          internal_bfs::FrontierEdges(graph, frontier);
      if (frontier_edges >
          static_cast<EdgeId>(static_cast<double>(remaining_edges) /
                              options.alpha)) {
        // Switch to pull: materialize the bitmap.
        dense_frontier.assign(n, 0);
        for (NodeId v : frontier) dense_frontier[v] = 1;
        dense_next.assign(n, 0);
        dense = true;
        continue;
      }
      remaining_edges -= frontier_edges;
      frontier = internal_bfs::PushStep(graph, frontier, result.parents);
      result.num_reached += static_cast<NodeId>(frontier.size());
      // Only count rounds that discovered vertices, so num_rounds equals
      // the source's eccentricity within its component.
      if (!frontier.empty()) ++result.num_rounds;
    } else {
      const NodeId added = internal_bfs::PullStep(graph, dense_frontier,
                                                  dense_next, result.parents);
      if (added == 0) break;
      result.num_reached += added;
      ++result.num_rounds;
      std::swap(dense_frontier, dense_next);
      if (added <
          static_cast<NodeId>(static_cast<double>(n) / options.beta)) {
        // Shrink back to the sparse representation.
        frontier = ParallelPack<NodeId>(
            n, [&](size_t v) { return dense_frontier[v] != 0; },
            [](size_t v) { return static_cast<NodeId>(v); });
        dense = false;
      }
    }
  }
  return result;
}

}  // namespace connectit

#endif  // CONNECTIT_ALGO_BFS_H_
