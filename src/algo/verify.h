// Correctness oracles and component statistics.
//
// The sequential label computation here is the ground truth every parallel
// variant is validated against in the test suite.

#ifndef CONNECTIT_ALGO_VERIFY_H_
#define CONNECTIT_ALGO_VERIFY_H_

#include <vector>

#include "src/graph/coo.h"
#include "src/graph/csr.h"

namespace connectit {

// Canonical sequential connectivity labels: label[v] = smallest vertex id in
// v's component.
std::vector<NodeId> SequentialComponents(const Graph& graph);
std::vector<NodeId> SequentialComponents(const EdgeList& edges);

// Normalizes an arbitrary valid labeling to the canonical form (label of a
// component = min vertex id in it), enabling direct comparison.
std::vector<NodeId> CanonicalizeLabels(const std::vector<NodeId>& labels);

// True iff `labels` induces exactly the connectivity structure of `graph`:
// endpoints of every edge share a label and distinct components have
// distinct labels.
bool CheckComponentsMatch(const Graph& graph,
                          const std::vector<NodeId>& labels);

// True iff `labels` (component ids) and `expected` (ground truth) induce
// the same partition of vertices.
bool SamePartition(const std::vector<NodeId>& labels,
                   const std::vector<NodeId>& expected);

struct ComponentStats {
  NodeId num_components = 0;
  NodeId largest_component = 0;
};

ComponentStats ComputeComponentStats(const std::vector<NodeId>& labels);

// True iff `forest_edges` is a spanning forest of `graph`: every edge exists
// in the graph, the edge set is acyclic, and it has exactly
// n - num_components edges (which together imply it spans every component).
bool CheckSpanningForest(const Graph& graph,
                         const std::vector<Edge>& forest_edges);

// Effective diameter estimate: eccentricity of the BFS tree from the first
// vertex of the largest component (a lower bound on the true diameter,
// as reported in the paper's Table 2 for large graphs).
NodeId EstimateEffectiveDiameter(const Graph& graph);

}  // namespace connectit

#endif  // CONNECTIT_ALGO_VERIFY_H_
