// Parallel replacement-edge search for batch deletions.
//
// When a batch of erases removes spanning-forest edges, the affected
// components may splinter; any surviving non-forest edge between two
// pieces is a *replacement* that keeps them connected. Rather than probe
// edge-by-edge, the search re-runs a parallel BFS over the affected region
// (the union of the old components that lost a forest edge): every BFS
// tree found is the piece's new spanning tree, and its tree edges are the
// replacements. Because a component is maximal under the current
// adjacency, the BFS can never leak outside the affected region, so one
// shared parents array serves every piece.
//
// Generic over the adjacency representation exactly like src/algo/bfs.h
// (num_nodes / num_arcs / degree / MapNeighbors / MapNeighborsWhile); the
// frontier expansion reuses the same CAS-claiming PushStep kernel.

#ifndef CONNECTIT_ALGO_REPLACEMENT_H_
#define CONNECTIT_ALGO_REPLACEMENT_H_

#include <vector>

#include "src/algo/bfs.h"
#include "src/graph/types.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

struct ReplacementResult {
  // The new spanning-tree edges of every piece of the affected region
  // (one BFS tree per piece; each edge is (parent, child)).
  std::vector<Edge> forest_edges;
  // Number of connected pieces the region decomposed into. Equal to the
  // number of affected components iff every deleted forest edge had a
  // surviving replacement (no component split).
  uint64_t pieces = 0;
};

// Recomputes connectivity of the affected region and relabels it in
// place. `region` must list the region's vertices in ascending order and
// be closed under adjacency (a union of whole components of `graph`);
// `labels` is the full labeling, updated only at region vertices. Each
// piece is labeled by its minimum vertex id, so a component that stays
// connected keeps its canonical (min-rooted) label bit-for-bit — a
// deletion with a surviving replacement changes no query answer.
template <typename GraphT>
ReplacementResult ReplacementSearch(const GraphT& graph,
                                    const std::vector<NodeId>& region,
                                    std::vector<NodeId>& labels) {
  ReplacementResult result;
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> parents(n);
  ParallelFor(0, n, [&](size_t v) { parents[v] = kInvalidNode; });

  for (const NodeId root : region) {
    if (parents[root] != kInvalidNode) continue;  // already in a found piece
    ++result.pieces;
    parents[root] = root;
    // Ascending iteration makes `root` the minimum of its piece: every
    // smaller region vertex was already claimed by an earlier BFS.
    std::vector<NodeId> piece = {root};
    std::vector<NodeId> frontier = {root};
    while (!frontier.empty()) {
      frontier = internal_bfs::PushStep(graph, frontier, parents);
      for (const NodeId x : frontier) {
        result.forest_edges.push_back({parents[x], x});
        piece.push_back(x);
      }
    }
    ParallelFor(0, piece.size(),
                [&](size_t i) { labels[piece[i]] = root; });
  }
  return result;
}

}  // namespace connectit

#endif  // CONNECTIT_ALGO_REPLACEMENT_H_
