#include "src/algo/verify.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/algo/bfs.h"

namespace connectit {

namespace {

// Plain sequential union-find with path halving + union by size.
class SeqDsu {
 public:
  explicit SeqDsu(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId Find(NodeId v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  void Union(NodeId a, NodeId b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<NodeId> size_;
};

std::vector<NodeId> LabelsFromDsu(SeqDsu& dsu, size_t n) {
  // Canonical form: min vertex id per component.
  std::vector<NodeId> min_label(n, kInvalidNode);
  for (size_t v = 0; v < n; ++v) {
    const NodeId r = dsu.Find(static_cast<NodeId>(v));
    min_label[r] = std::min(min_label[r], static_cast<NodeId>(v));
  }
  std::vector<NodeId> labels(n);
  for (size_t v = 0; v < n; ++v) {
    labels[v] = min_label[dsu.Find(static_cast<NodeId>(v))];
  }
  return labels;
}

}  // namespace

std::vector<NodeId> SequentialComponents(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  SeqDsu dsu(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.neighbors(u)) {
      if (v > u) dsu.Union(u, v);
    }
  }
  return LabelsFromDsu(dsu, n);
}

std::vector<NodeId> SequentialComponents(const EdgeList& edges) {
  SeqDsu dsu(edges.num_nodes);
  for (const Edge& e : edges.edges) dsu.Union(e.u, e.v);
  return LabelsFromDsu(dsu, edges.num_nodes);
}

std::vector<NodeId> CanonicalizeLabels(const std::vector<NodeId>& labels) {
  std::unordered_map<NodeId, NodeId> min_of_label;
  min_of_label.reserve(64);
  for (size_t v = 0; v < labels.size(); ++v) {
    auto [it, inserted] =
        min_of_label.try_emplace(labels[v], static_cast<NodeId>(v));
    if (!inserted) it->second = std::min(it->second, static_cast<NodeId>(v));
  }
  std::vector<NodeId> out(labels.size());
  for (size_t v = 0; v < labels.size(); ++v) {
    out[v] = min_of_label[labels[v]];
  }
  return out;
}

bool CheckComponentsMatch(const Graph& graph,
                          const std::vector<NodeId>& labels) {
  if (labels.size() != graph.num_nodes()) return false;
  return SamePartition(labels, SequentialComponents(graph));
}

bool SamePartition(const std::vector<NodeId>& labels,
                   const std::vector<NodeId>& expected) {
  if (labels.size() != expected.size()) return false;
  return CanonicalizeLabels(labels) == CanonicalizeLabels(expected);
}

ComponentStats ComputeComponentStats(const std::vector<NodeId>& labels) {
  ComponentStats stats;
  std::unordered_map<NodeId, NodeId> counts;
  for (NodeId label : labels) ++counts[label];
  stats.num_components = static_cast<NodeId>(counts.size());
  for (const auto& [label, count] : counts) {
    stats.largest_component = std::max(stats.largest_component, count);
  }
  return stats;
}

bool CheckSpanningForest(const Graph& graph,
                         const std::vector<Edge>& forest_edges) {
  const NodeId n = graph.num_nodes();
  // Every forest edge must be a graph edge.
  for (const Edge& e : forest_edges) {
    if (e.u >= n || e.v >= n) return false;
    const auto nbrs = graph.neighbors(e.u);
    if (!std::binary_search(nbrs.begin(), nbrs.end(), e.v)) return false;
  }
  // Acyclic: unioning forest edges must never join an already-joined pair.
  SeqDsu dsu(n);
  for (const Edge& e : forest_edges) {
    if (dsu.Find(e.u) == dsu.Find(e.v)) return false;  // cycle
    dsu.Union(e.u, e.v);
  }
  // Size: n - #components edges means the forest spans every component.
  const ComponentStats stats =
      ComputeComponentStats(SequentialComponents(graph));
  return forest_edges.size() ==
         static_cast<size_t>(n) - static_cast<size_t>(stats.num_components);
}

NodeId EstimateEffectiveDiameter(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  if (n == 0) return 0;
  const std::vector<NodeId> labels = SequentialComponents(graph);
  // Find the largest component's smallest vertex.
  std::unordered_map<NodeId, NodeId> counts;
  for (NodeId label : labels) ++counts[label];
  NodeId best_label = 0;
  NodeId best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best_label = label;
    }
  }
  // The BFS round count is the eccentricity of the start vertex within its
  // component — the lower-bound-style "effective diameter" the paper
  // reports for its large graphs.
  return Bfs(graph, best_label).num_rounds;
}

}  // namespace connectit
