// A minimal work-sharing scheduler providing ParallelFor.
//
// The paper's experiments use a Cilk-like work-stealing scheduler. We
// provide a simpler fixed pool with dynamic chunk self-scheduling, which has
// the same semantics (unordered parallel iteration) and is adequate at
// laptop scale. The pool size defaults to std::thread::hardware_concurrency
// and can be overridden with the CONNECTIT_THREADS environment variable or
// SetNumWorkers().
//
// Nested ParallelFor calls from inside a worker run sequentially (the usual
// flattening rule for simple pools), which keeps the scheduler deadlock-free
// without continuation stealing.

#ifndef CONNECTIT_PARALLEL_THREAD_POOL_H_
#define CONNECTIT_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace connectit {

class ThreadPool {
 public:
  // Returns the process-wide pool, creating it on first use.
  static ThreadPool& Get();

  // Number of workers (including the calling thread when it participates).
  size_t num_workers() const { return num_workers_; }

  // Resizes the pool. Must not be called concurrently with parallel work.
  void Resize(size_t num_workers);

  // NUMA node assigned to `worker`: workers form contiguous groups, one per
  // topology node (worker * nodes / num_workers), and each spawned worker
  // best-effort binds its affinity to that node's cpus at thread start. On a
  // single-node topology every worker maps to node 0 and no binding happens.
  size_t NodeOf(size_t worker) const;

  // Number of topology nodes the current worker threads were bound against.
  size_t num_bound_nodes() const { return bound_nodes_; }

  // Restarts the worker threads so they re-read the NUMA topology and
  // re-bind (after NumaTopology::OverrideNodes). Must not be called
  // concurrently with parallel work.
  void Rebind();

  // Runs fn(worker_id) on `num_tasks` workers (including the caller) and
  // waits for all of them. fn must be safe to invoke concurrently.
  void RunOnWorkers(size_t num_tasks, const std::function<void(size_t)>& fn);

  // True when the calling thread is one of the pool's workers.
  static bool InWorker();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  explicit ThreadPool(size_t num_workers);

  void WorkerLoop(size_t worker_id);
  void StartThreads();
  void StopThreads();

  size_t num_workers_ = 1;
  size_t bound_nodes_ = 1;  // topology node count captured at StartThreads
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_epoch_ = 0;
  size_t job_tasks_ = 0;
  size_t job_pending_ = 0;
  bool shutdown_ = false;
};

namespace internal {

// Shared state for one dynamically scheduled loop.
struct LoopState {
  std::atomic<size_t> next{0};
  size_t end = 0;
  size_t grain = 1;
};

}  // namespace internal

// Returns the effective parallelism for parallel loops.
size_t NumWorkers();

// Overrides the pool size (e.g., for scaling experiments). A value of 0
// restores the default.
void SetNumWorkers(size_t n);

// Parallel loop over [begin, end). `fn(i)` is invoked exactly once per index,
// in unspecified order, possibly concurrently. `grain` is the chunk size for
// dynamic self-scheduling; pass a larger grain for very cheap bodies.
template <typename F>
void ParallelFor(size_t begin, size_t end, F&& fn, size_t grain = 0) {
  if (begin >= end) return;
  const size_t n = end - begin;
  ThreadPool& pool = ThreadPool::Get();
  const size_t workers = pool.num_workers();
  if (grain == 0) {
    // Default grain: ~8 chunks per worker, at least 1.
    grain = n / (workers * 8) + 1;
    if (grain < 1) grain = 1;
  }
  if (workers <= 1 || n <= grain || ThreadPool::InWorker()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  internal::LoopState state;
  state.next.store(begin, std::memory_order_relaxed);
  state.end = end;
  state.grain = grain;
  std::function<void(size_t)> task = [&state, &fn](size_t /*worker*/) {
    for (;;) {
      const size_t lo =
          state.next.fetch_add(state.grain, std::memory_order_relaxed);
      if (lo >= state.end) break;
      const size_t hi = std::min(lo + state.grain, state.end);
      for (size_t i = lo; i < hi; ++i) fn(i);
    }
  };
  pool.RunOnWorkers(workers, task);
}

// Parallel loop over blocks: fn(block_begin, block_end) once per contiguous
// chunk. Useful when the body keeps per-chunk scratch state.
template <typename F>
void ParallelForBlocked(size_t begin, size_t end, F&& fn, size_t grain = 0) {
  if (begin >= end) return;
  const size_t n = end - begin;
  ThreadPool& pool = ThreadPool::Get();
  const size_t workers = pool.num_workers();
  if (grain == 0) grain = n / (workers * 8) + 1;
  if (workers <= 1 || n <= grain || ThreadPool::InWorker()) {
    fn(begin, end);
    return;
  }
  internal::LoopState state;
  state.next.store(begin, std::memory_order_relaxed);
  state.end = end;
  state.grain = grain;
  std::function<void(size_t)> task = [&state, &fn](size_t /*worker*/) {
    for (;;) {
      const size_t lo =
          state.next.fetch_add(state.grain, std::memory_order_relaxed);
      if (lo >= state.end) break;
      const size_t hi = std::min(lo + state.grain, state.end);
      fn(lo, hi);
    }
  };
  pool.RunOnWorkers(workers, task);
}

}  // namespace connectit

#endif  // CONNECTIT_PARALLEL_THREAD_POOL_H_
