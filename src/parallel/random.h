// Deterministic, splittable pseudo-random utilities.
//
// Parallel algorithms need per-element random values that do not depend on
// the schedule. We use stateless hashing (splitmix64) keyed by (seed, index)
// so every run with the same seed produces identical samples regardless of
// thread count.

#ifndef CONNECTIT_PARALLEL_RANDOM_H_
#define CONNECTIT_PARALLEL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace connectit {

// splitmix64 finalizer: a high-quality 64-bit mix function.
inline uint64_t Hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A stateless generator: value i of stream `seed` is Hash64(seed ^ mix(i)).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : seed_(Hash64(seed + 1)) {}

  // The i-th random 64-bit value of this stream.
  uint64_t Get(uint64_t i) const { return Hash64(seed_ ^ (i * kGolden)); }

  // The i-th random value in [0, bound). Requires bound > 0.
  uint64_t GetBounded(uint64_t i, uint64_t bound) const {
    // Multiply-shift range reduction (unbiased enough for sampling use).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Get(i)) * bound) >> 64);
  }

  // The i-th random double in [0, 1).
  double GetDouble(uint64_t i) const {
    return static_cast<double>(Get(i) >> 11) * 0x1.0p-53;
  }

  // Derives an independent stream.
  Rng Split(uint64_t salt) const { return Rng(seed_ ^ Hash64(salt + 17)); }

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  uint64_t seed_;
};

// Bounded Zipfian sampler over [0, n) with skew theta in (0, 1) — the
// Gray et al. rejection-free inversion used by YCSB-style load generators.
// Stateless like Rng: sample i of a (seed, n, theta) configuration is a
// pure function, so open-loop client threads can partition one logical
// request stream by index without coordination. Construction is O(n) (the
// zeta(n, theta) prefix sum); sampling is O(1).
//
// Sample() returns a *rank*: 0 is the hottest key, 1 the next, and so on.
// Serving benches usually want the hot keys scattered across the id space
// rather than clustered at 0 — ScatteredSample() hashes the rank to a
// stable pseudo-random position, preserving the frequency skew.
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta = 0.99, uint64_t seed = 0)
      : n_(n < 1 ? 1 : n), theta_(theta), rng_(Hash64(seed + 0x5a1fu)) {
    zetan_ = Zeta(n_, theta_);
    const double zeta2 = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t n() const { return n_; }

  // The i-th sample's rank in [0, n), rank 0 most frequent.
  uint64_t Sample(uint64_t i) const {
    const double u = rng_.GetDouble(i);
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

  // The i-th sample with ranks scattered over [0, n) by a stable hash.
  uint64_t ScatteredSample(uint64_t i) const {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Hash64(Sample(i) + 0x2545f491ull)) *
         n_) >>
        64);
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t k = 1; k <= n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  Rng rng_;
};

}  // namespace connectit

#endif  // CONNECTIT_PARALLEL_RANDOM_H_
