// Deterministic, splittable pseudo-random utilities.
//
// Parallel algorithms need per-element random values that do not depend on
// the schedule. We use stateless hashing (splitmix64) keyed by (seed, index)
// so every run with the same seed produces identical samples regardless of
// thread count.

#ifndef CONNECTIT_PARALLEL_RANDOM_H_
#define CONNECTIT_PARALLEL_RANDOM_H_

#include <cstdint>

namespace connectit {

// splitmix64 finalizer: a high-quality 64-bit mix function.
inline uint64_t Hash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A stateless generator: value i of stream `seed` is Hash64(seed ^ mix(i)).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : seed_(Hash64(seed + 1)) {}

  // The i-th random 64-bit value of this stream.
  uint64_t Get(uint64_t i) const { return Hash64(seed_ ^ (i * kGolden)); }

  // The i-th random value in [0, bound). Requires bound > 0.
  uint64_t GetBounded(uint64_t i, uint64_t bound) const {
    // Multiply-shift range reduction (unbiased enough for sampling use).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Get(i)) * bound) >> 64);
  }

  // The i-th random double in [0, 1).
  double GetDouble(uint64_t i) const {
    return static_cast<double>(Get(i) >> 11) * 0x1.0p-53;
  }

  // Derives an independent stream.
  Rng Split(uint64_t salt) const { return Rng(seed_ ^ Hash64(salt + 17)); }

 private:
  static constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  uint64_t seed_;
};

}  // namespace connectit

#endif  // CONNECTIT_PARALLEL_RANDOM_H_
