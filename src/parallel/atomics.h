// Atomic helper primitives used throughout ConnectIt.
//
// All concurrent algorithms in this library operate on arrays of plain
// integral values (parent/label arrays) using compare-and-swap loops. These
// helpers centralize the memory-order conventions: relaxed loads on hot
// paths, acq_rel CAS, matching the reference ConnectIt implementation's use
// of raw x86 atomics.

#ifndef CONNECTIT_PARALLEL_ATOMICS_H_
#define CONNECTIT_PARALLEL_ATOMICS_H_

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace connectit {

// Atomically loads `*addr`. The arrays we operate on are allocated as plain
// T[]; all concurrent accesses go through these helpers, which is valid for
// lock-free std::atomic_ref-style access on the supported platforms.
template <typename T>
inline T AtomicLoad(const T* addr) {
  static_assert(std::is_trivially_copyable_v<T>);
  return reinterpret_cast<const std::atomic<T>*>(addr)->load(
      std::memory_order_acquire);
}

template <typename T>
inline T AtomicLoadRelaxed(const T* addr) {
  static_assert(std::is_trivially_copyable_v<T>);
  return reinterpret_cast<const std::atomic<T>*>(addr)->load(
      std::memory_order_relaxed);
}

template <typename T>
inline void AtomicStore(T* addr, T value) {
  reinterpret_cast<std::atomic<T>*>(addr)->store(value,
                                                 std::memory_order_release);
}

// Single compare-and-swap attempt; returns true iff `*addr` was `expected`
// and has been replaced by `desired`.
template <typename T>
inline bool CompareAndSwap(T* addr, T expected, T desired) {
  return reinterpret_cast<std::atomic<T>*>(addr)->compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel,
      std::memory_order_acquire);
}

// Atomically sets `*addr = min(*addr, value)`. Returns true iff this call
// lowered the stored value (the priority-update primitive of Shun et al.).
template <typename T>
inline bool WriteMin(T* addr, T value) {
  T current = AtomicLoadRelaxed(addr);
  while (value < current) {
    if (CompareAndSwap(addr, current, value)) return true;
    current = AtomicLoadRelaxed(addr);
  }
  return false;
}

// Atomically sets `*addr = max(*addr, value)`. Returns true iff this call
// raised the stored value.
template <typename T>
inline bool WriteMax(T* addr, T value) {
  T current = AtomicLoadRelaxed(addr);
  while (value > current) {
    if (CompareAndSwap(addr, current, value)) return true;
    current = AtomicLoadRelaxed(addr);
  }
  return false;
}

template <typename T>
inline T FetchAdd(T* addr, T delta) {
  return reinterpret_cast<std::atomic<T>*>(addr)->fetch_add(
      delta, std::memory_order_acq_rel);
}

}  // namespace connectit

#endif  // CONNECTIT_PARALLEL_ATOMICS_H_
