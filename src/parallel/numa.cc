#include "src/parallel/numa.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace connectit {

namespace {

thread_local size_t t_current_node = 0;

// The resolved topology. Replaced wholesale by OverrideNodes; old instances
// are intentionally leaked (they are tiny and may still be referenced by
// running workers until the pool is rebound).
std::atomic<const NumaTopology*> g_topology{nullptr};
std::mutex g_topology_mu;

size_t HardwareCpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Parses a sysfs cpulist such as "0-15,32-47" into cpu ids.
std::vector<unsigned> ParseCpuList(const std::string& list) {
  std::vector<unsigned> cpus;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string tok = list.substr(pos, comma - pos);
    if (!tok.empty()) {
      const size_t dash = tok.find('-');
      const long lo = std::atol(tok.c_str());
      const long hi =
          dash == std::string::npos ? lo : std::atol(tok.c_str() + dash + 1);
      for (long c = lo; c >= 0 && c <= hi; ++c) {
        cpus.push_back(static_cast<unsigned>(c));
      }
    }
    pos = comma + 1;
  }
  return cpus;
}

// Reads /sys/devices/system/node/node<i>/cpulist; empty when absent.
std::vector<std::vector<unsigned>> SysfsNodeCpus() {
  std::vector<std::vector<unsigned>> nodes;
  for (size_t i = 0;; ++i) {
    char path[128];
    std::snprintf(path, sizeof(path),
                  "/sys/devices/system/node/node%zu/cpulist", i);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) break;
    std::string list;
    char buf[256];
    while (std::fgets(buf, sizeof(buf), f) != nullptr) list += buf;
    std::fclose(f);
    while (!list.empty() && (list.back() == '\n' || list.back() == ' ')) {
      list.pop_back();
    }
    nodes.push_back(ParseCpuList(list));
  }
  return nodes;
}

}  // namespace

NumaTopology* NumaTopology::Detect(size_t forced_nodes) {
  NumaTopology* topo = new NumaTopology();
  size_t emulated_k = forced_nodes;
  if (emulated_k == 0) {
    if (const char* env = std::getenv("CONNECTIT_NUMA_NODES")) {
      const long v = std::atol(env);
      if (v >= 1) emulated_k = static_cast<size_t>(v);
    }
  }
  if (emulated_k > 0) {
    // Emulated: partition the hardware cpus into k contiguous groups. k may
    // exceed the cpu count (trailing nodes then own no cpus but remain valid
    // logical nodes for replica placement).
    emulated_k = std::min<size_t>(emulated_k, 64);
    const size_t cpus = HardwareCpus();
    topo->cpus_of_node_.resize(emulated_k);
    topo->node_of_cpu_.resize(cpus, 0);
    for (size_t c = 0; c < cpus; ++c) {
      const size_t node = std::min(c * emulated_k / cpus, emulated_k - 1);
      topo->cpus_of_node_[node].push_back(static_cast<unsigned>(c));
      topo->node_of_cpu_[c] = node;
    }
    topo->emulated_ = true;
    topo->backend_ = emulated_k == 1 ? "single" : "emulated";
    return topo;
  }
  std::vector<std::vector<unsigned>> sys = SysfsNodeCpus();
  // Nodes with no cpus (memory-only nodes) are dropped: nothing can be
  // bound to them and shard placement wants compute next to memory.
  sys.erase(std::remove_if(sys.begin(), sys.end(),
                           [](const std::vector<unsigned>& c) {
                             return c.empty();
                           }),
            sys.end());
  if (sys.size() >= 2) {
    unsigned max_cpu = 0;
    for (const auto& cpus : sys) {
      for (unsigned c : cpus) max_cpu = std::max(max_cpu, c);
    }
    topo->cpus_of_node_ = std::move(sys);
    topo->node_of_cpu_.assign(static_cast<size_t>(max_cpu) + 1, 0);
    for (size_t node = 0; node < topo->cpus_of_node_.size(); ++node) {
      for (unsigned c : topo->cpus_of_node_[node]) {
        topo->node_of_cpu_[c] = node;
      }
    }
    topo->backend_ = "sysfs";
    return topo;
  }
  // Single node: every cpu on node 0.
  const size_t cpus = HardwareCpus();
  topo->cpus_of_node_.resize(1);
  topo->node_of_cpu_.resize(cpus, 0);
  for (size_t c = 0; c < cpus; ++c) {
    topo->cpus_of_node_[0].push_back(static_cast<unsigned>(c));
  }
  return topo;
}

const NumaTopology& NumaTopology::Get() {
  const NumaTopology* topo = g_topology.load(std::memory_order_acquire);
  if (topo != nullptr) return *topo;
  std::lock_guard<std::mutex> lock(g_topology_mu);
  topo = g_topology.load(std::memory_order_acquire);
  if (topo == nullptr) {
    topo = Detect(/*forced_nodes=*/0);
    g_topology.store(topo, std::memory_order_release);
  }
  return *topo;
}

void NumaTopology::OverrideNodes(size_t k) {
  std::lock_guard<std::mutex> lock(g_topology_mu);
  g_topology.store(Detect(k), std::memory_order_release);
}

size_t NumaTopology::CurrentNode() { return t_current_node; }

size_t NumaTopology::NodeOfCpu(unsigned cpu) const {
  if (static_cast<size_t>(cpu) >= node_of_cpu_.size()) return 0;
  return node_of_cpu_[cpu];
}

bool NumaTopology::BindCurrentThread(size_t node) const {
  if (node >= num_nodes()) node = 0;
  t_current_node = node;
  const std::vector<unsigned>& cpus = cpus_of_node_[node];
  if (cpus.empty() || num_nodes() <= 1) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (unsigned c : cpus) CPU_SET(c, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  return false;
#endif
}

namespace internal {

void RunBoundToNode(size_t node, const std::function<void()>& fn) {
  const NumaTopology& topo = NumaTopology::Get();
  const size_t previous_node = t_current_node;
#if defined(__linux__)
  cpu_set_t saved;
  CPU_ZERO(&saved);
  const bool have_saved = sched_getaffinity(0, sizeof(saved), &saved) == 0;
  const bool bound = topo.BindCurrentThread(node);
  fn();
  if (bound && have_saved) sched_setaffinity(0, sizeof(saved), &saved);
#else
  topo.BindCurrentThread(node);
  fn();
#endif
  t_current_node = previous_node;
}

}  // namespace internal

}  // namespace connectit
