// NUMA topology discovery, thread binding, and node-local placement.
//
// Two backends share one interface:
//
//  * real ("sysfs"): node count and per-node cpu lists are parsed from
//    /sys/devices/system/node/node*/cpulist; BindCurrentThread pins the
//    calling thread to the node's cpus with sched_setaffinity, and
//    AllocateOnNode relies on the kernel's first-touch policy by touching
//    pages from a thread temporarily bound to the target node. No libnuma
//    link dependency.
//  * emulated: CONNECTIT_NUMA_NODES=k partitions the hardware cpus into k
//    contiguous groups, so single-socket machines (CI in particular)
//    exercise every multi-replica code path — replica allocation, node-bound
//    worker groups, cross-node counters — with real affinity masks but no
//    actual remote memory.
//
// On a machine that is neither multi-socket nor emulating, the topology is a
// single node and every NUMA-aware component falls back to the flat layout.
//
// Affinity syscalls are best-effort: in sandboxes where sched_setaffinity
// fails, the *logical* node assignment (CurrentNode) is still published, so
// replicated data structures and counters behave deterministically even when
// the OS ignores the placement hint.

#ifndef CONNECTIT_PARALLEL_NUMA_H_
#define CONNECTIT_PARALLEL_NUMA_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "src/parallel/thread_pool.h"

namespace connectit {

class NumaTopology {
 public:
  // Returns the process-wide topology, resolving it on first use:
  // CONNECTIT_NUMA_NODES (emulated) > sysfs (real) > single node.
  static const NumaTopology& Get();

  // Forces an emulated topology with `k` nodes (0 re-detects from the
  // environment / sysfs). Callers must quiesce parallel work and then
  // ThreadPool::Get().Rebind() so workers pick up the new node groups.
  static void OverrideNodes(size_t k);

  // Logical NUMA node of the calling thread: set by BindCurrentThread (and
  // hence by the pool's node-bound workers); 0 for unbound threads.
  static size_t CurrentNode();

  size_t num_nodes() const { return cpus_of_node_.size(); }
  bool emulated() const { return emulated_; }
  // "sysfs" (real), "emulated" (CONNECTIT_NUMA_NODES / OverrideNodes), or
  // "single" (no NUMA visible).
  const char* backend() const { return backend_; }

  const std::vector<unsigned>& CpusOfNode(size_t node) const {
    return cpus_of_node_[node];
  }
  size_t NodeOfCpu(unsigned cpu) const;

  // Best-effort: pins the calling thread to `node`'s cpus and publishes the
  // logical assignment to CurrentNode(). Returns false when the affinity
  // syscall is unsupported or rejected (the logical assignment still holds).
  bool BindCurrentThread(size_t node) const;

 private:
  NumaTopology() = default;
  static NumaTopology* Detect(size_t forced_nodes);

  // node -> sorted hardware cpu ids (empty per-node lists are legal when an
  // emulated k exceeds the cpu count).
  std::vector<std::vector<unsigned>> cpus_of_node_;
  std::vector<size_t> node_of_cpu_;
  bool emulated_ = false;
  const char* backend_ = "single";
};

namespace internal {
// Runs fn() with the calling thread temporarily bound to `node`, restoring
// the previous affinity mask afterwards (best-effort on both legs).
void RunBoundToNode(size_t node, const std::function<void()>& fn);
}  // namespace internal

// Node-local array allocation via first-touch: the pages are touched (and
// initialized with init(i)) from a thread bound to `node`, so on a real NUMA
// machine they are backed by that node's memory. Sequential by design — a
// parallel initialization would first-touch from the wrong nodes.
template <typename T, typename Init>
std::unique_ptr<T[]> AllocateOnNode(size_t count, size_t node, Init&& init) {
  std::unique_ptr<T[]> data(new T[count]);
  T* raw = data.get();
  internal::RunBoundToNode(node, [&] {
    for (size_t i = 0; i < count; ++i) raw[i] = init(i);
  });
  return data;
}

// Node-affine parallel loop: item i is preferentially executed by a worker
// whose node is (i % num_nodes); idle workers steal from other nodes'
// queues, so the loop always completes even with skewed worker groups. This
// matches ShardedGraph's shard->node placement (shard i lives on node
// i % k), keeping sweep workers on the memory they touch. Falls back to a
// plain grain-1 ParallelFor on single-node topologies.
template <typename F>
void ParallelForNodeAffine(size_t count, F&& fn) {
  if (count == 0) return;
  const NumaTopology& topo = NumaTopology::Get();
  const size_t nodes = topo.num_nodes();
  ThreadPool& pool = ThreadPool::Get();
  const size_t workers = pool.num_workers();
  if (nodes <= 1 || workers <= 1 || count <= 1) {
    ParallelFor(0, count, fn, /*grain=*/1);
    return;
  }
  // One self-scheduling counter per node; the c-th claim on node j's queue
  // is item j + c * nodes. Padded to avoid false sharing between queues.
  struct alignas(64) NodeQueue {
    std::atomic<size_t> next{0};
  };
  std::vector<NodeQueue> queues(nodes);
  pool.RunOnWorkers(workers, [&](size_t worker) {
    const size_t home = pool.NodeOf(worker);
    for (size_t probe = 0; probe < nodes; ++probe) {
      const size_t q = (home + probe) % nodes;
      for (;;) {
        const size_t c = queues[q].next.fetch_add(1, std::memory_order_relaxed);
        const size_t item = q + c * nodes;
        if (item >= count) break;
        fn(item);
      }
    }
  });
}

}  // namespace connectit

#endif  // CONNECTIT_PARALLEL_NUMA_H_
