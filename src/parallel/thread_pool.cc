#include "src/parallel/thread_pool.h"

#include <cstdlib>
#include <string>

#include "src/parallel/numa.h"

namespace connectit {

namespace {

thread_local bool t_in_worker = false;

size_t DefaultWorkers() {
  if (const char* env = std::getenv("CONNECTIT_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool& ThreadPool::Get() {
  // Intentionally leaked: workers must outlive all static destructors.
  static ThreadPool* pool = new ThreadPool(DefaultWorkers());
  return *pool;
}

bool ThreadPool::InWorker() { return t_in_worker; }

ThreadPool::ThreadPool(size_t num_workers)
    : num_workers_(num_workers == 0 ? 1 : num_workers) {
  StartThreads();
}

ThreadPool::~ThreadPool() { StopThreads(); }

void ThreadPool::StartThreads() {
  // Capture the topology once per thread generation: NodeOf stays stable
  // for the lifetime of these workers even if the topology is overridden
  // later (Rebind restarts the threads against the new one).
  bound_nodes_ = NumaTopology::Get().num_nodes();
  // Worker 0 is the caller of RunOnWorkers; spawn num_workers_ - 1 threads.
  for (size_t i = 1; i < num_workers_; ++i) {
    threads_.emplace_back([this, i] {
      if (bound_nodes_ > 1) {
        NumaTopology::Get().BindCurrentThread(NodeOf(i));
      }
      WorkerLoop(i);
    });
  }
}

size_t ThreadPool::NodeOf(size_t worker) const {
  if (bound_nodes_ <= 1 || num_workers_ == 0) return 0;
  return worker * bound_nodes_ / num_workers_;
}

void ThreadPool::Rebind() {
  StopThreads();
  StartThreads();
}

void ThreadPool::StopThreads() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  shutdown_ = false;
}

void ThreadPool::Resize(size_t num_workers) {
  if (num_workers == 0) num_workers = DefaultWorkers();
  if (num_workers == num_workers_) return;
  StopThreads();
  num_workers_ = num_workers;
  StartThreads();
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  t_in_worker = true;
  size_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_epoch_ != seen_epoch &&
                             worker_id < job_tasks_);
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    (*job)(worker_id);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--job_pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunOnWorkers(size_t num_tasks,
                              const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (num_tasks > num_workers_) num_tasks = num_workers_;
  if (num_tasks == 1 || t_in_worker) {
    fn(0);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    job_ = &fn;
    ++job_epoch_;
    job_tasks_ = num_tasks;
    job_pending_ = num_tasks - 1;  // caller runs task 0 itself
  }
  work_cv_.notify_all();
  t_in_worker = true;
  fn(0);
  t_in_worker = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job_pending_ == 0; });
    job_ = nullptr;
  }
}

size_t NumWorkers() { return ThreadPool::Get().num_workers(); }

void SetNumWorkers(size_t n) { ThreadPool::Get().Resize(n); }

}  // namespace connectit
