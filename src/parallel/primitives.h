// Parallel sequence primitives: reduce, scan (prefix sums), pack/filter,
// histogram and sorting helpers built on ParallelFor.
//
// These mirror the Ligra/GBBS primitives the paper's implementation relies
// on. All primitives are deterministic for a fixed input regardless of the
// number of workers.

#ifndef CONNECTIT_PARALLEL_PRIMITIVES_H_
#define CONNECTIT_PARALLEL_PRIMITIVES_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "src/parallel/thread_pool.h"

namespace connectit {

namespace internal {

inline size_t NumBlocks(size_t n, size_t block) { return (n + block - 1) / block; }

inline size_t BlockSizeFor(size_t n) {
  const size_t workers = NumWorkers();
  size_t block = n / (workers * 8) + 1;
  if (block < 2048) block = 2048;  // amortize per-block bookkeeping
  return block;
}

}  // namespace internal

// Parallel reduction of f(i) over [begin, end) with an associative,
// commutative combiner. `identity` must be the combiner's identity.
template <typename T, typename F, typename Combine>
T ParallelReduce(size_t begin, size_t end, T identity, F&& f,
                 Combine&& combine) {
  if (begin >= end) return identity;
  const size_t n = end - begin;
  const size_t block = internal::BlockSizeFor(n);
  const size_t nblocks = internal::NumBlocks(n, block);
  if (nblocks <= 1) {
    T acc = identity;
    for (size_t i = begin; i < end; ++i) acc = combine(acc, f(i));
    return acc;
  }
  std::vector<T> partial(nblocks, identity);
  ParallelFor(
      0, nblocks,
      [&](size_t b) {
        const size_t lo = begin + b * block;
        const size_t hi = std::min(lo + block, end);
        T acc = identity;
        for (size_t i = lo; i < hi; ++i) acc = combine(acc, f(i));
        partial[b] = acc;
      },
      1);
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

// Sum of f(i) over [begin, end).
template <typename T, typename F>
T ParallelSum(size_t begin, size_t end, F&& f) {
  return ParallelReduce(
      begin, end, T{0}, f, [](T a, T b) { return a + b; });
}

// Counts indices i in [begin, end) with pred(i) true.
template <typename Pred>
size_t ParallelCount(size_t begin, size_t end, Pred&& pred) {
  return ParallelSum<size_t>(begin, end,
                             [&](size_t i) { return pred(i) ? 1u : 0u; });
}

// Exclusive prefix sum over data[0..n); returns the total. data is updated
// in place: data[i] becomes sum of the original data[0..i).
template <typename T>
T ScanExclusive(T* data, size_t n) {
  if (n == 0) return T{0};
  const size_t block = internal::BlockSizeFor(n);
  const size_t nblocks = internal::NumBlocks(n, block);
  if (nblocks <= 1) {
    T acc{0};
    for (size_t i = 0; i < n; ++i) {
      T v = data[i];
      data[i] = acc;
      acc += v;
    }
    return acc;
  }
  std::vector<T> sums(nblocks);
  ParallelFor(
      0, nblocks,
      [&](size_t b) {
        const size_t lo = b * block;
        const size_t hi = std::min(lo + block, n);
        T acc{0};
        for (size_t i = lo; i < hi; ++i) acc += data[i];
        sums[b] = acc;
      },
      1);
  T total{0};
  for (size_t b = 0; b < nblocks; ++b) {
    T v = sums[b];
    sums[b] = total;
    total += v;
  }
  ParallelFor(
      0, nblocks,
      [&](size_t b) {
        const size_t lo = b * block;
        const size_t hi = std::min(lo + block, n);
        T acc = sums[b];
        for (size_t i = lo; i < hi; ++i) {
          T v = data[i];
          data[i] = acc;
          acc += v;
        }
      },
      1);
  return total;
}

// Stable parallel pack: emits f(i) for each i in [0, n) with pred(i) true,
// preserving index order. Returns the packed vector.
template <typename Out, typename Pred, typename F>
std::vector<Out> ParallelPack(size_t n, Pred&& pred, F&& f) {
  if (n == 0) return {};
  const size_t block = internal::BlockSizeFor(n);
  const size_t nblocks = internal::NumBlocks(n, block);
  std::vector<size_t> counts(nblocks);
  ParallelFor(
      0, nblocks,
      [&](size_t b) {
        const size_t lo = b * block;
        const size_t hi = std::min(lo + block, n);
        size_t c = 0;
        for (size_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
        counts[b] = c;
      },
      1);
  const size_t total = ScanExclusive(counts.data(), counts.size());
  std::vector<Out> out(total);
  ParallelFor(
      0, nblocks,
      [&](size_t b) {
        const size_t lo = b * block;
        const size_t hi = std::min(lo + block, n);
        size_t pos = counts[b];
        for (size_t i = lo; i < hi; ++i) {
          if (pred(i)) out[pos++] = f(i);
        }
      },
      1);
  return out;
}

// Stable filter of indices satisfying pred.
template <typename Pred>
std::vector<size_t> ParallelFilterIndices(size_t n, Pred&& pred) {
  return ParallelPack<size_t>(n, pred, [](size_t i) { return i; });
}

// Parallel merge-based sort. Sorts [data, data+n) with comparator `less`.
template <typename T, typename Less>
void ParallelSort(T* data, size_t n, Less less) {
  const size_t workers = NumWorkers();
  if (workers <= 1 || n < 1u << 14 || ThreadPool::InWorker()) {
    std::sort(data, data + n, less);
    return;
  }
  // Split into one run per worker, sort runs in parallel, then merge pairs.
  size_t runs = workers;
  std::vector<size_t> bounds(runs + 1);
  for (size_t r = 0; r <= runs; ++r) bounds[r] = n * r / runs;
  ParallelFor(
      0, runs,
      [&](size_t r) { std::sort(data + bounds[r], data + bounds[r + 1], less); },
      1);
  std::vector<T> buffer(n);
  T* src = data;
  T* dst = buffer.data();
  while (runs > 1) {
    const size_t pairs = runs / 2;
    std::vector<size_t> new_bounds((runs + 1) / 2 + 1);
    ParallelFor(
        0, pairs,
        [&](size_t p) {
          std::merge(src + bounds[2 * p], src + bounds[2 * p + 1],
                     src + bounds[2 * p + 1], src + bounds[2 * p + 2],
                     dst + bounds[2 * p], less);
        },
        1);
    if (runs % 2 == 1) {
      std::copy(src + bounds[runs - 1], src + bounds[runs],
                dst + bounds[runs - 1]);
    }
    for (size_t p = 0; p < pairs; ++p) new_bounds[p] = bounds[2 * p];
    if (runs % 2 == 1) new_bounds[pairs] = bounds[runs - 1];
    new_bounds[(runs + 1) / 2] = n;
    bounds = std::move(new_bounds);
    runs = (runs + 1) / 2;
    std::swap(src, dst);
  }
  if (src != data) std::copy(src, src + n, data);
}

template <typename T>
void ParallelSort(T* data, size_t n) {
  ParallelSort(data, n, std::less<T>());
}

template <typename T, typename Less>
void ParallelSort(std::vector<T>& v, Less less) {
  ParallelSort(v.data(), v.size(), less);
}

template <typename T>
void ParallelSort(std::vector<T>& v) {
  ParallelSort(v.data(), v.size(), std::less<T>());
}

}  // namespace connectit

#endif  // CONNECTIT_PARALLEL_PRIMITIVES_H_
