// Epoch-based reclamation (EBR / RCU-style) for atomically published
// immutable states.
//
// The serving layer (connectivity_index.h) publishes immutable snapshot
// blocks through a single atomic pointer: mutators build a new block, swap
// it in, and *retire* the old one. Readers must be able to dereference the
// pointer they loaded without locks, so retired blocks cannot be freed
// until every reader that might hold them has moved on. This header
// provides that grace-period machinery:
//
//   - Readers wrap each access in an epoch::Guard — two relaxed-cost
//     atomic stores (pin, unpin) around the pointer load. Wait-free.
//   - Writers call Retire(block) after unpublishing it, then
//     AdvanceAndReclaim(): bump the global epoch and free every retired
//     block whose retire-epoch precedes the oldest pinned reader.
//   - A block may additionally carry a refcount (snapshot handles pinned
//     across many queries); reclamation then also waits for refs == 0, so
//     a long-held snapshot defers only its own block, never the epoch.
//
// Safety argument (the only subtle case): a reader pins epoch e, then
// loads the published pointer. If the load returns a block B that a writer
// retires at epoch r, then the pin-store precedes the writer's
// unpublish-exchange in the seq_cst order (otherwise the load would have
// seen B's replacement), and r — read from the monotonic epoch counter
// after that exchange — satisfies e <= r. Reclamation frees B only when
// every active pin is > r, so the reader's pin blocks the free. The
// seq_cst fence in Pin() is what makes the pin-store visible to the
// writer's slot scan before the reader's pointer load can execute.
//
// The writer side (Retire / AdvanceAndReclaim / TryReclaim) serializes on
// an internal mutex; it is called from mutator paths that already hold the
// owning structure's exclusive lock, so the mutex is uncontended in
// practice. Reader registration uses a fixed slot table: the first Guard
// on a thread claims a cache-line-padded slot, released at thread exit.

#ifndef CONNECTIT_PARALLEL_EPOCH_H_
#define CONNECTIT_PARALLEL_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/stats/counters.h"

namespace connectit::epoch {

inline constexpr uint64_t kIdle = ~0ull;

// Upper bound on threads concurrently *inside* a Guard-protected region.
// Slots are recycled at thread exit, so this bounds live readers, not
// thread creations. Exceeding it aborts loudly rather than racing.
inline constexpr size_t kMaxSlots = 512;

class Domain {
 public:
  // The process-wide domain every published snapshot uses. Function-local
  // static: snapshots may outlive the structure that published them, so
  // the reclamation state must outlive all of those structures too.
  static Domain& Global() {
    static Domain* domain = new Domain();  // never destroyed (see above)
    return *domain;
  }

  // ---- reader side (wait-free) ----

 private:
  struct Slot;

 public:
  class Guard {
   public:
    explicit Guard(Domain& domain = Global()) : domain_(&domain) {
      Slot& slot = domain_->ThreadSlot();
      slot_ = &slot;
      // Nesting support: an inner guard inherits the outer pin (the outer
      // epoch is older, hence strictly more protective).
      saved_ = slot.epoch.load(std::memory_order_relaxed);
      if (saved_ == kIdle) {
        slot.epoch.store(domain_->epoch_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        // Order the pin before any subsequent pointer load (see the
        // safety argument in the header comment).
        std::atomic_thread_fence(std::memory_order_seq_cst);
      }
    }

    ~Guard() {
      if (saved_ == kIdle) {
        slot_->epoch.store(kIdle, std::memory_order_release);
      }
    }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Domain* domain_;
    Slot* slot_;
    uint64_t saved_;
  };

  // ---- writer side (serialized on an internal mutex) ----

  // Hands `block` to the domain for deferred deletion via `deleter`. Call
  // after the block is unpublished (no longer loadable by new readers).
  // `refs` may be null; when set, deletion additionally waits until the
  // count reaches zero, so refcounted handles acquired before the retire
  // keep the block alive past any number of epoch advances.
  void Retire(void* block, void (*deleter)(void*),
              const std::atomic<uint64_t>* refs) {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.push_back(
        Retired{block, deleter, refs, epoch_.load(std::memory_order_relaxed)});
    stats::RecordSnapshotRetired();
  }

  // Opens a new grace period and frees every retired block no pinned
  // reader can still hold. The usual post-publish call.
  void AdvanceAndReclaim() {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    stats::RecordEpochAdvance();
    ReclaimLocked();
  }

  // Reclaims without advancing — the path a refcount release takes so a
  // dropped snapshot does not linger until the next publication.
  void TryReclaim() {
    std::lock_guard<std::mutex> lock(mu_);
    ReclaimLocked();
  }

  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // Retired-but-not-yet-freed blocks (the deferred-reclamation backlog).
  size_t backlog() const {
    std::lock_guard<std::mutex> lock(mu_);
    return retired_.size();
  }

  Domain() = default;
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
    std::atomic<bool> claimed{false};
  };

  struct Retired {
    void* block;
    void (*deleter)(void*);
    const std::atomic<uint64_t>* refs;  // null = epoch-only lifetime
    uint64_t retire_epoch;
  };

  // Releases the slot when its thread exits so the table bounds live
  // readers, not thread creations.
  struct SlotLease {
    Slot* slot = nullptr;
    ~SlotLease() {
      if (slot != nullptr) {
        slot->epoch.store(kIdle, std::memory_order_release);
        slot->claimed.store(false, std::memory_order_release);
      }
    }
  };

  Slot& ThreadSlot() {
    thread_local SlotLease lease;
    if (lease.slot == nullptr) {
      for (size_t i = 0; i < kMaxSlots; ++i) {
        bool expected = false;
        if (slots_[i].claimed.compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          lease.slot = &slots_[i];
          return slots_[i];
        }
      }
      std::abort();  // > kMaxSlots concurrent reader threads
    }
    return *lease.slot;
  }

  void ReclaimLocked() {
    if (retired_.empty()) return;
    // Pair with readers' unpin release-stores: after this fence, a slot
    // observed idle implies its (former) reader's refcount updates are
    // visible too.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    uint64_t min_pinned = kIdle;
    for (size_t i = 0; i < kMaxSlots; ++i) {
      const uint64_t e = slots_[i].epoch.load(std::memory_order_acquire);
      if (e < min_pinned) min_pinned = e;
    }
    size_t kept = 0;
    for (Retired& r : retired_) {
      const bool epoch_safe = r.retire_epoch < min_pinned;
      const bool unreferenced =
          r.refs == nullptr || r.refs->load(std::memory_order_acquire) == 0;
      if (epoch_safe && unreferenced) {
        r.deleter(r.block);
        stats::RecordSnapshotReclaimed();
      } else {
        retired_[kept++] = r;
      }
    }
    retired_.resize(kept);
  }

  std::atomic<uint64_t> epoch_{0};
  Slot slots_[kMaxSlots];

  mutable std::mutex mu_;
  std::vector<Retired> retired_;
};

}  // namespace connectit::epoch

#endif  // CONNECTIT_PARALLEL_EPOCH_H_
