// The ConnectIt framework (paper Algorithms 1 and 2): compose a sampling
// method with a finish method to obtain a static connectivity or spanning
// forest algorithm.
//
// A finish method is a type exposing:
//   static constexpr bool kRootBased;
//   static void FinishComponents(const Graph&, std::vector<NodeId>& labels,
//                                NodeId frequent_label);
// and, when kRootBased:
//   static void FinishForest(const Graph&, std::vector<NodeId>& labels,
//                            std::vector<Edge>& slots, NodeId frequent_label);
//
// `labels` enters FinishComponents as the sampling phase's partial labeling
// (a depth-<=1 min-rooted forest; the identity when unsampled) and leaves
// fully compressed: labels[v] is the minimum vertex id of v's component
// (for ID-linking algorithms) or a canonical root (JTB).
//
// Representation support (paper §2 "Data Format"): the Finish*/Run* entry
// points are templates over any adjacency representation (plain CSR,
// byte-compressed CSR). Edge-centric finish methods additionally expose
// *OnCoo entry points that run natively on an EdgeList — no CSR is ever
// built — which the registry selects for unsampled runs on COO handles
// (see registry.cc and ARCHITECTURE.md for the dispatch contract).

#ifndef CONNECTIT_CORE_CONNECTIT_H_
#define CONNECTIT_CORE_CONNECTIT_H_

#include <numeric>
#include <type_traits>
#include <vector>

#include "src/core/frequent.h"
#include "src/core/options.h"
#include "src/core/sampling.h"
#include "src/core/slot_recorder.h"
#include "src/graph/coo.h"
#include "src/graph/csr.h"
#include "src/liutarjan/label_prop.h"
#include "src/liutarjan/liu_tarjan.h"
#include "src/liutarjan/stergiou.h"
#include "src/parallel/primitives.h"
#include "src/sv/shiloach_vishkin.h"
#include "src/unionfind/dsu.h"
#include "src/unionfind/numa_dsu.h"

namespace connectit {

// Selects the parent-array implementation for the placement axis: the flat
// shared array, or the NUMA-replicated wrapper (identical final labelings;
// see src/unionfind/numa_dsu.h).
template <UniteOption kUnite, FindOption kFind, SpliceOption kSplice,
          PlacementOption kPlace>
using DsuFor = std::conditional_t<kPlace == PlacementOption::kFlat,
                                  Dsu<kUnite, kFind, kSplice>,
                                  NumaDsu<kUnite, kFind, kSplice>>;

// skip[v] = 1 iff v carried the frequent label after sampling. Empty when
// unsampled.
inline std::vector<uint8_t> MakeSkipMask(const std::vector<NodeId>& labels,
                                         NodeId frequent) {
  if (frequent == kInvalidNode) return {};
  std::vector<uint8_t> skip(labels.size());
  ParallelFor(0, labels.size(), [&](size_t v) {
    skip[v] = (labels[v] == frequent) ? 1 : 0;
  });
  return skip;
}

// Decides whether the arc (u, v) should be applied so that every undirected
// edge not internal to the frequent component is applied exactly once.
inline bool ApplyArc(NodeId u, NodeId v, const std::vector<uint8_t>& skip) {
  if (skip.empty()) return u < v;
  if (skip[u]) return false;
  return u < v || skip[v];
}

// Materializes the edges the edge-centric finish algorithms (Liu-Tarjan,
// Stergiou) must process, *contracted* through the sampled labeling: the
// edge for arc (u, v) is (labels[u], labels[v]). This realizes the
// contraction view of the paper's Theorem 4 — the min-based finish runs on
// cluster representatives, so sampled clusters can never be split — and it
// keeps the endpoints roots, which RootUp variants require. Self-loops
// (intra-cluster edges) are dropped; each surviving undirected edge appears
// exactly once. When `originals` is non-null it receives the underlying
// graph edge for each emitted entry (spanning forest).
template <typename GraphT>
std::vector<Edge> CollectFinishEdges(const GraphT& graph,
                                     const std::vector<NodeId>& labels,
                                     const std::vector<uint8_t>& skip,
                                     std::vector<Edge>* originals = nullptr) {
  const NodeId n = graph.num_nodes();
  auto want = [&](NodeId u, NodeId v) {
    return ApplyArc(u, v, skip) && labels[u] != labels[v];
  };
  auto source_active = [&](NodeId u) { return skip.empty() || !skip[u]; };
  std::vector<EdgeId> counts(static_cast<size_t>(n) + 1, 0);
  ParallelFor(0, n, [&](size_t ui) {
    const NodeId u = static_cast<NodeId>(ui);
    if (!source_active(u)) return;  // counts[ui] stays 0
    EdgeId c = 0;
    graph.MapNeighbors(u, [&](NodeId v) { c += want(u, v) ? 1 : 0; });
    counts[ui] = c;
  });
  const EdgeId total = ScanExclusive(counts.data(), n);
  std::vector<Edge> edges(total);
  if (originals != nullptr) originals->resize(total);
  ParallelFor(0, n, [&](size_t ui) {
    const NodeId u = static_cast<NodeId>(ui);
    if (!source_active(u)) return;
    EdgeId pos = counts[ui];
    graph.MapNeighbors(u, [&](NodeId v) {
      if (want(u, v)) {
        if (originals != nullptr) (*originals)[pos] = {u, v};
        edges[pos] = {labels[u], labels[v]};
        ++pos;
      }
    });
  });
  return edges;
}

inline std::vector<NodeId> IdentityLabels(NodeId n) {
  std::vector<NodeId> labels(n);
  std::iota(labels.begin(), labels.end(), NodeId{0});
  return labels;
}

// Result of Algorithm 2 (and of the COO-native forest drivers below).
struct SpanningForestResult {
  std::vector<NodeId> labels;
  std::vector<Edge> edges;
};

// ---------------------------------------------------------------------------
// COO-native drivers (paper §2 "Data Format": CSR and COO are both
// first-class inputs)
// ---------------------------------------------------------------------------
//
// These run directly on a flat EdgeList — Liu-Tarjan's native input format,
// and the cheapest way to answer connectivity on edge-list input with
// union-find: one parallel unite per edge, no CSR build, no symmetrization.
// Self-loops and duplicate edges in the input are tolerated (unites of
// already-connected endpoints are no-ops; the Liu-Tarjan/Stergiou loops
// skip u == v entries). Sampling is adjacency-dependent and therefore not
// offered here; the registry materializes CSR for sampled runs on COO
// handles (GraphHandle::MaterializedCsr).

// Union-find connectivity on COO (paper §3.3.1), honoring the full
// unite/find/splice option space of Algorithms 10-14.
template <UniteOption kUnite, FindOption kFind,
          SpliceOption kSplice = SpliceOption::kNone,
          PlacementOption kPlace = PlacementOption::kFlat>
std::vector<NodeId> ConnectivityOnEdges(const EdgeList& edges) {
  std::vector<NodeId> labels = IdentityLabels(edges.num_nodes);
  DsuFor<kUnite, kFind, kSplice, kPlace> dsu(labels.data(), edges.num_nodes);
  ParallelFor(0, edges.size(), [&](size_t i) {
    dsu.Unite(edges.edges[i].u, edges.edges[i].v);
  });
  FullyCompressParents(labels.data(), edges.num_nodes);
  return labels;
}

// Union-find spanning forest on COO (paper Algorithm 2's finish step,
// edge-centric form): the winning Unite records the responsible edge into
// the hooked root's slot.
template <UniteOption kUnite, FindOption kFind,
          SpliceOption kSplice = SpliceOption::kNone,
          PlacementOption kPlace = PlacementOption::kFlat>
SpanningForestResult SpanningForestOnEdges(const EdgeList& edges) {
  const NodeId n = edges.num_nodes;
  SpanningForestResult result;
  result.labels = IdentityLabels(n);
  std::vector<Edge> slots(n, kEmptySlot);
  DsuFor<kUnite, kFind, kSplice, kPlace> dsu(result.labels.data(), n);
  ParallelFor(0, edges.size(), [&](size_t i) {
    const Edge e = edges.edges[i];
    const NodeId hooked = dsu.Unite(e.u, e.v);
    if (hooked != kInvalidNode) slots[hooked] = e;
  });
  FullyCompressParents(result.labels.data(), n);
  result.edges = ParallelPack<Edge>(
      n, [&](size_t v) { return slots[v] != kEmptySlot; },
      [&](size_t v) { return slots[v]; });
  return result;
}

// Liu-Tarjan connectivity on COO (paper §3.3.2 / Appendix D; their native
// input format), honoring the full connect/update/shortcut/alter space.
template <LtConnect kConnect, LtUpdate kUpdate, LtShortcut kShortcut,
          LtAlter kAlter>
std::vector<NodeId> ConnectivityOnEdgesLt(const EdgeList& edges) {
  std::vector<NodeId> labels = IdentityLabels(edges.num_nodes);
  std::vector<Edge> work = edges.edges;
  LiuTarjan<kConnect, kUpdate, kShortcut, kAlter> lt;
  lt.Run(work, labels);
  FullyCompressParents(labels.data(), edges.num_nodes);
  return labels;
}

// Liu-Tarjan spanning forest on COO (RootUp variants only — Appendix B.2's
// root-based criterion).
template <LtConnect kConnect, LtUpdate kUpdate, LtShortcut kShortcut,
          LtAlter kAlter>
SpanningForestResult SpanningForestOnEdgesLt(const EdgeList& edges) {
  static_assert(kUpdate == LtUpdate::kRootUp,
                "spanning forest requires a RootUp (root-based) variant");
  const NodeId n = edges.num_nodes;
  SpanningForestResult result;
  result.labels = IdentityLabels(n);
  std::vector<Edge> slots(n, kEmptySlot);
  SlotRecorder recorder(&slots, result.labels.data(), n);
  LiuTarjan<kConnect, kUpdate, kShortcut, kAlter> lt;
  // The work array is consumed (Alter rewrites it); originals stay aligned
  // with it so the recorder stores underlying graph edges.
  lt.RunForest(edges.edges, edges.edges, result.labels, recorder);
  FullyCompressParents(result.labels.data(), n);
  result.edges = ParallelPack<Edge>(
      n, [&](size_t v) { return slots[v] != kEmptySlot; },
      [&](size_t v) { return slots[v]; });
  return result;
}

// Stergiou's two-array BSP algorithm on COO (paper §B.2.5) — edge-centric
// like Liu-Tarjan, so it is COO-native too.
inline std::vector<NodeId> ConnectivityOnEdgesStergiou(const EdgeList& edges) {
  std::vector<NodeId> labels = IdentityLabels(edges.num_nodes);
  std::vector<Edge> work = edges.edges;
  Stergiou st;
  st.Run(work, labels);
  FullyCompressParents(labels.data(), edges.num_nodes);
  return labels;
}

// ---------------------------------------------------------------------------
// Finish adapters
// ---------------------------------------------------------------------------
//
// Each adapter binds one finish family to the framework surface. The
// ComponentsOnCoo/ForestOnCoo statics mark a family as COO-native: the
// registry detects them (registry.cc) and routes unsampled COO-handle runs
// there instead of materializing CSR. Vertex-centric families (SV, label
// propagation) deliberately omit them.

// Union-find finish (paper §3.3.1, Algorithms 10-14; 144 variants across
// unite x find x splice, plus the memory-placement axis). Runs natively on
// CSR, compressed, and COO.
template <UniteOption kUnite, FindOption kFind,
          SpliceOption kSplice = SpliceOption::kNone,
          PlacementOption kPlace = PlacementOption::kFlat>
struct UnionFindFinish {
  static constexpr bool kRootBased = true;

  template <typename GraphT>
  static void FinishComponents(const GraphT& graph,
                               std::vector<NodeId>& labels, NodeId frequent) {
    const NodeId n = graph.num_nodes();
    DsuFor<kUnite, kFind, kSplice, kPlace> dsu(labels.data(), n);
    const std::vector<uint8_t> skip = MakeSkipMask(labels, frequent);
    if (skip.empty()) {
      graph.MapArcs([&](NodeId u, NodeId v) {
        if (u < v) dsu.Unite(u, v);
      });
    } else {
      // Vertex-level skip is the point of sampling: the adjacency lists of
      // frequent-component vertices are never touched.
      graph.MapArcsIf([&](NodeId u) { return !skip[u]; },
                      [&](NodeId u, NodeId v) {
                        if (u < v || skip[v]) dsu.Unite(u, v);
                      });
    }
    FullyCompressParents(labels.data(), n);
  }

  template <typename GraphT>
  static void FinishForest(const GraphT& graph, std::vector<NodeId>& labels,
                           std::vector<Edge>& slots, NodeId frequent) {
    const NodeId n = graph.num_nodes();
    DsuFor<kUnite, kFind, kSplice, kPlace> dsu(labels.data(), n);
    const std::vector<uint8_t> skip = MakeSkipMask(labels, frequent);
    auto apply = [&](NodeId u, NodeId v) {
      const NodeId hooked = dsu.Unite(u, v);
      if (hooked != kInvalidNode) slots[hooked] = {u, v};
    };
    if (skip.empty()) {
      graph.MapArcs([&](NodeId u, NodeId v) {
        if (u < v) apply(u, v);
      });
    } else {
      graph.MapArcsIf([&](NodeId u) { return !skip[u]; },
                      [&](NodeId u, NodeId v) {
                        if (u < v || skip[v]) apply(u, v);
                      });
    }
    FullyCompressParents(labels.data(), n);
  }

  static std::vector<NodeId> ComponentsOnCoo(const EdgeList& edges) {
    return ConnectivityOnEdges<kUnite, kFind, kSplice, kPlace>(edges);
  }
  static SpanningForestResult ForestOnCoo(const EdgeList& edges) {
    return SpanningForestOnEdges<kUnite, kFind, kSplice, kPlace>(edges);
  }
};

// Liu-Tarjan finish (paper §3.3.2; the 16 Appendix D variants). Edge-centric
// — on CSR/compressed it first collects the contracted finish edges; on COO
// it runs natively on the input edge array.
template <LtConnect kConnect, LtUpdate kUpdate, LtShortcut kShortcut,
          LtAlter kAlter>
struct LiuTarjanFinish {
  static constexpr bool kRootBased = (kUpdate == LtUpdate::kRootUp);

  template <typename GraphT>
  static void FinishComponents(const GraphT& graph,
                               std::vector<NodeId>& labels, NodeId frequent) {
    const std::vector<uint8_t> skip = MakeSkipMask(labels, frequent);
    std::vector<Edge> edges = CollectFinishEdges(graph, labels, skip);
    LiuTarjan<kConnect, kUpdate, kShortcut, kAlter> lt;
    lt.Run(edges, labels);
    FullyCompressParents(labels.data(), graph.num_nodes());
  }

  template <typename GraphT>
  static void FinishForest(const GraphT& graph, std::vector<NodeId>& labels,
                           std::vector<Edge>& slots, NodeId frequent) {
    static_assert(kRootBased);
    const std::vector<uint8_t> skip = MakeSkipMask(labels, frequent);
    std::vector<Edge> originals;
    std::vector<Edge> edges =
        CollectFinishEdges(graph, labels, skip, &originals);
    SlotRecorder recorder(&slots, labels.data(), graph.num_nodes());
    LiuTarjan<kConnect, kUpdate, kShortcut, kAlter> lt;
    lt.RunForest(std::move(edges), std::move(originals), labels, recorder);
    FullyCompressParents(labels.data(), graph.num_nodes());
  }

  static std::vector<NodeId> ComponentsOnCoo(const EdgeList& edges) {
    return ConnectivityOnEdgesLt<kConnect, kUpdate, kShortcut, kAlter>(edges);
  }
  static SpanningForestResult ForestOnCoo(const EdgeList& edges) {
    return SpanningForestOnEdgesLt<kConnect, kUpdate, kShortcut, kAlter>(
        edges);
  }
};

// Stergiou finish (paper §B.2.5). Edge-centric; COO-native like Liu-Tarjan.
struct StergiouFinish {
  static constexpr bool kRootBased = false;

  template <typename GraphT>
  static void FinishComponents(const GraphT& graph,
                               std::vector<NodeId>& labels, NodeId frequent) {
    const std::vector<uint8_t> skip = MakeSkipMask(labels, frequent);
    std::vector<Edge> edges = CollectFinishEdges(graph, labels, skip);
    Stergiou st;
    st.Run(edges, labels);
    FullyCompressParents(labels.data(), graph.num_nodes());
  }

  static std::vector<NodeId> ComponentsOnCoo(const EdgeList& edges) {
    return ConnectivityOnEdgesStergiou(edges);
  }
};

// Label-propagation finish (paper §B.2.6). Vertex-centric: needs adjacency
// (per-vertex frontier expansion), so COO handles materialize CSR first.
struct LabelPropFinish {
  static constexpr bool kRootBased = false;

  template <typename GraphT>
  static void FinishComponents(const GraphT& graph,
                               std::vector<NodeId>& labels, NodeId frequent) {
    const NodeId n = graph.num_nodes();
    std::vector<uint8_t> active(n, 1);
    if (frequent != kInvalidNode) {
      ParallelFor(0, n, [&](size_t v) {
        active[v] = (labels[v] == frequent) ? 0 : 1;
      });
    }
    LabelPropagation lp;
    lp.Run(graph, labels, std::move(active));
    FullyCompressParents(labels.data(), n);
  }
};

// Shiloach-Vishkin finish (paper §B.2.4). Vertex-centric over adjacency
// lists (hook-and-compress rounds), so COO handles materialize CSR first.
struct ShiloachVishkinFinish {
  static constexpr bool kRootBased = true;

  template <typename GraphT>
  static void FinishComponents(const GraphT& graph,
                               std::vector<NodeId>& labels, NodeId frequent) {
    const std::vector<uint8_t> skip = MakeSkipMask(labels, frequent);
    ShiloachVishkin::Run(graph, labels, skip.empty() ? nullptr : &skip);
    FullyCompressParents(labels.data(), graph.num_nodes());
  }

  template <typename GraphT>
  static void FinishForest(const GraphT& graph, std::vector<NodeId>& labels,
                           std::vector<Edge>& slots, NodeId frequent) {
    const std::vector<uint8_t> skip = MakeSkipMask(labels, frequent);
    SlotRecorder recorder(&slots, labels.data(), graph.num_nodes());
    ShiloachVishkin::RunGraph(graph, labels,
                              skip.empty() ? nullptr : &skip, recorder);
    FullyCompressParents(labels.data(), graph.num_nodes());
  }
};

// ---------------------------------------------------------------------------
// Framework drivers (Algorithms 1 and 2)
// ---------------------------------------------------------------------------

// Algorithm 1: Connectivity(G, sampling, finish). GraphT is any adjacency
// representation (plain or byte-compressed CSR).
template <typename Finish, typename GraphT>
std::vector<NodeId> RunConnectivity(const GraphT& graph,
                                    const SamplingConfig& sampling = {}) {
  std::vector<NodeId> labels = IdentityLabels(graph.num_nodes());
  NodeId frequent = kInvalidNode;
  if (sampling.option != SamplingOption::kNone) {
    RunSamplingT(graph, sampling, labels);
    frequent = IdentifyFrequentSampled(labels).label;
  }
  Finish::FinishComponents(graph, labels, frequent);
  return labels;
}

// Algorithm 2: SpanningForest(G, sampling, finish). Root-based finish
// methods only.
template <typename Finish, typename GraphT>
SpanningForestResult RunSpanningForest(const GraphT& graph,
                                       const SamplingConfig& sampling = {}) {
  static_assert(Finish::kRootBased,
                "spanning forest requires a root-based finish method");
  const NodeId n = graph.num_nodes();
  SpanningForestResult result;
  result.labels = IdentityLabels(n);
  std::vector<Edge> slots(n, kEmptySlot);
  NodeId frequent = kInvalidNode;
  if (sampling.option != SamplingOption::kNone) {
    RunSamplingForestT(graph, sampling, result.labels, slots);
    frequent = IdentifyFrequentSampled(result.labels).label;
  }
  Finish::FinishForest(graph, result.labels, slots, frequent);
  // Filter the per-vertex slots down to the forest edge list (Algorithm 2,
  // line 7).
  result.edges = ParallelPack<Edge>(
      n, [&](size_t v) { return slots[v] != kEmptySlot; },
      [&](size_t v) { return slots[v]; });
  return result;
}

}  // namespace connectit

#endif  // CONNECTIT_CORE_CONNECTIT_H_
