// Framework-level option types: sampling schemes and their parameters
// (paper §3.2, Appendix C.4).

#ifndef CONNECTIT_CORE_OPTIONS_H_
#define CONNECTIT_CORE_OPTIONS_H_

#include <cstdint>
#include <string_view>

namespace connectit {

enum class SamplingOption {
  kNone,
  kKOut,  // k-out edge sampling (Afforest-inspired, §3.2)
  kBfs,   // direction-optimizing BFS from random sources
  kLdd,   // one round of low-diameter decomposition
};

constexpr std::string_view ToString(SamplingOption s) {
  switch (s) {
    case SamplingOption::kNone: return "NoSampling";
    case SamplingOption::kKOut: return "KOutSampling";
    case SamplingOption::kBfs: return "BFSSampling";
    case SamplingOption::kLdd: return "LDDSampling";
  }
  return "?";
}

// Edge-selection rule for k-out sampling (paper Appendix C.4).
enum class KOutVariant {
  kAfforest,  // first k edges of each vertex (Sutton et al.)
  kPure,      // k uniformly random edges (Holm et al.)
  kHybrid,    // first edge + k-1 random (this paper's default)
  kMaxDegree, // highest-degree neighbor + k-1 random (this paper)
};

constexpr std::string_view ToString(KOutVariant v) {
  switch (v) {
    case KOutVariant::kAfforest: return "kout-afforest";
    case KOutVariant::kPure: return "kout-pure";
    case KOutVariant::kHybrid: return "kout-hybrid";
    case KOutVariant::kMaxDegree: return "kout-maxdeg";
  }
  return "?";
}

struct KOutOptions {
  KOutVariant variant = KOutVariant::kHybrid;
  uint32_t k = 2;
  uint64_t seed = 1;
};

struct BfsSampleOptions {
  // Maximum number of random-source attempts (paper uses c = 3).
  uint32_t max_tries = 3;
  // Stop as soon as a component covering this fraction of vertices is
  // found (paper uses 10%).
  double coverage_threshold = 0.10;
  uint64_t seed = 1;
};

struct LddSampleOptions {
  double beta = 0.2;
  bool permute = false;  // paper's default configuration uses the natural order
  uint64_t seed = 1;
};

// Full sampling configuration for one framework run.
struct SamplingConfig {
  SamplingOption option = SamplingOption::kNone;
  KOutOptions kout;
  BfsSampleOptions bfs;
  LddSampleOptions ldd;

  static SamplingConfig None() { return {}; }
  static SamplingConfig KOut(KOutOptions o = {}) {
    SamplingConfig c;
    c.option = SamplingOption::kKOut;
    c.kout = o;
    return c;
  }
  static SamplingConfig Bfs(BfsSampleOptions o = {}) {
    SamplingConfig c;
    c.option = SamplingOption::kBfs;
    c.bfs = o;
    return c;
  }
  static SamplingConfig Ldd(LddSampleOptions o = {}) {
    SamplingConfig c;
    c.option = SamplingOption::kLdd;
    c.ldd = o;
    return c;
  }
};

}  // namespace connectit

#endif  // CONNECTIT_CORE_OPTIONS_H_
