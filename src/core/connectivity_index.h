// connectit::Connectivity — the serving façade over the variant space.
//
// This is the front door for downstream consumers (examples, the CLI,
// services embedding the library): one object that owns the full
// connectivity lifecycle, so callers never hand-assemble
// GraphHandle/SamplingConfig/StreamingSeed plumbing or look variants up by
// string. The registry (registry.h) stays the internal dispatch seam the
// façade sits on — benches and tests still sweep it directly.
//
//   Connectivity index(Connectivity::Spec()
//                          .Algorithm(VariantDescriptor::UnionFind(
//                              UniteOption::kRemCas, FindOption::kNaive,
//                              SpliceOption::kSplitOne))
//                          .Sampling(SamplingConfig::KOut()));
//   index.Build(graph);                  // bulk analytical pass (Alg. 1)
//   index.SameComponent(u, v);           // serve reads...
//   index.Stream();                      // ...hand off to incremental mode
//   index.Insert(todays_edges, queries); // batches + inline queries (§3.5)
//   Snapshot snap = index.Acquire();     // pin one labeling across queries
//   index.NumComponents();               // reads stay live throughout
//
// Lifecycle: Build runs the configured variant's static pass on the graph
// (converted to the Spec's representation if one was requested); Stream
// seeds the variant's own streaming structure from the built labeling
// through the registry's StreamingSeed seam (the same validation and
// min-rooted normalization as StreamingSeed::FromStatic, without re-running
// the pass); Insert applies §3.5 batches.
//
// Serving model (ServingMode::kSnapshot, the default): every mutation
// (Build, Stream, Insert) finishes by *publishing* an immutable, fully
// path-compressed Snapshot of the labeling through one atomic pointer
// swap. Reads (Component, SameComponent, NumComponents, ComponentSizes,
// Labels) dereference the published pointer inside an epoch guard
// (src/parallel/epoch.h) and answer by plain array indexing — wait-free,
// no lock, no parent-chasing, scaling to all cores while an ingest thread
// applies batches. A reader can never observe a half-applied batch: the
// pointer swaps only between complete labelings. Replaced snapshots are
// retired into the epoch domain and freed once no reader can hold them
// (and, for Acquire'd snapshots, once every handle is released). The
// wait-free AtomicLoad find discipline of §3.5 thereby extends to the
// serving layer. The cost sits on the mutator: each Insert pays Θ(n) to
// materialize the compressed labeling it publishes.
//
// ServingMode::kSharedLock keeps the previous design as an A/B baseline
// (bench_serving measures both): readers share a lock against exclusive
// mutators, and the served labeling is refreshed lazily — an Insert only
// marks it stale, and the first read afterwards pays the Θ(n) refresh once
// (the stale flag is re-checked under the exclusive lock, so racing
// readers cannot duplicate the refresh; stats::ReadServing().
// label_refreshes counts them). A pure ingest loop therefore never pays
// the snapshot cost per batch, at the price of lock-limited reads.
//
// Spec is a builder: algorithm (typed descriptor or registry-name string),
// sampling scheme, target representation, shard count, serving mode.
// Spec::Auto(graph, streaming) inspects graph traits (density, input
// representation, whether streaming is requested) and picks a variant +
// representation per the paper's guidance.

#ifndef CONNECTIT_CORE_CONNECTIVITY_INDEX_H_
#define CONNECTIT_CORE_CONNECTIVITY_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "src/core/registry.h"
#include "src/core/variant_descriptor.h"
#include "src/graph/graph_handle.h"
#include "src/stats/counters.h"

namespace connectit {

class DynamicForest;

// How the read methods are served. kSnapshot is the default; kSharedLock
// is kept as the measured baseline (see the header comment).
enum class ServingMode : uint8_t { kSnapshot, kSharedLock };

const char* ToString(ServingMode mode);

namespace internal {

// One published labeling: immutable after construction (refs aside), so
// any number of readers index it without synchronization.
struct SnapshotData {
  std::vector<NodeId> labels;  // fully path-compressed: labels[labels[v]]
                               // == labels[v] for every v
  std::vector<NodeId> sizes;   // component size by representative label
  NodeId num_components = 0;
  uint64_t version = 0;   // publication sequence number of this index
  bool published = false;  // true = lifetime managed by the epoch domain
  mutable std::atomic<uint64_t> refs{0};  // outstanding Snapshot handles
};

}  // namespace internal

// An immutable, refcounted view of one published labeling. Answers are
// frozen at Acquire() time: any number of queries against one Snapshot
// are mutually consistent no matter how many batches land concurrently.
// Cheap to copy (one atomic increment); holding one defers reclamation of
// exactly its own block, never the epoch machinery. A default-constructed
// Snapshot is empty (valid() == false, zero nodes).
class Snapshot {
 public:
  Snapshot() = default;
  ~Snapshot();
  Snapshot(const Snapshot& other);
  Snapshot& operator=(const Snapshot& other);
  Snapshot(Snapshot&& other) noexcept;
  Snapshot& operator=(Snapshot&& other) noexcept;

  bool valid() const { return data_ != nullptr; }

  NodeId num_nodes() const {
    return data_ == nullptr ? 0 : static_cast<NodeId>(data_->labels.size());
  }
  NodeId Component(NodeId v) const { return data_->labels.at(v); }
  bool SameComponent(NodeId u, NodeId v) const {
    return data_->labels.at(u) == data_->labels.at(v);
  }
  NodeId NumComponents() const {
    return data_ == nullptr ? 0 : data_->num_components;
  }
  // Size of each component, indexed by representative (0 elsewhere).
  const std::vector<NodeId>& ComponentSizes() const { return data_->sizes; }
  const std::vector<NodeId>& Labels() const { return data_->labels; }

  // Publication sequence number: strictly increasing per Connectivity
  // publication, 0 for on-demand (kSharedLock-mode) snapshots.
  uint64_t version() const { return data_ == nullptr ? 0 : data_->version; }

 private:
  friend class Connectivity;
  // Takes ownership of one reference the caller already holds on `data`.
  explicit Snapshot(const internal::SnapshotData* data) : data_(data) {}
  void Release();

  const internal::SnapshotData* data_ = nullptr;
};

class Connectivity {
 public:
  class Spec {
   public:
    // Default: the paper's recommended all-around variant (DefaultVariant),
    // no sampling, keep the input graph's representation, snapshot serving.
    Spec() : algorithm_(DefaultVariant().descriptor) {}

    // Picks algorithm, sampling, and representation from the graph's
    // traits, following the paper's guidance:
    //  - the algorithm is always DefaultVariant (Union-Rem-CAS;FindNaive;
    //    SplitAtomicOne — fastest all-around, root-based, streamable);
    //  - COO inputs stay unsampled so the whole lifecycle runs natively on
    //    the edge list (sampling would force a CSR materialization);
    //  - otherwise dense graphs (avg degree >= 4) get k-out sampling —
    //    sampling only pays when most edges can be skipped after the giant
    //    component is rooted (§4.2);
    //  - large dense CSR inputs are resharded for shard-major locality
    //    unless streaming is requested (a one-shot seed pass would not
    //    amortize the partition cost).
    static Spec Auto(const GraphHandle& graph, bool streaming = false);

    // The finish variant, as a typed descriptor or a registry-name string.
    // The string form is the parse layer for CLIs/configs and dies with a
    // nearest-match suggestion on an unknown name (GetVariantOrDie).
    Spec& Algorithm(const VariantDescriptor& descriptor);
    Spec& Algorithm(std::string_view name);

    Spec& Sampling(const SamplingConfig& sampling) {
      sampling_ = sampling;
      return *this;
    }

    // Convert Build's input to this representation first. A conversion
    // produces an owning handle; an input that already matches is used
    // as-is (so a matching *view* follows Build's view-lifetime rule).
    // Unset: run on whatever representation the caller hands in.
    Spec& Representation(GraphRepresentation representation) {
      representation_ = representation;
      return *this;
    }

    // Shard count for Representation(kSharded); 0 = worker-count default.
    Spec& Shards(size_t num_shards) {
      shards_ = num_shards;
      return *this;
    }

    // Read-path discipline; see the header comment. kSnapshot (default):
    // wait-free epoch-published snapshots, mutators pay Θ(n) per batch.
    // kSharedLock: the lock-based baseline with lazy refresh.
    Spec& Serving(ServingMode mode) {
      serving_ = mode;
      return *this;
    }

    // Snapshot-publication cadence under kSnapshot serving. k = 1 (the
    // default) publishes the Θ(n) snapshot after every Insert batch — the
    // behavior every parity test pins. k > 1 publishes after every k-th
    // batch: reads keep serving the labeling as of the last published
    // batch *boundary* (never a half-applied batch), skipped publications
    // tick stats::ReadServing().publication_skips, and Flush() or the
    // next Erase forces the held-back state out. The write-heavy-ingest
    // knob: at high batch rates the per-batch Θ(n) copy dominates, and
    // most published snapshots are replaced before any reader pins them.
    Spec& PublishEvery(uint32_t k) {
      publish_every_ = k == 0 ? 1 : k;
      return *this;
    }

    // Measure instead of guessing k: after every publication the index
    // re-derives the cadence from EMAs of publication cost vs. batch
    // processing cost, so publication overhead stays a bounded fraction
    // of ingest work (k clamped to [1, kMaxAdaptiveCadence]). A quiet
    // stream still publishes promptly: any batch arriving later than
    // kCadenceQuietGapUs after the previous one publishes immediately.
    // Overrides PublishEvery; stats::ReadServing().publication_cadence_k
    // reports the current choice.
    Spec& AdaptiveCadence(bool adaptive = true) {
      adaptive_cadence_ = adaptive;
      return *this;
    }

    const VariantDescriptor& algorithm() const { return algorithm_; }
    const SamplingConfig& sampling() const { return sampling_; }
    std::optional<GraphRepresentation> representation() const {
      return representation_;
    }
    size_t shards() const { return shards_; }
    ServingMode serving() const { return serving_; }
    uint32_t publish_every() const { return publish_every_; }
    bool adaptive_cadence() const { return adaptive_cadence_; }

   private:
    VariantDescriptor algorithm_;
    SamplingConfig sampling_;
    std::optional<GraphRepresentation> representation_;
    size_t shards_ = 0;
    ServingMode serving_ = ServingMode::kSnapshot;
    uint32_t publish_every_ = 1;
    bool adaptive_cadence_ = false;
  };

  // Adaptive cadence never holds back more than this many batches.
  static constexpr uint32_t kMaxAdaptiveCadence = 64;
  // A batch arriving after a gap longer than this publishes immediately
  // (the stream is quiet; holding back buys nothing).
  static constexpr uint64_t kCadenceQuietGapUs = 50'000;

  // Resolves the Spec's descriptor against the registry; dies if the
  // descriptor denotes an unregistered combination (impossible for
  // descriptors produced by Parse or Spec::Auto).
  Connectivity() : Connectivity(Spec()) {}
  explicit Connectivity(Spec spec);

  // Retires the published snapshot into the epoch domain. Snapshots
  // acquired from this index stay valid after destruction — their blocks
  // are reclaimed when the last handle releases.
  ~Connectivity();

  // Movable for setup-time ergonomics (pick-the-winner loops); the
  // moved-from index reverts to the un-built state of its spec. Not
  // copyable — an index owns its streaming structure and lock.
  Connectivity(Connectivity&& other) noexcept;
  Connectivity& operator=(Connectivity&& other) noexcept;
  Connectivity(const Connectivity&) = delete;
  Connectivity& operator=(const Connectivity&) = delete;

  const Spec& spec() const { return spec_; }
  // The resolved registry variant — the escape hatch for capabilities the
  // façade does not wrap (heatmap axis labels, family predicates, ...).
  const Variant& variant() const { return *variant_; }

  // Runs the variant's static pass (paper Algorithm 1) over `graph` under
  // the Spec's sampling scheme, replacing any previous state. If the Spec
  // requests a different representation the graph is converted (owning);
  // otherwise the handle is used as-is, and a *view* handle's target must
  // outlive the next Build/SpanningForest call. Returns *this for
  // chaining.
  Connectivity& Build(const GraphHandle& graph);

  // Hands off to batch-incremental mode (paper §3.5): seeds the variant's
  // streaming structure from the built labeling via the registry's
  // StreamingSeed seam. Requires a prior Build and a streaming-capable
  // variant (dies otherwise — query variant().supports_streaming first if
  // unsure).
  Connectivity& Stream();

  // Cold-starts streaming over `num_nodes` isolated vertices, no static
  // pass (StreamingSeed::Cold). The from-scratch ingest shape.
  Connectivity& Stream(NodeId num_nodes);

  // True once Stream() has run; Insert is only legal then.
  bool streaming() const;

  // Applies one batch of edge insertions and answers the batched
  // connectivity queries (one byte per query: 1 = connected after this
  // batch). Batches serialize against each other; under kSnapshot serving
  // the post-batch labeling is published before Insert returns, so every
  // subsequent read sees it.
  std::vector<uint8_t> Insert(const std::vector<Edge>& updates,
                              const std::vector<Edge>& queries = {});

  // Applies one batch of edge *deletions* and answers the batched
  // connectivity queries against the post-batch labeling. Requires
  // Stream() first, like Insert.
  //
  // Deletions ride on a dynamic spanning forest (src/core/dynamic_forest.h)
  // armed lazily on the first Erase: the variant's own run_forest pass
  // seeds the forest from the built graph, and every edge inserted since
  // Stream() is replayed from a journal the façade keeps. A deleted
  // non-forest edge is free; a deleted forest edge triggers a parallel
  // replacement-edge search over the affected component
  // (src/algo/replacement.h). Only when a component actually splits is
  // the insertion-only streaming structure reseeded
  // (StreamingSeed::FromLabels) — a deletion with a surviving replacement
  // changes no labels and no query answer. Erase publishes a fresh
  // Snapshot under kSnapshot serving, exactly like Insert, and ticks the
  // erase counters in stats::ReadServing().
  std::vector<uint8_t> Erase(const std::vector<Edge>& updates,
                             const std::vector<Edge>& queries = {});

  // Publishes any batches a cadence k > 1 is still holding back, so
  // Acquire() reflects every batch Insert/Erase has returned for. No-op
  // at k = 1, under kSharedLock serving, or when nothing is pending.
  void Flush();

  // Spanning forest of the built graph via the variant's run_forest (paper
  // Algorithm 2). Requires Build and a root-based variant (dies
  // otherwise).
  SpanningForestResult SpanningForest() const;

  // ---- thread-safe reads against the current labeling ----
  // kSnapshot: wait-free (epoch guard + array indexing, no lock).
  // kSharedLock: shared lock, lazy Θ(n) refresh after a batch.

  // The component representative of v (vertices in the same component
  // report the same representative).
  NodeId Component(NodeId v) const;
  bool SameComponent(NodeId u, NodeId v) const;
  NodeId NumComponents() const;
  // Size of each component, indexed by representative (0 elsewhere).
  std::vector<NodeId> ComponentSizes() const;
  // Snapshot of the full labeling.
  std::vector<NodeId> Labels() const;

  // Pins the current labeling for multi-query consistency: every answer
  // from the returned Snapshot reflects the same batch prefix, no matter
  // how many Inserts land while it is held. Wait-free under kSnapshot
  // serving; under kSharedLock it materializes a one-off snapshot (Θ(n))
  // under the lock.
  Snapshot Acquire() const;

  NodeId num_nodes() const;
  // Representation the index was built on (kCsr before any Build).
  GraphRepresentation representation() const;

 private:
  void CheckBuilt(const char* op) const;

  // First-Erase arming: seeds forest_ from the built graph via the
  // variant's run_forest, then replays insert_journal_. Callers hold mu_
  // exclusively.
  void ArmForestLocked();

  // Builds a SnapshotData (sizes + component count precomputed) from a
  // fully compressed labeling and swaps it in as the published snapshot;
  // retires the previous one. Callers hold mu_ exclusively.
  void PublishLocked(std::vector<NodeId> labels);

  // Unpublishes and retires the current snapshot (destructor, move-out).
  void RetireSnapshot();

  // Insert's publish step: publishes the post-batch labeling or, under a
  // cadence k > 1, holds it back (ticking publication_skips). Updates the
  // cost EMAs and, under AdaptiveCadence, re-derives k. Callers hold mu_
  // exclusively.
  void MaybePublishBatchLocked(uint64_t batch_cost_us);

  bool snapshot_serving() const {
    return spec_.serving() == ServingMode::kSnapshot;
  }

  // Runs fn(labels) under a shared lock, first refreshing the snapshot
  // from the streaming structure (under the exclusive lock) if an Insert
  // left it stale. Keeps reads free of the Theta(n) snapshot cost on the
  // ingest path: batches just flip the stale bit, and the first read
  // afterwards pays for the refresh once — the stale flag is re-checked
  // after the exclusive lock is acquired, so readers racing for the
  // refresh never run it twice (stats::ReadServing().label_refreshes
  // counts actual refreshes; tests pin "one per batch").
  template <typename F>
  decltype(auto) ReadLabels(F&& fn) const {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      if (!labels_stale_) return fn(labels_);
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (labels_stale_) {
      labels_ = streaming_->Labels();
      labels_stale_ = false;
      stats::RecordLabelRefresh();
    }
    return fn(labels_);
  }

  Spec spec_;
  const Variant* variant_;

  mutable std::shared_mutex mu_;
  GraphHandle graph_;  // the built graph, Spec representation
  // Mutator-side labeling staging (empty before Build/Stream). Under
  // kSharedLock serving this is also what reads serve; stale after an
  // Insert until the next read refreshes it from streaming_. Under
  // kSnapshot serving reads never touch it — it only carries the
  // Build→Stream handoff.
  mutable std::vector<NodeId> labels_;
  mutable bool labels_stale_ = false;
  bool built_ = false;
  std::unique_ptr<StreamingConnectivity> streaming_;

  // Batch-deletion state. forest_ arms on the first Erase (null until
  // then — pure insert workloads never pay for it); insert_journal_
  // records every edge Insert applied since the last Build/Stream so the
  // arming pass sees the full current edge set, and drains into forest_
  // when it arms. Re-Stream() keeps both (the edge set is unchanged);
  // Build and cold Stream(n) reset them.
  std::unique_ptr<DynamicForest> forest_;
  std::vector<Edge> insert_journal_;

  // kSnapshot serving: the published labeling. Never null in that mode
  // (an empty snapshot is published at construction); always null under
  // kSharedLock. Swapped only under mu_; loaded lock-free by readers.
  std::atomic<internal::SnapshotData*> snapshot_{nullptr};
  uint64_t publish_seq_ = 0;

  // Publication-cadence state (kSnapshot serving; see Spec::PublishEvery
  // and Spec::AdaptiveCadence). All mutated under mu_ exclusively.
  uint32_t cadence_k_ = 1;              // current effective k
  uint32_t batches_since_publish_ = 0;  // held-back batches
  uint64_t last_batch_end_us_ = 0;      // quiet-stream detection
  double publish_cost_ema_us_ = 0;      // EMA: one PublishLocked
  double batch_cost_ema_us_ = 0;        // EMA: one ProcessBatch
};

}  // namespace connectit

#endif  // CONNECTIT_CORE_CONNECTIVITY_INDEX_H_
