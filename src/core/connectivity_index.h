// connectit::Connectivity — the serving façade over the variant space.
//
// This is the front door for downstream consumers (examples, the CLI,
// services embedding the library): one object that owns the full
// connectivity lifecycle, so callers never hand-assemble
// GraphHandle/SamplingConfig/StreamingSeed plumbing or look variants up by
// string. The registry (registry.h) stays the internal dispatch seam the
// façade sits on — benches and tests still sweep it directly.
//
//   Connectivity index(Connectivity::Spec()
//                          .Algorithm(VariantDescriptor::UnionFind(
//                              UniteOption::kRemCas, FindOption::kNaive,
//                              SpliceOption::kSplitOne))
//                          .Sampling(SamplingConfig::KOut()));
//   index.Build(graph);                  // bulk analytical pass (Alg. 1)
//   index.SameComponent(u, v);           // serve reads...
//   index.Stream();                      // ...hand off to incremental mode
//   index.Insert(todays_edges, queries); // batches + inline queries (§3.5)
//   index.NumComponents();               // reads stay live throughout
//
// Lifecycle: Build runs the configured variant's static pass on the graph
// (converted to the Spec's representation if one was requested); Stream
// seeds the variant's own streaming structure from the built labeling
// through the registry's StreamingSeed seam (the same validation and
// min-rooted normalization as StreamingSeed::FromStatic, without re-running
// the pass); Insert applies §3.5 batches. The read methods (Component,
// SameComponent, NumComponents, ComponentSizes, Labels) are thread-safe
// against each other AND against concurrent Build/Stream/Insert calls:
// readers share a lock, mutators take it exclusively, and each read serves
// a consistent snapshot — the labeling as of some completed batch prefix.
// Build's pass runs outside the lock (reads keep serving the old labeling
// until the swap); Insert holds the lock for the batch, so reads
// interleave *between* batches rather than racing one. The post-batch
// label snapshot is refreshed lazily on the first read after an Insert,
// so a pure ingest loop never pays the Theta(n) snapshot per batch.
//
// Spec is a builder: algorithm (typed descriptor or registry-name string),
// sampling scheme, target representation, shard count. Spec::Auto(graph,
// streaming) inspects graph traits (density, input representation, whether
// streaming is requested) and picks a variant + representation per the
// paper's guidance.

#ifndef CONNECTIT_CORE_CONNECTIVITY_INDEX_H_
#define CONNECTIT_CORE_CONNECTIVITY_INDEX_H_

#include <memory>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "src/core/registry.h"
#include "src/core/variant_descriptor.h"
#include "src/graph/graph_handle.h"

namespace connectit {

class Connectivity {
 public:
  class Spec {
   public:
    // Default: the paper's recommended all-around variant (DefaultVariant),
    // no sampling, keep the input graph's representation.
    Spec() : algorithm_(DefaultVariant().descriptor) {}

    // Picks algorithm, sampling, and representation from the graph's
    // traits, following the paper's guidance:
    //  - the algorithm is always DefaultVariant (Union-Rem-CAS;FindNaive;
    //    SplitAtomicOne — fastest all-around, root-based, streamable);
    //  - COO inputs stay unsampled so the whole lifecycle runs natively on
    //    the edge list (sampling would force a CSR materialization);
    //  - otherwise dense graphs (avg degree >= 4) get k-out sampling —
    //    sampling only pays when most edges can be skipped after the giant
    //    component is rooted (§4.2);
    //  - large dense CSR inputs are resharded for shard-major locality
    //    unless streaming is requested (a one-shot seed pass would not
    //    amortize the partition cost).
    static Spec Auto(const GraphHandle& graph, bool streaming = false);

    // The finish variant, as a typed descriptor or a registry-name string.
    // The string form is the parse layer for CLIs/configs and dies with a
    // nearest-match suggestion on an unknown name (GetVariantOrDie).
    Spec& Algorithm(const VariantDescriptor& descriptor);
    Spec& Algorithm(std::string_view name);

    Spec& Sampling(const SamplingConfig& sampling) {
      sampling_ = sampling;
      return *this;
    }

    // Convert Build's input to this representation first. A conversion
    // produces an owning handle; an input that already matches is used
    // as-is (so a matching *view* follows Build's view-lifetime rule).
    // Unset: run on whatever representation the caller hands in.
    Spec& Representation(GraphRepresentation representation) {
      representation_ = representation;
      return *this;
    }

    // Shard count for Representation(kSharded); 0 = worker-count default.
    Spec& Shards(size_t num_shards) {
      shards_ = num_shards;
      return *this;
    }

    const VariantDescriptor& algorithm() const { return algorithm_; }
    const SamplingConfig& sampling() const { return sampling_; }
    std::optional<GraphRepresentation> representation() const {
      return representation_;
    }
    size_t shards() const { return shards_; }

   private:
    VariantDescriptor algorithm_;
    SamplingConfig sampling_;
    std::optional<GraphRepresentation> representation_;
    size_t shards_ = 0;
  };

  // Resolves the Spec's descriptor against the registry; dies if the
  // descriptor denotes an unregistered combination (impossible for
  // descriptors produced by Parse or Spec::Auto).
  Connectivity() : Connectivity(Spec()) {}
  explicit Connectivity(Spec spec);

  // Movable for setup-time ergonomics (pick-the-winner loops); the
  // moved-from index reverts to the un-built state of its spec. Not
  // copyable — an index owns its streaming structure and lock.
  Connectivity(Connectivity&& other) noexcept;
  Connectivity& operator=(Connectivity&& other) noexcept;
  Connectivity(const Connectivity&) = delete;
  Connectivity& operator=(const Connectivity&) = delete;

  const Spec& spec() const { return spec_; }
  // The resolved registry variant — the escape hatch for capabilities the
  // façade does not wrap (heatmap axis labels, family predicates, ...).
  const Variant& variant() const { return *variant_; }

  // Runs the variant's static pass (paper Algorithm 1) over `graph` under
  // the Spec's sampling scheme, replacing any previous state. If the Spec
  // requests a different representation the graph is converted (owning);
  // otherwise the handle is used as-is, and a *view* handle's target must
  // outlive the next Build/SpanningForest call. Returns *this for
  // chaining.
  Connectivity& Build(const GraphHandle& graph);

  // Hands off to batch-incremental mode (paper §3.5): seeds the variant's
  // streaming structure from the built labeling via the registry's
  // StreamingSeed seam. Requires a prior Build and a streaming-capable
  // variant (dies otherwise — query variant().supports_streaming first if
  // unsure).
  Connectivity& Stream();

  // Cold-starts streaming over `num_nodes` isolated vertices, no static
  // pass (StreamingSeed::Cold). The from-scratch ingest shape.
  Connectivity& Stream(NodeId num_nodes);

  // True once Stream() has run; Insert is only legal then.
  bool streaming() const;

  // Applies one batch of edge insertions and answers the batched
  // connectivity queries (one byte per query: 1 = connected after this
  // batch). Batches serialize against each other and against reads.
  std::vector<uint8_t> Insert(const std::vector<Edge>& updates,
                              const std::vector<Edge>& queries = {});

  // Spanning forest of the built graph via the variant's run_forest (paper
  // Algorithm 2). Requires Build and a root-based variant (dies
  // otherwise).
  SpanningForestResult SpanningForest() const;

  // ---- thread-safe reads against the current labeling ----

  // The component representative of v (vertices in the same component
  // report the same representative).
  NodeId Component(NodeId v) const;
  bool SameComponent(NodeId u, NodeId v) const;
  NodeId NumComponents() const;
  // Size of each component, indexed by representative (0 elsewhere).
  std::vector<NodeId> ComponentSizes() const;
  // Snapshot of the full labeling.
  std::vector<NodeId> Labels() const;

  NodeId num_nodes() const;
  // Representation the index was built on (kCsr before any Build).
  GraphRepresentation representation() const;

 private:
  void CheckBuilt(const char* op) const;

  // Runs fn(labels) under a shared lock, first refreshing the snapshot
  // from the streaming structure (under the exclusive lock) if an Insert
  // left it stale. Keeps reads wait-free of the Theta(n) snapshot cost on
  // the ingest path: batches just flip the stale bit, and the first read
  // afterwards pays for the refresh once.
  template <typename F>
  decltype(auto) ReadLabels(F&& fn) const {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      if (!labels_stale_) return fn(labels_);
    }
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (labels_stale_) {
      labels_ = streaming_->Labels();
      labels_stale_ = false;
    }
    return fn(labels_);
  }

  Spec spec_;
  const Variant* variant_;

  mutable std::shared_mutex mu_;
  GraphHandle graph_;  // the built graph, Spec representation
  // Served labeling (empty before Build/Stream). Stale after an Insert
  // until the next read refreshes it from streaming_.
  mutable std::vector<NodeId> labels_;
  mutable bool labels_stale_ = false;
  bool built_ = false;
  std::unique_ptr<StreamingConnectivity> streaming_;
};

}  // namespace connectit

#endif  // CONNECTIT_CORE_CONNECTIVITY_INDEX_H_
