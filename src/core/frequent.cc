#include "src/core/frequent.h"

#include <unordered_map>

#include "src/parallel/random.h"

namespace connectit {

FrequentResult IdentifyFrequentExact(const std::vector<NodeId>& labels) {
  FrequentResult result;
  result.inspected = labels.size();
  std::unordered_map<NodeId, uint64_t> counts;
  counts.reserve(1024);
  for (NodeId label : labels) ++counts[label];
  for (const auto& [label, count] : counts) {
    if (count > result.count ||
        (count == result.count && label < result.label)) {
      result.count = count;
      result.label = label;
    }
  }
  return result;
}

FrequentResult IdentifyFrequentSampled(const std::vector<NodeId>& labels,
                                       uint32_t num_samples, uint64_t seed) {
  FrequentResult result;
  if (labels.empty()) return result;
  if (labels.size() <= num_samples) return IdentifyFrequentExact(labels);
  result.inspected = num_samples;
  Rng rng(seed);
  std::unordered_map<NodeId, uint64_t> counts;
  counts.reserve(num_samples);
  for (uint32_t i = 0; i < num_samples; ++i) {
    ++counts[labels[rng.GetBounded(i, labels.size())]];
  }
  for (const auto& [label, count] : counts) {
    if (count > result.count ||
        (count == result.count && label < result.label)) {
      result.count = count;
      result.label = label;
    }
  }
  return result;
}

}  // namespace connectit
