// Streaming (parallel batch-incremental) connectivity (paper §3.5,
// Algorithm 3).
//
// Three algorithm types, matching the paper's classification:
//   Type (i)  — union-find variants without SpliceAtomic: a batch's updates
//               and queries run fully concurrently (linearizable,
//               wait-free finds).
//   Type (ii) — Shiloach-Vishkin and root-based Liu-Tarjan: updates are
//               processed synchronously (rounds over the batch), queries
//               are wait-free finds.
//   Type (iii)— Rem's algorithms with SpliceAtomic: phase-concurrent; the
//               batch is split into an update phase and a query phase.
//
// Every structure can be born empty (the NodeId constructor — identity
// labeling) or *seeded* with the labeling of a completed static pass (the
// vector<NodeId> constructor), which is how a bulk CSR/compressed/COO run
// hands off to batch-incremental updates. Seeds are validated and
// normalized by AdoptSeedLabels; the registry's make_streaming(StreamingSeed)
// factory (registry.h) builds the seed labeling by running the variant's own
// static finish on a GraphHandle.

#ifndef CONNECTIT_CORE_STREAMING_H_
#define CONNECTIT_CORE_STREAMING_H_

#include <atomic>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/core/connectit.h"
#include "src/graph/types.h"
#include "src/liutarjan/liu_tarjan.h"
#include "src/parallel/atomics.h"
#include "src/parallel/thread_pool.h"
#include "src/sv/shiloach_vishkin.h"
#include "src/unionfind/dsu.h"

namespace connectit {

// Validates that `parents` is a rooted forest over [0, parents.size()) and
// normalizes it to the form every streaming structure can adopt as its
// starting state: depth <= 1, each tree rooted at its minimum member. The
// normalization preserves the partition and is required, not cosmetic —
// Rem's unite rules link strictly from larger parent values to smaller, so
// an adopted labeling must satisfy parents[v] <= v (the same invariant the
// sampling phase guarantees, see sampling.h).
//
// Throws std::invalid_argument on an out-of-range parent or a cycle.
inline std::vector<NodeId> AdoptSeedLabels(std::vector<NodeId> parents) {
  const NodeId n = static_cast<NodeId>(parents.size());
  if (n == 0) return parents;
  std::atomic<bool> in_range{true};
  ParallelFor(0, n, [&](size_t v) {
    if (parents[v] >= n) in_range.store(false, std::memory_order_relaxed);
  });
  if (!in_range.load(std::memory_order_relaxed)) {
    throw std::invalid_argument("streaming seed: parent id out of range");
  }
  // Pointer doubling: on a rooted forest every vertex reaches its root
  // within ceil(log2(depth)) rounds. Odd-length cycles never converge (the
  // round bound catches them); even-length cycles collapse to spurious
  // self-loops, so converged parents are additionally required to have been
  // roots in the *original* array.
  std::vector<uint8_t> was_root(n);
  ParallelFor(0, n, [&](size_t v) {
    was_root[v] = (parents[v] == static_cast<NodeId>(v)) ? 1 : 0;
  });
  std::vector<NodeId> next(n);
  // After round k every pointer spans 2^k original hops, so 8*sizeof(NodeId)
  // rounds cover any forest depth; one extra non-converging round is a cycle.
  const int max_rounds = 8 * static_cast<int>(sizeof(NodeId)) + 1;
  for (int round = 0;; ++round) {
    std::atomic<bool> changed{false};
    ParallelFor(0, n, [&](size_t v) {
      next[v] = parents[parents[v]];
      if (next[v] != parents[v]) changed.store(true, std::memory_order_relaxed);
    });
    parents.swap(next);
    if (!changed.load(std::memory_order_relaxed)) break;
    if (round >= max_rounds) {
      throw std::invalid_argument("streaming seed: parent array has a cycle");
    }
  }
  std::atomic<bool> forest{true};
  ParallelFor(0, n, [&](size_t v) {
    if (!was_root[parents[v]]) forest.store(false, std::memory_order_relaxed);
  });
  if (!forest.load(std::memory_order_relaxed)) {
    throw std::invalid_argument("streaming seed: parent array has a cycle");
  }
  // Re-root every tree at its minimum member (cluster-min labeling).
  std::vector<NodeId> min_of(n, kInvalidNode);
  ParallelFor(0, n, [&](size_t v) {
    WriteMin(&min_of[parents[v]], static_cast<NodeId>(v));
  });
  ParallelFor(0, n, [&](size_t v) { parents[v] = min_of[parents[v]]; });
  return parents;
}

// One streaming connectivity structure over vertices [0, n). Thread-safe
// only through ProcessBatch (batches are applied one after another).
class StreamingConnectivity {
 public:
  virtual ~StreamingConnectivity() = default;

  // Applies `updates` (edge insertions) and answers `queries` (pairs);
  // returns one result per query: 1 if the endpoints are connected.
  virtual std::vector<uint8_t> ProcessBatch(
      const std::vector<Edge>& updates, const std::vector<Edge>& queries) = 0;

  // Snapshot of the current connectivity labeling (fully compressed copy).
  virtual std::vector<NodeId> Labels() const = 0;

  virtual NodeId num_nodes() const = 0;
};

template <UniteOption kUnite, FindOption kFind,
          SpliceOption kSplice = SpliceOption::kNone,
          PlacementOption kPlace = PlacementOption::kFlat>
class UnionFindStreaming final : public StreamingConnectivity {
 public:
  // Phase-concurrent variants (Rem + SpliceAtomic) must separate updates
  // from queries (Type (iii)); all others interleave them (Type (i)).
  static constexpr bool kPhaseConcurrent = (kSplice == SpliceOption::kSplice);

  // Cold start: the identity-seeded special case (every vertex alone).
  // Skips AdoptSeedLabels — the identity is already normalized, and this
  // constructor sits inside bench timing loops.
  explicit UnionFindStreaming(NodeId n)
      : labels_(IdentityLabels(n)), dsu_(labels_.data(), n) {}

  // Warm start: adopts a static pass's labeling (any rooted forest; see
  // AdoptSeedLabels) so batch updates continue from that state.
  explicit UnionFindStreaming(std::vector<NodeId> seed)
      : labels_(AdoptSeedLabels(std::move(seed))),
        dsu_(labels_.data(), static_cast<NodeId>(labels_.size())) {}

  std::vector<uint8_t> ProcessBatch(
      const std::vector<Edge>& updates,
      const std::vector<Edge>& queries) override {
    std::vector<uint8_t> results(queries.size());
    if constexpr (kPhaseConcurrent) {
      ParallelFor(0, updates.size(), [&](size_t i) {
        dsu_.Unite(updates[i].u, updates[i].v);
      });
      ParallelFor(0, queries.size(), [&](size_t i) {
        results[i] = dsu_.SameSet(queries[i].u, queries[i].v) ? 1 : 0;
      });
    } else {
      // Fully concurrent mix of unions and finds within the batch.
      const size_t total = updates.size() + queries.size();
      ParallelFor(0, total, [&](size_t i) {
        if (i < updates.size()) {
          dsu_.Unite(updates[i].u, updates[i].v);
        } else {
          const size_t q = i - updates.size();
          results[q] = dsu_.SameSet(queries[q].u, queries[q].v) ? 1 : 0;
        }
      });
    }
    return results;
  }

  std::vector<NodeId> Labels() const override {
    // Compress the live forest in place (blocked path-halving in
    // FullyCompressParents) before copying: per-batch snapshot publication
    // stops re-walking chains an earlier publication already resolved.
    // Safe between batches, and redirecting a vertex to its root preserves
    // every unite rule's invariant (min-based: root <= v; JTB: its own
    // finds perform the same redirect).
    FullyCompressParents(labels_.data(), static_cast<NodeId>(labels_.size()));
    return labels_;
  }

  NodeId num_nodes() const override {
    return static_cast<NodeId>(labels_.size());
  }

 private:
  // mutable: Labels() compacts the forest in place, which changes the
  // representation but never the partition (logically const).
  mutable std::vector<NodeId> labels_;
  DsuFor<kUnite, kFind, kSplice, kPlace> dsu_;
};

// Wait-free find over a min-rooted parent forest (used by Type (ii)).
inline bool SameSetByWalk(const std::vector<NodeId>& parents, NodeId u,
                          NodeId v) {
  while (true) {
    NodeId ru = u;
    while (true) {
      const NodeId p = AtomicLoad(&parents[ru]);
      if (p == ru) break;
      ru = p;
    }
    NodeId rv = v;
    while (true) {
      const NodeId p = AtomicLoad(&parents[rv]);
      if (p == rv) break;
      rv = p;
    }
    if (ru == rv) return true;
    if (AtomicLoad(&parents[ru]) == ru) return false;
  }
}

class ShiloachVishkinStreaming final : public StreamingConnectivity {
 public:
  // Cold start: the identity-seeded special case.
  explicit ShiloachVishkinStreaming(NodeId n) : labels_(IdentityLabels(n)) {}

  // Warm start from a static pass's labeling (see AdoptSeedLabels).
  explicit ShiloachVishkinStreaming(std::vector<NodeId> seed)
      : labels_(AdoptSeedLabels(std::move(seed))) {}

  std::vector<uint8_t> ProcessBatch(
      const std::vector<Edge>& updates,
      const std::vector<Edge>& queries) override {
    if (!updates.empty()) ShiloachVishkin::RunOnEdges(updates, labels_);
    std::vector<uint8_t> results(queries.size());
    ParallelFor(0, queries.size(), [&](size_t i) {
      results[i] = SameSetByWalk(labels_, queries[i].u, queries[i].v) ? 1 : 0;
    });
    return results;
  }

  std::vector<NodeId> Labels() const override {
    // In-place compression before the copy; see UnionFindStreaming::Labels.
    FullyCompressParents(labels_.data(), static_cast<NodeId>(labels_.size()));
    return labels_;
  }

  NodeId num_nodes() const override {
    return static_cast<NodeId>(labels_.size());
  }

 private:
  mutable std::vector<NodeId> labels_;
};

// Root-based Liu-Tarjan variants in the streaming setting (Type (ii)).
template <LtConnect kConnect, LtShortcut kShortcut, LtAlter kAlter>
class LiuTarjanStreaming final : public StreamingConnectivity {
 public:
  // Cold start: the identity-seeded special case.
  explicit LiuTarjanStreaming(NodeId n) : labels_(IdentityLabels(n)) {}

  // Warm start from a static pass's labeling (see AdoptSeedLabels).
  explicit LiuTarjanStreaming(std::vector<NodeId> seed)
      : labels_(AdoptSeedLabels(std::move(seed))) {}

  std::vector<uint8_t> ProcessBatch(
      const std::vector<Edge>& updates,
      const std::vector<Edge>& queries) override {
    if (!updates.empty()) {
      // Pre-contract endpoints to their current roots so that RootUp
      // offers can take effect immediately (the forest may have depth > 1
      // across batches).
      std::vector<Edge> edges(updates.size());
      ParallelFor(0, updates.size(), [&](size_t i) {
        // Wait-free root walks (same discipline as SameSetByWalk): the
        // parallel walks race only with each other, and parents only ever
        // move toward roots, so acquire loads suffice.
        NodeId ru = updates[i].u;
        for (NodeId p = AtomicLoad(&labels_[ru]); p != ru;
             p = AtomicLoad(&labels_[ru])) {
          ru = p;
        }
        NodeId rv = updates[i].v;
        for (NodeId p = AtomicLoad(&labels_[rv]); p != rv;
             p = AtomicLoad(&labels_[rv])) {
          rv = p;
        }
        edges[i] = {ru, rv};
      });
      LiuTarjan<kConnect, LtUpdate::kRootUp, kShortcut, kAlter> lt;
      lt.Run(edges, labels_);
    }
    std::vector<uint8_t> results(queries.size());
    ParallelFor(0, queries.size(), [&](size_t i) {
      results[i] = SameSetByWalk(labels_, queries[i].u, queries[i].v) ? 1 : 0;
    });
    return results;
  }

  std::vector<NodeId> Labels() const override {
    // In-place compression before the copy; see UnionFindStreaming::Labels.
    FullyCompressParents(labels_.data(), static_cast<NodeId>(labels_.size()));
    return labels_;
  }

  NodeId num_nodes() const override {
    return static_cast<NodeId>(labels_.size());
  }

 private:
  mutable std::vector<NodeId> labels_;
};

}  // namespace connectit

#endif  // CONNECTIT_CORE_STREAMING_H_
