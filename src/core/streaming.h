// Streaming (parallel batch-incremental) connectivity (paper §3.5,
// Algorithm 3).
//
// Three algorithm types, matching the paper's classification:
//   Type (i)  — union-find variants without SpliceAtomic: a batch's updates
//               and queries run fully concurrently (linearizable,
//               wait-free finds).
//   Type (ii) — Shiloach-Vishkin and root-based Liu-Tarjan: updates are
//               processed synchronously (rounds over the batch), queries
//               are wait-free finds.
//   Type (iii)— Rem's algorithms with SpliceAtomic: phase-concurrent; the
//               batch is split into an update phase and a query phase.

#ifndef CONNECTIT_CORE_STREAMING_H_
#define CONNECTIT_CORE_STREAMING_H_

#include <memory>
#include <vector>

#include "src/core/connectit.h"
#include "src/graph/types.h"
#include "src/liutarjan/liu_tarjan.h"
#include "src/parallel/atomics.h"
#include "src/parallel/thread_pool.h"
#include "src/sv/shiloach_vishkin.h"
#include "src/unionfind/dsu.h"

namespace connectit {

// One streaming connectivity structure over vertices [0, n). Thread-safe
// only through ProcessBatch (batches are applied one after another).
class StreamingConnectivity {
 public:
  virtual ~StreamingConnectivity() = default;

  // Applies `updates` (edge insertions) and answers `queries` (pairs);
  // returns one result per query: 1 if the endpoints are connected.
  virtual std::vector<uint8_t> ProcessBatch(
      const std::vector<Edge>& updates, const std::vector<Edge>& queries) = 0;

  // Snapshot of the current connectivity labeling (fully compressed copy).
  virtual std::vector<NodeId> Labels() const = 0;

  virtual NodeId num_nodes() const = 0;
};

template <UniteOption kUnite, FindOption kFind,
          SpliceOption kSplice = SpliceOption::kNone>
class UnionFindStreaming final : public StreamingConnectivity {
 public:
  // Phase-concurrent variants (Rem + SpliceAtomic) must separate updates
  // from queries (Type (iii)); all others interleave them (Type (i)).
  static constexpr bool kPhaseConcurrent = (kSplice == SpliceOption::kSplice);

  explicit UnionFindStreaming(NodeId n)
      : labels_(IdentityLabels(n)), dsu_(labels_.data(), n) {}

  std::vector<uint8_t> ProcessBatch(
      const std::vector<Edge>& updates,
      const std::vector<Edge>& queries) override {
    std::vector<uint8_t> results(queries.size());
    if constexpr (kPhaseConcurrent) {
      ParallelFor(0, updates.size(), [&](size_t i) {
        dsu_.Unite(updates[i].u, updates[i].v);
      });
      ParallelFor(0, queries.size(), [&](size_t i) {
        results[i] = dsu_.SameSet(queries[i].u, queries[i].v) ? 1 : 0;
      });
    } else {
      // Fully concurrent mix of unions and finds within the batch.
      const size_t total = updates.size() + queries.size();
      ParallelFor(0, total, [&](size_t i) {
        if (i < updates.size()) {
          dsu_.Unite(updates[i].u, updates[i].v);
        } else {
          const size_t q = i - updates.size();
          results[q] = dsu_.SameSet(queries[q].u, queries[q].v) ? 1 : 0;
        }
      });
    }
    return results;
  }

  std::vector<NodeId> Labels() const override {
    std::vector<NodeId> out = labels_;
    FullyCompressParents(out.data(), static_cast<NodeId>(out.size()));
    return out;
  }

  NodeId num_nodes() const override {
    return static_cast<NodeId>(labels_.size());
  }

 private:
  std::vector<NodeId> labels_;
  Dsu<kUnite, kFind, kSplice> dsu_;
};

// Wait-free find over a min-rooted parent forest (used by Type (ii)).
inline bool SameSetByWalk(const std::vector<NodeId>& parents, NodeId u,
                          NodeId v) {
  while (true) {
    NodeId ru = u;
    while (true) {
      const NodeId p = AtomicLoad(&parents[ru]);
      if (p == ru) break;
      ru = p;
    }
    NodeId rv = v;
    while (true) {
      const NodeId p = AtomicLoad(&parents[rv]);
      if (p == rv) break;
      rv = p;
    }
    if (ru == rv) return true;
    if (AtomicLoad(&parents[ru]) == ru) return false;
  }
}

class ShiloachVishkinStreaming final : public StreamingConnectivity {
 public:
  explicit ShiloachVishkinStreaming(NodeId n) : labels_(IdentityLabels(n)) {}

  std::vector<uint8_t> ProcessBatch(
      const std::vector<Edge>& updates,
      const std::vector<Edge>& queries) override {
    if (!updates.empty()) ShiloachVishkin::RunOnEdges(updates, labels_);
    std::vector<uint8_t> results(queries.size());
    ParallelFor(0, queries.size(), [&](size_t i) {
      results[i] = SameSetByWalk(labels_, queries[i].u, queries[i].v) ? 1 : 0;
    });
    return results;
  }

  std::vector<NodeId> Labels() const override {
    std::vector<NodeId> out = labels_;
    FullyCompressParents(out.data(), static_cast<NodeId>(out.size()));
    return out;
  }

  NodeId num_nodes() const override {
    return static_cast<NodeId>(labels_.size());
  }

 private:
  std::vector<NodeId> labels_;
};

// Root-based Liu-Tarjan variants in the streaming setting (Type (ii)).
template <LtConnect kConnect, LtShortcut kShortcut, LtAlter kAlter>
class LiuTarjanStreaming final : public StreamingConnectivity {
 public:
  explicit LiuTarjanStreaming(NodeId n) : labels_(IdentityLabels(n)) {}

  std::vector<uint8_t> ProcessBatch(
      const std::vector<Edge>& updates,
      const std::vector<Edge>& queries) override {
    if (!updates.empty()) {
      // Pre-contract endpoints to their current roots so that RootUp
      // offers can take effect immediately (the forest may have depth > 1
      // across batches).
      std::vector<Edge> edges(updates.size());
      ParallelFor(0, updates.size(), [&](size_t i) {
        // Wait-free root walks (same discipline as SameSetByWalk): the
        // parallel walks race only with each other, and parents only ever
        // move toward roots, so acquire loads suffice.
        NodeId ru = updates[i].u;
        for (NodeId p = AtomicLoad(&labels_[ru]); p != ru;
             p = AtomicLoad(&labels_[ru])) {
          ru = p;
        }
        NodeId rv = updates[i].v;
        for (NodeId p = AtomicLoad(&labels_[rv]); p != rv;
             p = AtomicLoad(&labels_[rv])) {
          rv = p;
        }
        edges[i] = {ru, rv};
      });
      LiuTarjan<kConnect, LtUpdate::kRootUp, kShortcut, kAlter> lt;
      lt.Run(edges, labels_);
    }
    std::vector<uint8_t> results(queries.size());
    ParallelFor(0, queries.size(), [&](size_t i) {
      results[i] = SameSetByWalk(labels_, queries[i].u, queries[i].v) ? 1 : 0;
    });
    return results;
  }

  std::vector<NodeId> Labels() const override {
    std::vector<NodeId> out = labels_;
    FullyCompressParents(out.data(), static_cast<NodeId>(out.size()));
    return out;
  }

  NodeId num_nodes() const override {
    return static_cast<NodeId>(labels_.size());
  }

 private:
  std::vector<NodeId> labels_;
};

}  // namespace connectit

#endif  // CONNECTIT_CORE_STREAMING_H_
