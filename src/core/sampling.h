// Sampling phase implementations (paper §3.2, Algorithms 4-6).
//
// Every scheme emits a partial connectivity labeling satisfying Definition
// 3.1, normalized so that each sampled cluster is labeled by its minimum
// member. The normalization gives two extra properties the finish phase
// relies on: the labeling is a depth-<=1 rooted forest, and parent values
// never exceed vertex ids (required by Rem's value-ordered linking).
//
// The *Forest variants additionally emit partial spanning-forest edges in
// the per-vertex slot array (Definition B.2): slot[v] holds the unique
// forest edge assigned to v, or (kInvalidNode, kInvalidNode).
//
// All schemes are generic over any adjacency representation (plain CSR or
// byte-compressed CSR); the named non-template entry points operate on
// Graph. Sampling inherently needs adjacency (k-out reads degrees and
// NeighborAt; BFS/LDD traverse), so it is never COO-native: sampled runs
// on a COO GraphHandle go through the handle's cached CSR materialization
// (see registry.cc and ARCHITECTURE.md).

#ifndef CONNECTIT_CORE_SAMPLING_H_
#define CONNECTIT_CORE_SAMPLING_H_

#include <algorithm>
#include <vector>

#include "src/algo/bfs.h"
#include "src/algo/ldd.h"
#include "src/core/options.h"
#include "src/graph/csr.h"
#include "src/graph/types.h"
#include "src/parallel/random.h"
#include "src/unionfind/dsu.h"

namespace connectit {

inline constexpr Edge kEmptySlot{kInvalidNode, kInvalidNode};

namespace internal_sampling {

// The internal union-find used to contract sampled edges (paper: "we then
// use any of our 144 union-find variants on these edges"; we fix the robust
// Union-Async + FindHalve combination).
using SampleDsu = Dsu<UniteOption::kAsync, FindOption::kHalve>;

template <bool kForest>
inline void ApplySampledEdge(SampleDsu& dsu, NodeId u, NodeId v,
                             std::vector<Edge>* slots) {
  const NodeId hooked = dsu.Unite(u, v);
  if constexpr (kForest) {
    if (hooked != kInvalidNode) (*slots)[hooked] = {u, v};
  }
}

// Reassigns forest-edge slots after re-rooting a sampled tree at `m`.
// `tree_parents` is the BFS/LDD parent array (parents[root] == root); slots
// currently assign each non-root v its edge {parents[v], v}. After the
// call, slots along the path m -> old root are flipped so that m owns no
// edge (m becomes the labeling root the finish phase may hook).
inline void ReRootSlots(const std::vector<NodeId>& tree_parents, NodeId m,
                        std::vector<Edge>& slots) {
  NodeId cur = m;
  NodeId pa = tree_parents[cur];
  while (pa != cur) {
    const NodeId next_pa = tree_parents[pa];
    slots[pa] = {cur, pa};
    cur = pa;
    pa = next_pa;
  }
  slots[m] = kEmptySlot;
}

template <bool kForest, typename GraphT>
void KOutSampleImpl(const GraphT& graph, const KOutOptions& options,
                    std::vector<NodeId>& labels, std::vector<Edge>* slots) {
  const NodeId n = graph.num_nodes();
  if (n == 0) return;
  SampleDsu dsu(labels.data(), n);
  Rng rng(options.seed);
  const uint32_t k = std::max<uint32_t>(1, options.k);
  ParallelFor(
      0, n,
      [&](size_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        const EdgeId deg = graph.degree(u);
        if (deg == 0) return;
        uint32_t selected = 0;
        switch (options.variant) {
          case KOutVariant::kAfforest: {
            // First k edges of u.
            const EdgeId limit = std::min<EdgeId>(k, deg);
            for (EdgeId j = 0; j < limit; ++j) {
              ApplySampledEdge<kForest>(dsu, u, graph.NeighborAt(u, j),
                                        slots);
            }
            return;
          }
          case KOutVariant::kHybrid: {
            ApplySampledEdge<kForest>(dsu, u, graph.NeighborAt(u, 0), slots);
            selected = 1;
            break;
          }
          case KOutVariant::kMaxDegree: {
            // Highest-degree neighbor first.
            NodeId best = kInvalidNode;
            EdgeId best_deg = 0;
            graph.MapNeighbors(u, [&](NodeId v) {
              const EdgeId d = graph.degree(v);
              if (best == kInvalidNode || d > best_deg) {
                best_deg = d;
                best = v;
              }
            });
            ApplySampledEdge<kForest>(dsu, u, best, slots);
            selected = 1;
            break;
          }
          case KOutVariant::kPure:
            break;
        }
        // Remaining picks are uniformly random neighbors of u.
        for (uint32_t j = selected; j < k; ++j) {
          const EdgeId idx =
              rng.GetBounded(static_cast<uint64_t>(u) * k + j, deg);
          ApplySampledEdge<kForest>(dsu, u, graph.NeighborAt(u, idx), slots);
        }
      },
      /*grain=*/64);
  // Full path compression: with ID-ordered linking the root of each tree is
  // its minimum member, so compression also normalizes to cluster-min.
  FullyCompressParents(labels.data(), n);
}

template <bool kForest, typename GraphT>
void BfsSampleImpl(const GraphT& graph, const BfsSampleOptions& options,
                   std::vector<NodeId>& labels, std::vector<Edge>* slots) {
  const NodeId n = graph.num_nodes();
  if (n == 0) return;
  Rng rng(options.seed);
  for (uint32_t attempt = 0; attempt < options.max_tries; ++attempt) {
    const NodeId src = static_cast<NodeId>(rng.GetBounded(attempt, n));
    BfsResult bfs = Bfs(graph, src);
    if (static_cast<double>(bfs.num_reached) <
        options.coverage_threshold * static_cast<double>(n)) {
      continue;
    }
    // Label the discovered component by its minimum member so the labeling
    // forest is value-monotone (see header comment).
    const NodeId m = static_cast<NodeId>(ParallelReduce<NodeId>(
        0, n, kInvalidNode,
        [&](size_t v) {
          return bfs.parents[v] != kInvalidNode ? static_cast<NodeId>(v)
                                                : kInvalidNode;
        },
        [](NodeId a, NodeId b) { return std::min(a, b); }));
    ParallelFor(0, n, [&](size_t v) {
      if (bfs.parents[v] != kInvalidNode) labels[v] = m;
    });
    if constexpr (kForest) {
      ParallelFor(0, n, [&](size_t vi) {
        const NodeId v = static_cast<NodeId>(vi);
        if (bfs.parents[v] != kInvalidNode && bfs.parents[v] != v) {
          (*slots)[v] = {bfs.parents[v], v};
        }
      });
      if (m != src) ReRootSlots(bfs.parents, m, *slots);
    }
    return;
  }
  // All attempts failed: leave the identity labeling (the finish phase then
  // runs unsampled).
}

template <bool kForest, typename GraphT>
void LddSampleImpl(const GraphT& graph, const LddSampleOptions& options,
                   std::vector<NodeId>& labels, std::vector<Edge>* slots) {
  const NodeId n = graph.num_nodes();
  if (n == 0) return;
  LddOptions ldd_options;
  ldd_options.beta = options.beta;
  ldd_options.permute = options.permute;
  ldd_options.seed = options.seed;
  const LddResult ldd = LowDiameterDecomposition(graph, ldd_options);
  // Per-cluster minimum member.
  std::vector<NodeId> min_of(n, kInvalidNode);
  ParallelFor(0, n, [&](size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    WriteMin(&min_of[ldd.clusters[v]], v);
  });
  ParallelFor(0, n, [&](size_t vi) {
    const NodeId v = static_cast<NodeId>(vi);
    labels[v] = min_of[ldd.clusters[v]];
  });
  if constexpr (kForest) {
    ParallelFor(0, n, [&](size_t vi) {
      const NodeId v = static_cast<NodeId>(vi);
      if (ldd.parents[v] != v && ldd.parents[v] != kInvalidNode) {
        (*slots)[v] = {ldd.parents[v], v};
      }
    });
    // Re-root every cluster whose minimum member is not its center. The
    // per-cluster paths are vertex-disjoint, so this parallelizes cleanly.
    ParallelFor(0, n, [&](size_t ci) {
      const NodeId c = static_cast<NodeId>(ci);
      if (ldd.clusters[c] != c) return;  // not a center
      const NodeId m = min_of[c];
      if (m != c) ReRootSlots(ldd.parents, m, *slots);
    });
  }
}

}  // namespace internal_sampling

// ---- generic (any graph representation) entry points ----

template <typename GraphT>
void KOutSampleT(const GraphT& graph, const KOutOptions& options,
                 std::vector<NodeId>& labels) {
  internal_sampling::KOutSampleImpl<false>(graph, options, labels, nullptr);
}

template <typename GraphT>
void BfsSampleT(const GraphT& graph, const BfsSampleOptions& options,
                std::vector<NodeId>& labels) {
  internal_sampling::BfsSampleImpl<false>(graph, options, labels, nullptr);
}

template <typename GraphT>
void LddSampleT(const GraphT& graph, const LddSampleOptions& options,
                std::vector<NodeId>& labels) {
  internal_sampling::LddSampleImpl<false>(graph, options, labels, nullptr);
}

// Dispatch on SamplingConfig. No-op for SamplingOption::kNone.
template <typename GraphT>
void RunSamplingT(const GraphT& graph, const SamplingConfig& config,
                  std::vector<NodeId>& labels) {
  switch (config.option) {
    case SamplingOption::kNone: return;
    case SamplingOption::kKOut: KOutSampleT(graph, config.kout, labels); return;
    case SamplingOption::kBfs: BfsSampleT(graph, config.bfs, labels); return;
    case SamplingOption::kLdd: LddSampleT(graph, config.ldd, labels); return;
  }
}

template <typename GraphT>
void RunSamplingForestT(const GraphT& graph, const SamplingConfig& config,
                        std::vector<NodeId>& labels,
                        std::vector<Edge>& slots) {
  switch (config.option) {
    case SamplingOption::kNone:
      return;
    case SamplingOption::kKOut:
      internal_sampling::KOutSampleImpl<true>(graph, config.kout, labels,
                                              &slots);
      return;
    case SamplingOption::kBfs:
      internal_sampling::BfsSampleImpl<true>(graph, config.bfs, labels,
                                             &slots);
      return;
    case SamplingOption::kLdd:
      internal_sampling::LddSampleImpl<true>(graph, config.ldd, labels,
                                             &slots);
      return;
  }
}

// ---- plain-CSR convenience wrappers (implemented in sampling.cc) ----

void KOutSample(const Graph& graph, const KOutOptions& options,
                std::vector<NodeId>& labels);
void KOutSampleForest(const Graph& graph, const KOutOptions& options,
                      std::vector<NodeId>& labels, std::vector<Edge>& slots);
void BfsSample(const Graph& graph, const BfsSampleOptions& options,
               std::vector<NodeId>& labels);
void BfsSampleForest(const Graph& graph, const BfsSampleOptions& options,
                     std::vector<NodeId>& labels, std::vector<Edge>& slots);
void LddSample(const Graph& graph, const LddSampleOptions& options,
               std::vector<NodeId>& labels);
void LddSampleForest(const Graph& graph, const LddSampleOptions& options,
                     std::vector<NodeId>& labels, std::vector<Edge>& slots);
void RunSampling(const Graph& graph, const SamplingConfig& config,
                 std::vector<NodeId>& labels);
void RunSamplingForest(const Graph& graph, const SamplingConfig& config,
                       std::vector<NodeId>& labels, std::vector<Edge>& slots);

// Quality metrics for the sampling-analysis experiments (paper Tables 6-7,
// Figures 19-24).
struct SamplingQuality {
  // Fraction of vertices in the most frequent sampled cluster.
  double coverage = 0.0;
  // Fraction of graph edges whose endpoints lie in different clusters.
  double intercomponent_fraction = 0.0;
  NodeId num_clusters = 0;
};

SamplingQuality MeasureSamplingQuality(const Graph& graph,
                                       const std::vector<NodeId>& labels);

}  // namespace connectit

#endif  // CONNECTIT_CORE_SAMPLING_H_
