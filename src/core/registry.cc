#include "src/core/registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <type_traits>
#include <utility>

namespace connectit {

namespace {

// Detection of a finish method's COO-native entry points (connectit.h).
// A finish family that declares ComponentsOnCoo/ForestOnCoo runs directly
// on an EdgeList; families without them fall back to the handle's cached
// CSR materialization.
template <typename Finish, typename = void>
struct HasCooComponents : std::false_type {};
template <typename Finish>
struct HasCooComponents<
    Finish, std::void_t<decltype(Finish::ComponentsOnCoo(
                std::declval<const EdgeList&>()))>> : std::true_type {};

template <typename Finish, typename = void>
struct HasCooForest : std::false_type {};
template <typename Finish>
struct HasCooForest<Finish, std::void_t<decltype(Finish::ForestOnCoo(
                                std::declval<const EdgeList&>()))>>
    : std::true_type {};

// Per-representation instantiation of the templated framework: each
// registered closure accepts the type-erased GraphHandle and dispatches to
// RunConnectivity/RunSpanningForest<Finish> for the concrete representation
// behind GraphHandle::Visit — the single seam a new representation must
// extend (see ARCHITECTURE.md).
//
// The COO arm is two-tier: unsampled runs of edge-centric finish methods
// execute natively on the edge list (no CSR is ever built); sampling needs
// adjacency (k-out degrees, BFS/LDD traversal), so sampled runs — and
// vertex-centric finish methods — use the CSR cached inside the handle
// (built once, shared by handle copies).
//
// Representations that serve the full adjacency surface take the generic
// branch with no per-representation code here at all: CSR, compressed CSR,
// and sharded CSR (ShardedGraph) all instantiate
// RunConnectivity/RunSpanningForest directly, so every sampling scheme and
// finish family is native on them by construction. This is the walkthrough
// claim ARCHITECTURE.md makes — adding such a representation ends at the
// GraphHandle arm — and the sharded diff proved it: this file's code did
// not change.
template <typename Finish>
std::vector<NodeId> RunOnHandle(const GraphHandle& handle,
                                const SamplingConfig& sampling) {
  return handle.Visit([&](const auto& graph) -> std::vector<NodeId> {
    using Rep = std::decay_t<decltype(graph)>;
    if constexpr (std::is_same_v<Rep, EdgeList>) {
      if constexpr (HasCooComponents<Finish>::value) {
        if (sampling.option == SamplingOption::kNone) {
          return Finish::ComponentsOnCoo(graph);
        }
      }
      return RunConnectivity<Finish>(handle.MaterializedCsr(), sampling);
    } else {
      return RunConnectivity<Finish>(graph, sampling);
    }
  });
}

template <typename Finish>
SpanningForestResult RunForestOnHandle(const GraphHandle& handle,
                                       const SamplingConfig& sampling) {
  return handle.Visit([&](const auto& graph) -> SpanningForestResult {
    using Rep = std::decay_t<decltype(graph)>;
    if constexpr (std::is_same_v<Rep, EdgeList>) {
      if constexpr (HasCooForest<Finish>::value) {
        if (sampling.option == SamplingOption::kNone) {
          return Finish::ForestOnCoo(graph);
        }
      }
      return RunSpanningForest<Finish>(handle.MaterializedCsr(), sampling);
    } else {
      return RunSpanningForest<Finish>(graph, sampling);
    }
  });
}

// Seeded streaming factory: cold seeds build the identity-labeled structure;
// warm seeds run this variant's own static finish through the same
// per-representation dispatch as Variant::run (COO-native / compressed /
// CSR, sampled or not) and hand the labeling to the streaming constructor.
// FromLabels seeds skip the run and adopt the caller's labeling directly
// (same AdoptSeedLabels normalization inside the constructor).
template <typename Finish, typename StreamingT>
std::unique_ptr<StreamingConnectivity> MakeSeededStreaming(
    StreamingSeed seed) {
  if (seed.from_labels) {
    return std::make_unique<StreamingT>(std::move(seed.labels));
  }
  if (!seed.warm) return std::make_unique<StreamingT>(seed.n);
  return std::make_unique<StreamingT>(
      RunOnHandle<Finish>(seed.graph, seed.sampling));
}

// ---- union-find registration ----

template <UniteOption kU, FindOption kF, SpliceOption kS,
          PlacementOption kP = PlacementOption::kFlat>
Variant MakeUfVariant() {
  Variant v;
  v.descriptor = VariantDescriptor::UnionFind(kU, kF, kS, kP);
  v.name = v.descriptor.ToString();
  v.group = std::string(ToString(kU));
  if constexpr (kS != SpliceOption::kNone) {
    v.group += ';';
    v.group += ToString(kS);
  }
  if constexpr (kP != PlacementOption::kFlat) {
    v.group += ';';
    v.group += ToString(kP);
  }
  v.find_name = std::string(ToString(kF));
  v.family = AlgorithmFamily::kUnionFind;
  v.root_based = true;
  v.supports_streaming = true;
  using Finish = UnionFindFinish<kU, kF, kS, kP>;
  v.run = RunOnHandle<Finish>;
  v.run_forest = RunForestOnHandle<Finish>;
  v.make_streaming =
      MakeSeededStreaming<Finish, UnionFindStreaming<kU, kF, kS, kP>>;
  return v;
}

template <LtConnect kC, LtUpdate kU, LtShortcut kS, LtAlter kA>
Variant MakeLtVariant() {
  Variant v;
  v.descriptor = VariantDescriptor::LiuTarjan(kC, kU, kS, kA);
  v.name = v.descriptor.ToString();
  v.group = LtVariantCode(kC, kU, kS, kA);
  v.family = AlgorithmFamily::kLiuTarjan;
  v.root_based = (kU == LtUpdate::kRootUp);
  using Finish = LiuTarjanFinish<kC, kU, kS, kA>;
  v.run = RunOnHandle<Finish>;
  if constexpr (kU == LtUpdate::kRootUp) {
    v.run_forest = RunForestOnHandle<Finish>;
    v.supports_streaming = true;
    v.make_streaming =
        MakeSeededStreaming<Finish, LiuTarjanStreaming<kC, kS, kA>>;
  }
  return v;
}

std::vector<Variant> BuildRegistry() {
  std::vector<Variant> variants;

  // Union-find: Async / Hooks / Early x 4 find options. Every min-based
  // combination is registered in both placements (flat and NumaReplicated;
  // IsValidPlacement excludes JTB from the replicated axis).
#define CONNECTIT_UF(U, F)                                                  \
  variants.push_back(                                                       \
      MakeUfVariant<UniteOption::U, FindOption::F, SpliceOption::kNone>()); \
  variants.push_back(                                                       \
      MakeUfVariant<UniteOption::U, FindOption::F, SpliceOption::kNone,     \
                    PlacementOption::kNumaReplicated>());
  CONNECTIT_UF(kAsync, kNaive)
  CONNECTIT_UF(kAsync, kSplit)
  CONNECTIT_UF(kAsync, kHalve)
  CONNECTIT_UF(kAsync, kCompress)
  CONNECTIT_UF(kHooks, kNaive)
  CONNECTIT_UF(kHooks, kSplit)
  CONNECTIT_UF(kHooks, kHalve)
  CONNECTIT_UF(kHooks, kCompress)
  CONNECTIT_UF(kEarly, kNaive)
  CONNECTIT_UF(kEarly, kSplit)
  CONNECTIT_UF(kEarly, kHalve)
  CONNECTIT_UF(kEarly, kCompress)
#undef CONNECTIT_UF
  // JTB: FindNaive ("FindSimple") and two-try splitting; flat only.
  variants.push_back(MakeUfVariant<UniteOption::kJtb, FindOption::kNaive,
                                   SpliceOption::kNone>());
  variants.push_back(MakeUfVariant<UniteOption::kJtb,
                                   FindOption::kTwoTrySplit,
                                   SpliceOption::kNone>());

  // Rem's algorithms: find x splice, excluding FindCompress+SpliceAtomic.
#define CONNECTIT_REM(U, F, S)                                          \
  variants.push_back(                                                   \
      MakeUfVariant<UniteOption::U, FindOption::F, SpliceOption::S>()); \
  variants.push_back(                                                   \
      MakeUfVariant<UniteOption::U, FindOption::F, SpliceOption::S,     \
                    PlacementOption::kNumaReplicated>());
#define CONNECTIT_REM_ALL(U)            \
  CONNECTIT_REM(U, kNaive, kSplitOne)   \
  CONNECTIT_REM(U, kNaive, kHalveOne)   \
  CONNECTIT_REM(U, kNaive, kSplice)     \
  CONNECTIT_REM(U, kSplit, kSplitOne)   \
  CONNECTIT_REM(U, kSplit, kHalveOne)   \
  CONNECTIT_REM(U, kSplit, kSplice)     \
  CONNECTIT_REM(U, kHalve, kSplitOne)   \
  CONNECTIT_REM(U, kHalve, kHalveOne)   \
  CONNECTIT_REM(U, kHalve, kSplice)     \
  CONNECTIT_REM(U, kCompress, kSplitOne)\
  CONNECTIT_REM(U, kCompress, kHalveOne)
  CONNECTIT_REM_ALL(kRemCas)
  CONNECTIT_REM_ALL(kRemLock)
#undef CONNECTIT_REM_ALL
#undef CONNECTIT_REM

  // Shiloach-Vishkin.
  {
    Variant v;
    v.descriptor = VariantDescriptor::ShiloachVishkin();
    v.name = v.descriptor.ToString();
    v.group = "Shiloach-Vishkin";
    v.family = AlgorithmFamily::kShiloachVishkin;
    v.root_based = true;
    v.supports_streaming = true;
    v.run = RunOnHandle<ShiloachVishkinFinish>;
    v.run_forest = RunForestOnHandle<ShiloachVishkinFinish>;
    v.make_streaming =
        MakeSeededStreaming<ShiloachVishkinFinish, ShiloachVishkinStreaming>;
    variants.push_back(std::move(v));
  }

  // The 16 Liu-Tarjan variants of Appendix D.
#define CONNECTIT_LT(C, U, S, A)                                   \
  variants.push_back(MakeLtVariant<LtConnect::C, LtUpdate::U,      \
                                   LtShortcut::S, LtAlter::A>());
  CONNECTIT_LT(kConnect, kUpdate, kShortcut, kAlter)             // CUSA
  CONNECTIT_LT(kConnect, kRootUp, kShortcut, kAlter)             // CRSA
  CONNECTIT_LT(kParentConnect, kUpdate, kShortcut, kAlter)       // PUSA
  CONNECTIT_LT(kParentConnect, kRootUp, kShortcut, kAlter)       // PRSA
  CONNECTIT_LT(kParentConnect, kUpdate, kShortcut, kNoAlter)     // PUS
  CONNECTIT_LT(kParentConnect, kRootUp, kShortcut, kNoAlter)     // PRS
  CONNECTIT_LT(kExtendedConnect, kUpdate, kShortcut, kAlter)     // EUSA
  CONNECTIT_LT(kExtendedConnect, kUpdate, kShortcut, kNoAlter)   // EUS
  CONNECTIT_LT(kConnect, kUpdate, kFullShortcut, kAlter)         // CUFA
  CONNECTIT_LT(kConnect, kRootUp, kFullShortcut, kAlter)         // CRFA
  CONNECTIT_LT(kParentConnect, kUpdate, kFullShortcut, kAlter)   // PUFA
  CONNECTIT_LT(kParentConnect, kRootUp, kFullShortcut, kAlter)   // PRFA
  CONNECTIT_LT(kParentConnect, kUpdate, kFullShortcut, kNoAlter) // PUF
  CONNECTIT_LT(kParentConnect, kRootUp, kFullShortcut, kNoAlter) // PRF
  CONNECTIT_LT(kExtendedConnect, kUpdate, kFullShortcut, kAlter) // EUFA
  CONNECTIT_LT(kExtendedConnect, kUpdate, kFullShortcut, kNoAlter) // EUF
#undef CONNECTIT_LT

  // Stergiou.
  {
    Variant v;
    v.descriptor = VariantDescriptor::Stergiou();
    v.name = v.descriptor.ToString();
    v.group = "Stergiou";
    v.family = AlgorithmFamily::kStergiou;
    v.run = RunOnHandle<StergiouFinish>;
    variants.push_back(std::move(v));
  }

  // Label-Propagation.
  {
    Variant v;
    v.descriptor = VariantDescriptor::LabelPropagation();
    v.name = v.descriptor.ToString();
    v.group = "Label-Propagation";
    v.family = AlgorithmFamily::kLabelPropagation;
    v.run = RunOnHandle<LabelPropFinish>;
    variants.push_back(std::move(v));
  }

  return variants;
}

}  // namespace

const std::vector<Variant>& AllVariants() {
  static const std::vector<Variant>* variants =
      new std::vector<Variant>(BuildRegistry());
  return *variants;
}

const Variant* FindVariant(std::string_view name) {
  for (const Variant& v : AllVariants()) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

const Variant* FindVariant(const VariantDescriptor& descriptor) {
  for (const Variant& v : AllVariants()) {
    if (v.descriptor == descriptor) return &v;
  }
  return nullptr;
}

namespace {

// Plain O(a*b) Levenshtein distance, used only on the fatal-lookup path to
// suggest the closest registered name.
size_t EditDistance(std::string_view a, std::string_view b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t next = std::min(
          {row[j] + 1, row[j - 1] + 1, diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = row[j];
      row[j] = next;
    }
  }
  return row[b.size()];
}

}  // namespace

const Variant& GetVariantOrDie(std::string_view name) {
  if (const Variant* v = FindVariant(name)) return *v;
  const Variant* nearest = nullptr;
  size_t best = static_cast<size_t>(-1);
  for (const Variant& v : AllVariants()) {
    const size_t d = EditDistance(name, v.name);
    if (d < best) {
      best = d;
      nearest = &v;
    }
  }
  std::fprintf(stderr,
               "fatal: unknown variant \"%.*s\"; did you mean \"%s\"? "
               "(%zu variants registered; connectit_cli --list prints them)\n",
               static_cast<int>(name.size()), name.data(),
               nearest != nullptr ? nearest->name.c_str() : "?",
               AllVariants().size());
  std::abort();
}

const Variant& DefaultVariant() {
  static const Variant* variant = FindVariant(VariantDescriptor::UnionFind(
      UniteOption::kRemCas, FindOption::kNaive, SpliceOption::kSplitOne));
  return *variant;
}

std::vector<const Variant*> VariantsOfFamily(AlgorithmFamily family) {
  std::vector<const Variant*> out;
  for (const Variant& v : AllVariants()) {
    if (v.family == family) out.push_back(&v);
  }
  return out;
}

std::vector<const Variant*> RootBasedVariants() {
  std::vector<const Variant*> out;
  for (const Variant& v : AllVariants()) {
    if (v.root_based) out.push_back(&v);
  }
  return out;
}

std::vector<const Variant*> StreamingVariants() {
  std::vector<const Variant*> out;
  for (const Variant& v : AllVariants()) {
    if (v.supports_streaming) out.push_back(&v);
  }
  return out;
}

std::vector<AlgorithmRow> PaperAlgorithmRows() {
  const std::vector<std::string> rows = {
      "Union-Early",   "Union-Hooks",      "Union-Async",
      "Union-Rem-CAS", "Union-Rem-Lock",   "Union-JTB",
      "Liu-Tarjan",    "Shiloach-Vishkin", "Label-Propagation",
      "Stergiou",
  };
  std::vector<AlgorithmRow> out;
  for (const std::string& row : rows) {
    AlgorithmRow entry;
    entry.name = row;
    for (const Variant& v : AllVariants()) {
      // Paper rows cover the flat placement only: the replicated twins are
      // a memory-placement overlay, not a paper algorithm.
      if (v.family == AlgorithmFamily::kUnionFind &&
          v.descriptor.placement != PlacementOption::kFlat) {
        continue;
      }
      const bool match =
          (row == "Liu-Tarjan")
              ? v.family == AlgorithmFamily::kLiuTarjan
              : v.name.rfind(row, 0) == 0;  // prefix match on unite name
      if (match) entry.variants.push_back(&v);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace connectit
