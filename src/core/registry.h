// Runtime registry of every algorithm variant instantiated by this build.
//
// The compile-time framework (connectit.h) produces hundreds of distinct
// algorithm combinations; the registry exposes each as a named, uniformly
// callable entry so that tests can sweep the full space and benches can
// reproduce the paper's per-variant tables and heatmaps.
//
// Variant identity is typed: every Variant carries a VariantDescriptor
// (variant_descriptor.h — enums per axis) and its name is the descriptor's
// ToString. The string naming scheme is the human/CLI parse layer:
//   "Union-Rem-CAS;FindNaive;SplitAtomicOne"   (union-find: unite;find[;splice])
//   "Union-JTB;FindTwoTrySplit"
//   "Shiloach-Vishkin"
//   "Liu-Tarjan;PRF"                           (Appendix D variant codes)
//   "Stergiou"  "Label-Propagation"
// Sampling is orthogonal: pass any SamplingConfig to run/run_forest.
//
// This registry is the *internal* dispatch seam. Downstream consumers
// (examples, services) go through the connectit::Connectivity façade in
// connectivity_index.h; benches and tests reach in directly to sweep the
// variant space. See ARCHITECTURE.md "Serving layer".
//
// The graph representation is orthogonal too: run/run_forest take a
// type-erased GraphHandle (graph_handle.h), so every variant executes
// uniformly on plain CSR, byte-compressed CSR, COO, or sharded-CSR input;
// the templated finish adapters are instantiated per representation behind
// GraphHandle::Visit. Edge-centric families (union-find, Liu-Tarjan,
// Stergiou) run *natively* on COO handles when unsampled — no CSR is built;
// adjacency-dependent work (any sampling scheme, Shiloach-Vishkin, label
// propagation) transparently uses the CSR cached inside the handle.
// Sharded handles (ShardedGraph, a vertex-partitioned CSR) serve the full
// adjacency surface, so the entire variant × sampling space runs on the
// shards natively — the flat-CSR fallback is never taken
// (ShardedCsrMaterializations() stays flat across registry runs). A
// `const Graph&` still works at every call site via GraphHandle's implicit
// view conversion. ARCHITECTURE.md documents the dispatch contract and the
// per-family native-representation matrix.

#ifndef CONNECTIT_CORE_REGISTRY_H_
#define CONNECTIT_CORE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/connectit.h"
#include "src/core/options.h"
#include "src/core/streaming.h"
#include "src/core/variant_descriptor.h"
#include "src/graph/graph_handle.h"
#include "src/unionfind/options.h"

namespace connectit {

// How a streaming structure starts life (paper §3.5): cold over n isolated
// vertices, or warm from the labeling a static pass produces. The warm form
// is the static-to-streaming handoff seam — make_streaming runs the
// variant's *own* static finish on the handle (native per representation:
// COO edge-centric runs build no CSR, compressed runs decode in place,
// sharded runs traverse the shards directly) and the streaming structure
// adopts the resulting labeling, so a bulk load and its incremental
// continuation use one algorithm and one parent array discipline.
//
// A third form, FromLabels, adopts an already-computed labeling without
// re-running the finish — the seam the Connectivity façade
// (connectivity_index.h) uses so Build + Stream costs one static pass, not
// two. The adoption path (AdoptSeedLabels' validation and min-rooted
// normalization) is identical to FromStatic's, so seeding from a pass's
// labels and re-running the pass land on byte-identical streaming state.
struct StreamingSeed {
  // Cold start: n isolated vertices. Implicit so that the pre-handoff call
  // shape make_streaming(n) stays the identity-seeded special case.
  StreamingSeed(NodeId n) : n(n) {}

  static StreamingSeed Cold(NodeId n) { return StreamingSeed(n); }

  // Warm start: run this variant's static finish on `graph` under
  // `sampling`, then adopt the labeling. The handle may wrap any
  // representation; dispatch reuses the same RunOnHandle seam as
  // Variant::run.
  static StreamingSeed FromStatic(GraphHandle graph,
                                  SamplingConfig sampling =
                                      SamplingConfig::None()) {
    StreamingSeed seed(graph.num_nodes());
    seed.graph = std::move(graph);
    seed.sampling = sampling;
    seed.warm = true;
    return seed;
  }

  // Warm start from an existing labeling (any rooted forest over its index
  // range; validated and normalized by AdoptSeedLabels exactly like the
  // FromStatic path). Use when the static pass already ran and its labels
  // are in hand — e.g. Connectivity::Stream() after Build.
  static StreamingSeed FromLabels(std::vector<NodeId> labels) {
    StreamingSeed seed(static_cast<NodeId>(labels.size()));
    seed.labels = std::move(labels);
    seed.from_labels = true;
    return seed;
  }

  NodeId n = 0;
  GraphHandle graph;  // empty unless warm
  SamplingConfig sampling;
  bool warm = false;
  std::vector<NodeId> labels;  // empty unless from_labels
  bool from_labels = false;
};

struct Variant {
  // Typed identity: the enum-per-axis form of `name`. `name` is always
  // descriptor.ToString(), so the string is a derived view, never the
  // source of truth. Look variants up by descriptor for exact matching;
  // parse user input through VariantDescriptor::Parse.
  VariantDescriptor descriptor;
  std::string name;
  // Axis labels for the paper's heatmaps: e.g. group "Union-Rem-CAS;Splice",
  // find "FindNaive".
  std::string group;
  std::string find_name;
  AlgorithmFamily family = AlgorithmFamily::kUnionFind;
  bool root_based = false;
  bool supports_streaming = false;

  // Paper Algorithm 1 (Connectivity): sampling phase (§3.2) + this
  // variant's finish phase. Native on CSR, compressed CSR, and sharded CSR
  // for every family (sharded traversals schedule shard-major — see
  // ShardedGraph::MapArcs); native on COO for the edge-centric families
  // (union-find §3.3.1, Liu-Tarjan §3.3.2/App. D, Stergiou §B.2.5) when
  // sampling is kNone, via the handle's cached CSR otherwise.
  std::function<std::vector<NodeId>(const GraphHandle&, const SamplingConfig&)>
      run;
  // Paper Algorithm 2 (SpanningForest); null unless root_based (App. B.2).
  // Same representation rules as `run` (COO-native: union-find and RootUp
  // Liu-Tarjan).
  std::function<SpanningForestResult(const GraphHandle&, const SamplingConfig&)>
      run_forest;
  // Paper §3.5 batch-incremental form; null unless supports_streaming.
  // Consumes COO batches by definition (representation-independent). The
  // seed selects a cold start (vertex count) or a warm start adopting this
  // variant's static-pass labeling on any GraphHandle (see StreamingSeed).
  // Taken by value so a temporary seed's labels move, not copy, into the
  // streaming structure.
  std::function<std::unique_ptr<StreamingConnectivity>(StreamingSeed)>
      make_streaming;
};

// All registered variants (built once, in deterministic order).
const std::vector<Variant>& AllVariants();

// Looks up a variant by exact name; nullptr if absent.
const Variant* FindVariant(std::string_view name);

// Looks up a variant by its typed descriptor (exact axis comparison, no
// string matching); nullptr if the combination is not registered.
const Variant* FindVariant(const VariantDescriptor& descriptor);

// As FindVariant(name), but a lookup failure is fatal: prints the bad name
// plus the closest registered name (by edit distance) to stderr and
// aborts. Use at the edges — CLI flags, bench tables, example defaults —
// where a misspelled variant name should stop the run, not null-deref or
// silently skip.
const Variant& GetVariantOrDie(std::string_view name);

// The paper's recommended all-around variant (Union-Rem-CAS with FindNaive
// and one atomic path split per step — §4's pick for both static and
// streaming workloads). The default the façade, CLI, and examples use when
// no variant is named.
const Variant& DefaultVariant();

// Subsets used by benches and tests.
std::vector<const Variant*> VariantsOfFamily(AlgorithmFamily family);
std::vector<const Variant*> RootBasedVariants();
std::vector<const Variant*> StreamingVariants();

// One representative per paper "algorithm row" (Table 3 / Table 4 rows):
// Union-Async, Union-Hooks, Union-Early, Union-Rem-CAS, Union-Rem-Lock,
// Union-JTB, Shiloach-Vishkin, Liu-Tarjan, Stergiou, Label-Propagation.
// Each entry lists the variants belonging to the row (the benches report
// the fastest within the row, as the paper does).
struct AlgorithmRow {
  std::string name;
  std::vector<const Variant*> variants;
};
std::vector<AlgorithmRow> PaperAlgorithmRows();

}  // namespace connectit

#endif  // CONNECTIT_CORE_REGISTRY_H_
