#include "src/core/dynamic_forest.h"

#include <algorithm>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "src/algo/replacement.h"
#include "src/algo/verify.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

DynamicForest::DynamicForest(NodeId n) : adj_(n), labels_(n) {
  ParallelFor(0, n, [&](size_t v) { labels_[v] = static_cast<NodeId>(v); });
}

void DynamicForest::AdoptGraph(const GraphHandle& graph,
                               const SpanningForestResult& forest) {
  const NodeId n = num_nodes();
  graph.Visit([&](const auto& g) {
    using G = std::decay_t<decltype(g)>;
    if constexpr (std::is_same_v<G, EdgeList>) {
      // COO stays native: the raw edge list may carry duplicates and
      // self-loops, which AddEdge drops — matching what BuildGraph's
      // symmetrize/dedup would have produced.
      for (const Edge& e : g.edges) AddEdge(e.u, e.v);
    } else {
      // Adjacency representations (CSR, compressed, sharded) store each
      // undirected edge in both directions and are already deduplicated;
      // the u < v filter takes each once. Per-vertex lists fill in
      // parallel, then the key set is built in one sequential pass.
      ParallelFor(0, n, [&](size_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        g.MapNeighbors(u, [&](NodeId v) {
          if (u != v) adj_[u].push_back(v);
        });
      });
      for (NodeId u = 0; u < n; ++u) {
        for (const NodeId v : adj_[u]) {
          if (u < v) edges_.insert(Key(u, v));
        }
        num_arcs_ += static_cast<EdgeId>(adj_[u].size());
      }
    }
  });
  for (const Edge& e : forest.edges) forest_.insert(Key(e.u, e.v));
  labels_ = CanonicalizeLabels(forest.labels);
}

bool DynamicForest::AddEdge(NodeId u, NodeId v) {
  if (u == v) return false;
  if (!edges_.insert(Key(u, v)).second) return false;
  adj_[u].push_back(v);
  adj_[v].push_back(u);
  num_arcs_ += 2;
  return true;
}

void DynamicForest::RemoveArc(NodeId u, NodeId v) {
  std::vector<NodeId>& nbrs = adj_[u];
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == v) {
      nbrs[i] = nbrs.back();
      nbrs.pop_back();
      return;
    }
  }
}

void DynamicForest::InsertBatch(const std::vector<Edge>& updates) {
  // Union the touched components over their canonical labels. The sparse
  // parent map keeps the no-merge case O(batch): labels_ roots are
  // component minima, and every union links the larger root under the
  // smaller, so the labeling stays canonical.
  std::unordered_map<NodeId, NodeId> parent;
  const auto find = [&](NodeId vertex) {
    NodeId x = labels_[vertex];
    while (true) {
      const auto it = parent.find(x);
      if (it == parent.end() || it->second == x) return x;
      x = it->second;
    }
  };
  bool merged = false;
  for (const Edge& e : updates) {
    if (!AddEdge(e.u, e.v)) continue;
    const NodeId ru = find(e.u);
    const NodeId rv = find(e.v);
    if (ru == rv) continue;
    forest_.insert(Key(e.u, e.v));
    parent[std::max(ru, rv)] = std::min(ru, rv);
    merged = true;
  }
  if (!merged) return;
  ParallelFor(0, labels_.size(), [&](size_t v) {
    NodeId x = labels_[v];
    while (true) {
      const auto it = parent.find(x);  // concurrent reads only: safe
      if (it == parent.end() || it->second == x) break;
      x = it->second;
    }
    labels_[v] = x;
  });
}

DynamicForest::EraseStats DynamicForest::EraseBatch(
    const std::vector<Edge>& updates) {
  EraseStats stats;
  const NodeId n = num_nodes();
  std::unordered_set<NodeId> affected;  // old labels of components that
                                        // lost a forest edge
  for (const Edge& e : updates) {
    if (e.u == e.v || e.u >= n || e.v >= n) {
      ++stats.misses;
      continue;
    }
    const uint64_t key = Key(e.u, e.v);
    if (edges_.erase(key) == 0) {
      ++stats.misses;
      continue;
    }
    RemoveArc(e.u, e.v);
    RemoveArc(e.v, e.u);
    num_arcs_ -= 2;
    ++stats.erased;
    if (forest_.erase(key) > 0) {
      ++stats.forest_hits;
      affected.insert(labels_[e.u]);
    }
  }
  if (affected.empty()) return stats;
  stats.replacement_searches = affected.size();

  // The replacement search rebuilds each affected component's tree
  // wholesale, so its surviving forest edges go first (labels_ still
  // holds the pre-batch labeling here — the search relabels below).
  for (auto it = forest_.begin(); it != forest_.end();) {
    if (affected.count(labels_[KeyLo(*it)]) > 0) {
      it = forest_.erase(it);
    } else {
      ++it;
    }
  }
  // Gather the affected region in ascending vertex order (the search's
  // min-root invariant).
  std::vector<NodeId> region;
  for (NodeId v = 0; v < n; ++v) {
    if (affected.count(labels_[v]) > 0) region.push_back(v);
  }
  ReplacementResult found = ReplacementSearch(View(), region, labels_);
  for (const Edge& e : found.forest_edges) forest_.insert(Key(e.u, e.v));

  stats.components_split = found.pieces - stats.replacement_searches;
  stats.labels_changed = stats.components_split > 0;
  return stats;
}

}  // namespace connectit
