#include "src/core/connectivity_index.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "src/core/components.h"
#include "src/core/dynamic_forest.h"
#include "src/graph/builder.h"
#include "src/parallel/epoch.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

namespace {

[[noreturn]] void DieF(const char* message) {
  std::fprintf(stderr, "fatal: %s\n", message);
  std::abort();
}

void DeleteSnapshotData(void* p) {
  delete static_cast<internal::SnapshotData*>(p);
}

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Precomputes everything the read surface serves (count, sizes) so every
// query against the published block is plain array indexing.
internal::SnapshotData* MakeSnapshotData(std::vector<NodeId> labels) {
  auto* data = new internal::SnapshotData();
  data->num_components = CountComponents(labels);
  data->sizes = ComponentSizes(labels);
  data->labels = std::move(labels);
  return data;
}

// Builds an owning handle of `target` representation from a flat CSR
// reference. Only the kCsr target needs to copy `flat`; the other
// converters build independent owning structures from the reference.
GraphHandle FromFlat(const Graph& flat, GraphRepresentation target,
                     size_t shards) {
  switch (target) {
    case GraphRepresentation::kCsr:
      return GraphHandle::Adopt(Graph(flat));
    case GraphRepresentation::kCompressed:
      return GraphHandle::Compress(flat);
    case GraphRepresentation::kCoo:
      return GraphHandle::Adopt(ExtractEdges(flat));
    case GraphRepresentation::kSharded:
      return GraphHandle::Shard(flat, shards);
    case GraphRepresentation::kMapped:
      // Round-trips through a temporary .cgc container: the handle serves
      // the flat arrays zero-copy from the (unlinked) mapping.
      return GraphHandle::MapTempOrDie(flat);
  }
  return GraphHandle();
}

// The Spec-requested representation of `in`, reusing the input when it
// already matches (and, for sharded targets, the shard count agrees or was
// left defaulted). Conversions produce owning handles and work from a
// flat-CSR *reference* (the input's own CSR, or the cached materialization
// for COO/sharded sources) — no intermediate whole-graph copy; only a
// compressed source decodes into a temporary.
GraphHandle ConvertTo(const GraphHandle& in, GraphRepresentation target,
                      size_t shards) {
  if (in.representation() == target &&
      (target != GraphRepresentation::kSharded || shards == 0 ||
       in.sharded()->num_shards() == shards)) {
    return in;
  }
  if (in.representation() == GraphRepresentation::kCompressed) {
    // The only representation without a flat form on hand: decompress
    // (parallel, exact CSR reconstruction), then convert.
    Graph decoded = in.compressed()->Decode();
    if (target == GraphRepresentation::kCsr) {
      return GraphHandle::Adopt(std::move(decoded));
    }
    return FromFlat(decoded, target, shards);
  }
  const Graph& flat = in.representation() == GraphRepresentation::kCsr
                          ? *in.csr()
                          : in.MaterializedCsr();
  return FromFlat(flat, target, shards);
}

}  // namespace

const char* ToString(ServingMode mode) {
  switch (mode) {
    case ServingMode::kSnapshot: return "snapshot";
    case ServingMode::kSharedLock: return "shared-lock";
  }
  return "?";
}

// ---- Snapshot ----

Snapshot::~Snapshot() { Release(); }

void Snapshot::Release() {
  const internal::SnapshotData* data = data_;
  data_ = nullptr;
  if (data == nullptr) return;
  // Read `published` before the decrement: the instant our reference is
  // dropped, a concurrent reclaim pass may observe refs==0 and free the
  // block, so no field may be touched after fetch_sub.
  const bool published = data->published;
  if (data->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (published) {
      // The block sits in the epoch domain's retire list (its publisher
      // unpublished it); we just dropped the last reference keeping it
      // there, so sweep now instead of waiting for the next publication.
      epoch::Domain::Global().TryReclaim();
    } else {
      // On-demand (kSharedLock-mode) snapshot: never published, owned by
      // its handles alone.
      delete data;
    }
  }
}

Snapshot::Snapshot(const Snapshot& other) : data_(other.data_) {
  if (data_ != nullptr) data_->refs.fetch_add(1, std::memory_order_relaxed);
}

Snapshot& Snapshot::operator=(const Snapshot& other) {
  if (this != &other) {
    if (other.data_ != nullptr) {
      other.data_->refs.fetch_add(1, std::memory_order_relaxed);
    }
    Release();
    data_ = other.data_;
  }
  return *this;
}

Snapshot::Snapshot(Snapshot&& other) noexcept : data_(other.data_) {
  other.data_ = nullptr;
}

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    other.data_ = nullptr;
  }
  return *this;
}

// ---- Connectivity::Spec ----

Connectivity::Spec Connectivity::Spec::Auto(const GraphHandle& graph,
                                            bool streaming) {
  Spec spec;  // DefaultVariant: fastest all-around, root-based, streamable.
  const NodeId n = graph.num_nodes();
  const double avg_degree =
      n == 0 ? 0.0 : static_cast<double>(graph.num_arcs()) / n;
  if (graph.representation() == GraphRepresentation::kCoo) {
    // Unsampled keeps the whole lifecycle COO-native (edge-centric default
    // variant, so neither Build nor a streaming seed ever builds a CSR).
    return spec;
  }
  if (graph.representation() == GraphRepresentation::kMapped) {
    // A mapped source stays mapped: converting would materialize the very
    // arrays the zero-copy container avoids loading, and the mapping serves
    // the full adjacency surface, so sampling is the only lever worth
    // pulling.
    if (avg_degree >= 4.0) spec.Sampling(SamplingConfig::KOut());
    return spec;
  }
  if (avg_degree >= 4.0) {
    spec.Sampling(SamplingConfig::KOut());
  }
  if (!streaming && graph.representation() == GraphRepresentation::kCsr &&
      avg_degree >= 8.0 && n >= (NodeId{1} << 18)) {
    // Big dense analytical pass: shard-major locality wins (see
    // ARCHITECTURE.md "Choosing a representation"). Not worth the
    // partition cost for a one-shot streaming seed.
    spec.Representation(GraphRepresentation::kSharded);
  }
  return spec;
}

Connectivity::Spec& Connectivity::Spec::Algorithm(
    const VariantDescriptor& descriptor) {
  algorithm_ = descriptor;
  return *this;
}

Connectivity::Spec& Connectivity::Spec::Algorithm(std::string_view name) {
  algorithm_ = GetVariantOrDie(name).descriptor;
  return *this;
}

// ---- Connectivity ----

Connectivity::Connectivity(Spec spec)
    : spec_(std::move(spec)), variant_(FindVariant(spec_.algorithm())) {
  if (variant_ == nullptr) {
    std::fprintf(stderr,
                 "fatal: Connectivity spec names an unregistered variant "
                 "combination (\"%s\")\n",
                 spec_.algorithm().ToString().c_str());
    std::abort();
  }
  cadence_k_ = spec_.publish_every();
  // Head is never null under snapshot serving: reads before the first
  // Build serve the empty labeling, exactly like the shared-lock path.
  if (snapshot_serving()) PublishLocked({});
}

Connectivity::~Connectivity() { RetireSnapshot(); }

Connectivity::Connectivity(Connectivity&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  spec_ = std::move(other.spec_);
  variant_ = other.variant_;  // registry storage is static; stays valid
  graph_ = std::move(other.graph_);
  labels_ = std::move(other.labels_);
  labels_stale_ = other.labels_stale_;
  built_ = other.built_;
  streaming_ = std::move(other.streaming_);
  forest_ = std::move(other.forest_);
  insert_journal_ = std::move(other.insert_journal_);
  snapshot_.store(other.snapshot_.exchange(nullptr),
                  std::memory_order_release);
  publish_seq_ = other.publish_seq_;
  cadence_k_ = other.cadence_k_;
  batches_since_publish_ = other.batches_since_publish_;
  last_batch_end_us_ = other.last_batch_end_us_;
  publish_cost_ema_us_ = other.publish_cost_ema_us_;
  batch_cost_ema_us_ = other.batch_cost_ema_us_;
  other.batches_since_publish_ = 0;
  other.built_ = false;
  other.labels_stale_ = false;
  other.labels_.clear();
  other.insert_journal_.clear();
  other.graph_ = GraphHandle();
  // The moved-from index reverts to un-built but must keep serving (its
  // spec stays usable): republish an empty labeling.
  if (other.snapshot_serving()) other.PublishLocked({});
}

Connectivity& Connectivity::operator=(Connectivity&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    RetireSnapshot();
    spec_ = std::move(other.spec_);
    variant_ = other.variant_;
    graph_ = std::move(other.graph_);
    labels_ = std::move(other.labels_);
    labels_stale_ = other.labels_stale_;
    built_ = other.built_;
    streaming_ = std::move(other.streaming_);
    forest_ = std::move(other.forest_);
    insert_journal_ = std::move(other.insert_journal_);
    snapshot_.store(other.snapshot_.exchange(nullptr),
                    std::memory_order_release);
    publish_seq_ = other.publish_seq_;
    cadence_k_ = other.cadence_k_;
    batches_since_publish_ = other.batches_since_publish_;
    last_batch_end_us_ = other.last_batch_end_us_;
    publish_cost_ema_us_ = other.publish_cost_ema_us_;
    batch_cost_ema_us_ = other.batch_cost_ema_us_;
    other.batches_since_publish_ = 0;
    other.built_ = false;
    other.labels_stale_ = false;
    other.labels_.clear();
    other.insert_journal_.clear();
    other.graph_ = GraphHandle();
    if (other.snapshot_serving()) other.PublishLocked({});
  }
  return *this;
}

void Connectivity::PublishLocked(std::vector<NodeId> labels) {
  internal::SnapshotData* data = MakeSnapshotData(std::move(labels));
  data->version = ++publish_seq_;
  data->published = true;
  internal::SnapshotData* old = snapshot_.exchange(data);  // seq_cst: pairs
  // with the reader-side pin fence (see epoch.h's safety argument).
  stats::RecordSnapshotPublication();
  epoch::Domain& domain = epoch::Domain::Global();
  if (old != nullptr) domain.Retire(old, DeleteSnapshotData, &old->refs);
  domain.AdvanceAndReclaim();
}

void Connectivity::RetireSnapshot() {
  internal::SnapshotData* old = snapshot_.exchange(nullptr);
  if (old == nullptr) return;
  epoch::Domain& domain = epoch::Domain::Global();
  domain.Retire(old, DeleteSnapshotData, &old->refs);
  domain.AdvanceAndReclaim();
}

Connectivity& Connectivity::Build(const GraphHandle& graph) {
  GraphHandle prepared =
      spec_.representation().has_value()
          ? ConvertTo(graph, *spec_.representation(), spec_.shards())
          : graph;
  // The pass runs outside the lock so readers keep serving the previous
  // labeling until the swap below.
  std::vector<NodeId> labels = variant_->run(prepared, spec_.sampling());
  std::unique_lock<std::shared_mutex> lock(mu_);
  graph_ = std::move(prepared);
  labels_ = std::move(labels);
  labels_stale_ = false;
  built_ = true;
  streaming_.reset();
  forest_.reset();
  insert_journal_.clear();
  if (snapshot_serving()) PublishLocked(labels_);
  return *this;
}

Connectivity& Connectivity::Stream() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CheckBuilt("Stream");
  if (!variant_->supports_streaming) {
    DieF("Connectivity::Stream: the configured variant has no streaming "
         "form (check variant().supports_streaming)");
  }
  // A re-Stream after Inserts must seed from the post-batch labeling, not
  // a stale snapshot.
  if (labels_stale_) {
    labels_ = streaming_->Labels();
    labels_stale_ = false;
  }
  // Adopt the static pass's labeling through the registry's seed seam —
  // the FromStatic handoff without re-running the finish. labels_ moves
  // into the seed (no n-sized copies on the handoff path); the served
  // snapshot refreshes to the adopted (normalized) form on the next read.
  streaming_ =
      variant_->make_streaming(StreamingSeed::FromLabels(std::move(labels_)));
  labels_.clear();
  labels_stale_ = true;
  // Publish the adopted (min-root normalized) labeling so snapshot reads
  // switch to the streaming structure's representative choice at once.
  if (snapshot_serving()) PublishLocked(streaming_->Labels());
  return *this;
}

Connectivity& Connectivity::Stream(NodeId num_nodes) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!variant_->supports_streaming) {
    DieF("Connectivity::Stream: the configured variant has no streaming "
         "form (check variant().supports_streaming)");
  }
  streaming_ = variant_->make_streaming(StreamingSeed::Cold(num_nodes));
  labels_stale_ = true;
  graph_ = GraphHandle();
  built_ = false;  // no static graph behind this state
  forest_.reset();
  insert_journal_.clear();
  if (snapshot_serving()) PublishLocked(streaming_->Labels());
  return *this;
}

bool Connectivity::streaming() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return streaming_ != nullptr;
}

std::vector<uint8_t> Connectivity::Insert(const std::vector<Edge>& updates,
                                          const std::vector<Edge>& queries) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (streaming_ == nullptr) {
    DieF("Connectivity::Insert requires Stream() first");
  }
  const uint64_t process_start_us = SteadyNowUs();
  std::vector<uint8_t> results = streaming_->ProcessBatch(updates, queries);
  const uint64_t process_us = SteadyNowUs() - process_start_us;
  // Keep the deletion layer in step: an armed forest absorbs the batch
  // directly; before the first Erase the journal records it for the
  // arming replay (see ArmForestLocked).
  if (forest_ != nullptr) {
    forest_->InsertBatch(updates);
  } else {
    insert_journal_.insert(insert_journal_.end(), updates.begin(),
                           updates.end());
  }
  if (snapshot_serving()) {
    // Publish the post-batch labeling (Θ(n) on the mutator so every read
    // stays O(1) and wait-free; readers switch labelings at the pointer
    // swap — never mid-batch), or hold it back under a cadence k > 1.
    MaybePublishBatchLocked(process_us);
  }
  // Mutator-side staging refreshes lazily (shared-lock reads, re-Stream).
  labels_stale_ = true;
  return results;
}

void Connectivity::ArmForestLocked() {
  forest_ = std::make_unique<DynamicForest>(streaming_->num_nodes());
  if (built_) {
    // Seed from the built graph through the variant's own spanning-forest
    // pass (every streaming-capable variant is root-based, so run_forest
    // is always available here). Representation-native like Build: a COO
    // handle seeds without materializing a CSR, a sharded one without
    // flattening.
    forest_->AdoptGraph(graph_,
                        variant_->run_forest(graph_, spec_.sampling()));
  }
  if (!insert_journal_.empty()) {
    forest_->InsertBatch(insert_journal_);
    insert_journal_.clear();
    insert_journal_.shrink_to_fit();
  }
}

std::vector<uint8_t> Connectivity::Erase(const std::vector<Edge>& updates,
                                         const std::vector<Edge>& queries) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (streaming_ == nullptr) {
    DieF("Connectivity::Erase requires Stream() first");
  }
  if (forest_ == nullptr) ArmForestLocked();
  const DynamicForest::EraseStats batch = forest_->EraseBatch(updates);
  stats::RecordEraseBatch(batch.erased, batch.misses, batch.forest_hits,
                          batch.replacement_searches,
                          batch.components_split);
  if (batch.labels_changed) {
    // A component actually split: the insertion-only streaming structure
    // cannot represent that, so reseed it from the forest's canonical
    // labeling (the same FromLabels seam Stream() uses). Deletions whose
    // replacement search succeeded change no labels and skip this.
    streaming_ =
        variant_->make_streaming(StreamingSeed::FromLabels(forest_->Labels()));
  }
  std::vector<uint8_t> results(queries.size());
  const std::vector<NodeId>& labels = forest_->Labels();
  ParallelFor(0, queries.size(), [&](size_t i) {
    results[i] = labels[queries[i].u] == labels[queries[i].v] ? 1 : 0;
  });
  if (snapshot_serving()) {
    // Same discipline as Insert, but never held back by the cadence: a
    // deletion's effect (and any batches the cadence was holding) is
    // published before Erase returns, so no reader ever sees a
    // half-applied batch.
    PublishLocked(streaming_->Labels());
    batches_since_publish_ = 0;
  }
  labels_stale_ = true;
  return results;
}

void Connectivity::MaybePublishBatchLocked(uint64_t batch_cost_us) {
  const uint64_t now_us = SteadyNowUs();
  const bool quiet = last_batch_end_us_ != 0 &&
                     now_us - last_batch_end_us_ > kCadenceQuietGapUs;
  last_batch_end_us_ = now_us;
  ++batches_since_publish_;
  constexpr double kAlpha = 0.2;  // EMA smoothing for both cost estimates
  batch_cost_ema_us_ =
      batch_cost_ema_us_ == 0
          ? static_cast<double>(batch_cost_us)
          : (1 - kAlpha) * batch_cost_ema_us_ + kAlpha * batch_cost_us;
  if (batches_since_publish_ < cadence_k_ && !quiet) {
    stats::RecordPublicationSkip();
    return;
  }
  const uint64_t publish_start_us = SteadyNowUs();
  PublishLocked(streaming_->Labels());
  const uint64_t publish_us = SteadyNowUs() - publish_start_us;
  batches_since_publish_ = 0;
  publish_cost_ema_us_ =
      publish_cost_ema_us_ == 0
          ? static_cast<double>(publish_us)
          : (1 - kAlpha) * publish_cost_ema_us_ + kAlpha * publish_us;
  if (spec_.adaptive_cadence()) {
    // Choose k so the amortized Θ(n) publication cost stays at most ~25%
    // of the measured per-batch processing work.
    const double budget_us = 0.25 * std::max(batch_cost_ema_us_, 1.0);
    const double k = std::ceil(publish_cost_ema_us_ / budget_us);
    cadence_k_ = static_cast<uint32_t>(std::clamp(
        k, 1.0, static_cast<double>(kMaxAdaptiveCadence)));
  } else {
    cadence_k_ = spec_.publish_every();
  }
  stats::RecordPublicationCost(publish_us, cadence_k_);
}

void Connectivity::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!snapshot_serving() || streaming_ == nullptr ||
      batches_since_publish_ == 0) {
    return;
  }
  PublishLocked(streaming_->Labels());
  batches_since_publish_ = 0;
}

SpanningForestResult Connectivity::SpanningForest() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  CheckBuilt("SpanningForest");
  if (!variant_->root_based) {
    DieF("Connectivity::SpanningForest: the configured variant is not "
         "root-based (check variant().root_based)");
  }
  return variant_->run_forest(graph_, spec_.sampling());
}

NodeId Connectivity::Component(NodeId v) const {
  if (snapshot_serving()) {
    epoch::Domain::Guard guard;
    return snapshot_.load(std::memory_order_acquire)->labels.at(v);
  }
  return ReadLabels(
      [v](const std::vector<NodeId>& labels) { return labels.at(v); });
}

bool Connectivity::SameComponent(NodeId u, NodeId v) const {
  if (snapshot_serving()) {
    epoch::Domain::Guard guard;
    const internal::SnapshotData* data =
        snapshot_.load(std::memory_order_acquire);
    return data->labels.at(u) == data->labels.at(v);
  }
  return ReadLabels([u, v](const std::vector<NodeId>& labels) {
    return labels.at(u) == labels.at(v);
  });
}

NodeId Connectivity::NumComponents() const {
  if (snapshot_serving()) {
    epoch::Domain::Guard guard;
    return snapshot_.load(std::memory_order_acquire)->num_components;
  }
  return ReadLabels(
      [](const std::vector<NodeId>& labels) { return CountComponents(labels); });
}

std::vector<NodeId> Connectivity::ComponentSizes() const {
  if (snapshot_serving()) {
    epoch::Domain::Guard guard;
    return snapshot_.load(std::memory_order_acquire)->sizes;
  }
  return ReadLabels([](const std::vector<NodeId>& labels) {
    return connectit::ComponentSizes(labels);
  });
}

std::vector<NodeId> Connectivity::Labels() const {
  if (snapshot_serving()) {
    epoch::Domain::Guard guard;
    return snapshot_.load(std::memory_order_acquire)->labels;
  }
  return ReadLabels([](const std::vector<NodeId>& labels) { return labels; });
}

Snapshot Connectivity::Acquire() const {
  if (snapshot_serving()) {
    epoch::Domain::Guard guard;
    const internal::SnapshotData* data =
        snapshot_.load(std::memory_order_acquire);
    // The guard keeps the block alive across this increment even if a
    // concurrent publication just retired it; afterwards the reference
    // does.
    data->refs.fetch_add(1, std::memory_order_acq_rel);
    return Snapshot(data);
  }
  // Baseline mode has no published block: materialize a one-off,
  // unpublished snapshot under the lock (Θ(n)).
  return ReadLabels([](const std::vector<NodeId>& labels) {
    internal::SnapshotData* data = MakeSnapshotData(labels);
    data->refs.store(1, std::memory_order_relaxed);
    return Snapshot(data);
  });
}

NodeId Connectivity::num_nodes() const {
  if (snapshot_serving()) {
    epoch::Domain::Guard guard;
    return static_cast<NodeId>(
        snapshot_.load(std::memory_order_acquire)->labels.size());
  }
  return ReadLabels([](const std::vector<NodeId>& labels) {
    return static_cast<NodeId>(labels.size());
  });
}

GraphRepresentation Connectivity::representation() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return graph_.representation();
}

void Connectivity::CheckBuilt(const char* op) const {
  if (!built_) {
    std::fprintf(stderr, "fatal: Connectivity::%s requires Build() first\n",
                 op);
    std::abort();
  }
}

}  // namespace connectit
