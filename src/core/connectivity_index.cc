#include "src/core/connectivity_index.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "src/core/components.h"
#include "src/graph/builder.h"

namespace connectit {

namespace {

[[noreturn]] void DieF(const char* message) {
  std::fprintf(stderr, "fatal: %s\n", message);
  std::abort();
}

// Builds an owning handle of `target` representation from a flat CSR
// reference. Only the kCsr target needs to copy `flat`; the other
// converters build independent owning structures from the reference.
GraphHandle FromFlat(const Graph& flat, GraphRepresentation target,
                     size_t shards) {
  switch (target) {
    case GraphRepresentation::kCsr:
      return GraphHandle::Adopt(Graph(flat));
    case GraphRepresentation::kCompressed:
      return GraphHandle::Compress(flat);
    case GraphRepresentation::kCoo:
      return GraphHandle::Adopt(ExtractEdges(flat));
    case GraphRepresentation::kSharded:
      return GraphHandle::Shard(flat, shards);
  }
  return GraphHandle();
}

// The Spec-requested representation of `in`, reusing the input when it
// already matches (and, for sharded targets, the shard count agrees or was
// left defaulted). Conversions produce owning handles and work from a
// flat-CSR *reference* (the input's own CSR, or the cached materialization
// for COO/sharded sources) — no intermediate whole-graph copy; only a
// compressed source decodes into a temporary.
GraphHandle ConvertTo(const GraphHandle& in, GraphRepresentation target,
                      size_t shards) {
  if (in.representation() == target &&
      (target != GraphRepresentation::kSharded || shards == 0 ||
       in.sharded()->num_shards() == shards)) {
    return in;
  }
  if (in.representation() == GraphRepresentation::kCompressed) {
    // The only representation without a flat form on hand: decompress
    // (parallel, exact CSR reconstruction), then convert.
    Graph decoded = in.compressed()->Decode();
    if (target == GraphRepresentation::kCsr) {
      return GraphHandle::Adopt(std::move(decoded));
    }
    return FromFlat(decoded, target, shards);
  }
  const Graph& flat = in.representation() == GraphRepresentation::kCsr
                          ? *in.csr()
                          : in.MaterializedCsr();
  return FromFlat(flat, target, shards);
}

}  // namespace

Connectivity::Spec Connectivity::Spec::Auto(const GraphHandle& graph,
                                            bool streaming) {
  Spec spec;  // DefaultVariant: fastest all-around, root-based, streamable.
  const NodeId n = graph.num_nodes();
  const double avg_degree =
      n == 0 ? 0.0 : static_cast<double>(graph.num_arcs()) / n;
  if (graph.representation() == GraphRepresentation::kCoo) {
    // Unsampled keeps the whole lifecycle COO-native (edge-centric default
    // variant, so neither Build nor a streaming seed ever builds a CSR).
    return spec;
  }
  if (avg_degree >= 4.0) {
    spec.Sampling(SamplingConfig::KOut());
  }
  if (!streaming && graph.representation() == GraphRepresentation::kCsr &&
      avg_degree >= 8.0 && n >= (NodeId{1} << 18)) {
    // Big dense analytical pass: shard-major locality wins (see
    // ARCHITECTURE.md "Choosing a representation"). Not worth the
    // partition cost for a one-shot streaming seed.
    spec.Representation(GraphRepresentation::kSharded);
  }
  return spec;
}

Connectivity::Spec& Connectivity::Spec::Algorithm(
    const VariantDescriptor& descriptor) {
  algorithm_ = descriptor;
  return *this;
}

Connectivity::Spec& Connectivity::Spec::Algorithm(std::string_view name) {
  algorithm_ = GetVariantOrDie(name).descriptor;
  return *this;
}

Connectivity::Connectivity(Spec spec)
    : spec_(std::move(spec)), variant_(FindVariant(spec_.algorithm())) {
  if (variant_ == nullptr) {
    std::fprintf(stderr,
                 "fatal: Connectivity spec names an unregistered variant "
                 "combination (\"%s\")\n",
                 spec_.algorithm().ToString().c_str());
    std::abort();
  }
}

Connectivity::Connectivity(Connectivity&& other) noexcept {
  std::unique_lock<std::shared_mutex> lock(other.mu_);
  spec_ = std::move(other.spec_);
  variant_ = other.variant_;  // registry storage is static; stays valid
  graph_ = std::move(other.graph_);
  labels_ = std::move(other.labels_);
  labels_stale_ = other.labels_stale_;
  built_ = other.built_;
  streaming_ = std::move(other.streaming_);
  other.built_ = false;
  other.labels_stale_ = false;
  other.labels_.clear();
  other.graph_ = GraphHandle();
}

Connectivity& Connectivity::operator=(Connectivity&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    spec_ = std::move(other.spec_);
    variant_ = other.variant_;
    graph_ = std::move(other.graph_);
    labels_ = std::move(other.labels_);
    labels_stale_ = other.labels_stale_;
    built_ = other.built_;
    streaming_ = std::move(other.streaming_);
    other.built_ = false;
    other.labels_stale_ = false;
    other.labels_.clear();
    other.graph_ = GraphHandle();
  }
  return *this;
}

Connectivity& Connectivity::Build(const GraphHandle& graph) {
  GraphHandle prepared =
      spec_.representation().has_value()
          ? ConvertTo(graph, *spec_.representation(), spec_.shards())
          : graph;
  // The pass runs outside the lock so readers keep serving the previous
  // labeling until the swap below.
  std::vector<NodeId> labels = variant_->run(prepared, spec_.sampling());
  std::unique_lock<std::shared_mutex> lock(mu_);
  graph_ = std::move(prepared);
  labels_ = std::move(labels);
  labels_stale_ = false;
  built_ = true;
  streaming_.reset();
  return *this;
}

Connectivity& Connectivity::Stream() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  CheckBuilt("Stream");
  if (!variant_->supports_streaming) {
    DieF("Connectivity::Stream: the configured variant has no streaming "
         "form (check variant().supports_streaming)");
  }
  // A re-Stream after Inserts must seed from the post-batch labeling, not
  // a stale snapshot.
  if (labels_stale_) {
    labels_ = streaming_->Labels();
    labels_stale_ = false;
  }
  // Adopt the static pass's labeling through the registry's seed seam —
  // the FromStatic handoff without re-running the finish. labels_ moves
  // into the seed (no n-sized copies on the handoff path); the served
  // snapshot refreshes to the adopted (normalized) form on the next read.
  streaming_ =
      variant_->make_streaming(StreamingSeed::FromLabels(std::move(labels_)));
  labels_.clear();
  labels_stale_ = true;
  return *this;
}

Connectivity& Connectivity::Stream(NodeId num_nodes) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!variant_->supports_streaming) {
    DieF("Connectivity::Stream: the configured variant has no streaming "
         "form (check variant().supports_streaming)");
  }
  streaming_ = variant_->make_streaming(StreamingSeed::Cold(num_nodes));
  labels_stale_ = true;
  graph_ = GraphHandle();
  built_ = false;  // no static graph behind this state
  return *this;
}

bool Connectivity::streaming() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return streaming_ != nullptr;
}

std::vector<uint8_t> Connectivity::Insert(const std::vector<Edge>& updates,
                                          const std::vector<Edge>& queries) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (streaming_ == nullptr) {
    DieF("Connectivity::Insert requires Stream() first");
  }
  std::vector<uint8_t> results = streaming_->ProcessBatch(updates, queries);
  // Don't pay the Theta(n) snapshot per batch: the first read after this
  // batch refreshes the served labeling (ReadLabels).
  labels_stale_ = true;
  return results;
}

SpanningForestResult Connectivity::SpanningForest() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  CheckBuilt("SpanningForest");
  if (!variant_->root_based) {
    DieF("Connectivity::SpanningForest: the configured variant is not "
         "root-based (check variant().root_based)");
  }
  return variant_->run_forest(graph_, spec_.sampling());
}

NodeId Connectivity::Component(NodeId v) const {
  return ReadLabels(
      [v](const std::vector<NodeId>& labels) { return labels.at(v); });
}

bool Connectivity::SameComponent(NodeId u, NodeId v) const {
  return ReadLabels([u, v](const std::vector<NodeId>& labels) {
    return labels.at(u) == labels.at(v);
  });
}

NodeId Connectivity::NumComponents() const {
  return ReadLabels(
      [](const std::vector<NodeId>& labels) { return CountComponents(labels); });
}

std::vector<NodeId> Connectivity::ComponentSizes() const {
  return ReadLabels([](const std::vector<NodeId>& labels) {
    return connectit::ComponentSizes(labels);
  });
}

std::vector<NodeId> Connectivity::Labels() const {
  return ReadLabels([](const std::vector<NodeId>& labels) { return labels; });
}

NodeId Connectivity::num_nodes() const {
  return ReadLabels([](const std::vector<NodeId>& labels) {
    return static_cast<NodeId>(labels.size());
  });
}

GraphRepresentation Connectivity::representation() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return graph_.representation();
}

void Connectivity::CheckBuilt(const char* op) const {
  if (!built_) {
    std::fprintf(stderr, "fatal: Connectivity::%s requires Build() first\n",
                 op);
    std::abort();
  }
}

}  // namespace connectit
