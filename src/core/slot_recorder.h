// Forest-edge slot recording for min-update algorithms (SV, root-based
// Liu-Tarjan).
//
// Union-find unites hook each root exactly once, so the winning Unite can
// write the forest slot directly. WriteMin-based algorithms may lower a
// root's parent several times within a round; the slot must end up holding
// the edge that produced the *final* parent value. Record() re-checks the
// parent under a per-vertex spinlock, so the last consistent writer wins.

#ifndef CONNECTIT_CORE_SLOT_RECORDER_H_
#define CONNECTIT_CORE_SLOT_RECORDER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "src/graph/types.h"
#include "src/parallel/atomics.h"

namespace connectit {

class SlotRecorder {
 public:
  SlotRecorder(std::vector<Edge>* slots, const NodeId* parents, NodeId n)
      : slots_(slots), parents_(parents),
        locks_(std::make_unique<std::atomic<uint8_t>[]>(n)) {
    for (NodeId i = 0; i < n; ++i) {
      locks_[i].store(0, std::memory_order_relaxed);
    }
  }

  // Called after a successful WriteMin set parents[x] = value while applying
  // graph edge `e`. Stores e into slots[x] iff parents[x] still equals
  // value, making the stored edge consistent with the final hook.
  void Record(NodeId x, NodeId value, Edge e) {
    while (locks_[x].exchange(1, std::memory_order_acquire) != 0) {
    }
    if (AtomicLoadRelaxed(&parents_[x]) == value) (*slots_)[x] = e;
    locks_[x].store(0, std::memory_order_release);
  }

 private:
  std::vector<Edge>* slots_;
  const NodeId* parents_;
  std::unique_ptr<std::atomic<uint8_t>[]> locks_;
};

// No-op recorder for connectivity-only runs.
struct NullRecorder {
  void Record(NodeId, NodeId, Edge) {}
};

}  // namespace connectit

#endif  // CONNECTIT_CORE_SLOT_RECORDER_H_
