#include "src/core/sampling.h"

#include <atomic>

#include "src/parallel/atomics.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

void KOutSample(const Graph& graph, const KOutOptions& options,
                std::vector<NodeId>& labels) {
  KOutSampleT(graph, options, labels);
}

void KOutSampleForest(const Graph& graph, const KOutOptions& options,
                      std::vector<NodeId>& labels, std::vector<Edge>& slots) {
  internal_sampling::KOutSampleImpl<true>(graph, options, labels, &slots);
}

void BfsSample(const Graph& graph, const BfsSampleOptions& options,
               std::vector<NodeId>& labels) {
  BfsSampleT(graph, options, labels);
}

void BfsSampleForest(const Graph& graph, const BfsSampleOptions& options,
                     std::vector<NodeId>& labels, std::vector<Edge>& slots) {
  internal_sampling::BfsSampleImpl<true>(graph, options, labels, &slots);
}

void LddSample(const Graph& graph, const LddSampleOptions& options,
               std::vector<NodeId>& labels) {
  LddSampleT(graph, options, labels);
}

void LddSampleForest(const Graph& graph, const LddSampleOptions& options,
                     std::vector<NodeId>& labels, std::vector<Edge>& slots) {
  internal_sampling::LddSampleImpl<true>(graph, options, labels, &slots);
}

void RunSampling(const Graph& graph, const SamplingConfig& config,
                 std::vector<NodeId>& labels) {
  RunSamplingT(graph, config, labels);
}

void RunSamplingForest(const Graph& graph, const SamplingConfig& config,
                       std::vector<NodeId>& labels, std::vector<Edge>& slots) {
  RunSamplingForestT(graph, config, labels, slots);
}

SamplingQuality MeasureSamplingQuality(const Graph& graph,
                                       const std::vector<NodeId>& labels) {
  SamplingQuality q;
  const NodeId n = graph.num_nodes();
  if (n == 0) return q;
  // Coverage: most frequent cluster size over n.
  std::vector<NodeId> counts(n, 0);
  ParallelFor(0, n, [&](size_t v) { FetchAdd<NodeId>(&counts[labels[v]], 1); });
  NodeId best = 0;
  NodeId clusters = 0;
  for (NodeId c = 0; c < n; ++c) {
    if (counts[c] > 0) ++clusters;
    best = std::max(best, counts[c]);
  }
  q.coverage = static_cast<double>(best) / static_cast<double>(n);
  q.num_clusters = clusters;
  // Inter-component (inter-cluster) arc fraction.
  std::atomic<EdgeId> inter{0};
  graph.MapArcs([&](NodeId u, NodeId v) {
    if (labels[u] != labels[v]) inter.fetch_add(1, std::memory_order_relaxed);
  });
  q.intercomponent_fraction =
      graph.num_arcs() == 0
          ? 0.0
          : static_cast<double>(inter.load()) /
                static_cast<double>(graph.num_arcs());
  return q;
}

}  // namespace connectit
