// IdentifyFrequent (paper Algorithm 1, line 6): find the most frequently
// occurring label after sampling. The framework uses the sampled estimator
// (as Afforest does); the exact count is used by tests and the sampling-
// quality experiments.

#ifndef CONNECTIT_CORE_FREQUENT_H_
#define CONNECTIT_CORE_FREQUENT_H_

#include <cstdint>
#include <vector>

#include "src/graph/types.h"

namespace connectit {

struct FrequentResult {
  NodeId label = kInvalidNode;
  // Number of occurrences among the inspected labels (all labels for the
  // exact version; the sample size for the sampled version).
  uint64_t count = 0;
  uint64_t inspected = 0;
};

// Exact most-frequent label (hash counting).
FrequentResult IdentifyFrequentExact(const std::vector<NodeId>& labels);

// Estimates the most frequent label from `num_samples` uniformly sampled
// positions; deterministic for a fixed seed.
FrequentResult IdentifyFrequentSampled(const std::vector<NodeId>& labels,
                                       uint32_t num_samples = 1024,
                                       uint64_t seed = 7);

}  // namespace connectit

#endif  // CONNECTIT_CORE_FREQUENT_H_
