// Typed variant identity: the enum-per-axis descriptor behind every
// registered algorithm name.
//
// The registry's naming scheme ("Union-Rem-CAS;FindNaive;SplitAtomicOne",
// "Liu-Tarjan;PRF", ...) is a *parse layer* for humans and the CLI; inside
// the system a variant is identified by a VariantDescriptor — an algorithm
// family plus the family's option axes (unite/find/splice for union-find,
// the connect/update/shortcut/alter code for Liu-Tarjan). Parse and
// ToString are exact inverses over the registered name space, so consumers
// can move between the two forms losslessly:
//
//   VariantDescriptor::Parse(name)->ToString() == name   // every registry name
//   FindVariant(descriptor)                              // exact, not string match
//
// Descriptors are plain value types; invalid axis combinations (e.g.
// FindCompress with SpliceAtomic, paper Appendix B.2.3) are rejected by
// IsValid()/Parse and never appear in the registry.

#ifndef CONNECTIT_CORE_VARIANT_DESCRIPTOR_H_
#define CONNECTIT_CORE_VARIANT_DESCRIPTOR_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/liutarjan/liu_tarjan.h"
#include "src/unionfind/options.h"

namespace connectit {

enum class AlgorithmFamily {
  kUnionFind,
  kShiloachVishkin,
  kLiuTarjan,
  kStergiou,
  kLabelPropagation,
};

constexpr std::string_view ToString(AlgorithmFamily family) {
  switch (family) {
    case AlgorithmFamily::kUnionFind: return "union-find";
    case AlgorithmFamily::kShiloachVishkin: return "shiloach-vishkin";
    case AlgorithmFamily::kLiuTarjan: return "liu-tarjan";
    case AlgorithmFamily::kStergiou: return "stergiou";
    case AlgorithmFamily::kLabelPropagation: return "label-propagation";
  }
  return "?";
}

// The 16 Appendix-D Liu-Tarjan variants are exactly the combinations where
// Connect-based variants alter (required for correctness, Liu & Tarjan) and
// ExtendedConnect pairs only with plain Update.
constexpr bool IsValidLtCombination(LtConnect c, LtUpdate u, LtShortcut,
                                    LtAlter a) {
  if (c == LtConnect::kConnect && a != LtAlter::kAlter) return false;
  if (c == LtConnect::kExtendedConnect && u != LtUpdate::kUpdate) return false;
  return true;
}

struct VariantDescriptor {
  AlgorithmFamily family = AlgorithmFamily::kUnionFind;

  // Union-find axes; meaningful iff family == kUnionFind. `placement` is
  // the memory-placement axis (flat shared parent array vs. per-NUMA-node
  // replicas, src/unionfind/numa_dsu.h); names carry it as a trailing
  // ";NumaReplicated" token.
  UniteOption unite = UniteOption::kAsync;
  FindOption find = FindOption::kNaive;
  SpliceOption splice = SpliceOption::kNone;
  PlacementOption placement = PlacementOption::kFlat;

  // Liu-Tarjan axes; meaningful iff family == kLiuTarjan.
  LtConnect connect = LtConnect::kConnect;
  LtUpdate update = LtUpdate::kUpdate;
  LtShortcut shortcut = LtShortcut::kShortcut;
  LtAlter alter = LtAlter::kAlter;

  static VariantDescriptor UnionFind(
      UniteOption u, FindOption f, SpliceOption s = SpliceOption::kNone,
      PlacementOption p = PlacementOption::kFlat) {
    VariantDescriptor d;
    d.family = AlgorithmFamily::kUnionFind;
    d.unite = u;
    d.find = f;
    d.splice = s;
    d.placement = p;
    return d;
  }
  static VariantDescriptor LiuTarjan(LtConnect c, LtUpdate u, LtShortcut s,
                                     LtAlter a) {
    VariantDescriptor d;
    d.family = AlgorithmFamily::kLiuTarjan;
    d.connect = c;
    d.update = u;
    d.shortcut = s;
    d.alter = a;
    return d;
  }
  static VariantDescriptor ShiloachVishkin() {
    VariantDescriptor d;
    d.family = AlgorithmFamily::kShiloachVishkin;
    return d;
  }
  static VariantDescriptor Stergiou() {
    VariantDescriptor d;
    d.family = AlgorithmFamily::kStergiou;
    return d;
  }
  static VariantDescriptor LabelPropagation() {
    VariantDescriptor d;
    d.family = AlgorithmFamily::kLabelPropagation;
    return d;
  }

  // True iff the meaningful axes form a registerable combination
  // (IsValidCombination for union-find, IsValidLtCombination for
  // Liu-Tarjan; the single-variant families are always valid).
  bool IsValid() const;

  // The registry name this descriptor denotes, in the exact naming scheme
  // of registry.h ("unite;find[;splice]", "Liu-Tarjan;<code>", ...).
  std::string ToString() const;

  // Inverse of ToString: parses a registry name back into its descriptor.
  // Returns nullopt for anything that is not a valid registered-form name
  // (unknown axis token, invalid combination, malformed Liu-Tarjan code).
  static std::optional<VariantDescriptor> Parse(std::string_view name);
};

// Equality compares the family and only that family's meaningful axes, so
// hand-built descriptors match regardless of what the unused axes hold.
bool operator==(const VariantDescriptor& a, const VariantDescriptor& b);
inline bool operator!=(const VariantDescriptor& a, const VariantDescriptor& b) {
  return !(a == b);
}

}  // namespace connectit

#endif  // CONNECTIT_CORE_VARIANT_DESCRIPTOR_H_
