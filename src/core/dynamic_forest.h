// Dynamic spanning forest for batch deletions (the Erase backbone).
//
// The streaming union-find structures (streaming.h) are insertion-only:
// a union can never be undone, so deletions need a second structure that
// remembers *which* edges carry the connectivity. DynamicForest keeps,
// alongside the streaming labeling:
//   - the current edge multigraph as per-vertex adjacency (deduplicated;
//     self-loops are dropped, they never affect connectivity),
//   - the subset of edges forming a spanning forest (seeded from the
//     variant's own run_forest pass, then maintained incrementally), and
//   - a canonical labeling (label = minimum vertex id of the component).
//
// Deleting a non-forest edge is free — the forest still spans. Deleting a
// forest edge marks the component *affected*; after the batch one
// parallel replacement-edge search (src/algo/replacement.h) recomputes
// the affected region's pieces, rebuilds their trees, and relabels. A
// deletion with a surviving replacement therefore leaves the labeling
// bit-for-bit unchanged.
//
// Not thread-safe: the Connectivity façade serializes mutations under its
// exclusive lock, exactly as it does for Insert.

#ifndef CONNECTIT_CORE_DYNAMIC_FOREST_H_
#define CONNECTIT_CORE_DYNAMIC_FOREST_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/core/connectit.h"
#include "src/graph/graph_handle.h"
#include "src/graph/types.h"

namespace connectit {

class DynamicForest {
 public:
  // What one EraseBatch did, for the serving counters and the reseed
  // decision in Connectivity::Erase.
  struct EraseStats {
    uint64_t erased = 0;       // edges actually removed
    uint64_t misses = 0;       // absent edges and self-loops (no-ops)
    uint64_t forest_hits = 0;  // removed edges that were forest edges
    // Affected components searched for replacements (one search covers
    // every forest hit within a component).
    uint64_t replacement_searches = 0;
    // Extra pieces the affected components split into (0 = every deleted
    // forest edge had a surviving replacement).
    uint64_t components_split = 0;
    // True iff the partition changed (components_split > 0), i.e. the
    // streaming structure must be reseeded from Labels().
    bool labels_changed = false;
  };

  // n isolated vertices, no edges (the cold-start shape).
  explicit DynamicForest(NodeId n);

  // Adopts a built graph's adjacency plus the spanning forest its variant
  // computed (run_forest output: labels + forest edges). The labels are
  // canonicalized to min-rooted form. Call at most once, before any
  // Insert/Erase batch.
  void AdoptGraph(const GraphHandle& graph,
                  const SpanningForestResult& forest);

  // Applies edge insertions: new edges join the adjacency; an edge that
  // merges two components becomes a forest edge and the smaller canonical
  // label wins (labels stay min-rooted). Duplicates and self-loops are
  // no-ops, mirroring their effect on the streaming union-find.
  void InsertBatch(const std::vector<Edge>& updates);

  // Applies edge deletions; see the header comment for the algorithm.
  EraseStats EraseBatch(const std::vector<Edge>& updates);

  bool HasEdge(NodeId u, NodeId v) const {
    return u != v && edges_.count(Key(u, v)) > 0;
  }
  bool SameComponent(NodeId u, NodeId v) const {
    return labels_[u] == labels_[v];
  }
  // The canonical labeling (label = min vertex id of the component) —
  // always a valid StreamingSeed::FromLabels input.
  const std::vector<NodeId>& Labels() const { return labels_; }

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  size_t num_edges() const { return edges_.size(); }
  size_t num_forest_edges() const { return forest_.size(); }

  // Adjacency view satisfying the BFS GraphT concept (bfs.h), handed to
  // the replacement search.
  class AdjacencyView {
   public:
    explicit AdjacencyView(const DynamicForest* f) : f_(f) {}
    NodeId num_nodes() const { return f_->num_nodes(); }
    EdgeId num_arcs() const { return f_->num_arcs_; }
    EdgeId degree(NodeId v) const {
      return static_cast<EdgeId>(f_->adj_[v].size());
    }
    template <typename F>
    void MapNeighbors(NodeId u, F&& fn) const {
      for (const NodeId v : f_->adj_[u]) fn(v);
    }
    template <typename F>
    void MapNeighborsWhile(NodeId u, F&& fn) const {
      for (const NodeId v : f_->adj_[u]) {
        if (!fn(v)) return;
      }
    }

   private:
    const DynamicForest* f_;
  };
  AdjacencyView View() const { return AdjacencyView(this); }

 private:
  // Canonical (order-independent) 64-bit key of an undirected edge.
  static uint64_t Key(NodeId u, NodeId v) {
    const NodeId lo = u < v ? u : v;
    const NodeId hi = u < v ? v : u;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }
  static NodeId KeyLo(uint64_t key) { return static_cast<NodeId>(key >> 32); }

  // Inserts (u, v) into the adjacency; false for self-loops/duplicates.
  bool AddEdge(NodeId u, NodeId v);
  void RemoveArc(NodeId u, NodeId v);

  std::vector<std::vector<NodeId>> adj_;
  std::unordered_set<uint64_t> edges_;   // every present edge, canonical key
  std::unordered_set<uint64_t> forest_;  // the spanning subset of edges_
  std::vector<NodeId> labels_;           // canonical min-rooted labeling
  EdgeId num_arcs_ = 0;
};

}  // namespace connectit

#endif  // CONNECTIT_CORE_DYNAMIC_FOREST_H_
