#include "src/core/variant_descriptor.h"

#include <vector>

namespace connectit {

namespace {

// Token -> enum, by round-tripping through the canonical ToString tables so
// the parse layer can never drift from the format layer.
template <typename Enum>
bool ParseToken(std::string_view token, std::initializer_list<Enum> values,
                Enum* out) {
  for (const Enum value : values) {
    if (token == ToString(value)) {
      *out = value;
      return true;
    }
  }
  return false;
}

bool ParseUnite(std::string_view token, UniteOption* out) {
  return ParseToken(token,
                    {UniteOption::kAsync, UniteOption::kHooks,
                     UniteOption::kEarly, UniteOption::kRemCas,
                     UniteOption::kRemLock, UniteOption::kJtb},
                    out);
}

bool ParseFind(std::string_view token, FindOption* out) {
  return ParseToken(token,
                    {FindOption::kNaive, FindOption::kSplit, FindOption::kHalve,
                     FindOption::kCompress, FindOption::kTwoTrySplit},
                    out);
}

bool ParseSplice(std::string_view token, SpliceOption* out) {
  return ParseToken(token,
                    {SpliceOption::kSplitOne, SpliceOption::kHalveOne,
                     SpliceOption::kSplice},
                    out);
}

bool ParsePlacement(std::string_view token, PlacementOption* out) {
  return ParseToken(token, {PlacementOption::kNumaReplicated}, out);
}

// Parses a paper Appendix-D code ("PRF", "CUSA", ...): one connect letter,
// one update letter, one shortcut letter, and an optional trailing 'A'.
bool ParseLtCode(std::string_view code, VariantDescriptor* out) {
  if (code.size() != 3 && code.size() != 4) return false;
  switch (code[0]) {
    case 'C': out->connect = LtConnect::kConnect; break;
    case 'P': out->connect = LtConnect::kParentConnect; break;
    case 'E': out->connect = LtConnect::kExtendedConnect; break;
    default: return false;
  }
  switch (code[1]) {
    case 'U': out->update = LtUpdate::kUpdate; break;
    case 'R': out->update = LtUpdate::kRootUp; break;
    default: return false;
  }
  switch (code[2]) {
    case 'S': out->shortcut = LtShortcut::kShortcut; break;
    case 'F': out->shortcut = LtShortcut::kFullShortcut; break;
    default: return false;
  }
  if (code.size() == 4) {
    if (code[3] != 'A') return false;
    out->alter = LtAlter::kAlter;
  } else {
    out->alter = LtAlter::kNoAlter;
  }
  return true;
}

}  // namespace

bool VariantDescriptor::IsValid() const {
  switch (family) {
    case AlgorithmFamily::kUnionFind:
      return IsValidPlacement(unite, find, splice, placement);
    case AlgorithmFamily::kLiuTarjan:
      return IsValidLtCombination(connect, update, shortcut, alter);
    case AlgorithmFamily::kShiloachVishkin:
    case AlgorithmFamily::kStergiou:
    case AlgorithmFamily::kLabelPropagation:
      return true;
  }
  return false;
}

std::string VariantDescriptor::ToString() const {
  switch (family) {
    case AlgorithmFamily::kUnionFind: {
      std::string name = std::string(connectit::ToString(unite)) + ";" +
                         std::string(connectit::ToString(find));
      if (splice != SpliceOption::kNone) {
        name += ";";
        name += connectit::ToString(splice);
      }
      if (placement != PlacementOption::kFlat) {
        name += ";";
        name += connectit::ToString(placement);
      }
      return name;
    }
    case AlgorithmFamily::kLiuTarjan:
      return "Liu-Tarjan;" + LtVariantCode(connect, update, shortcut, alter);
    case AlgorithmFamily::kShiloachVishkin:
      return "Shiloach-Vishkin";
    case AlgorithmFamily::kStergiou:
      return "Stergiou";
    case AlgorithmFamily::kLabelPropagation:
      return "Label-Propagation";
  }
  return "?";
}

std::optional<VariantDescriptor> VariantDescriptor::Parse(
    std::string_view name) {
  if (name == "Shiloach-Vishkin") return ShiloachVishkin();
  if (name == "Stergiou") return Stergiou();
  if (name == "Label-Propagation") return LabelPropagation();

  constexpr std::string_view kLtPrefix = "Liu-Tarjan;";
  if (name.substr(0, kLtPrefix.size()) == kLtPrefix) {
    VariantDescriptor d;
    d.family = AlgorithmFamily::kLiuTarjan;
    if (!ParseLtCode(name.substr(kLtPrefix.size()), &d)) return std::nullopt;
    if (!d.IsValid()) return std::nullopt;
    return d;
  }

  // Union-find: "unite;find[;splice][;placement]".
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos <= name.size()) {
    size_t semi = name.find(';', pos);
    if (semi == std::string_view::npos) semi = name.size();
    tokens.push_back(name.substr(pos, semi - pos));
    pos = semi + 1;
  }
  if (tokens.size() < 2 || tokens.size() > 4) return std::nullopt;
  VariantDescriptor d;
  d.family = AlgorithmFamily::kUnionFind;
  if (!ParseUnite(tokens[0], &d.unite)) return std::nullopt;
  if (!ParseFind(tokens[1], &d.find)) return std::nullopt;
  size_t next = 2;
  if (next < tokens.size() && ParseSplice(tokens[next], &d.splice)) ++next;
  if (next < tokens.size() && ParsePlacement(tokens[next], &d.placement)) {
    ++next;
  }
  if (next != tokens.size()) return std::nullopt;  // unrecognized trailing token
  if (!d.IsValid()) return std::nullopt;
  return d;
}

bool operator==(const VariantDescriptor& a, const VariantDescriptor& b) {
  if (a.family != b.family) return false;
  switch (a.family) {
    case AlgorithmFamily::kUnionFind:
      return a.unite == b.unite && a.find == b.find && a.splice == b.splice &&
             a.placement == b.placement;
    case AlgorithmFamily::kLiuTarjan:
      return a.connect == b.connect && a.update == b.update &&
             a.shortcut == b.shortcut && a.alter == b.alter;
    case AlgorithmFamily::kShiloachVishkin:
    case AlgorithmFamily::kStergiou:
    case AlgorithmFamily::kLabelPropagation:
      return true;
  }
  return false;
}

}  // namespace connectit
