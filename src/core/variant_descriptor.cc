#include "src/core/variant_descriptor.h"

namespace connectit {

namespace {

// Token -> enum, by round-tripping through the canonical ToString tables so
// the parse layer can never drift from the format layer.
template <typename Enum>
bool ParseToken(std::string_view token, std::initializer_list<Enum> values,
                Enum* out) {
  for (const Enum value : values) {
    if (token == ToString(value)) {
      *out = value;
      return true;
    }
  }
  return false;
}

bool ParseUnite(std::string_view token, UniteOption* out) {
  return ParseToken(token,
                    {UniteOption::kAsync, UniteOption::kHooks,
                     UniteOption::kEarly, UniteOption::kRemCas,
                     UniteOption::kRemLock, UniteOption::kJtb},
                    out);
}

bool ParseFind(std::string_view token, FindOption* out) {
  return ParseToken(token,
                    {FindOption::kNaive, FindOption::kSplit, FindOption::kHalve,
                     FindOption::kCompress, FindOption::kTwoTrySplit},
                    out);
}

bool ParseSplice(std::string_view token, SpliceOption* out) {
  return ParseToken(token,
                    {SpliceOption::kSplitOne, SpliceOption::kHalveOne,
                     SpliceOption::kSplice},
                    out);
}

// Parses a paper Appendix-D code ("PRF", "CUSA", ...): one connect letter,
// one update letter, one shortcut letter, and an optional trailing 'A'.
bool ParseLtCode(std::string_view code, VariantDescriptor* out) {
  if (code.size() != 3 && code.size() != 4) return false;
  switch (code[0]) {
    case 'C': out->connect = LtConnect::kConnect; break;
    case 'P': out->connect = LtConnect::kParentConnect; break;
    case 'E': out->connect = LtConnect::kExtendedConnect; break;
    default: return false;
  }
  switch (code[1]) {
    case 'U': out->update = LtUpdate::kUpdate; break;
    case 'R': out->update = LtUpdate::kRootUp; break;
    default: return false;
  }
  switch (code[2]) {
    case 'S': out->shortcut = LtShortcut::kShortcut; break;
    case 'F': out->shortcut = LtShortcut::kFullShortcut; break;
    default: return false;
  }
  if (code.size() == 4) {
    if (code[3] != 'A') return false;
    out->alter = LtAlter::kAlter;
  } else {
    out->alter = LtAlter::kNoAlter;
  }
  return true;
}

}  // namespace

bool VariantDescriptor::IsValid() const {
  switch (family) {
    case AlgorithmFamily::kUnionFind:
      return IsValidCombination(unite, find, splice);
    case AlgorithmFamily::kLiuTarjan:
      return IsValidLtCombination(connect, update, shortcut, alter);
    case AlgorithmFamily::kShiloachVishkin:
    case AlgorithmFamily::kStergiou:
    case AlgorithmFamily::kLabelPropagation:
      return true;
  }
  return false;
}

std::string VariantDescriptor::ToString() const {
  switch (family) {
    case AlgorithmFamily::kUnionFind: {
      std::string name = std::string(connectit::ToString(unite)) + ";" +
                         std::string(connectit::ToString(find));
      if (splice != SpliceOption::kNone) {
        name += ";";
        name += connectit::ToString(splice);
      }
      return name;
    }
    case AlgorithmFamily::kLiuTarjan:
      return "Liu-Tarjan;" + LtVariantCode(connect, update, shortcut, alter);
    case AlgorithmFamily::kShiloachVishkin:
      return "Shiloach-Vishkin";
    case AlgorithmFamily::kStergiou:
      return "Stergiou";
    case AlgorithmFamily::kLabelPropagation:
      return "Label-Propagation";
  }
  return "?";
}

std::optional<VariantDescriptor> VariantDescriptor::Parse(
    std::string_view name) {
  if (name == "Shiloach-Vishkin") return ShiloachVishkin();
  if (name == "Stergiou") return Stergiou();
  if (name == "Label-Propagation") return LabelPropagation();

  constexpr std::string_view kLtPrefix = "Liu-Tarjan;";
  if (name.substr(0, kLtPrefix.size()) == kLtPrefix) {
    VariantDescriptor d;
    d.family = AlgorithmFamily::kLiuTarjan;
    if (!ParseLtCode(name.substr(kLtPrefix.size()), &d)) return std::nullopt;
    if (!d.IsValid()) return std::nullopt;
    return d;
  }

  // Union-find: "unite;find[;splice]".
  const size_t first = name.find(';');
  if (first == std::string_view::npos) return std::nullopt;
  const size_t second = name.find(';', first + 1);
  VariantDescriptor d;
  d.family = AlgorithmFamily::kUnionFind;
  if (!ParseUnite(name.substr(0, first), &d.unite)) return std::nullopt;
  const std::string_view find_token =
      (second == std::string_view::npos)
          ? name.substr(first + 1)
          : name.substr(first + 1, second - first - 1);
  if (!ParseFind(find_token, &d.find)) return std::nullopt;
  if (second != std::string_view::npos) {
    if (!ParseSplice(name.substr(second + 1), &d.splice)) return std::nullopt;
  }
  if (!d.IsValid()) return std::nullopt;
  return d;
}

bool operator==(const VariantDescriptor& a, const VariantDescriptor& b) {
  if (a.family != b.family) return false;
  switch (a.family) {
    case AlgorithmFamily::kUnionFind:
      return a.unite == b.unite && a.find == b.find && a.splice == b.splice;
    case AlgorithmFamily::kLiuTarjan:
      return a.connect == b.connect && a.update == b.update &&
             a.shortcut == b.shortcut && a.alter == b.alter;
    case AlgorithmFamily::kShiloachVishkin:
    case AlgorithmFamily::kStergiou:
    case AlgorithmFamily::kLabelPropagation:
      return true;
  }
  return false;
}

}  // namespace connectit
