// Post-processing utilities over connectivity labelings: the operations
// downstream users (clustering pipelines, graph cleaning, §1's motivating
// applications) run right after connectivity.

#ifndef CONNECTIT_CORE_COMPONENTS_H_
#define CONNECTIT_CORE_COMPONENTS_H_

#include <vector>

#include "src/graph/builder.h"
#include "src/graph/csr.h"
#include "src/graph/types.h"
#include "src/parallel/atomics.h"
#include "src/parallel/primitives.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

// Number of distinct components in a labeling whose labels are vertex ids
// with labels[root] == root (the form every ConnectIt algorithm emits).
inline NodeId CountComponents(const std::vector<NodeId>& labels) {
  return static_cast<NodeId>(ParallelCount(
      0, labels.size(),
      [&](size_t v) { return labels[v] == static_cast<NodeId>(v); }));
}

// Size of each component, indexed by its label (0 for non-labels).
inline std::vector<NodeId> ComponentSizes(const std::vector<NodeId>& labels) {
  std::vector<NodeId> sizes(labels.size(), 0);
  ParallelFor(0, labels.size(),
              [&](size_t v) { FetchAdd<NodeId>(&sizes[labels[v]], 1); });
  return sizes;
}

// Renumbers component labels densely into [0, num_components), preserving
// label order. Returns the dense label per vertex.
inline std::vector<NodeId> DenseComponentIds(
    const std::vector<NodeId>& labels) {
  const size_t n = labels.size();
  // roots[i] = 1 iff i is a component label.
  std::vector<NodeId> rank(n + 1, 0);
  ParallelFor(0, n, [&](size_t v) {
    if (labels[v] == static_cast<NodeId>(v)) rank[v] = 1;
  });
  ScanExclusive(rank.data(), n + 1);
  std::vector<NodeId> dense(n);
  ParallelFor(0, n, [&](size_t v) { dense[v] = rank[labels[v]]; });
  return dense;
}

// Extracts the subgraph induced by the component with label
// `component_label`. vertex_map returns the original id of each subgraph
// vertex.
struct InducedComponent {
  Graph graph;
  std::vector<NodeId> vertex_map;  // subgraph id -> original id
};

inline InducedComponent ExtractComponent(const Graph& graph,
                                         const std::vector<NodeId>& labels,
                                         NodeId component_label) {
  const NodeId n = graph.num_nodes();
  InducedComponent out;
  out.vertex_map = ParallelPack<NodeId>(
      n, [&](size_t v) { return labels[v] == component_label; },
      [](size_t v) { return static_cast<NodeId>(v); });
  std::vector<NodeId> new_id(n, kInvalidNode);
  ParallelFor(0, out.vertex_map.size(), [&](size_t i) {
    new_id[out.vertex_map[i]] = static_cast<NodeId>(i);
  });
  EdgeList edges;
  edges.num_nodes = static_cast<NodeId>(out.vertex_map.size());
  for (const NodeId u : out.vertex_map) {
    for (const NodeId v : graph.neighbors(u)) {
      if (v > u) continue;  // each undirected edge once (v <= u side)
      if (labels[v] != component_label) continue;
      edges.edges.push_back({new_id[u], new_id[v]});
    }
  }
  out.graph = BuildGraph(edges);
  return out;
}

// Histogram of component sizes: (size, count) pairs sorted by size.
inline std::vector<std::pair<NodeId, NodeId>> ComponentSizeHistogram(
    const std::vector<NodeId>& labels) {
  std::vector<NodeId> sizes = ComponentSizes(labels);
  std::vector<NodeId> nonzero = ParallelPack<NodeId>(
      sizes.size(), [&](size_t v) { return sizes[v] > 0; },
      [&](size_t v) { return sizes[v]; });
  ParallelSort(nonzero);
  std::vector<std::pair<NodeId, NodeId>> histogram;
  for (size_t i = 0; i < nonzero.size();) {
    size_t j = i;
    while (j < nonzero.size() && nonzero[j] == nonzero[i]) ++j;
    histogram.emplace_back(nonzero[i], static_cast<NodeId>(j - i));
    i = j;
  }
  return histogram;
}

}  // namespace connectit

#endif  // CONNECTIT_CORE_COMPONENTS_H_
