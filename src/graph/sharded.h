// Sharded CSR (paper §2 "Data Format", partitioned for locality).
//
// A ShardedGraph is a plain CSR cut into P vertex-contiguous shards, each
// owning its own offset and neighbor arrays. The motivation is the same
// locality instinct that drives NUMA-partitioned graph systems: a shard's
// adjacency data lives in one allocation, so a worker traversing shard s
// touches one contiguous region instead of striding through a single
// m-sized array, and shard-major scheduling (MapArcs/MapArcsIf parallelize
// over shards, one shard per task) keeps a worker on one region for the
// whole pass. On a NUMA machine each shard's allocation can be bound to the
// socket that processes it; on a single socket the win is cache- and
// TLB-level.
//
// ShardedGraph serves the full adjacency surface (num_nodes / num_arcs /
// degree / MapNeighbors / MapNeighborsWhile / MapArcs / MapArcsIf /
// NeighborAt — the concept defined in csr.h and documented in
// ARCHITECTURE.md), so every sampling scheme (§3.2) and every finish method
// (§3.3, §B.2) of the framework runs on it natively, with no flat-CSR
// materialization. The handle-level lazy Flatten fallback
// (GraphHandle::MaterializedCsr + ShardedCsrMaterializations) exists only
// for consumers outside the framework that genuinely need one flat CSR.
//
// Shards are vertex-contiguous with equal vertex ranges: shard s owns
// [s * chunk, min((s+1) * chunk, n)) with chunk = ceil(n / P). That makes
// vertex -> shard lookup a single division (degree and NeighborAt stay
// O(1), which the k-out sampler's inner loop needs), at the cost of edge
// imbalance on skewed graphs — see "Choosing a representation" in
// ARCHITECTURE.md for the trade-off discussion. P defaults to the thread
// pool's worker count and is overridable per partition call.

#ifndef CONNECTIT_GRAPH_SHARDED_H_
#define CONNECTIT_GRAPH_SHARDED_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/graph/coo.h"
#include "src/graph/csr.h"
#include "src/graph/types.h"
#include "src/parallel/numa.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

class ShardedGraph {
 public:
  // One vertex-contiguous partition: local CSR arrays for the vertices
  // [first, first + count()).
  struct Shard {
    NodeId first = 0;
    std::vector<EdgeId> offsets;    // size count() + 1; offsets[0] == 0
    std::vector<NodeId> neighbors;  // size offsets.back()

    NodeId count() const {
      return offsets.empty() ? 0 : static_cast<NodeId>(offsets.size() - 1);
    }
    EdgeId arcs() const { return offsets.empty() ? 0 : offsets.back(); }
  };

  ShardedGraph() = default;

  // Cuts `graph` into `num_shards` vertex-contiguous shards. num_shards ==
  // 0 selects the thread pool's worker count. Shards beyond the vertex
  // count are retained but empty (their vertex range is [n, n)), so the
  // requested shard count is always honored — P=1, P=n, and P>n are all
  // valid partitions of the same graph.
  static ShardedGraph Partition(const Graph& graph, size_t num_shards = 0);

  // Builds the CSR shard for the vertex range [first, first + count)
  // directly from an edge list, without ever materializing the full graph:
  // symmetrized arcs whose source falls in the range are collected, sorted,
  // and deduplicated with exactly BuildGraph's default semantics
  // (builder.cc: symmetrize, drop self loops, drop duplicates), so feeding
  // the shards of a tiling of [0, n) to a ContainerWriter produces a
  // container byte-identical to writing Partition(BuildGraph(edges), P).
  // Peak memory is the edge list plus this one shard — the out-of-core
  // convert path in graph_tool builds billion-edge containers this way.
  static Shard BuildShard(const EdgeList& edges, NodeId first, NodeId count);

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_arcs() const { return num_arcs_; }
  EdgeId num_edges() const { return num_arcs_ / 2; }
  size_t num_shards() const { return shards_.size(); }
  // Vertices per shard (the fixed chunk width; the last non-empty shard may
  // own fewer).
  NodeId shard_width() const { return chunk_; }

  const Shard& shard(size_t s) const { return shards_[s]; }

  // Shard owning vertex v. O(1): shards are equal-width vertex ranges.
  size_t ShardOf(NodeId v) const { return v / chunk_; }

  // NUMA node shard s is placed on: round-robin s % k over the topology
  // captured at Partition time. Shard s's arrays are first-touch allocated
  // from a thread bound to this node, and the shard-major sweeps below
  // schedule shard s preferentially on that node's workers
  // (ParallelForNodeAffine uses the same s % k mapping).
  size_t NodeOfShard(size_t s) const {
    return placement_nodes_ <= 1 ? 0 : s % placement_nodes_;
  }
  // Topology node count the shards were placed against (1 = no placement).
  size_t placement_nodes() const { return placement_nodes_; }

  EdgeId degree(NodeId v) const {
    const Shard& s = shards_[ShardOf(v)];
    const NodeId local = v - s.first;
    return s.offsets[local + 1] - s.offsets[local];
  }

  std::span<const NodeId> neighbors(NodeId v) const {
    const Shard& s = shards_[ShardOf(v)];
    const NodeId local = v - s.first;
    return {s.neighbors.data() + s.offsets[local],
            static_cast<size_t>(s.offsets[local + 1] - s.offsets[local])};
  }

  // Invokes fn(v) for each neighbor of u in order (sequential).
  template <typename F>
  void MapNeighbors(NodeId u, F&& fn) const {
    for (NodeId v : neighbors(u)) fn(v);
  }

  // As MapNeighbors, but stops early when fn returns false.
  template <typename F>
  void MapNeighborsWhile(NodeId u, F&& fn) const {
    for (NodeId v : neighbors(u)) {
      if (!fn(v)) return;
    }
  }

  // Random access to the i-th neighbor of u (i < degree(u)).
  NodeId NeighborAt(NodeId u, EdgeId i) const {
    const Shard& s = shards_[ShardOf(u)];
    const NodeId local = u - s.first;
    return s.neighbors[s.offsets[local] + i];
  }

  // Invokes fn(u, v) for every directed arc (u, v). Shard-parallel: the
  // outer loop schedules whole shards (grain 1), so each task walks one
  // shard's contiguous offset/neighbor arrays end to end — the shard-major
  // locality this representation exists for. fn must be thread-safe.
  template <typename F>
  void MapArcs(F&& fn) const;

  // As MapArcs but only for sources where pred(u) is true; a skipped
  // vertex's adjacency range is never read.
  template <typename F, typename Pred>
  void MapArcsIf(Pred&& pred, F&& fn) const;

  // Reassembles the single-allocation CSR (the inverse of Partition).
  // GraphHandle::MaterializedCsr uses this for the lazy flat-CSR fallback;
  // each call does O(n + m) work, so callers should cache the result.
  Graph Flatten() const;

 private:
  NodeId num_nodes_ = 0;
  EdgeId num_arcs_ = 0;
  NodeId chunk_ = 1;  // vertices per shard; >= 1 so ShardOf never divides by 0
  size_t placement_nodes_ = 1;  // NumaTopology::num_nodes() at Partition time
  std::vector<Shard> shards_;
};

// ---- template definitions ----

template <typename F>
void ShardedGraph::MapArcs(F&& fn) const {
  MapArcsIf([](NodeId) { return true; }, fn);
}

template <typename F, typename Pred>
void ShardedGraph::MapArcsIf(Pred&& pred, F&& fn) const {
  // Node-affine shard-major sweep: shard s runs preferentially on a worker
  // of node NodeOfShard(s) (idle workers steal), which degenerates to a
  // plain grain-1 ParallelFor on single-node topologies.
  ParallelForNodeAffine(shards_.size(), [&](size_t si) {
    const Shard& s = shards_[si];
    const NodeId count = s.count();
    for (NodeId local = 0; local < count; ++local) {
      const NodeId u = s.first + local;
      if (!pred(u)) continue;
      const EdgeId lo = s.offsets[local];
      const EdgeId hi = s.offsets[local + 1];
      for (EdgeId e = lo; e < hi; ++e) fn(u, s.neighbors[e]);
    }
  });
}

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_SHARDED_H_
