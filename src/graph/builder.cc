#include "src/graph/builder.h"

#include <algorithm>
#include <cassert>

#include "src/parallel/atomics.h"
#include "src/parallel/primitives.h"
#include "src/parallel/random.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

namespace {

// Sorts arcs by (source, target) and removes duplicates / self loops
// according to options, then builds offsets by counting.
Graph BuildFromArcs(NodeId n, std::vector<Edge> arcs,
                    const BuildOptions& options) {
  ParallelSort(arcs, [](const Edge& a, const Edge& b) {
    return a.u < b.u || (a.u == b.u && a.v < b.v);
  });
  // Filter self loops / duplicates (stable pack over sorted arcs).
  std::vector<Edge> kept = ParallelPack<Edge>(
      arcs.size(),
      [&](size_t i) {
        const Edge& e = arcs[i];
        if (options.remove_self_loops && e.u == e.v) return false;
        if (options.remove_duplicates && i > 0 && arcs[i - 1] == e)
          return false;
        return true;
      },
      [&](size_t i) { return arcs[i]; });
  arcs.clear();
  arcs.shrink_to_fit();

  // kept is sorted by source, so each vertex's arcs are already contiguous;
  // offsets[v + 1] accumulates v's degree, then an inclusive sum over
  // offsets[1..n] yields CSR row boundaries.
  std::vector<EdgeId> offsets(static_cast<size_t>(n) + 1, 0);
  ParallelFor(0, kept.size(), [&](size_t i) {
    FetchAdd<EdgeId>(&offsets[kept[i].u + 1], 1);
  });
  for (size_t v = 1; v <= n; ++v) offsets[v] += offsets[v - 1];
  std::vector<NodeId> neighbors(kept.size());
  ParallelFor(0, kept.size(), [&](size_t i) { neighbors[i] = kept[i].v; });
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace

Graph BuildGraph(const EdgeList& edges, const BuildOptions& options) {
  const NodeId n = edges.num_nodes;
  std::vector<Edge> arcs;
  arcs.reserve(edges.size() * (options.symmetrize ? 2 : 1));
  for (const Edge& e : edges.edges) {
    assert(e.u < n && e.v < n);
    arcs.push_back(e);
    if (options.symmetrize) arcs.push_back({e.v, e.u});
  }
  return BuildFromArcs(n, std::move(arcs), options);
}

Graph BuildGraph(NodeId num_nodes, std::vector<Edge> edges,
                 const BuildOptions& options) {
  EdgeList list;
  list.num_nodes = num_nodes;
  list.edges = std::move(edges);
  return BuildGraph(list, options);
}

EdgeList ExtractEdges(const Graph& graph) {
  EdgeList out;
  out.num_nodes = graph.num_nodes();
  const NodeId n = graph.num_nodes();
  // Count per-vertex forward arcs (v > u), prefix sum, then fill.
  std::vector<EdgeId> counts(static_cast<size_t>(n) + 1, 0);
  ParallelFor(0, n, [&](size_t ui) {
    const NodeId u = static_cast<NodeId>(ui);
    EdgeId c = 0;
    for (NodeId v : graph.neighbors(u)) c += (v > u) ? 1 : 0;
    counts[ui] = c;
  });
  const EdgeId total = ScanExclusive(counts.data(), n);
  out.edges.resize(total);
  ParallelFor(0, n, [&](size_t ui) {
    const NodeId u = static_cast<NodeId>(ui);
    EdgeId pos = counts[ui];
    for (NodeId v : graph.neighbors(u)) {
      if (v > u) out.edges[pos++] = {u, v};
    }
  });
  return out;
}

Graph RelabelGraph(const Graph& graph, const std::vector<NodeId>& perm) {
  const NodeId n = graph.num_nodes();
  assert(perm.size() == n);
  EdgeList edges = ExtractEdges(graph);
  ParallelFor(0, edges.size(), [&](size_t i) {
    Edge& e = edges.edges[i];
    e = {perm[e.u], perm[e.v]};
  });
  return BuildGraph(edges);
}

std::vector<NodeId> RandomPermutation(NodeId n, uint64_t seed) {
  std::vector<NodeId> perm(n);
  for (NodeId i = 0; i < n; ++i) perm[i] = i;
  Rng rng(seed);
  // Fisher-Yates (sequential; permutation generation is not on hot paths).
  for (NodeId i = n; i > 1; --i) {
    const NodeId j = static_cast<NodeId>(rng.GetBounded(i, i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace connectit
