// Versioned on-disk graph container (".cgc") with zero-copy mmap loading.
//
// The container is the storage half of the storage/compute split the ROADMAP
// asks for (in the spirit of Katana's libtsuba RDG layout): a fixed
// little-endian header (magic, format version, flags, n, m) plus a checksummed
// section table, followed by 64-byte-aligned sections holding the CSR arrays
// verbatim — so a mapping of the file *is* the graph, and MappedGraph serves
// the full adjacency surface (csr.h / ARCHITECTURE.md) straight off the page
// cache with no materialization. Optional sections record a shard partition
// table (vertex boundaries of a ShardedGraph cut) and byte-compressed chunks
// (a serialized CompressedGraph), so one file can carry every representation
// the registry dispatches over.
//
// Layout (all integers little-endian; the build refuses to compile
// big-endian, see container.cc):
//
//   [0,   64)   ContainerHeader (self-validating: header_checksum covers the
//               first 56 bytes, table_checksum covers the section table)
//   [64,  64 + 32 * section_count)   ContainerSection entries
//   ...padding to kContainerAlignment...
//   sections, each starting at a kContainerAlignment-aligned offset:
//     kOffsets    (required)  (n + 1) x uint64 CSR row offsets
//     kNeighbors  (required)  num_arcs x uint32 neighbor ids
//     kShardTable (optional)  (P + 1) x uint64 shard vertex boundaries
//     kCompressedChunks (optional)  serialized CompressedGraph
//
// Section `length` is the exact payload size; alignment padding lives between
// sections and is not checksummed. Checksums are blocked FNV-1a: the payload
// is split into kChecksumBlockBytes blocks, blocks are hashed independently
// (in parallel at verification time, incrementally at streaming-write time),
// and the block hashes are folded sequentially together with the total
// length. The same value is therefore reachable from a one-shot parallel
// pass (ContainerChecksum) and from arbitrary append chunks
// (ChecksumAccumulator), independent of thread count.
//
// Writers: WriteContainer serializes an in-memory Graph (or a ShardedGraph,
// which adds the shard table) in one parallel pass. ContainerWriter is the
// out-of-core path: Open reserves the header, AppendShard streams one
// vertex-contiguous shard's neighbors to disk at a time (only the offsets —
// 8 bytes per vertex — stay in memory), Finish writes the deferred sections
// and seeks back to stamp the header. graph_tool's converter uses it to
// build containers for graphs whose CSR never fits in RAM at once.
//
// Readers: MappedGraph::Map validates everything before exposing a single
// byte — magic, version, flags, id widths, section bounds and alignment,
// offset-array monotonicity, neighbor range, and (by default) every section
// checksum — and fails with a diagnostic string instead of crashing or
// returning a partial graph. tests/container_corruption_test.cc pins that
// contract by flipping and truncating every header field and section.

#ifndef CONNECTIT_GRAPH_CONTAINER_H_
#define CONNECTIT_GRAPH_CONTAINER_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "src/graph/compressed.h"
#include "src/graph/csr.h"
#include "src/graph/sharded.h"
#include "src/graph/types.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

// ---- Format constants ----

// "ConnCGC1" read as a little-endian uint64 — distinct from the legacy
// "CONNECT1" flat dump magic (io.cc), so each loader rejects the other's
// files with a precise message instead of misparsing.
inline constexpr uint64_t kContainerMagic = 0x31434743'6e6e6f43ULL;
inline constexpr uint32_t kContainerVersion = 1;
// No optional format features are defined yet; any set flag bit means a
// newer writer, and the loader must refuse rather than guess.
inline constexpr uint32_t kContainerKnownFlags = 0;
// Every section starts at a multiple of this, so mapped uint64 loads are
// always naturally aligned (mmap bases are page-aligned).
inline constexpr size_t kContainerAlignment = 64;
// Checksum block granularity; also the unit of incremental hashing in
// ChecksumAccumulator.
inline constexpr size_t kChecksumBlockBytes = size_t{4} << 20;
// Fixed section-table capacity: the data region always begins at
// 64 + kContainerMaxSections * 32 = 320 bytes (already 64-aligned), so flat
// and streaming writers produce byte-identical files for the same sections.
inline constexpr uint32_t kContainerMaxSections = 8;

enum class SectionKind : uint32_t {
  kOffsets = 1,
  kNeighbors = 2,
  kShardTable = 3,
  kCompressedChunks = 4,
};

#pragma pack(push, 1)
struct ContainerHeader {
  uint64_t magic = kContainerMagic;
  uint32_t version = kContainerVersion;
  uint32_t flags = 0;
  uint64_t num_nodes = 0;
  uint64_t num_arcs = 0;
  uint32_t section_count = 0;
  uint8_t node_id_bytes = sizeof(NodeId);
  uint8_t edge_id_bytes = sizeof(EdgeId);
  uint16_t reserved16 = 0;
  uint64_t reserved64 = 0;
  uint64_t table_checksum = 0;   // over the section_count * 32 table bytes
  uint64_t header_checksum = 0;  // over the 56 bytes preceding this field
};

struct ContainerSection {
  uint32_t kind = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;    // absolute file offset, kContainerAlignment-aligned
  uint64_t length = 0;    // exact payload bytes (padding excluded)
  uint64_t checksum = 0;  // ContainerChecksum of the payload
};
#pragma pack(pop)

static_assert(sizeof(ContainerHeader) == 64, "header must stay 64 bytes");
static_assert(sizeof(ContainerSection) == 32, "section entry must stay 32B");

// Blocked parallel FNV-1a over `len` bytes (see file comment for the block
// structure). Deterministic across thread counts.
uint64_t ContainerChecksum(const void* data, size_t len);

// Incremental form of ContainerChecksum for streaming writers: feed bytes in
// arbitrary chunks; Finish() equals ContainerChecksum over the concatenation.
class ChecksumAccumulator {
 public:
  void Append(const void* data, size_t len);
  uint64_t Finish() const;
  uint64_t bytes() const { return total_; }

 private:
  std::vector<uint64_t> block_hashes_;
  uint64_t partial_ = 0;  // FNV state of the current partial block
  size_t partial_len_ = 0;
  uint64_t total_ = 0;
};

struct ContainerWriteOptions {
  // Also encode the graph (CompressedGraph::Encode) and embed the result as
  // a kCompressedChunks section.
  bool with_compressed = false;
};

// Serializes `graph` to `path` in one parallel pass (sections: offsets,
// neighbors[, compressed chunks]). Returns false with a diagnostic in
// *error on I/O failure.
bool WriteContainer(const std::string& path, const Graph& graph,
                    std::string* error = nullptr,
                    const ContainerWriteOptions& options = {});

// As above for an already-partitioned graph; additionally records the shard
// vertex boundaries as a kShardTable section. Streams shard-at-a-time via
// ContainerWriter, so the flat neighbor array is never re-assembled.
bool WriteContainer(const std::string& path, const ShardedGraph& graph,
                    std::string* error = nullptr);

// Out-of-core container writer: shards arrive one at a time in vertex order
// and their neighbor arrays go straight to disk; only the accumulated offset
// array (8 bytes per vertex) is held in memory until Finish. The shard
// boundaries are recorded as a kShardTable section.
class ContainerWriter {
 public:
  ContainerWriter() = default;
  // Abandoning a writer without Finish leaves a truncated file behind; the
  // destructor only closes the stream.
  ~ContainerWriter() = default;
  ContainerWriter(const ContainerWriter&) = delete;
  ContainerWriter& operator=(const ContainerWriter&) = delete;

  // Creates `path` and reserves the header + section-table region. The total
  // vertex count must be known up front (it sizes the offset array).
  bool Open(const std::string& path, NodeId num_nodes,
            std::string* error = nullptr);

  // Appends one vertex-contiguous shard (ShardedGraph::Shard layout: local
  // offsets with offsets[0] == 0). Shards must tile [0, num_nodes) in order:
  // the first shard starts at vertex 0 and each subsequent shard starts
  // where the previous one ended. Empty shards are valid.
  bool AppendShard(const ShardedGraph::Shard& shard,
                   std::string* error = nullptr);

  // Writes the deferred offsets + shard-table sections, then seeks back and
  // stamps the header. The file is not a valid container until this returns
  // true.
  bool Finish(std::string* error = nullptr);

  NodeId next_vertex() const { return next_vertex_; }

 private:
  std::ofstream out_;
  std::string path_;
  uint64_t num_nodes_ = 0;
  uint64_t cursor_ = 0;               // current absolute write offset
  std::vector<EdgeId> offsets_;       // global CSR offsets, grown per shard
  std::vector<uint64_t> shard_bounds_;  // first vertex of each shard + n
  ChecksumAccumulator neighbors_sum_;
  std::vector<ContainerSection> sections_;
  NodeId next_vertex_ = 0;
  bool open_ = false;
  bool finished_ = false;
};

struct ContainerMapOptions {
  // Verify every section checksum (one parallel pass over the file) before
  // exposing the data. Turning this off skips the O(file) pass but still
  // validates the header, table, bounds, and offset-array shape.
  bool verify_checksums = true;
};

// Read-only zero-copy view of a mapped container. Serves the full adjacency
// surface (the same member set as Graph in csr.h), so every variant ×
// sampling × streaming seed in the registry runs directly on the mapping —
// GraphHandle::Map wraps one of these as the fifth representation.
// Move-only: the destructor unmaps.
class MappedGraph {
 public:
  MappedGraph() = default;
  ~MappedGraph();
  MappedGraph(MappedGraph&& other) noexcept;
  MappedGraph& operator=(MappedGraph&& other) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;

  // Maps and validates `path`. On any failure — unreadable file, bad magic,
  // unsupported version, unknown flags, out-of-range or misaligned section,
  // checksum mismatch, malformed offsets — returns false, stores a
  // diagnostic in *error, and leaves *out empty. Never returns a partially
  // valid graph.
  static bool Map(const std::string& path, MappedGraph* out,
                  std::string* error = nullptr,
                  const ContainerMapOptions& options = {});

  // ---- adjacency surface (mirrors Graph) ----

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_arcs() const { return num_arcs_; }
  EdgeId num_edges() const { return num_arcs_ / 2; }

  EdgeId degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {neighbors_ + offsets_[v], static_cast<size_t>(degree(v))};
  }

  std::span<const EdgeId> offsets() const {
    return {offsets_, offsets_ == nullptr
                          ? 0
                          : static_cast<size_t>(num_nodes_) + 1};
  }
  std::span<const NodeId> neighbor_array() const {
    return {neighbors_, static_cast<size_t>(num_arcs_)};
  }

  template <typename F>
  void MapArcs(F&& fn) const;

  template <typename F, typename Pred>
  void MapArcsIf(Pred&& pred, F&& fn) const;

  template <typename F>
  void MapNeighbors(NodeId u, F&& fn) const {
    for (NodeId v : neighbors(u)) fn(v);
  }

  template <typename F>
  void MapNeighborsWhile(NodeId u, F&& fn) const {
    for (NodeId v : neighbors(u)) {
      if (!fn(v)) return;
    }
  }

  NodeId NeighborAt(NodeId u, EdgeId i) const {
    return neighbors_[offsets_[u] + i];
  }

  // ---- container extras ----

  const std::string& path() const { return path_; }
  size_t file_bytes() const { return map_len_; }
  bool mapped() const { return base_ != nullptr; }

  // Shard partition table, when the writer recorded one: P + 1 vertex
  // boundaries (boundary[s] = first vertex of shard s, boundary[P] = n).
  bool has_shard_table() const { return shard_bounds_ != nullptr; }
  std::span<const uint64_t> shard_boundaries() const {
    return {shard_bounds_, shard_bounds_len_};
  }

  // Embedded byte-compressed chunks, when written with with_compressed.
  bool has_compressed_chunks() const { return compressed_ != nullptr; }
  bool DecodeCompressedChunks(CompressedGraph* out,
                              std::string* error = nullptr) const;

  // Copies the mapped arrays into an owning in-memory Graph (the one O(m)
  // escape hatch; counted by MappedCsrMaterializations when reached through
  // GraphHandle::MaterializedCsr).
  Graph ToGraph() const;

 private:
  void Unmap();

  std::string path_;
  void* base_ = nullptr;
  size_t map_len_ = 0;
  NodeId num_nodes_ = 0;
  EdgeId num_arcs_ = 0;
  const EdgeId* offsets_ = nullptr;    // n + 1 entries inside the mapping
  const NodeId* neighbors_ = nullptr;  // num_arcs_ entries inside the mapping
  const uint64_t* shard_bounds_ = nullptr;
  size_t shard_bounds_len_ = 0;
  const uint8_t* compressed_ = nullptr;
  size_t compressed_len_ = 0;
};

// ---- template definitions ----

template <typename F>
void MappedGraph::MapArcs(F&& fn) const {
  MapArcsIf([](NodeId) { return true; }, fn);
}

template <typename F, typename Pred>
void MappedGraph::MapArcsIf(Pred&& pred, F&& fn) const {
  const NodeId n = num_nodes_;
  // Same schedule as Graph::MapArcsIf: vertex-parallel with a modest grain,
  // reading straight from the mapping.
  ParallelFor(
      0, n,
      [&](size_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        if (!pred(u)) return;
        const EdgeId lo = offsets_[u];
        const EdgeId hi = offsets_[u + 1];
        for (EdgeId e = lo; e < hi; ++e) fn(u, neighbors_[e]);
      },
      /*grain=*/64);
}

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_CONTAINER_H_
