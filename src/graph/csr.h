// Immutable compressed-sparse-row graph (paper §2 "Data Format: CSR").
//
// The graph is undirected and stored symmetrically: every undirected edge
// {u, v} appears both in u's and v's neighbor list. All connectivity
// algorithms in this library iterate over these directed arcs.

#ifndef CONNECTIT_GRAPH_CSR_H_
#define CONNECTIT_GRAPH_CSR_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/graph/types.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

class Graph {
 public:
  Graph() = default;

  // Takes ownership of prebuilt CSR arrays. offsets.size() == n + 1,
  // offsets[n] == neighbors.size(). Use BuildGraph (builder.h) to construct
  // from an edge list.
  Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors);

  NodeId num_nodes() const {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  // Number of directed arcs (2x the number of undirected edges).
  EdgeId num_arcs() const { return neighbors_.size(); }
  // Number of undirected edges.
  EdgeId num_edges() const { return neighbors_.size() / 2; }

  EdgeId degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  std::span<const NodeId> neighbors(NodeId v) const {
    return {neighbors_.data() + offsets_[v],
            static_cast<size_t>(degree(v))};
  }

  const std::vector<EdgeId>& offsets() const { return offsets_; }
  const std::vector<NodeId>& neighbor_array() const { return neighbors_; }

  // Invokes fn(u, v) for every directed arc (u, v), in parallel over source
  // vertices. fn must be thread-safe.
  template <typename F>
  void MapArcs(F&& fn) const;

  // As MapArcs but only for sources where pred(u) is true.
  template <typename F, typename Pred>
  void MapArcsIf(Pred&& pred, F&& fn) const;

  // Invokes fn(v) for each neighbor of u in order (sequential).
  template <typename F>
  void MapNeighbors(NodeId u, F&& fn) const {
    for (NodeId v : neighbors(u)) fn(v);
  }

  // As MapNeighbors, but stops early when fn returns false.
  template <typename F>
  void MapNeighborsWhile(NodeId u, F&& fn) const {
    for (NodeId v : neighbors(u)) {
      if (!fn(v)) return;
    }
  }

  // Random access to the i-th neighbor of u (i < degree(u)).
  NodeId NeighborAt(NodeId u, EdgeId i) const {
    return neighbors_[offsets_[u] + i];
  }

 private:
  std::vector<EdgeId> offsets_;   // size n + 1
  std::vector<NodeId> neighbors_; // size num_arcs
};

// Per-vertex degree statistics used by benches and tests.
struct DegreeStats {
  EdgeId max_degree = 0;
  double avg_degree = 0.0;
};

DegreeStats ComputeDegreeStats(const Graph& graph);

// ---- template definitions ----

template <typename F>
void Graph::MapArcs(F&& fn) const {
  MapArcsIf([](NodeId) { return true; }, fn);
}

template <typename F, typename Pred>
void Graph::MapArcsIf(Pred&& pred, F&& fn) const {
  const NodeId n = num_nodes();
  // Parallelize over vertices; heavy-degree skew is handled by the dynamic
  // chunking in ParallelFor with a modest grain.
  ParallelFor(
      0, n,
      [&](size_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        if (!pred(u)) return;
        const EdgeId lo = offsets_[u];
        const EdgeId hi = offsets_[u + 1];
        for (EdgeId e = lo; e < hi; ++e) fn(u, neighbors_[e]);
      },
      /*grain=*/64);
}

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_CSR_H_
