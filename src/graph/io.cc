#include "src/graph/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "src/graph/container.h"

namespace connectit {

namespace {

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// Reads exactly `len` bytes, reporting the absolute file offset of a short
// read (`what` names the field or array being read).
bool ReadExact(std::ifstream& in, void* dst, size_t len,
               const std::string& path, const char* what,
               std::string* error) {
  const auto at = in.tellg();
  in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(len));
  if (in.gcount() != static_cast<std::streamsize>(len)) {
    return Fail(error,
                path + ": short read of " + what + " at offset " +
                    std::to_string(static_cast<int64_t>(at)) + " (wanted " +
                    std::to_string(len) + " bytes, got " +
                    std::to_string(static_cast<int64_t>(in.gcount())) +
                    ") — truncated file?");
  }
  return true;
}

// Legacy v0 flat dump: magic + n + arcs + raw arrays, no checksums. Kept so
// snapshots written before the container existed stay loadable; the error
// strings name the exact field that fell short.
bool ReadLegacyGraphBinary(std::ifstream& in, const std::string& path,
                           Graph* out, std::string* error) {
  uint64_t n = 0;
  uint64_t arcs = 0;
  if (!ReadExact(in, &n, sizeof(n), path, "legacy node count", error))
    return false;
  if (!ReadExact(in, &arcs, sizeof(arcs), path, "legacy arc count", error))
    return false;
  std::vector<EdgeId> offsets(n + 1);
  std::vector<NodeId> neighbors(arcs);
  if (!ReadExact(in, offsets.data(), (n + 1) * sizeof(EdgeId), path,
                 "legacy offsets array", error)) {
    return false;
  }
  if (!ReadExact(in, neighbors.data(), arcs * sizeof(NodeId), path,
                 "legacy neighbors array", error)) {
    return false;
  }
  if (offsets.front() != 0 || offsets.back() != arcs) {
    return Fail(error, path + ": legacy offsets array is malformed "
                              "(ends at " +
                           std::to_string(offsets.back()) + ", header says " +
                           std::to_string(arcs) + " arcs)");
  }
  *out = Graph(std::move(offsets), std::move(neighbors));
  return true;
}

}  // namespace

EdgeList ParseEdgeListText(const std::string& text, bool compact_ids) {
  EdgeList list;
  std::istringstream in(text);
  std::string line;
  std::unordered_map<uint64_t, NodeId> remap;
  uint64_t max_id = 0;
  bool saw_edge = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a = 0;
    uint64_t b = 0;
    if (!(ls >> a >> b)) continue;
    if (compact_ids) {
      auto [ita, _a] = remap.try_emplace(a, static_cast<NodeId>(remap.size()));
      auto [itb, _b] = remap.try_emplace(b, static_cast<NodeId>(remap.size()));
      list.edges.push_back({ita->second, itb->second});
    } else {
      list.edges.push_back({static_cast<NodeId>(a), static_cast<NodeId>(b)});
      max_id = std::max({max_id, a, b});
    }
    saw_edge = true;
  }
  if (compact_ids) {
    list.num_nodes = static_cast<NodeId>(remap.size());
  } else {
    list.num_nodes = saw_edge ? static_cast<NodeId>(max_id + 1) : 0;
  }
  return list;
}

bool ReadEdgeListFile(const std::string& path, EdgeList* out,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    return Fail(error, path + ": cannot open: " + std::strerror(errno));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Fail(error, path + ": read failed after " +
                           std::to_string(buf.str().size()) + " bytes");
  }
  *out = ParseEdgeListText(buf.str());
  return true;
}

bool WriteEdgeListFile(const std::string& path, const EdgeList& edges,
                       std::string* error) {
  std::ofstream out(path);
  if (!out) {
    return Fail(error, path + ": cannot open for writing");
  }
  out << "# connectit edge list: " << edges.num_nodes << " nodes, "
      << edges.size() << " edges\n";
  for (const Edge& e : edges.edges) out << e.u << ' ' << e.v << '\n';
  if (!out) return Fail(error, path + ": write failed (disk full?)");
  return true;
}

bool WriteGraphBinary(const std::string& path, const Graph& graph,
                      std::string* error) {
  return WriteContainer(path, graph, error);
}

bool ReadGraphBinary(const std::string& path, Graph* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Fail(error, path + ": cannot open: " + std::strerror(errno));
  }
  uint64_t magic = 0;
  if (!ReadExact(in, &magic, sizeof(magic), path, "magic", error))
    return false;
  if (magic == kLegacyBinaryMagic) {
    return ReadLegacyGraphBinary(in, path, out, error);
  }
  in.close();
  // Anything else must be a container; MappedGraph::Map produces the
  // precise diagnostic (bad magic, truncation, checksum mismatch, ...).
  MappedGraph mapped;
  if (!MappedGraph::Map(path, &mapped, error)) return false;
  *out = mapped.ToGraph();
  return true;
}

}  // namespace connectit
