#include "src/graph/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace connectit {

namespace {

constexpr uint64_t kBinaryMagic = 0x434f4e4e45435431ULL;  // "CONNECT1"

}  // namespace

EdgeList ParseEdgeListText(const std::string& text, bool compact_ids) {
  EdgeList list;
  std::istringstream in(text);
  std::string line;
  std::unordered_map<uint64_t, NodeId> remap;
  uint64_t max_id = 0;
  bool saw_edge = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a = 0;
    uint64_t b = 0;
    if (!(ls >> a >> b)) continue;
    if (compact_ids) {
      auto [ita, _a] = remap.try_emplace(a, static_cast<NodeId>(remap.size()));
      auto [itb, _b] = remap.try_emplace(b, static_cast<NodeId>(remap.size()));
      list.edges.push_back({ita->second, itb->second});
    } else {
      list.edges.push_back({static_cast<NodeId>(a), static_cast<NodeId>(b)});
      max_id = std::max({max_id, a, b});
    }
    saw_edge = true;
  }
  if (compact_ids) {
    list.num_nodes = static_cast<NodeId>(remap.size());
  } else {
    list.num_nodes = saw_edge ? static_cast<NodeId>(max_id + 1) : 0;
  }
  return list;
}

bool ReadEdgeListFile(const std::string& path, EdgeList* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = ParseEdgeListText(buf.str());
  return true;
}

bool WriteEdgeListFile(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# connectit edge list: " << edges.num_nodes << " nodes, "
      << edges.size() << " edges\n";
  for (const Edge& e : edges.edges) out << e.u << ' ' << e.v << '\n';
  return static_cast<bool>(out);
}

bool WriteGraphBinary(const std::string& path, const Graph& graph) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const uint64_t magic = kBinaryMagic;
  const uint64_t n = graph.num_nodes();
  const uint64_t arcs = graph.num_arcs();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  out.write(reinterpret_cast<const char*>(graph.offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(graph.neighbor_array().data()),
            static_cast<std::streamsize>(arcs * sizeof(NodeId)));
  return static_cast<bool>(out);
}

bool ReadGraphBinary(const std::string& path, Graph* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  uint64_t magic = 0;
  uint64_t n = 0;
  uint64_t arcs = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kBinaryMagic) return false;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&arcs), sizeof(arcs));
  std::vector<EdgeId> offsets(n + 1);
  std::vector<NodeId> neighbors(arcs);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(EdgeId)));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(arcs * sizeof(NodeId)));
  if (!in) return false;
  *out = Graph(std::move(offsets), std::move(neighbors));
  return true;
}

}  // namespace connectit
