#include "src/graph/container.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <limits>

#include "src/graph/io.h"

namespace connectit {

// The format is defined little-endian and the arrays are written verbatim;
// a big-endian port would need byte-swapping shims in the reader/writer.
static_assert(std::endian::native == std::endian::little,
              "the .cgc container assumes a little-endian host");

namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t Fnv1a(uint64_t h, const uint8_t* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

// Folds the per-block hashes with the total length into the final value.
// Shared by the one-shot and incremental paths so they agree by definition.
uint64_t CombineBlockHashes(const std::vector<uint64_t>& blocks,
                            uint64_t total_len) {
  uint64_t h = Fnv1a(kFnvBasis, reinterpret_cast<const uint8_t*>(&total_len),
                     sizeof(total_len));
  for (uint64_t b : blocks) {
    h = Fnv1a(h, reinterpret_cast<const uint8_t*>(&b), sizeof(b));
  }
  return h;
}

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

uint64_t AlignUp(uint64_t offset) {
  return (offset + kContainerAlignment - 1) & ~uint64_t{kContainerAlignment - 1};
}

// The data region starts after the fixed-capacity section table.
constexpr uint64_t kDataStart =
    sizeof(ContainerHeader) + kContainerMaxSections * sizeof(ContainerSection);
static_assert(kDataStart % kContainerAlignment == 0,
              "section table capacity must keep the data region aligned");

const char* SectionName(uint32_t kind) {
  switch (static_cast<SectionKind>(kind)) {
    case SectionKind::kOffsets: return "offsets";
    case SectionKind::kNeighbors: return "neighbors";
    case SectionKind::kShardTable: return "shard-table";
    case SectionKind::kCompressedChunks: return "compressed-chunks";
  }
  return "unknown";
}

bool WriteBytes(std::ofstream& out, const void* data, size_t len,
                const std::string& path, std::string* error) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(len));
  if (!out) {
    return Fail(error, path + ": write of " + std::to_string(len) +
                           " bytes failed (disk full?)");
  }
  return true;
}

bool WritePadding(std::ofstream& out, uint64_t from, uint64_t to,
                  const std::string& path, std::string* error) {
  static const char zeros[kContainerAlignment] = {};
  while (from < to) {
    const size_t chunk =
        std::min<uint64_t>(to - from, sizeof(zeros));
    if (!WriteBytes(out, zeros, chunk, path, error)) return false;
    from += chunk;
  }
  return true;
}

// Stamps the header + section table at the front of the stream (which must
// be positioned at 0) with checksums filled in.
bool WriteHeaderAndTable(std::ofstream& out, uint64_t num_nodes,
                         uint64_t num_arcs,
                         const std::vector<ContainerSection>& sections,
                         const std::string& path, std::string* error) {
  ContainerHeader header;
  header.num_nodes = num_nodes;
  header.num_arcs = num_arcs;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.table_checksum = ContainerChecksum(
      sections.data(), sections.size() * sizeof(ContainerSection));
  header.header_checksum =
      ContainerChecksum(&header, offsetof(ContainerHeader, header_checksum));
  if (!WriteBytes(out, &header, sizeof(header), path, error)) return false;
  return WriteBytes(out, sections.data(),
                    sections.size() * sizeof(ContainerSection), path, error);
}

}  // namespace

uint64_t ContainerChecksum(const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  const size_t num_blocks =
      len / kChecksumBlockBytes + (len % kChecksumBlockBytes != 0 ? 1 : 0);
  std::vector<uint64_t> hashes(num_blocks);
  ParallelFor(0, num_blocks, [&](size_t b) {
    const size_t begin = b * kChecksumBlockBytes;
    const size_t n = std::min(kChecksumBlockBytes, len - begin);
    hashes[b] = Fnv1a(kFnvBasis, bytes + begin, n);
  });
  return CombineBlockHashes(hashes, len);
}

void ChecksumAccumulator::Append(const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  total_ += len;
  while (len > 0) {
    if (partial_len_ == 0) partial_ = kFnvBasis;
    const size_t room = kChecksumBlockBytes - partial_len_;
    const size_t n = std::min(room, len);
    partial_ = Fnv1a(partial_, bytes, n);
    partial_len_ += n;
    bytes += n;
    len -= n;
    if (partial_len_ == kChecksumBlockBytes) {
      block_hashes_.push_back(partial_);
      partial_len_ = 0;
    }
  }
}

uint64_t ChecksumAccumulator::Finish() const {
  std::vector<uint64_t> blocks = block_hashes_;
  if (partial_len_ > 0) blocks.push_back(partial_);
  return CombineBlockHashes(blocks, total_);
}

// ---- writers ----

bool WriteContainer(const std::string& path, const Graph& graph,
                    std::string* error, const ContainerWriteOptions& options) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(error, path + ": cannot open for writing");

  const uint64_t n = graph.num_nodes();
  const uint64_t arcs = graph.num_arcs();
  // Graph() has an empty offsets vector; the container always stores the
  // canonical n + 1 entries so the mapping never special-cases empty.
  static const EdgeId kZeroOffset = 0;
  const EdgeId* offsets_data =
      graph.offsets().empty() ? &kZeroOffset : graph.offsets().data();

  std::vector<uint8_t> compressed_bytes;
  if (options.with_compressed) {
    const CompressedGraph compressed = CompressedGraph::Encode(graph);
    compressed_bytes.resize(compressed.SerializedByteSize());
    compressed.SerializeTo(compressed_bytes.data());
  }

  struct Payload {
    SectionKind kind;
    const void* data;
    uint64_t length;
  };
  std::vector<Payload> payloads = {
      {SectionKind::kOffsets, offsets_data, (n + 1) * sizeof(EdgeId)},
      {SectionKind::kNeighbors, graph.neighbor_array().data(),
       arcs * sizeof(NodeId)},
  };
  if (options.with_compressed) {
    payloads.push_back({SectionKind::kCompressedChunks,
                        compressed_bytes.data(), compressed_bytes.size()});
  }

  std::vector<ContainerSection> sections;
  uint64_t cursor = kDataStart;
  for (const Payload& p : payloads) {
    ContainerSection s;
    s.kind = static_cast<uint32_t>(p.kind);
    s.offset = cursor;
    s.length = p.length;
    s.checksum = ContainerChecksum(p.data, p.length);
    sections.push_back(s);
    cursor = AlignUp(cursor + p.length);
  }

  if (!WriteHeaderAndTable(out, n, arcs, sections, path, error)) return false;
  uint64_t written = sizeof(ContainerHeader) +
                     sections.size() * sizeof(ContainerSection);
  for (size_t i = 0; i < payloads.size(); ++i) {
    if (!WritePadding(out, written, sections[i].offset, path, error))
      return false;
    if (!WriteBytes(out, payloads[i].data, payloads[i].length, path, error))
      return false;
    written = sections[i].offset + sections[i].length;
  }
  out.flush();
  if (!out) return Fail(error, path + ": flush failed");
  return true;
}

bool WriteContainer(const std::string& path, const ShardedGraph& graph,
                    std::string* error) {
  ContainerWriter writer;
  if (!writer.Open(path, graph.num_nodes(), error)) return false;
  for (size_t s = 0; s < graph.num_shards(); ++s) {
    if (!writer.AppendShard(graph.shard(s), error)) return false;
  }
  return writer.Finish(error);
}

bool ContainerWriter::Open(const std::string& path, NodeId num_nodes,
                           std::string* error) {
  if (open_) return Fail(error, "ContainerWriter::Open called twice");
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) return Fail(error, path + ": cannot open for writing");
  path_ = path;
  num_nodes_ = num_nodes;
  // Reserve the header + table region; Finish seeks back to stamp it.
  if (!WritePadding(out_, 0, kDataStart, path_, error)) return false;
  cursor_ = kDataStart;
  offsets_.assign(1, 0);
  offsets_.reserve(static_cast<size_t>(num_nodes) + 1);
  open_ = true;
  return true;
}

bool ContainerWriter::AppendShard(const ShardedGraph::Shard& shard,
                                  std::string* error) {
  if (!open_ || finished_) {
    return Fail(error, "ContainerWriter::AppendShard outside Open..Finish");
  }
  if (shard.first != next_vertex_) {
    return Fail(error, path_ + ": shard starts at vertex " +
                           std::to_string(shard.first) + ", expected " +
                           std::to_string(next_vertex_) +
                           " (shards must tile [0, n) in order)");
  }
  if (!shard.offsets.empty() && shard.offsets.front() != 0) {
    return Fail(error, path_ + ": shard offsets must start at 0");
  }
  if (shard.neighbors.size() != shard.arcs()) {
    return Fail(error, path_ + ": shard neighbor count " +
                           std::to_string(shard.neighbors.size()) +
                           " does not match offsets.back() " +
                           std::to_string(shard.arcs()));
  }
  shard_bounds_.push_back(shard.first);
  const EdgeId base = offsets_.back();
  for (size_t i = 1; i < shard.offsets.size(); ++i) {
    offsets_.push_back(base + shard.offsets[i]);
  }
  const size_t bytes = shard.neighbors.size() * sizeof(NodeId);
  if (!WriteBytes(out_, shard.neighbors.data(), bytes, path_, error))
    return false;
  neighbors_sum_.Append(shard.neighbors.data(), bytes);
  cursor_ += bytes;
  next_vertex_ += shard.count();
  return true;
}

bool ContainerWriter::Finish(std::string* error) {
  if (!open_ || finished_) {
    return Fail(error, "ContainerWriter::Finish outside Open..Finish");
  }
  if (next_vertex_ != num_nodes_) {
    return Fail(error, path_ + ": shards cover " +
                           std::to_string(next_vertex_) + " of " +
                           std::to_string(num_nodes_) +
                           " vertices; cannot finish a partial container");
  }
  finished_ = true;
  shard_bounds_.push_back(num_nodes_);

  std::vector<ContainerSection> sections;
  ContainerSection neighbors;
  neighbors.kind = static_cast<uint32_t>(SectionKind::kNeighbors);
  neighbors.offset = kDataStart;
  neighbors.length = cursor_ - kDataStart;
  neighbors.checksum = neighbors_sum_.Finish();
  sections.push_back(neighbors);

  const uint64_t offsets_at = AlignUp(cursor_);
  if (!WritePadding(out_, cursor_, offsets_at, path_, error)) return false;
  ContainerSection offsets;
  offsets.kind = static_cast<uint32_t>(SectionKind::kOffsets);
  offsets.offset = offsets_at;
  offsets.length = offsets_.size() * sizeof(EdgeId);
  offsets.checksum = ContainerChecksum(offsets_.data(), offsets.length);
  sections.push_back(offsets);
  if (!WriteBytes(out_, offsets_.data(), offsets.length, path_, error))
    return false;
  cursor_ = offsets.offset + offsets.length;

  const uint64_t shards_at = AlignUp(cursor_);
  if (!WritePadding(out_, cursor_, shards_at, path_, error)) return false;
  ContainerSection shards;
  shards.kind = static_cast<uint32_t>(SectionKind::kShardTable);
  shards.offset = shards_at;
  shards.length = shard_bounds_.size() * sizeof(uint64_t);
  shards.checksum = ContainerChecksum(shard_bounds_.data(), shards.length);
  sections.push_back(shards);
  if (!WriteBytes(out_, shard_bounds_.data(), shards.length, path_, error))
    return false;

  out_.seekp(0);
  if (!out_) return Fail(error, path_ + ": seek to header failed");
  const uint64_t total_arcs = offsets_.back();
  if (!WriteHeaderAndTable(out_, num_nodes_, total_arcs, sections, path_,
                           error)) {
    return false;
  }
  out_.flush();
  if (!out_) return Fail(error, path_ + ": flush failed");
  out_.close();
  return true;
}

// ---- reader ----

MappedGraph::~MappedGraph() { Unmap(); }

MappedGraph::MappedGraph(MappedGraph&& other) noexcept {
  *this = std::move(other);
}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this == &other) return *this;
  Unmap();
  path_ = std::move(other.path_);
  base_ = other.base_;
  map_len_ = other.map_len_;
  num_nodes_ = other.num_nodes_;
  num_arcs_ = other.num_arcs_;
  offsets_ = other.offsets_;
  neighbors_ = other.neighbors_;
  shard_bounds_ = other.shard_bounds_;
  shard_bounds_len_ = other.shard_bounds_len_;
  compressed_ = other.compressed_;
  compressed_len_ = other.compressed_len_;
  other.base_ = nullptr;
  other.Unmap();  // resets the moved-from scalars; base_ is already null
  return *this;
}

void MappedGraph::Unmap() {
  if (base_ != nullptr) munmap(base_, map_len_);
  path_.clear();
  base_ = nullptr;
  map_len_ = 0;
  num_nodes_ = 0;
  num_arcs_ = 0;
  offsets_ = nullptr;
  neighbors_ = nullptr;
  shard_bounds_ = nullptr;
  shard_bounds_len_ = 0;
  compressed_ = nullptr;
  compressed_len_ = 0;
}

bool MappedGraph::Map(const std::string& path, MappedGraph* out,
                      std::string* error, const ContainerMapOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Fail(error, path + ": cannot open: " + std::strerror(errno));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Fail(error, path + ": fstat failed: " + std::strerror(err));
  }
  const size_t file_len = static_cast<size_t>(st.st_size);
  if (file_len == 0) {
    ::close(fd);
    return Fail(error, path + ": empty file (a zero-length mapping cannot "
                              "hold a container)");
  }
  if (file_len < sizeof(ContainerHeader)) {
    ::close(fd);
    return Fail(error, path + ": file is " + std::to_string(file_len) +
                           " bytes, shorter than the " +
                           std::to_string(sizeof(ContainerHeader)) +
                           "-byte container header");
  }
  void* base = mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Fail(error, path + ": mmap failed: " + std::strerror(errno));
  }
  // From here on, every failure path must unmap.
  MappedGraph mapped;
  mapped.path_ = path;
  mapped.base_ = base;
  mapped.map_len_ = file_len;
  const uint8_t* bytes = static_cast<const uint8_t*>(base);

  ContainerHeader header;
  std::memcpy(&header, bytes, sizeof(header));
  if (header.magic != kContainerMagic) {
    if (header.magic == kLegacyBinaryMagic) {
      return Fail(error,
                  path + ": legacy v0 flat CSR dump (magic \"CONNECT1\"); "
                         "GraphHandle::Map reads .cgc containers — reconvert "
                         "with `graph_tool convert`");
    }
    return Fail(error, path + ": bad magic (not a .cgc container)");
  }
  if (header.version != kContainerVersion) {
    return Fail(error, path + ": unsupported container version " +
                           std::to_string(header.version) +
                           " (this build reads version " +
                           std::to_string(kContainerVersion) + ")");
  }
  if ((header.flags & ~kContainerKnownFlags) != 0) {
    return Fail(error, path + ": unknown flag bits 0x" +
                           std::to_string(header.flags) +
                           " (written by a newer tool?)");
  }
  if (header.node_id_bytes != sizeof(NodeId) ||
      header.edge_id_bytes != sizeof(EdgeId)) {
    return Fail(error, path + ": id widths " +
                           std::to_string(header.node_id_bytes) + "/" +
                           std::to_string(header.edge_id_bytes) +
                           " do not match this build's " +
                           std::to_string(sizeof(NodeId)) + "/" +
                           std::to_string(sizeof(EdgeId)));
  }
  const uint64_t expected_header_sum =
      ContainerChecksum(bytes, offsetof(ContainerHeader, header_checksum));
  if (header.header_checksum != expected_header_sum) {
    return Fail(error, path + ": header checksum mismatch (corrupt header)");
  }
  if (header.section_count == 0 ||
      header.section_count > kContainerMaxSections) {
    return Fail(error, path + ": section count " +
                           std::to_string(header.section_count) +
                           " outside [1, " +
                           std::to_string(kContainerMaxSections) + "]");
  }
  const uint64_t table_bytes =
      uint64_t{header.section_count} * sizeof(ContainerSection);
  if (sizeof(ContainerHeader) + table_bytes > file_len) {
    return Fail(error, path + ": file too short for its section table");
  }
  const uint8_t* table = bytes + sizeof(ContainerHeader);
  if (header.table_checksum != ContainerChecksum(table, table_bytes)) {
    return Fail(error,
                path + ": section table checksum mismatch (corrupt table)");
  }
  if (header.num_nodes > std::numeric_limits<NodeId>::max()) {
    return Fail(error, path + ": node count " +
                           std::to_string(header.num_nodes) +
                           " exceeds 32-bit vertex ids");
  }
  const uint64_t n = header.num_nodes;
  const uint64_t arcs = header.num_arcs;

  const ContainerSection* sections =
      reinterpret_cast<const ContainerSection*>(table);
  const ContainerSection* by_kind[5] = {};
  for (uint32_t i = 0; i < header.section_count; ++i) {
    const ContainerSection& s = sections[i];
    if (s.kind < 1 || s.kind > 4) {
      return Fail(error, path + ": unknown section kind " +
                             std::to_string(s.kind));
    }
    if (by_kind[s.kind] != nullptr) {
      return Fail(error, path + ": duplicate " + SectionName(s.kind) +
                             " section");
    }
    if (s.offset % kContainerAlignment != 0) {
      return Fail(error, path + ": " + SectionName(s.kind) +
                             " section offset " + std::to_string(s.offset) +
                             " is not " +
                             std::to_string(kContainerAlignment) +
                             "-byte aligned");
    }
    if (s.offset < sizeof(ContainerHeader) + table_bytes ||
        s.offset > file_len || s.length > file_len - s.offset) {
      return Fail(error, path + ": " + SectionName(s.kind) +
                             " section [offset " + std::to_string(s.offset) +
                             ", length " + std::to_string(s.length) +
                             ") out of range for a " +
                             std::to_string(file_len) + "-byte file");
    }
    by_kind[s.kind] = &s;
  }

  const ContainerSection* offsets_sec =
      by_kind[static_cast<uint32_t>(SectionKind::kOffsets)];
  const ContainerSection* neighbors_sec =
      by_kind[static_cast<uint32_t>(SectionKind::kNeighbors)];
  if (offsets_sec == nullptr || neighbors_sec == nullptr) {
    return Fail(error, path + ": missing required " +
                           std::string(offsets_sec == nullptr ? "offsets"
                                                              : "neighbors") +
                           " section");
  }
  if (offsets_sec->length != (n + 1) * sizeof(EdgeId)) {
    return Fail(error, path + ": offsets section is " +
                           std::to_string(offsets_sec->length) +
                           " bytes, want " +
                           std::to_string((n + 1) * sizeof(EdgeId)) +
                           " for " + std::to_string(n) + " vertices");
  }
  if (neighbors_sec->length != arcs * sizeof(NodeId)) {
    return Fail(error, path + ": neighbors section is " +
                           std::to_string(neighbors_sec->length) +
                           " bytes, want " +
                           std::to_string(arcs * sizeof(NodeId)) + " for " +
                           std::to_string(arcs) + " arcs");
  }

  if (options.verify_checksums) {
    for (uint32_t i = 0; i < header.section_count; ++i) {
      const ContainerSection& s = sections[i];
      if (ContainerChecksum(bytes + s.offset, s.length) != s.checksum) {
        return Fail(error, path + ": " + SectionName(s.kind) +
                               " section checksum mismatch (corrupt data)");
      }
    }
  }

  const EdgeId* offsets = reinterpret_cast<const EdgeId*>(
      bytes + offsets_sec->offset);
  const NodeId* neighbors =
      neighbors_sec->length == 0
          ? nullptr
          : reinterpret_cast<const NodeId*>(bytes + neighbors_sec->offset);
  if (offsets[0] != 0) {
    return Fail(error, path + ": offsets[0] = " + std::to_string(offsets[0]) +
                           ", must be 0");
  }
  if (offsets[n] != arcs) {
    return Fail(error, path + ": offsets[n] = " + std::to_string(offsets[n]) +
                           " does not match the header arc count " +
                           std::to_string(arcs));
  }
  if (options.verify_checksums) {
    // Deep shape validation: offsets monotone, neighbor ids in range. With
    // checksums verified this only rejects files that were *written* wrong,
    // but it is what guarantees "never a partial graph" even then.
    std::atomic<bool> bad_offsets{false};
    ParallelFor(0, n, [&](size_t v) {
      if (offsets[v] > offsets[v + 1])
        bad_offsets.store(true, std::memory_order_relaxed);
    });
    if (bad_offsets.load()) {
      return Fail(error, path + ": offsets array is not monotone");
    }
    std::atomic<bool> bad_neighbor{false};
    ParallelFor(0, arcs, [&](size_t e) {
      if (neighbors[e] >= n) bad_neighbor.store(true, std::memory_order_relaxed);
    });
    if (bad_neighbor.load()) {
      return Fail(error, path + ": neighbor id out of range [0, " +
                             std::to_string(n) + ")");
    }
  }

  const ContainerSection* shards_sec =
      by_kind[static_cast<uint32_t>(SectionKind::kShardTable)];
  if (shards_sec != nullptr) {
    if (shards_sec->length == 0 ||
        shards_sec->length % sizeof(uint64_t) != 0) {
      return Fail(error, path + ": shard table length " +
                             std::to_string(shards_sec->length) +
                             " is not a positive multiple of 8");
    }
    const uint64_t* bounds =
        reinterpret_cast<const uint64_t*>(bytes + shards_sec->offset);
    const size_t count = shards_sec->length / sizeof(uint64_t);
    if (bounds[0] != 0 || bounds[count - 1] != n) {
      return Fail(error, path + ": shard boundaries must start at 0 and end "
                                "at the vertex count");
    }
    for (size_t i = 1; i < count; ++i) {
      if (bounds[i - 1] > bounds[i]) {
        return Fail(error, path + ": shard boundaries are not monotone");
      }
    }
    mapped.shard_bounds_ = bounds;
    mapped.shard_bounds_len_ = count;
  }

  const ContainerSection* compressed_sec =
      by_kind[static_cast<uint32_t>(SectionKind::kCompressedChunks)];
  if (compressed_sec != nullptr) {
    mapped.compressed_ = bytes + compressed_sec->offset;
    mapped.compressed_len_ = compressed_sec->length;
  }

  mapped.num_nodes_ = static_cast<NodeId>(n);
  mapped.num_arcs_ = arcs;
  mapped.offsets_ = offsets;
  mapped.neighbors_ = neighbors;
  *out = std::move(mapped);
  return true;
}

bool MappedGraph::DecodeCompressedChunks(CompressedGraph* out,
                                         std::string* error) const {
  if (compressed_ == nullptr) {
    return Fail(error, path_ + ": no compressed-chunks section");
  }
  if (!CompressedGraph::Deserialize(compressed_, compressed_len_, out, error))
    return false;
  if (out->num_nodes() != num_nodes_ || out->num_arcs() != num_arcs_) {
    *out = CompressedGraph();
    return Fail(error, path_ + ": compressed chunks disagree with the "
                              "container's vertex/arc counts");
  }
  return true;
}

Graph MappedGraph::ToGraph() const {
  if (offsets_ == nullptr) return Graph();
  return Graph(
      std::vector<EdgeId>(offsets_, offsets_ + num_nodes_ + 1),
      std::vector<NodeId>(neighbors_, neighbors_ + num_arcs_));
}

}  // namespace connectit
