// Edge list (COO) representation (paper §2, §3.5): a first-class
// GraphHandle representation (GraphRepresentation::kCoo), the input format
// for graph construction, and the batch format for the streaming
// algorithms.
//
// Edge-centric finish methods (union-find, Liu-Tarjan, Stergiou) run
// natively on an EdgeList through the registry — see the *OnEdges* drivers
// in src/core/connectit.h. Adjacency-dependent consumers go through
// GraphHandle::MaterializedCsr() instead of converting eagerly.

#ifndef CONNECTIT_GRAPH_COO_H_
#define CONNECTIT_GRAPH_COO_H_

#include <cstddef>
#include <vector>

#include "src/graph/types.h"

namespace connectit {

// A batch of undirected edges over vertices [0, num_nodes).
struct EdgeList {
  NodeId num_nodes = 0;
  std::vector<Edge> edges;

  size_t size() const { return edges.size(); }
  bool empty() const { return edges.empty(); }
};

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_COO_H_
