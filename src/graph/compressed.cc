#include "src/graph/compressed.h"

#include <cassert>
#include <cstring>
#include <limits>

namespace connectit {

namespace {

void EncodeVarint(uint64_t value, std::vector<uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

}  // namespace

CompressedGraph CompressedGraph::Encode(const Graph& graph) {
  CompressedGraph cg;
  cg.num_nodes_ = graph.num_nodes();
  cg.num_arcs_ = graph.num_arcs();
  cg.degrees_.resize(cg.num_nodes_);
  cg.vertex_offsets_.resize(static_cast<size_t>(cg.num_nodes_) + 1);

  // Encoding is sequential: it is a one-time preprocessing step and the
  // byte stream layout is inherently serial. Decoding is parallel.
  uint64_t block_count = 0;
  for (NodeId u = 0; u < cg.num_nodes_; ++u) {
    cg.vertex_offsets_[u].first_block = block_count;
    const EdgeId deg = graph.degree(u);
    cg.degrees_[u] = deg;
    const auto nbrs = graph.neighbors(u);
    EdgeId i = 0;
    while (i < deg) {
      cg.block_offsets_.push_back(cg.data_.size());
      ++block_count;
      const EdgeId hi = std::min<EdgeId>(i + kBlockSize, deg);
      NodeId prev = 0;
      for (EdgeId j = i; j < hi; ++j) {
        const NodeId v = nbrs[j];
        if (j == i) {
          const int64_t delta =
              static_cast<int64_t>(v) - static_cast<int64_t>(u);
          EncodeVarint(internal::ZigzagEncode(delta), cg.data_);
        } else {
          assert(v >= prev);
          EncodeVarint(v - prev, cg.data_);
        }
        prev = v;
      }
      i = hi;
    }
  }
  cg.vertex_offsets_[cg.num_nodes_].first_block = block_count;
  return cg;
}

Graph CompressedGraph::Decode() const {
  std::vector<EdgeId> offsets(static_cast<size_t>(num_nodes_) + 1, 0);
  for (NodeId v = 0; v < num_nodes_; ++v) offsets[v + 1] = offsets[v] + degrees_[v];
  std::vector<NodeId> neighbors(num_arcs_);
  ParallelFor(0, num_nodes_, [&](size_t ui) {
    const NodeId u = static_cast<NodeId>(ui);
    EdgeId pos = offsets[u];
    MapNeighbors(u, [&](NodeId v) { neighbors[pos++] = v; });
  });
  return Graph(std::move(offsets), std::move(neighbors));
}

size_t CompressedGraph::SerializedByteSize() const {
  return 4 * sizeof(uint64_t) + degrees_.size() * sizeof(EdgeId) +
         vertex_offsets_.size() * sizeof(uint64_t) +
         block_offsets_.size() * sizeof(uint64_t) + data_.size();
}

void CompressedGraph::SerializeTo(uint8_t* dst) const {
  static_assert(sizeof(VertexMeta) == sizeof(uint64_t),
                "VertexMeta must serialize as a bare uint64");
  auto put = [&dst](const void* src, size_t len) {
    std::memcpy(dst, src, len);
    dst += len;
  };
  const uint64_t counts[4] = {num_nodes_, num_arcs_,
                              static_cast<uint64_t>(block_offsets_.size()),
                              static_cast<uint64_t>(data_.size())};
  put(counts, sizeof(counts));
  put(degrees_.data(), degrees_.size() * sizeof(EdgeId));
  put(vertex_offsets_.data(), vertex_offsets_.size() * sizeof(VertexMeta));
  put(block_offsets_.data(), block_offsets_.size() * sizeof(uint64_t));
  put(data_.data(), data_.size());
}

bool CompressedGraph::Deserialize(const uint8_t* data, size_t len,
                                  CompressedGraph* out, std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  if (len < 4 * sizeof(uint64_t)) {
    return fail("compressed chunks: image shorter than its header");
  }
  uint64_t counts[4];
  std::memcpy(counts, data, sizeof(counts));
  const uint64_t n = counts[0];
  const uint64_t arcs = counts[1];
  const uint64_t num_blocks = counts[2];
  const uint64_t data_bytes = counts[3];
  if (n > std::numeric_limits<NodeId>::max()) {
    return fail("compressed chunks: node count exceeds 32-bit ids");
  }
  const uint64_t need = 4 * sizeof(uint64_t) + n * sizeof(EdgeId) +
                        (n + 1) * sizeof(uint64_t) +
                        num_blocks * sizeof(uint64_t) + data_bytes;
  if (need != len) {
    return fail("compressed chunks: image is " + std::to_string(len) +
                " bytes, counts require " + std::to_string(need));
  }
  CompressedGraph cg;
  cg.num_nodes_ = static_cast<NodeId>(n);
  cg.num_arcs_ = arcs;
  const uint8_t* cursor = data + sizeof(counts);
  cg.degrees_.resize(n);
  std::memcpy(cg.degrees_.data(), cursor, n * sizeof(EdgeId));
  cursor += n * sizeof(EdgeId);
  cg.vertex_offsets_.resize(n + 1);
  std::memcpy(cg.vertex_offsets_.data(), cursor, (n + 1) * sizeof(uint64_t));
  cursor += (n + 1) * sizeof(uint64_t);
  cg.block_offsets_.resize(num_blocks);
  std::memcpy(cg.block_offsets_.data(), cursor,
              num_blocks * sizeof(uint64_t));
  cursor += num_blocks * sizeof(uint64_t);
  cg.data_.resize(data_bytes);
  std::memcpy(cg.data_.data(), cursor, data_bytes);

  // Structural validation so a later decode never walks out of the byte
  // stream: block indices monotone within [0, num_blocks], byte offsets
  // monotone within the data array, and the degree sum equal to the arc
  // count.
  if (cg.vertex_offsets_.front().first_block != 0 ||
      cg.vertex_offsets_.back().first_block != num_blocks) {
    return fail("compressed chunks: vertex block index table is malformed");
  }
  uint64_t degree_sum = 0;
  for (uint64_t v = 0; v < n; ++v) {
    if (cg.vertex_offsets_[v].first_block >
        cg.vertex_offsets_[v + 1].first_block) {
      return fail("compressed chunks: vertex block indices not monotone");
    }
    degree_sum += cg.degrees_[v];
  }
  if (degree_sum != arcs) {
    return fail("compressed chunks: degree sum " +
                std::to_string(degree_sum) + " does not match arc count " +
                std::to_string(arcs));
  }
  for (uint64_t b = 0; b < num_blocks; ++b) {
    if (cg.block_offsets_[b] >= data_bytes ||
        (b > 0 && cg.block_offsets_[b - 1] > cg.block_offsets_[b])) {
      return fail("compressed chunks: block byte offsets are malformed");
    }
  }
  *out = std::move(cg);
  return true;
}

}  // namespace connectit
