#include "src/graph/compressed.h"

#include <cassert>

namespace connectit {

namespace {

void EncodeVarint(uint64_t value, std::vector<uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

}  // namespace

CompressedGraph CompressedGraph::Encode(const Graph& graph) {
  CompressedGraph cg;
  cg.num_nodes_ = graph.num_nodes();
  cg.num_arcs_ = graph.num_arcs();
  cg.degrees_.resize(cg.num_nodes_);
  cg.vertex_offsets_.resize(static_cast<size_t>(cg.num_nodes_) + 1);

  // Encoding is sequential: it is a one-time preprocessing step and the
  // byte stream layout is inherently serial. Decoding is parallel.
  uint64_t block_count = 0;
  for (NodeId u = 0; u < cg.num_nodes_; ++u) {
    cg.vertex_offsets_[u].first_block = block_count;
    const EdgeId deg = graph.degree(u);
    cg.degrees_[u] = deg;
    const auto nbrs = graph.neighbors(u);
    EdgeId i = 0;
    while (i < deg) {
      cg.block_offsets_.push_back(cg.data_.size());
      ++block_count;
      const EdgeId hi = std::min<EdgeId>(i + kBlockSize, deg);
      NodeId prev = 0;
      for (EdgeId j = i; j < hi; ++j) {
        const NodeId v = nbrs[j];
        if (j == i) {
          const int64_t delta =
              static_cast<int64_t>(v) - static_cast<int64_t>(u);
          EncodeVarint(internal::ZigzagEncode(delta), cg.data_);
        } else {
          assert(v >= prev);
          EncodeVarint(v - prev, cg.data_);
        }
        prev = v;
      }
      i = hi;
    }
  }
  cg.vertex_offsets_[cg.num_nodes_].first_block = block_count;
  return cg;
}

Graph CompressedGraph::Decode() const {
  std::vector<EdgeId> offsets(static_cast<size_t>(num_nodes_) + 1, 0);
  for (NodeId v = 0; v < num_nodes_; ++v) offsets[v + 1] = offsets[v] + degrees_[v];
  std::vector<NodeId> neighbors(num_arcs_);
  ParallelFor(0, num_nodes_, [&](size_t ui) {
    const NodeId u = static_cast<NodeId>(ui);
    EdgeId pos = offsets[u];
    MapNeighbors(u, [&](NodeId v) { neighbors[pos++] = v; });
  });
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace connectit
