// Byte-coded compressed CSR (paper §3.6 "Graph Compression").
//
// Neighbor lists are difference-encoded: the first neighbor of each block is
// encoded relative to the source vertex (sign folded into the low bit), and
// subsequent neighbors as positive gaps, each written as a variable-length
// byte code (7 value bits per byte, high bit = continue). To enable parallel
// decoding within a vertex, adjacency data is split into independent blocks
// of kBlockSize neighbors, as in Ligra+.

#ifndef CONNECTIT_GRAPH_COMPRESSED_H_
#define CONNECTIT_GRAPH_COMPRESSED_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/graph/types.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

class CompressedGraph {
 public:
  static constexpr size_t kBlockSize = 128;

  CompressedGraph() = default;

  // Compresses an existing CSR graph (neighbor lists must be sorted, which
  // BuildGraph guarantees).
  static CompressedGraph Encode(const Graph& graph);

  NodeId num_nodes() const { return num_nodes_; }
  EdgeId num_arcs() const { return num_arcs_; }
  EdgeId degree(NodeId v) const { return degrees_[v]; }

  EdgeId num_edges() const { return num_arcs_ / 2; }

  // Invokes fn(v) for every neighbor of u, in order.
  template <typename F>
  void MapNeighbors(NodeId u, F&& fn) const;

  // As MapNeighbors, but stops early when fn returns false.
  template <typename F>
  void MapNeighborsWhile(NodeId u, F&& fn) const;

  // Random access to the i-th neighbor of u: decodes the containing block
  // (O(kBlockSize) work), giving the compressed format the same interface
  // the framework's samplers need.
  NodeId NeighborAt(NodeId u, EdgeId i) const;

  // Invokes fn(u, v) for every directed arc, parallel over vertices and
  // over blocks of high-degree vertices.
  template <typename F>
  void MapArcs(F&& fn) const;

  // As MapArcs but only for sources where pred(u) is true — skipped
  // vertices' adjacency bytes are never decoded.
  template <typename F, typename Pred>
  void MapArcsIf(Pred&& pred, F&& fn) const;

  // Decompresses back to plain CSR (used by round-trip tests).
  Graph Decode() const;

  // Compressed size in bytes (for the compression-ratio experiment).
  size_t byte_size() const { return data_.size(); }

  // On-disk image for the container's optional compressed-chunks section
  // (container.h): fixed counts followed by the class's arrays verbatim.
  size_t SerializedByteSize() const;
  void SerializeTo(uint8_t* dst) const;
  // Parses an image produced by SerializeTo. Returns false with a
  // diagnostic in *error on truncation or inconsistent counts, leaving *out
  // empty — never a partially filled graph.
  static bool Deserialize(const uint8_t* data, size_t len,
                          CompressedGraph* out, std::string* error = nullptr);

 private:
  struct VertexMeta {
    uint64_t first_block = 0;  // index into block_offsets_
  };

  NodeId num_nodes_ = 0;
  EdgeId num_arcs_ = 0;
  std::vector<EdgeId> degrees_;            // size n
  std::vector<VertexMeta> vertex_offsets_; // size n + 1
  std::vector<uint64_t> block_offsets_;    // byte offset of each block
  std::vector<uint8_t> data_;
};

// ---- inline decoding ----

namespace internal {

inline uint64_t DecodeVarint(const uint8_t* data, size_t& pos) {
  uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const uint8_t byte = data[pos++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

// First entry of a block stores (neighbor - source) zigzag-encoded.
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

}  // namespace internal

template <typename F>
void CompressedGraph::MapNeighbors(NodeId u, F&& fn) const {
  const uint64_t block_begin = vertex_offsets_[u].first_block;
  const uint64_t block_end = vertex_offsets_[u + 1].first_block;
  const EdgeId deg = degrees_[u];
  for (uint64_t b = block_begin; b < block_end; ++b) {
    size_t pos = block_offsets_[b];
    const EdgeId in_block =
        std::min<EdgeId>(kBlockSize, deg - (b - block_begin) * kBlockSize);
    NodeId prev = 0;
    for (EdgeId i = 0; i < in_block; ++i) {
      if (i == 0) {
        const int64_t delta =
            internal::ZigzagDecode(internal::DecodeVarint(data_.data(), pos));
        prev = static_cast<NodeId>(static_cast<int64_t>(u) + delta);
      } else {
        prev += static_cast<NodeId>(internal::DecodeVarint(data_.data(), pos));
      }
      fn(prev);
    }
  }
}

template <typename F>
void CompressedGraph::MapNeighborsWhile(NodeId u, F&& fn) const {
  const uint64_t block_begin = vertex_offsets_[u].first_block;
  const uint64_t block_end = vertex_offsets_[u + 1].first_block;
  const EdgeId deg = degrees_[u];
  for (uint64_t b = block_begin; b < block_end; ++b) {
    size_t pos = block_offsets_[b];
    const EdgeId in_block =
        std::min<EdgeId>(kBlockSize, deg - (b - block_begin) * kBlockSize);
    NodeId prev = 0;
    for (EdgeId i = 0; i < in_block; ++i) {
      if (i == 0) {
        const int64_t delta =
            internal::ZigzagDecode(internal::DecodeVarint(data_.data(), pos));
        prev = static_cast<NodeId>(static_cast<int64_t>(u) + delta);
      } else {
        prev += static_cast<NodeId>(internal::DecodeVarint(data_.data(), pos));
      }
      if (!fn(prev)) return;
    }
  }
}

inline NodeId CompressedGraph::NeighborAt(NodeId u, EdgeId i) const {
  const uint64_t block = vertex_offsets_[u].first_block + i / kBlockSize;
  size_t pos = block_offsets_[block];
  const EdgeId in_block = i % kBlockSize;
  NodeId value = 0;
  for (EdgeId j = 0; j <= in_block; ++j) {
    if (j == 0) {
      const int64_t delta =
          internal::ZigzagDecode(internal::DecodeVarint(data_.data(), pos));
      value = static_cast<NodeId>(static_cast<int64_t>(u) + delta);
    } else {
      value += static_cast<NodeId>(internal::DecodeVarint(data_.data(), pos));
    }
  }
  return value;
}

template <typename F>
void CompressedGraph::MapArcs(F&& fn) const {
  ParallelFor(
      0, num_nodes_,
      [&](size_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        MapNeighbors(u, [&](NodeId v) { fn(u, v); });
      },
      /*grain=*/64);
}

template <typename F, typename Pred>
void CompressedGraph::MapArcsIf(Pred&& pred, F&& fn) const {
  ParallelFor(
      0, num_nodes_,
      [&](size_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        if (!pred(u)) return;
        MapNeighbors(u, [&](NodeId v) { fn(u, v); });
      },
      /*grain=*/64);
}

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_COMPRESSED_H_
