// Graph construction: edge list -> symmetric CSR.
//
// Matches the preprocessing the paper applies to its (originally directed)
// inputs: symmetrize, drop self-loops, deduplicate parallel edges.

#ifndef CONNECTIT_GRAPH_BUILDER_H_
#define CONNECTIT_GRAPH_BUILDER_H_

#include <vector>

#include "src/graph/coo.h"
#include "src/graph/csr.h"

namespace connectit {

struct BuildOptions {
  // Insert the reverse arc for every input edge (always wanted for
  // undirected connectivity; set false only if the input is already
  // symmetric).
  bool symmetrize = true;
  // Drop (u, u) edges.
  bool remove_self_loops = true;
  // Collapse parallel edges.
  bool remove_duplicates = true;
};

// Builds a CSR graph from an edge list. Runs in parallel.
Graph BuildGraph(const EdgeList& edges, const BuildOptions& options = {});

// Convenience: builds from a raw initializer-style edge vector.
Graph BuildGraph(NodeId num_nodes, std::vector<Edge> edges,
                 const BuildOptions& options = {});

// Extracts all undirected edges {u, v} with u < v as an EdgeList (the COO
// form used to drive streaming experiments).
EdgeList ExtractEdges(const Graph& graph);

// Applies the permutation `perm` (new id of vertex v is perm[v]) to the
// graph, producing the relabeled graph. Used by locality experiments.
Graph RelabelGraph(const Graph& graph, const std::vector<NodeId>& perm);

// A uniformly random permutation of [0, n) from `seed`.
std::vector<NodeId> RandomPermutation(NodeId n, uint64_t seed);

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_BUILDER_H_
