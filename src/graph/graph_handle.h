// Representation-generic graph handle (paper §2 "Data Format").
//
// ConnectIt treats plain CSR, byte-compressed CSR, and COO edge lists as
// first-class inputs: every sampling and finish method is a template over
// the representation's MapNeighbors/MapArcs/MapArcsIf/NeighborAt surface.
// GraphHandle is the type-erased seam between that compile-time genericity
// and the runtime registry: a Variant::run accepts a GraphHandle, and the
// registry instantiates the templated framework once per representation
// behind Visit().
//
// A handle is either a *view* (non-owning; the caller keeps the graph
// alive, as when benches iterate a pre-built suite) or *owning* (the handle
// holds the representation via shared_ptr, so handles are cheap to copy and
// safe to return). COO input is materialized to CSR at construction —
// adjacency-free edge lists cannot serve MapNeighbors/NeighborAt, which the
// sampling phase requires; COO-native Liu-Tarjan registry rows are a
// ROADMAP follow-up.

#ifndef CONNECTIT_GRAPH_GRAPH_HANDLE_H_
#define CONNECTIT_GRAPH_GRAPH_HANDLE_H_

#include <memory>
#include <utility>

#include "src/graph/compressed.h"
#include "src/graph/coo.h"
#include "src/graph/csr.h"
#include "src/graph/types.h"

namespace connectit {

enum class GraphRepresentation {
  kCsr,
  kCompressed,
};

const char* ToString(GraphRepresentation rep);

class GraphHandle {
 public:
  // An empty handle behaves as the 0-vertex CSR graph.
  GraphHandle() = default;

  // Non-owning views. Implicit by design: every pre-refactor call site that
  // passed `const Graph&` to Variant::run keeps working unchanged.
  GraphHandle(const Graph& graph) : csr_(&graph) {}
  GraphHandle(const CompressedGraph& graph) : compressed_(&graph) {}

  // A view of a temporary would dangle immediately; use Adopt/Compress for
  // rvalues.
  GraphHandle(Graph&&) = delete;
  GraphHandle(CompressedGraph&&) = delete;

  // Owning handles (the representation lives as long as any copy).
  static GraphHandle Adopt(Graph graph);
  static GraphHandle Adopt(CompressedGraph graph);

  // COO input: symmetrizes/dedups through BuildGraph and owns the CSR.
  static GraphHandle FromEdges(const EdgeList& edges);

  // Byte-compresses a CSR graph and owns the result.
  static GraphHandle Compress(const Graph& graph);

  GraphRepresentation representation() const {
    return compressed_ != nullptr ? GraphRepresentation::kCompressed
                                  : GraphRepresentation::kCsr;
  }
  const char* representation_name() const {
    return ToString(representation());
  }

  // The underlying representation, or nullptr when the handle wraps the
  // other one. Use Visit for representation-generic code.
  const Graph* csr() const { return csr_; }
  const CompressedGraph* compressed() const { return compressed_; }

  // Invokes `visitor` with the concrete representation (`const Graph&` or
  // `const CompressedGraph&`). This is the single dispatch point the
  // registry uses to instantiate the templated framework per representation.
  template <typename Visitor>
  decltype(auto) Visit(Visitor&& visitor) const {
    if (compressed_ != nullptr) return visitor(*compressed_);
    if (csr_ != nullptr) return visitor(*csr_);
    return visitor(EmptyGraph());
  }

  NodeId num_nodes() const {
    return Visit([](const auto& g) { return g.num_nodes(); });
  }
  EdgeId num_arcs() const {
    return Visit([](const auto& g) { return g.num_arcs(); });
  }
  EdgeId num_edges() const {
    return Visit([](const auto& g) { return g.num_edges(); });
  }

 private:
  static const Graph& EmptyGraph();

  const Graph* csr_ = nullptr;
  const CompressedGraph* compressed_ = nullptr;
  // Set only for owning handles; keeps whichever representation the raw
  // pointers reference alive across copies.
  std::shared_ptr<const void> owned_;
};

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_GRAPH_HANDLE_H_
