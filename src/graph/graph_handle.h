// Representation-generic graph handle (paper §2 "Data Format").
//
// ConnectIt treats plain CSR, byte-compressed CSR, COO edge lists, and
// sharded (vertex-partitioned) CSR as first-class inputs: every sampling
// and finish method is a template over the representation's
// MapNeighbors/MapArcs/MapArcsIf/NeighborAt surface, and the edge-centric
// finish methods (union-find, Liu-Tarjan, Stergiou) additionally run
// directly on a flat edge array. GraphHandle is the type-erased seam
// between that compile-time genericity and the runtime registry: a
// Variant::run accepts a GraphHandle, and the registry instantiates the
// templated framework once per representation behind Visit().
//
// A handle is either a *view* (non-owning; the caller keeps the graph
// alive, as when benches iterate a pre-built suite) or *owning* (the handle
// holds the representation via shared_ptr, so handles are cheap to copy and
// safe to return).
//
// COO handles are *not* converted at the door. Edge-centric finish methods
// run natively on the edge list (see ConnectivityOnEdges et al. in
// connectit.h); only consumers that genuinely need adjacency — the sampling
// schemes and the vertex-centric finish methods — trigger a CSR
// materialization, via MaterializedCsr(). The materialization is built once
// per handle family (copies share it) and cached; CooCsrMaterializations()
// counts builds so tests and the CLI can assert the native paths never pay
// the O(m) conversion.
//
// Sharded handles follow the same lazy rule from the other side: because
// ShardedGraph serves the full adjacency surface, *every* variant ×
// sampling combination runs on the shards natively and MaterializedCsr()
// is needed only by consumers that require one flat allocation (e.g. the
// CSR-only baselines). That fallback flattens lazily, caches the result in
// the handle family, and counts builds in ShardedCsrMaterializations() so
// tests can pin native sharded runs to zero flattens.
//
// Mapped handles (GraphHandle::Map over a .cgc container, container.h) are
// the zero-copy arm: the MappedGraph serves the same full adjacency surface
// straight from the page cache, so everything runs on the mapping natively
// and MaterializedCsr() — counted by MappedCsrMaterializations() — exists
// only for flat-CSR-only consumers, exactly like the sharded arm.

#ifndef CONNECTIT_GRAPH_GRAPH_HANDLE_H_
#define CONNECTIT_GRAPH_GRAPH_HANDLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "src/graph/compressed.h"
#include "src/graph/container.h"
#include "src/graph/coo.h"
#include "src/graph/csr.h"
#include "src/graph/sharded.h"
#include "src/graph/types.h"

namespace connectit {

enum class GraphRepresentation {
  kCsr,
  kCompressed,
  kCoo,
  kSharded,
  kMapped,
};

const char* ToString(GraphRepresentation rep);

// Number of COO -> CSR materializations performed process-wide (via
// GraphHandle::MaterializedCsr). The acceptance gate for COO-native
// execution: run a variant on a COO handle and assert this counter did not
// move.
uint64_t CooCsrMaterializations();

// Number of sharded -> flat-CSR flattens performed process-wide (via
// GraphHandle::MaterializedCsr on a sharded handle). The acceptance gate
// for sharded-native execution: the whole variant × sampling space runs on
// the shards directly, so this counter must not move during registry runs.
uint64_t ShardedCsrMaterializations();

// Number of mapped -> in-memory-CSR copies performed process-wide (via
// GraphHandle::MaterializedCsr on a mapped handle). The acceptance gate for
// zero-copy serving: every variant × sampling × streaming seed runs off the
// mapping directly, so this counter must not move during registry runs.
uint64_t MappedCsrMaterializations();

class GraphHandle {
 public:
  // An empty handle behaves as the 0-vertex CSR graph.
  GraphHandle() = default;

  // Non-owning views. Implicit by design: every pre-refactor call site that
  // passed `const Graph&` to Variant::run keeps working unchanged.
  GraphHandle(const Graph& graph) : csr_(&graph) {}
  GraphHandle(const CompressedGraph& graph) : compressed_(&graph) {}
  GraphHandle(const EdgeList& edges);
  GraphHandle(const ShardedGraph& graph);
  GraphHandle(const MappedGraph& graph);

  // A view of a temporary would dangle immediately; use
  // Adopt/Compress/Shard for rvalues.
  GraphHandle(Graph&&) = delete;
  GraphHandle(CompressedGraph&&) = delete;
  GraphHandle(EdgeList&&) = delete;
  GraphHandle(ShardedGraph&&) = delete;
  GraphHandle(MappedGraph&&) = delete;

  // Owning handles (the representation lives as long as any copy).
  static GraphHandle Adopt(Graph graph);
  static GraphHandle Adopt(CompressedGraph graph);
  static GraphHandle Adopt(EdgeList edges);
  static GraphHandle Adopt(ShardedGraph graph);
  static GraphHandle Adopt(MappedGraph graph);

  // Maps a .cgc container (container.h) as an owning zero-copy handle. On
  // failure returns an empty handle with a diagnostic in *error. MapOrDie
  // prints the diagnostic and aborts — the CLI / bench path where a missing
  // or corrupt file is fatal anyway.
  static GraphHandle Map(const std::string& path, std::string* error = nullptr);
  static GraphHandle MapOrDie(const std::string& path);

  // Writes `graph` to a temporary container and maps it back as an owning
  // handle (the temp file is unlinked once mapped, so it lives exactly as
  // long as the handle family). This is the one-call CSR -> mapped
  // conversion used by the facade, benches, and tests; it dies on
  // environmental failure (unwritable temp dir), not on data errors.
  static GraphHandle MapTempOrDie(const Graph& graph);

  // COO input as a first-class representation: the handle owns a copy of
  // the edge list and stays COO. CSR is built lazily — and counted — only
  // if an adjacency-dependent consumer asks (MaterializedCsr).
  static GraphHandle FromEdges(const EdgeList& edges);

  // Byte-compresses a CSR graph and owns the result.
  static GraphHandle Compress(const Graph& graph);

  // Partitions a CSR graph into num_shards vertex-contiguous shards and
  // owns the result (0 = the thread pool's worker count; see
  // ShardedGraph::Partition).
  static GraphHandle Shard(const Graph& graph, size_t num_shards = 0);

  GraphRepresentation representation() const {
    // Exhaustive over every representation a handle can hold; a default
    // handle reads as the empty CSR graph.
    if (mapped_ != nullptr) return GraphRepresentation::kMapped;
    if (sharded_ != nullptr) return GraphRepresentation::kSharded;
    if (coo_ != nullptr) return GraphRepresentation::kCoo;
    if (compressed_ != nullptr) return GraphRepresentation::kCompressed;
    return GraphRepresentation::kCsr;
  }
  const char* representation_name() const {
    return ToString(representation());
  }

  // The underlying representation, or nullptr when the handle wraps a
  // different one. Use Visit for representation-generic code.
  const Graph* csr() const { return csr_; }
  const CompressedGraph* compressed() const { return compressed_; }
  const EdgeList* coo() const { return coo_; }
  const ShardedGraph* sharded() const { return sharded_; }
  const MappedGraph* mapped() const { return mapped_; }

  // COO, sharded, and mapped handles only: the flat-CSR materialization of
  // the representation — built through BuildGraph (COO: symmetrized,
  // deduplicated), ShardedGraph::Flatten (sharded), or MappedGraph::ToGraph
  // (mapped) on first call (thread-safe) and cached, so copies of the
  // handle share one build. Each build increments the per-representation
  // counter (CooCsrMaterializations / ShardedCsrMaterializations /
  // MappedCsrMaterializations).
  const Graph& MaterializedCsr() const;

  // Invokes `visitor` with the concrete representation (`const Graph&`,
  // `const CompressedGraph&`, `const EdgeList&`, `const ShardedGraph&`, or
  // `const MappedGraph&`). This is the single dispatch point the registry
  // uses to instantiate the templated framework per representation;
  // visitors that need adjacency on an EdgeList arm escalate explicitly via
  // MaterializedCsr().
  template <typename Visitor>
  decltype(auto) Visit(Visitor&& visitor) const {
    if (mapped_ != nullptr) return visitor(*mapped_);
    if (sharded_ != nullptr) return visitor(*sharded_);
    if (coo_ != nullptr) return visitor(*coo_);
    if (compressed_ != nullptr) return visitor(*compressed_);
    if (csr_ != nullptr) return visitor(*csr_);
    return visitor(EmptyGraph());
  }

  NodeId num_nodes() const {
    if (mapped_ != nullptr) return mapped_->num_nodes();
    if (sharded_ != nullptr) return sharded_->num_nodes();
    if (coo_ != nullptr) return coo_->num_nodes;
    return compressed_ != nullptr ? compressed_->num_nodes()
                                  : (csr_ != nullptr ? csr_->num_nodes() : 0);
  }
  EdgeId num_arcs() const {
    if (mapped_ != nullptr) return mapped_->num_arcs();
    if (sharded_ != nullptr) return sharded_->num_arcs();
    if (coo_ != nullptr) return static_cast<EdgeId>(coo_->size()) * 2;
    return compressed_ != nullptr ? compressed_->num_arcs()
                                  : (csr_ != nullptr ? csr_->num_arcs() : 0);
  }
  EdgeId num_edges() const {
    if (mapped_ != nullptr) return mapped_->num_edges();
    if (sharded_ != nullptr) return sharded_->num_edges();
    if (coo_ != nullptr) return static_cast<EdgeId>(coo_->size());
    return compressed_ != nullptr ? compressed_->num_edges()
                                  : (csr_ != nullptr ? csr_->num_edges() : 0);
  }

 private:
  // Shared, lazily-filled flat-CSR cache for COO and sharded handles. Lives
  // behind a shared_ptr so every copy of the handle funds the same single
  // build.
  struct FlatCsrCache;

  static const Graph& EmptyGraph();

  const Graph* csr_ = nullptr;
  const CompressedGraph* compressed_ = nullptr;
  const EdgeList* coo_ = nullptr;
  const ShardedGraph* sharded_ = nullptr;
  const MappedGraph* mapped_ = nullptr;
  // Set only for owning handles; keeps whichever representation the raw
  // pointers reference alive across copies.
  std::shared_ptr<const void> owned_;
  // Set for every COO, sharded, or mapped handle (view or owning).
  std::shared_ptr<FlatCsrCache> flat_cache_;
};

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_GRAPH_HANDLE_H_
