// Synthetic graph generators.
//
// These substitute for the paper's real-world inputs (see DESIGN.md §4):
// RMAT and Barabási–Albert produce the skewed low-diameter regime of social
// and Web graphs; 2-D grids produce the high-diameter sparse regime of road
// networks; Erdős–Rényi produces a uniform-degree control; the component
// mixture plants many components to exercise multi-component code paths.
// All generators are deterministic for a fixed seed.

#ifndef CONNECTIT_GRAPH_GENERATORS_H_
#define CONNECTIT_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/coo.h"
#include "src/graph/csr.h"

namespace connectit {

// Recursive-matrix (RMAT) edge sampler with partition probabilities
// (a, b, c); the remaining mass 1-a-b-c falls in the fourth quadrant. The
// paper's streaming experiments use (a, b, c) = (0.5, 0.1, 0.1).
EdgeList GenerateRmatEdges(NodeId num_nodes, EdgeId num_edges, uint64_t seed,
                           double a = 0.5, double b = 0.1, double c = 0.1);
Graph GenerateRmat(NodeId num_nodes, EdgeId num_edges, uint64_t seed,
                   double a = 0.5, double b = 0.1, double c = 0.1);

// Barabási–Albert preferential attachment with `edges_per_node` out-edges
// per arriving vertex (paper uses m = 10n).
EdgeList GenerateBarabasiAlbertEdges(NodeId num_nodes, NodeId edges_per_node,
                                     uint64_t seed);
Graph GenerateBarabasiAlbert(NodeId num_nodes, NodeId edges_per_node,
                             uint64_t seed);

// G(n, m) Erdős–Rényi: m edges sampled uniformly with replacement.
EdgeList GenerateErdosRenyiEdges(NodeId num_nodes, EdgeId num_edges,
                                 uint64_t seed);
Graph GenerateErdosRenyi(NodeId num_nodes, EdgeId num_edges, uint64_t seed);

// width x height 4-neighbor grid: the high-diameter "road network" proxy.
Graph GenerateGrid(NodeId width, NodeId height);

// Simple structured graphs used heavily by tests.
Graph GeneratePath(NodeId num_nodes);
Graph GenerateCycle(NodeId num_nodes);
Graph GenerateStar(NodeId num_nodes);       // vertex 0 is the hub
Graph GenerateComplete(NodeId num_nodes);

// `num_components` independent random blobs of geometrically decreasing
// size plus isolated vertices; exercises IdentifyFrequent and
// multi-component paths (ClueWeb/Hyperlink have tens of millions of
// components). Each blob receives ~edges_per_vertex edges per member.
Graph GenerateComponentMixture(NodeId num_nodes, NodeId num_components,
                               uint64_t seed, NodeId edges_per_vertex = 4);

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_GENERATORS_H_
