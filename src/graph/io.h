// Graph I/O: a plain-text edge-list format and a binary CSR snapshot.
//
// Text format ("<u> <v>" per line, '#' comments, first non-comment line may
// be "<n> <m>") matches common public dataset dumps (SNAP-style). The binary
// format is the versioned .cgc container (container.h): WriteGraphBinary
// emits a container, and ReadGraphBinary accepts both containers and the
// legacy v0 flat dump ("CONNECT1" magic) the pre-container tree wrote, so
// old snapshots keep loading.
//
// Every reader/writer takes an optional error string and fills it with a
// diagnostic naming the file and the offset or section that failed, so the
// CLI and tests can print *why* an I/O call returned false instead of just
// "false".

#ifndef CONNECTIT_GRAPH_IO_H_
#define CONNECTIT_GRAPH_IO_H_

#include <cstdint>
#include <string>

#include "src/graph/coo.h"
#include "src/graph/csr.h"

namespace connectit {

// Magic of the legacy v0 flat binary dump ("CONNECT1"): a bare header
// (magic, n, arcs) followed by the raw offset and neighbor arrays, with no
// checksums or section table. ReadGraphBinary still accepts it; the .cgc
// loader names it in its diagnostic (container.cc) so a stale file gets a
// "reconvert" hint instead of "bad magic".
inline constexpr uint64_t kLegacyBinaryMagic = 0x434f4e4e45435431ULL;

// Parses a SNAP-style edge list from `text`. Vertices are remapped densely
// if `compact_ids` is true; otherwise ids are used verbatim and num_nodes is
// max id + 1.
EdgeList ParseEdgeListText(const std::string& text, bool compact_ids = false);

// Reads/writes the text format from disk. Returns false on I/O failure with
// a diagnostic in *error (when non-null).
bool ReadEdgeListFile(const std::string& path, EdgeList* out,
                      std::string* error = nullptr);
bool WriteEdgeListFile(const std::string& path, const EdgeList& edges,
                       std::string* error = nullptr);

// Binary CSR snapshot. Writes the versioned .cgc container; reads both the
// container and the legacy v0 flat dump.
bool WriteGraphBinary(const std::string& path, const Graph& graph,
                      std::string* error = nullptr);
bool ReadGraphBinary(const std::string& path, Graph* out,
                     std::string* error = nullptr);

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_IO_H_
