// Graph I/O: a plain-text edge-list format and a binary CSR snapshot.
//
// Text format ("<u> <v>" per line, '#' comments, first non-comment line may
// be "<n> <m>") matches common public dataset dumps (SNAP-style). The binary
// format is a versioned little-endian dump of the CSR arrays for fast
// reload.

#ifndef CONNECTIT_GRAPH_IO_H_
#define CONNECTIT_GRAPH_IO_H_

#include <string>

#include "src/graph/coo.h"
#include "src/graph/csr.h"

namespace connectit {

// Parses a SNAP-style edge list from `text`. Vertices are remapped densely
// if `compact_ids` is true; otherwise ids are used verbatim and num_nodes is
// max id + 1.
EdgeList ParseEdgeListText(const std::string& text, bool compact_ids = false);

// Reads/writes the text format from disk. Returns false on I/O failure.
bool ReadEdgeListFile(const std::string& path, EdgeList* out);
bool WriteEdgeListFile(const std::string& path, const EdgeList& edges);

// Binary CSR snapshot.
bool WriteGraphBinary(const std::string& path, const Graph& graph);
bool ReadGraphBinary(const std::string& path, Graph* out);

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_IO_H_
