#include "src/graph/sharded.h"

#include <algorithm>

namespace connectit {

ShardedGraph ShardedGraph::Partition(const Graph& graph, size_t num_shards) {
  if (num_shards == 0) num_shards = std::max<size_t>(1, NumWorkers());
  const NodeId n = graph.num_nodes();

  ShardedGraph sharded;
  sharded.num_nodes_ = n;
  sharded.num_arcs_ = graph.num_arcs();
  // Equal vertex ranges: chunk * num_shards >= n, so ShardOf(v) < num_shards
  // for every valid v. chunk >= 1 keeps the division well-defined for empty
  // graphs.
  sharded.chunk_ = static_cast<NodeId>(
      std::max<size_t>(1, (static_cast<size_t>(n) + num_shards - 1) /
                              num_shards));
  sharded.placement_nodes_ = NumaTopology::Get().num_nodes();
  sharded.shards_.resize(num_shards);

  const std::vector<EdgeId>& offsets = graph.offsets();
  const std::vector<NodeId>& neighbors = graph.neighbor_array();
  // Node-affine fill: shard si is allocated and written by a worker bound
  // to node NodeOfShard(si), so under the kernel's first-touch policy the
  // shard's pages land on the node whose workers sweep it later.
  ParallelForNodeAffine(num_shards, [&](size_t si) {
    Shard& s = sharded.shards_[si];
    const size_t chunk = sharded.chunk_;
    s.first = static_cast<NodeId>(std::min<size_t>(si * chunk, n));
    const NodeId last = static_cast<NodeId>(
        std::min<size_t>((si + 1) * chunk, n));
    const NodeId count = last - s.first;
    s.offsets.resize(static_cast<size_t>(count) + 1);
    if (count == 0) {
      // Trailing empty shard (P > n): a zero-vertex, zero-arc range.
      s.offsets[0] = 0;
      return;
    }
    const EdgeId base = offsets[s.first];
    for (NodeId i = 0; i <= count; ++i) {
      s.offsets[i] = offsets[s.first + i] - base;
    }
    s.neighbors.assign(neighbors.begin() + base,
                       neighbors.begin() + offsets[last]);
  });
  return sharded;
}

Graph ShardedGraph::Flatten() const {
  std::vector<EdgeId> offsets(static_cast<size_t>(num_nodes_) + 1, 0);
  std::vector<NodeId> neighbors(num_arcs_);
  // Per-shard arc base: exclusive prefix sum over shard arc counts.
  std::vector<EdgeId> bases(shards_.size() + 1, 0);
  for (size_t si = 0; si < shards_.size(); ++si) {
    bases[si + 1] = bases[si] + shards_[si].arcs();
  }
  ParallelFor(
      0, shards_.size(),
      [&](size_t si) {
        const Shard& s = shards_[si];
        const NodeId count = s.count();
        for (NodeId i = 0; i < count; ++i) {
          offsets[s.first + i] = bases[si] + s.offsets[i];
        }
        std::copy(s.neighbors.begin(), s.neighbors.end(),
                  neighbors.begin() + bases[si]);
      },
      /*grain=*/1);
  offsets[num_nodes_] = num_arcs_;
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace connectit
