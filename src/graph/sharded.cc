#include "src/graph/sharded.h"

#include <algorithm>

#include "src/parallel/atomics.h"
#include "src/parallel/primitives.h"

namespace connectit {

ShardedGraph ShardedGraph::Partition(const Graph& graph, size_t num_shards) {
  if (num_shards == 0) num_shards = std::max<size_t>(1, NumWorkers());
  const NodeId n = graph.num_nodes();

  ShardedGraph sharded;
  sharded.num_nodes_ = n;
  sharded.num_arcs_ = graph.num_arcs();
  // Equal vertex ranges: chunk * num_shards >= n, so ShardOf(v) < num_shards
  // for every valid v. chunk >= 1 keeps the division well-defined for empty
  // graphs.
  sharded.chunk_ = static_cast<NodeId>(
      std::max<size_t>(1, (static_cast<size_t>(n) + num_shards - 1) /
                              num_shards));
  sharded.placement_nodes_ = NumaTopology::Get().num_nodes();
  sharded.shards_.resize(num_shards);

  const std::vector<EdgeId>& offsets = graph.offsets();
  const std::vector<NodeId>& neighbors = graph.neighbor_array();
  // Node-affine fill: shard si is allocated and written by a worker bound
  // to node NodeOfShard(si), so under the kernel's first-touch policy the
  // shard's pages land on the node whose workers sweep it later.
  ParallelForNodeAffine(num_shards, [&](size_t si) {
    Shard& s = sharded.shards_[si];
    const size_t chunk = sharded.chunk_;
    s.first = static_cast<NodeId>(std::min<size_t>(si * chunk, n));
    const NodeId last = static_cast<NodeId>(
        std::min<size_t>((si + 1) * chunk, n));
    const NodeId count = last - s.first;
    s.offsets.resize(static_cast<size_t>(count) + 1);
    if (count == 0) {
      // Trailing empty shard (P > n): a zero-vertex, zero-arc range.
      s.offsets[0] = 0;
      return;
    }
    const EdgeId base = offsets[s.first];
    for (NodeId i = 0; i <= count; ++i) {
      s.offsets[i] = offsets[s.first + i] - base;
    }
    s.neighbors.assign(neighbors.begin() + base,
                       neighbors.begin() + offsets[last]);
  });
  return sharded;
}

ShardedGraph::Shard ShardedGraph::BuildShard(const EdgeList& edges,
                                             NodeId first, NodeId count) {
  Shard shard;
  shard.first = first;
  shard.offsets.assign(static_cast<size_t>(count) + 1, 0);
  const NodeId hi = first + count;
  const size_t m = edges.size();

  // Symmetrized arcs with source inside [first, hi): index i < m is the
  // forward arc of edge i, index i >= m its reverse. One stable pack keeps
  // only the in-range sources.
  std::vector<Edge> arcs;
  if (m > 0) {
    arcs = ParallelPack<Edge>(
        2 * m,
        [&](size_t i) {
          const Edge& e = edges.edges[i % m];
          const NodeId src = i < m ? e.u : e.v;
          return src >= first && src < hi;
        },
        [&](size_t i) {
          const Edge& e = edges.edges[i % m];
          return i < m ? e : Edge{e.v, e.u};
        });
  }
  // Same comparator and filter as BuildFromArcs (builder.cc): restricting
  // to a source range commutes with sorting by (source, target) and with
  // removing self loops / adjacent duplicates, which is what makes the
  // per-shard result identical to the corresponding slice of BuildGraph.
  ParallelSort(arcs, [](const Edge& a, const Edge& b) {
    return a.u < b.u || (a.u == b.u && a.v < b.v);
  });
  std::vector<Edge> kept = ParallelPack<Edge>(
      arcs.size(),
      [&](size_t i) {
        const Edge& e = arcs[i];
        if (e.u == e.v) return false;
        if (i > 0 && arcs[i - 1] == e) return false;
        return true;
      },
      [&](size_t i) { return arcs[i]; });
  arcs.clear();
  arcs.shrink_to_fit();

  ParallelFor(0, kept.size(), [&](size_t i) {
    FetchAdd<EdgeId>(&shard.offsets[kept[i].u - first + 1], 1);
  });
  for (size_t v = 1; v <= count; ++v) shard.offsets[v] += shard.offsets[v - 1];
  shard.neighbors.resize(kept.size());
  ParallelFor(0, kept.size(),
              [&](size_t i) { shard.neighbors[i] = kept[i].v; });
  return shard;
}

Graph ShardedGraph::Flatten() const {
  std::vector<EdgeId> offsets(static_cast<size_t>(num_nodes_) + 1, 0);
  std::vector<NodeId> neighbors(num_arcs_);
  // Per-shard arc base: exclusive prefix sum over shard arc counts.
  std::vector<EdgeId> bases(shards_.size() + 1, 0);
  for (size_t si = 0; si < shards_.size(); ++si) {
    bases[si + 1] = bases[si] + shards_[si].arcs();
  }
  ParallelFor(
      0, shards_.size(),
      [&](size_t si) {
        const Shard& s = shards_[si];
        const NodeId count = s.count();
        for (NodeId i = 0; i < count; ++i) {
          offsets[s.first + i] = bases[si] + s.offsets[i];
        }
        std::copy(s.neighbors.begin(), s.neighbors.end(),
                  neighbors.begin() + bases[si]);
      },
      /*grain=*/1);
  offsets[num_nodes_] = num_arcs_;
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace connectit
