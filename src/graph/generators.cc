#include "src/graph/generators.h"

#include <cassert>
#include <cmath>

#include "src/graph/builder.h"
#include "src/parallel/random.h"
#include "src/parallel/thread_pool.h"

namespace connectit {

namespace {

// Draws one RMAT edge by descending log2(n) levels of the recursive matrix.
Edge RmatEdge(NodeId scale_bits, const Rng& rng, uint64_t index, double a,
              double ab, double abc) {
  NodeId u = 0;
  NodeId v = 0;
  for (NodeId bit = 0; bit < scale_bits; ++bit) {
    const double r = rng.GetDouble(index * 64 + bit);
    if (r < a) {
      // quadrant (0, 0)
    } else if (r < ab) {
      v |= (NodeId{1} << bit);
    } else if (r < abc) {
      u |= (NodeId{1} << bit);
    } else {
      u |= (NodeId{1} << bit);
      v |= (NodeId{1} << bit);
    }
  }
  return {u, v};
}

NodeId CeilLog2(NodeId n) {
  NodeId bits = 0;
  while ((NodeId{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace

EdgeList GenerateRmatEdges(NodeId num_nodes, EdgeId num_edges, uint64_t seed,
                           double a, double b, double c) {
  assert(a + b + c <= 1.0);
  EdgeList list;
  list.num_nodes = num_nodes;
  if (num_nodes < 2) return list;
  const NodeId bits = CeilLog2(num_nodes);
  const double ab = a + b;
  const double abc = a + b + c;
  Rng rng(seed);
  list.edges.resize(num_edges);
  ParallelFor(0, num_edges, [&](size_t i) {
    Edge e = RmatEdge(bits, rng, i, a, ab, abc);
    // Clamp into range when num_nodes is not a power of two.
    e.u %= num_nodes;
    e.v %= num_nodes;
    list.edges[i] = e;
  });
  return list;
}

Graph GenerateRmat(NodeId num_nodes, EdgeId num_edges, uint64_t seed,
                   double a, double b, double c) {
  return BuildGraph(GenerateRmatEdges(num_nodes, num_edges, seed, a, b, c));
}

EdgeList GenerateBarabasiAlbertEdges(NodeId num_nodes, NodeId edges_per_node,
                                     uint64_t seed) {
  EdgeList list;
  list.num_nodes = num_nodes;
  if (num_nodes < 2) return list;
  Rng rng(seed);
  // Preferential attachment via the repeated-endpoints trick: each arriving
  // vertex v picks targets uniformly from the array of all previous edge
  // endpoints (so probability is proportional to degree). Sequential by
  // nature; the generator is offline setup code.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(num_nodes) * edges_per_node * 2);
  uint64_t draw = 0;
  for (NodeId v = 1; v < num_nodes; ++v) {
    const NodeId k = std::min<NodeId>(edges_per_node, v);
    for (NodeId j = 0; j < k; ++j) {
      NodeId target;
      if (endpoints.empty()) {
        target = 0;
      } else {
        target = endpoints[rng.GetBounded(draw++, endpoints.size())];
      }
      list.edges.push_back({v, target});
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return list;
}

Graph GenerateBarabasiAlbert(NodeId num_nodes, NodeId edges_per_node,
                             uint64_t seed) {
  return BuildGraph(
      GenerateBarabasiAlbertEdges(num_nodes, edges_per_node, seed));
}

EdgeList GenerateErdosRenyiEdges(NodeId num_nodes, EdgeId num_edges,
                                 uint64_t seed) {
  EdgeList list;
  list.num_nodes = num_nodes;
  if (num_nodes < 2) return list;
  Rng rng(seed);
  list.edges.resize(num_edges);
  ParallelFor(0, num_edges, [&](size_t i) {
    const NodeId u = static_cast<NodeId>(rng.GetBounded(2 * i, num_nodes));
    const NodeId v =
        static_cast<NodeId>(rng.GetBounded(2 * i + 1, num_nodes));
    list.edges[i] = {u, v};
  });
  return list;
}

Graph GenerateErdosRenyi(NodeId num_nodes, EdgeId num_edges, uint64_t seed) {
  return BuildGraph(GenerateErdosRenyiEdges(num_nodes, num_edges, seed));
}

Graph GenerateGrid(NodeId width, NodeId height) {
  EdgeList list;
  list.num_nodes = width * height;
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      const NodeId v = y * width + x;
      if (x + 1 < width) list.edges.push_back({v, v + 1});
      if (y + 1 < height) list.edges.push_back({v, v + width});
    }
  }
  return BuildGraph(list);
}

Graph GeneratePath(NodeId num_nodes) {
  EdgeList list;
  list.num_nodes = num_nodes;
  for (NodeId v = 0; v + 1 < num_nodes; ++v) list.edges.push_back({v, v + 1});
  return BuildGraph(list);
}

Graph GenerateCycle(NodeId num_nodes) {
  EdgeList list;
  list.num_nodes = num_nodes;
  for (NodeId v = 0; v + 1 < num_nodes; ++v) list.edges.push_back({v, v + 1});
  if (num_nodes > 2) list.edges.push_back({num_nodes - 1, 0});
  return BuildGraph(list);
}

Graph GenerateStar(NodeId num_nodes) {
  EdgeList list;
  list.num_nodes = num_nodes;
  for (NodeId v = 1; v < num_nodes; ++v) list.edges.push_back({0, v});
  return BuildGraph(list);
}

Graph GenerateComplete(NodeId num_nodes) {
  EdgeList list;
  list.num_nodes = num_nodes;
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = u + 1; v < num_nodes; ++v) list.edges.push_back({u, v});
  }
  return BuildGraph(list);
}

Graph GenerateComponentMixture(NodeId num_nodes, NodeId num_components,
                               uint64_t seed, NodeId edges_per_vertex) {
  assert(num_components >= 1);
  EdgeList list;
  list.num_nodes = num_nodes;
  Rng rng(seed);
  // Half the vertices go to one massive component; the rest are split into
  // geometrically shrinking blobs, leaving a tail of isolated vertices.
  NodeId offset = 0;
  NodeId remaining = num_nodes;
  NodeId block = num_nodes / 2;
  for (NodeId comp = 0; comp < num_components && block >= 2; ++comp) {
    const NodeId n_c = std::min(block, remaining);
    if (n_c < 2) break;
    // Sparse random blob: 4*n_c edges plus a spanning path so the blob is
    // actually connected.
    Rng comp_rng = rng.Split(comp);
    for (NodeId v = 0; v + 1 < n_c; ++v) {
      list.edges.push_back({offset + v, offset + v + 1});
    }
    const EdgeId extra =
        static_cast<EdgeId>(n_c) *
        (edges_per_vertex > 1 ? edges_per_vertex - 1 : 1);
    for (EdgeId i = 0; i < extra; ++i) {
      const NodeId u = static_cast<NodeId>(comp_rng.GetBounded(2 * i, n_c));
      const NodeId v =
          static_cast<NodeId>(comp_rng.GetBounded(2 * i + 1, n_c));
      list.edges.push_back({offset + u, offset + v});
    }
    offset += n_c;
    remaining -= n_c;
    block = std::max<NodeId>(2, block / 2);
  }
  return BuildGraph(list);
}

}  // namespace connectit
