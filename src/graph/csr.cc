#include "src/graph/csr.h"

#include <cassert>

#include "src/parallel/primitives.h"

namespace connectit {

Graph::Graph(std::vector<EdgeId> offsets, std::vector<NodeId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  assert(!offsets_.empty());
  assert(offsets_.back() == neighbors_.size());
}

DegreeStats ComputeDegreeStats(const Graph& graph) {
  DegreeStats stats;
  const NodeId n = graph.num_nodes();
  if (n == 0) return stats;
  stats.max_degree = ParallelReduce<EdgeId>(
      0, n, 0, [&](size_t v) { return graph.degree(static_cast<NodeId>(v)); },
      [](EdgeId a, EdgeId b) { return a > b ? a : b; });
  stats.avg_degree =
      static_cast<double>(graph.num_arcs()) / static_cast<double>(n);
  return stats;
}

}  // namespace connectit
