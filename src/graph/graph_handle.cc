#include "src/graph/graph_handle.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/graph/builder.h"

namespace connectit {

namespace {
std::atomic<uint64_t> g_coo_csr_materializations{0};
std::atomic<uint64_t> g_sharded_csr_materializations{0};
std::atomic<uint64_t> g_mapped_csr_materializations{0};
}  // namespace

uint64_t CooCsrMaterializations() {
  return g_coo_csr_materializations.load(std::memory_order_relaxed);
}

uint64_t ShardedCsrMaterializations() {
  return g_sharded_csr_materializations.load(std::memory_order_relaxed);
}

uint64_t MappedCsrMaterializations() {
  return g_mapped_csr_materializations.load(std::memory_order_relaxed);
}

const char* ToString(GraphRepresentation rep) {
  switch (rep) {
    case GraphRepresentation::kCsr: return "csr";
    case GraphRepresentation::kCompressed: return "compressed";
    case GraphRepresentation::kCoo: return "coo";
    case GraphRepresentation::kSharded: return "sharded";
    case GraphRepresentation::kMapped: return "mapped";
  }
  return "unknown";
}

struct GraphHandle::FlatCsrCache {
  std::once_flag once;
  std::unique_ptr<const Graph> csr;
};

GraphHandle::GraphHandle(const EdgeList& edges)
    : coo_(&edges), flat_cache_(std::make_shared<FlatCsrCache>()) {}

GraphHandle::GraphHandle(const ShardedGraph& graph)
    : sharded_(&graph), flat_cache_(std::make_shared<FlatCsrCache>()) {}

GraphHandle::GraphHandle(const MappedGraph& graph)
    : mapped_(&graph), flat_cache_(std::make_shared<FlatCsrCache>()) {}

GraphHandle GraphHandle::Adopt(Graph graph) {
  GraphHandle handle;
  auto owned = std::make_shared<Graph>(std::move(graph));
  handle.csr_ = owned.get();
  handle.owned_ = std::move(owned);
  return handle;
}

GraphHandle GraphHandle::Adopt(CompressedGraph graph) {
  GraphHandle handle;
  auto owned = std::make_shared<CompressedGraph>(std::move(graph));
  handle.compressed_ = owned.get();
  handle.owned_ = std::move(owned);
  return handle;
}

GraphHandle GraphHandle::Adopt(EdgeList edges) {
  GraphHandle handle;
  auto owned = std::make_shared<EdgeList>(std::move(edges));
  handle.coo_ = owned.get();
  handle.owned_ = std::move(owned);
  handle.flat_cache_ = std::make_shared<FlatCsrCache>();
  return handle;
}

GraphHandle GraphHandle::Adopt(ShardedGraph graph) {
  GraphHandle handle;
  auto owned = std::make_shared<ShardedGraph>(std::move(graph));
  handle.sharded_ = owned.get();
  handle.owned_ = std::move(owned);
  handle.flat_cache_ = std::make_shared<FlatCsrCache>();
  return handle;
}

GraphHandle GraphHandle::Adopt(MappedGraph graph) {
  GraphHandle handle;
  auto owned = std::make_shared<MappedGraph>(std::move(graph));
  handle.mapped_ = owned.get();
  handle.owned_ = std::move(owned);
  handle.flat_cache_ = std::make_shared<FlatCsrCache>();
  return handle;
}

GraphHandle GraphHandle::Map(const std::string& path, std::string* error) {
  MappedGraph mapped;
  if (!MappedGraph::Map(path, &mapped, error)) return GraphHandle();
  return Adopt(std::move(mapped));
}

GraphHandle GraphHandle::MapOrDie(const std::string& path) {
  std::string error;
  MappedGraph mapped;
  if (!MappedGraph::Map(path, &mapped, &error)) {
    std::fprintf(stderr, "GraphHandle::MapOrDie: %s\n", error.c_str());
    std::abort();
  }
  return Adopt(std::move(mapped));
}

GraphHandle GraphHandle::MapTempOrDie(const Graph& graph) {
  // mkstemp gives a private file; once mapped it is unlinked, so the bytes
  // live only as long as the mapping (the handle family) does.
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                     "/connectit_cgc_XXXXXX";
  const int fd = mkstemp(path.data());
  if (fd < 0) {
    std::fprintf(stderr, "GraphHandle::MapTempOrDie: mkstemp(%s) failed\n",
                 path.c_str());
    std::abort();
  }
  ::close(fd);
  std::string error;
  MappedGraph mapped;
  if (!WriteContainer(path, graph, &error) ||
      !MappedGraph::Map(path, &mapped, &error)) {
    ::unlink(path.c_str());
    std::fprintf(stderr, "GraphHandle::MapTempOrDie: %s\n", error.c_str());
    std::abort();
  }
  ::unlink(path.c_str());
  return Adopt(std::move(mapped));
}

GraphHandle GraphHandle::FromEdges(const EdgeList& edges) {
  return Adopt(edges);
}

GraphHandle GraphHandle::Compress(const Graph& graph) {
  return Adopt(CompressedGraph::Encode(graph));
}

GraphHandle GraphHandle::Shard(const Graph& graph, size_t num_shards) {
  return Adopt(ShardedGraph::Partition(graph, num_shards));
}

const Graph& GraphHandle::MaterializedCsr() const {
  if (coo_ != nullptr) {
    std::call_once(flat_cache_->once, [this] {
      flat_cache_->csr = std::make_unique<const Graph>(BuildGraph(*coo_));
      g_coo_csr_materializations.fetch_add(1, std::memory_order_relaxed);
    });
    return *flat_cache_->csr;
  }
  if (sharded_ != nullptr) {
    // Registry paths never take this branch (the shards serve the full
    // adjacency surface); it exists for flat-CSR-only consumers such as the
    // baselines, and the counter keeps that claim testable.
    std::call_once(flat_cache_->once, [this] {
      flat_cache_->csr = std::make_unique<const Graph>(sharded_->Flatten());
      g_sharded_csr_materializations.fetch_add(1, std::memory_order_relaxed);
    });
    return *flat_cache_->csr;
  }
  if (mapped_ != nullptr) {
    // Same contract as sharded: the mapping serves the full adjacency
    // surface, so registry paths never copy; this exists for flat-CSR-only
    // consumers and the counter keeps zero-copy serving testable.
    std::call_once(flat_cache_->once, [this] {
      flat_cache_->csr = std::make_unique<const Graph>(mapped_->ToGraph());
      g_mapped_csr_materializations.fetch_add(1, std::memory_order_relaxed);
    });
    return *flat_cache_->csr;
  }
  // A CSR handle is its own materialization. Compressed handles serve the
  // adjacency surface directly and must not be silently flattened to the
  // empty graph here — abort even in Release builds rather than return a
  // 0-vertex graph.
  if (compressed_ != nullptr) {
    std::fprintf(stderr,
                 "MaterializedCsr: compressed handles already provide "
                 "adjacency; use Visit\n");
    std::abort();
  }
  return csr_ != nullptr ? *csr_ : EmptyGraph();
}

const Graph& GraphHandle::EmptyGraph() {
  static const Graph* empty = new Graph();
  return *empty;
}

}  // namespace connectit
