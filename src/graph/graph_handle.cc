#include "src/graph/graph_handle.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "src/graph/builder.h"

namespace connectit {

namespace {
std::atomic<uint64_t> g_coo_csr_materializations{0};
}  // namespace

uint64_t CooCsrMaterializations() {
  return g_coo_csr_materializations.load(std::memory_order_relaxed);
}

const char* ToString(GraphRepresentation rep) {
  switch (rep) {
    case GraphRepresentation::kCsr: return "csr";
    case GraphRepresentation::kCompressed: return "compressed";
    case GraphRepresentation::kCoo: return "coo";
  }
  return "unknown";
}

struct GraphHandle::CooCsrCache {
  std::once_flag once;
  std::unique_ptr<const Graph> csr;
};

GraphHandle::GraphHandle(const EdgeList& edges)
    : coo_(&edges), coo_cache_(std::make_shared<CooCsrCache>()) {}

GraphHandle GraphHandle::Adopt(Graph graph) {
  GraphHandle handle;
  auto owned = std::make_shared<Graph>(std::move(graph));
  handle.csr_ = owned.get();
  handle.owned_ = std::move(owned);
  return handle;
}

GraphHandle GraphHandle::Adopt(CompressedGraph graph) {
  GraphHandle handle;
  auto owned = std::make_shared<CompressedGraph>(std::move(graph));
  handle.compressed_ = owned.get();
  handle.owned_ = std::move(owned);
  return handle;
}

GraphHandle GraphHandle::Adopt(EdgeList edges) {
  GraphHandle handle;
  auto owned = std::make_shared<EdgeList>(std::move(edges));
  handle.coo_ = owned.get();
  handle.owned_ = std::move(owned);
  handle.coo_cache_ = std::make_shared<CooCsrCache>();
  return handle;
}

GraphHandle GraphHandle::FromEdges(const EdgeList& edges) {
  return Adopt(edges);
}

GraphHandle GraphHandle::Compress(const Graph& graph) {
  return Adopt(CompressedGraph::Encode(graph));
}

const Graph& GraphHandle::MaterializedCsr() const {
  if (coo_ != nullptr) {
    std::call_once(coo_cache_->once, [this] {
      coo_cache_->csr = std::make_unique<const Graph>(BuildGraph(*coo_));
      g_coo_csr_materializations.fetch_add(1, std::memory_order_relaxed);
    });
    return *coo_cache_->csr;
  }
  // A CSR handle is its own materialization. Compressed handles serve the
  // adjacency surface directly and must not be silently flattened to the
  // empty graph here — abort even in Release builds rather than return a
  // 0-vertex graph.
  if (compressed_ != nullptr) {
    std::fprintf(stderr,
                 "MaterializedCsr: compressed handles already provide "
                 "adjacency; use Visit\n");
    std::abort();
  }
  return csr_ != nullptr ? *csr_ : EmptyGraph();
}

const Graph& GraphHandle::EmptyGraph() {
  static const Graph* empty = new Graph();
  return *empty;
}

}  // namespace connectit
