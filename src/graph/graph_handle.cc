#include "src/graph/graph_handle.h"

#include "src/graph/builder.h"

namespace connectit {

const char* ToString(GraphRepresentation rep) {
  switch (rep) {
    case GraphRepresentation::kCsr: return "csr";
    case GraphRepresentation::kCompressed: return "compressed";
  }
  return "unknown";
}

GraphHandle GraphHandle::Adopt(Graph graph) {
  GraphHandle handle;
  auto owned = std::make_shared<Graph>(std::move(graph));
  handle.csr_ = owned.get();
  handle.owned_ = std::move(owned);
  return handle;
}

GraphHandle GraphHandle::Adopt(CompressedGraph graph) {
  GraphHandle handle;
  auto owned = std::make_shared<CompressedGraph>(std::move(graph));
  handle.compressed_ = owned.get();
  handle.owned_ = std::move(owned);
  return handle;
}

GraphHandle GraphHandle::FromEdges(const EdgeList& edges) {
  return Adopt(BuildGraph(edges));
}

GraphHandle GraphHandle::Compress(const Graph& graph) {
  return Adopt(CompressedGraph::Encode(graph));
}

const Graph& GraphHandle::EmptyGraph() {
  static const Graph* empty = new Graph();
  return *empty;
}

}  // namespace connectit
