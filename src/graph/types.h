// Fundamental graph typedefs shared across the library.

#ifndef CONNECTIT_GRAPH_TYPES_H_
#define CONNECTIT_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>
#include <utility>

namespace connectit {

// Vertex identifier. 32 bits covers every graph this build targets; the
// reference system uses the same width for its in-memory label arrays.
using NodeId = uint32_t;

// Edge offset/count type (graphs may have > 4B edges in principle).
using EdgeId = uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

// An undirected edge as an endpoint pair (COO entry).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

}  // namespace connectit

#endif  // CONNECTIT_GRAPH_TYPES_H_
