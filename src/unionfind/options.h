// Option enums spanning the concurrent union-find design space (paper
// §3.3.1, Algorithm 7). A union-find variant is a (unite, find, splice)
// triple; splice options only apply to Rem's algorithms.

#ifndef CONNECTIT_UNIONFIND_OPTIONS_H_
#define CONNECTIT_UNIONFIND_OPTIONS_H_

#include <string_view>

namespace connectit {

enum class UniteOption {
  kAsync,    // classic asynchronous union-find (Jayanti-Tarjan style)
  kHooks,    // CAS on an auxiliary hooks array, plain write to parents
  kEarly,    // eager hooking while walking both paths together
  kRemCas,   // lock-free Rem's algorithm (this paper's contribution)
  kRemLock,  // lock-based Rem's algorithm (Patwary et al.)
  kJtb,      // randomized two-try splitting (Jayanti-Tarjan-Boix-Adsera)
};

enum class FindOption {
  kNaive,        // no compaction
  kSplit,        // atomic path splitting
  kHalve,        // atomic path halving
  kCompress,     // full path compression
  kTwoTrySplit,  // JTB's provably-efficient two-try splitting
};

enum class SpliceOption {
  kNone,      // not a Rem variant
  kSplitOne,  // one atomic path split per non-root step
  kHalveOne,  // one atomic path halve per non-root step
  kSplice,    // Rem's splicing (phase-concurrent only)
};

// Memory placement of the parent array (ROADMAP "NUMA-aware DSU"). kFlat is
// the classic single shared array; kNumaReplicated adds per-NUMA-node
// ancestor-hint replicas in front of it (src/unionfind/numa_dsu.h), falling
// back to kFlat behavior on single-node topologies.
enum class PlacementOption {
  kFlat,            // one shared parent array
  kNumaReplicated,  // per-node replicas + adaptive cross-node compression
};

constexpr std::string_view ToString(UniteOption u) {
  switch (u) {
    case UniteOption::kAsync: return "Union-Async";
    case UniteOption::kHooks: return "Union-Hooks";
    case UniteOption::kEarly: return "Union-Early";
    case UniteOption::kRemCas: return "Union-Rem-CAS";
    case UniteOption::kRemLock: return "Union-Rem-Lock";
    case UniteOption::kJtb: return "Union-JTB";
  }
  return "?";
}

constexpr std::string_view ToString(FindOption f) {
  switch (f) {
    case FindOption::kNaive: return "FindNaive";
    case FindOption::kSplit: return "FindSplit";
    case FindOption::kHalve: return "FindHalve";
    case FindOption::kCompress: return "FindCompress";
    case FindOption::kTwoTrySplit: return "FindTwoTrySplit";
  }
  return "?";
}

constexpr std::string_view ToString(SpliceOption s) {
  switch (s) {
    case SpliceOption::kNone: return "";
    case SpliceOption::kSplitOne: return "SplitAtomicOne";
    case SpliceOption::kHalveOne: return "HalveAtomicOne";
    case SpliceOption::kSplice: return "SpliceAtomic";
  }
  return "?";
}

constexpr std::string_view ToString(PlacementOption p) {
  switch (p) {
    case PlacementOption::kFlat: return "";
    case PlacementOption::kNumaReplicated: return "NumaReplicated";
  }
  return "?";
}

// FindCompress combined with SpliceAtomic is incorrect (paper Appendix
// B.2.3 gives a counter-example); the registry never instantiates it.
constexpr bool IsValidCombination(UniteOption u, FindOption f,
                                  SpliceOption s) {
  const bool is_rem = (u == UniteOption::kRemCas || u == UniteOption::kRemLock);
  if (is_rem) {
    if (s == SpliceOption::kNone) return false;
    if (f == FindOption::kCompress && s == SpliceOption::kSplice) return false;
    if (f == FindOption::kTwoTrySplit) return false;
    return true;
  }
  if (s != SpliceOption::kNone) return false;
  if (u == UniteOption::kJtb) {
    return f == FindOption::kNaive || f == FindOption::kTwoTrySplit;
  }
  return f != FindOption::kTwoTrySplit;
}

// Validity mask for the placement axis. The replicated placement caches
// ancestors per node and walks those hint chains without revalidation, which
// is only sound for min-based unite rules (parent values strictly decrease
// toward the root, so any cached value stays an ancestor forever and hint
// chains terminate). Union-JTB links by random priority — parents may
// *increase* along a path — so it (and therefore FindTwoTrySplit, which only
// pairs with it) keeps the flat placement.
constexpr bool IsValidPlacement(UniteOption u, FindOption f, SpliceOption s,
                                PlacementOption p) {
  if (!IsValidCombination(u, f, s)) return false;
  if (p == PlacementOption::kFlat) return true;
  return u != UniteOption::kJtb;
}

}  // namespace connectit

#endif  // CONNECTIT_UNIONFIND_OPTIONS_H_
