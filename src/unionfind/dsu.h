// Concurrent union-find variants (paper §3.3.1, Algorithms 10-14).
//
// Dsu<unite, find, splice> is a compile-time composition of a unite rule, a
// find/compaction rule, and (for Rem's algorithms) a splice rule. All unite
// rules are min-based and link only roots, except Rem's splice steps which
// may redirect non-root vertices (always to smaller parent values,
// preserving acyclicity).
//
// Unite returns the root it hooked (needed by spanning forest) or
// kInvalidNode when the endpoints were already connected.

#ifndef CONNECTIT_UNIONFIND_DSU_H_
#define CONNECTIT_UNIONFIND_DSU_H_

#include <memory>
#include <vector>

#include "src/graph/types.h"
#include "src/parallel/atomics.h"
#include "src/parallel/random.h"
#include "src/parallel/thread_pool.h"
#include "src/unionfind/find.h"
#include "src/unionfind/options.h"
#include "src/unionfind/splice.h"

namespace connectit {

// Fully compresses a quiescent parent forest so every vertex points directly
// at its root. Only call when no unions are in flight.
//
// Blocked with path-halving inside the block: each walked vertex is
// CAS-redirected to its grandparent, so chains shared by many vertices in
// the same block are only walked at full length once. The halving CAS can
// never undo a finalized parents[v] = root store — the CAS expects the
// stale parent value, and a vertex whose parent is its root produces no
// halving write — so the all-roots postcondition holds under concurrent
// blocks.
inline void FullyCompressParents(NodeId* parents, NodeId n) {
  ParallelForBlocked(
      0, n,
      [&](size_t lo, size_t hi) {
        for (size_t vi = lo; vi < hi; ++vi) {
          const NodeId v = static_cast<NodeId>(vi);
          NodeId x = v;
          NodeId p = AtomicLoadRelaxed(&parents[x]);
          while (p != x) {
            const NodeId gp = AtomicLoadRelaxed(&parents[p]);
            if (gp == p) {  // p is the root
              p = gp;
              break;
            }
            CompareAndSwap(&parents[x], p, gp);
            x = p;
            p = gp;
          }
          AtomicStore(&parents[v], p);
        }
      },
      /*grain=*/2048);
}

template <UniteOption kUnite, FindOption kFind,
          SpliceOption kSplice = SpliceOption::kNone>
class Dsu {
  static_assert(IsValidCombination(kUnite, kFind, kSplice),
                "invalid (unite, find, splice) combination");

 public:
  // Binds to an external parent array of size n. The array must already be
  // a valid rooted forest (e.g., the identity, or a sampling method's
  // output satisfying Definition 3.1).
  Dsu(NodeId* parents, NodeId n) : parents_(parents), n_(n) {
    if constexpr (kUnite == UniteOption::kHooks) {
      hooks_.assign(n, kInvalidNode);
    }
    if constexpr (kUnite == UniteOption::kRemLock) {
      locks_ = std::make_unique<std::atomic<uint8_t>[]>(n);
      for (NodeId i = 0; i < n; ++i) {
        locks_[i].store(0, std::memory_order_relaxed);
      }
    }
  }

  NodeId* parents() { return parents_; }
  NodeId num_nodes() const { return n_; }

  NodeId Find(NodeId u) { return connectit::Find<kFind>(u, parents_); }

  // Connectivity query; wait-free for all variants.
  bool SameSet(NodeId u, NodeId v) {
    // Standard concurrent same-set loop: re-check that the first root is
    // still a root after finding the second.
    while (true) {
      const NodeId ru = Find(u);
      const NodeId rv = Find(v);
      if (ru == rv) return true;
      if (AtomicLoad(&parents_[ru]) == ru) return false;
    }
  }

  NodeId Unite(NodeId u, NodeId v) {
    if constexpr (kUnite == UniteOption::kAsync) {
      return UniteAsync(u, v);
    } else if constexpr (kUnite == UniteOption::kHooks) {
      return UniteHooks(u, v);
    } else if constexpr (kUnite == UniteOption::kEarly) {
      return UniteEarly(u, v);
    } else if constexpr (kUnite == UniteOption::kRemCas) {
      return UniteRemCas(u, v);
    } else if constexpr (kUnite == UniteOption::kRemLock) {
      return UniteRemLock(u, v);
    } else {
      return UniteJtb(u, v);
    }
  }

 private:
  // Algorithm 10: link the larger root under the smaller, retrying with
  // fresh finds on CAS failure.
  NodeId UniteAsync(NodeId u, NodeId v) {
    NodeId pu = Find(u);
    NodeId pv = Find(v);
    while (pu != pv) {
      if (pu < pv) std::swap(pu, pv);
      if (CompareAndSwap(&parents_[pu], pu, pv)) {
        stats::RecordParentWrites(1);
        return pu;
      }
      pu = Find(pu);
      pv = Find(pv);
    }
    return kInvalidNode;
  }

  // Algorithm 11: claim the root via CAS on the hooks array, then perform
  // an uncontended write on the parent array.
  NodeId UniteHooks(NodeId u, NodeId v) {
    while (true) {
      const NodeId pu = Find(u);
      const NodeId pv = Find(v);
      if (pu == pv) return kInvalidNode;
      const NodeId hi = std::max(pu, pv);
      const NodeId lo = std::min(pu, pv);
      if (CompareAndSwap(&hooks_[hi], kInvalidNode, lo)) {
        AtomicStore(&parents_[hi], lo);
        stats::RecordParentWrites(1);
        return hi;
      }
    }
  }

  // Algorithm 12: walk the larger endpoint up its path, hooking eagerly
  // the moment it is observed to be a root. Optionally compresses the
  // original endpoints afterwards (any find option other than kNaive).
  NodeId UniteEarly(NodeId u, NodeId v) {
    const NodeId orig_u = u;
    const NodeId orig_v = v;
    NodeId hooked = kInvalidNode;
    uint64_t hops = 0;
    while (true) {
      if (u == v) break;
      if (u < v) std::swap(u, v);
      const NodeId pu = AtomicLoad(&parents_[u]);
      ++hops;
      if (pu == u && CompareAndSwap(&parents_[u], u, v)) {
        stats::RecordParentWrites(1);
        hooked = u;
        break;
      }
      if (pu == u) {
        // Lost the hook race; re-read the fresh parent.
        u = AtomicLoad(&parents_[u]);
        ++hops;
        continue;
      }
      // Eagerly compact one step (grandparent shortcut) while walking up,
      // which keeps the walked paths short.
      const NodeId gp = AtomicLoad(&parents_[pu]);
      ++hops;
      if (gp != pu) CompareAndSwap(&parents_[u], pu, gp);
      u = pu;
    }
    stats::RecordPath(hops);
    stats::RecordParentReads(hops);
    if constexpr (kFind != FindOption::kNaive) {
      Find(orig_u);
      Find(orig_v);
    }
    return hooked;
  }

  // Algorithm 14: lock-free Rem's algorithm. Positions rx/ry carry the
  // invariant "link from larger parent value to smaller"; non-root steps
  // apply the splice rule.
  NodeId UniteRemCas(NodeId u, NodeId v) {
    NodeId rx = u;
    NodeId ry = v;
    NodeId px = AtomicLoad(&parents_[rx]);
    NodeId py = AtomicLoad(&parents_[ry]);
    stats::RecordParentReads(2);
    while (px != py) {
      if (px < py) {
        std::swap(rx, ry);
        std::swap(px, py);
      }
      if (rx == px) {  // rx is a root with the larger value
        if (CompareAndSwap(&parents_[rx], rx, py)) {
          stats::RecordParentWrites(1);
          return rx;
        }
      } else {
        rx = Splice<kSplice>(rx, ry, parents_);
      }
      px = AtomicLoad(&parents_[rx]);
      py = AtomicLoad(&parents_[ry]);
      stats::RecordParentReads(2);
    }
    return kInvalidNode;
  }

  // Algorithm 13: Patwary et al.'s lock-based Rem's algorithm. The root
  // link is performed under a per-vertex spinlock with a re-check.
  NodeId UniteRemLock(NodeId u, NodeId v) {
    NodeId rx = u;
    NodeId ry = v;
    NodeId px = AtomicLoad(&parents_[rx]);
    NodeId py = AtomicLoad(&parents_[ry]);
    stats::RecordParentReads(2);
    while (px != py) {
      if (px < py) {
        std::swap(rx, ry);
        std::swap(px, py);
      }
      if (rx == px) {
        LockVertex(rx);
        const NodeId cur_py = AtomicLoad(&parents_[ry]);
        const bool ok =
            (AtomicLoad(&parents_[rx]) == rx) && (cur_py < rx);
        if (ok) {
          AtomicStore(&parents_[rx], cur_py);
          stats::RecordParentWrites(1);
        }
        UnlockVertex(rx);
        if (ok) return rx;
      } else {
        rx = Splice<kSplice>(rx, ry, parents_);
      }
      px = AtomicLoad(&parents_[rx]);
      py = AtomicLoad(&parents_[ry]);
      stats::RecordParentReads(2);
    }
    return kInvalidNode;
  }

  // Jayanti-Tarjan-Boix-Adsera randomized concurrent union: roots are
  // linked by random priority (ties by id), finds use either no compaction
  // ("FindSimple") or two-try splitting.
  NodeId UniteJtb(NodeId u, NodeId v) {
    NodeId ru = Find(u);
    NodeId rv = Find(v);
    while (ru != rv) {
      // ru should be the lower-priority root (the one that gets hooked).
      if (Priority(ru) > Priority(rv) ||
          (Priority(ru) == Priority(rv) && ru < rv)) {
        std::swap(ru, rv);
      }
      if (CompareAndSwap(&parents_[ru], ru, rv)) {
        stats::RecordParentWrites(1);
        return ru;
      }
      ru = Find(ru);
      rv = Find(rv);
    }
    return kInvalidNode;
  }

  static uint64_t Priority(NodeId v) { return Hash64(0x4a544221ULL ^ v); }

  void LockVertex(NodeId v) {
    while (locks_[v].exchange(1, std::memory_order_acquire) != 0) {
      // spin
    }
  }
  void UnlockVertex(NodeId v) {
    locks_[v].store(0, std::memory_order_release);
  }

  NodeId* parents_;
  NodeId n_;
  std::vector<NodeId> hooks_;  // kHooks only
  std::unique_ptr<std::atomic<uint8_t>[]> locks_;  // kRemLock only
};

}  // namespace connectit

#endif  // CONNECTIT_UNIONFIND_DSU_H_
