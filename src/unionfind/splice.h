// Splice rules for Rem's algorithms (paper Algorithm 9): what a union step
// does when positioned at a non-root vertex.

#ifndef CONNECTIT_UNIONFIND_SPLICE_H_
#define CONNECTIT_UNIONFIND_SPLICE_H_

#include "src/graph/types.h"
#include "src/parallel/atomics.h"
#include "src/stats/counters.h"
#include "src/unionfind/options.h"

namespace connectit {

// One atomic path split at u; returns u's (previous) parent, which becomes
// the next position on the path.
inline NodeId SplitAtomicOne(NodeId u, NodeId /*other*/, NodeId* parents) {
  const NodeId v = AtomicLoad(&parents[u]);
  const NodeId w = AtomicLoad(&parents[v]);
  stats::RecordParentReads(2);
  if (v != w) {
    CompareAndSwap(&parents[u], v, w);
    stats::RecordParentWrites(1);
  }
  return v;
}

// One atomic path halve at u; returns u's grandparent.
inline NodeId HalveAtomicOne(NodeId u, NodeId /*other*/, NodeId* parents) {
  const NodeId v = AtomicLoad(&parents[u]);
  const NodeId w = AtomicLoad(&parents[v]);
  stats::RecordParentReads(2);
  if (v != w) {
    CompareAndSwap(&parents[u], v, w);
    stats::RecordParentWrites(1);
  }
  return w;
}

// Rem's splice: redirect u under the other path's parent (only correct
// phase-concurrently; see paper Theorem 3).
inline NodeId SpliceAtomic(NodeId u, NodeId other, NodeId* parents) {
  const NodeId pu = AtomicLoad(&parents[u]);
  const NodeId po = AtomicLoad(&parents[other]);
  stats::RecordParentReads(2);
  if (po < pu) {
    CompareAndSwap(&parents[u], pu, po);
    stats::RecordParentWrites(1);
  }
  return pu;
}

template <SpliceOption kOption>
inline NodeId Splice(NodeId u, NodeId other, NodeId* parents) {
  if constexpr (kOption == SpliceOption::kSplitOne) {
    return SplitAtomicOne(u, other, parents);
  } else if constexpr (kOption == SpliceOption::kHalveOne) {
    return HalveAtomicOne(u, other, parents);
  } else {
    return SpliceAtomic(u, other, parents);
  }
}

}  // namespace connectit

#endif  // CONNECTIT_UNIONFIND_SPLICE_H_
