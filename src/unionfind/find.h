// Find implementations (paper Algorithm 8, plus JTB two-try splitting).
//
// All operate on a shared parent array P where roots satisfy P[r] == r.
// Concurrent mutators only ever lower parent values or redirect a vertex to
// an ancestor, so every loop here terminates.

#ifndef CONNECTIT_UNIONFIND_FIND_H_
#define CONNECTIT_UNIONFIND_FIND_H_

#include "src/graph/types.h"
#include "src/parallel/atomics.h"
#include "src/stats/counters.h"
#include "src/unionfind/options.h"

namespace connectit {

// FindNaive: walk to the root without modifying the tree.
inline NodeId FindNaive(NodeId u, NodeId* parents) {
  NodeId v = u;
  uint64_t hops = 0;
  while (true) {
    const NodeId p = AtomicLoad(&parents[v]);
    ++hops;
    if (p == v) break;
    v = p;
  }
  stats::RecordPath(hops);
  stats::RecordParentReads(hops);
  return v;
}

// FindCompress: find the root, then fully compress the traversed path.
inline NodeId FindCompress(NodeId u, NodeId* parents) {
  NodeId root = u;
  uint64_t hops = 0;
  if (AtomicLoad(&parents[root]) == root) {
    stats::RecordPath(1);
    stats::RecordParentReads(1);
    return root;
  }
  while (true) {
    const NodeId p = AtomicLoad(&parents[root]);
    ++hops;
    if (p == root) break;
    root = p;
  }
  // Second pass: point everything on the path at the root. Plain CAS-free
  // writes are unsafe under concurrent unions; use CAS-with-check writes
  // that only ever move a vertex to an ancestor with a smaller id.
  NodeId v = u;
  while (true) {
    const NodeId p = AtomicLoad(&parents[v]);
    ++hops;
    if (p <= root || p == v) break;
    CompareAndSwap(&parents[v], p, root);
    v = p;
  }
  stats::RecordPath(hops);
  stats::RecordParentReads(hops);
  stats::RecordParentWrites(1);
  return root;
}

// FindAtomicSplit: path splitting — every vertex on the path is redirected
// to its grandparent.
inline NodeId FindAtomicSplit(NodeId u, NodeId* parents) {
  uint64_t hops = 0;
  while (true) {
    const NodeId v = AtomicLoad(&parents[u]);
    const NodeId w = AtomicLoad(&parents[v]);
    hops += 2;
    if (v == w) {
      stats::RecordPath(hops);
      stats::RecordParentReads(hops);
      return v;
    }
    CompareAndSwap(&parents[u], v, w);
    u = v;
  }
}

// FindAtomicHalve: path halving — every other vertex is redirected to its
// grandparent.
inline NodeId FindAtomicHalve(NodeId u, NodeId* parents) {
  uint64_t hops = 0;
  while (true) {
    const NodeId v = AtomicLoad(&parents[u]);
    const NodeId w = AtomicLoad(&parents[v]);
    hops += 2;
    if (v == w) {
      stats::RecordPath(hops);
      stats::RecordParentReads(hops);
      return v;
    }
    CompareAndSwap(&parents[u], v, w);
    u = AtomicLoad(&parents[u]);
  }
}

// FindTwoTrySplit (Jayanti-Tarjan-Boix-Adsera): like path splitting, but a
// failed split is retried once with fresh values before advancing. This is
// the compaction rule behind their O(m * (alpha + log(1 + np/m))) bound.
inline NodeId FindTwoTrySplit(NodeId u, NodeId* parents) {
  uint64_t hops = 0;
  while (true) {
    const NodeId v = AtomicLoad(&parents[u]);
    const NodeId w = AtomicLoad(&parents[v]);
    hops += 2;
    if (v == w) {
      stats::RecordPath(hops);
      stats::RecordParentReads(hops);
      return v;
    }
    if (!CompareAndSwap(&parents[u], v, w)) {
      // Second try with refreshed snapshot.
      const NodeId v2 = AtomicLoad(&parents[u]);
      const NodeId w2 = AtomicLoad(&parents[v2]);
      hops += 2;
      if (v2 != w2) CompareAndSwap(&parents[u], v2, w2);
    }
    u = v;
  }
}

// Runtime-dispatched find (used by generic call sites such as queries).
inline NodeId FindDispatch(FindOption option, NodeId u, NodeId* parents) {
  switch (option) {
    case FindOption::kNaive: return FindNaive(u, parents);
    case FindOption::kSplit: return FindAtomicSplit(u, parents);
    case FindOption::kHalve: return FindAtomicHalve(u, parents);
    case FindOption::kCompress: return FindCompress(u, parents);
    case FindOption::kTwoTrySplit: return FindTwoTrySplit(u, parents);
  }
  return u;
}

// Compile-time find selector.
template <FindOption kOption>
inline NodeId Find(NodeId u, NodeId* parents) {
  if constexpr (kOption == FindOption::kNaive) {
    return FindNaive(u, parents);
  } else if constexpr (kOption == FindOption::kSplit) {
    return FindAtomicSplit(u, parents);
  } else if constexpr (kOption == FindOption::kHalve) {
    return FindAtomicHalve(u, parents);
  } else if constexpr (kOption == FindOption::kCompress) {
    return FindCompress(u, parents);
  } else {
    return FindTwoTrySplit(u, parents);
  }
}

}  // namespace connectit

#endif  // CONNECTIT_UNIONFIND_FIND_H_
