// NUMA-replicated concurrent union-find (ROADMAP "NUMA-aware DSU", in the
// spirit of raid-7's DSU_Adaptive — see SNIPPETS.md Snippet 3).
//
// NumaDsu<unite, find, splice> wraps the flat Dsu with per-NUMA-node
// *ancestor-hint replicas* of the parent array:
//
//  * Node 0 is the home node: the caller's parent array is the single
//    authoritative forest, and home-node workers run the flat algorithm on
//    it unchanged.
//  * Every other node owns a node-local hint array (first-touch allocated on
//    that node). hint[v] is either v (cold) or, with the owner bit set, a
//    vertex that was v's component root when a cross-node walk last
//    resolved v — by monotonicity of union-find (components only merge,
//    min-based parents only decrease) any such value remains an ancestor of
//    v forever, so hints never need invalidation.
//
// An operation on a non-home node first resolves both endpoints through the
// local hint chains (local_find_depth). If the two chains meet at the same
// cached entry the operation completes with zero remote reads — the
// owner-bit fast path. Otherwise the authoritative array is walked read-only
// (cross_node_find_depth; each hop is a remote DRAM hit on a real machine)
// and, adaptively, the discovered root is compressed into the *local*
// replica (cross_node_compressions) instead of writing remote cachelines.
// Actual link writes always go through the embedded flat Dsu, so every
// unite rule's linearization argument carries over verbatim and the final
// labeling equals the flat labeling after FullyCompressParents.
//
// On a single-node topology (k == 1), or when n does not leave headroom for
// the owner bit, no replicas are allocated and every call forwards to the
// flat Dsu — bit-for-bit identical behavior and no counter traffic.
//
// The hint chains rely on min-based linking (cached roots are strictly
// smaller than the vertex, so chains strictly decrease and terminate);
// IsValidPlacement excludes Union-JTB's random-priority linking.

#ifndef CONNECTIT_UNIONFIND_NUMA_DSU_H_
#define CONNECTIT_UNIONFIND_NUMA_DSU_H_

#include <memory>
#include <vector>

#include "src/graph/types.h"
#include "src/parallel/atomics.h"
#include "src/parallel/numa.h"
#include "src/stats/counters.h"
#include "src/unionfind/dsu.h"
#include "src/unionfind/options.h"

namespace connectit {

template <UniteOption kUnite, FindOption kFind,
          SpliceOption kSplice = SpliceOption::kNone>
class NumaDsu {
  static_assert(IsValidPlacement(kUnite, kFind, kSplice,
                                 PlacementOption::kNumaReplicated),
                "NumaReplicated placement requires a min-based unite rule");

 public:
  // Marks a hint entry holding a cached root (vs. cold identity).
  static constexpr NodeId kOwnedBit = NodeId{1} << 31;
  static constexpr NodeId kValueMask = kOwnedBit - 1;
  // A cross-node walk longer than this installs its root locally.
  static constexpr uint64_t kCompressThreshold = 2;

  NumaDsu(NodeId* parents, NodeId n) : dsu_(parents, n), parents_(parents) {
    size_t k = NumaTopology::Get().num_nodes();
    if (n >= kOwnedBit) k = 1;  // vertex ids must fit beside the owner bit
    if (k > 1) {
      hints_.resize(k);
      for (size_t node = 1; node < k; ++node) {
        hints_[node] = AllocateOnNode<NodeId>(
            n, node, [](size_t i) { return static_cast<NodeId>(i); });
      }
    }
  }

  NodeId* parents() { return dsu_.parents(); }
  NodeId num_nodes() const { return dsu_.num_nodes(); }
  size_t num_replicas() const { return hints_.empty() ? 1 : hints_.size(); }

  NodeId Find(NodeId u) {
    NodeId* hints = LocalHints();
    if (hints == nullptr) return dsu_.Find(u);
    uint64_t local = 0, cross = 0, comps = 0;
    const NodeId start = WalkLocal(u, hints, local);
    const NodeId root = CrossResolve(start, u, hints, cross, comps);
    stats::RecordLocality(local, cross, comps);
    return root;
  }

  bool SameSet(NodeId u, NodeId v) {
    NodeId* hints = LocalHints();
    if (hints == nullptr) return dsu_.SameSet(u, v);
    uint64_t local = 0, cross = 0, comps = 0;
    const NodeId su = WalkLocal(u, hints, local);
    const NodeId sv = WalkLocal(v, hints, local);
    if (su == sv) {  // owner-bit fast path: no remote reads at all
      stats::RecordLocality(local, cross, comps);
      return true;
    }
    bool result;
    // Standard concurrent same-set loop on the authoritative array.
    while (true) {
      const NodeId ru = CrossResolve(su, u, hints, cross, comps);
      const NodeId rv = CrossResolve(sv, v, hints, cross, comps);
      if (ru == rv) {
        result = true;
        break;
      }
      ++cross;
      if (AtomicLoad(&parents_[ru]) == ru) {
        result = false;
        break;
      }
    }
    stats::RecordLocality(local, cross, comps);
    return result;
  }

  // Same contract as Dsu::Unite: returns the root this call hooked, or
  // kInvalidNode when the endpoints were already connected. Resolving the
  // endpoints to (near-)roots locally first means the embedded flat unite
  // starts its walk at the top of the tree, so its remote traffic is a few
  // hops instead of a full path.
  NodeId Unite(NodeId u, NodeId v) {
    NodeId* hints = LocalHints();
    if (hints == nullptr) return dsu_.Unite(u, v);
    uint64_t local = 0, cross = 0, comps = 0;
    const NodeId su = WalkLocal(u, hints, local);
    const NodeId sv = WalkLocal(v, hints, local);
    NodeId hooked;
    if (su == sv) {  // owner-bit fast path: already known connected
      hooked = kInvalidNode;
    } else {
      const NodeId ru = CrossResolve(su, u, hints, cross, comps);
      const NodeId rv = CrossResolve(sv, v, hints, cross, comps);
      hooked = (ru == rv) ? kInvalidNode : dsu_.Unite(ru, rv);
    }
    stats::RecordLocality(local, cross, comps);
    return hooked;
  }

 private:
  // The calling thread's hint replica, or nullptr when the flat fallback
  // applies (single node, home node, or an unbound thread).
  NodeId* LocalHints() {
    if (hints_.empty()) return nullptr;
    const size_t node = NumaTopology::CurrentNode();
    if (node == 0 || node >= hints_.size()) return nullptr;
    return hints_[node].get();
  }

  // Follows the local hint chain. Masked values strictly decrease (installs
  // are value-ordered), so the walk terminates without revalidating against
  // the authoritative array.
  NodeId WalkLocal(NodeId u, const NodeId* hints, uint64_t& local) const {
    NodeId x = u;
    for (;;) {
      const NodeId h = AtomicLoadRelaxed(&hints[x]) & kValueMask;
      if (h == x) return x;
      x = h;
      ++local;
    }
  }

  // Walks the authoritative array read-only from `start` to the root,
  // counting each hop as a cross-node read. Long walks adaptively install
  // the root into the local replica for both the chain end and the original
  // endpoint, so the *next* operation touching this component stays local.
  NodeId CrossResolve(NodeId start, NodeId orig, NodeId* hints,
                      uint64_t& cross, uint64_t& comps) {
    NodeId root = start;
    uint64_t walk = 0;
    for (;;) {
      const NodeId p = AtomicLoad(&parents_[root]);
      ++walk;
      if (p == root) break;
      root = p;
    }
    cross += walk;
    if (walk > kCompressThreshold) {
      comps += InstallHint(hints, start, root);
      if (orig != start) comps += InstallHint(hints, orig, root);
    }
    return root;
  }

  // Value-ordered install: only ever caches a strictly smaller vertex, which
  // keeps hint chains acyclic under concurrent racing installs (both racers
  // write valid ancestors; whichever lands is correct).
  static uint64_t InstallHint(NodeId* hints, NodeId x, NodeId root) {
    if (root >= x) return 0;
    AtomicStore(&hints[x], root | kOwnedBit);
    return 1;
  }

  Dsu<kUnite, kFind, kSplice> dsu_;
  NodeId* parents_;
  // hints_[node] for node >= 1; empty in the flat fallback. Entry encoding:
  // identity (cold) or cached-root | kOwnedBit.
  std::vector<std::unique_ptr<NodeId[]>> hints_;
};

}  // namespace connectit

#endif  // CONNECTIT_UNIONFIND_NUMA_DSU_H_
