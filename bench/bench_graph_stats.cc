// Reproduces Table 2: graph inputs with vertex/edge counts, (effective)
// diameter, number of components, and largest component size — for the
// synthetic suite that substitutes for the paper's datasets.

#include <cinttypes>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/algo/verify.h"

int main() {
  using namespace connectit;
  bench::PrintTitle("Table 2: graph inputs (synthetic substitution suite)");
  std::printf("%-10s %12s %14s %8s %12s %14s\n", "Dataset", "n", "m",
              "Diam.", "Num.Comps", "LargestComp");
  for (const auto& [name, graph] : bench::Suite()) {
    const ComponentStats stats =
        ComputeComponentStats(SequentialComponents(graph));
    const NodeId diameter = EstimateEffectiveDiameter(graph);
    std::printf("%-10s %12u %14" PRIu64 " %7u* %12u %14u\n", name.c_str(),
                graph.num_nodes(), graph.num_edges(),
                diameter, stats.num_components, stats.largest_component);
  }
  std::printf("\n(*) effective diameter: BFS eccentricity from the largest\n"
              "component's minimum vertex, a lower bound as in the paper.\n");
  return 0;
}
