// Reproduces Figures 6, 7, 9, 10: Max Path Length and Total Path Length vs
// running time for the union-find variants, plus the parent-array access
// proxy standing in for LLC misses / memory traffic (DESIGN.md §4). Also
// prints the Pearson correlation of each statistic with running time, the
// paper's headline analysis numbers (TPL ~0.738, MPL ~0.344).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/registry.h"
#include "src/stats/counters.h"

namespace {

double Pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = x.size();
  double sx = 0, sy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double num = 0, dx = 0, dy = 0;
  for (size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    dx += (x[i] - mx) * (x[i] - mx);
    dy += (y[i] - my) * (y[i] - my);
  }
  return num / std::sqrt(dx * dy);
}

}  // namespace

int main() {
  using namespace connectit;
  const auto suite = bench::SmallSuite();

  bench::PrintTitle(
      "Figures 6/7/9/10: path-length and access statistics vs running time "
      "(union-find, No Sampling)");
  std::printf("%-44s %-8s %10s %8s %14s %16s\n", "Variant", "Graph",
              "Time(s)", "MPL", "TPL", "ParentAccesses");

  std::vector<double> times, mpls, tpls, accesses;
  for (const Variant* v : VariantsOfFamily(AlgorithmFamily::kUnionFind)) {
    for (const auto& bg : suite) {
      stats::ScopedEnable scope;
      const double t = bench::TimeIt([&] { v->run(bg.graph, {}); });
      const stats::Snapshot s = stats::Read();
      std::printf("%-44s %-8s %10.4e %8llu %14llu %16llu\n", v->name.c_str(),
                  bg.name.c_str(), t,
                  static_cast<unsigned long long>(s.max_path_length),
                  static_cast<unsigned long long>(s.total_path_length),
                  static_cast<unsigned long long>(s.parent_reads +
                                                  s.parent_writes));
      times.push_back(t);
      mpls.push_back(static_cast<double>(s.max_path_length));
      tpls.push_back(static_cast<double>(s.total_path_length));
      accesses.push_back(
          static_cast<double>(s.parent_reads + s.parent_writes));
    }
  }
  bench::PrintRule();
  std::printf("Pearson correlation with running time:\n");
  std::printf("  Total Path Length : %.3f   (paper: 0.738)\n",
              Pearson(tpls, times));
  std::printf("  Max Path Length   : %.3f   (paper: 0.344, weaker)\n",
              Pearson(mpls, times));
  std::printf("  Parent accesses   : %.3f   (paper LLC misses: 0.797)\n",
              Pearson(accesses, times));
  std::printf(
      "\nExpected shape: TPL and memory accesses predict running time much\n"
      "better than MPL does.\n");
  return 0;
}
