// Reproduces Figures 22, 23, 24: the four k-out sampling strategies
// (afforest / pure / hybrid / maxdeg) swept over k — sampling time,
// fraction of inter-component edges (log-interpretable), and coverage.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/connectit.h"
#include "src/core/sampling.h"

int main() {
  using namespace connectit;
  const auto suite = bench::Suite();
  const KOutVariant variants[] = {KOutVariant::kAfforest, KOutVariant::kPure,
                                  KOutVariant::kHybrid,
                                  KOutVariant::kMaxDegree};

  bench::PrintTitle(
      "Figures 22-24: k-out sampling sweep over k and strategy (time / "
      "inter-component fraction / coverage)");
  std::printf("%-10s %-14s %3s %12s %12s %12s\n", "Graph", "Strategy", "k",
              "Time(s)", "PctIC", "Coverage");
  for (const auto& [name, graph] : suite) {
    for (const KOutVariant variant : variants) {
      for (uint32_t k = 1; k <= 5; ++k) {
        KOutOptions options;
        options.variant = variant;
        options.k = k;
        std::vector<NodeId> labels;
        const double t = bench::TimeBest(
            [&] {
              labels = IdentityLabels(graph.num_nodes());
              KOutSample(graph, options, labels);
            },
            2);
        const SamplingQuality q = MeasureSamplingQuality(graph, labels);
        std::printf("%-10s %-14s %3u %12.4e %11.5f%% %11.2f%%\n",
                    name.c_str(), std::string(ToString(variant)).c_str(), k,
                    t, 100 * q.intercomponent_fraction, 100 * q.coverage);
      }
    }
  }
  std::printf(
      "\nExpected shape (paper): k=1 performs poorly for all schemes except\n"
      "maxdeg on power-law graphs; for k>=2 only a tiny fraction of\n"
      "inter-component edges remains (far below the n/k bound); maxdeg is\n"
      "the most expensive scheme; hybrid tracks afforest at k=1 and pure at\n"
      "larger k.\n");
  return 0;
}
