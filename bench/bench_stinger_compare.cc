// Reproduces Table 5: STINGER's streaming connected components vs
// ConnectIt's Union-Rem-CAS (SplitAtomicOne) when inserting RMAT batches of
// varying sizes into an initially empty graph. Times for STINGER cover only
// its label maintenance (its adjacency update time is excluded), matching
// the paper's protocol.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/stinger_cc.h"
#include "src/core/registry.h"
#include "src/graph/generators.h"

int main() {
  using namespace connectit;
  const NodeId n = bench::LargeScale() ? (1u << 20) : (1u << 17);
  const Variant* v = &DefaultVariant();

  bench::PrintTitle(
      "Table 5: STINGER-style streaming CC vs ConnectIt (RMAT inserts into "
      "an empty graph)");
  std::printf("%10s %14s %14s %14s %14s %10s\n", "BatchSize", "STINGER(s)",
              "STINGER(up/s)", "ConnectIt(s)", "ConnectIt(up/s)", "Speedup");

  const size_t max_batch = bench::LargeScale() ? 2000000 : 200000;
  size_t stream_index = 0;
  for (size_t batch = 10; batch <= max_batch; batch *= 10) {
    // Fresh structures per batch size, several batches each to stabilize.
    const size_t num_batches = 4;
    const EdgeList edges = GenerateRmatEdges(
        n, batch * num_batches, /*seed=*/1000 + stream_index++);
    const auto chunks = bench::SliceBatches(edges.edges, batch);

    StingerStreamingCC stinger(n);
    double stinger_time = 0;
    for (const std::vector<Edge>& chunk : chunks) {
      stinger_time += stinger.InsertBatch(chunk);
    }
    stinger_time /= num_batches;

    auto alg = v->make_streaming(StreamingSeed::Cold(n));
    double connectit_time = 0;
    for (const std::vector<Edge>& chunk : chunks) {
      connectit_time += bench::TimeIt([&] { alg->ProcessBatch(chunk, {}); });
    }
    connectit_time /= num_batches;

    std::printf("%10zu %14.3e %14.3e %14.3e %14.3e %9.0fx\n", batch,
                stinger_time, batch / stinger_time, connectit_time,
                batch / connectit_time, stinger_time / connectit_time);
  }
  std::printf(
      "\nExpected shape (paper): ConnectIt outperforms the STINGER-style\n"
      "algorithm by 3-4 orders of magnitude (1,461x-28,364x in the paper);\n"
      "even tiny ConnectIt batches beat STINGER's largest batches.\n");

  // Bulk-load-then-stream, the shape STINGER deployments actually run
  // (load yesterday's graph, stream today's edges): cold ConnectIt vs
  // ConnectIt seeded from its own static pass over the base graph.
  bench::PrintTitle(
      "Handoff: cold ConnectIt vs static pass + seeded streaming (RMAT, "
      "25% tail, 10k batches)");
  bench::PrintHandoffHeader();
  const EdgeList stream =
      GenerateRmatEdges(n, bench::LargeScale() ? 16ull * n : 8ull * n,
                        /*seed=*/2000);
  bench::PrintHandoffRow(v->name.c_str(),
                         bench::MeasureHandoff(*v, stream, /*batch_size=*/
                                               10000));
  return 0;
}
