// Reproduces Table 5: STINGER's streaming connected components vs
// ConnectIt's Union-Rem-CAS (SplitAtomicOne) when inserting RMAT batches of
// varying sizes into an initially empty graph. Times for STINGER cover only
// its label maintenance (its adjacency update time is excluded), matching
// the paper's protocol.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/stinger_cc.h"
#include "src/core/connectivity_index.h"
#include "src/core/registry.h"
#include "src/graph/generators.h"

int main() {
  using namespace connectit;
  const NodeId n = bench::LargeScale() ? (1u << 20) : (1u << 17);
  const Variant* v = &DefaultVariant();

  bench::PrintTitle(
      "Table 5: STINGER-style streaming CC vs ConnectIt (RMAT inserts into "
      "an empty graph)");
  std::printf("%10s %14s %14s %14s %14s %10s\n", "BatchSize", "STINGER(s)",
              "STINGER(up/s)", "ConnectIt(s)", "ConnectIt(up/s)", "Speedup");

  const size_t max_batch = bench::LargeScale() ? 2000000 : 200000;
  size_t stream_index = 0;
  for (size_t batch = 10; batch <= max_batch; batch *= 10) {
    // Fresh structures per batch size, several batches each to stabilize.
    const size_t num_batches = 4;
    const EdgeList edges = GenerateRmatEdges(
        n, batch * num_batches, /*seed=*/1000 + stream_index++);
    const auto chunks = bench::SliceBatches(edges.edges, batch);

    StingerStreamingCC stinger(n);
    double stinger_time = 0;
    for (const std::vector<Edge>& chunk : chunks) {
      stinger_time += stinger.InsertBatch(chunk);
    }
    stinger_time /= num_batches;

    auto alg = v->make_streaming(StreamingSeed::Cold(n));
    double connectit_time = 0;
    for (const std::vector<Edge>& chunk : chunks) {
      connectit_time += bench::TimeIt([&] { alg->ProcessBatch(chunk, {}); });
    }
    connectit_time /= num_batches;

    std::printf("%10zu %14.3e %14.3e %14.3e %14.3e %9.0fx\n", batch,
                stinger_time, batch / stinger_time, connectit_time,
                batch / connectit_time, stinger_time / connectit_time);
  }
  std::printf(
      "\nExpected shape (paper): ConnectIt outperforms the STINGER-style\n"
      "algorithm by 3-4 orders of magnitude (1,461x-28,364x in the paper);\n"
      "even tiny ConnectIt batches beat STINGER's largest batches.\n");

  // Bulk-load-then-stream, the shape STINGER deployments actually run
  // (load yesterday's graph, stream today's edges): cold ConnectIt vs
  // ConnectIt seeded from its own static pass over the base graph.
  bench::PrintTitle(
      "Handoff: cold ConnectIt vs static pass + seeded streaming (RMAT, "
      "25% tail, 10k batches)");
  bench::PrintHandoffHeader();
  const EdgeList stream =
      GenerateRmatEdges(n, bench::LargeScale() ? 16ull * n : 8ull * n,
                        /*seed=*/2000);
  bench::PrintHandoffRow(v->name.c_str(),
                         bench::MeasureHandoff(*v, stream, /*batch_size=*/
                                               10000));

  // Fully dynamic mix: alternating insert and delete batches. STINGER's
  // native claim is deletion support — here its per-split BFS + O(n)
  // relabel sweep meets ConnectIt's spanning-forest Erase (replacement
  // search, src/core/dynamic_forest.h) through the Connectivity façade.
  // Both sides are timed over the same batch sequence: insert a chunk,
  // then delete half of it.
  bench::PrintTitle(
      "Dynamic mix: alternating insert/delete batches, STINGER-style vs "
      "ConnectIt Erase");
  std::printf("%10s %16s %16s %16s %16s\n", "BatchSize", "STINGER ins(s)",
              "STINGER del(s)", "ConnectIt ins(s)", "ConnectIt del(s)");
  const size_t mix_batch = bench::LargeScale() ? 100000 : 10000;
  const size_t mix_rounds = 4;
  const EdgeList mix_edges =
      GenerateRmatEdges(n, mix_batch * mix_rounds, /*seed=*/3000);
  const auto mix_chunks = bench::SliceBatches(mix_edges.edges, mix_batch);

  StingerStreamingCC stinger(n);
  double stinger_ins = 0;
  double stinger_del = 0;
  std::vector<std::vector<Edge>> deleted_halves;
  for (const std::vector<Edge>& chunk : mix_chunks) {
    stinger_ins += stinger.InsertBatch(chunk);
    deleted_halves.emplace_back(chunk.begin(),
                                chunk.begin() + chunk.size() / 2);
    stinger_del += stinger.EraseBatch(deleted_halves.back());
  }

  Connectivity index(Connectivity::Spec().Algorithm(v->descriptor));
  index.Stream(n);
  index.Insert({mix_edges.edges.front()});
  index.Erase({mix_edges.edges.front()});  // arm the forest untimed
  double connectit_ins = 0;
  double connectit_del = 0;
  for (size_t c = 0; c < mix_chunks.size(); ++c) {
    connectit_ins += bench::TimeIt([&] { index.Insert(mix_chunks[c]); });
    connectit_del += bench::TimeIt([&] { index.Erase(deleted_halves[c]); });
  }
  std::printf("%10zu %16.3e %16.3e %16.3e %16.3e\n", mix_batch,
              stinger_ins / mix_rounds, stinger_del / mix_rounds,
              connectit_ins / mix_rounds, connectit_del / mix_rounds);
  std::printf(
      "\nSTINGER deletion times cover label maintenance only (adjacency\n"
      "excluded, as above); ConnectIt times cover the full Erase — forest\n"
      "maintenance, replacement search, and snapshot publication.\n");
  return 0;
}
