// Serving under traffic: open-loop load against the Connectivity façade.
//
// Replays configurable request mixes (read-mostly, write-heavy, bursty
// arrivals, Zipfian keys, delete-heavy insert+erase churn) from N client
// threads against one Connectivity index while a writer thread applies
// edge batches, for both serving modes:
//
//   snapshot    — epoch-published immutable snapshots, wait-free reads
//   shared-lock — the baseline: shared lock + lazy Θ(n) refresh per batch
//
// The generator is open-loop: every request has a *scheduled* arrival time
// drawn from the offered rate, independent of when earlier requests
// completed, and latency is measured from the scheduled arrival to
// completion — so queueing delay under overload is charged to the server,
// not hidden by a slow closed-loop client (the coordinated-omission trap).
// Client threads partition one logical arrival schedule by index (the
// stateless Rng/Zipfian samplers make request i a pure function of i), so
// the replayed trace is identical across modes and runs.
//
// Reports achieved throughput and p50/p99/p999 latency per mix × mode, and
// writes machine-readable BENCH_serving.json (schema checked in CI by
// tools/check_bench_serving.py).
//
// Flags: --smoke (tiny run for CI), --out=PATH (default BENCH_serving.json),
//        --readers=N (default 4).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/connectivity_index.h"
#include "src/graph/generators.h"
#include "src/parallel/random.h"

namespace connectit::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct MixConfig {
  const char* name;
  bool zipf_keys;       // Zipfian(0.99) keys instead of uniform
  bool bursty;          // square-wave arrivals (10x rate, 10% duty)
  size_t batch_size;    // writer batch size
  double batch_pause_s; // writer sleep between batches (0 = saturating)
  // Fraction of each insert batch the writer deletes again right after
  // inserting it (0 = insert-only). Exercises Connectivity::Erase — forest
  // maintenance and replacement search — under concurrent readers.
  double erase_fraction = 0;
};

struct RunConfig {
  NodeId nodes = 0;
  size_t readers = 4;
  size_t ops = 0;                // total read requests per mix x mode
  double offered_rate = 0;       // requests/second across all readers
  size_t warmup_ops = 0;         // executed, not measured
};

struct MixResult {
  std::string mix;
  std::string mode;
  double offered_rate = 0;
  double achieved_rate = 0;
  size_t ops = 0;
  size_t batches = 0;
  size_t edges_ingested = 0;
  size_t edges_erased = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0, max_us = 0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(sorted.size() - 1,
                              static_cast<size_t>(q * sorted.size()));
  return sorted[idx];
}

// Scheduled arrival (seconds from run start) of request i. Steady arrivals
// space requests 1/rate apart; bursty arrivals compress each 1000-request
// period into its first 10% (10x instantaneous rate), preserving the
// average offered rate.
double ArrivalTime(size_t i, double rate, bool bursty) {
  if (!bursty) return static_cast<double>(i) / rate;
  constexpr size_t kPeriodOps = 1000;
  const double period_s = static_cast<double>(kPeriodOps) / rate;
  const size_t period = i / kPeriodOps;
  const size_t within = i % kPeriodOps;
  return static_cast<double>(period) * period_s +
         static_cast<double>(within) / kPeriodOps * (period_s / 10.0);
}

MixResult RunMix(const MixConfig& mix, ServingMode mode, const RunConfig& cfg,
                 const EdgeList& stream) {
  const size_t bulk = stream.size() / 2;
  EdgeList base;
  base.num_nodes = cfg.nodes;
  base.edges.assign(stream.edges.begin(), stream.edges.begin() + bulk);

  Connectivity index(Connectivity::Spec().Serving(mode));
  index.Build(GraphHandle(base)).Stream();

  // Request i's keys and kind are pure functions of i: identical traces
  // across modes.
  const Rng op_rng(/*seed=*/7);
  const Zipfian zipf(cfg.nodes, /*theta=*/0.99, /*seed=*/11);
  auto key = [&](size_t i, size_t salt) -> NodeId {
    if (mix.zipf_keys) {
      return static_cast<NodeId>(zipf.ScatteredSample(2 * i + salt));
    }
    return static_cast<NodeId>(op_rng.GetBounded(2 * i + salt, cfg.nodes));
  };
  // 90% SameComponent, 5% Component, 4% Acquire + 3 pinned queries,
  // 1% NumComponents.
  auto execute = [&](size_t i) {
    const uint64_t kind = op_rng.Get(i) % 100;
    const NodeId u = key(i, 0), v = key(i, 1);
    if (kind < 90) {
      index.SameComponent(u, v);
    } else if (kind < 95) {
      index.Component(u);
    } else if (kind < 99) {
      const Snapshot snap = index.Acquire();
      snap.SameComponent(u, v);
      snap.Component(u);
      snap.NumComponents();
    } else {
      index.NumComponents();
    }
  };

  // Warmup (unmeasured, closed-loop) so first-touch costs (lazy refresh,
  // page faults) do not land in the measured window.
  for (size_t i = 0; i < cfg.warmup_ops; ++i) execute(i);

  // Writer: cycles the held-out tail as insert batches until readers
  // finish, paced by the mix's batch interval. A delete-heavy mix erases
  // a slice of every batch right after inserting it (which also makes the
  // wrap-around re-inserts meaningful: the erased edges really are gone).
  std::atomic<bool> stop{false};
  std::atomic<size_t> batches{0};
  std::atomic<size_t> edges_ingested{0};
  std::atomic<size_t> edges_erased{0};
  std::thread writer([&] {
    size_t cursor = bulk;
    while (!stop.load(std::memory_order_relaxed)) {
      const size_t end = std::min(cursor + mix.batch_size, stream.size());
      const std::vector<Edge> batch(stream.edges.begin() + cursor,
                                    stream.edges.begin() + end);
      index.Insert(batch);
      edges_ingested.fetch_add(end - cursor, std::memory_order_relaxed);
      batches.fetch_add(1, std::memory_order_relaxed);
      if (mix.erase_fraction > 0 && !batch.empty()) {
        const size_t k = std::max<size_t>(
            1, static_cast<size_t>(batch.size() * mix.erase_fraction));
        index.Erase(std::vector<Edge>(batch.begin(), batch.begin() + k));
        edges_erased.fetch_add(k, std::memory_order_relaxed);
        batches.fetch_add(1, std::memory_order_relaxed);
      }
      cursor = end < stream.size() ? end : bulk;  // wrap: endless ingest
      if (mix.batch_pause_s > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(mix.batch_pause_s));
      }
    }
  });

  // Readers: partition the arrival schedule by index. Latency is
  // completion minus *scheduled* arrival.
  const Clock::time_point t0 = Clock::now() + std::chrono::milliseconds(10);
  std::vector<std::vector<double>> lat_us(cfg.readers);
  std::vector<Clock::time_point> last_done(cfg.readers, t0);
  std::vector<std::thread> readers;
  readers.reserve(cfg.readers);
  for (size_t t = 0; t < cfg.readers; ++t) {
    readers.emplace_back([&, t] {
      lat_us[t].reserve(cfg.ops / cfg.readers + 1);
      for (size_t i = t; i < cfg.ops; i += cfg.readers) {
        const double at = ArrivalTime(i, cfg.offered_rate, mix.bursty);
        const Clock::time_point deadline =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(at));
        // Open loop: wait for the scheduled arrival; if we are already
        // late (overload), fire immediately and charge the delay.
        if (deadline - Clock::now() > std::chrono::milliseconds(1)) {
          std::this_thread::sleep_until(deadline);
        } else {
          while (Clock::now() < deadline) std::this_thread::yield();
        }
        execute(cfg.warmup_ops + i);
        const Clock::time_point done = Clock::now();
        lat_us[t].push_back(
            std::chrono::duration<double, std::micro>(done - deadline)
                .count());
        last_done[t] = done;
      }
    });
  }
  for (std::thread& r : readers) r.join();
  stop.store(true);
  writer.join();

  std::vector<double> merged;
  merged.reserve(cfg.ops);
  Clock::time_point end = t0;
  for (size_t t = 0; t < cfg.readers; ++t) {
    merged.insert(merged.end(), lat_us[t].begin(), lat_us[t].end());
    end = std::max(end, last_done[t]);
  }
  std::sort(merged.begin(), merged.end());

  MixResult result;
  result.mix = mix.name;
  result.mode = ToString(mode);
  result.offered_rate = cfg.offered_rate;
  result.ops = merged.size();
  const double elapsed = std::chrono::duration<double>(end - t0).count();
  result.achieved_rate = elapsed > 0 ? merged.size() / elapsed : 0;
  result.batches = batches.load();
  result.edges_ingested = edges_ingested.load();
  result.edges_erased = edges_erased.load();
  result.p50_us = Percentile(merged, 0.50);
  result.p99_us = Percentile(merged, 0.99);
  result.p999_us = Percentile(merged, 0.999);
  result.max_us = merged.empty() ? 0 : merged.back();
  return result;
}

void WriteJson(const char* path, const RunConfig& cfg,
               const std::vector<MixResult>& results) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"nodes\": %llu,\n",
               static_cast<unsigned long long>(cfg.nodes));
  std::fprintf(f, "  \"readers\": %zu,\n", cfg.readers);
  std::fprintf(f, "  \"mixes\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    std::fprintf(
        f,
        "    {\"mix\": \"%s\", \"mode\": \"%s\", "
        "\"offered_ops_per_sec\": %.1f, \"achieved_ops_per_sec\": %.1f, "
        "\"ops\": %zu, \"batches\": %zu, \"edges_ingested\": %zu, "
        "\"edges_erased\": %zu, "
        "\"p50_us\": %.2f, \"p99_us\": %.2f, \"p999_us\": %.2f, "
        "\"max_us\": %.2f}%s\n",
        r.mix.c_str(), r.mode.c_str(), r.offered_rate, r.achieved_rate,
        r.ops, r.batches, r.edges_ingested, r.edges_erased, r.p50_us,
        r.p99_us, r.p999_us, r.max_us, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace
}  // namespace connectit::bench

int main(int argc, char** argv) {
  using namespace connectit;
  using namespace connectit::bench;

  bool smoke = false;
  const char* out = "BENCH_serving.json";
  size_t readers = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--readers=", 10) == 0) {
      readers = static_cast<size_t>(std::atoi(argv[i] + 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out=PATH] [--readers=N]\n",
                   argv[0]);
      return 2;
    }
  }

  RunConfig cfg;
  cfg.readers = readers == 0 ? 1 : readers;
  cfg.nodes = smoke ? (1u << 12) : StreamNodes(1u << 20, 1u << 16);
  cfg.ops = smoke ? 3000 : 20000;
  cfg.offered_rate = smoke ? 20000 : 50000;
  cfg.warmup_ops = smoke ? 200 : 2000;

  const EdgeList stream =
      GenerateRmatEdges(cfg.nodes, 4ull * cfg.nodes, /*seed=*/97);

  const size_t batch = smoke ? 512 : 2048;
  const std::vector<MixConfig> mixes = {
      {"read_mostly", /*zipf=*/false, /*bursty=*/false, batch, 0.005},
      {"write_heavy", /*zipf=*/false, /*bursty=*/false, 2 * batch, 0.0},
      {"bursty", /*zipf=*/false, /*bursty=*/true, batch, 0.005},
      {"zipfian", /*zipf=*/true, /*bursty=*/false, batch, 0.005},
      // Fully dynamic: every insert batch is followed by an Erase of half
      // of it, so readers race forest maintenance + replacement searches.
      {"delete_heavy", /*zipf=*/false, /*bursty=*/false, batch, 0.0,
       /*erase_fraction=*/0.5},
  };

  PrintTitle("Serving under open-loop traffic: snapshot vs shared-lock");
  std::printf("%u nodes, %zu readers, offered %.0f ops/s, %zu ops/mix\n",
              cfg.nodes, cfg.readers, cfg.offered_rate, cfg.ops);
  std::printf("%-12s %-12s %14s %14s %10s %10s %10s %8s\n", "Mix", "Mode",
              "Offered/s", "Achieved/s", "p50(us)", "p99(us)", "p999(us)",
              "Batches");
  PrintRule(110);

  std::vector<MixResult> results;
  for (const MixConfig& mix : mixes) {
    for (const ServingMode mode :
         {ServingMode::kSharedLock, ServingMode::kSnapshot}) {
      const MixResult r = RunMix(mix, mode, cfg, stream);
      std::printf("%-12s %-12s %14.0f %14.0f %10.1f %10.1f %10.1f %8zu\n",
                  r.mix.c_str(), r.mode.c_str(), r.offered_rate,
                  r.achieved_rate, r.p50_us, r.p99_us, r.p999_us, r.batches);
      results.push_back(r);
    }
  }

  WriteJson(out, cfg, results);
  return 0;
}
